# Empty compiler generated dependencies file for bench_ab3_tcp_wireless.
# This may be replaced when dependencies are built.
