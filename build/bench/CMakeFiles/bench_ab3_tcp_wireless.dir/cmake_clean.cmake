file(REMOVE_RECURSE
  "CMakeFiles/bench_ab3_tcp_wireless.dir/bench_ab3_tcp_wireless.cpp.o"
  "CMakeFiles/bench_ab3_tcp_wireless.dir/bench_ab3_tcp_wireless.cpp.o.d"
  "bench_ab3_tcp_wireless"
  "bench_ab3_tcp_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab3_tcp_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
