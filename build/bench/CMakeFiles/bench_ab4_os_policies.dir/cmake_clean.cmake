file(REMOVE_RECURSE
  "CMakeFiles/bench_ab4_os_policies.dir/bench_ab4_os_policies.cpp.o"
  "CMakeFiles/bench_ab4_os_policies.dir/bench_ab4_os_policies.cpp.o.d"
  "bench_ab4_os_policies"
  "bench_ab4_os_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab4_os_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
