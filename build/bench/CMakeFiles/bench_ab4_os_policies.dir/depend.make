# Empty dependencies file for bench_ab4_os_policies.
# This may be replaced when dependencies are built.
