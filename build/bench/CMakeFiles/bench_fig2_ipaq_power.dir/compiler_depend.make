# Empty compiler generated dependencies file for bench_fig2_ipaq_power.
# This may be replaced when dependencies are built.
