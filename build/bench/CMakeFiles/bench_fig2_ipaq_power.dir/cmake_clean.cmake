file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ipaq_power.dir/bench_fig2_ipaq_power.cpp.o"
  "CMakeFiles/bench_fig2_ipaq_power.dir/bench_fig2_ipaq_power.cpp.o.d"
  "bench_fig2_ipaq_power"
  "bench_fig2_ipaq_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ipaq_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
