# Empty compiler generated dependencies file for bench_ab6_switching.
# This may be replaced when dependencies are built.
