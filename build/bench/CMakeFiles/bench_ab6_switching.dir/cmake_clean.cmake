file(REMOVE_RECURSE
  "CMakeFiles/bench_ab6_switching.dir/bench_ab6_switching.cpp.o"
  "CMakeFiles/bench_ab6_switching.dir/bench_ab6_switching.cpp.o.d"
  "bench_ab6_switching"
  "bench_ab6_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab6_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
