# Empty compiler generated dependencies file for bench_ab12_sensitivity.
# This may be replaced when dependencies are built.
