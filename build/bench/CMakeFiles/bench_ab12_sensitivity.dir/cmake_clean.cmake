file(REMOVE_RECURSE
  "CMakeFiles/bench_ab12_sensitivity.dir/bench_ab12_sensitivity.cpp.o"
  "CMakeFiles/bench_ab12_sensitivity.dir/bench_ab12_sensitivity.cpp.o.d"
  "bench_ab12_sensitivity"
  "bench_ab12_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab12_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
