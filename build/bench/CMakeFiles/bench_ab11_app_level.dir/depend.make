# Empty dependencies file for bench_ab11_app_level.
# This may be replaced when dependencies are built.
