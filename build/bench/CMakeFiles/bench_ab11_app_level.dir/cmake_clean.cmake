file(REMOVE_RECURSE
  "CMakeFiles/bench_ab11_app_level.dir/bench_ab11_app_level.cpp.o"
  "CMakeFiles/bench_ab11_app_level.dir/bench_ab11_app_level.cpp.o.d"
  "bench_ab11_app_level"
  "bench_ab11_app_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab11_app_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
