# Empty compiler generated dependencies file for bench_ab1_mac_psm.
# This may be replaced when dependencies are built.
