file(REMOVE_RECURSE
  "CMakeFiles/bench_ab1_mac_psm.dir/bench_ab1_mac_psm.cpp.o"
  "CMakeFiles/bench_ab1_mac_psm.dir/bench_ab1_mac_psm.cpp.o.d"
  "bench_ab1_mac_psm"
  "bench_ab1_mac_psm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab1_mac_psm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
