# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_ab5_burst_sched.
