file(REMOVE_RECURSE
  "CMakeFiles/bench_ab5_burst_sched.dir/bench_ab5_burst_sched.cpp.o"
  "CMakeFiles/bench_ab5_burst_sched.dir/bench_ab5_burst_sched.cpp.o.d"
  "bench_ab5_burst_sched"
  "bench_ab5_burst_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab5_burst_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
