# Empty compiler generated dependencies file for bench_ab5_burst_sched.
# This may be replaced when dependencies are built.
