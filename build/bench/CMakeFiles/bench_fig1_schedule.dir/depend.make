# Empty dependencies file for bench_fig1_schedule.
# This may be replaced when dependencies are built.
