file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_schedule.dir/bench_fig1_schedule.cpp.o"
  "CMakeFiles/bench_fig1_schedule.dir/bench_fig1_schedule.cpp.o.d"
  "bench_fig1_schedule"
  "bench_fig1_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
