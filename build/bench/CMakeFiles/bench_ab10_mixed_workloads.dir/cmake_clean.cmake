file(REMOVE_RECURSE
  "CMakeFiles/bench_ab10_mixed_workloads.dir/bench_ab10_mixed_workloads.cpp.o"
  "CMakeFiles/bench_ab10_mixed_workloads.dir/bench_ab10_mixed_workloads.cpp.o.d"
  "bench_ab10_mixed_workloads"
  "bench_ab10_mixed_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab10_mixed_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
