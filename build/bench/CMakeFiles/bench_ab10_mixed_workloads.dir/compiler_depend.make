# Empty compiler generated dependencies file for bench_ab10_mixed_workloads.
# This may be replaced when dependencies are built.
