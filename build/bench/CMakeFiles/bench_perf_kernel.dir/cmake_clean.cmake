file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_kernel.dir/bench_perf_kernel.cpp.o"
  "CMakeFiles/bench_perf_kernel.dir/bench_perf_kernel.cpp.o.d"
  "bench_perf_kernel"
  "bench_perf_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
