# Empty dependencies file for bench_perf_kernel.
# This may be replaced when dependencies are built.
