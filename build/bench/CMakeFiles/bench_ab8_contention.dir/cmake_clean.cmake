file(REMOVE_RECURSE
  "CMakeFiles/bench_ab8_contention.dir/bench_ab8_contention.cpp.o"
  "CMakeFiles/bench_ab8_contention.dir/bench_ab8_contention.cpp.o.d"
  "bench_ab8_contention"
  "bench_ab8_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab8_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
