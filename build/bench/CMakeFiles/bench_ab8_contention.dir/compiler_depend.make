# Empty compiler generated dependencies file for bench_ab8_contention.
# This may be replaced when dependencies are built.
