# Empty compiler generated dependencies file for bench_ab2_arq_fec.
# This may be replaced when dependencies are built.
