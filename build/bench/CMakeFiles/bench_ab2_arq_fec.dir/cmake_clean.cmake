file(REMOVE_RECURSE
  "CMakeFiles/bench_ab2_arq_fec.dir/bench_ab2_arq_fec.cpp.o"
  "CMakeFiles/bench_ab2_arq_fec.dir/bench_ab2_arq_fec.cpp.o.d"
  "bench_ab2_arq_fec"
  "bench_ab2_arq_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab2_arq_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
