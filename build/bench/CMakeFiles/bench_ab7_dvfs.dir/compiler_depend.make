# Empty compiler generated dependencies file for bench_ab7_dvfs.
# This may be replaced when dependencies are built.
