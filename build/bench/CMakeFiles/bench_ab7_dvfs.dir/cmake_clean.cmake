file(REMOVE_RECURSE
  "CMakeFiles/bench_ab7_dvfs.dir/bench_ab7_dvfs.cpp.o"
  "CMakeFiles/bench_ab7_dvfs.dir/bench_ab7_dvfs.cpp.o.d"
  "bench_ab7_dvfs"
  "bench_ab7_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab7_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
