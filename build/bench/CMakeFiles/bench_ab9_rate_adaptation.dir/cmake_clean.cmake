file(REMOVE_RECURSE
  "CMakeFiles/bench_ab9_rate_adaptation.dir/bench_ab9_rate_adaptation.cpp.o"
  "CMakeFiles/bench_ab9_rate_adaptation.dir/bench_ab9_rate_adaptation.cpp.o.d"
  "bench_ab9_rate_adaptation"
  "bench_ab9_rate_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab9_rate_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
