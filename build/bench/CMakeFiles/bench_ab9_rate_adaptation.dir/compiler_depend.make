# Empty compiler generated dependencies file for bench_ab9_rate_adaptation.
# This may be replaced when dependencies are built.
