# Empty compiler generated dependencies file for app_level_test.
# This may be replaced when dependencies are built.
