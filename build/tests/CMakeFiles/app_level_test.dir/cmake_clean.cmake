file(REMOVE_RECURSE
  "CMakeFiles/app_level_test.dir/app_level_test.cpp.o"
  "CMakeFiles/app_level_test.dir/app_level_test.cpp.o.d"
  "app_level_test"
  "app_level_test.pdb"
  "app_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
