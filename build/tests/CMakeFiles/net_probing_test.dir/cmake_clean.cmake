file(REMOVE_RECURSE
  "CMakeFiles/net_probing_test.dir/net_probing_test.cpp.o"
  "CMakeFiles/net_probing_test.dir/net_probing_test.cpp.o.d"
  "net_probing_test"
  "net_probing_test.pdb"
  "net_probing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_probing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
