# Empty dependencies file for net_probing_test.
# This may be replaced when dependencies are built.
