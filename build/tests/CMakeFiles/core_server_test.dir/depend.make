# Empty dependencies file for core_server_test.
# This may be replaced when dependencies are built.
