file(REMOVE_RECURSE
  "CMakeFiles/core_server_test.dir/core_server_test.cpp.o"
  "CMakeFiles/core_server_test.dir/core_server_test.cpp.o.d"
  "core_server_test"
  "core_server_test.pdb"
  "core_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
