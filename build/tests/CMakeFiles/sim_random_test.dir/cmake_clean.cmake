file(REMOVE_RECURSE
  "CMakeFiles/sim_random_test.dir/sim_random_test.cpp.o"
  "CMakeFiles/sim_random_test.dir/sim_random_test.cpp.o.d"
  "sim_random_test"
  "sim_random_test.pdb"
  "sim_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
