file(REMOVE_RECURSE
  "CMakeFiles/core_admission_test.dir/core_admission_test.cpp.o"
  "CMakeFiles/core_admission_test.dir/core_admission_test.cpp.o.d"
  "core_admission_test"
  "core_admission_test.pdb"
  "core_admission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
