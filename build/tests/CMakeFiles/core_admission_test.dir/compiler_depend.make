# Empty compiler generated dependencies file for core_admission_test.
# This may be replaced when dependencies are built.
