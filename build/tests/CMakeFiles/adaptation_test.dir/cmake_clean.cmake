file(REMOVE_RECURSE
  "CMakeFiles/adaptation_test.dir/adaptation_test.cpp.o"
  "CMakeFiles/adaptation_test.dir/adaptation_test.cpp.o.d"
  "adaptation_test"
  "adaptation_test.pdb"
  "adaptation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
