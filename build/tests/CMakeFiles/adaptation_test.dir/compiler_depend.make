# Empty compiler generated dependencies file for adaptation_test.
# This may be replaced when dependencies are built.
