# Empty dependencies file for mobility_test.
# This may be replaced when dependencies are built.
