# Empty dependencies file for sim_simulator_test.
# This may be replaced when dependencies are built.
