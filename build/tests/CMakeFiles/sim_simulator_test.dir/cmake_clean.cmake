file(REMOVE_RECURSE
  "CMakeFiles/sim_simulator_test.dir/sim_simulator_test.cpp.o"
  "CMakeFiles/sim_simulator_test.dir/sim_simulator_test.cpp.o.d"
  "sim_simulator_test"
  "sim_simulator_test.pdb"
  "sim_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
