
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mac_rts_uplink_test.cpp" "tests/CMakeFiles/mac_rts_uplink_test.dir/mac_rts_uplink_test.cpp.o" "gcc" "tests/CMakeFiles/mac_rts_uplink_test.dir/mac_rts_uplink_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wlanps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wlanps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/wlanps_os.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/wlanps_link.dir/DependInfo.cmake"
  "/root/repo/build/src/bt/CMakeFiles/wlanps_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wlanps_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/wlanps_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wlanps_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wlanps_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wlanps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
