# Empty compiler generated dependencies file for mac_rts_uplink_test.
# This may be replaced when dependencies are built.
