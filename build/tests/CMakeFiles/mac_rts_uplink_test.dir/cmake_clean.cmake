file(REMOVE_RECURSE
  "CMakeFiles/mac_rts_uplink_test.dir/mac_rts_uplink_test.cpp.o"
  "CMakeFiles/mac_rts_uplink_test.dir/mac_rts_uplink_test.cpp.o.d"
  "mac_rts_uplink_test"
  "mac_rts_uplink_test.pdb"
  "mac_rts_uplink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_rts_uplink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
