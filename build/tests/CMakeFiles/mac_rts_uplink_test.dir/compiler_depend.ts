# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mac_rts_uplink_test.
