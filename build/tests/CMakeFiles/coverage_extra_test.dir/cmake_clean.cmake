file(REMOVE_RECURSE
  "CMakeFiles/coverage_extra_test.dir/coverage_extra_test.cpp.o"
  "CMakeFiles/coverage_extra_test.dir/coverage_extra_test.cpp.o.d"
  "coverage_extra_test"
  "coverage_extra_test.pdb"
  "coverage_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
