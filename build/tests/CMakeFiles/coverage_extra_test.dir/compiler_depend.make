# Empty compiler generated dependencies file for coverage_extra_test.
# This may be replaced when dependencies are built.
