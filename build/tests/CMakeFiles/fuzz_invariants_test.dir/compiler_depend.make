# Empty compiler generated dependencies file for fuzz_invariants_test.
# This may be replaced when dependencies are built.
