file(REMOVE_RECURSE
  "CMakeFiles/fuzz_invariants_test.dir/fuzz_invariants_test.cpp.o"
  "CMakeFiles/fuzz_invariants_test.dir/fuzz_invariants_test.cpp.o.d"
  "fuzz_invariants_test"
  "fuzz_invariants_test.pdb"
  "fuzz_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
