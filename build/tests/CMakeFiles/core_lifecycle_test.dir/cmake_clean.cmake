file(REMOVE_RECURSE
  "CMakeFiles/core_lifecycle_test.dir/core_lifecycle_test.cpp.o"
  "CMakeFiles/core_lifecycle_test.dir/core_lifecycle_test.cpp.o.d"
  "core_lifecycle_test"
  "core_lifecycle_test.pdb"
  "core_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
