# Empty compiler generated dependencies file for core_lifecycle_test.
# This may be replaced when dependencies are built.
