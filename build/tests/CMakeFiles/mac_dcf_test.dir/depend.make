# Empty dependencies file for mac_dcf_test.
# This may be replaced when dependencies are built.
