file(REMOVE_RECURSE
  "CMakeFiles/mac_dcf_test.dir/mac_dcf_test.cpp.o"
  "CMakeFiles/mac_dcf_test.dir/mac_dcf_test.cpp.o.d"
  "mac_dcf_test"
  "mac_dcf_test.pdb"
  "mac_dcf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_dcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
