# Empty compiler generated dependencies file for bt_test.
# This may be replaced when dependencies are built.
