file(REMOVE_RECURSE
  "CMakeFiles/bt_test.dir/bt_test.cpp.o"
  "CMakeFiles/bt_test.dir/bt_test.cpp.o.d"
  "bt_test"
  "bt_test.pdb"
  "bt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
