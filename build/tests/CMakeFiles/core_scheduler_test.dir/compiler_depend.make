# Empty compiler generated dependencies file for core_scheduler_test.
# This may be replaced when dependencies are built.
