file(REMOVE_RECURSE
  "CMakeFiles/core_scheduler_test.dir/core_scheduler_test.cpp.o"
  "CMakeFiles/core_scheduler_test.dir/core_scheduler_test.cpp.o.d"
  "core_scheduler_test"
  "core_scheduler_test.pdb"
  "core_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
