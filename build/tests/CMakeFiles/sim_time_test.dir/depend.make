# Empty dependencies file for sim_time_test.
# This may be replaced when dependencies are built.
