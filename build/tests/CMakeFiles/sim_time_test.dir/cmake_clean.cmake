file(REMOVE_RECURSE
  "CMakeFiles/sim_time_test.dir/sim_time_test.cpp.o"
  "CMakeFiles/sim_time_test.dir/sim_time_test.cpp.o.d"
  "sim_time_test"
  "sim_time_test.pdb"
  "sim_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
