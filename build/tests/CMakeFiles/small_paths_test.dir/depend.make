# Empty dependencies file for small_paths_test.
# This may be replaced when dependencies are built.
