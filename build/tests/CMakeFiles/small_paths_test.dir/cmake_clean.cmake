file(REMOVE_RECURSE
  "CMakeFiles/small_paths_test.dir/small_paths_test.cpp.o"
  "CMakeFiles/small_paths_test.dir/small_paths_test.cpp.o.d"
  "small_paths_test"
  "small_paths_test.pdb"
  "small_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
