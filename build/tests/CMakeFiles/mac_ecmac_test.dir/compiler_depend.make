# Empty compiler generated dependencies file for mac_ecmac_test.
# This may be replaced when dependencies are built.
