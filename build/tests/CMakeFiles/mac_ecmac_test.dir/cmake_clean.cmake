file(REMOVE_RECURSE
  "CMakeFiles/mac_ecmac_test.dir/mac_ecmac_test.cpp.o"
  "CMakeFiles/mac_ecmac_test.dir/mac_ecmac_test.cpp.o.d"
  "mac_ecmac_test"
  "mac_ecmac_test.pdb"
  "mac_ecmac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_ecmac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
