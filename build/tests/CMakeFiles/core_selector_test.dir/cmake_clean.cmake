file(REMOVE_RECURSE
  "CMakeFiles/core_selector_test.dir/core_selector_test.cpp.o"
  "CMakeFiles/core_selector_test.dir/core_selector_test.cpp.o.d"
  "core_selector_test"
  "core_selector_test.pdb"
  "core_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
