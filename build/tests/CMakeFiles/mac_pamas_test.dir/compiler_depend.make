# Empty compiler generated dependencies file for mac_pamas_test.
# This may be replaced when dependencies are built.
