file(REMOVE_RECURSE
  "CMakeFiles/mac_pamas_test.dir/mac_pamas_test.cpp.o"
  "CMakeFiles/mac_pamas_test.dir/mac_pamas_test.cpp.o.d"
  "mac_pamas_test"
  "mac_pamas_test.pdb"
  "mac_pamas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_pamas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
