file(REMOVE_RECURSE
  "CMakeFiles/sim_trace_test.dir/sim_trace_test.cpp.o"
  "CMakeFiles/sim_trace_test.dir/sim_trace_test.cpp.o.d"
  "sim_trace_test"
  "sim_trace_test.pdb"
  "sim_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
