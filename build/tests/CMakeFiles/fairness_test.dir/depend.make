# Empty dependencies file for fairness_test.
# This may be replaced when dependencies are built.
