file(REMOVE_RECURSE
  "CMakeFiles/fairness_test.dir/fairness_test.cpp.o"
  "CMakeFiles/fairness_test.dir/fairness_test.cpp.o.d"
  "fairness_test"
  "fairness_test.pdb"
  "fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
