file(REMOVE_RECURSE
  "CMakeFiles/sim_stats_test.dir/sim_stats_test.cpp.o"
  "CMakeFiles/sim_stats_test.dir/sim_stats_test.cpp.o.d"
  "sim_stats_test"
  "sim_stats_test.pdb"
  "sim_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
