# Empty dependencies file for sim_stats_test.
# This may be replaced when dependencies are built.
