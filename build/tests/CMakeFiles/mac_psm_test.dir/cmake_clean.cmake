file(REMOVE_RECURSE
  "CMakeFiles/mac_psm_test.dir/mac_psm_test.cpp.o"
  "CMakeFiles/mac_psm_test.dir/mac_psm_test.cpp.o.d"
  "mac_psm_test"
  "mac_psm_test.pdb"
  "mac_psm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_psm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
