# Empty compiler generated dependencies file for mac_psm_test.
# This may be replaced when dependencies are built.
