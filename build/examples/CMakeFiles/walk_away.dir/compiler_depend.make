# Empty compiler generated dependencies file for walk_away.
# This may be replaced when dependencies are built.
