file(REMOVE_RECURSE
  "CMakeFiles/walk_away.dir/walk_away.cpp.o"
  "CMakeFiles/walk_away.dir/walk_away.cpp.o.d"
  "walk_away"
  "walk_away.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_away.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
