# Empty dependencies file for interface_switching.
# This may be replaced when dependencies are built.
