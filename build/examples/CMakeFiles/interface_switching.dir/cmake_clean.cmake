file(REMOVE_RECURSE
  "CMakeFiles/interface_switching.dir/interface_switching.cpp.o"
  "CMakeFiles/interface_switching.dir/interface_switching.cpp.o.d"
  "interface_switching"
  "interface_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interface_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
