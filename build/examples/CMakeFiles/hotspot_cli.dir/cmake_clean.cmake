file(REMOVE_RECURSE
  "CMakeFiles/hotspot_cli.dir/hotspot_cli.cpp.o"
  "CMakeFiles/hotspot_cli.dir/hotspot_cli.cpp.o.d"
  "hotspot_cli"
  "hotspot_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
