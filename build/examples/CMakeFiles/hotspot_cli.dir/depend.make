# Empty dependencies file for hotspot_cli.
# This may be replaced when dependencies are built.
