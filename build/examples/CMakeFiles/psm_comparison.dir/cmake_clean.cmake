file(REMOVE_RECURSE
  "CMakeFiles/psm_comparison.dir/psm_comparison.cpp.o"
  "CMakeFiles/psm_comparison.dir/psm_comparison.cpp.o.d"
  "psm_comparison"
  "psm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
