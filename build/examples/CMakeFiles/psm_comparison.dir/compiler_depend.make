# Empty compiler generated dependencies file for psm_comparison.
# This may be replaced when dependencies are built.
