file(REMOVE_RECURSE
  "CMakeFiles/battery_lifetime.dir/battery_lifetime.cpp.o"
  "CMakeFiles/battery_lifetime.dir/battery_lifetime.cpp.o.d"
  "battery_lifetime"
  "battery_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
