# Empty dependencies file for battery_lifetime.
# This may be replaced when dependencies are built.
