file(REMOVE_RECURSE
  "CMakeFiles/mp3_streaming.dir/mp3_streaming.cpp.o"
  "CMakeFiles/mp3_streaming.dir/mp3_streaming.cpp.o.d"
  "mp3_streaming"
  "mp3_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp3_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
