# Empty dependencies file for mp3_streaming.
# This may be replaced when dependencies are built.
