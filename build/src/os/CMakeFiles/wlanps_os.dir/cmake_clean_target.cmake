file(REMOVE_RECURSE
  "libwlanps_os.a"
)
