# Empty dependencies file for wlanps_os.
# This may be replaced when dependencies are built.
