file(REMOVE_RECURSE
  "CMakeFiles/wlanps_os.dir/device_manager.cpp.o"
  "CMakeFiles/wlanps_os.dir/device_manager.cpp.o.d"
  "CMakeFiles/wlanps_os.dir/dvfs.cpp.o"
  "CMakeFiles/wlanps_os.dir/dvfs.cpp.o.d"
  "CMakeFiles/wlanps_os.dir/idle_trace.cpp.o"
  "CMakeFiles/wlanps_os.dir/idle_trace.cpp.o.d"
  "CMakeFiles/wlanps_os.dir/offload.cpp.o"
  "CMakeFiles/wlanps_os.dir/offload.cpp.o.d"
  "CMakeFiles/wlanps_os.dir/shutdown_policy.cpp.o"
  "CMakeFiles/wlanps_os.dir/shutdown_policy.cpp.o.d"
  "libwlanps_os.a"
  "libwlanps_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
