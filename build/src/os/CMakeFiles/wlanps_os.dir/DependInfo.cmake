
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/device_manager.cpp" "src/os/CMakeFiles/wlanps_os.dir/device_manager.cpp.o" "gcc" "src/os/CMakeFiles/wlanps_os.dir/device_manager.cpp.o.d"
  "/root/repo/src/os/dvfs.cpp" "src/os/CMakeFiles/wlanps_os.dir/dvfs.cpp.o" "gcc" "src/os/CMakeFiles/wlanps_os.dir/dvfs.cpp.o.d"
  "/root/repo/src/os/idle_trace.cpp" "src/os/CMakeFiles/wlanps_os.dir/idle_trace.cpp.o" "gcc" "src/os/CMakeFiles/wlanps_os.dir/idle_trace.cpp.o.d"
  "/root/repo/src/os/offload.cpp" "src/os/CMakeFiles/wlanps_os.dir/offload.cpp.o" "gcc" "src/os/CMakeFiles/wlanps_os.dir/offload.cpp.o.d"
  "/root/repo/src/os/shutdown_policy.cpp" "src/os/CMakeFiles/wlanps_os.dir/shutdown_policy.cpp.o" "gcc" "src/os/CMakeFiles/wlanps_os.dir/shutdown_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/wlanps_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wlanps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
