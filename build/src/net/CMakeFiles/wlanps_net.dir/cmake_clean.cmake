file(REMOVE_RECURSE
  "CMakeFiles/wlanps_net.dir/probing.cpp.o"
  "CMakeFiles/wlanps_net.dir/probing.cpp.o.d"
  "CMakeFiles/wlanps_net.dir/proxy.cpp.o"
  "CMakeFiles/wlanps_net.dir/proxy.cpp.o.d"
  "CMakeFiles/wlanps_net.dir/tcp.cpp.o"
  "CMakeFiles/wlanps_net.dir/tcp.cpp.o.d"
  "CMakeFiles/wlanps_net.dir/udp.cpp.o"
  "CMakeFiles/wlanps_net.dir/udp.cpp.o.d"
  "libwlanps_net.a"
  "libwlanps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
