
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/probing.cpp" "src/net/CMakeFiles/wlanps_net.dir/probing.cpp.o" "gcc" "src/net/CMakeFiles/wlanps_net.dir/probing.cpp.o.d"
  "/root/repo/src/net/proxy.cpp" "src/net/CMakeFiles/wlanps_net.dir/proxy.cpp.o" "gcc" "src/net/CMakeFiles/wlanps_net.dir/proxy.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/wlanps_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/wlanps_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/wlanps_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/wlanps_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/wlanps_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
