# Empty dependencies file for wlanps_net.
# This may be replaced when dependencies are built.
