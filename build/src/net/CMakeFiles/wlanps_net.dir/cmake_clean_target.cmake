file(REMOVE_RECURSE
  "libwlanps_net.a"
)
