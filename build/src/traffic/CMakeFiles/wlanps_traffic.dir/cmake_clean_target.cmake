file(REMOVE_RECURSE
  "libwlanps_traffic.a"
)
