file(REMOVE_RECURSE
  "CMakeFiles/wlanps_traffic.dir/playout.cpp.o"
  "CMakeFiles/wlanps_traffic.dir/playout.cpp.o.d"
  "CMakeFiles/wlanps_traffic.dir/source.cpp.o"
  "CMakeFiles/wlanps_traffic.dir/source.cpp.o.d"
  "libwlanps_traffic.a"
  "libwlanps_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
