# Empty dependencies file for wlanps_traffic.
# This may be replaced when dependencies are built.
