file(REMOVE_RECURSE
  "CMakeFiles/wlanps_core.dir/burst_channel.cpp.o"
  "CMakeFiles/wlanps_core.dir/burst_channel.cpp.o.d"
  "CMakeFiles/wlanps_core.dir/client.cpp.o"
  "CMakeFiles/wlanps_core.dir/client.cpp.o.d"
  "CMakeFiles/wlanps_core.dir/media_proxy.cpp.o"
  "CMakeFiles/wlanps_core.dir/media_proxy.cpp.o.d"
  "CMakeFiles/wlanps_core.dir/scenarios.cpp.o"
  "CMakeFiles/wlanps_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/wlanps_core.dir/scheduler.cpp.o"
  "CMakeFiles/wlanps_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/wlanps_core.dir/selector.cpp.o"
  "CMakeFiles/wlanps_core.dir/selector.cpp.o.d"
  "CMakeFiles/wlanps_core.dir/server.cpp.o"
  "CMakeFiles/wlanps_core.dir/server.cpp.o.d"
  "libwlanps_core.a"
  "libwlanps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
