# Empty dependencies file for wlanps_core.
# This may be replaced when dependencies are built.
