
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/burst_channel.cpp" "src/core/CMakeFiles/wlanps_core.dir/burst_channel.cpp.o" "gcc" "src/core/CMakeFiles/wlanps_core.dir/burst_channel.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/wlanps_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/wlanps_core.dir/client.cpp.o.d"
  "/root/repo/src/core/media_proxy.cpp" "src/core/CMakeFiles/wlanps_core.dir/media_proxy.cpp.o" "gcc" "src/core/CMakeFiles/wlanps_core.dir/media_proxy.cpp.o.d"
  "/root/repo/src/core/scenarios.cpp" "src/core/CMakeFiles/wlanps_core.dir/scenarios.cpp.o" "gcc" "src/core/CMakeFiles/wlanps_core.dir/scenarios.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/wlanps_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/wlanps_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/core/CMakeFiles/wlanps_core.dir/selector.cpp.o" "gcc" "src/core/CMakeFiles/wlanps_core.dir/selector.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/wlanps_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/wlanps_core.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bt/CMakeFiles/wlanps_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wlanps_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/wlanps_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wlanps_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wlanps_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wlanps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
