file(REMOVE_RECURSE
  "libwlanps_core.a"
)
