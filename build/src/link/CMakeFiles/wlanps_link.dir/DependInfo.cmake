
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/adaptive_mtu.cpp" "src/link/CMakeFiles/wlanps_link.dir/adaptive_mtu.cpp.o" "gcc" "src/link/CMakeFiles/wlanps_link.dir/adaptive_mtu.cpp.o.d"
  "/root/repo/src/link/arq.cpp" "src/link/CMakeFiles/wlanps_link.dir/arq.cpp.o" "gcc" "src/link/CMakeFiles/wlanps_link.dir/arq.cpp.o.d"
  "/root/repo/src/link/fec.cpp" "src/link/CMakeFiles/wlanps_link.dir/fec.cpp.o" "gcc" "src/link/CMakeFiles/wlanps_link.dir/fec.cpp.o.d"
  "/root/repo/src/link/protocol.cpp" "src/link/CMakeFiles/wlanps_link.dir/protocol.cpp.o" "gcc" "src/link/CMakeFiles/wlanps_link.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/wlanps_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wlanps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
