file(REMOVE_RECURSE
  "libwlanps_link.a"
)
