file(REMOVE_RECURSE
  "CMakeFiles/wlanps_link.dir/adaptive_mtu.cpp.o"
  "CMakeFiles/wlanps_link.dir/adaptive_mtu.cpp.o.d"
  "CMakeFiles/wlanps_link.dir/arq.cpp.o"
  "CMakeFiles/wlanps_link.dir/arq.cpp.o.d"
  "CMakeFiles/wlanps_link.dir/fec.cpp.o"
  "CMakeFiles/wlanps_link.dir/fec.cpp.o.d"
  "CMakeFiles/wlanps_link.dir/protocol.cpp.o"
  "CMakeFiles/wlanps_link.dir/protocol.cpp.o.d"
  "libwlanps_link.a"
  "libwlanps_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
