# Empty dependencies file for wlanps_link.
# This may be replaced when dependencies are built.
