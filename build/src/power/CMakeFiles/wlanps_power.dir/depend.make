# Empty dependencies file for wlanps_power.
# This may be replaced when dependencies are built.
