
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/battery.cpp" "src/power/CMakeFiles/wlanps_power.dir/battery.cpp.o" "gcc" "src/power/CMakeFiles/wlanps_power.dir/battery.cpp.o.d"
  "/root/repo/src/power/energy_meter.cpp" "src/power/CMakeFiles/wlanps_power.dir/energy_meter.cpp.o" "gcc" "src/power/CMakeFiles/wlanps_power.dir/energy_meter.cpp.o.d"
  "/root/repo/src/power/state_machine.cpp" "src/power/CMakeFiles/wlanps_power.dir/state_machine.cpp.o" "gcc" "src/power/CMakeFiles/wlanps_power.dir/state_machine.cpp.o.d"
  "/root/repo/src/power/units.cpp" "src/power/CMakeFiles/wlanps_power.dir/units.cpp.o" "gcc" "src/power/CMakeFiles/wlanps_power.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
