file(REMOVE_RECURSE
  "CMakeFiles/wlanps_power.dir/battery.cpp.o"
  "CMakeFiles/wlanps_power.dir/battery.cpp.o.d"
  "CMakeFiles/wlanps_power.dir/energy_meter.cpp.o"
  "CMakeFiles/wlanps_power.dir/energy_meter.cpp.o.d"
  "CMakeFiles/wlanps_power.dir/state_machine.cpp.o"
  "CMakeFiles/wlanps_power.dir/state_machine.cpp.o.d"
  "CMakeFiles/wlanps_power.dir/units.cpp.o"
  "CMakeFiles/wlanps_power.dir/units.cpp.o.d"
  "libwlanps_power.a"
  "libwlanps_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
