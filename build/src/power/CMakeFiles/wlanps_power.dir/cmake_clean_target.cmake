file(REMOVE_RECURSE
  "libwlanps_power.a"
)
