# Empty dependencies file for wlanps_mac.
# This may be replaced when dependencies are built.
