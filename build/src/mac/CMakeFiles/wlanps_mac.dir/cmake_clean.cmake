file(REMOVE_RECURSE
  "CMakeFiles/wlanps_mac.dir/access_point.cpp.o"
  "CMakeFiles/wlanps_mac.dir/access_point.cpp.o.d"
  "CMakeFiles/wlanps_mac.dir/bss.cpp.o"
  "CMakeFiles/wlanps_mac.dir/bss.cpp.o.d"
  "CMakeFiles/wlanps_mac.dir/dcf.cpp.o"
  "CMakeFiles/wlanps_mac.dir/dcf.cpp.o.d"
  "CMakeFiles/wlanps_mac.dir/ecmac.cpp.o"
  "CMakeFiles/wlanps_mac.dir/ecmac.cpp.o.d"
  "CMakeFiles/wlanps_mac.dir/medium.cpp.o"
  "CMakeFiles/wlanps_mac.dir/medium.cpp.o.d"
  "CMakeFiles/wlanps_mac.dir/pamas.cpp.o"
  "CMakeFiles/wlanps_mac.dir/pamas.cpp.o.d"
  "CMakeFiles/wlanps_mac.dir/station.cpp.o"
  "CMakeFiles/wlanps_mac.dir/station.cpp.o.d"
  "libwlanps_mac.a"
  "libwlanps_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
