# Empty compiler generated dependencies file for wlanps_mac.
# This may be replaced when dependencies are built.
