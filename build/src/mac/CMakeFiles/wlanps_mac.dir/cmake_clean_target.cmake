file(REMOVE_RECURSE
  "libwlanps_mac.a"
)
