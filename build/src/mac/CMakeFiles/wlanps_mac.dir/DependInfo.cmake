
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/access_point.cpp" "src/mac/CMakeFiles/wlanps_mac.dir/access_point.cpp.o" "gcc" "src/mac/CMakeFiles/wlanps_mac.dir/access_point.cpp.o.d"
  "/root/repo/src/mac/bss.cpp" "src/mac/CMakeFiles/wlanps_mac.dir/bss.cpp.o" "gcc" "src/mac/CMakeFiles/wlanps_mac.dir/bss.cpp.o.d"
  "/root/repo/src/mac/dcf.cpp" "src/mac/CMakeFiles/wlanps_mac.dir/dcf.cpp.o" "gcc" "src/mac/CMakeFiles/wlanps_mac.dir/dcf.cpp.o.d"
  "/root/repo/src/mac/ecmac.cpp" "src/mac/CMakeFiles/wlanps_mac.dir/ecmac.cpp.o" "gcc" "src/mac/CMakeFiles/wlanps_mac.dir/ecmac.cpp.o.d"
  "/root/repo/src/mac/medium.cpp" "src/mac/CMakeFiles/wlanps_mac.dir/medium.cpp.o" "gcc" "src/mac/CMakeFiles/wlanps_mac.dir/medium.cpp.o.d"
  "/root/repo/src/mac/pamas.cpp" "src/mac/CMakeFiles/wlanps_mac.dir/pamas.cpp.o" "gcc" "src/mac/CMakeFiles/wlanps_mac.dir/pamas.cpp.o.d"
  "/root/repo/src/mac/station.cpp" "src/mac/CMakeFiles/wlanps_mac.dir/station.cpp.o" "gcc" "src/mac/CMakeFiles/wlanps_mac.dir/station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/wlanps_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wlanps_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wlanps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
