file(REMOVE_RECURSE
  "CMakeFiles/wlanps_channel.dir/ber.cpp.o"
  "CMakeFiles/wlanps_channel.dir/ber.cpp.o.d"
  "CMakeFiles/wlanps_channel.dir/gilbert_elliott.cpp.o"
  "CMakeFiles/wlanps_channel.dir/gilbert_elliott.cpp.o.d"
  "CMakeFiles/wlanps_channel.dir/link.cpp.o"
  "CMakeFiles/wlanps_channel.dir/link.cpp.o.d"
  "CMakeFiles/wlanps_channel.dir/path_loss.cpp.o"
  "CMakeFiles/wlanps_channel.dir/path_loss.cpp.o.d"
  "CMakeFiles/wlanps_channel.dir/predictor.cpp.o"
  "CMakeFiles/wlanps_channel.dir/predictor.cpp.o.d"
  "CMakeFiles/wlanps_channel.dir/rate_control.cpp.o"
  "CMakeFiles/wlanps_channel.dir/rate_control.cpp.o.d"
  "libwlanps_channel.a"
  "libwlanps_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
