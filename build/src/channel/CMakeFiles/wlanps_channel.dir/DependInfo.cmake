
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/ber.cpp" "src/channel/CMakeFiles/wlanps_channel.dir/ber.cpp.o" "gcc" "src/channel/CMakeFiles/wlanps_channel.dir/ber.cpp.o.d"
  "/root/repo/src/channel/gilbert_elliott.cpp" "src/channel/CMakeFiles/wlanps_channel.dir/gilbert_elliott.cpp.o" "gcc" "src/channel/CMakeFiles/wlanps_channel.dir/gilbert_elliott.cpp.o.d"
  "/root/repo/src/channel/link.cpp" "src/channel/CMakeFiles/wlanps_channel.dir/link.cpp.o" "gcc" "src/channel/CMakeFiles/wlanps_channel.dir/link.cpp.o.d"
  "/root/repo/src/channel/path_loss.cpp" "src/channel/CMakeFiles/wlanps_channel.dir/path_loss.cpp.o" "gcc" "src/channel/CMakeFiles/wlanps_channel.dir/path_loss.cpp.o.d"
  "/root/repo/src/channel/predictor.cpp" "src/channel/CMakeFiles/wlanps_channel.dir/predictor.cpp.o" "gcc" "src/channel/CMakeFiles/wlanps_channel.dir/predictor.cpp.o.d"
  "/root/repo/src/channel/rate_control.cpp" "src/channel/CMakeFiles/wlanps_channel.dir/rate_control.cpp.o" "gcc" "src/channel/CMakeFiles/wlanps_channel.dir/rate_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
