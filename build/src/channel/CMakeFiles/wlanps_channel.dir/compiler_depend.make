# Empty compiler generated dependencies file for wlanps_channel.
# This may be replaced when dependencies are built.
