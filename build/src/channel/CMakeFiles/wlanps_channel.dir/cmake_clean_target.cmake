file(REMOVE_RECURSE
  "libwlanps_channel.a"
)
