file(REMOVE_RECURSE
  "CMakeFiles/wlanps_sim.dir/random.cpp.o"
  "CMakeFiles/wlanps_sim.dir/random.cpp.o.d"
  "CMakeFiles/wlanps_sim.dir/simulator.cpp.o"
  "CMakeFiles/wlanps_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/wlanps_sim.dir/stats.cpp.o"
  "CMakeFiles/wlanps_sim.dir/stats.cpp.o.d"
  "CMakeFiles/wlanps_sim.dir/trace.cpp.o"
  "CMakeFiles/wlanps_sim.dir/trace.cpp.o.d"
  "CMakeFiles/wlanps_sim.dir/units.cpp.o"
  "CMakeFiles/wlanps_sim.dir/units.cpp.o.d"
  "libwlanps_sim.a"
  "libwlanps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
