# Empty compiler generated dependencies file for wlanps_sim.
# This may be replaced when dependencies are built.
