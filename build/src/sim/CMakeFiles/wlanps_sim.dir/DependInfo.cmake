
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/random.cpp" "src/sim/CMakeFiles/wlanps_sim.dir/random.cpp.o" "gcc" "src/sim/CMakeFiles/wlanps_sim.dir/random.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/wlanps_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/wlanps_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/wlanps_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/wlanps_sim.dir/stats.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/wlanps_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/wlanps_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/units.cpp" "src/sim/CMakeFiles/wlanps_sim.dir/units.cpp.o" "gcc" "src/sim/CMakeFiles/wlanps_sim.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
