file(REMOVE_RECURSE
  "libwlanps_sim.a"
)
