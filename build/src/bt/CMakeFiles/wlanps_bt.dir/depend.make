# Empty dependencies file for wlanps_bt.
# This may be replaced when dependencies are built.
