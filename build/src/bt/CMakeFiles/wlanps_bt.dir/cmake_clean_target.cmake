file(REMOVE_RECURSE
  "libwlanps_bt.a"
)
