file(REMOVE_RECURSE
  "CMakeFiles/wlanps_bt.dir/piconet.cpp.o"
  "CMakeFiles/wlanps_bt.dir/piconet.cpp.o.d"
  "libwlanps_bt.a"
  "libwlanps_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
