# Empty compiler generated dependencies file for wlanps_phy.
# This may be replaced when dependencies are built.
