
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/bt_nic.cpp" "src/phy/CMakeFiles/wlanps_phy.dir/bt_nic.cpp.o" "gcc" "src/phy/CMakeFiles/wlanps_phy.dir/bt_nic.cpp.o.d"
  "/root/repo/src/phy/wlan_nic.cpp" "src/phy/CMakeFiles/wlanps_phy.dir/wlan_nic.cpp.o" "gcc" "src/phy/CMakeFiles/wlanps_phy.dir/wlan_nic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/wlanps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlanps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
