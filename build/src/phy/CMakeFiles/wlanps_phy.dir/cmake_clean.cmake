file(REMOVE_RECURSE
  "CMakeFiles/wlanps_phy.dir/bt_nic.cpp.o"
  "CMakeFiles/wlanps_phy.dir/bt_nic.cpp.o.d"
  "CMakeFiles/wlanps_phy.dir/wlan_nic.cpp.o"
  "CMakeFiles/wlanps_phy.dir/wlan_nic.cpp.o.d"
  "libwlanps_phy.a"
  "libwlanps_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlanps_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
