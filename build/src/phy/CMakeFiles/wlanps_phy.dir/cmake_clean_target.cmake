file(REMOVE_RECURSE
  "libwlanps_phy.a"
)
