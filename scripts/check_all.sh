#!/usr/bin/env bash
# The whole gate, one command: tier-1 tests, the ThreadSanitizer pass,
# the event-kernel perf regression check, the backend cross-validation
# gate, and the policy-ablation gate — exactly what CI runs
# (.github/workflows/ci.yml) and what a PR must keep green.
#
#   1. tier-1: configure + build the default tree, run the full ctest suite
#      (includes sim_sharded_test: strict bit-identity at every worker
#      thread count)
#   2. scripts/check_tsan.sh: concurrency-sensitive tests under TSan,
#      including the sharded kernel's mailbox/barrier traffic
#   3. scripts/check_perf.sh: gated benchmarks (event kernel, BER→PER
#      lookups, sharded hotspot) within 5% of baseline, obs-enabled
#      null-check overhead within 5%, sharded 4-thread speedup >= 2.5x on
#      hosts with >= 4 cores
#   4. scripts/check_xval.sh: analytic backend agrees with the simulator
#      on the AB12 calibration grid (per-point saving within 5%)
#   5. policy ablation: the AB14 power-policy x fault grid in --quick
#      mode (asserts per-cell ledger reconciliation within 1e-9 J and
#      the μNap idle_listen -> nav_sleep reallocation); the policy unit
#      and determinism tests already ran inside tier-1 ctest
#   6. scripts/check_health.sh: kernel health telemetry gate — seeded
#      invariant corruption is caught by the watchdog within one sweep,
#      clean runs report zero violations, the WPSM golden fixture
#      decodes byte for byte, and the health JSON is bit-identical
#      across worker-thread counts
#
# Usage: scripts/check_all.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

echo "=== [1/6] tier-1: build + ctest ==="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "=== [2/6] ThreadSanitizer ==="
scripts/check_tsan.sh

echo "=== [3/6] perf regression gate ==="
scripts/check_perf.sh

echo "=== [4/6] backend cross-validation gate ==="
scripts/check_xval.sh "$BUILD_DIR"

echo "=== [5/6] policy-ablation gate ==="
"./$BUILD_DIR/bench/bench_ab14_policy_ablation" --quick

echo "=== [6/6] kernel health gate ==="
scripts/check_health.sh "$BUILD_DIR"

echo "All checks passed."
