#!/usr/bin/env bash
# Kernel health telemetry gate: watchdogs catch seeded invariant
# corruption, clean runs stay silent, and the health report is
# deterministic and well-formed.
#
#   1. obs_health_test + obs_stream_test (the focused ctest binaries):
#      seeded fed.conservation corruption is reported within one sweep
#      with a flight dump; clean federation runs produce zero reports;
#      health JSON and the metrics snapshot are bit-identical across
#      worker-thread counts; the WPSM writer reproduces the checked-in
#      golden fixture byte for byte.
#   2. Golden decode: scripts/bench_diff.py must decode
#      tests/data/wpsm_golden.bin to exactly the flat keys pinned in
#      tests/data/wpsm_golden.json (threshold 0 -> any drift fails).
#   3. CLI smoke: a clean federation run with --obs-health exits 0
#      (exit 3 = watchdog violations), its health JSON carries the
#      required schema keys with zero violations, and re-running at
#      --threads 2 reproduces the file byte for byte.
#
# Everything here is deterministic — a trip is a real invariant,
# attribution, or encoding bug, not runner noise.
#
# Usage: scripts/check_health.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target obs_health_test obs_stream_test hotspot_cli >/dev/null

echo "--- health + watchdog unit gates ---"
"./$BUILD_DIR/tests/obs_health_test"
"./$BUILD_DIR/tests/obs_stream_test"

echo "--- WPSM golden decode ---"
python3 scripts/bench_diff.py \
    tests/data/wpsm_golden.json tests/data/wpsm_golden.bin \
    --threshold 0 --top 0
echo "golden stream decodes to the pinned flat keys"

echo "--- CLI health smoke (clean federation run) ---"
HEALTH_DIR="$BUILD_DIR/health_smoke"
rm -rf "$HEALTH_DIR"
mkdir -p "$HEALTH_DIR"
run_fed() {
    "./$BUILD_DIR/examples/hotspot_cli" \
        --config federation --aps 8 --shards 4 --threads "$1" \
        --clients 64 --duration 120 --seed 11 \
        --obs-health "$2" >/dev/null
}
run_fed 0 "$HEALTH_DIR/health_t0.json"
run_fed 2 "$HEALTH_DIR/health_t2.json"

python3 - "$HEALTH_DIR/health_t0.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    health = json.load(f)

REQUIRED = ["scope", "policy", "shards", "quanta", "idle_jumps", "events",
            "imbalance_index", "skew", "per_shard", "per_cell",
            "population", "watchdog"]
missing = [k for k in REQUIRED if k not in health]
assert not missing, f"health JSON missing keys: {missing}"
assert health["scope"] == "federation", health["scope"]
assert health["watchdog"]["violations"] == 0, health["watchdog"]
assert health["watchdog"]["sweeps"] > 0, "watchdog never swept"
assert health["population"]["conserved"] is True
assert len(health["per_shard"]) == health["shards"]
assert sum(s["events"] for s in health["per_shard"]) == health["events"]
# Wall-clock timing must not leak into the deterministic default export.
assert "timing" not in health, "timing section leaked into default JSON"
print(f"schema ok: {health['shards']} shards, {health['events']} events, "
      f"{health['watchdog']['sweeps']} watchdog sweeps, 0 violations")
PY

if ! cmp -s "$HEALTH_DIR/health_t0.json" "$HEALTH_DIR/health_t2.json"; then
    echo "FAIL: health JSON differs between --threads 0 and --threads 2"
    diff "$HEALTH_DIR/health_t0.json" "$HEALTH_DIR/health_t2.json" || true
    exit 1
fi
echo "health JSON bit-identical across thread counts"

echo "health check passed"
