#!/usr/bin/env bash
# Federation-scale smoke gate: a 10⁴-client, 16-AP federation run on the
# strict-barrier sharded kernel must be
#
#   1. deterministic — the same seed produces bit-identical population
#      fingerprints on repeated runs, and
#   2. thread-invariant — the 2-worker-thread run matches the inline
#      (0-thread) sequential reference, the strict policy's core promise
#      at population scale, and
#   3. bounded — peak RSS is recorded via /usr/bin/time -v so a slab or
#      mailbox memory blow-up shows in the job log (reported, not gated:
#      allocator and libc differences move absolute RSS between hosts).
#
# Usage: scripts/check_federation.sh [build-dir] [clients]
#   (defaults: build-fed, 10000)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-fed}"
CLIENTS="${2:-10000}"
SEED=42

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target hotspot_cli >/dev/null

CLI="./$BUILD_DIR/examples/hotspot_cli"
OUT_DIR="$BUILD_DIR/fed_smoke"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

run_once() { # <threads> <tag>
    local threads="$1" tag="$2"
    local args=(--federation --aps 16 --shards 16 --threads "$threads"
                --clients "$CLIENTS" --duration 120 --seed "$SEED"
                --roaming 45 --admission defer --capacity 900
                --arrivals 2 --flash 40)
    if [[ -x /usr/bin/time ]]; then
        /usr/bin/time -v "$CLI" "${args[@]}" \
            >"$OUT_DIR/$tag.out" 2>"$OUT_DIR/$tag.time"
    else
        "$CLI" "${args[@]}" >"$OUT_DIR/$tag.out" 2>/dev/null
        echo "note: /usr/bin/time not available; RSS not recorded" \
            >"$OUT_DIR/$tag.time"
    fi
}

fingerprint_of() {
    grep -o 'fingerprint [0-9a-f]\{16\}' "$1" | awk '{print $2}'
}

echo "federation smoke: $CLIENTS clients, 16 APs, seed $SEED"
run_once 2 t2_a
run_once 2 t2_b
run_once 0 t0

FP_A="$(fingerprint_of "$OUT_DIR/t2_a.out")"
FP_B="$(fingerprint_of "$OUT_DIR/t2_b.out")"
FP_0="$(fingerprint_of "$OUT_DIR/t0.out")"
echo "fingerprints: 2-thread run A $FP_A, run B $FP_B, inline $FP_0"

if [[ -z "$FP_A" || "$FP_A" != "$FP_B" ]]; then
    echo "FAIL: same-seed 2-thread runs diverged ($FP_A vs $FP_B)" >&2
    exit 1
fi
if [[ "$FP_A" != "$FP_0" ]]; then
    echo "FAIL: 2-thread run diverged from the inline reference" \
         "($FP_A vs $FP_0)" >&2
    exit 1
fi

if ! grep -q 'conserved' "$OUT_DIR/t2_a.out" \
   || grep -q 'NOT CONSERVED' "$OUT_DIR/t2_a.out"; then
    echo "FAIL: burst conservation (admitted = completed + shed) violated" >&2
    exit 1
fi

for tag in t2_a t0; do
    rss_kb="$(grep -o 'Maximum resident set size (kbytes): [0-9]*' \
                   "$OUT_DIR/$tag.time" | grep -o '[0-9]*$' || true)"
    if [[ -n "$rss_kb" ]]; then
        echo "peak RSS ($tag): $((rss_kb / 1024)) MiB ($rss_kb kB)"
    fi
done

echo "federation smoke passed"
