#!/usr/bin/env bash
# Perf regression gate for the event kernel and the sharded runtime.
#
# Builds Release, runs bench_perf_kernel, and fails if the CPU time of any
# gated benchmark regresses more than 5% against the checked-in baseline
# (scripts/perf_baseline.json).  Gated set:
#
#   * BM_EventPostDispatch      — the no-handle event kernel fast path
#   * BM_PerTableLookup         — scalar BER→PER interpolation
#   * BM_PerTableLookupBatch    — vectorized burst BER→PER interpolation
#   * BM_ShardedHotspot/0       — 64-client sharded hotspot, inline kernel
#
# The baseline is machine-specific; refresh it with --update-baseline when
# benching on new hardware, and treat cross-machine failures as advisory.
# Gating statistic is the MIN across repetitions: best-achievable time is
# far more stable than the median on loaded or frequency-scaled hosts,
# where a background blip can shift the median of a short run by 10%+.
#
# Sharded speedup gate: BM_ShardedHotspot/4 (4 worker threads) must beat
# BM_ShardedHotspot/0 (inline) by >= 2.5x wall clock — enforced only when
# the host has >= 4 cores.  On smaller hosts (including the single-core CI
# container) barrier-quantum workers cannot run concurrently, so the ratio
# is reported but not gated.
#
# A second Release build with -DWLANPS_OBS=ON gates the observability
# cost two ways, each within 5%:
#
#   * BM_EventPostDispatch, plain build vs obs build — the
#     compiled-in-but-unattached cost (one null-check per dispatch).
#   * BM_ShardedHotspot/0, obs build with vs without the HealthReport
#     attach (WLANPS_BENCH_NO_HEALTH skips it) — the attached per-quantum
#     shard telemetry, priced against the *same binary* so the
#     comparison isolates the telemetry instead of folding in every
#     other compiled-in obs hook on the sim path.
#
# Both comparisons run as interleaved A/B rounds with the order
# alternating per round, and the gate statistic is the MEDIAN of the
# per-round paired ratios: sustained-load hosts slow down monotonically,
# so a fixed order (or a min taken across rounds sampled at different
# host speeds) systematically taxes one side; a within-round ratio
# cancels the drift and the median over alternating orders cancels the
# residual position bias (attached-profile cost is reported by
# BM_EventPostDispatchProfiled in run_bench.sh, not gated here).
#
# Usage: scripts/check_perf.sh [--update-baseline] [build-dir] [obs-build-dir]
#   (default build dirs: build-perf, build-perf-obs)
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
    UPDATE=1
    shift
fi
BUILD_DIR="${1:-build-perf}"
OBS_BUILD_DIR="${2:-build-perf-obs}"
BASELINE="scripts/perf_baseline.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_perf_kernel >/dev/null
cmake -B "$OBS_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DWLANPS_OBS=ON >/dev/null
cmake --build "$OBS_BUILD_DIR" -j "$(nproc)" --target bench_perf_kernel >/dev/null

RESULT_JSON="$BUILD_DIR/check_perf_result.json"
"./$BUILD_DIR/bench/bench_perf_kernel" \
    --benchmark_filter='^BM_EventPostDispatch$|^BM_PerTableLookup(Batch)?$|^BM_ShardedHotspot/[04]/' \
    --benchmark_repetitions=7 \
    --benchmark_format=json >"$RESULT_JSON"

# Interleaved A/B rounds for the obs-overhead comparison: alternate the
# two binaries so both sample the same stretch of host conditions.
OBS_CMP_DIR="$BUILD_DIR/obs_cmp"
rm -rf "$OBS_CMP_DIR"
mkdir -p "$OBS_CMP_DIR"
ab_dispatch_plain() {
    "./$BUILD_DIR/bench/bench_perf_kernel" \
        --benchmark_filter='^BM_EventPostDispatch$' \
        --benchmark_repetitions=2 \
        --benchmark_format=json >"$OBS_CMP_DIR/plain_$1.json"
}
ab_dispatch_obs() {
    "./$OBS_BUILD_DIR/bench/bench_perf_kernel" \
        --benchmark_filter='^BM_EventPostDispatch$' \
        --benchmark_repetitions=2 \
        --benchmark_format=json >"$OBS_CMP_DIR/obs_$1.json"
}
ab_telemetry_off() {
    WLANPS_BENCH_NO_HEALTH=1 "./$OBS_BUILD_DIR/bench/bench_perf_kernel" \
        --benchmark_filter='^BM_ShardedHotspot/0/' \
        --benchmark_repetitions=2 \
        --benchmark_format=json >"$OBS_CMP_DIR/tel_off_$1.json"
}
ab_telemetry_on() {
    "./$OBS_BUILD_DIR/bench/bench_perf_kernel" \
        --benchmark_filter='^BM_ShardedHotspot/0/' \
        --benchmark_repetitions=2 \
        --benchmark_format=json >"$OBS_CMP_DIR/tel_on_$1.json"
}
for round in 1 2 3 4; do
    if (( round % 2 )); then
        ab_dispatch_plain "$round"; ab_dispatch_obs "$round"
        ab_telemetry_off "$round"; ab_telemetry_on "$round"
    else
        ab_dispatch_obs "$round"; ab_dispatch_plain "$round"
        ab_telemetry_on "$round"; ab_telemetry_off "$round"
    fi
done

python3 - "$RESULT_JSON" "$OBS_CMP_DIR" "$BASELINE" "$UPDATE" "$(nproc)" <<'PY'
import glob
import json
import os
import sys

result_json, obs_cmp_dir, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]
update = sys.argv[4] == "1"
cores = int(sys.argv[5])

GATED = [
    "BM_EventPostDispatch",
    "BM_PerTableLookup",
    "BM_PerTableLookupBatch",
    "BM_ShardedHotspot/0/real_time",
]
BUDGET = 1.05  # 5% regression budget per gated benchmark
SPEEDUP_TARGET = 2.5  # BM_ShardedHotspot 4-thread wall-clock vs inline
SPEEDUP_MIN_CORES = 4


def mins(path, field):
    # Min across repetitions: a benchmark can only run *slower* than its
    # true cost, never faster, so the min filters host noise that medians
    # let through on busy single-core containers.
    with open(path) as f:
        result = json.load(f)
    out = {}
    for b in result["benchmarks"]:
        if b.get("run_type") != "iteration":
            continue
        name = b["name"]
        out[name] = min(out.get(name, float("inf")), b[field])
    return out


cpu = mins(result_json, "cpu_time")
real = mins(result_json, "real_time")


def paired_ratio_median(prefix_num, prefix_den, name, field):
    # One ratio per A/B round (the pair ran adjacent in time, so host
    # drift cancels within it), median across rounds (alternating order
    # cancels the residual position bias).
    ratios = []
    for den_path in sorted(glob.glob(os.path.join(obs_cmp_dir, prefix_den + "_*.json"))):
        num_path = den_path.replace(prefix_den + "_", prefix_num + "_")
        ratios.append(mins(num_path, field)[name] / mins(den_path, field)[name])
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2.0


obs_dispatch_ratio = paired_ratio_median(
    "obs", "plain", "BM_EventPostDispatch", "cpu_time")
# Attached-telemetry overhead: same obs binary with and without the
# HealthReport attach, so the delta is exactly the per-quantum shard
# telemetry (plus the one-time rollup), nothing else.
telemetry_ratio = paired_ratio_median(
    "tel_on", "tel_off", "BM_ShardedHotspot/0/real_time", "real_time")

if update:
    with open(baseline_path, "w") as f:
        json.dump({name: {"cpu_ns": cpu[name]} for name in GATED}, f, indent=2)
        f.write("\n")
    for name in GATED:
        print(f"baseline updated: {name} = {cpu[name]:.0f} ns CPU (min of 7 reps)")

ok = True

if not update:
    with open(baseline_path) as f:
        baseline = json.load(f)
    for name in GATED:
        if name not in baseline:
            print(f"WARN: {name} missing from {baseline_path}; "
                  f"run --update-baseline (measured {cpu[name]:.0f} ns CPU)")
            continue
        base = baseline[name]["cpu_ns"]
        limit = base * BUDGET
        print(f"{name}: {cpu[name]:.0f} ns CPU "
              f"(baseline {base:.0f} ns, limit {limit:.0f} ns)")
        if cpu[name] > limit:
            print(f"FAIL: {name} regressed more than "
                  f"{(BUDGET - 1) * 100:.0f}% against the baseline")
            ok = False

# Sharded wall-clock speedup: only a hard gate when the host can actually
# run 4 workers concurrently.  On smaller hosts the gate is *disarmed*:
# the ratio is still printed, and the result JSON records the gate state
# so downstream tooling (bench_diff.py, CI artifacts) can tell a genuine
# pass from a host that simply could not run the comparison.
inline_ns = real["BM_ShardedHotspot/0/real_time"]
par_ns = real["BM_ShardedHotspot/4/real_time"]
speedup = inline_ns / par_ns if par_ns > 0 else 0.0
print(f"BM_ShardedHotspot wall clock: inline {inline_ns:.0f} ns, "
      f"4 threads {par_ns:.0f} ns -> speedup {speedup:.2f}x "
      f"({cores} core(s) on this host)")
if cores >= SPEEDUP_MIN_CORES:
    speedup_gate = "armed"
    if speedup < SPEEDUP_TARGET:
        print(f"FAIL: sharded speedup {speedup:.2f}x below the "
              f"{SPEEDUP_TARGET}x target on a {cores}-core host")
        ok = False
else:
    speedup_gate = "disarmed"
    print(f"SKIPPED (cores={cores})")
    print(f"NOTE: speedup gate disarmed (needs >= {SPEEDUP_MIN_CORES} cores); "
          f"barrier-quantum workers cannot overlap on this host")

# Record the gate state alongside the raw benchmark output so the result
# JSON is self-describing.
with open(result_json) as f:
    recorded = json.load(f)
recorded["speedup_gate"] = speedup_gate
recorded["speedup_measured"] = speedup
with open(result_json, "w") as f:
    json.dump(recorded, f, indent=2)
    f.write("\n")

# Obs gates: both sides of each ratio come from the same interleaved
# A/B round, so the 5% budget compares like-for-like host conditions.
print(f"BM_EventPostDispatch [WLANPS_OBS=ON, no profile attached]: "
      f"{(obs_dispatch_ratio - 1) * 100:+.1f}% vs plain "
      f"(median paired ratio, limit +5%)")
if obs_dispatch_ratio > 1.05:
    print("FAIL: compiled-in observability costs more than 5% on the dispatch path")
    ok = False

print(f"BM_ShardedHotspot/0 [WLANPS_OBS=ON, telemetry attached vs detached]: "
      f"{(telemetry_ratio - 1) * 100:+.1f}% "
      f"(median paired ratio, limit +5%)")
if telemetry_ratio > 1.05:
    print("FAIL: per-quantum shard telemetry costs more than 5% on the sharded run")
    ok = False

if not ok:
    sys.exit(1)
print("perf check passed")
PY
