#!/usr/bin/env bash
# Perf regression gate for the event kernel.
#
# Builds Release, runs bench_perf_kernel, and fails if the CPU time of
# BM_EventPostDispatch regresses more than 15% against the checked-in
# baseline (scripts/perf_baseline.json).  Machines differ, so the baseline
# is a guard rail against order-of-magnitude slips (an accidental
# allocation or a lost fast path), not a laboratory instrument.
#
# A second Release build with -DWLANPS_OBS=ON runs the same benchmark to
# gate the *compiled-in-but-unattached* observability cost: one null-check
# per dispatch must stay within 5% of the plain build measured in the same
# invocation (attached-profile cost is reported by
# BM_EventPostDispatchProfiled in run_bench.sh, not gated here).
#
# Usage: scripts/check_perf.sh [--update-baseline] [build-dir] [obs-build-dir]
#   (default build dirs: build-perf, build-perf-obs)
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
    UPDATE=1
    shift
fi
BUILD_DIR="${1:-build-perf}"
OBS_BUILD_DIR="${2:-build-perf-obs}"
BASELINE="scripts/perf_baseline.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_perf_kernel >/dev/null
cmake -B "$OBS_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DWLANPS_OBS=ON >/dev/null
cmake --build "$OBS_BUILD_DIR" -j "$(nproc)" --target bench_perf_kernel >/dev/null

RESULT_JSON="$BUILD_DIR/check_perf_result.json"
"./$BUILD_DIR/bench/bench_perf_kernel" \
    --benchmark_filter='^BM_EventPostDispatch$' \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json >"$RESULT_JSON"

OBS_RESULT_JSON="$OBS_BUILD_DIR/check_perf_result.json"
"./$OBS_BUILD_DIR/bench/bench_perf_kernel" \
    --benchmark_filter='^BM_EventPostDispatch$' \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json >"$OBS_RESULT_JSON"

python3 - "$RESULT_JSON" "$OBS_RESULT_JSON" "$BASELINE" "$UPDATE" <<'PY'
import json
import sys

result_json, obs_result_json, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]
update = sys.argv[4] == "1"


def median_cpu_ns(path):
    with open(path) as f:
        result = json.load(f)
    median = next(
        b for b in result["benchmarks"] if b["name"] == "BM_EventPostDispatch_median"
    )
    return median["cpu_time"]


cpu_ns = median_cpu_ns(result_json)
obs_cpu_ns = median_cpu_ns(obs_result_json)

if update:
    with open(baseline_path, "w") as f:
        json.dump({"BM_EventPostDispatch": {"cpu_ns": cpu_ns}}, f, indent=2)
        f.write("\n")
    print(f"baseline updated: BM_EventPostDispatch = {cpu_ns:.0f} ns CPU (median of 5)")

ok = True

if not update:
    with open(baseline_path) as f:
        baseline = json.load(f)["BM_EventPostDispatch"]["cpu_ns"]
    limit = baseline * 1.15
    print(f"BM_EventPostDispatch: {cpu_ns:.0f} ns CPU "
          f"(baseline {baseline:.0f} ns, limit {limit:.0f} ns)")
    if cpu_ns > limit:
        print("FAIL: event kernel regressed more than 15% against the baseline")
        ok = False

# Obs gate: both sides measured back-to-back on this machine, so the 5%
# budget is a same-run comparison, not a cross-machine one.
obs_limit = cpu_ns * 1.05
print(f"BM_EventPostDispatch [WLANPS_OBS=ON, no profile attached]: "
      f"{obs_cpu_ns:.0f} ns CPU (plain {cpu_ns:.0f} ns, limit {obs_limit:.0f} ns)")
if obs_cpu_ns > obs_limit:
    print("FAIL: compiled-in observability costs more than 5% on the dispatch path")
    ok = False

if not ok:
    sys.exit(1)
print("perf check passed")
PY
