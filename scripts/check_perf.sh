#!/usr/bin/env bash
# Perf regression gate for the event kernel.
#
# Builds Release, runs bench_perf_kernel, and fails if the CPU time of
# BM_EventPostDispatch regresses more than 15% against the checked-in
# baseline (scripts/perf_baseline.json).  Machines differ, so the baseline
# is a guard rail against order-of-magnitude slips (an accidental
# allocation or a lost fast path), not a laboratory instrument.
#
# Usage: scripts/check_perf.sh [--update-baseline] [build-dir]
#   (default build dir: build-perf)
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
    UPDATE=1
    shift
fi
BUILD_DIR="${1:-build-perf}"
BASELINE="scripts/perf_baseline.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_perf_kernel >/dev/null

RESULT_JSON="$BUILD_DIR/check_perf_result.json"
"./$BUILD_DIR/bench/bench_perf_kernel" \
    --benchmark_filter='^BM_EventPostDispatch$' \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json >"$RESULT_JSON"

python3 - "$RESULT_JSON" "$BASELINE" "$UPDATE" <<'PY'
import json
import sys

result_json, baseline_path, update = sys.argv[1], sys.argv[2], sys.argv[3] == "1"

with open(result_json) as f:
    result = json.load(f)

median = next(
    b for b in result["benchmarks"] if b["name"] == "BM_EventPostDispatch_median"
)
cpu_ns = median["cpu_time"]

if update:
    with open(baseline_path, "w") as f:
        json.dump({"BM_EventPostDispatch": {"cpu_ns": cpu_ns}}, f, indent=2)
        f.write("\n")
    print(f"baseline updated: BM_EventPostDispatch = {cpu_ns:.0f} ns CPU (median of 5)")
    sys.exit(0)

with open(baseline_path) as f:
    baseline = json.load(f)["BM_EventPostDispatch"]["cpu_ns"]

limit = baseline * 1.15
print(f"BM_EventPostDispatch: {cpu_ns:.0f} ns CPU "
      f"(baseline {baseline:.0f} ns, limit {limit:.0f} ns)")
if cpu_ns > limit:
    print("FAIL: event kernel regressed more than 15% against the baseline")
    sys.exit(1)
print("perf check passed")
PY
