#!/usr/bin/env python3
"""Parse wlanps bench output into CSV files (and plots, if matplotlib is
available).

Usage:
    for b in build/bench/*; do $b; done | tee bench_output.txt
    python3 scripts/plot_results.py bench_output.txt --outdir results/

Every `=== ID — title ===` section becomes results/<id>.txt; sections whose
body contains an aligned table additionally get results/<id>.csv.  With
matplotlib installed, the Figure 2 bar chart and the AB3 loss sweep are
rendered as PNGs.

With --metrics metrics.json (the obs snapshot written by run_bench.sh or
hotspot_cli --metrics), the per-client energy-attribution ledger is
rendered as a stacked per-cause bar chart (energy_breakdown.png) and
dumped to energy_breakdown.csv.

With --ab14 ab14.json (the policy-ablation grid written by
bench_ab14_policy_ablation via WLANPS_AB14_OUT, also embedded in
BENCH_*.json as "policy_ablation"), the per-cause energy breakdown is
rendered grouped by power policy (policy_ablation.png + .csv): one
stacked bar per policy x fault-intensity cell, so the idle_listen ->
nav_sleep reallocation of micro_nap is visible next to cam/psm/pamas.
"""

import argparse
import csv
import json
import os
import re
import sys

# Stable stacking order, matching the obs::EnergyCause taxonomy.
ENERGY_CAUSES = [
    "idle_listen",
    "beacon_wake",
    "burst_rx",
    "retransmission",
    "mode_switch",
    "tx",
    "nav_sleep",
]


def split_sections(text):
    """Yield (section_id, title, body) for each '=== ID — title ===' block."""
    pattern = re.compile(r"^=== (\S+) — (.*?) ===$", re.MULTILINE)
    matches = list(pattern.finditer(text))
    for i, m in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        yield m.group(1), m.group(2), text[m.start():end].strip()


def table_rows(body):
    """Best-effort extraction of whitespace-aligned table rows."""
    rows = []
    for line in body.splitlines():
        if line.startswith(("===", "  ")) or not line.strip():
            continue
        cells = re.split(r"\s{2,}", line.strip())
        if len(cells) >= 3:
            rows.append(cells)
    return rows


def write_outputs(sections, outdir):
    os.makedirs(outdir, exist_ok=True)
    for section_id, title, body in sections:
        slug = section_id.lower()
        with open(os.path.join(outdir, f"{slug}.txt"), "w") as f:
            f.write(body + "\n")
        rows = table_rows(body)
        if rows:
            with open(os.path.join(outdir, f"{slug}.csv"), "w", newline="") as f:
                csv.writer(f).writerows(rows)
        print(f"{section_id}: {title} -> {slug}.txt"
              + (f", {slug}.csv ({len(rows)} rows)" if rows else ""))


def try_plots(sections, outdir):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; skipping plots", file=sys.stderr)
        return

    by_id = {sid: body for sid, _, body in sections}

    # Figure 2: configuration vs WNIC power bar chart.
    if "FIG2" in by_id:
        labels, watts = [], []
        for cells in table_rows(by_id["FIG2"]):
            m = re.match(r"([\d.]+)(m?)W", cells[1]) if len(cells) > 1 else None
            if m and not cells[0].startswith(("configuration", "client", "C")):
                labels.append(cells[0])
                watts.append(float(m.group(1)) * (1e-3 if m.group(2) else 1.0))
        if labels:
            fig, ax = plt.subplots(figsize=(6, 3.2))
            ax.bar(labels, watts)
            ax.set_ylabel("mean WNIC power [W]")
            ax.set_title("Figure 2 — average WNIC power, 3 MP3 clients")
            fig.autofmt_xdate(rotation=20)
            fig.tight_layout()
            fig.savefig(os.path.join(outdir, "fig2.png"), dpi=150)
            print("wrote fig2.png")

    # AB3: loss sweep line chart.
    if "AB3" in by_id:
        loss, reno, split, snoop = [], [], [], []
        for cells in table_rows(by_id["AB3"]):
            try:
                l = float(cells[0])
            except ValueError:
                continue
            nums = re.findall(r"([\d.]+) Mb/s", " ".join(cells))
            if len(nums) >= 3:
                loss.append(l)
                reno.append(float(nums[0]))
                split.append(float(nums[1]))
                snoop.append(float(nums[2]))
        if loss:
            fig, ax = plt.subplots(figsize=(6, 3.2))
            ax.plot(loss, reno, marker="o", label="end-to-end TCP")
            ax.plot(loss, split, marker="s", label="split connection")
            ax.plot(loss, snoop, marker="^", label="snoop")
            ax.set_xlabel("wireless loss probability")
            ax.set_ylabel("throughput [Mb/s]")
            ax.set_title("AB3 — TCP over a lossy wireless hop")
            ax.legend()
            fig.tight_layout()
            fig.savefig(os.path.join(outdir, "ab3.png"), dpi=150)
            print("wrote ab3.png")


def energy_breakdown(metrics_path, outdir):
    """CSV + stacked bar chart of the per-client energy ledger."""
    with open(metrics_path) as f:
        doc = json.load(f)
    ledger = doc.get("energy_ledger")
    if not ledger:
        print(f"{metrics_path} has no energy_ledger section (run with the "
              "ledger scoped, e.g. hotspot_cli --metrics)", file=sys.stderr)
        return
    clients = ledger.get("clients", {})
    if not clients:
        print("energy ledger is empty; nothing to plot", file=sys.stderr)
        return
    ids = sorted(clients, key=int)

    os.makedirs(outdir, exist_ok=True)
    csv_path = os.path.join(outdir, "energy_breakdown.csv")
    with open(csv_path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["client", "total_j"] + ENERGY_CAUSES)
        for cid in ids:
            row = clients[cid]
            writer.writerow([cid, row.get("total_j", 0.0)]
                            + [row.get(c, 0.0) for c in ENERGY_CAUSES])
    print(f"wrote energy_breakdown.csv ({len(ids)} clients)")

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; skipping energy plot", file=sys.stderr)
        return
    fig, ax = plt.subplots(figsize=(6, 3.6))
    bottoms = [0.0] * len(ids)
    for cause in ENERGY_CAUSES:
        values = [clients[cid].get(cause, 0.0) for cid in ids]
        ax.bar([f"C{cid}" for cid in ids], values, bottom=bottoms, label=cause)
        bottoms = [b + v for b, v in zip(bottoms, values)]
    ax.set_ylabel("WNIC energy [J]")
    ax.set_title("Per-client energy by cause (attribution ledger)")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "energy_breakdown.png"), dpi=150)
    print("wrote energy_breakdown.png")


def policy_ablation(ab14_path, outdir):
    """Per-cause energy breakdown grouped by power policy (AB14 grid)."""
    with open(ab14_path) as f:
        doc = json.load(f)
    # Accept either the raw WLANPS_AB14_OUT file or a merged BENCH_*.json
    # carrying it as the "policy_ablation" section.
    grid = doc.get("policy_ablation", doc)
    cells = grid.get("cells", [])
    if not cells:
        print(f"{ab14_path} has no policy-ablation cells (run "
              "bench_ab14_policy_ablation with WLANPS_AB14_OUT set)",
              file=sys.stderr)
        return

    os.makedirs(outdir, exist_ok=True)
    csv_path = os.path.join(outdir, "policy_ablation.csv")
    with open(csv_path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["policy", "faults", "wnic_w", "qos_min",
                         "faults_injected"] + ENERGY_CAUSES)
        for cell in cells:
            causes = cell.get("causes", {})
            writer.writerow([cell.get("policy"), cell.get("faults"),
                             cell.get("wnic_w", 0.0), cell.get("qos_min", 0.0),
                             cell.get("faults_injected", 0)]
                            + [causes.get(c, 0.0) for c in ENERGY_CAUSES])
    print(f"wrote policy_ablation.csv ({len(cells)} cells)")

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; skipping policy-ablation plot",
              file=sys.stderr)
        return
    # Group cells by policy so each policy's fault axis sits together.
    policies = []
    for cell in cells:
        if cell.get("policy") not in policies:
            policies.append(cell.get("policy"))
    labels = [f"{c.get('policy')}\n{c.get('faults')}" for c in cells]
    fig, ax = plt.subplots(figsize=(max(6.0, 0.9 * len(cells)), 3.8))
    bottoms = [0.0] * len(cells)
    for cause in ENERGY_CAUSES:
        values = [c.get("causes", {}).get(cause, 0.0) for c in cells]
        if not any(values):
            continue
        ax.bar(labels, values, bottom=bottoms, label=cause)
        bottoms = [b + v for b, v in zip(bottoms, values)]
    ax.set_ylabel("WNIC energy [J]")
    ax.set_title("AB14 — energy by cause, per power policy x fault intensity")
    ax.legend(fontsize=8)
    plt.setp(ax.get_xticklabels(), fontsize=7)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "policy_ablation.png"), dpi=150)
    print("wrote policy_ablation.png")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", nargs="?", help="bench output transcript")
    parser.add_argument("--outdir", default="results")
    parser.add_argument("--metrics", metavar="JSON",
                        help="obs metrics snapshot; plots the per-client "
                             "energy ledger as a stacked bar chart")
    parser.add_argument("--ab14", metavar="JSON",
                        help="policy-ablation grid (WLANPS_AB14_OUT file or "
                             "a merged BENCH_*.json); plots the per-cause "
                             "breakdown grouped by power policy")
    args = parser.parse_args()
    if args.metrics:
        energy_breakdown(args.metrics, args.outdir)
    if args.ab14:
        policy_ablation(args.ab14, args.outdir)
    if args.input is None:
        if not args.metrics and not args.ab14:
            print("nothing to do: pass a bench transcript, --metrics, "
                  "and/or --ab14", file=sys.stderr)
            return 1
        return 0
    with open(args.input) as f:
        text = f.read()
    sections = list(split_sections(text))
    if not sections:
        print("no bench sections found", file=sys.stderr)
        return 1
    write_outputs(sections, args.outdir)
    try_plots(sections, args.outdir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
