#!/usr/bin/env bash
# Run the benchmark suite and merge everything into BENCH_<PR>.json at the
# repo root, so the perf trajectory accumulates PR over PR.
#
#   * bench_perf_kernel (google-benchmark) runs with
#     --benchmark_format=json and is embedded verbatim under
#     "google_benchmark".
#   * Every artifact bench (bench_fig*, bench_ab*) is timed end-to-end;
#     wall-clock seconds land under "wall_clock_seconds".
#   * The PR-1 (pre-calendar-queue) reference numbers are embedded under
#     "baseline_pr1" so before/after lives in one file.
#
# The output format is documented in EXPERIMENTS.md ("Benchmark JSON").
#
#   * bench_fig2 additionally exports its obs metrics snapshot to
#     metrics.json next to the output file (percentiles, NIC residencies;
#     see EXPERIMENTS.md, "Observability").
#
#   * bench_ab12_sensitivity runs a second time with --backend=both and
#     WLANPS_XVAL_OUT set; the sim-vs-analytic comparison (grid size,
#     per-backend seconds, speedup, max saving delta) is embedded under
#     "backend_xval".
#
#   * bench_ab14_policy_ablation runs with WLANPS_AB14_OUT set; the
#     power-policy x fault-intensity grid (per-cell energy causes, QoS,
#     reconciliation error) is embedded under "policy_ablation".
#
#   * BM_ShardedHotspot and BM_Federation attach a HealthReport and emit
#     shard_imbalance / barrier_wait_ms / idle_jumps / quanta counters;
#     those are lifted out of the google-benchmark blob into a
#     "kernel_health" section so the shard-balance trajectory is
#     greppable PR over PR.
#
# Usage: scripts/run_bench.sh [build-dir] [output.json]
#   (defaults: build, BENCH_10.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_10.json}"
METRICS_OUT="$(dirname "$OUT")/metrics.json"

cmake --build "$BUILD_DIR" -j "$(nproc)" >/dev/null

AB14_JSON="$BUILD_DIR/bench_ab14.json"
KERNEL_JSON="$BUILD_DIR/bench_perf_kernel.json"
"./$BUILD_DIR/bench/bench_perf_kernel" \
    --benchmark_format=json \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true >"$KERNEL_JSON"

WALL_TSV="$BUILD_DIR/bench_wall_clock.tsv"
: >"$WALL_TSV"
for bin in "$BUILD_DIR"/bench/bench_fig* "$BUILD_DIR"/bench/bench_ab*; do
    name="$(basename "$bin")"
    start="$(date +%s.%N)"
    if [[ "$name" == "bench_fig2_ipaq_power" ]]; then
        # The fig2 run doubles as the metrics exporter: flat JSON snapshot
        # of everything the scenarios recorded, next to the bench output.
        WLANPS_METRICS_OUT="$METRICS_OUT" "$bin" >/dev/null
    elif [[ "$name" == "bench_ab14_policy_ablation" ]]; then
        # The ab14 run doubles as the policy-ablation exporter.
        WLANPS_AB14_OUT="$AB14_JSON" "$bin" >/dev/null
    else
        "$bin" >/dev/null
    fi
    end="$(date +%s.%N)"
    printf '%s\t%s\n' "$name" "$(python3 -c "print(f'{$end - $start:.3f}')")" >>"$WALL_TSV"
done
echo "wrote $METRICS_OUT"

XVAL_JSON="$BUILD_DIR/bench_backend_xval.json"
WLANPS_XVAL_OUT="$XVAL_JSON" \
    "./$BUILD_DIR/bench/bench_ab12_sensitivity" --backend=both >/dev/null

python3 - "$KERNEL_JSON" "$WALL_TSV" "$XVAL_JSON" "$AB14_JSON" "$OUT" "$(nproc)" <<'PY'
import json
import sys

kernel_json, wall_tsv, xval_json, ab14_json, out = sys.argv[1:6]
cores = int(sys.argv[6])

with open(kernel_json) as f:
    kernel = json.load(f)

wall = {}
with open(wall_tsv) as f:
    for line in f:
        name, seconds = line.split("\t")
        wall[name] = float(seconds)

merged = {
    "generated_by": "scripts/run_bench.sh",
    "schema": "see EXPERIMENTS.md, section 'Benchmark JSON'",
    # PR-1 reference numbers (std::priority_queue + std::function kernel,
    # uncached channel math), measured on the same container class.
    "baseline_pr1": {
        "BM_EventScheduleDispatch_ns": 76137,
        "BM_EventPostDispatch_ns": 58706,
        "BM_EventPostDispatch_cpu_ns": 57851,
        "BM_GilbertElliottTransmit_ns": 34.5,
        "bench_fig2_ipaq_power_seconds": 0.19,
    },
    # Sharded speedups only mean something relative to the host's core
    # count (a single-core container cannot overlap barrier workers).
    "host": {"cores": cores},
    "google_benchmark": kernel,
    "wall_clock_seconds": wall,
}

with open(xval_json) as f:
    merged["backend_xval"] = json.load(f)

with open(ab14_json) as f:
    merged["policy_ablation"] = json.load(f)

# Kernel health telemetry: the sharded and federation benches attach a
# HealthReport and surface its deterministic rollup as benchmark
# counters; lift them into their own section keyed by benchmark name.
HEALTH_COUNTERS = ("shard_imbalance", "barrier_wait_ms", "idle_jumps", "quanta")
kernel_health = {}
for b in kernel.get("benchmarks", []):
    name = b.get("name", "")
    if not name.endswith("_median"):
        continue
    if not (name.startswith("BM_ShardedHotspot/") or name.startswith("BM_Federation")):
        continue
    picked = {k: b[k] for k in HEALTH_COUNTERS if k in b}
    if picked:
        kernel_health[name.removesuffix("_median")] = picked
merged["kernel_health"] = kernel_health

with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

post = next(
    (b for b in kernel.get("benchmarks", [])
     if b.get("name") == "BM_EventPostDispatch_median"),
    None,
)
if post is not None:
    base = merged["baseline_pr1"]["BM_EventPostDispatch_ns"]
    print(f"BM_EventPostDispatch: {post['real_time']:.0f} ns "
          f"(PR-1 baseline {base} ns, {base / post['real_time']:.2f}x)")

sharded = {
    b["name"]: b["real_time"]
    for b in kernel.get("benchmarks", [])
    if b["name"].startswith("BM_ShardedHotspot/") and b["name"].endswith("_median")
}
inline = sharded.get("BM_ShardedHotspot/0/real_time_median")
for threads in (1, 2, 4):
    par = sharded.get(f"BM_ShardedHotspot/{threads}/real_time_median")
    if inline and par:
        print(f"BM_ShardedHotspot {threads} thread(s): {par / 1e6:.2f} ms "
              f"vs inline {inline / 1e6:.2f} ms -> {inline / par:.2f}x "
              f"({cores} core(s) on this host)")
xval = merged["backend_xval"]
print(f"backend_xval: {xval['grid_points']} points, "
      f"speedup {xval['speedup']:.0f}x, "
      f"max saving delta {xval['max_abs_saving_delta_pp']:.3f} pp")
cells = merged["policy_ablation"]["cells"]
worst_recon = max(c["recon_err_j"] for c in cells)
print(f"policy_ablation: {len(cells)} cells, "
      f"worst ledger reconciliation {worst_recon:.1e} J")
for name, counters in sorted(kernel_health.items()):
    parts = ", ".join(f"{k} {v:.4g}" for k, v in sorted(counters.items()))
    print(f"kernel_health {name}: {parts}")
print(f"wrote {out}")
PY
