#!/usr/bin/env python3
"""Compare two benchmark/metrics JSON files metric by metric.

Works on any pair of files sharing the repo's JSON shapes:

  * BENCH_<PR>.json from scripts/run_bench.sh (google-benchmark medians,
    wall-clock seconds), and
  * metrics.json snapshots from the obs exporter (counters, gauges,
    histograms, energy ledger).

Either side may also be a binary WPSM metrics stream written by a
federation run (src/obs/metrics_stream.hpp, magic "WPSM"): the file is
sniffed by magic and decoded into the same flat numeric keys —
summary.<key> for end-of-run scalars, series.<name>.{first,last,min,max,
mean,count} for each registered time series, and client[<id>].<field>
for the stride-sampled per-client records.

Both documents are flattened to dot-separated paths of numeric leaves;
every path present in both files is reported with its old value, new
value, and relative delta.  Noisy bookkeeping (google-benchmark's
"context" block: date, host, load average, ...) is excluded.

By default the diff is informational and always exits 0.  With
--threshold PCT the exit status turns into a gate: any shared metric
whose magnitude changed by more than PCT percent fails the run (exit 1).

Usage:
  scripts/bench_diff.py OLD.json NEW.json [--threshold PCT] [--top N]
"""

import argparse
import json
import struct
import sys

# Subtrees that never carry comparable measurements.
EXCLUDE_PREFIXES = (
    "google_benchmark.context",
)


def flatten(node, prefix=""):
    """Yield (dot.path, value) for every numeric leaf under node."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(value, path)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from flatten(value, f"{prefix}[{index}]")
    elif isinstance(node, bool):
        return  # bool is an int in Python; never a metric
    elif isinstance(node, (int, float)):
        yield prefix, float(node)


WPSM_MAGIC = b"WPSM"


def decode_wpsm(data, path):
    """Decode a WPSM binary metrics stream into a flat {key: float} dict.

    Frame grammar (little-endian, see src/obs/metrics_stream.hpp):
      u8 type, u32 payload_len, payload
    Unknown frame types are skipped by length, so newer writers stay
    readable.
    """
    version = struct.unpack_from("<I", data, 4)[0]
    if version != 1:
        raise ValueError(f"{path}: unsupported WPSM version {version}")
    series_names = {}
    series_values = {}  # id -> [values in file order]
    metrics = {}
    off = 8
    while off < len(data):
        if off + 5 > len(data):
            raise ValueError(f"{path}: truncated WPSM frame header at {off}")
        ftype, length = struct.unpack_from("<BI", data, off)
        off += 5
        if off + length > len(data):
            raise ValueError(f"{path}: truncated WPSM frame payload at {off}")
        payload = data[off:off + length]
        off += length
        if ftype == 0:  # series-def: u32 id, u16 name_len, name
            sid, name_len = struct.unpack_from("<IH", payload)
            series_names[sid] = payload[6:6 + name_len].decode()
        elif ftype == 1:  # sample: u32 id, i64 t_ns, f64 value
            sid, _t_ns, value = struct.unpack_from("<Iqd", payload)
            series_values.setdefault(sid, []).append(value)
        elif ftype == 2:  # summary: u16 key_len, key, f64 value
            key_len = struct.unpack_from("<H", payload)[0]
            key = payload[2:2 + key_len].decode()
            value = struct.unpack_from("<d", payload, 2 + key_len)[0]
            metrics[f"summary.{key}"] = float(value)
        elif ftype == 3:  # client record
            cid, energy_j, qos, completed, shed = struct.unpack_from(
                "<IffII", payload)
            metrics[f"client[{cid}].energy_j"] = float(energy_j)
            metrics[f"client[{cid}].qos"] = float(qos)
            metrics[f"client[{cid}].bursts_completed"] = float(completed)
            metrics[f"client[{cid}].bursts_shed"] = float(shed)
        # unknown frame types: skipped by length
    for sid, values in series_values.items():
        name = series_names.get(sid, f"series_{sid}")
        metrics[f"series.{name}.first"] = values[0]
        metrics[f"series.{name}.last"] = values[-1]
        metrics[f"series.{name}.min"] = min(values)
        metrics[f"series.{name}.max"] = max(values)
        metrics[f"series.{name}.mean"] = sum(values) / len(values)
        metrics[f"series.{name}.count"] = float(len(values))
    return metrics


def load_metrics(path):
    with open(path, "rb") as f:
        raw = f.read()
    if raw[:4] == WPSM_MAGIC:
        return decode_wpsm(raw, path)
    doc = json.loads(raw.decode())
    metrics = {}
    for key, value in flatten(doc):
        if any(key.startswith(p) for p in EXCLUDE_PREFIXES):
            continue
        metrics[key] = value
    return metrics


def relative_delta(old, new):
    if old == new:
        return 0.0
    if old == 0.0:
        return float("inf")
    return (new - old) / abs(old)


def main():
    parser = argparse.ArgumentParser(
        description="Per-metric diff of two benchmark/metrics JSON files.")
    parser.add_argument("old", help="baseline JSON file")
    parser.add_argument("new", help="candidate JSON file")
    parser.add_argument("--threshold", type=float, default=None, metavar="PCT",
                        help="fail (exit 1) if any metric moved more than PCT%%")
    parser.add_argument("--top", type=int, default=25, metavar="N",
                        help="show the N largest movers (default 25; 0 = all)")
    args = parser.parse_args()

    old = load_metrics(args.old)
    new = load_metrics(args.new)

    shared = sorted(set(old) & set(new))
    if not shared:
        print("bench_diff: no shared numeric metrics between the two files",
              file=sys.stderr)
        return 2

    rows = [(key, old[key], new[key], relative_delta(old[key], new[key]))
            for key in shared]
    rows.sort(key=lambda r: (abs(r[3]) != float("inf"), -abs(r[3]), r[0]))

    shown = rows if args.top == 0 else rows[:args.top]
    width = max(len(r[0]) for r in shown) if shown else 0
    print(f"{'metric':<{width}}  {'old':>14}  {'new':>14}  {'delta':>9}")
    for key, old_v, new_v, delta in shown:
        pct = "new-vs-0" if delta == float("inf") else f"{100.0 * delta:+8.2f}%"
        print(f"{key:<{width}}  {old_v:>14.6g}  {new_v:>14.6g}  {pct:>9}")

    changed = sum(1 for r in rows if r[3] != 0.0)
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    print(f"\n{len(shared)} shared metrics, {changed} changed, "
          f"{len(only_old)} only in {args.old}, {len(only_new)} only in {args.new}")

    if args.threshold is not None:
        limit = args.threshold / 100.0
        offenders = [r for r in rows
                     if abs(r[3]) > limit or r[3] == float("inf")]
        if offenders:
            print(f"\nFAIL: {len(offenders)} metric(s) moved more than "
                  f"{args.threshold}%:", file=sys.stderr)
            for key, old_v, new_v, delta in offenders[:10]:
                pct = "inf" if delta == float("inf") else f"{100.0 * delta:+.2f}%"
                print(f"  {key}: {old_v:.6g} -> {new_v:.6g} ({pct})",
                      file=sys.stderr)
            return 1
        print(f"OK: every shared metric within {args.threshold}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
