#!/usr/bin/env bash
# Backend cross-validation gate: the closed-form analytic backend must
# agree with the discrete-event simulator on the AB12 calibration grid.
#
# Runs bench_ab12_sensitivity once per backend with WLANPS_GRID_OUT set,
# then gates the per-point saving_pct agreement with bench_diff.py.  The
# threshold is relative error in percent (default 5, i.e. the analytic
# saving may deviate by at most 5% of the sim value per grid point —
# the measured deviation is ~0.05%, so a trip means a real model or
# simulator regression, not noise; both engines are deterministic).
#
# Usage: scripts/check_xval.sh [build-dir] [threshold-pct]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
THRESHOLD="${2:-5}"

cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_ab12_sensitivity >/dev/null

SIM_JSON="$BUILD_DIR/xval_grid_sim.json"
ANA_JSON="$BUILD_DIR/xval_grid_analytic.json"
WLANPS_GRID_OUT="$SIM_JSON" \
    "./$BUILD_DIR/bench/bench_ab12_sensitivity" --backend=sim >/dev/null
WLANPS_GRID_OUT="$ANA_JSON" \
    "./$BUILD_DIR/bench/bench_ab12_sensitivity" --backend=analytic >/dev/null

python3 scripts/bench_diff.py "$SIM_JSON" "$ANA_JSON" --threshold "$THRESHOLD"
echo "backend cross-validation OK (threshold ${THRESHOLD}%)"
