#!/usr/bin/env bash
# Build the concurrency-sensitive tests under ThreadSanitizer and run them.
# The experiment runner's only cross-thread traffic is the atomic task
# counter and disjoint result slots; the event-kernel tests (calendar
# queue, slab nodes, InlineCallback) are single-threaded per Simulator but
# run here too, because the runner executes one Simulator per worker
# thread and TSan vets that nothing in the kernel shares hidden state.
# The build compiles with -DWLANPS_OBS=ON so the obs hot-path hooks, the
# synchronized log sink, and the per-run ScopedRegistry run under TSan
# (obs_test hammers the logger from 8 threads and the runner merge from 4).
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DWLANPS_SANITIZE=thread -DWLANPS_OBS=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target exp_runner_test sim_simulator_test sim_calendar_queue_test obs_test \
    sim_sharded_test fed_federation_test obs_health_test
"./$BUILD_DIR/tests/exp_runner_test"
"./$BUILD_DIR/tests/sim_simulator_test"
"./$BUILD_DIR/tests/sim_calendar_queue_test"
"./$BUILD_DIR/tests/obs_test"
# The sharded kernel is the one subsystem with real cross-thread traffic
# during a simulation (mailbox posts, barrier handoffs, worker pool
# start/stop); its tests run every policy at multiple worker counts.
"./$BUILD_DIR/tests/sim_sharded_test"
# The federation rides the same kernel but adds slab atomics (state /
# current_ap / epoch) and cross-shard handoff ownership transfers; its
# thread-invariance tests run the full roam/fault machinery at 1/2/4
# workers.
"./$BUILD_DIR/tests/fed_federation_test"
# Health telemetry stages per-quantum counters in shard fields the
# workers write and the coordinator reads back across the barrier; its
# across-thread bit-identity tests run that handoff at 1/2/4 workers
# with watchdog sweeps live.
"./$BUILD_DIR/tests/obs_health_test"
echo "TSan check passed."
