#!/usr/bin/env bash
# Build the experiment-runner test under ThreadSanitizer and run it.
# The runner's only cross-thread traffic is the atomic task counter and
# disjoint result slots; TSan vets exactly that.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DWLANPS_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" --target exp_runner_test
"./$BUILD_DIR/tests/exp_runner_test"
echo "TSan check passed."
