/// Tests for the calendar-queue event kernel: FIFO tie-breaking at scale,
/// cancellation across bucket rollover, window rebuilds, and tombstone
/// accounting (queue_size vs pending_events).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace wlanps::sim {
namespace {

using namespace time_literals;

TEST(CalendarQueueTest, FifoTieOrderingAtTenThousandSimultaneousEvents) {
    // 10k events at the same instant overflow a single wheel bucket many
    // times over; dispatch must still be exact insertion order.
    Simulator sim;
    std::vector<int> order;
    order.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
        if (i % 3 == 0) {
            sim.schedule_at(1_ms, [&order, i] { order.push_back(i); });
        } else {
            sim.post_at(1_ms, [&order, i] { order.push_back(i); });
        }
    }
    sim.run();
    ASSERT_EQ(order.size(), 10000u);
    for (int i = 0; i < 10000; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(CalendarQueueTest, CancelWhileQueuedAcrossBucketRollover) {
    // Events spread far beyond the wheel window (the wheel covers ~1 ms)
    // live in the overflow ladder and migrate into the wheel as the cursor
    // advances.  Cancelling every other one while queued must suppress
    // exactly those, wherever each entry happens to reside.
    Simulator sim;
    std::vector<int> fired;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 200; ++i) {
        handles.push_back(
            sim.schedule_at(Time::from_us(i * 137), [&fired, i] { fired.push_back(i); }));
    }
    EXPECT_EQ(sim.queue_size(), 200u);
    EXPECT_EQ(sim.pending_events(), 200u);
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    EXPECT_EQ(sim.queue_size(), 200u);      // tombstones still queued
    EXPECT_EQ(sim.pending_events(), 100u);  // but no longer pending
    sim.run();
    ASSERT_EQ(fired.size(), 100u);
    for (std::size_t i = 0; i < fired.size(); ++i) {
        EXPECT_EQ(fired[i], static_cast<int>(2 * i + 1));
    }
    EXPECT_EQ(sim.queue_size(), 0u);
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_EQ(sim.events_dispatched(), 100u);
}

TEST(CalendarQueueTest, InsertBehindAdvancedCursorRewindsWindow) {
    // run_until() walks the cursor forward to the far-future minimum; a
    // later insert at an earlier time must rewind the window, and both
    // events must then dispatch in time order.
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(100_ms, [&order] { order.push_back(100); });
    sim.run_until(1_ms);  // cursor jumps toward the 100 ms bucket
    EXPECT_EQ(sim.now(), 1_ms);
    sim.schedule_at(2_ms, [&order] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{2, 100}));
    EXPECT_EQ(sim.now(), 100_ms);
}

TEST(CalendarQueueTest, PendingEventsExcludesCancelledPeriodic) {
    Simulator sim;
    int ticks = 0;
    PeriodicEvent periodic(sim, 10_ms, [&ticks] { ++ticks; });
    periodic.start();
    EXPECT_EQ(sim.pending_events(), 1u);
    periodic.cancel();
    EXPECT_EQ(sim.queue_size(), 1u);  // the tombstone is still queued
    EXPECT_EQ(sim.pending_events(), 0u);
    sim.run();
    EXPECT_EQ(ticks, 0);
    EXPECT_EQ(sim.queue_size(), 0u);
}

TEST(CalendarQueueTest, PeriodicBeyondWheelWindowTicksExactly) {
    // A 10 ms period lands each re-arm outside the ~1 ms wheel window, so
    // every tick takes the overflow → migrate path.
    Simulator sim;
    std::vector<Time> fire_times;
    PeriodicEvent periodic(sim, 10_ms, [&] { fire_times.push_back(sim.now()); });
    periodic.start();
    sim.run_until(55_ms);
    ASSERT_EQ(fire_times.size(), 5u);
    for (std::size_t i = 0; i < fire_times.size(); ++i) {
        EXPECT_EQ(fire_times[i], Time::from_ms(10 * (static_cast<std::int64_t>(i) + 1)));
    }
}

TEST(CalendarQueueTest, RandomizedDispatchMatchesReferenceHeap) {
    // Drive the kernel with a randomized workload (pre-scheduled events
    // plus run-time insertions from callbacks) while mirroring every
    // scheduling decision into a reference binary heap ordered by
    // (time, seq).  The kernel's dispatch sequence must equal the heap's
    // pop sequence exactly — the property every determinism guarantee in
    // this repo reduces to.
    struct Ref {
        Time when;
        std::uint64_t seq;
        bool operator>(const Ref& rhs) const {
            if (when != rhs.when) return when > rhs.when;
            return seq > rhs.seq;
        }
    };
    Simulator sim;
    std::priority_queue<Ref, std::vector<Ref>, std::greater<>> reference;
    std::vector<std::uint64_t> dispatched;
    std::uint64_t next_seq = 0;
    Random rng(4242);

    std::function<void(Time, int)> schedule_one = [&](Time when, int depth) {
        const std::uint64_t seq = next_seq++;
        reference.push(Ref{when, seq});
        sim.post_at(when, [&, seq, depth] {
            dispatched.push_back(seq);
            // Occasionally spawn follow-ups, including zero-delay ones
            // (same-time inserts into the bucket being drained).
            if (depth < 3 && rng.chance(0.3)) {
                const Time delay = rng.chance(0.2)
                                       ? Time::zero()
                                       : Time::from_ns(rng.uniform_int(1, 3'000'000));
                schedule_one(sim.now() + delay, depth + 1);
            }
        });
    };
    for (int i = 0; i < 2000; ++i) {
        schedule_one(Time::from_ns(rng.uniform_int(0, 8'000'000)), 0);
    }
    sim.run();

    ASSERT_EQ(dispatched.size(), next_seq);
    for (std::size_t i = 0; i < dispatched.size(); ++i) {
        ASSERT_FALSE(reference.empty());
        EXPECT_EQ(dispatched[i], reference.top().seq) << "at dispatch index " << i;
        reference.pop();
    }
    EXPECT_TRUE(reference.empty());
}

TEST(CalendarQueueTest, QueueSizeCountsTombstonesPendingDoesNot) {
    Simulator sim;
    auto h1 = sim.schedule_at(1_ms, [] {});
    auto h2 = sim.schedule_at(2_ms, [] {});
    sim.post_at(3_ms, [] {});
    EXPECT_EQ(sim.queue_size(), 3u);
    EXPECT_EQ(sim.pending_events(), 3u);
    h1.cancel();
    h2.cancel();
    h2.cancel();  // double-cancel must not double-count
    EXPECT_EQ(sim.queue_size(), 3u);
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(sim.queue_size(), 0u);
    EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace wlanps::sim
