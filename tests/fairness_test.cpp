/// Fairness and latency-bound properties of the MAC layers.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/access_point.hpp"
#include "mac/bss.hpp"
#include "mac/ecmac.hpp"
#include "mac/station.hpp"
#include "sim/simulator.hpp"
#include "traffic/source.hpp"

namespace wlanps::mac {
namespace {

using namespace time_literals;

TEST(FairnessTest, SaturatedDcfSharesAirtimeEvenly) {
    // Classic CSMA/CA property: N identical saturated uplink stations get
    // roughly equal goodput (binary exponential backoff is long-run fair).
    sim::Simulator sim;
    sim::Random root(71);
    Bss bss(sim);
    AccessPointConfig cfg;
    cfg.mode = ApMode::cam;
    AccessPoint ap(sim, bss, cfg, DcfConfig{}, root.fork(1));

    const int n = 4;
    std::vector<std::unique_ptr<WlanStation>> stations;
    std::vector<std::int64_t> delivered(n, 0);
    for (int i = 0; i < n; ++i) {
        StationConfig st;
        st.mode = StationMode::cam;
        stations.push_back(std::make_unique<WlanStation>(
            sim, bss, static_cast<StationId>(i + 1), st, DcfConfig{}, phy::WlanNicConfig{},
            root.fork(static_cast<std::uint64_t>(10 + i))));
        auto* station = stations.back().get();
        auto again = std::make_shared<std::function<void(bool)>>();
        *again = [station, &sim, &delivered, i, again](bool ok) {
            if (ok) delivered[static_cast<std::size_t>(i)] += 1400;
            if (sim.now() < Time::from_seconds(10)) {
                station->send_up(DataSize::from_bytes(1400), *again);
            }
        };
        station->send_up(DataSize::from_bytes(1400), *again);
    }
    sim.run_until(Time::from_seconds(10));

    std::int64_t total = 0, min_share = delivered[0], max_share = delivered[0];
    for (const auto d : delivered) {
        total += d;
        min_share = std::min(min_share, d);
        max_share = std::max(max_share, d);
    }
    ASSERT_GT(total, 0);
    // Jain-style check: no station below 60% or above 140% of the mean.
    const double mean = static_cast<double>(total) / n;
    EXPECT_GT(min_share, mean * 0.6);
    EXPECT_LT(max_share, mean * 1.4);
}

TEST(FairnessTest, PsmServesAllStationsEachBeaconInterval) {
    // Under light per-station load, PSM latency stays bounded by roughly
    // one beacon interval for every station — nobody starves.
    sim::Simulator sim;
    sim::Random root(72);
    Bss bss(sim);
    AccessPointConfig cfg;
    cfg.mode = ApMode::psm;
    AccessPoint ap(sim, bss, cfg, DcfConfig{}, root.fork(1));
    const int n = 4;
    std::vector<std::unique_ptr<WlanStation>> stations;
    std::vector<std::unique_ptr<traffic::PoissonSource>> sources;
    for (int i = 0; i < n; ++i) {
        StationConfig st;
        st.mode = StationMode::psm;
        stations.push_back(std::make_unique<WlanStation>(
            sim, bss, static_cast<StationId>(i + 1), st, DcfConfig{}, phy::WlanNicConfig{},
            root.fork(static_cast<std::uint64_t>(10 + i))));
        const auto id = static_cast<StationId>(i + 1);
        sources.push_back(std::make_unique<traffic::PoissonSource>(
            sim, [&ap, id](DataSize s) { ap.send(id, s); }, DataSize::from_bytes(800),
            Rate::from_kbps(32), root.fork(static_cast<std::uint64_t>(20 + i))));
    }
    ap.start();
    for (auto& st : stations) {
        st->start(ap.config().beacon_interval, ap.config().beacon_interval);
    }
    for (auto& s : sources) s->start();
    sim.run_until(Time::from_seconds(30));

    for (auto& st : stations) {
        ASSERT_GT(st->delivery_latency().count(), 50u);
        // Mean latency ~ half a beacon interval; the 95th percentile-ish
        // bound is two intervals.
        EXPECT_LT(st->delivery_latency().mean(), 0.15);
        EXPECT_LT(st->delivery_latency().max(), 0.45);
    }
}

TEST(FairnessTest, EcMacLatencyBoundedByTwoSuperframes) {
    sim::Simulator sim;
    sim::Random root(73);
    Bss bss(sim);
    EcMacConfig cfg;
    cfg.superframe = 100_ms;
    EcMacController controller(sim, bss, cfg, root.fork(1));
    EcMacStation st(sim, bss, 1, cfg, phy::WlanNicConfig{});
    controller.start();
    st.start(controller.superframe_anchor());

    Time worst = Time::zero();
    std::size_t count = 0;
    st.set_receive_callback([&](DataSize, Time latency) {
        worst = std::max(worst, latency);
        ++count;
    });
    traffic::PoissonSource src(sim, [&controller](DataSize s) { controller.send(1, s); },
                               DataSize::from_bytes(800), Rate::from_kbps(64), root.fork(2));
    src.start();
    sim.run_until(Time::from_seconds(30));

    ASSERT_GT(count, 100u);
    // A frame arriving just after a boundary rides the next superframe:
    // worst case is ~2 superframes (plus slot position within it).
    EXPECT_LT(worst, cfg.superframe * 2.5);
}

}  // namespace
}  // namespace wlanps::mac
