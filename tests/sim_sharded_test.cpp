/// Sharded parallel kernel tests: the strict barrier policy must be
/// bit-identical to the inline (threads=0) execution of the same sharded
/// world at every worker-thread count, mailboxes must merge in
/// deterministic (time, source, sequence) order, contract violations
/// (lookahead, capacity) must fail loudly, and the lax clock-skew policy
/// must keep its bounded-error promise.  Scenario-level tests drive the
/// same checks through the sharded multi-cell hotspot.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "core/scenario_spec.hpp"
#include "fault/fault.hpp"
#include "sim/assert.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace wlanps::sim {
namespace {

constexpr Time kLookahead = Time::from_ms(10);

/// A token-passing ring: every delivered token is logged on its shard and
/// forwarded to the next shard one lookahead later, interleaved with
/// shard-local events.  Any reordering or lost/dup delivery changes the
/// per-shard logs, so hashing them detects nondeterminism.
struct RingWorld {
    ShardedSimulator shx;
    std::vector<std::vector<std::uint64_t>> logs;
    std::vector<std::uint64_t> local_ticks;

    explicit RingWorld(ShardedConfig config)
        : shx(std::move(config)),
          logs(shx.shard_count()),
          local_ticks(shx.shard_count(), 0) {}

    void seed_tokens() {
        for (std::size_t s = 0; s < shx.shard_count(); ++s) {
            shx.shard(s).post_at(Time::zero(), [this, s] { hop(s, s * 1000); });
        }
    }

    void hop(std::size_t at, std::uint64_t token) {
        const Time now = shx.shard(at).now();
        logs[at].push_back(token * 1000003 +
                           static_cast<std::uint64_t>(now.ns() % 1000003));
        // A shard-local event between quantum boundaries, to interleave
        // local dispatch with mailbox flushes.
        shx.shard(at).post_at(now + Time::from_ms(3), [this, at] { ++local_ticks[at]; });
        const std::size_t to = (at + 1) % shx.shard_count();
        shx.post_cross(at, to, now + shx.config().lookahead,
                       [this, to, token] { hop(to, token + 1); });
    }

    [[nodiscard]] std::uint64_t fingerprint() const {
        std::uint64_t h = 1469598103934665603ull;
        for (std::size_t s = 0; s < logs.size(); ++s) {
            for (std::uint64_t v : logs[s]) h = (h ^ (v + s)) * 1099511628211ull;
            h = (h ^ local_ticks[s]) * 1099511628211ull;
        }
        return h;
    }
};

struct RingRun {
    std::uint64_t fingerprint = 0;
    std::uint64_t quanta = 0;
    std::vector<ShardStats> stats;
};

RingRun run_ring(std::size_t shards, std::size_t threads, SyncPolicy policy,
                 Time skew_window = Time::zero()) {
    ShardedConfig config;
    config.shards = shards;
    config.threads = threads;
    config.policy = policy;
    config.lookahead = kLookahead;
    config.skew_window = skew_window;
    RingWorld world(config);
    world.seed_tokens();
    world.shx.run_until(Time::from_seconds(2));
    RingRun out;
    out.fingerprint = world.fingerprint();
    out.quanta = world.shx.quanta();
    for (std::size_t s = 0; s < shards; ++s) out.stats.push_back(world.shx.stats(s));
    return out;
}

void expect_same_run(const RingRun& a, const RingRun& b, const char* what) {
    EXPECT_EQ(a.fingerprint, b.fingerprint) << what;
    EXPECT_EQ(a.quanta, b.quanta) << what;
    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (std::size_t s = 0; s < a.stats.size(); ++s) {
        EXPECT_EQ(a.stats[s].events_dispatched, b.stats[s].events_dispatched) << what << s;
        EXPECT_EQ(a.stats[s].cross_sent, b.stats[s].cross_sent) << what << s;
        EXPECT_EQ(a.stats[s].cross_received, b.stats[s].cross_received) << what << s;
        EXPECT_EQ(a.stats[s].cross_late, b.stats[s].cross_late) << what << s;
    }
}

TEST(ShardedKernelTest, StrictBitIdentityAcrossThreadCounts) {
    const RingRun reference = run_ring(3, 0, SyncPolicy::strict_barrier);
    EXPECT_GT(reference.fingerprint, 0u);
    EXPECT_GT(reference.stats[0].cross_received, 0u);
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        const RingRun parallel = run_ring(3, threads, SyncPolicy::strict_barrier);
        expect_same_run(reference, parallel, "threads mismatch vs inline, shard ");
        for (const ShardStats& s : parallel.stats) EXPECT_EQ(s.cross_late, 0u);
    }
}

TEST(ShardedKernelTest, StrictIdenticalForDifferentShardCountsOfSameRing) {
    // Not required to match across *shard* counts (different worlds), but
    // each shard count must be self-consistent across thread counts.
    for (std::size_t shards : {2u, 5u, 8u}) {
        const RingRun reference = run_ring(shards, 0, SyncPolicy::strict_barrier);
        const RingRun parallel = run_ring(shards, 4, SyncPolicy::strict_barrier);
        expect_same_run(reference, parallel, "shards self-consistency, shard ");
    }
}

TEST(ShardedKernelTest, MailboxMergesInTimeSourceSequenceOrder) {
    ShardedConfig config;
    config.shards = 3;
    config.lookahead = kLookahead;
    ShardedSimulator shx(config);
    std::vector<int> order;
    const Time when = kLookahead;  // same timestamp for every message
    // Posted deliberately out of (src, seq) order.
    shx.post_cross(2, 0, when, [&order] { order.push_back(20); });
    shx.post_cross(1, 0, when, [&order] { order.push_back(10); });
    shx.post_cross(1, 0, when, [&order] { order.push_back(11); });
    shx.post_cross(2, 0, when, [&order] { order.push_back(21); });
    // A later timestamp posted first must still fire last.
    shx.post_cross(1, 0, when + Time::from_ms(1), [&order] { order.push_back(99); });
    shx.run_until(Time::from_ms(40));
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 99}));
}

TEST(ShardedKernelTest, CrossPostBelowLookaheadIsRejected) {
    ShardedConfig config;
    config.shards = 2;
    config.lookahead = kLookahead;
    ShardedSimulator shx(config);
    EXPECT_THROW(shx.post_cross(0, 1, Time::from_ms(5), [] {}), ContractViolation);
    // Exactly at the lookahead bound is allowed.
    shx.post_cross(0, 1, kLookahead, [] {});
    // Same-shard posts have no lookahead floor (plain local post).
    shx.post_cross(0, 0, Time::from_ms(1), [] {});
    shx.run_until(Time::from_ms(30));
}

TEST(ShardedKernelTest, MailboxCapacityIsAContract) {
    ShardedConfig config;
    config.shards = 2;
    config.lookahead = kLookahead;
    config.mailbox_capacity = 2;
    ShardedSimulator shx(config);
    shx.post_cross(0, 1, kLookahead, [] {});
    shx.post_cross(0, 1, kLookahead, [] {});
    EXPECT_THROW(shx.post_cross(0, 1, kLookahead, [] {}), ContractViolation);
}

TEST(ShardedKernelTest, CancelAcrossQuantumBoundary) {
    ShardedConfig config;
    config.shards = 2;
    config.threads = 2;
    config.lookahead = kLookahead;
    ShardedSimulator shx(config);
    bool cancelled_fired = false;
    bool control_fired = false;
    // Scheduled in quantum [20, 30); cancelled from the same shard during
    // quantum [0, 10) — the tombstone must survive the barrier crossings.
    EventHandle doomed = shx.shard(0).schedule_at(Time::from_ms(25),
                                                  [&cancelled_fired] { cancelled_fired = true; });
    shx.shard(0).post_at(Time::from_ms(2), [&doomed] { doomed.cancel(); });
    shx.shard(0).post_at(Time::from_ms(25), [&control_fired] { control_fired = true; });
    shx.run_until(Time::from_ms(50));
    EXPECT_FALSE(cancelled_fired);
    EXPECT_TRUE(control_fired);
}

TEST(ShardedKernelTest, IdleQuantaAreJumpedDeterministically) {
    for (std::size_t threads : {0u, 2u}) {
        ShardedConfig config;
        config.shards = 2;
        config.threads = threads;
        config.lookahead = kLookahead;
        ShardedSimulator shx(config);
        int fired = 0;
        shx.shard(0).post_at(Time::zero(), [&fired] { ++fired; });
        shx.shard(1).post_at(Time::from_seconds(5), [&fired] { ++fired; });
        shx.run_until(Time::from_seconds(10));
        EXPECT_EQ(fired, 2);
        // 10 s / 10 ms = 1000 naive quanta; the idle jump must skip the
        // empty windows instead of spinning the barrier through them.
        EXPECT_LT(shx.quanta(), 10u) << "threads=" << threads;
        EXPECT_EQ(shx.now(), Time::from_seconds(10));
    }
}

TEST(ShardedKernelTest, LaxWindowBoundsTimestampError) {
    const Time window = Time::from_ms(40);
    ShardedConfig config;
    config.shards = 2;
    config.policy = SyncPolicy::lax_window;
    config.lookahead = kLookahead;
    config.skew_window = window;
    ShardedSimulator shx(config);
    Time delivered_at = Time::zero();
    // Anchor the first window at t=0 (otherwise the idle jump would start
    // it at the first pending event and shift every boundary).
    shx.shard(0).post_at(Time::zero(), [] {});
    // Sent mid-window at t=11ms with when=21ms: the receiver only flushes
    // at the next window boundary (t=40ms), so the event is late and must
    // be bumped to exactly the boundary.
    shx.shard(1).post_at(Time::from_ms(11), [&shx, &delivered_at] {
        shx.post_cross(1, 0, Time::from_ms(21), [&shx, &delivered_at] {
            delivered_at = shx.shard(0).now();
        });
    });
    shx.run_until(Time::from_ms(80));
    EXPECT_EQ(delivered_at, window);
    const ShardStats stats = shx.stats(0);
    EXPECT_EQ(stats.cross_late, 1u);
    EXPECT_GT(stats.max_skew_ns, 0);
    EXPECT_LE(stats.max_skew_ns, (window - kLookahead).ns());
}

TEST(ShardedKernelTest, LaxIsStillDeterministicAcrossThreadCounts) {
    const RingRun reference = run_ring(4, 0, SyncPolicy::lax_window, Time::from_ms(50));
    const RingRun parallel = run_ring(4, 4, SyncPolicy::lax_window, Time::from_ms(50));
    expect_same_run(reference, parallel, "lax threads mismatch, shard ");
}

TEST(ShardedKernelTest, ConfigValidation) {
    EXPECT_THROW(ShardedConfig{}.with_shards(0).validate(), ContractViolation);
    EXPECT_THROW(ShardedConfig{}.with_lookahead(Time::zero()).validate(), ContractViolation);
    EXPECT_THROW(ShardedConfig{}.with_mailbox_capacity(0).validate(), ContractViolation);
    // Lax window narrower than the lookahead would deliver into the past.
    EXPECT_THROW(ShardedConfig{}
                     .with_policy(SyncPolicy::lax_window)
                     .with_skew_window(Time::from_ms(1))
                     .validate(),
                 ContractViolation);
    // A skew window is meaningless under the strict policy.
    EXPECT_THROW(ShardedConfig{}.with_skew_window(Time::from_ms(50)).validate(),
                 ContractViolation);
    ShardedConfig ok;
    ok.shards = 4;
    ok.threads = 2;
    ok.validate();
}

TEST(ShardedKernelTest, CallbackExceptionPropagatesFromWorkers) {
    ShardedConfig config;
    config.shards = 2;
    config.threads = 2;
    config.lookahead = kLookahead;
    ShardedSimulator shx(config);
    shx.shard(1).post_at(Time::from_ms(5), [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(shx.run_until(Time::from_ms(20)), std::runtime_error);
}

}  // namespace
}  // namespace wlanps::sim

namespace wlanps::core {
namespace {

const SimBackend backend;

ScenarioSpec sharded_spec(int clients, int shards, int threads, std::uint64_t seed,
                          Time duration = Time::from_seconds(40)) {
    StreamConfig stream;
    stream.clients = clients;
    stream.duration = duration;
    stream.seed = seed;
    HotspotConfig options;
    options.sharding = ShardingConfig{}.with_shards(shards).with_threads(threads);
    return ScenarioSpec::hotspot().with_stream(stream).with_hotspot(options);
}

void expect_bit_identical(const ScenarioResult& a, const ScenarioResult& b,
                          const char* what) {
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.clients.size(), b.clients.size()) << what;
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
        // Exact equality, not near-equality: the strict barrier policy
        // promises bit-identical floating-point trajectories.
        EXPECT_EQ(a.clients[i].wnic_average.watts(), b.clients[i].wnic_average.watts())
            << what << " client " << i;
        EXPECT_EQ(a.clients[i].wnic_energy.joules(), b.clients[i].wnic_energy.joules())
            << what << " client " << i;
        EXPECT_EQ(a.clients[i].device_average.watts(), b.clients[i].device_average.watts())
            << what << " client " << i;
        EXPECT_EQ(a.clients[i].qos, b.clients[i].qos) << what << " client " << i;
        EXPECT_EQ(a.clients[i].underruns, b.clients[i].underruns) << what << " client " << i;
        EXPECT_EQ(a.clients[i].received, b.clients[i].received) << what << " client " << i;
    }
}

TEST(ShardedHotspotTest, BitIdenticalAtEveryThreadCount) {
    const ScenarioResult reference = backend.run(sharded_spec(5, 3, 0, 7));
    EXPECT_EQ(reference.label, "hotspot-sharded-edf");
    ASSERT_EQ(reference.clients.size(), 5u);
    for (const ClientMetrics& c : reference.clients) {
        EXPECT_GT(c.received.bytes(), 0u);
        EXPECT_GT(c.wnic_energy.joules(), 0.0);
    }
    for (int threads : {1, 2, 3}) {  // validation caps workers at the shard count
        const ScenarioResult parallel = backend.run(sharded_spec(5, 3, threads, 7));
        expect_bit_identical(reference, parallel, "threads");
    }
}

TEST(ShardedHotspotTest, Fig2ShapeBitIdenticalAcrossThreadCounts) {
    // The fig2 world shape — 3 MP3 clients, one per cell, WLAN+BT — over a
    // longer horizon, strict policy: every worker count must reproduce the
    // inline run exactly.
    const ScenarioResult reference =
        backend.run(sharded_spec(3, 3, 0, 42, Time::from_seconds(120)));
    for (const ClientMetrics& c : reference.clients) {
        EXPECT_GT(c.received.bytes(), 0u);
        EXPECT_GT(c.qos, 0.5);
    }
    for (int threads : {1, 2, 3}) {
        const ScenarioResult parallel =
            backend.run(sharded_spec(3, 3, threads, 42, Time::from_seconds(120)));
        expect_bit_identical(reference, parallel, "fig2-shape threads");
    }
}

TEST(ShardedHotspotTest, SeedSensitivity) {
    const ScenarioResult a = backend.run(sharded_spec(4, 2, 2, 1));
    const ScenarioResult b = backend.run(sharded_spec(4, 2, 2, 2));
    ASSERT_EQ(a.clients.size(), b.clients.size());
    bool any_difference = false;
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
        if (a.clients[i].wnic_energy.joules() != b.clients[i].wnic_energy.joules()) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference) << "seed is being ignored";
}

TEST(ShardedHotspotTest, LaxPolicyRunsAndStaysDeterministic) {
    StreamConfig stream;
    stream.clients = 4;
    stream.duration = Time::from_seconds(30);
    stream.seed = 11;
    HotspotConfig options;
    options.sharding = ShardingConfig{}
                           .with_shards(2)
                           .with_lax(true)
                           .with_lookahead(Time::from_ms(20))
                           .with_skew_window(Time::from_ms(100));
    const auto spec = ScenarioSpec::hotspot().with_stream(stream).with_hotspot(options);
    const ScenarioResult inline_run = backend.run(spec);
    HotspotConfig threaded = options;
    threaded.sharding.threads = 2;  // validation caps workers at the shard count
    const ScenarioResult parallel =
        backend.run(ScenarioSpec::hotspot().with_stream(stream).with_hotspot(threaded));
    for (const ClientMetrics& c : inline_run.clients) EXPECT_GT(c.received.bytes(), 0u);
    expect_bit_identical(inline_run, parallel, "lax threads");
}

TEST(ShardedHotspotTest, WlanOnlySixtyFourClientSmoke) {
    StreamConfig stream;
    stream.clients = 64;
    stream.duration = Time::from_seconds(8);
    stream.seed = 3;
    HotspotConfig options;
    options.bt_available = false;  // 8 clients per cell exceeds a piconet
    options.sharding = ShardingConfig{}.with_shards(8).with_threads(2);
    const ScenarioResult result =
        backend.run(ScenarioSpec::hotspot().with_stream(stream).with_hotspot(options));
    ASSERT_EQ(result.clients.size(), 64u);
    for (const ClientMetrics& c : result.clients) EXPECT_GT(c.received.bytes(), 0u);
}

TEST(ShardedHotspotTest, ShardingRejectsIncompatibleFeatures) {
    StreamConfig stream;
    stream.clients = 4;
    stream.seed = 1;
    {
        HotspotConfig options;
        options.media_proxy = true;
        options.sharding = ShardingConfig{}.with_shards(2);
        EXPECT_THROW(
            backend.run(ScenarioSpec::hotspot().with_stream(stream).with_hotspot(options)),
            ContractViolation);
    }
    {
        // 64 BT clients over 8 cells = 8 per piconet > the 7-slave limit.
        StreamConfig big = stream;
        big.clients = 64;
        HotspotConfig options;
        options.sharding = ShardingConfig{}.with_shards(8);
        EXPECT_THROW(
            backend.run(ScenarioSpec::hotspot().with_stream(big).with_hotspot(options)),
            ContractViolation);
    }
    {
        // Skew window without the lax policy is a config contradiction.
        HotspotConfig options;
        options.sharding = ShardingConfig{}.with_shards(2).with_skew_window(Time::from_ms(50));
        EXPECT_THROW(
            backend.run(ScenarioSpec::hotspot().with_stream(stream).with_hotspot(options)),
            ContractViolation);
    }
}

// --- fault plans on the sharded world ------------------------------------

ScenarioSpec sharded_fault_spec(const fault::FaultPlan& plan, int threads,
                                std::uint64_t seed = 5) {
    StreamConfig stream;
    stream.clients = 4;
    stream.duration = Time::from_seconds(40);
    stream.seed = seed;
    stream.fault_plan = plan;
    HotspotConfig options;
    options.sharding = ShardingConfig{}.with_shards(2).with_threads(threads);
    return ScenarioSpec::hotspot().with_stream(stream).with_hotspot(options);
}

TEST(ShardedHotspotFaultTest, NicLockupInjectsAndStaysThreadInvariant) {
    fault::FaultPlan plan;
    plan.nic_lockup(Time::from_seconds(10), Time::from_seconds(3));
    const ScenarioResult inline_run = backend.run(sharded_fault_spec(plan, 0));
    EXPECT_GT(inline_run.faults_injected, 0u);
    const ScenarioResult parallel = backend.run(sharded_fault_spec(plan, 2));
    expect_bit_identical(inline_run, parallel, "nic-lockup threads");
    EXPECT_EQ(inline_run.faults_injected, parallel.faults_injected);
}

TEST(ShardedHotspotFaultTest, CrashAndLateJoinPerCell) {
    // One crash and one delayed registration per cell (clients 1, 3 land
    // on shard 0; clients 2, 4 on shard 1): the planner must keep serving
    // the healthy clients, book zero-delivery completions for the crashed
    // ones, and hold grants until the late joiners register.
    fault::FaultPlan plan;
    plan.client_crash(Time::from_seconds(12), Time::from_seconds(8), 1)
        .client_crash(Time::from_seconds(14), Time::from_seconds(8), 2)
        .delayed_registration(Time::from_seconds(5), 3)
        .delayed_registration(Time::from_seconds(6), 4);
    const ScenarioResult inline_run = backend.run(sharded_fault_spec(plan, 0));
    EXPECT_GT(inline_run.faults_injected, 0u);
    ASSERT_EQ(inline_run.clients.size(), 4u);
    // Every client — crashed-and-revived or late-joined — still receives.
    for (const ClientMetrics& c : inline_run.clients) {
        EXPECT_GT(c.received.bytes(), 0u);
    }
    const ScenarioResult parallel = backend.run(sharded_fault_spec(plan, 2));
    expect_bit_identical(inline_run, parallel, "crash/late-join threads");
    EXPECT_EQ(inline_run.faults_injected, parallel.faults_injected);
}

TEST(ShardedHotspotFaultTest, BeaconAndPollKindsStayRejected) {
    // The sharded world has no beacon/poll MAC: those kinds must still be
    // refused at validation with a pointer to the single-queue hotspot.
    {
        fault::FaultPlan plan;
        plan.beacon_loss(Time::from_seconds(5), Time::from_seconds(5));
        EXPECT_THROW(backend.run(sharded_fault_spec(plan, 0)), ContractViolation);
    }
    {
        fault::FaultPlan plan;
        plan.schedule_drop(Time::from_seconds(5), Time::from_seconds(5), 0.5);
        EXPECT_THROW(backend.run(sharded_fault_spec(plan, 0)), ContractViolation);
    }
}

}  // namespace
}  // namespace wlanps::core
