/// \file obs_stream_test.cpp
/// WPSM metrics-stream golden round-trip.  The writer's byte output is
/// pinned by a checked-in fixture (tests/data/wpsm_golden.bin), the
/// in-memory reader decodes the fixture back, and scripts/check_health.sh
/// diffs scripts/bench_diff.py's decode of the same bytes against
/// tests/data/wpsm_golden.json — so the C++ writer, the C++ reader, and
/// the python decoder are all pinned to one another.  HealthReport's
/// stream export rides the same frames and is round-tripped here too.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/health_report.hpp"
#include "obs/metrics_stream.hpp"

using namespace wlanps;

namespace {

#if !defined(WLANPS_SOURCE_DIR)
#error "tests need WLANPS_SOURCE_DIR (set in tests/CMakeLists.txt)"
#endif

std::string fixture_path() {
    return std::string(WLANPS_SOURCE_DIR) + "/tests/data/wpsm_golden.bin";
}

/// The exact stream the fixture pins.  If the WPSM format ever changes,
/// regenerate the fixture by running this against tests/data/ and update
/// tests/data/wpsm_golden.json to match (see scripts/check_health.sh).
void write_golden(const std::string& path) {
    obs::MetricsStreamWriter w(path);
    const std::uint32_t live = w.define_series("clients.live");
    const std::uint32_t energy = w.define_series("energy.j");
    w.sample(live, 1'000'000'000, 3.0);
    w.sample(energy, 1'000'000'000, 0.5);
    w.sample(live, 2'000'000'000, 5.0);
    w.sample(energy, 2'000'000'000, 1.25);
    w.sample(live, 3'000'000'000, 4.0);
    w.summary("population", 42.0);
    w.summary("health.imbalance_index", 1.25);
    w.client(7, 1.5F, 0.875F, 12, 1);
    w.client(9, 2.5F, 1.0F, 20, 0);
    w.flush();
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

}  // namespace

TEST(ObsStreamGoldenTest, WriterReproducesCheckedInFixtureByteForByte) {
    const std::string tmp = ::testing::TempDir() + "wpsm_roundtrip.bin";
    write_golden(tmp);
    const std::string produced = slurp(tmp);
    const std::string golden = slurp(fixture_path());
    ASSERT_FALSE(produced.empty());
    ASSERT_FALSE(golden.empty()) << "missing fixture " << fixture_path();
    EXPECT_TRUE(produced == golden)
        << "WPSM writer output drifted from tests/data/wpsm_golden.bin ("
        << produced.size() << " vs " << golden.size() << " bytes)";
    std::remove(tmp.c_str());
}

TEST(ObsStreamGoldenTest, ReaderDecodesTheFixture) {
    const obs::MetricsStreamContents c = obs::read_metrics_stream(fixture_path());
    ASSERT_EQ(c.series_names.size(), 2u);
    EXPECT_EQ(c.series_names[0], "clients.live");
    EXPECT_EQ(c.series_names[1], "energy.j");

    ASSERT_EQ(c.samples.size(), 5u);
    EXPECT_EQ(c.samples[0].series, 0u);
    EXPECT_EQ(c.samples[0].t_ns, 1'000'000'000);
    EXPECT_DOUBLE_EQ(c.samples[0].value, 3.0);
    EXPECT_EQ(c.samples[3].series, 1u);
    EXPECT_DOUBLE_EQ(c.samples[3].value, 1.25);
    EXPECT_EQ(c.samples[4].t_ns, 3'000'000'000);

    ASSERT_EQ(c.summaries.size(), 2u);
    EXPECT_EQ(c.summaries[0].first, "population");
    EXPECT_DOUBLE_EQ(c.summaries[0].second, 42.0);
    EXPECT_EQ(c.summaries[1].first, "health.imbalance_index");
    EXPECT_DOUBLE_EQ(c.summaries[1].second, 1.25);

    ASSERT_EQ(c.clients.size(), 2u);
    EXPECT_EQ(c.clients[0].id, 7u);
    EXPECT_FLOAT_EQ(c.clients[0].energy_j, 1.5F);
    EXPECT_FLOAT_EQ(c.clients[0].qos, 0.875F);
    EXPECT_EQ(c.clients[0].bursts_completed, 12u);
    EXPECT_EQ(c.clients[0].bursts_shed, 1u);
    EXPECT_EQ(c.clients[1].id, 9u);
    EXPECT_EQ(c.clients[1].bursts_completed, 20u);
    EXPECT_EQ(c.clients[1].bursts_shed, 0u);
}

TEST(ObsStreamGoldenTest, HealthReportSummariesRideTheStream) {
    obs::HealthReport report;
    report.scope = "test";
    report.quanta = 120;
    report.idle_jumps = 7;
    report.events = 4242;
    report.imbalance_index = 1.5;
    obs::ShardHealth sh;
    sh.shard = 0;
    sh.events = 4000;
    sh.mailbox_peak = 3;
    report.per_shard.push_back(sh);
    sh.shard = 1;
    sh.events = 242;
    sh.mailbox_peak = 1;
    report.per_shard.push_back(sh);

    const std::string tmp = ::testing::TempDir() + "wpsm_health.bin";
    {
        obs::MetricsStreamWriter w(tmp);
        report.export_stream(w);
        w.flush();
    }
    const obs::MetricsStreamContents c = obs::read_metrics_stream(tmp);
    std::remove(tmp.c_str());

    auto summary = [&](const std::string& key) -> double {
        for (const auto& [k, v] : c.summaries) {
            if (k == key) return v;
        }
        ADD_FAILURE() << "summary key missing: " << key;
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(summary("health.quanta"), 120.0);
    EXPECT_DOUBLE_EQ(summary("health.idle_jumps"), 7.0);
    EXPECT_DOUBLE_EQ(summary("health.events"), 4242.0);
    EXPECT_DOUBLE_EQ(summary("health.imbalance_index"), 1.5);
    EXPECT_DOUBLE_EQ(summary("health.watchdog_violations"), 0.0);
    EXPECT_DOUBLE_EQ(summary("health.shard0.events"), 4000.0);
    EXPECT_DOUBLE_EQ(summary("health.shard1.mailbox_peak"), 1.0);
}
