/// \file exp_runner_test.cpp
/// The experiment subsystem: spec validation, parallel-vs-serial
/// bit-identity, error propagation, and config validation.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "core/scenarios.hpp"
#include "exp/runner.hpp"
#include "sim/assert.hpp"
#include "sim/time.hpp"

using namespace wlanps;
namespace sc = core::scenarios;

namespace {

/// A cheap deterministic pseudo-workload: no simulator, just arithmetic
/// that depends on (point, seed) so wrong routing or reduction order shows.
exp::Metrics synthetic_run(const exp::ParamPoint& point, std::uint64_t seed) {
    const double x = std::sin(static_cast<double>(seed) * 0.37 +
                              static_cast<double>(point.index) * 1.91);
    return {{"x", x}, {"x2", x * x}};
}

exp::ExperimentSpec synthetic_spec() {
    return exp::ExperimentSpec{}
        .with_run(synthetic_run)
        .with_points({"p0", "p1", "p2"})
        .with_seed_range(7, 5);
}

void expect_identical(const sim::Accumulator& a, const sim::Accumulator& b) {
    ASSERT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());       // bitwise: == on doubles, no tolerance
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    if (a.count() > 1) {
        EXPECT_EQ(a.variance(), b.variance());
    }
}

}  // namespace

TEST(ExperimentSpecTest, FluentBuildersCompose) {
    const auto spec = synthetic_spec();
    EXPECT_EQ(spec.points().size(), 3u);
    EXPECT_EQ(spec.points()[2].index, 2u);
    EXPECT_EQ(spec.points()[2].label, "p2");
    EXPECT_EQ(spec.seeds(), (std::vector<std::uint64_t>{7, 8, 9, 10, 11}));
    EXPECT_EQ(spec.total_runs(), 15u);
    EXPECT_NO_THROW(spec.validate());
}

TEST(ExperimentSpecTest, ValidateRejectsMissingFactory) {
    auto spec = synthetic_spec();
    spec.with_run(nullptr);
    EXPECT_THROW(spec.validate(), ContractViolation);
}

TEST(ExperimentSpecTest, ValidateRejectsEmptyGrid) {
    const auto spec = exp::ExperimentSpec{}.with_run(synthetic_run).with_seeds({1});
    EXPECT_THROW(spec.validate(), ContractViolation);
}

TEST(ExperimentSpecTest, ValidateRejectsEmptySeedList) {
    const auto spec = exp::ExperimentSpec{}.with_run(synthetic_run).with_point("p");
    EXPECT_THROW(spec.validate(), ContractViolation);
}

TEST(ExperimentSpecTest, ValidateRejectsDuplicateSeeds) {
    const auto spec =
        exp::ExperimentSpec{}.with_run(synthetic_run).with_point("p").with_seeds({3, 4, 3});
    EXPECT_THROW(spec.validate(), ContractViolation);
}

TEST(ExperimentRunnerTest, RunRecordsAreOrderedPointMajor) {
    const auto result = exp::ExperimentRunner(2).run(synthetic_spec());
    ASSERT_EQ(result.runs.size(), 15u);
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        EXPECT_EQ(result.runs[i].point, i / 5);
        EXPECT_EQ(result.runs[i].seed, 7 + (i % 5));
    }
}

TEST(ExperimentRunnerTest, ParallelIsBitIdenticalToSerial_Synthetic) {
    const auto spec = synthetic_spec();
    const auto serial = exp::ExperimentRunner(1).run(spec);
    const auto parallel = exp::ExperimentRunner(4).run(spec);

    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        EXPECT_EQ(serial.runs[i].metrics, parallel.runs[i].metrics);
    }
    for (std::size_t p = 0; p < 3; ++p) {
        for (const auto& name : serial.aggregate.metric_names(p)) {
            expect_identical(serial.aggregate.metric(p, name),
                             parallel.aggregate.metric(p, name));
        }
    }
}

TEST(ExperimentRunnerTest, ParallelIsBitIdenticalToSerial_FullScenario) {
    // Real worlds: every run owns its Simulator and Random, so four worker
    // threads must reproduce the single-thread doubles exactly.
    sc::StreamConfig config;
    config.clients = 1;
    config.duration = Time::from_seconds(3);
    const auto spec =
        exp::ExperimentSpec{}
            .with_run([config](const exp::ParamPoint& point, std::uint64_t seed) {
                return point.index == 0 ? sc::to_metrics(sc::hotspot_factory(config)(seed))
                                        : sc::to_metrics(sc::wlan_psm_factory(config)(seed));
            })
            .with_points({"hotspot", "psm"})
            .with_seed_range(42, 2);

    const auto serial = exp::ExperimentRunner(1).run(spec);
    const auto parallel = exp::ExperimentRunner(4).run(spec);
    for (std::size_t p = 0; p < 2; ++p) {
        const auto names = serial.aggregate.metric_names(p);
        ASSERT_EQ(names, parallel.aggregate.metric_names(p));
        for (const auto& name : names) {
            expect_identical(serial.aggregate.metric(p, name),
                             parallel.aggregate.metric(p, name));
        }
    }
}

TEST(ExperimentRunnerTest, WorkerExceptionSurfacesWithoutDeadlock) {
    std::atomic<int> completed{0};
    auto spec = exp::ExperimentSpec{}
                    .with_run([&completed](const exp::ParamPoint& point, std::uint64_t seed) {
                        if (point.index == 1 && seed == 8) {
                            throw std::runtime_error("injected failure");
                        }
                        ++completed;
                        return synthetic_run(point, seed);
                    })
                    .with_points({"p0", "p1", "p2"})
                    .with_seed_range(7, 3);

    exp::ExperimentRunner runner(4);
    EXPECT_THROW((void)runner.run(spec), std::runtime_error);
    // All non-throwing runs still executed: the pool drained and joined.
    EXPECT_EQ(completed.load(), 8);

    // The runner is stateless between runs: reusable after a failure.
    const auto result = runner.run(synthetic_spec());
    EXPECT_EQ(result.runs.size(), 15u);
}

TEST(ExperimentRunnerTest, AggregateLookupErrors) {
    const auto result = exp::ExperimentRunner(1).run(synthetic_spec());
    EXPECT_THROW((void)result.aggregate.metric(0, "nope"), ContractViolation);
    EXPECT_EQ(result.aggregate.find(0, "nope"), nullptr);
    EXPECT_EQ(result.aggregate.find(99, "x"), nullptr);
    EXPECT_NE(result.aggregate.find(0, "x"), nullptr);
}

TEST(ServerConfigTest, ValidateAcceptsDefaults) {
    EXPECT_NO_THROW(core::ServerConfig{}.validate());
}

TEST(ServerConfigTest, ValidateRejectsEachBadField) {
    using core::ServerConfig;
    EXPECT_THROW(ServerConfig{}.with_min_burst(DataSize::from_kilobytes(64)).validate(),
                 ContractViolation);  // min_burst > target_burst
    EXPECT_THROW(ServerConfig{}.with_min_burst(DataSize::zero()).validate(),
                 ContractViolation);
    EXPECT_THROW(ServerConfig{}.with_plan_interval(Time::zero()).validate(),
                 ContractViolation);
    EXPECT_THROW(ServerConfig{}.with_plan_interval(Time::from_ms(-1)).validate(),
                 ContractViolation);
    EXPECT_THROW(ServerConfig{}.with_target_burst_period(Time::zero()).validate(),
                 ContractViolation);
    EXPECT_THROW(ServerConfig{}.with_underrun_lead(Time::from_ms(-1)).validate(),
                 ContractViolation);
    EXPECT_THROW(ServerConfig{}.with_utilization_cap(0.0).validate(), ContractViolation);
    EXPECT_THROW(ServerConfig{}.with_reservation_margin(0.5).validate(), ContractViolation);
}

TEST(ServerConfigTest, ServerConstructionValidates) {
    sim::Simulator sim;
    EXPECT_THROW(core::HotspotServer(sim,
                                     core::ServerConfig{}.with_plan_interval(Time::zero()),
                                     core::make_scheduler("edf")),
                 ContractViolation);
}
