/// End-to-end integration tests: the paper's headline results must hold
/// for the assembled system (these are the assertions behind Figure 2,
/// Figure 1, and the switching scenario).

#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/client.hpp"
#include "core/scenario_spec.hpp"
#include "core/server.hpp"

namespace wlanps::core {
namespace {

const SimBackend backend;

/// Short-run config shared by the integration tests (we assert shapes,
/// which already hold at 60-120 s).
StreamConfig quick(int clients = 3) {
    StreamConfig cfg;
    cfg.clients = clients;
    cfg.duration = Time::from_seconds(90);
    return cfg;
}

TEST(Figure2Integration, PowerOrderingMatchesPaper) {
    const auto cfg = quick();
    const auto cam = backend.run(ScenarioSpec::cam().with_stream(cfg));
    const auto psm = backend.run(ScenarioSpec::psm().with_stream(cfg));
    const auto bt = backend.run(ScenarioSpec::bt().with_stream(cfg));
    const auto hotspot = backend.run(ScenarioSpec::hotspot().with_stream(cfg));

    // The Figure 2 ordering: CAM >> PSM > BT-active > Hotspot.
    EXPECT_GT(cam.mean_wnic().watts(), psm.mean_wnic().watts() * 2.5);
    EXPECT_GT(psm.mean_wnic().watts(), bt.mean_wnic().watts());
    EXPECT_GT(bt.mean_wnic().watts(), hotspot.mean_wnic().watts() * 2.0);
}

TEST(Figure2Integration, HotspotSavesAtLeast90PercentWnicPower) {
    const auto cfg = quick();
    const auto cam = backend.run(ScenarioSpec::cam().with_stream(cfg));
    const auto hotspot = backend.run(ScenarioSpec::hotspot().with_stream(cfg));
    const double saving = 1.0 - hotspot.mean_wnic() / cam.mean_wnic();
    EXPECT_GT(saving, 0.90);  // paper reports ~0.97
    EXPECT_LT(saving, 1.00);
}

TEST(Figure2Integration, QosMaintainedEverywhere) {
    const auto cfg = quick();
    for (const auto& result :
         {backend.run(ScenarioSpec::cam().with_stream(cfg)),
          backend.run(ScenarioSpec::psm().with_stream(cfg)),
          backend.run(ScenarioSpec::bt().with_stream(cfg)),
          backend.run(ScenarioSpec::hotspot().with_stream(cfg))}) {
        EXPECT_DOUBLE_EQ(result.min_qos(), 1.0) << result.label;
        for (const auto& c : result.clients) EXPECT_EQ(c.underruns, 0u) << result.label;
    }
}

TEST(Figure2Integration, AllClientsTreatedEqually) {
    const auto hotspot = backend.run(ScenarioSpec::hotspot().with_stream(quick()));
    ASSERT_EQ(hotspot.clients.size(), 3u);
    const double p0 = hotspot.clients[0].wnic_average.watts();
    for (const auto& c : hotspot.clients) {
        EXPECT_NEAR(c.wnic_average.watts(), p0, p0 * 0.1);
        EXPECT_GT(c.received.bytes(), DataSize::from_kilobytes(1000).bytes());
    }
}

TEST(Figure2Integration, DevicePowerIncludesPlatformBase) {
    const auto hotspot = backend.run(ScenarioSpec::hotspot().with_stream(quick(1)));
    const auto& c = hotspot.clients.front();
    EXPECT_NEAR(c.device_average.watts(),
                c.wnic_average.watts() + phy::calibration::kIpaqBase.watts(), 1e-9);
}

TEST(Figure1Integration, ScheduleTracesShowBurstsAndSleep) {
    StreamConfig cfg = quick();
    cfg.duration = Time::from_seconds(16);
    HotspotConfig options;
    bool checked = false;
    options.inspect = [&](sim::Simulator& sim, HotspotServer& server,
                          std::vector<HotspotClient*>& clients) {
        checked = true;
        EXPECT_GT(server.total_bursts(), 6u);
        for (HotspotClient* c : clients) {
            auto trace = c->transfer_trace();
            trace.finish(sim.now());
            // The client alternates: at least 2 bursts and 2 idle gaps.
            std::size_t bursts = 0, idles = 0;
            for (const auto& span : trace.spans()) {
                if (span.label == "burst") ++bursts;
                if (span.label == "idle") ++idles;
            }
            EXPECT_GE(bursts, 2u);
            EXPECT_GE(idles, 2u);
            // Bursts are a small fraction of the timeline (sleep dominates).
            Time burst_time = Time::zero();
            for (const auto& span : trace.spans()) {
                if (span.label == "burst") burst_time += span.end - span.begin;
            }
            EXPECT_LT(burst_time / sim.now(), 0.4);
        }
    };
    (void)backend.run(ScenarioSpec::hotspot().with_stream(cfg).with_hotspot(options));
    EXPECT_TRUE(checked);
}

TEST(SwitchingIntegration, DegradedBtHandsOverToWlanSeamlessly) {
    StreamConfig cfg = quick(1);
    cfg.duration = Time::from_seconds(120);
    channel::ScriptedQuality script;
    script.add_point(Time::from_seconds(40), 1.0);
    script.add_point(Time::from_seconds(50), 0.1);
    script.add_point(Time::from_seconds(120), 0.1);
    HotspotConfig options;
    options.bt_quality_script = script;
    std::uint64_t switches = 0;
    std::size_t final_channel = 99;
    options.inspect = [&](sim::Simulator&, HotspotServer& server,
                          std::vector<HotspotClient*>&) {
        switches = server.report(1).interface_switches;
        final_channel = server.report(1).current_channel;
    };
    const auto result =
        backend.run(ScenarioSpec::hotspot().with_stream(cfg).with_hotspot(options));
    EXPECT_GE(switches, 1u);
    EXPECT_EQ(final_channel, 0u);  // WLAN (registration order)
    EXPECT_DOUBLE_EQ(result.min_qos(), 1.0);  // seamless
}

TEST(BurstSizeIntegration, LargerBurstsDoNotHurtQos) {
    for (const double kb : {16.0, 96.0}) {
        StreamConfig cfg = quick();
        HotspotConfig options;
        options.target_burst = DataSize::from_kilobytes(kb);
        const auto result =
            backend.run(ScenarioSpec::hotspot().with_stream(cfg).with_hotspot(options));
        EXPECT_DOUBLE_EQ(result.min_qos(), 1.0) << kb << " KB bursts";
    }
}

TEST(EcMacIntegration, SitsBetweenPsmAndHotspot) {
    const auto cfg = quick();
    const auto psm = backend.run(ScenarioSpec::psm().with_stream(cfg));
    const auto ecmac = backend.run(ScenarioSpec::ecmac().with_stream(cfg));
    EXPECT_LT(ecmac.mean_wnic().watts(), psm.mean_wnic().watts());
    EXPECT_DOUBLE_EQ(ecmac.min_qos(), 1.0);
}

TEST(PsmIntegration, AggregationSavesEnergy) {
    const auto cfg = quick();
    PsmConfig plain;
    PsmConfig agg;
    agg.aggregate_limit = 8;
    EXPECT_LT(
        backend.run(ScenarioSpec::psm().with_stream(cfg).with_psm(agg)).mean_wnic().watts(),
        backend.run(ScenarioSpec::psm().with_stream(cfg).with_psm(plain))
            .mean_wnic()
            .watts());
}

TEST(ReproducibilityIntegration, SameSeedSameResult) {
    const auto spec = ScenarioSpec::hotspot().with_stream(quick());
    const auto a = backend.run(spec);
    const auto b = backend.run(spec);
    ASSERT_EQ(a.clients.size(), b.clients.size());
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.clients[i].wnic_average.watts(), b.clients[i].wnic_average.watts());
        EXPECT_EQ(a.clients[i].received, b.clients[i].received);
    }
}

TEST(ReproducibilityIntegration, DifferentSeedDifferentRealization) {
    auto cfg_a = quick();
    auto cfg_b = quick();
    cfg_b.seed = 4242;
    const auto a = backend.run(ScenarioSpec::psm().with_stream(cfg_a));
    const auto b = backend.run(ScenarioSpec::psm().with_stream(cfg_b));
    // Different random realizations (backoffs, channel) -> different power.
    EXPECT_NE(a.clients[0].wnic_average.watts(), b.clients[0].wnic_average.watts());
}

TEST(ScenarioValidation, InvalidOptionsThrow) {
    HotspotConfig neither;
    neither.wlan_available = false;
    neither.bt_available = false;
    EXPECT_THROW((void)backend.run(
                     ScenarioSpec::hotspot().with_stream(quick()).with_hotspot(neither)),
                 ContractViolation);
}

}  // namespace
}  // namespace wlanps::core
