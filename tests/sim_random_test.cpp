/// Unit and statistical tests for the reproducible RNG.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/assert.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace wlanps::sim {
namespace {

TEST(RandomTest, SameSeedSameStream) {
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
}

TEST(RandomTest, DifferentSeedsDiffer) {
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform()) ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(RandomTest, ForkIsDeterministicAndDecorrelated) {
    Random root(42);
    Random c1 = root.fork(1);
    Random c1_again = Random(42).fork(1);
    EXPECT_EQ(c1.seed(), c1_again.seed());
    EXPECT_NE(root.fork(1).seed(), root.fork(2).seed());
}

TEST(RandomTest, UniformRange) {
    Random rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(RandomTest, UniformIntInclusive) {
    Random rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, ChanceExtremes) {
    Random rng(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
    EXPECT_THROW((void)rng.chance(1.5), ContractViolation);
}

TEST(RandomTest, ExponentialMean) {
    Random rng(11);
    Accumulator acc;
    for (int i = 0; i < 20000; ++i) acc.add(rng.exponential(3.0));
    EXPECT_NEAR(acc.mean(), 3.0, 0.1);
}

TEST(RandomTest, ExponentialTimeMean) {
    Random rng(11);
    Accumulator acc;
    for (int i = 0; i < 20000; ++i) {
        acc.add(rng.exponential_time(Time::from_ms(10)).to_seconds());
    }
    EXPECT_NEAR(acc.mean(), 0.010, 0.0005);
}

TEST(RandomTest, NormalMoments) {
    Random rng(13);
    Accumulator acc;
    for (int i = 0; i < 20000; ++i) acc.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(acc.mean(), 5.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(RandomTest, NormalZeroSigmaIsDeterministic) {
    Random rng(13);
    EXPECT_DOUBLE_EQ(rng.normal(7.0, 0.0), 7.0);
}

TEST(RandomTest, ParetoMinimumAndMean) {
    Random rng(17);
    Accumulator acc;
    const double alpha = 2.5, xm = 1.0;
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.pareto(alpha, xm);
        EXPECT_GE(x, xm);
        acc.add(x);
    }
    // E[X] = alpha*xm/(alpha-1) for alpha > 1.
    EXPECT_NEAR(acc.mean(), alpha * xm / (alpha - 1.0), 0.05);
}

TEST(RandomTest, GeometricMean) {
    Random rng(19);
    Accumulator acc;
    const double p = 0.25;
    for (int i = 0; i < 20000; ++i) acc.add(static_cast<double>(rng.geometric(p)));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(acc.mean(), 3.0, 0.1);
}

TEST(RandomTest, WeightedIndexProportions) {
    Random rng(23);
    const std::vector<double> weights = {1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 30000;
    for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RandomTest, WeightedIndexContractViolations) {
    Random rng(29);
    EXPECT_THROW((void)rng.weighted_index({}), ContractViolation);
    EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), ContractViolation);
    EXPECT_THROW((void)rng.weighted_index({1.0, -1.0}), ContractViolation);
}

TEST(RandomTest, ZeroWeightNeverPicked) {
    Random rng(31);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_NE(rng.weighted_index({1.0, 0.0, 1.0}), 1u);
    }
}

}  // namespace
}  // namespace wlanps::sim
