/// Fault-injection subsystem tests: plan parsing/validation, injector
/// scheduling and hook dispatch, the per-layer fault surfaces, and the
/// scenario-level recovery machinery (liveness reclaim, burst repair,
/// proxy degradation with recovery hysteresis).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "channel/link.hpp"
#include "core/backend.hpp"
#include "core/scenario_spec.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "mac/access_point.hpp"
#include "mac/station.hpp"
#include "sim/assert.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "traffic/source.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

const core::SimBackend backend;

// ---- FaultPlan: builders, grammar, validation -----------------------------------

TEST(FaultPlanTest, FluentBuildersFillSpecs) {
    fault::FaultPlan plan;
    plan.client_crash(30_s, 10_s, 1).blackout(60_s, 5_s).poll_drop(90_s, 20_s, 0.5);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.specs()[0].kind, fault::FaultKind::client_crash);
    EXPECT_EQ(plan.specs()[0].client, 1u);
    EXPECT_EQ(plan.specs()[0].until(), 40_s);
    EXPECT_DOUBLE_EQ(plan.specs()[2].probability, 0.5);
    EXPECT_TRUE(plan.has(fault::FaultKind::blackout));
    EXPECT_FALSE(plan.has(fault::FaultKind::nic_lockup));
    plan.validate();
}

TEST(FaultPlanTest, ZeroDurationWindowIsOpenEnded) {
    fault::FaultPlan plan;
    plan.silent_leave(12_s, 2);
    EXPECT_EQ(plan.specs()[0].until(), Time::max());
}

TEST(FaultPlanTest, ParseFullGrammar) {
    const auto plan = fault::FaultPlan::parse(
        "crash@30+10:c1; blackout@60+5:wlan; poll-drop@90+20%0.5; nic-lockup@10+2:c2x3~15");
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.specs()[0].kind, fault::FaultKind::client_crash);
    EXPECT_EQ(plan.specs()[0].at, 30_s);
    EXPECT_EQ(plan.specs()[0].duration, 10_s);
    EXPECT_EQ(plan.specs()[0].client, 1u);
    EXPECT_EQ(plan.specs()[1].itf, fault::FaultSpec::Itf::wlan);
    EXPECT_DOUBLE_EQ(plan.specs()[2].probability, 0.5);
    EXPECT_EQ(plan.specs()[3].repeat, 3);
    EXPECT_EQ(plan.specs()[3].period, 15_s);
    EXPECT_EQ(plan.specs()[3].client, 2u);
}

TEST(FaultPlanTest, StrRoundTripsThroughParse) {
    const auto plan = fault::FaultPlan::parse(
        "crash@30+10:c1;corruption@60+5:bt%0.25;late-join@20:c2;beacon-loss@40+8:wlan");
    const std::string canon = plan.str();
    EXPECT_EQ(fault::FaultPlan::parse(canon).str(), canon);
}

TEST(FaultPlanTest, RegistrationAtReportsDelayedJoins) {
    const auto plan = fault::FaultPlan::parse("late-join@20:c2");
    EXPECT_EQ(plan.registration_at(2), 20_s);
    EXPECT_EQ(plan.registration_at(1), Time::zero());
}

TEST(FaultPlanTest, ParseRejectsMalformedEntries) {
    EXPECT_THROW((void)fault::FaultPlan::parse("nonsense"), ContractViolation);
    EXPECT_THROW((void)fault::FaultPlan::parse("frobnicate@10"), ContractViolation);
    EXPECT_THROW((void)fault::FaultPlan::parse("blackout@5x3"), ContractViolation);
    EXPECT_THROW((void)fault::FaultPlan::parse("blackout@5:q9"), ContractViolation);
    // Validation: probability outside [0,1], crash without a target.
    EXPECT_THROW((void)fault::FaultPlan::parse("poll-drop@5+10%1.5"), ContractViolation);
    EXPECT_THROW((void)fault::FaultPlan::parse("crash@5+10"), ContractViolation);
}

TEST(FaultPlanTest, ValidateRejectsNegativeTimes) {
    fault::FaultPlan plan;
    plan.add({fault::FaultKind::blackout, Time::from_seconds(-1)});
    EXPECT_THROW(plan.validate(), ContractViolation);
}

// ---- FaultInjector: scheduling and hook dispatch --------------------------------

TEST(FaultInjectorTest, FiresHooksAtPlannedTimes) {
    sim::Simulator sim;
    fault::FaultPlan plan;
    plan.beacon_loss(10_s, 5_s).blackout(20_s, 2_s, 1).client_crash(30_s, 5_s, 2);
    fault::FaultInjector injector(sim, plan, sim::Random(900));

    std::vector<Time> beacon_at, window_at, crash_at, revive_at;
    injector.mac().beacon_loss = [&](Time until) {
        beacon_at.push_back(sim.now());
        EXPECT_EQ(until, 15_s);
    };
    injector.net().fault_window = [&](std::uint32_t client, fault::FaultSpec::Itf,
                                      double p, Time until) {
        window_at.push_back(sim.now());
        EXPECT_EQ(client, 1u);
        EXPECT_DOUBLE_EQ(p, 1.0);
        EXPECT_EQ(until, 22_s);
    };
    injector.core().crash = [&](std::uint32_t client) {
        crash_at.push_back(sim.now());
        EXPECT_EQ(client, 2u);
    };
    injector.core().revive = [&](std::uint32_t) { revive_at.push_back(sim.now()); };
    injector.arm();
    sim.run();

    ASSERT_EQ(beacon_at.size(), 1u);
    EXPECT_EQ(beacon_at[0], 10_s);
    ASSERT_EQ(window_at.size(), 1u);
    EXPECT_EQ(window_at[0], 20_s);
    ASSERT_EQ(crash_at.size(), 1u);
    EXPECT_EQ(crash_at[0], 30_s);
    ASSERT_EQ(revive_at.size(), 1u);
    EXPECT_EQ(revive_at[0], 35_s);
    EXPECT_EQ(injector.injected_total(), 3u);
    EXPECT_EQ(injector.injected(fault::FaultKind::beacon_loss), 1u);
    EXPECT_EQ(injector.injected(fault::FaultKind::client_crash), 1u);
    EXPECT_EQ(injector.injected(fault::FaultKind::wake_stuck), 0u);
}

TEST(FaultInjectorTest, RepeatSchedulesFlapping) {
    sim::Simulator sim;
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::nic_lockup;
    spec.at = 5_s;
    spec.duration = 1_s;
    spec.client = 1;
    spec.repeat = 3;
    spec.period = 10_s;
    fault::FaultPlan plan;
    plan.add(spec);
    fault::FaultInjector injector(sim, plan, sim::Random(900));
    std::vector<Time> at;
    injector.phy().nic_lockup = [&](std::uint32_t, Time) { at.push_back(sim.now()); };
    injector.arm();
    sim.run();
    ASSERT_EQ(at.size(), 3u);
    EXPECT_EQ(at[0], 5_s);
    EXPECT_EQ(at[1], 15_s);
    EXPECT_EQ(at[2], 25_s);
    EXPECT_EQ(injector.injected(fault::FaultKind::nic_lockup), 3u);
}

TEST(FaultInjectorTest, ArmRejectsUnboundHook) {
    sim::Simulator sim;
    fault::FaultPlan plan;
    plan.beacon_loss(10_s, 5_s);
    fault::FaultInjector injector(sim, plan, sim::Random(900));
    EXPECT_THROW(injector.arm(), ContractViolation);
}

TEST(FaultInjectorTest, CrashWithReviveDelayNeedsReviveHook) {
    sim::Simulator sim;
    fault::FaultPlan plan;
    plan.client_crash(1_s, 2_s, 1);
    fault::FaultInjector injector(sim, plan, sim::Random(900));
    injector.core().crash = [](std::uint32_t) {};
    EXPECT_THROW(injector.arm(), ContractViolation);
}

TEST(FaultInjectorTest, ProbabilisticOneShotsAreSeedDeterministic) {
    const auto run = [](std::uint64_t seed) {
        sim::Simulator sim;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::blackout;
        spec.at = 1_s;
        spec.duration = 100_ms;
        spec.client = 1;
        spec.probability = 0.5;  // one-shot: the chance the fault fires at all
        spec.repeat = 40;
        spec.period = 1_s;
        fault::FaultPlan plan;
        plan.add(spec);
        fault::FaultInjector injector(sim, plan, sim::Random(seed));
        injector.net().fault_window = [](std::uint32_t, fault::FaultSpec::Itf, double, Time) {};
        injector.arm();
        sim.run();
        return injector.injected_total();
    };
    EXPECT_EQ(run(900), run(900));
    EXPECT_GT(run(900), 0u);   // some of the 40 occurrences fired...
    EXPECT_LT(run(900), 40u);  // ...and the coin skipped some
}

// ---- Per-layer fault surfaces ----------------------------------------------------

TEST(FaultSurfaceTest, LinkFaultWindowsStackWorstWins) {
    // Error-free chain so the windows are the only loss mechanism.
    channel::GilbertElliottConfig clean{1_s, 1_ms, 0.0, 0.0};
    channel::WirelessLink link(clean, sim::Random(3));
    link.add_fault_window(10_s, 20_s, 0.4);
    link.add_fault_window(12_s, 15_s, 1.0);
    EXPECT_DOUBLE_EQ(link.fault_drop(5_s), 0.0);
    EXPECT_DOUBLE_EQ(link.fault_drop(11_s), 0.4);
    EXPECT_DOUBLE_EQ(link.fault_drop(13_s), 1.0);
    EXPECT_DOUBLE_EQ(link.fault_drop(25_s), 0.0);

    const DataSize frame = DataSize::from_bytes(1000);
    const Rate rate = Rate::from_kbps(5000);
    EXPECT_TRUE(link.transmit(5_s, frame, rate));
    EXPECT_FALSE(link.transmit(13_s, frame, rate));  // inside the blackout
    EXPECT_TRUE(link.transmit(25_s, frame, rate));   // windows expired
}

TEST(FaultSurfaceTest, ApBeaconSuppressionRidesBeaconTimeout) {
    sim::Simulator sim;
    sim::Random root(77);
    mac::Bss bss(sim);
    mac::AccessPointConfig ap_cfg;
    ap_cfg.mode = mac::ApMode::psm;
    mac::AccessPoint ap(sim, bss, ap_cfg, mac::DcfConfig{}, root.fork(1));
    mac::StationConfig st_cfg;
    st_cfg.mode = mac::StationMode::psm;
    mac::WlanStation st(sim, bss, 1, st_cfg, mac::DcfConfig{}, phy::WlanNicConfig{},
                        root.fork(2));
    bss.set_link(1, channel::GilbertElliottConfig{800_ms, 40_ms, 1e-7, 1e-4}, root.fork(3));

    int sent = 0, delivered = 0;
    traffic::PoissonSource src(sim, [&](DataSize s) {
        ++sent;
        ap.send(1, s, [&](bool ok) { delivered += ok; });
    }, DataSize::from_bytes(1400), Rate::from_kbps(64), root.fork(4));

    ap.start();
    st.start(ap.config().beacon_interval, ap.config().beacon_interval);
    src.start();
    sim.post_at(20_s, [&] { ap.suppress_beacons(25_s); });
    sim.run_until(Time::from_seconds(60));

    // ~50 TBTTs fall inside the 5 s window; all of them skipped a beacon.
    EXPECT_GT(ap.beacons_suppressed(), 10u);
    ASSERT_GT(sent, 200);
    // The station's beacon-timeout recovery keeps the stream flowing.
    EXPECT_GT(static_cast<double>(delivered) / sent, 0.80);
}

TEST(FaultSurfaceTest, ApPollDropRetriedByPollTimeout) {
    sim::Simulator sim;
    sim::Random root(78);
    mac::Bss bss(sim);
    mac::AccessPointConfig ap_cfg;
    ap_cfg.mode = mac::ApMode::psm;
    mac::AccessPoint ap(sim, bss, ap_cfg, mac::DcfConfig{}, root.fork(1));
    mac::StationConfig st_cfg;
    st_cfg.mode = mac::StationMode::psm;
    mac::WlanStation st(sim, bss, 1, st_cfg, mac::DcfConfig{}, phy::WlanNicConfig{},
                        root.fork(2));
    bss.set_link(1, channel::GilbertElliottConfig{800_ms, 40_ms, 1e-7, 1e-4}, root.fork(3));

    int sent = 0, delivered = 0;
    traffic::PoissonSource src(sim, [&](DataSize s) {
        ++sent;
        ap.send(1, s, [&](bool ok) { delivered += ok; });
    }, DataSize::from_bytes(1400), Rate::from_kbps(64), root.fork(4));

    ap.start();
    st.start(ap.config().beacon_interval, ap.config().beacon_interval);
    src.start();
    ap.inject_poll_drop(0.5, 40_s, root.fork(9));
    sim.run_until(Time::from_seconds(60));

    EXPECT_GT(ap.polls_dropped(), 5u);
    ASSERT_GT(sent, 200);
    EXPECT_GT(static_cast<double>(delivered) / sent, 0.75);
}

// ---- Scenario-level injection and recovery ---------------------------------------

TEST(FaultScenarioTest, FarFutureFaultLeavesRunUntouched) {
    // The determinism contract at scenario level: a plan whose only fault
    // fires beyond the horizon must not perturb a single metric (the
    // injector draws from its own forked stream and never consumed it).
    core::StreamConfig base;
    base.clients = 2;
    base.duration = Time::from_seconds(45);
    core::StreamConfig planned = base;
    planned.fault_plan.beacon_loss(Time::from_seconds(1e6), 1_s);

    const auto a = backend.run(core::ScenarioSpec::psm().with_stream(base));
    const auto b = backend.run(core::ScenarioSpec::psm().with_stream(planned));
    ASSERT_EQ(a.clients.size(), b.clients.size());
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.clients[i].wnic_average.watts(), b.clients[i].wnic_average.watts());
        EXPECT_EQ(a.clients[i].received, b.clients[i].received);
        EXPECT_EQ(a.clients[i].underruns, b.clients[i].underruns);
    }
    EXPECT_EQ(b.faults_injected, 0u);
}

TEST(FaultScenarioTest, PsmRidesOutBeaconLoss) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = Time::from_seconds(60);
    config.fault_plan.beacon_loss(20_s, 3_s);
    const auto result = backend.run(core::ScenarioSpec::psm().with_stream(config));
    EXPECT_EQ(result.faults_injected, 1u);
    // Deep playout buffers ride out the 3 s TIM outage.
    EXPECT_GT(result.min_qos(), 0.9);
    for (const auto& c : result.clients) {
        EXPECT_GT(c.received.bytes(), DataSize::from_kilobytes(700).bytes());
    }
}

TEST(FaultScenarioTest, NicLockupForcesBtFallback) {
    // WLAN radio wedges for 15 s: the selector sees quality 0 on the locked
    // channel and carries the stream on Bluetooth instead.
    core::StreamConfig config;
    config.clients = 2;
    config.duration = Time::from_seconds(60);
    config.fault_plan.nic_lockup(20_s, 15_s, 1);
    const auto result = backend.run(core::ScenarioSpec::hotspot().with_stream(config));
    EXPECT_EQ(result.faults_injected, 1u);
    EXPECT_DOUBLE_EQ(result.min_qos(), 1.0);
    EXPECT_GT(result.clients[0].received.bytes(), DataSize::from_kilobytes(800).bytes());
}

TEST(FaultScenarioTest, SilentLeaveReclaimedByLivenessSweep) {
    core::StreamConfig config;
    config.clients = 3;
    config.duration = Time::from_seconds(90);
    config.fault_plan.silent_leave(30_s, 1);
    core::HotspotConfig options;
    // Liveness reclaim frees the reservation; the repair watchdog frees the
    // interface a burst to the dead client would otherwise wedge forever.
    options.resilience =
        core::ResilienceConfig{}.with_liveness_timeout(8_s).with_burst_repair(true);
    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));
    EXPECT_EQ(result.faults_injected, 1u);
    EXPECT_GE(result.recovery.liveness_reclaims, 1u);
    EXPECT_GE(result.recovery.burst_repairs, 1u);
    // The survivors dip only slightly while dead-client bursts wedge and
    // repair (before the reclaim, the planner still tries to serve it).
    EXPECT_GT(result.clients[1].qos, 0.95);
    EXPECT_GT(result.clients[2].qos, 0.95);
}

TEST(FaultScenarioTest, BurstRepairFreesInterfaceAfterScheduleDrop) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = Time::from_seconds(90);
    config.fault_plan.schedule_drop(10_s, 60_s, 0.3);
    core::HotspotConfig options;
    options.resilience = core::ResilienceConfig{}.with_burst_repair(true);
    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));
    EXPECT_GE(result.recovery.schedule_drops, 1u);
    // Every lost schedule message wedged an interface; the watchdog freed it.
    EXPECT_GE(result.recovery.burst_repairs, 1u);
    for (const auto& c : result.clients) {
        EXPECT_GT(c.received.bytes(), DataSize::from_kilobytes(700).bytes());
    }
}

TEST(FaultScenarioTest, ProxyDegradesAndRecoversWithDwell) {
    // Total blackout on both interfaces: the proxy pauses the stream, then
    // climbs back through audio-only, and re-enables video only after the
    // recovery dwell has elapsed.
    core::StreamConfig config;
    config.clients = 1;
    config.duration = Time::from_seconds(90);
    config.fault_plan.blackout(30_s, 10_s, 1);
    core::HotspotConfig options;
    options.media_proxy = true;
    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));
    ASSERT_EQ(result.degradation.size(), 1u);
    const auto& report = result.degradation[0];
    EXPECT_GE(report.video_drops, 1u);
    EXPECT_GE(report.pauses, 1u);
    EXPECT_GE(report.video_resumes, 1u);
    EXPECT_GT(report.time_paused_s, 1.0);
    EXPECT_GT(report.bytes_dropped, 0u);
    ASSERT_FALSE(report.recover_times_s.empty());
    // Outage lasted 10 s and the re-enable waited out the dwell on top.
    EXPECT_GE(report.recover_times_s.front(),
              10.0 + options.proxy_config.recovery_dwell.to_seconds() - 1.5);
}

}  // namespace
}  // namespace wlanps
