/// Tests for the application-level techniques: load partitioning
/// (offloading) and proxy-based content adaptation.

#include <gtest/gtest.h>

#include <memory>

#include "bt/piconet.hpp"
#include "core/burst_channel.hpp"
#include "core/client.hpp"
#include "core/media_proxy.hpp"
#include "os/offload.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

// ---- Offloading -----------------------------------------------------------

TEST(OffloadTest, LocalCostIsLinearInCycles) {
    os::OffloadPolicy policy{os::OffloadEnvironment{}};
    os::OffloadTask t;
    t.cycles_mcycles = 100.0;
    const auto one = policy.local(t);
    t.cycles_mcycles = 200.0;
    const auto two = policy.local(t);
    EXPECT_NEAR(two.energy.joules(), 2.0 * one.energy.joules(), 1e-9);
    EXPECT_NEAR(two.latency.to_seconds(), 2.0 * one.latency.to_seconds(), 1e-9);
}

TEST(OffloadTest, RemoteCostDominatedByRadioForDataHeavyTasks) {
    os::OffloadPolicy policy{os::OffloadEnvironment{}};
    os::OffloadTask heavy_data;
    heavy_data.cycles_mcycles = 1.0;
    heavy_data.input = DataSize::from_kilobytes(1000);
    heavy_data.output = DataSize::from_kilobytes(1000);
    // Light compute + heavy data: local must win.
    EXPECT_FALSE(policy.should_offload(heavy_data));
}

TEST(OffloadTest, ComputeHeavyTasksOffload) {
    os::OffloadPolicy policy{os::OffloadEnvironment{}};
    os::OffloadTask heavy_compute;
    heavy_compute.cycles_mcycles = 20000.0;  // 50 s locally
    heavy_compute.input = DataSize::from_kilobytes(10);
    heavy_compute.output = DataSize::from_kilobytes(1);
    EXPECT_TRUE(policy.should_offload(heavy_compute));
    // And it is faster too, with an 8x server.
    EXPECT_LT(policy.remote(heavy_compute).latency, policy.local(heavy_compute).latency);
}

TEST(OffloadTest, BreakEvenDensityIsConsistent) {
    os::OffloadPolicy policy{os::OffloadEnvironment{}};
    os::OffloadTask shape;
    shape.input = DataSize::from_kilobytes(50);
    shape.output = DataSize::from_kilobytes(10);
    const double density = policy.break_even_density(shape);
    EXPECT_GT(density, 0.0);
    // A task 2x above the density offloads; 2x below runs locally.
    const double data_kb = 60.0;
    os::OffloadTask above = shape;
    above.cycles_mcycles = 2.0 * density * data_kb;
    os::OffloadTask below = shape;
    below.cycles_mcycles = 0.5 * density * data_kb;
    EXPECT_TRUE(policy.should_offload(above));
    EXPECT_FALSE(policy.should_offload(below));
}

TEST(OffloadTest, FasterRadioLowersBreakEven) {
    os::OffloadEnvironment slow;
    slow.uplink = slow.downlink = Rate::from_kbps(500);
    os::OffloadEnvironment fast;
    fast.uplink = fast.downlink = Rate::from_mbps(11);
    os::OffloadTask shape;
    const double d_slow = os::OffloadPolicy(slow).break_even_density(shape);
    const double d_fast = os::OffloadPolicy(fast).break_even_density(shape);
    EXPECT_LT(d_fast, d_slow);  // cheap shipping -> offload smaller tasks
}

TEST(OffloadTest, PartitionMixesPlacements) {
    os::OffloadPolicy policy{os::OffloadEnvironment{}};
    std::vector<os::OffloadTask> tasks = {
        {"ui", 5.0, DataSize::from_kilobytes(4), DataSize::from_kilobytes(4)},
        {"speech-recognition", 30000.0, DataSize::from_kilobytes(40),
         DataSize::from_kilobytes(1)},
        {"photo-upload-filter", 50.0, DataSize::from_kilobytes(2000),
         DataSize::from_kilobytes(2000)},
    };
    const auto result = os::partition(policy, tasks);
    ASSERT_EQ(result.offloaded.size(), 3u);
    EXPECT_FALSE(result.offloaded[0]);  // trivial task stays local
    EXPECT_TRUE(result.offloaded[1]);   // compute-heavy offloads
    EXPECT_FALSE(result.offloaded[2]);  // data-heavy stays local
    EXPECT_GT(result.total_energy.joules(), 0.0);
    // The partition is no worse than either all-local or all-remote.
    power::Energy all_local, all_remote;
    for (const auto& t : tasks) {
        all_local += policy.local(t).energy;
        all_remote += policy.remote(t).energy;
    }
    EXPECT_LE(result.total_energy.joules(), all_local.joules() + 1e-12);
    EXPECT_LE(result.total_energy.joules(), all_remote.joules() + 1e-12);
}

// ---- Media proxy ------------------------------------------------------------

struct ProxyFixture {
    sim::Simulator sim;
    sim::Random root{111};
    bt::Piconet piconet{sim, bt::PiconetConfig{}, sim::Random(112)};
    std::unique_ptr<bt::BtSlave> slave;
    std::unique_ptr<phy::WlanNic> wlan_nic;
    std::unique_ptr<channel::WirelessLink> wlan_link;
    std::unique_ptr<core::HotspotClient> client;

    ProxyFixture() {
        core::QosContract contract;
        contract.stream_rate = Rate::from_kbps(600);
        client = std::make_unique<core::HotspotClient>(sim, 1, contract);
        wlan_nic = std::make_unique<phy::WlanNic>(sim, phy::WlanNicConfig{},
                                                  phy::WlanNic::State::idle);
        wlan_link = std::make_unique<channel::WirelessLink>(channel::GilbertElliottConfig{},
                                                            root.fork(1));
        client->add_channel(
            std::make_unique<core::WlanBurstChannel>(sim, *wlan_nic, wlan_link.get()));
        slave = std::make_unique<bt::BtSlave>(sim, phy::BtNicConfig{},
                                              phy::BtNic::State::active);
        const auto sid = piconet.join(*slave);
        client->add_channel(std::make_unique<core::BtBurstChannel>(piconet, sid, *slave));
    }
};

TEST(MediaProxyTest, ForwardsFullStreamOnHealthyChannel) {
    ProxyFixture f;
    DataSize delivered;
    core::MediaProxy proxy(f.sim, *f.client, [&](DataSize s) { delivered += s; },
                           core::MediaProxy::Config{});
    proxy.start();
    auto sink = proxy.ingest_sink();
    f.sim.run_until(2_s);
    sink(DataSize::from_kilobytes(30));
    EXPECT_TRUE(proxy.video_enabled());
    EXPECT_EQ(delivered, DataSize::from_kilobytes(30));
    EXPECT_TRUE(proxy.bytes_dropped().is_zero());
}

TEST(MediaProxyTest, DropsVideoWhenNoChannelSustainsAvRate) {
    ProxyFixture f;
    // Degrade WLAN below the quality threshold; BT can't carry 600 kb/s.
    channel::ScriptedQuality bad;
    bad.add_point(1_s, 1.0);
    bad.add_point(2_s, 0.1);
    f.wlan_link->set_scripted_quality(bad);

    DataSize delivered;
    core::MediaProxy proxy(f.sim, *f.client, [&](DataSize s) { delivered += s; },
                           core::MediaProxy::Config{});
    proxy.start();
    auto sink = proxy.ingest_sink();

    f.sim.run_until(5_s);  // after degradation + a proxy check
    EXPECT_FALSE(proxy.video_enabled());
    EXPECT_GE(proxy.adaptations(), 1u);

    delivered = DataSize::zero();
    sink(DataSize::from_kilobytes(30));
    // Only the audio share (128/600) is forwarded.
    EXPECT_NEAR(static_cast<double>(delivered.bytes()),
                30.0 * 1024.0 * 128.0 / 600.0, 64.0);
    EXPECT_GT(proxy.bytes_dropped().bytes(), 0);
}

TEST(MediaProxyTest, VideoResumesOnRecovery) {
    ProxyFixture f;
    channel::ScriptedQuality dip;
    dip.add_point(1_s, 1.0);
    dip.add_point(2_s, 0.1);   // bad...
    dip.add_point(10_s, 0.1);
    dip.add_point(11_s, 1.0);  // ...then recovered
    f.wlan_link->set_scripted_quality(dip);

    core::MediaProxy proxy(f.sim, *f.client, [](DataSize) {}, core::MediaProxy::Config{});
    proxy.start();
    f.sim.run_until(5_s);
    EXPECT_FALSE(proxy.video_enabled());
    f.sim.run_until(15_s);
    EXPECT_TRUE(proxy.video_enabled());
    EXPECT_GE(proxy.adaptations(), 2u);  // off, then back on
}

TEST(MediaProxyTest, InvalidConfigThrows) {
    ProxyFixture f;
    core::MediaProxy::Config cfg;
    cfg.audio_rate = cfg.av_rate;  // audio share must be strictly smaller
    EXPECT_THROW(core::MediaProxy(f.sim, *f.client, [](DataSize) {}, cfg), ContractViolation);
}

}  // namespace
}  // namespace wlanps
