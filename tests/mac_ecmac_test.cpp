/// Tests for the EC-MAC centrally scheduled MAC.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/bss.hpp"
#include "mac/ecmac.hpp"
#include "sim/simulator.hpp"
#include "traffic/source.hpp"

namespace wlanps::mac {
namespace {

using namespace time_literals;

struct EcWorld {
    sim::Simulator sim;
    sim::Random root{17};
    Bss bss{sim};
    std::unique_ptr<EcMacController> controller;
    std::vector<std::unique_ptr<EcMacStation>> stations;

    explicit EcWorld(int n_stations, Time superframe = 100_ms) {
        EcMacConfig cfg;
        cfg.superframe = superframe;
        controller = std::make_unique<EcMacController>(sim, bss, cfg, root.fork(1));
        for (int i = 0; i < n_stations; ++i) {
            stations.push_back(std::make_unique<EcMacStation>(
                sim, bss, static_cast<StationId>(i + 1), cfg, phy::WlanNicConfig{}));
        }
    }

    void start() {
        controller->start();
        for (auto& s : stations) s->start(controller->superframe_anchor());
    }
};

TEST(EcMacTest, DeliversBufferedData) {
    EcWorld w(1);
    w.start();
    bool delivered = false;
    w.controller->send(1, DataSize::from_bytes(1000), [&](bool ok) { delivered = ok; });
    w.sim.run_until(Time::from_seconds(1));
    EXPECT_TRUE(delivered);
    EXPECT_EQ(w.stations[0]->frames_received(), 1u);
    EXPECT_EQ(w.stations[0]->bytes_received(), DataSize::from_bytes(1000));
}

TEST(EcMacTest, FragmentsOversizedPayloads) {
    EcWorld w(1);
    w.start();
    // 5000 B > 2304 B MPDU limit -> 3 fragments.
    w.controller->send(1, DataSize::from_bytes(5000));
    w.sim.run_until(Time::from_seconds(1));
    EXPECT_EQ(w.stations[0]->frames_received(), 3u);
    EXPECT_EQ(w.stations[0]->bytes_received(), DataSize::from_bytes(5000));
}

TEST(EcMacTest, NoCollisionsEver) {
    EcWorld w(3);
    w.start();
    std::vector<std::unique_ptr<traffic::Mp3Source>> sources;
    for (int i = 0; i < 3; ++i) {
        const auto id = static_cast<StationId>(i + 1);
        sources.push_back(std::make_unique<traffic::Mp3Source>(
            w.sim, [c = w.controller.get(), id](DataSize s) { c->send(id, s); }));
        sources.back()->start();
    }
    w.sim.run_until(Time::from_seconds(20));
    EXPECT_EQ(w.bss.medium().collisions(), 0u);  // the whole point of EC-MAC
    for (auto& s : w.stations) EXPECT_GT(s->frames_received(), 700u);
}

TEST(EcMacTest, IdleStationsDozeAlmostAlways) {
    EcWorld w(1);
    w.start();
    w.sim.run_until(Time::from_seconds(10));
    const Time doze = w.stations[0]->wlan_nic().residency(phy::WlanNic::State::doze);
    EXPECT_GT(doze / Time::from_seconds(10), 0.93);
}

TEST(EcMacTest, CheaperThanPsmOnSameWorkload) {
    // EC-MAC removes PS-Poll contention; with the same MP3 stream the
    // station should pay less than a PSM station (compare against the
    // measured PSM figure from the Fig2 bench, ~0.23 W).
    EcWorld w(1);
    w.start();
    auto src = std::make_unique<traffic::Mp3Source>(
        w.sim, [c = w.controller.get()](DataSize s) { c->send(1, s); });
    src->start();
    w.sim.run_until(Time::from_seconds(30));
    EXPECT_LT(w.stations[0]->average_power().watts(), 0.20);
    EXPECT_GT(w.stations[0]->frames_received(), 1000u);
}

TEST(EcMacTest, LongerSuperframeLowersPowerRaisesLatency) {
    EcWorld fast(1, 100_ms);
    EcWorld slow(1, 400_ms);
    for (EcWorld* w : {&fast, &slow}) {
        w->start();
        auto src = std::make_unique<traffic::Mp3Source>(
            w->sim, [c = w->controller.get()](DataSize s) { c->send(1, s); });
        src->start();
        w->sim.run_until(Time::from_seconds(30));
        src->stop();
    }
    EXPECT_LT(slow.stations[0]->average_power().watts(),
              fast.stations[0]->average_power().watts());
}

TEST(EcMacTest, LossyLinkRetriesAcrossSuperframes) {
    EcWorld w(1);
    channel::GilbertElliottConfig bad;
    bad.mean_good = 50_ms;
    bad.mean_bad = 50_ms;
    bad.ber_good = 0.0;
    bad.ber_bad = 3e-4;
    w.bss.set_link(1, bad, w.root.fork(5));
    w.start();
    const int n = 40;
    int delivered = 0;
    for (int i = 0; i < n; ++i) {
        w.controller->send(1, DataSize::from_bytes(1400), [&](bool ok) { delivered += ok; });
    }
    w.sim.run_until(Time::from_seconds(10));
    EXPECT_EQ(delivered, n);  // all eventually delivered via re-buffering
    EXPECT_EQ(w.stations[0]->frames_received(), static_cast<std::uint64_t>(n));
}

TEST(EcMacTest, PerStationQuotaCapsSlot) {
    EcWorld w(1);
    w.start();
    // Queue far more than one superframe's quota (64 KB); it must take
    // several superframes to drain.
    const int frames = 100;  // 100 * 2304 B = 230 KB ~ 4 superframes
    for (int i = 0; i < frames; ++i) {
        w.controller->send(1, DataSize::from_bytes(2304));
    }
    w.sim.run_until(250_ms);
    EXPECT_GT(w.controller->buffered(1), 0u);  // not drained in 2 superframes
    w.sim.run_until(Time::from_seconds(2));
    EXPECT_EQ(w.controller->buffered(1), 0u);
    EXPECT_EQ(w.stations[0]->frames_received(), static_cast<std::uint64_t>(frames));
}

}  // namespace
}  // namespace wlanps::mac
