/// Final small-path tests: uncovered branches and accessor behaviours.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "bt/piconet.hpp"
#include "core/burst_channel.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "mac/access_point.hpp"
#include "mac/station.hpp"
#include "net/tcp.hpp"
#include "power/energy_meter.hpp"
#include "sim/logger.hpp"
#include "sim/simulator.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

TEST(SmallPaths, FlushToEmptyBufferFiresCallbackImmediately) {
    sim::Simulator sim;
    sim::Random root(1);
    mac::Bss bss(sim);
    mac::AccessPointConfig cfg;
    cfg.mode = mac::ApMode::psm;
    mac::AccessPoint ap(sim, bss, cfg, mac::DcfConfig{}, root.fork(1));
    bool done = false;
    ap.flush_to(1, [&] { done = true; });
    EXPECT_TRUE(done);
}

TEST(SmallPaths, ScriptedQualitySinglePointIsConstant) {
    channel::ScriptedQuality q;
    q.add_point(5_s, 0.4);
    EXPECT_DOUBLE_EQ(q.at(Time::zero()), 0.4);
    EXPECT_DOUBLE_EQ(q.at(5_s), 0.4);
    EXPECT_DOUBLE_EQ(q.at(100_s), 0.4);
    EXPECT_FALSE(q.empty());
}

TEST(SmallPaths, TcpRetransmissionRatio) {
    net::TcpResult r;
    EXPECT_DOUBLE_EQ(r.retransmission_ratio(), 0.0);  // no segments yet
    r.segments_sent = 100;
    r.segments_delivered = 90;
    EXPECT_NEAR(r.retransmission_ratio(), 0.1, 1e-12);
}

TEST(SmallPaths, EnergyMeterRejectsBadSources) {
    sim::Simulator sim;
    power::EnergyMeter meter(sim);
    EXPECT_THROW(meter.add_source("", [](Time) { return power::Energy::zero(); }),
                 ContractViolation);
    EXPECT_THROW(meter.add_source("x", nullptr), ContractViolation);
    EXPECT_TRUE(meter.total_energy().is_zero());
    EXPECT_TRUE(meter.average_power().is_zero());  // zero elapsed, no div-by-0
}

TEST(SmallPaths, UnitsEdgeArithmetic) {
    EXPECT_EQ(DataSize::from_bytes(10) - DataSize::from_bytes(10), DataSize::zero());
    Rate r = Rate::from_kbps(100);
    r += Rate::from_kbps(28);
    EXPECT_DOUBLE_EQ(r.kbps(), 128.0);
    EXPECT_TRUE(Rate::zero().is_zero());
    power::Energy e = power::Energy::from_joules(5);
    e -= power::Energy::from_joules(2);
    EXPECT_DOUBLE_EQ(e.joules(), 3.0);
}

TEST(SmallPaths, WnicNamesAndInterfaces) {
    sim::Simulator sim;
    phy::WlanNic w(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    phy::BtNic b(sim, phy::BtNicConfig{}, phy::BtNic::State::active);
    EXPECT_EQ(w.name(), "wlan-nic");
    EXPECT_EQ(b.name(), "bt-nic");
    EXPECT_EQ(std::string(phy::to_string(phy::Interface::bluetooth)), "BT");
}

TEST(SmallPaths, ServerLogsInterfaceSwitchAtInfoLevel) {
    std::ostringstream captured;
    auto* old = std::clog.rdbuf(captured.rdbuf());
    sim::Logger::set_level(sim::LogLevel::info);

    sim::Simulator sim;
    sim::Random root(2);
    bt::Piconet piconet(sim, bt::PiconetConfig{}, root.fork(1));
    core::HotspotServer server(sim, core::ServerConfig{}, core::make_scheduler("edf"));
    core::QosContract contract;
    auto client = std::make_unique<core::HotspotClient>(sim, 1, contract);
    // WLAN + BT, with BT scripted to die -> a switch must be logged.
    auto nic = std::make_unique<phy::WlanNic>(sim, phy::WlanNicConfig{},
                                              phy::WlanNic::State::idle);
    client->add_channel(std::make_unique<core::WlanBurstChannel>(sim, *nic, nullptr));
    auto slave = std::make_unique<bt::BtSlave>(sim, phy::BtNicConfig{},
                                               phy::BtNic::State::active);
    const auto sid = piconet.join(*slave);
    piconet.set_link(sid, channel::GilbertElliottConfig{}, root.fork(2));
    channel::ScriptedQuality dying;
    dying.add_point(5_s, 1.0);
    dying.add_point(6_s, 0.05);
    piconet.set_link_script(sid, dying);
    client->add_channel(std::make_unique<core::BtBurstChannel>(piconet, sid, *slave));
    server.register_client(*client);
    server.set_stored_content(1, true);
    client->start();
    server.start();
    sim.run_until(Time::from_seconds(30));

    sim::Logger::set_level(sim::LogLevel::off);
    std::clog.rdbuf(old);
    EXPECT_NE(captured.str().find("switches to WLAN"), std::string::npos);
}

TEST(SmallPaths, StationUplinkCountsOnlyDelivered) {
    sim::Simulator sim;
    sim::Random root(3);
    mac::Bss bss(sim);
    mac::AccessPointConfig cfg;
    cfg.mode = mac::ApMode::cam;
    mac::AccessPoint ap(sim, bss, cfg, mac::DcfConfig{}, root.fork(1));
    mac::StationConfig st_cfg;
    mac::WlanStation st(sim, bss, 1, st_cfg, mac::DcfConfig{}, phy::WlanNicConfig{},
                        root.fork(2));
    // Kill the uplink completely: nothing counted as sent.
    channel::GilbertElliottConfig dead;
    dead.ber_good = dead.ber_bad = 0.01;
    bss.set_link(1, dead, root.fork(3));
    bool delivered = true;
    st.send_up(DataSize::from_bytes(1000), [&](bool ok) { delivered = ok; });
    sim.run();
    EXPECT_FALSE(delivered);
    EXPECT_TRUE(st.bytes_sent().is_zero());
}

TEST(SmallPaths, HotspotClientChannelAccessorsValidate) {
    sim::Simulator sim;
    core::HotspotClient client(sim, 1, core::QosContract{});
    EXPECT_THROW((void)client.channel(0), ContractViolation);
    EXPECT_THROW(client.add_channel(nullptr), ContractViolation);
    EXPECT_TRUE(client.channels().empty());
}

TEST(SmallPaths, PiconetPeakGoodputMatchesCalibration) {
    sim::Simulator sim;
    bt::PiconetConfig cfg;
    bt::Piconet piconet(sim, cfg, sim::Random(4));
    EXPECT_NEAR(piconet.peak_goodput().kbps(), phy::calibration::kBtAclPeak.kbps(), 0.5);
}

}  // namespace
}  // namespace wlanps
