/// \file obs_health_test.cpp
/// Kernel health telemetry: ShardTelemetry attribution math, watchdog
/// latching and structured reporting, the federation health rollup, a
/// seeded broken-invariant run that must be caught within one sweep (with
/// a flight dump) while clean runs stay silent, and bit-identical health
/// JSON / metrics snapshots across worker-thread counts.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/scenario_spec.hpp"
#include "fed/client_slab.hpp"
#include "fed/federation.hpp"
#include "obs/flight.hpp"
#include "obs/health_report.hpp"
#include "obs/hooks.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/shard_telemetry.hpp"
#include "obs/watchdog.hpp"
#include "sim/sharded.hpp"

using namespace wlanps;

namespace {

core::FederationConfig fed_config(int threads = 0, int aps = 8) {
    core::FederationConfig cfg;
    cfg.with_aps(aps).with_shards(4).with_threads(threads);
    cfg.capacity_per_ap = 64;
    cfg.mean_session = Time::from_seconds(40);
    cfg.base_arrival_hz = 0.5;
    return cfg;
}

core::ScenarioSpec fed_spec(const core::FederationConfig& cfg, int clients = 96,
                            std::uint64_t seed = 7,
                            Time duration = Time::from_seconds(60)) {
    core::StreamConfig stream;
    stream.clients = clients;
    stream.duration = duration;
    stream.seed = seed;
    return core::ScenarioSpec::federation().with_federation(cfg).with_stream(stream);
}

}  // namespace

// ---- ShardTelemetry attribution math ---------------------------------------------

TEST(ShardTelemetryTest, ImbalanceIndexIsMaxOverMeanPerQuantum) {
    obs::ShardTelemetry t(2);
    // Quantum 1: shard 0 does 30 events, shard 1 does 10 -> max 30, mean 20.
    t.record_shard(0, 30, 0, 0, 0);
    t.record_shard(1, 10, 0, 0, 0);
    t.commit_quantum();
    // Quantum 2: perfectly balanced.
    t.record_shard(0, 20, 0, 0, 0);
    t.record_shard(1, 20, 0, 0, 0);
    t.commit_quantum();
    EXPECT_EQ(t.quanta(), 2u);
    // (30 + 20) / ((40 + 40) / 2 shards) = 50/40.
    EXPECT_DOUBLE_EQ(t.imbalance_index(), 50.0 / 40.0);
}

TEST(ShardTelemetryTest, EmptyQuantaDoNotSkewTheIndex) {
    obs::ShardTelemetry t(2);
    t.commit_quantum();  // idle quantum: no events anywhere
    EXPECT_DOUBLE_EQ(t.imbalance_index(), 0.0);
    t.record_shard(0, 8, 0, 0, 0);
    t.record_shard(1, 8, 0, 0, 0);
    t.commit_quantum();
    EXPECT_DOUBLE_EQ(t.imbalance_index(), 1.0);
}

TEST(ShardTelemetryTest, PublishEmitsDeterministicPerShardKeys) {
    obs::ShardTelemetry t(2);
    t.record_shard(0, 5, 100, 10, 1);
    t.record_shard(1, 3, 50, 5, 0);
    t.commit_quantum();
    obs::MetricsRegistry reg;
    t.publish(reg);
    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_NE(snap.counter("sim.shard.0.events"), nullptr);
    EXPECT_NE(snap.counter("sim.shard.1.events"), nullptr);
    EXPECT_EQ(snap.counter("sim.shard.0.events")->value(), 5u);
    EXPECT_NE(snap.gauge("sim.shard.imbalance.index"), nullptr);
    // Timing keys only appear via publish_timing.
    EXPECT_EQ(snap.counter("sim.shard.0.dispatch_ns"), nullptr);
    t.publish_timing(reg);
    EXPECT_NE(reg.snapshot().counter("sim.shard.0.dispatch_ns"), nullptr);
}

// ---- watchdog mechanics ----------------------------------------------------------

TEST(WatchdogTest, TrippedChecksLatchAndReportOnce) {
    obs::Watchdog wd;
    int calls = 0;
    wd.add_check("test.always_bad", [&calls]() -> std::optional<std::string> {
        ++calls;
        return "broken";
    });
    wd.add_check("test.fine", []() -> std::optional<std::string> { return std::nullopt; });
    EXPECT_EQ(wd.sweep(1000), 1u);
    EXPECT_EQ(wd.sweep(2000), 0u);  // latched: no new violation
    EXPECT_EQ(wd.sweep(3000), 0u);
    EXPECT_EQ(calls, 1);  // the tripped check never re-runs
    EXPECT_EQ(wd.sweeps(), 3u);
    EXPECT_EQ(wd.violations(), 1u);
    EXPECT_FALSE(wd.healthy());
    ASSERT_EQ(wd.reports().size(), 1u);
    const obs::WatchdogReport& r = wd.reports()[0];
    EXPECT_EQ(r.check, "test.always_bad");
    EXPECT_EQ(r.message, "broken");
    EXPECT_EQ(r.t_ns, 1000);
    EXPECT_EQ(r.sweep, 1u);
    EXPECT_TRUE(r.flight_dump.empty());
}

TEST(WatchdogTest, JsonIsStructured) {
    obs::Watchdog wd;
    wd.add_check("a", []() -> std::optional<std::string> { return "boom"; });
    wd.sweep(5);
    EXPECT_EQ(wd.to_json(),
              "{\"checks\":1,\"sweeps\":1,\"violations\":1,\"reports\":[{\"check\":\"a\","
              "\"t_ns\":5,\"sweep\":1,\"message\":\"boom\",\"flight_dump\":\"\"}]}");
}

TEST(WatchdogTest, ViolationWithFlightRecorderWritesDump) {
    obs::FlightRecorder flight(64);
    obs::Watchdog wd;
    const std::string prefix = ::testing::TempDir() + "wd_test";
    wd.set_flight(&flight, prefix);
    wd.add_check("test.bad", []() -> std::optional<std::string> { return "x"; });
    wd.sweep(1);
    ASSERT_EQ(wd.reports().size(), 1u);
    const std::string dump = wd.reports()[0].flight_dump;
    ASSERT_FALSE(dump.empty());
    EXPECT_EQ(dump, prefix + ".test.bad.0.flight.json");
    std::ifstream in(dump);
    EXPECT_TRUE(in.good()) << "flight dump not written: " << dump;
    std::remove(dump.c_str());
}

// ---- clean runs stay silent ------------------------------------------------------

TEST(FederationHealthTest, CleanRunProducesZeroReportsAndAHealthyRollup) {
    obs::Watchdog wd;
    obs::ScopedWatchdog scope(wd);
    const fed::FederationResult fr = fed::run_federation(fed_spec(fed_config()));
    // The federation registered and swept its invariants...
    EXPECT_GE(wd.check_count(), 6u);
    EXPECT_GT(wd.sweeps(), 1u);
    // ...and a healthy run trips none of them.
    EXPECT_TRUE(wd.healthy()) << wd.to_json();
    EXPECT_EQ(wd.violations(), 0u);

    const obs::HealthReport& h = fr.health;
    EXPECT_EQ(h.scope, "federation");
    EXPECT_EQ(h.shards, 4u);
    EXPECT_GT(h.quanta, 0u);
    EXPECT_GT(h.events, 0u);
    ASSERT_EQ(h.per_shard.size(), 4u);
    ASSERT_EQ(h.per_cell.size(), 8u);
    EXPECT_TRUE(h.has_population);
    EXPECT_TRUE(h.conserved);
    EXPECT_TRUE(h.has_watchdog);
    EXPECT_EQ(h.watchdog_reports.size(), 0u);
    std::uint64_t shard_events = 0;
    for (const auto& sh : h.per_shard) shard_events += sh.events;
    EXPECT_EQ(shard_events, h.events);
}

TEST(FederationHealthTest, RunWithoutWatchdogStillBuildsHealth) {
    const fed::FederationResult fr = fed::run_federation(fed_spec(fed_config()));
    EXPECT_FALSE(fr.health.has_watchdog);
    EXPECT_TRUE(fr.health.conserved);
    EXPECT_GT(fr.health.events, 0u);
}

// ---- a corrupted invariant is caught within one sweep ----------------------------

TEST(FederationHealthTest, CorruptedConservationIsCaughtWithinOneSweepWithDump) {
    obs::FlightRecorder flight(256);
    obs::Watchdog wd;
    const std::string prefix = ::testing::TempDir() + "fed_corrupt";
    wd.set_flight(&flight, prefix);
    obs::ScopedWatchdog scope(wd);

    const core::ScenarioSpec spec = fed_spec(fed_config(/*threads=*/0));
    fed::Federation federation(spec);
    // Seeded fault: at t = 5 s an event on shard 0 silently inflates a
    // slab row's completed-burst counter, breaking admitted >= completed +
    // shed.  Inline execution (threads = 0) so the cross-owner write is
    // not a data race.
    const Time corrupt_at = Time::from_seconds(5);
    federation.kernel().shard(0).post_at(corrupt_at, [&federation] {
        federation.slab().bursts_completed[0] += 1000;
    });
    const fed::FederationResult fr = federation.run();

    ASSERT_GE(wd.violations(), 1u) << wd.to_json();
    const obs::WatchdogReport& r = wd.reports()[0];
    EXPECT_EQ(r.check, "fed.conservation");
    // Caught by the first chunk-boundary sweep after the corruption: the
    // 60 s run sweeps every 60/64 s, so detection lands within one sweep
    // interval of the fault.
    EXPECT_GE(r.t_ns, corrupt_at.ns());
    EXPECT_LE(r.t_ns, corrupt_at.ns() + Time::from_seconds(60).ns() / 64 + 1);
    EXPECT_NE(r.message.find("completed"), std::string::npos) << r.message;
    // The report carries a flight dump written at detection time.
    ASSERT_FALSE(r.flight_dump.empty());
    std::ifstream in(r.flight_dump);
    EXPECT_TRUE(in.good()) << "flight dump not written: " << r.flight_dump;
    std::remove(r.flight_dump.c_str());

    // The run finished (no crash) and the rollup records the violation.
    EXPECT_TRUE(fr.health.has_watchdog);
    EXPECT_FALSE(fr.health.conserved);
    EXPECT_GE(fr.health.watchdog_reports.size(), 1u);
}

// ---- determinism across worker-thread counts -------------------------------------

TEST(FederationHealthTest, HealthJsonAndMetricsAreBitIdenticalAcrossThreads) {
    auto run_one = [](int threads) {
        obs::MetricsRegistry reg;
        obs::ScopedRegistry scope(reg);
        const fed::FederationResult fr =
            fed::run_federation(fed_spec(fed_config(threads, /*aps=*/16), 128));
        return std::pair<std::string, std::string>(fr.health.to_json(),
                                                   obs::to_json(reg.snapshot()));
    };
    const auto [health0, metrics0] = run_one(0);
    EXPECT_NE(health0.find("\"scope\":\"federation\""), std::string::npos);
    for (int threads : {1, 2, 4}) {
        const auto [health, metrics] = run_one(threads);
        EXPECT_EQ(health0, health) << threads << " threads";
        EXPECT_EQ(metrics0, metrics) << threads << " threads";
    }
}

TEST(ShardedHealthTest, HotspotHealthIsBitIdenticalAcrossThreads) {
    auto run_one = [](int threads) {
        core::StreamConfig config;
        config.clients = 16;
        config.duration = Time::from_seconds(30);
        core::HotspotConfig options;
        options.bt_available = false;
        options.sharding = core::ShardingConfig{}.with_shards(4).with_threads(threads);
        obs::HealthReport health;
        options.health = &health;
        auto result = core::SimBackend{}.run(
            core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));
        return health.to_json();
    };
    const std::string inline_json = run_one(0);
    EXPECT_NE(inline_json.find("\"scope\":\"sharded-hotspot\""), std::string::npos);
    for (int threads : {1, 2, 4}) {
        EXPECT_EQ(inline_json, run_one(threads)) << threads << " threads";
    }
}

TEST(ShardedHealthTest, TimingSectionOnlyAppearsOnRequest) {
    core::StreamConfig config;
    config.clients = 8;
    config.duration = Time::from_seconds(10);
    core::HotspotConfig options;
    options.bt_available = false;
    options.sharding = core::ShardingConfig{}.with_shards(2).with_threads(2);
    obs::HealthReport health;
    options.health = &health;
    auto result = core::SimBackend{}.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));
    EXPECT_EQ(health.to_json(false).find("\"timing\""), std::string::npos);
    EXPECT_NE(health.to_json(true).find("\"timing\""), std::string::npos);
    const std::string with_timing = health.to_json(true);
    EXPECT_NE(with_timing.find("\"barrier_wait_ns\""), std::string::npos);
    EXPECT_NE(with_timing.find("\"barrier_overhead\""), std::string::npos);
}
