/// Unit tests for the strong unit types: Time, DataSize, Rate.

#include <gtest/gtest.h>

#include <sstream>

#include "sim/assert.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

TEST(TimeTest, DefaultIsZero) {
    Time t;
    EXPECT_TRUE(t.is_zero());
    EXPECT_EQ(t.ns(), 0);
}

TEST(TimeTest, NamedConstructorsAgree) {
    EXPECT_EQ(Time::from_us(1.0), Time::from_ns(1000));
    EXPECT_EQ(Time::from_ms(1.0), Time::from_us(1000.0));
    EXPECT_EQ(Time::from_seconds(1.0), Time::from_ms(1000.0));
}

TEST(TimeTest, LiteralsMatchFactories) {
    EXPECT_EQ(5_us, Time::from_us(5));
    EXPECT_EQ(5_ms, Time::from_ms(5));
    EXPECT_EQ(5_s, Time::from_seconds(5));
    EXPECT_EQ(2.5_ms, Time::from_us(2500));
}

TEST(TimeTest, Arithmetic) {
    EXPECT_EQ(1_ms + 500_us, Time::from_us(1500));
    EXPECT_EQ(1_ms - 500_us, 500_us);
    EXPECT_EQ(1_ms * 2.0, 2_ms);
    EXPECT_EQ(2.0 * 1_ms, 2_ms);
    EXPECT_EQ(1_ms / 2.0, 500_us);
    EXPECT_DOUBLE_EQ(3_ms / 1_ms, 3.0);
}

TEST(TimeTest, FractionalFactoriesRoundToNearestNs) {
    EXPECT_EQ(Time::from_us(0.0015).ns(), 2);   // 1.5 ns rounds up
    EXPECT_EQ(Time::from_us(0.0014).ns(), 1);   // 1.4 ns rounds down
}

TEST(TimeTest, ComparisonAndNegative) {
    EXPECT_LT(1_us, 2_us);
    EXPECT_TRUE((1_us - 2_us).is_negative());
    EXPECT_GT(Time::max(), 100_s);
}

TEST(TimeTest, ConversionRoundTrip) {
    const Time t = Time::from_seconds(1.5);
    EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
    EXPECT_DOUBLE_EQ(t.to_ms(), 1500.0);
    EXPECT_DOUBLE_EQ(t.to_us(), 1.5e6);
}

TEST(TimeTest, StringPicksUnitByMagnitude) {
    EXPECT_EQ((500_ns).str(), "500ns");
    EXPECT_EQ((10_us).str(), "10us");
    EXPECT_EQ((3_ms).str(), "3ms");
    EXPECT_EQ((2_s).str(), "2s");
}

TEST(TimeTest, StreamOperator) {
    std::ostringstream os;
    os << 42_ms;
    EXPECT_EQ(os.str(), "42ms");
}

TEST(DataSizeTest, BitsAndBytes) {
    EXPECT_EQ(DataSize::from_bytes(10).bits(), 80);
    EXPECT_EQ(DataSize::from_bits(80).bytes(), 10);
    EXPECT_EQ(DataSize::from_kilobytes(1.0).bytes(), 1024);
    EXPECT_DOUBLE_EQ(DataSize::from_kilobytes(48).kilobytes(), 48.0);
}

TEST(DataSizeTest, Arithmetic) {
    const DataSize a = DataSize::from_bytes(100);
    const DataSize b = DataSize::from_bytes(50);
    EXPECT_EQ(a + b, DataSize::from_bytes(150));
    EXPECT_EQ(a - b, b);
    EXPECT_EQ(a * 0.5, b);
    EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(DataSizeTest, Comparisons) {
    EXPECT_LT(DataSize::from_bytes(1), DataSize::from_bytes(2));
    EXPECT_TRUE(DataSize::zero().is_zero());
}

TEST(RateTest, Conversions) {
    EXPECT_DOUBLE_EQ(Rate::from_mbps(11).kbps(), 11000.0);
    EXPECT_DOUBLE_EQ(Rate::from_kbps(128).bps(), 128000.0);
}

TEST(RateTest, TransmitTime) {
    // 1 Mb/s moves 1000 bits in 1 ms.
    const Time t = Rate::from_mbps(1).transmit_time(DataSize::from_bits(1000));
    EXPECT_EQ(t, Time::from_ms(1));
}

TEST(RateTest, DataInInvertsTransmitTime) {
    const Rate r = Rate::from_kbps(723.2);
    const DataSize d = DataSize::from_kilobytes(48);
    const Time t = r.transmit_time(d);
    const DataSize back = r.data_in(t);
    EXPECT_NEAR(static_cast<double>(back.bits()), static_cast<double>(d.bits()), 1.0);
}

TEST(RateTest, TransmitTimeOnZeroRateThrows) {
    EXPECT_THROW((void)Rate::zero().transmit_time(DataSize::from_bytes(1)), ContractViolation);
}

/// Property sweep: transmit_time is linear in size and inverse in rate.
class RateProperty : public ::testing::TestWithParam<double> {};

TEST_P(RateProperty, TransmitTimeScalesLinearly) {
    const double mbps = GetParam();
    const Rate r = Rate::from_mbps(mbps);
    const DataSize d = DataSize::from_bytes(1500);
    const Time one = r.transmit_time(d);
    const Time two = r.transmit_time(d + d);
    EXPECT_NEAR(static_cast<double>(two.ns()), 2.0 * static_cast<double>(one.ns()), 2.0);
    const Time half = (r * 2.0).transmit_time(d);
    EXPECT_NEAR(static_cast<double>(half.ns()), 0.5 * static_cast<double>(one.ns()), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateProperty, ::testing::Values(0.5, 1.0, 2.0, 5.5, 11.0, 54.0));

}  // namespace
}  // namespace wlanps
