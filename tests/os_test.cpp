/// Tests for OS-level power management: shutdown policies, idle traces,
/// DVFS.

#include <gtest/gtest.h>

#include "os/dvfs.hpp"
#include "os/idle_trace.hpp"
#include "os/shutdown_policy.hpp"
#include "sim/assert.hpp"

namespace wlanps::os {
namespace {

using namespace time_literals;
using power::Energy;
using power::Power;

TEST(DeviceParamsTest, BreakEvenMatchesHandMath) {
    DeviceParams d;
    d.idle = Power::from_watts(1.0);
    d.sleep = Power::zero();
    d.transition_energy = Energy::from_joules(0.5);
    EXPECT_NEAR(d.break_even().to_seconds(), 0.5, 1e-9);
}

TEST(PolicyTest, AlwaysOnNeverSleeps) {
    AlwaysOnPolicy p;
    DeviceParams d;
    const auto eval = evaluate_policy(p, d, {1_s, 10_s, 100_ms});
    EXPECT_EQ(eval.sleeps, 0u);
    EXPECT_EQ(eval.added_latency, Time::zero());
    // Energy = idle power over total idle.
    EXPECT_NEAR(eval.energy.joules(), d.idle.over(eval.total_idle).joules(), 1e-9);
}

TEST(PolicyTest, TimeoutSleepsOnlyOnLongIdles) {
    TimeoutPolicy p(500_ms);
    DeviceParams d;
    const auto eval = evaluate_policy(p, d, {100_ms, 1_s, 200_ms, 2_s});
    EXPECT_EQ(eval.sleeps, 2u);  // only the 1 s and 2 s idles
    EXPECT_EQ(eval.added_latency, d.wake_latency * 2.0);
}

TEST(PolicyTest, TimeoutEnergyAccounting) {
    DeviceParams d;
    d.idle = Power::from_watts(1.0);
    d.sleep = Power::zero();
    d.transition_energy = Energy::from_joules(0.1);
    TimeoutPolicy p(1_s);
    const auto eval = evaluate_policy(p, d, {3_s});
    // 1 s on (1 J) + transition (0.1 J) + 2 s sleeping (0 J).
    EXPECT_NEAR(eval.energy.joules(), 1.1, 1e-9);
}

TEST(PolicyTest, OracleNeverWrong) {
    DeviceParams d;
    sim::Random rng(5);
    const auto trace = bimodal_idle_trace(rng, 500, 0.7, 50_ms, 5_s);
    OraclePolicy oracle(d);
    const auto eval = evaluate_policy(oracle, d, trace);
    EXPECT_EQ(eval.wrong_sleeps, 0u);
}

TEST(PolicyTest, OracleIsLowerBoundOnEnergy) {
    DeviceParams d;
    sim::Random rng(7);
    const auto trace = bimodal_idle_trace(rng, 1000, 0.7, 50_ms, 5_s);

    OraclePolicy oracle(d);
    const double e_oracle = evaluate_policy(oracle, d, trace).energy.joules();

    AlwaysOnPolicy always;
    TimeoutPolicy timeout(d.break_even());
    AdaptivePolicy adaptive(d);
    HistoryPolicy history(d);
    for (ShutdownPolicy* p :
         std::initializer_list<ShutdownPolicy*>{&always, &timeout, &adaptive, &history}) {
        EXPECT_GE(evaluate_policy(*p, d, trace).energy.joules(), e_oracle * 0.999)
            << p->name();
    }
}

TEST(PolicyTest, PredictivePoliciesBeatAlwaysOnOnBimodal) {
    DeviceParams d;
    sim::Random rng(11);
    const auto trace = bimodal_idle_trace(rng, 1000, 0.8, 50_ms, 5_s);
    AlwaysOnPolicy always;
    AdaptivePolicy adaptive(d);
    HistoryPolicy history(d);
    const double e_always = evaluate_policy(always, d, trace).energy.joules();
    EXPECT_LT(evaluate_policy(adaptive, d, trace).energy.joules(), e_always);
    EXPECT_LT(evaluate_policy(history, d, trace).energy.joules(), e_always);
}

TEST(PolicyTest, AdaptiveSeedsFromFirstObservation) {
    DeviceParams d;
    AdaptivePolicy p(d, 0.5, 2_s);
    EXPECT_EQ(p.decide(), 2_s);  // unseeded -> fallback
    p.observe(10_s);
    EXPECT_EQ(p.predicted(), 10_s);
    EXPECT_EQ(p.decide(), Time::zero());  // predicted >> break-even
}

TEST(PolicyTest, AdaptiveEwmaConverges) {
    DeviceParams d;
    AdaptivePolicy p(d, 0.5, 2_s);
    for (int i = 0; i < 20; ++i) p.observe(100_ms);
    EXPECT_NEAR(p.predicted().to_seconds(), 0.1, 0.01);
}

TEST(PolicyTest, EvaluatorRejectsNonPositiveIdle) {
    DeviceParams d;
    TimeoutPolicy p(1_s);
    EXPECT_THROW((void)evaluate_policy(p, d, {Time::zero()}), ContractViolation);
}

TEST(IdleTraceTest, ExponentialMean) {
    sim::Random rng(13);
    const auto trace = exponential_idle_trace(rng, 20000, 500_ms);
    double sum = 0.0;
    for (const Time t : trace) sum += t.to_seconds();
    EXPECT_NEAR(sum / static_cast<double>(trace.size()), 0.5, 0.02);
}

TEST(IdleTraceTest, ParetoRespectsMinimum) {
    sim::Random rng(17);
    const auto trace = pareto_idle_trace(rng, 5000, 1.5, 100_ms);
    for (const Time t : trace) EXPECT_GE(t, 100_ms);
}

TEST(IdleTraceTest, BimodalHasTwoModes) {
    sim::Random rng(19);
    const auto trace = bimodal_idle_trace(rng, 20000, 0.8, 50_ms, 5_s);
    int shortish = 0, longish = 0;
    for (const Time t : trace) {
        if (t < 500_ms) ++shortish;
        if (t > 2_s) ++longish;
    }
    EXPECT_GT(shortish, 10000);
    EXPECT_GT(longish, 1000);
}

TEST(DvfsTest, UtilizationScalesWithFrequency) {
    const auto cpu = DvfsCpu::xscale();
    std::vector<PeriodicTask> tasks = {{"t", 10.0, 100_ms}};  // 10 Mcycles / 100 ms
    // At 100 MHz: 0.1 s of work per 0.1 s -> U = 1.0.
    EXPECT_NEAR(DvfsCpu::utilization(tasks, cpu.points().front()), 1.0, 1e-9);
    // At 400 MHz: U = 0.25.
    EXPECT_NEAR(DvfsCpu::utilization(tasks, cpu.points().back()), 0.25, 1e-9);
}

TEST(DvfsTest, SelectPicksLowestFeasible) {
    const auto cpu = DvfsCpu::xscale();
    std::vector<PeriodicTask> light = {{"t", 4.0, 100_ms}};   // U=0.4 @100MHz
    EXPECT_DOUBLE_EQ(cpu.select(light).frequency_mhz, 100.0);
    std::vector<PeriodicTask> medium = {{"t", 15.0, 100_ms}};  // U=1.5 @100, 0.75 @200
    EXPECT_DOUBLE_EQ(cpu.select(medium).frequency_mhz, 200.0);
}

TEST(DvfsTest, InfeasibleTaskSetThrows) {
    const auto cpu = DvfsCpu::xscale();
    std::vector<PeriodicTask> heavy = {{"t", 50.0, 100_ms}};  // U=1.25 @400MHz
    EXPECT_THROW((void)cpu.select(heavy), ContractViolation);
}

TEST(DvfsTest, PowerSuperlinearInFrequency) {
    const auto cpu = DvfsCpu::xscale();
    const auto& lo = cpu.points().front();   // 100 MHz @ 0.85 V
    const auto& hi = cpu.points().back();    // 400 MHz @ 1.30 V
    const double ratio = hi.dynamic_power(1.2) / lo.dynamic_power(1.2);
    EXPECT_GT(ratio, 4.0);  // 4x frequency, > 4x power (voltage squared)
    EXPECT_NEAR(ratio, 4.0 * (1.3 * 1.3) / (0.85 * 0.85), 0.01);
}

TEST(DvfsTest, ScalingSavesEnergyOnLightLoad) {
    const auto cpu = DvfsCpu::xscale();
    std::vector<PeriodicTask> light = {{"t", 2.0, 100_ms}};
    const auto& best = cpu.select(light);
    const auto& maxed = cpu.points().back();
    EXPECT_LT(cpu.energy(light, best, 10_s).joules(),
              cpu.energy(light, maxed, 10_s).joules() * 0.5);
}

TEST(DvfsTest, OverloadedPointRejectedInPowerQuery) {
    const auto cpu = DvfsCpu::xscale();
    std::vector<PeriodicTask> heavy = {{"t", 20.0, 100_ms}};  // U=2.0 @100MHz
    EXPECT_THROW((void)cpu.average_power(heavy, cpu.points().front()), ContractViolation);
}

/// Property: for any load, the selected point's energy is no worse than
/// any other feasible point's energy.
class DvfsSelection : public ::testing::TestWithParam<double> {};

TEST_P(DvfsSelection, SelectionIsEnergyOptimal) {
    const auto cpu = DvfsCpu::xscale();
    std::vector<PeriodicTask> tasks = {{"t", GetParam(), 100_ms}};
    const auto& chosen = cpu.select(tasks);
    for (const auto& p : cpu.points()) {
        if (DvfsCpu::utilization(tasks, p) <= 0.95) {
            EXPECT_LE(cpu.average_power(tasks, chosen).watts(),
                      cpu.average_power(tasks, p).watts() + 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Loads, DvfsSelection, ::testing::Values(2.0, 5.0, 10.0, 18.0, 28.0));

}  // namespace
}  // namespace wlanps::os
