/// Tests for the Hotspot burst schedulers (EDF, WFQ, RR, FP, FIFO).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "sim/assert.hpp"
#include "sim/random.hpp"

namespace wlanps::core {
namespace {

using namespace time_literals;

BurstRequest req(ClientId client, Time deadline, double weight = 1.0, int priority = 1,
                 Time created = Time::zero(), DataSize size = DataSize::from_kilobytes(48)) {
    BurstRequest r;
    r.client = client;
    r.size = size;
    r.deadline = deadline;
    r.weight = weight;
    r.priority = priority;
    r.created_at = created;
    return r;
}

TEST(EdfTest, PicksEarliestDeadline) {
    EdfScheduler edf;
    std::vector<BurstRequest> pending = {req(1, 5_s), req(2, 2_s), req(3, 8_s)};
    EXPECT_EQ(edf.pick(pending, Time::zero()), 1u);
}

TEST(EdfTest, TieBreaksFifo) {
    EdfScheduler edf;
    std::vector<BurstRequest> pending = {req(1, 5_s, 1.0, 1, 2_ms), req(2, 5_s, 1.0, 1, 1_ms)};
    EXPECT_EQ(edf.pick(pending, Time::zero()), 1u);  // created earlier
}

TEST(FifoTest, PicksOldest) {
    FifoScheduler fifo;
    std::vector<BurstRequest> pending = {req(1, 1_s, 1.0, 1, 3_ms), req(2, 9_s, 1.0, 1, 1_ms),
                                         req(3, 5_s, 1.0, 1, 2_ms)};
    EXPECT_EQ(fifo.pick(pending, Time::zero()), 1u);
}

TEST(FixedPriorityTest, LowerValueWins) {
    FixedPriorityScheduler fp;
    std::vector<BurstRequest> pending = {req(1, 1_s, 1.0, 2), req(2, 9_s, 1.0, 0),
                                         req(3, 5_s, 1.0, 1)};
    EXPECT_EQ(fp.pick(pending, Time::zero()), 1u);
}

TEST(FixedPriorityTest, FifoWithinPriority) {
    FixedPriorityScheduler fp;
    std::vector<BurstRequest> pending = {req(1, 1_s, 1.0, 1, 5_ms), req(2, 1_s, 1.0, 1, 2_ms)};
    EXPECT_EQ(fp.pick(pending, Time::zero()), 1u);
}

TEST(RoundRobinTest, CyclesThroughClients) {
    RoundRobinScheduler rr;
    std::vector<BurstRequest> pending = {req(1, 1_s), req(2, 1_s), req(3, 1_s)};
    std::vector<ClientId> served;
    for (int round = 0; round < 6; ++round) {
        const std::size_t i = rr.pick(pending, Time::zero());
        served.push_back(pending[i].client);
        rr.on_dispatch(pending[i], 1_ms);
    }
    EXPECT_EQ(served, (std::vector<ClientId>{1, 2, 3, 1, 2, 3}));
}

TEST(RoundRobinTest, SkipsAbsentClients) {
    RoundRobinScheduler rr;
    std::vector<BurstRequest> pending = {req(1, 1_s), req(5, 1_s)};
    rr.on_dispatch(req(1, 1_s), 1_ms);  // last served = 1
    EXPECT_EQ(pending[rr.pick(pending, Time::zero())].client, 5u);
    rr.on_dispatch(req(5, 1_s), 1_ms);
    EXPECT_EQ(pending[rr.pick(pending, Time::zero())].client, 1u);  // wraps
}

TEST(WfqTest, EqualWeightsAlternate) {
    WfqScheduler wfq;
    std::vector<BurstRequest> a = {req(1, 1_s), req(2, 1_s)};
    std::vector<ClientId> served;
    for (int i = 0; i < 4; ++i) {
        const std::size_t k = wfq.pick(a, Time::zero());
        served.push_back(a[k].client);
        wfq.on_dispatch(a[k], 1_ms);
    }
    // With equal weights no client is served twice more than the other.
    const int c1 = static_cast<int>(std::count(served.begin(), served.end(), 1u));
    EXPECT_EQ(c1, 2);
}

TEST(WfqTest, HigherWeightGetsMoreService) {
    WfqScheduler wfq;
    // Client 1 weight 3, client 2 weight 1; both always have a burst.
    std::vector<ClientId> served;
    for (int i = 0; i < 8; ++i) {
        std::vector<BurstRequest> pending = {req(1, 1_s, 3.0), req(2, 1_s, 1.0)};
        const std::size_t k = wfq.pick(pending, Time::zero());
        served.push_back(pending[k].client);
        wfq.on_dispatch(pending[k], 1_ms);
    }
    const auto c1 = std::count(served.begin(), served.end(), 1u);
    EXPECT_EQ(c1, 6);  // 3:1 split of 8 dispatches
}

TEST(WfqTest, ZeroWeightThrows) {
    WfqScheduler wfq;
    std::vector<BurstRequest> pending = {req(1, 1_s, 0.0)};
    EXPECT_THROW((void)wfq.pick(pending, Time::zero()), ContractViolation);
}

TEST(SchedulerFactoryTest, AllNamesResolve) {
    for (const std::string name : {"edf", "wfq", "round-robin", "fixed-priority", "fifo"}) {
        const auto s = make_scheduler(name);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->name(), name);
    }
    EXPECT_THROW((void)make_scheduler("lottery"), ContractViolation);
}

TEST(SchedulerTest, EmptyPendingThrows) {
    EdfScheduler edf;
    std::vector<BurstRequest> empty;
    EXPECT_THROW((void)edf.pick(empty, Time::zero()), ContractViolation);
}

/// Property: every scheduler returns a valid index for arbitrary pendings.
class SchedulerProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerProperty, AlwaysPicksValidIndex) {
    const auto scheduler = make_scheduler(GetParam());
    sim::Random rng(777);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<BurstRequest> pending;
        const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
        for (std::size_t i = 0; i < n; ++i) {
            pending.push_back(req(static_cast<ClientId>(rng.uniform_int(1, 6)),
                                  Time::from_ms(rng.uniform_int(1, 10000)),
                                  rng.uniform(0.1, 5.0), static_cast<int>(rng.uniform_int(0, 3)),
                                  Time::from_ms(rng.uniform_int(0, 1000))));
        }
        const std::size_t k = scheduler->pick(pending, Time::from_seconds(1));
        ASSERT_LT(k, pending.size());
        scheduler->on_dispatch(pending[k], 10_ms);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerProperty,
                         ::testing::Values("edf", "wfq", "round-robin", "fixed-priority",
                                           "fifo"));

}  // namespace
}  // namespace wlanps::core
