/// Robustness tests: the paper's headline claims must hold across random
/// seeds, and the protocols must degrade gracefully (not collapse or
/// crash) on genuinely bad channels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "bt/piconet.hpp"
#include "core/backend.hpp"
#include "core/burst_channel.hpp"
#include "core/client.hpp"
#include "core/scenario_spec.hpp"
#include "core/server.hpp"
#include "mac/access_point.hpp"
#include "mac/station.hpp"
#include "traffic/source.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

const core::SimBackend backend;

// ---- The headline claim, across seeds -----------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, HotspotSavingHoldsForAnySeed) {
    core::StreamConfig config;
    config.clients = 3;
    config.duration = Time::from_seconds(60);
    config.seed = GetParam();

    const auto cam = backend.run(core::ScenarioSpec::cam().with_stream(config));
    const auto hotspot = backend.run(core::ScenarioSpec::hotspot().with_stream(config));

    const double saving = 1.0 - hotspot.mean_wnic() / cam.mean_wnic();
    EXPECT_GT(saving, 0.90) << "seed " << GetParam();
    EXPECT_LT(saving, 0.995) << "seed " << GetParam();
    EXPECT_DOUBLE_EQ(hotspot.min_qos(), 1.0) << "seed " << GetParam();
}

TEST_P(SeedSweep, TechniqueLadderOrderingHolds) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = Time::from_seconds(60);
    config.seed = GetParam() + 100;

    const auto cam = backend.run(core::ScenarioSpec::cam().with_stream(config));
    const auto psm = backend.run(core::ScenarioSpec::psm().with_stream(config));
    const auto bt = backend.run(core::ScenarioSpec::bt().with_stream(config));
    EXPECT_GT(cam.mean_wnic().watts(), psm.mean_wnic().watts() * 2.0);
    EXPECT_GT(psm.mean_wnic().watts(), bt.mean_wnic().watts());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 7, 1234, 99999));

// ---- Graceful degradation on bad channels --------------------------------------

TEST(BadChannelTest, PsmDeliversMostTrafficOverLossyLink) {
    sim::Simulator sim;
    sim::Random root(55);
    mac::Bss bss(sim);
    mac::AccessPointConfig ap_cfg;
    ap_cfg.mode = mac::ApMode::psm;
    mac::AccessPoint ap(sim, bss, ap_cfg, mac::DcfConfig{}, root.fork(1));
    mac::StationConfig st_cfg;
    st_cfg.mode = mac::StationMode::psm;
    mac::WlanStation st(sim, bss, 1, st_cfg, mac::DcfConfig{}, phy::WlanNicConfig{},
                        root.fork(2));
    channel::GilbertElliottConfig lossy;
    lossy.mean_good = 100_ms;
    lossy.mean_bad = 100_ms;
    lossy.ber_good = 1e-6;
    lossy.ber_bad = 2e-4;  // most 1500 B frames die in the bad state
    bss.set_link(1, lossy, root.fork(3));

    int sent = 0, delivered = 0;
    traffic::PoissonSource src(sim, [&](DataSize s) {
        ++sent;
        ap.send(1, s, [&](bool ok) { delivered += ok; });
    }, DataSize::from_bytes(1400), Rate::from_kbps(64), root.fork(4));

    ap.start();
    st.start(ap.config().beacon_interval, ap.config().beacon_interval);
    src.start();
    sim.run_until(Time::from_seconds(60));

    ASSERT_GT(sent, 200);
    // MAC retries recover most frames; a residue is dropped at the retry
    // limit (retries within one 100 ms bad burst all fail together) —
    // never a stall or a crash.
    EXPECT_GT(static_cast<double>(delivered) / sent, 0.78);
    // The station still dozes most of the time despite the retry traffic.
    EXPECT_LT(st.average_power().watts(), 0.35);
}

TEST(BadChannelTest, HotspotRebuffersLostChunksAndHoldsQos) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = Time::from_seconds(90);
    // Very bursty, error-prone links on both interfaces.
    config.wlan_link = {300_ms, 150_ms, 1e-6, 2e-4};
    config.bt_link = {300_ms, 150_ms, 1e-6, 2e-4};
    const auto result = backend.run(core::ScenarioSpec::hotspot().with_stream(config));
    // Lost chunks are re-bought by the server (live) / re-sent (stored);
    // the deep client buffer rides out the bad bursts.
    EXPECT_GT(result.min_qos(), 0.99);
    // Retries cost energy: still far below always-on.
    EXPECT_LT(result.mean_wnic().watts(), 0.20);
}

TEST(BadChannelTest, HotspotSurvivesBothLinksDegraded) {
    // Both interfaces scripted to poor quality: the selector falls back to
    // the best available channel, the run completes, QoS degrades but the
    // system neither crashes nor wedges.
    core::StreamConfig config;
    config.clients = 1;
    config.duration = Time::from_seconds(60);
    core::HotspotConfig options;
    channel::ScriptedQuality bad;
    bad.add_point(10_s, 1.0);
    bad.add_point(15_s, 0.35);
    options.bt_quality_script = bad;
    config.wlan_link = {100_ms, 400_ms, 1e-5, 1e-3};  // mostly bad WLAN
    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));
    EXPECT_GT(result.clients.front().received.bytes(),
              DataSize::from_kilobytes(200).bytes());
}

TEST(BadChannelTest, CamSurvivesNearDeadLink) {
    core::StreamConfig config;
    config.clients = 1;
    config.duration = Time::from_seconds(30);
    config.wlan_link = {50_ms, 500_ms, 1e-4, 2e-3};  // awful
    const auto result = backend.run(core::ScenarioSpec::cam().with_stream(config));
    // Retries exhaust on most frames; the run completes and power stays at
    // the always-on level (retries don't change the NIC duty much).
    EXPECT_GT(result.mean_wnic().watts(), 0.80);
    EXPECT_LT(result.min_qos(), 1.0);  // the stream does suffer
}

// ---- Fault recovery --------------------------------------------------------------

TEST(RecoveryTest, CrashMidBurstReclaimsReservationAndRejoins) {
    // Client 1 dies at 30 s (mid-stream, bursts in flight) and revives at
    // 45 s.  The liveness sweep must reclaim its reservation while it is
    // down, and the rejoin agent must get it re-registered after revival.
    core::StreamConfig config;
    config.clients = 3;
    config.duration = Time::from_seconds(120);
    config.fault_plan.client_crash(30_s, 15_s, 1);
    core::HotspotConfig options;
    options.resilience =
        core::ResilienceConfig{}.with_liveness_timeout(5_s).with_burst_repair(true);
    options.rejoin_enabled = true;
    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));

    EXPECT_GE(result.recovery.liveness_reclaims, 1u);
    EXPECT_GE(result.recovery.rejoins, 1u);
    ASSERT_FALSE(result.recovery.recover_times_s.empty());
    // The outage clock starts at the crash; rejoin can't beat the revival.
    EXPECT_GE(result.recovery.recover_times_s.front(), 15.0);
    EXPECT_LT(result.recovery.recover_times_s.front(), 40.0);
    // The survivors never notice.
    EXPECT_DOUBLE_EQ(result.clients[1].qos, 1.0);
    EXPECT_DOUBLE_EQ(result.clients[2].qos, 1.0);
    // The crashed client resumes streaming after the rejoin.
    EXPECT_GT(result.clients[0].received.bytes(),
              DataSize::from_kilobytes(800).bytes());
}

TEST(RecoveryTest, RejoinBackoffJitteredButSeedDeterministic) {
    // Drive a RejoinAgent against a server whose admission always refuses
    // (utilization cap ~0): every attempt fails, so attempt_times exposes
    // the full backoff ladder.
    const auto attempt_times = [](std::uint64_t seed) {
        sim::Simulator sim;
        sim::Random root(321);
        bt::Piconet piconet(sim, bt::PiconetConfig{}, root.fork(1));
        core::ServerConfig cfg;
        cfg.utilization_cap = 1e-9;  // nothing is admissible
        core::HotspotServer server(sim, cfg, core::make_scheduler("edf"));
        core::QosContract contract;
        contract.stream_rate = phy::calibration::kMp3Rate;
        core::HotspotClient client(sim, 1, contract);
        bt::BtSlave slave(sim, phy::BtNicConfig{}, phy::BtNic::State::active);
        const auto sid = piconet.join(slave);
        client.add_channel(std::make_unique<core::BtBurstChannel>(piconet, sid, slave));

        core::RejoinPolicy policy;
        policy.max_attempts = 6;
        core::RejoinAgent agent(sim, server, client, policy, sim::Random(seed));
        agent.on_lost();
        sim.run();
        EXPECT_EQ(agent.attempts(), 6u);
        EXPECT_EQ(agent.rejoins(), 0u);
        EXPECT_TRUE(agent.in_outage());  // gave up, still out
        return agent.attempt_times();
    };

    const auto a = attempt_times(910);
    const auto b = attempt_times(910);
    const auto c = attempt_times(911);
    EXPECT_EQ(a, b);  // bit-identical per seed
    EXPECT_NE(a, c);  // ...but genuinely random across seeds

    // Each gap is the exponential base stretched by jitter in [0, 50%).
    core::RejoinPolicy policy;
    bool any_jittered = false;
    for (std::size_t i = 1; i < a.size(); ++i) {
        const double gap = (a[i] - a[i - 1]).to_seconds();
        const double base =
            std::min(policy.initial_backoff.to_seconds() *
                         std::pow(policy.multiplier, static_cast<double>(i)),
                     policy.max_backoff.to_seconds());
        EXPECT_GE(gap, base * 0.999) << "attempt " << i;
        EXPECT_LE(gap, base * (1.0 + policy.jitter) * 1.001) << "attempt " << i;
        if (gap > base * 1.01) any_jittered = true;
    }
    EXPECT_TRUE(any_jittered);
}

TEST(RecoveryTest, ScheduleRepairNeverDoubleBooksWakeWindows) {
    // Aggressive schedule-message loss with the repair watchdog on.  Every
    // repair must hand the interface to exactly one successor: a double
    // booking would wake two clients into the same window and trip the
    // NIC-occupancy contracts (ContractViolation aborts the run).
    core::StreamConfig config;
    config.clients = 3;
    config.duration = Time::from_seconds(120);
    config.fault_plan.schedule_drop(5_s, 100_s, 0.5);
    core::HotspotConfig options;
    options.resilience = core::ResilienceConfig{}.with_burst_repair(true);
    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));

    EXPECT_GE(result.recovery.schedule_drops, 3u);
    EXPECT_GE(result.recovery.burst_repairs, 3u);
    // A drop wedges the interface until its watchdog fires, so repairs
    // can't outnumber drops (each repair corresponds to one lost message).
    EXPECT_LE(result.recovery.burst_repairs, result.recovery.schedule_drops);
    // Despite losing half the schedule messages for 100 s, every client
    // keeps streaming — the planner replans the repaired bursts.
    for (const auto& c : result.clients) {
        EXPECT_GT(c.received.bytes(), DataSize::from_kilobytes(900).bytes());
    }
}

// ---- Long-run stability ----------------------------------------------------------

TEST(LongRunTest, HotspotStableOverTwentyMinutes) {
    core::StreamConfig config;
    config.clients = 3;
    config.duration = Time::from_seconds(1200);
    const auto result = backend.run(core::ScenarioSpec::hotspot().with_stream(config));
    EXPECT_DOUBLE_EQ(result.min_qos(), 1.0);
    for (const auto& c : result.clients) {
        EXPECT_NEAR(c.wnic_average.watts(), 0.035, 0.004);
        // 1200 s * 16 KB/s ~ 18.75 MB each.
        EXPECT_GT(c.received.bytes(), DataSize::from_kilobytes(18000).bytes());
    }
}

}  // namespace
}  // namespace wlanps
