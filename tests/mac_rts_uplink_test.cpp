/// Tests for RTS/CTS protection and station uplink traffic.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/access_point.hpp"
#include "mac/bss.hpp"
#include "mac/station.hpp"
#include "sim/simulator.hpp"

namespace wlanps::mac {
namespace {

using namespace time_literals;

struct UplinkWorld {
    sim::Simulator sim;
    sim::Random root{31};
    Bss bss{sim};
    std::unique_ptr<AccessPoint> ap;
    std::vector<std::unique_ptr<WlanStation>> stations;

    UplinkWorld(int n_stations, DcfConfig dcf, StationMode mode = StationMode::cam) {
        AccessPointConfig cfg;
        cfg.mode = mode == StationMode::cam ? ApMode::cam : ApMode::psm;
        ap = std::make_unique<AccessPoint>(sim, bss, cfg, dcf, root.fork(1));
        for (int i = 0; i < n_stations; ++i) {
            StationConfig st;
            st.mode = mode;
            stations.push_back(std::make_unique<WlanStation>(
                sim, bss, static_cast<StationId>(i + 1), st, dcf, phy::WlanNicConfig{},
                root.fork(static_cast<std::uint64_t>(10 + i))));
        }
    }
};

TEST(UplinkTest, CamStationSendsToAp) {
    UplinkWorld w(1, DcfConfig{});
    bool delivered = false;
    w.stations[0]->send_up(DataSize::from_bytes(1200), [&](bool ok) { delivered = ok; });
    w.sim.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(w.ap->uplink_frames(), 1u);
    EXPECT_EQ(w.ap->uplink_bytes(), DataSize::from_bytes(1200));
    EXPECT_EQ(w.stations[0]->bytes_sent(), DataSize::from_bytes(1200));
}

TEST(UplinkTest, PsmStationWakesSendsAndDozes) {
    UplinkWorld w(1, DcfConfig{}, StationMode::psm);
    w.ap->start();
    w.stations[0]->start(w.ap->config().beacon_interval, w.ap->config().beacon_interval);
    w.sim.run_until(50_ms);  // dozing
    ASSERT_FALSE(w.stations[0]->wlan_nic().awake());
    bool delivered = false;
    w.stations[0]->send_up(DataSize::from_bytes(900), [&](bool ok) { delivered = ok; });
    w.sim.run_until(90_ms);
    EXPECT_TRUE(delivered);
    EXPECT_EQ(w.ap->uplink_frames(), 1u);
    // Back in doze shortly after.
    EXPECT_EQ(w.stations[0]->wlan_nic().state(), phy::WlanNic::State::doze);
}

TEST(UplinkTest, ContentionAmongUplinkersCausesCollisions) {
    UplinkWorld w(4, DcfConfig{});
    // Everyone saturates: re-send on completion for a while.
    for (auto& st : w.stations) {
        auto* station = st.get();
        auto again = std::make_shared<std::function<void(bool)>>();
        *again = [station, &w, again](bool) {
            if (w.sim.now() < Time::from_seconds(2)) {
                station->send_up(DataSize::from_bytes(1400), *again);
            }
        };
        station->send_up(DataSize::from_bytes(1400), *again);
    }
    w.sim.run_until(Time::from_seconds(2));
    EXPECT_GT(w.bss.medium().collisions(), 0u);
    EXPECT_GT(w.ap->uplink_frames(), 100u);
}

TEST(RtsCtsTest, ProtectedFrameStillDelivers) {
    DcfConfig dcf;
    dcf.use_rts_cts = true;
    dcf.rts_threshold = DataSize::from_bytes(500);
    UplinkWorld w(1, dcf);
    bool delivered = false;
    w.stations[0]->send_up(DataSize::from_bytes(1400), [&](bool ok) { delivered = ok; });
    w.sim.run();
    EXPECT_TRUE(delivered);
    // RTS + CTS + DATA + ACK on the medium.
    EXPECT_EQ(w.bss.medium().transmissions(), 4u);
    EXPECT_EQ(w.stations[0]->dcf().rts_exchanges(), 1u);
}

TEST(RtsCtsTest, SmallFramesSkipRts) {
    DcfConfig dcf;
    dcf.use_rts_cts = true;
    dcf.rts_threshold = DataSize::from_bytes(500);
    UplinkWorld w(1, dcf);
    w.stations[0]->send_up(DataSize::from_bytes(200));
    w.sim.run();
    // DATA + ACK only.
    EXPECT_EQ(w.bss.medium().transmissions(), 2u);
    EXPECT_EQ(w.stations[0]->dcf().rts_exchanges(), 0u);
}

TEST(RtsCtsTest, DozingReceiverCostsOnlyRts) {
    DcfConfig dcf;
    dcf.use_rts_cts = true;
    dcf.rts_threshold = DataSize::zero();
    dcf.retry_limit = 1;
    UplinkWorld w(1, dcf);
    w.stations[0]->wlan_nic().doze();
    w.sim.run();
    bool delivered = true;
    w.ap->send(1, DataSize::from_bytes(1400), [&](bool ok) { delivered = ok; });
    w.sim.run();
    EXPECT_FALSE(delivered);
    // Only the RTS went on air (no CTS -> no data frame wasted).
    EXPECT_EQ(w.bss.medium().transmissions(), 1u);
}

TEST(RtsCtsTest, ReducesCollisionAirtimeUnderContention) {
    // Saturated uplink from 4 stations with large frames: with RTS/CTS the
    // collided airtime (short RTSes) is far below the plain case (full
    // data frames).
    auto run = [](bool rts) {
        DcfConfig dcf;
        dcf.use_rts_cts = rts;
        dcf.rts_threshold = DataSize::from_bytes(500);
        UplinkWorld w(4, dcf);
        for (auto& st : w.stations) {
            auto* station = st.get();
            auto again = std::make_shared<std::function<void(bool)>>();
            *again = [station, &w, again](bool) {
                if (w.sim.now() < Time::from_seconds(3)) {
                    station->send_up(DataSize::from_bytes(1400), *again);
                }
            };
            station->send_up(DataSize::from_bytes(1400), *again);
        }
        w.sim.run_until(Time::from_seconds(3));
        struct Out {
            std::uint64_t collisions;
            DataSize goodput;
        } out{w.bss.medium().collisions(), w.ap->uplink_bytes()};
        return out;
    };
    const auto plain = run(false);
    const auto protectd = run(true);
    // Both configurations move useful data and experience collisions.
    EXPECT_GT(plain.collisions, 0u);
    EXPECT_GT(protectd.collisions, 0u);
    // The trade-off in a single collision domain (no hidden terminals):
    // RTS/CTS pays a per-frame control overhead (basic-rate RTS + CTS +
    // two PLCP preambles ~ 35% here) in exchange for collisions costing a
    // 20-byte RTS instead of a 1400-byte data frame.  Goodput is lower,
    // but bounded — the protection isn't catastrophic.
    EXPECT_LT(protectd.goodput.bytes(), plain.goodput.bytes());
    EXPECT_GT(protectd.goodput.bytes(), plain.goodput.bytes() * 6 / 10);
}

}  // namespace
}  // namespace wlanps::mac
