/// Parameterized property sweeps: monotonicity and cross-model agreement
/// over parameter ranges (not single points).

#include <gtest/gtest.h>

#include <memory>

#include "bt/piconet.hpp"
#include "channel/gilbert_elliott.hpp"
#include "core/backend.hpp"
#include "core/burst_channel.hpp"
#include "core/scenario_spec.hpp"
#include "core/selector.hpp"
#include "power/duty_cycle.hpp"
#include "sim/simulator.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

const core::SimBackend backend;

// ---- Gilbert-Elliott stationarity across configurations --------------------------

class GeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GeSweep, ObservedFractionMatchesStationary) {
    const auto [good_ms, bad_ms] = GetParam();
    channel::GilbertElliottConfig cfg;
    cfg.mean_good = Time::from_ms(good_ms);
    cfg.mean_bad = Time::from_ms(bad_ms);
    channel::GilbertElliott ch(cfg, sim::Random(static_cast<std::uint64_t>(good_ms)));
    (void)ch.state_at(Time::from_seconds(3000));
    EXPECT_NEAR(ch.observed_good_fraction(), cfg.stationary_good(), 0.04)
        << good_ms << "/" << bad_ms;
}

INSTANTIATE_TEST_SUITE_P(Sojourns, GeSweep,
                         ::testing::Values(std::pair{100, 100}, std::pair{500, 50},
                                           std::pair{50, 500}, std::pair{1000, 10},
                                           std::pair{20, 20}));

// ---- PSM listen interval monotonicity ----------------------------------------------

class ListenIntervalSweep : public ::testing::TestWithParam<int> {};

TEST_P(ListenIntervalSweep, PowerFallsLatencyRises) {
    core::StreamConfig config;
    config.clients = 1;
    config.duration = Time::from_seconds(45);

    core::PsmConfig base;
    base.listen_interval = 1;
    core::PsmConfig longer;
    longer.listen_interval = GetParam();

    const auto r1 =
        backend.run(core::ScenarioSpec::psm().with_stream(config).with_psm(base));
    const auto rn =
        backend.run(core::ScenarioSpec::psm().with_stream(config).with_psm(longer));
    EXPECT_LE(rn.mean_wnic().watts(), r1.mean_wnic().watts() * 1.02)
        << "listen interval " << GetParam();
    // QoS still holds (MP3 tolerates the added beacon-multiple latency).
    EXPECT_DOUBLE_EQ(rn.min_qos(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Intervals, ListenIntervalSweep, ::testing::Values(2, 3, 5, 10));

// ---- Burst channel goodput grows with MPDU size --------------------------------------

class MpduSweep : public ::testing::TestWithParam<int> {};

TEST_P(MpduSweep, BiggerMpdusMeanFewerOverheadsAndFasterBursts) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    core::WlanBurstChannel::Config small_cfg;
    small_cfg.mpdu = DataSize::from_bytes(GetParam());
    core::WlanBurstChannel::Config big_cfg;
    big_cfg.mpdu = DataSize::from_bytes(GetParam() * 2);
    core::WlanBurstChannel small(sim, nic, nullptr, small_cfg);
    core::WlanBurstChannel big(sim, nic, nullptr, big_cfg);
    EXPECT_GT(big.goodput().bps(), small.goodput().bps());
}

INSTANTIATE_TEST_SUITE_P(Mpdus, MpduSweep, ::testing::Values(250, 500, 750, 1000));

// ---- Selector prediction agrees with the analytic duty-cycle model ----------------------

TEST(SelectorCrossCheck, PredictedPowerMatchesDutyCycleModel) {
    sim::Simulator sim;
    bt::Piconet piconet(sim, bt::PiconetConfig{}, sim::Random(1));
    bt::BtSlave slave(sim, phy::BtNicConfig{}, phy::BtNic::State::active);
    const auto sid = piconet.join(slave);
    core::BtBurstChannel channel(piconet, sid, slave);

    const Rate rate = phy::calibration::kMp3Rate;
    const DataSize burst = DataSize::from_kilobytes(48);
    const auto predicted = core::InterfaceSelector::predicted_power(channel, rate, burst);

    // Same quantity via the analytic DutyCycleModel.
    power::DutyCycleModel duty;
    const Time period = rate.transmit_time(burst);
    const Time active = slave.nic().wake_latency() + channel.goodput().transmit_time(burst);
    duty.add_phase(slave.nic().active_power(), active);
    duty.add_phase(slave.nic().sleep_power(), period - active);
    EXPECT_NEAR(predicted.watts(), duty.average_power().watts(), 1e-9);
}

// ---- Simulated burst cadence matches the predicted duty cycle ---------------------------

class BurstCadenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(BurstCadenceSweep, SimulatedPowerNearPrediction) {
    const double kb = GetParam();
    core::StreamConfig config;
    config.clients = 1;
    config.duration = Time::from_seconds(90);
    // Perfect links isolate the duty-cycle arithmetic.
    config.bt_link.ber_good = config.bt_link.ber_bad = 0.0;
    config.wlan_link.ber_good = config.wlan_link.ber_bad = 0.0;
    core::HotspotConfig options;
    options.target_burst = DataSize::from_kilobytes(kb);
    options.target_burst_period = Time::from_ms(1);  // burst size governs
    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));

    // Analytic prediction for the BT-served stream.
    const Rate stream = phy::calibration::kMp3Rate;
    const Rate goodput = phy::calibration::kBtAclPeak;
    const double duty = stream / goodput;
    const double expected =
        duty * phy::calibration::kBtRx.watts() * (5.0 / 6.0) +
        duty * phy::calibration::kBtTx.watts() * (1.0 / 6.0) +
        (1.0 - duty) * phy::calibration::kBtPark.watts();
    // Within 20%: transitions, polls, and the unpark energy are extra.
    EXPECT_NEAR(result.mean_wnic().watts(), expected, expected * 0.20) << kb << " KB";
}

INSTANTIATE_TEST_SUITE_P(Bursts, BurstCadenceSweep, ::testing::Values(24.0, 48.0, 96.0));

// ---- Beacon interval sweep ----------------------------------------------------------------

class BeaconSweep : public ::testing::TestWithParam<int> {};

TEST_P(BeaconSweep, PsmWorksAcrossBeaconIntervals) {
    core::StreamConfig config;
    config.clients = 1;
    config.duration = Time::from_seconds(45);
    core::PsmConfig options;
    options.beacon_interval = Time::from_ms(GetParam());
    const auto result =
        backend.run(core::ScenarioSpec::psm().with_stream(config).with_psm(options));
    EXPECT_DOUBLE_EQ(result.min_qos(), 1.0) << GetParam() << " ms beacons";
    EXPECT_LT(result.mean_wnic().watts(), 0.45);
}

INSTANTIATE_TEST_SUITE_P(Beacons, BeaconSweep, ::testing::Values(50, 102, 200, 400));

}  // namespace
}  // namespace wlanps
