/// Federation subsystem tests: spec validation edges must fail with
/// actionable messages, the client slab must stay inside its byte budget,
/// admitted bursts must be conserved exactly (admitted = completed +
/// shed), the population fingerprint must be bit-identical across
/// worker-thread counts and sensitive to the seed, roaming and admission
/// policies must leave their marks in the population summary, slab-level
/// fault injection must compose with all of it, and the WPSM metrics
/// stream must round-trip through the in-process decoder.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include <memory>

#include "core/backend.hpp"
#include "core/scenario_spec.hpp"
#include "core/scenarios.hpp"
#include "exp/runner.hpp"
#include "fed/client_slab.hpp"
#include "fed/federation.hpp"
#include "obs/metrics_stream.hpp"
#include "sim/assert.hpp"

namespace wlanps::fed {
namespace {

core::FederationConfig small_config() {
    core::FederationConfig cfg;
    cfg.with_aps(8).with_shards(4).with_threads(0);
    cfg.capacity_per_ap = 64;
    cfg.mean_session = Time::from_seconds(40);
    return cfg;
}

core::ScenarioSpec small_spec(const core::FederationConfig& cfg, int clients = 96,
                              std::uint64_t seed = 7,
                              Time duration = Time::from_seconds(60)) {
    core::StreamConfig stream;
    stream.clients = clients;
    stream.duration = duration;
    stream.seed = seed;
    return core::ScenarioSpec::federation().with_federation(cfg).with_stream(stream);
}

// --- validation edges ----------------------------------------------------

TEST(FederationSpecTest, ZeroShardsIsRejectedWithPointer) {
    auto cfg = small_config();
    cfg.shards = 0;
    try {
        small_spec(cfg).validate();
        FAIL() << "shards=0 must throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("sharded kernel"), std::string::npos)
            << e.what();
    }
}

TEST(FederationSpecTest, ThreadsBeyondShardsAreRejectedWithFix) {
    auto cfg = small_config();
    cfg.with_shards(4).with_threads(8);
    try {
        small_spec(cfg).validate();
        FAIL() << "threads > shards must throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("lower threads or raise shards"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FederationSpecTest, MoreShardsThanApsAreRejected) {
    auto cfg = small_config();
    cfg.with_aps(2).with_shards(4);
    EXPECT_THROW(small_spec(cfg).validate(), ContractViolation);
}

TEST(FederationSpecTest, SkewWindowNarrowerThanLookaheadIsRejected) {
    auto cfg = small_config();
    cfg.lax = true;
    cfg.lookahead = Time::from_ms(20);
    cfg.skew_window = Time::from_ms(10);
    EXPECT_THROW(small_spec(cfg).validate(), ContractViolation);
}

TEST(FederationSpecTest, SkewWindowWithoutLaxIsRejected) {
    auto cfg = small_config();
    cfg.skew_window = Time::from_ms(50);  // lax left false
    EXPECT_THROW(small_spec(cfg).validate(), ContractViolation);
}

TEST(FederationSpecTest, RoamingNeedsASecondAp) {
    auto cfg = small_config();
    cfg.with_aps(1).with_shards(1).with_roaming(Time::from_seconds(30));
    try {
        small_spec(cfg).validate();
        FAIL() << "roaming with one AP must throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("add APs or disable roaming"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FederationSpecTest, MacLevelFaultKindsAreRejectedPerKind) {
    core::StreamConfig stream;
    stream.clients = 8;
    stream.duration = Time::from_seconds(30);
    stream.fault_plan.beacon_loss(Time::from_seconds(5), Time::from_seconds(5));
    const auto spec = core::ScenarioSpec::federation()
                          .with_federation(small_config())
                          .with_stream(stream);
    EXPECT_THROW(spec.validate(), ContractViolation);
}

TEST(ShardingSpecTest, HotspotThreadsBeyondShardsAreRejected) {
    core::HotspotConfig options;
    options.sharding = core::ShardingConfig{}.with_shards(2).with_threads(4);
    EXPECT_THROW(options.sharding.validate(), ContractViolation);
}

TEST(ShardingSpecTest, HotspotSkewWindowFloorIsLookahead) {
    core::ShardingConfig sharding;
    sharding.with_shards(2).with_lax(true).with_lookahead(Time::from_ms(20));
    sharding.skew_window = Time::from_ms(5);
    EXPECT_THROW(sharding.validate(), ContractViolation);
}

// --- slab budget ---------------------------------------------------------

TEST(ClientSlabTest, PerClientFootprintStaysInBudget) {
    // The header static_asserts this at compile time; keep the number in a
    // test so a budget change is a visible, reviewed event.
    EXPECT_LE(ClientSlab::kBytesPerClient, std::size_t{96});
    EXPECT_EQ(ClientSlab::kBytesPerClient, std::size_t{72});
}

// --- conservation + determinism ------------------------------------------

TEST(FederationRunTest, AdmittedBurstsAreConservedExactly) {
    auto cfg = small_config();
    cfg.base_arrival_hz = 0.5;
    const auto result = run_federation(small_spec(cfg));
    const PopulationSummary& p = result.population;
    EXPECT_TRUE(p.conserved());
    EXPECT_EQ(p.bursts_admitted, p.bursts_completed + p.bursts_shed);
    EXPECT_GT(p.bursts_completed, 0u);
    EXPECT_GT(p.energy_j, 0.0);
    EXPECT_GT(p.peak_association, 0u);
    // Stride sampling: the exported ClientMetrics are a subset of the
    // population, never more.
    EXPECT_LE(result.scenario.clients.size(), static_cast<std::size_t>(p.population));
    EXPECT_FALSE(result.scenario.clients.empty());
}

TEST(FederationRunTest, FingerprintBitIdenticalAcrossThreadCounts) {
    auto cfg = small_config();
    cfg.base_arrival_hz = 0.5;
    cfg.with_roaming(Time::from_seconds(15));
    const auto inline_run = run_federation(small_spec(cfg));
    for (int threads : {1, 2, 4}) {
        auto threaded = cfg;
        threaded.with_threads(threads);
        const auto parallel = run_federation(small_spec(threaded));
        EXPECT_EQ(inline_run.population.fingerprint, parallel.population.fingerprint)
            << threads << " threads";
        EXPECT_EQ(inline_run.population.roams, parallel.population.roams);
        EXPECT_EQ(inline_run.population.bursts_completed,
                  parallel.population.bursts_completed);
        EXPECT_EQ(inline_run.population.energy_j, parallel.population.energy_j);
    }
}

TEST(FederationRunTest, SameSeedReproducesSameFingerprint) {
    const auto a = run_federation(small_spec(small_config()));
    const auto b = run_federation(small_spec(small_config()));
    EXPECT_EQ(a.population.fingerprint, b.population.fingerprint);
}

TEST(FederationRunTest, FingerprintIsSeedSensitive) {
    const auto a = run_federation(small_spec(small_config(), 96, 7));
    const auto b = run_federation(small_spec(small_config(), 96, 8));
    EXPECT_NE(a.population.fingerprint, b.population.fingerprint);
}

// --- roaming + admission -------------------------------------------------

TEST(FederationRunTest, RoamingMovesClientsBetweenCells) {
    auto cfg = small_config();
    cfg.with_roaming(Time::from_seconds(10));
    const auto result = run_federation(small_spec(cfg));
    EXPECT_GT(result.population.roams, 0u);
    EXPECT_TRUE(result.population.conserved());
}

TEST(FederationRunTest, AdmissionPoliciesLeaveTheirMarks) {
    auto cfg = small_config();
    cfg.capacity_per_ap = 4;  // 96 initial clients over 8 APs: oversubscribed

    cfg.admission = core::AdmissionPolicy::reject;
    const auto rejected = run_federation(small_spec(cfg));
    EXPECT_GT(rejected.population.rejected, 0u);

    cfg.admission = core::AdmissionPolicy::defer;
    const auto deferred = run_federation(small_spec(cfg));
    EXPECT_GT(deferred.population.deferred, 0u);

    cfg.admission = core::AdmissionPolicy::degrade;
    const auto degraded = run_federation(small_spec(cfg));
    EXPECT_GT(degraded.population.degraded, 0u);

    for (const auto* r : {&rejected, &deferred, &degraded}) {
        EXPECT_TRUE(r->population.conserved());
        EXPECT_LE(r->population.peak_association,
                  static_cast<std::uint64_t>(cfg.capacity_per_ap) * 8u);
    }
}

// --- slab-level faults ---------------------------------------------------

TEST(FederationRunTest, SlabFaultsInjectAndConserve) {
    core::StreamConfig stream;
    stream.clients = 96;
    stream.duration = Time::from_seconds(60);
    stream.seed = 7;
    stream.fault_plan
        .nic_lockup(Time::from_seconds(10), Time::from_seconds(5))
        .client_crash(Time::from_seconds(15), Time::from_seconds(10), 3)
        .silent_leave(Time::from_seconds(20), 5);
    const auto spec = core::ScenarioSpec::federation()
                          .with_federation(small_config())
                          .with_stream(stream);
    const auto result = run_federation(spec);
    EXPECT_GT(result.population.faults_injected, 0u);
    EXPECT_TRUE(result.population.conserved());
    EXPECT_EQ(result.scenario.faults_injected, result.population.faults_injected);
}

TEST(FederationRunTest, FaultedRunStaysThreadInvariant) {
    core::StreamConfig stream;
    stream.clients = 64;
    stream.duration = Time::from_seconds(45);
    stream.seed = 11;
    stream.fault_plan.nic_lockup(Time::from_seconds(8), Time::from_seconds(4))
        .client_crash(Time::from_seconds(12), Time::from_seconds(6), 2);
    auto cfg = small_config();
    const auto inline_run = run_federation(
        core::ScenarioSpec::federation().with_federation(cfg).with_stream(stream));
    cfg.with_threads(2);
    const auto parallel = run_federation(
        core::ScenarioSpec::federation().with_federation(cfg).with_stream(stream));
    EXPECT_EQ(inline_run.population.fingerprint, parallel.population.fingerprint);
    EXPECT_EQ(inline_run.population.faults_injected, parallel.population.faults_injected);
}

// --- SimBackend dispatch -------------------------------------------------

TEST(FederationRunTest, SimBackendRunsFederationSpecs) {
    const auto result = core::SimBackend{}.run(small_spec(small_config()));
    EXPECT_FALSE(result.clients.empty());
    for (const auto& c : result.clients) {
        EXPECT_GE(c.wnic_energy.joules(), 0.0);
    }
}

// --- federation as a sweep axis ------------------------------------------

TEST(FederationRunTest, SweepsDeterministicallyThroughExperimentRunner) {
    // Admission policies as grid points over a seed range: the runner's
    // seed-ordered reduction must be bit-identical at any worker-thread
    // count, federation runs included.
    namespace sc = core::scenarios;
    auto reject_cfg = small_config();
    reject_cfg.capacity_per_ap = 4;
    auto defer_cfg = reject_cfg;
    defer_cfg.admission = core::AdmissionPolicy::defer;
    const auto spec =
        exp::ExperimentSpec{}
            .with_run(sc::spec_grid_run(std::make_shared<core::SimBackend>(),
                                        {small_spec(reject_cfg, 64, 0,
                                                    Time::from_seconds(30)),
                                         small_spec(defer_cfg, 64, 0,
                                                    Time::from_seconds(30))}))
            .with_points({"reject", "defer"})
            .with_seed_range(42, 3);
    const auto serial = exp::ExperimentRunner(1).run(spec);
    const auto parallel = exp::ExperimentRunner(4).run(spec);
    ASSERT_EQ(serial.runs.size(), 6u);
    ASSERT_EQ(parallel.runs.size(), serial.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        ASSERT_EQ(serial.runs[i].metrics.size(), parallel.runs[i].metrics.size());
        for (std::size_t m = 0; m < serial.runs[i].metrics.size(); ++m) {
            EXPECT_EQ(serial.runs[i].metrics[m].second, parallel.runs[i].metrics[m].second)
                << "run " << i << " metric " << serial.runs[i].metrics[m].first;
        }
    }
}

// --- WPSM metrics stream -------------------------------------------------

TEST(FederationRunTest, MetricsStreamRoundTrips) {
    const std::string path = testing::TempDir() + "fed_stream_test.wpsm";
    auto cfg = small_config();
    cfg.base_arrival_hz = 0.5;
    cfg.sample_stride = 16;
    cfg.with_stream_path(path);
    const auto result = run_federation(small_spec(cfg));

    const obs::MetricsStreamContents contents = obs::read_metrics_stream(path);
    ASSERT_FALSE(contents.series_names.empty());
    EXPECT_NE(std::find(contents.series_names.begin(), contents.series_names.end(),
                        "fed.associated"),
              contents.series_names.end());
    EXPECT_FALSE(contents.samples.empty());
    EXPECT_FALSE(contents.clients.empty());

    bool found_population = false;
    for (const auto& [key, value] : contents.summaries) {
        if (key == "population") {
            found_population = true;
            EXPECT_EQ(static_cast<std::uint64_t>(value), result.population.population);
        }
    }
    EXPECT_TRUE(found_population);
}

}  // namespace
}  // namespace wlanps::fed
