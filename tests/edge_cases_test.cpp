/// Targeted edge-case and regression tests across modules.

#include <gtest/gtest.h>

#include <memory>

#include "core/scheduler.hpp"
#include "mac/access_point.hpp"
#include "mac/ecmac.hpp"
#include "mac/station.hpp"
#include "net/probing.hpp"
#include "power/state_machine.hpp"
#include "sim/simulator.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

// ---- sim kernel --------------------------------------------------------------

TEST(EdgeSim, CancelDuringSameTimestampBatch) {
    sim::Simulator sim;
    int fired = 0;
    sim::EventHandle second;
    sim.schedule_at(1_ms, [&] {
        ++fired;
        second.cancel();  // cancel a simultaneous, not-yet-run event
    });
    second = sim.schedule_at(1_ms, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
}

TEST(EdgeSim, PeriodicRestartReplacesSchedule) {
    sim::Simulator sim;
    std::vector<Time> fires;
    sim::PeriodicEvent periodic(sim, 10_ms, [&] { fires.push_back(sim.now()); });
    periodic.start();
    sim.run_until(15_ms);          // fired at 10
    periodic.start_at(100_ms);     // re-anchor
    sim.run_until(125_ms);         // fires at 100, 110, 120
    ASSERT_EQ(fires.size(), 4u);
    EXPECT_EQ(fires[1], 100_ms);
}

TEST(EdgeSim, ScheduleAtCurrentTimeRunsThisTurn) {
    sim::Simulator sim;
    bool inner = false;
    sim.schedule_at(5_ms, [&] {
        sim.schedule_at(sim.now(), [&] { inner = true; });
    });
    sim.run();
    EXPECT_TRUE(inner);
}

// ---- power -------------------------------------------------------------------

TEST(EdgePower, RequestDuringTransitionToSameTargetCoalesces) {
    sim::Simulator sim;
    power::PowerModel model;
    const auto off = model.add_state("off", power::Power::zero());
    const auto on = model.add_state("on", power::Power::from_watts(1.0));
    model.add_transition(off, on, 100_ms, power::Energy::from_joules(0.01));
    power::PowerStateMachine machine(sim, model, off);
    int completions = 0;
    machine.request(on, [&] { ++completions; });
    machine.request(on, [&] { ++completions; });  // queued to the same target
    sim.run();
    EXPECT_EQ(machine.state(), on);
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(machine.entries(on), 1u);  // entered once, not twice
}

TEST(EdgePower, AverageOfFreshMachineIsCurrentDraw) {
    sim::Simulator sim;
    power::PowerModel model;
    const auto on = model.add_state("on", power::Power::from_watts(0.7));
    power::PowerStateMachine machine(sim, model, on);
    EXPECT_NEAR(machine.average_power().watts(), 0.7, 1e-12);  // zero elapsed
}

// ---- mac ---------------------------------------------------------------------

TEST(EdgeMac, PsmStationSurvivesMissingBeacons) {
    // The AP never starts: the station wakes for expected beacons, times
    // out, and returns to doze — power stays near the doze level.
    sim::Simulator sim;
    sim::Random root(5);
    mac::Bss bss(sim);
    mac::AccessPointConfig ap_cfg;
    ap_cfg.mode = mac::ApMode::psm;
    mac::AccessPoint ap(sim, bss, ap_cfg, mac::DcfConfig{}, root.fork(1));
    mac::StationConfig st_cfg;
    st_cfg.mode = mac::StationMode::psm;
    mac::WlanStation st(sim, bss, 1, st_cfg, mac::DcfConfig{}, phy::WlanNicConfig{},
                        root.fork(2));
    st.start(ap.config().beacon_interval, ap.config().beacon_interval);  // no ap.start()
    sim.run_until(Time::from_seconds(10));
    EXPECT_EQ(st.beacons_heard(), 0u);
    EXPECT_LT(st.average_power().watts(), 0.30);  // wake+timeout duty only
    EXPECT_EQ(st.wlan_nic().state(), phy::WlanNic::State::doze);
}

TEST(EdgeMac, ApNullResponseToStalePoll) {
    // A PS-Poll for an already-drained buffer gets a zero-length null
    // frame so the station can doze.
    sim::Simulator sim;
    sim::Random root(6);
    mac::Bss bss(sim);
    mac::AccessPointConfig ap_cfg;
    ap_cfg.mode = mac::ApMode::psm;
    mac::AccessPoint ap(sim, bss, ap_cfg, mac::DcfConfig{}, root.fork(1));
    mac::StationConfig st_cfg;
    st_cfg.mode = mac::StationMode::cam;  // stays awake so we can poll manually
    mac::WlanStation st(sim, bss, 1, st_cfg, mac::DcfConfig{}, phy::WlanNicConfig{},
                        root.fork(2));
    mac::Frame poll;
    poll.kind = mac::FrameKind::ps_poll;
    poll.src = 1;
    poll.dst = mac::kApId;
    poll.payload = DataSize::from_bytes(20);
    st.dcf().enqueue(poll);
    sim.run();
    // The null response is not counted as received data.
    EXPECT_EQ(st.frames_received(), 0u);
    EXPECT_TRUE(st.bytes_received().is_zero());
}

TEST(EdgeMac, EcMacIdleSuperframesCarryOnlySchedules) {
    sim::Simulator sim;
    sim::Random root(7);
    mac::Bss bss(sim);
    mac::EcMacConfig cfg;
    mac::EcMacController controller(sim, bss, cfg, root.fork(1));
    mac::EcMacStation st(sim, bss, 1, cfg, phy::WlanNicConfig{});
    controller.start();
    st.start(controller.superframe_anchor());
    sim.run_until(Time::from_seconds(2));
    // ~20 superframes, one schedule broadcast each, zero data.
    EXPECT_EQ(controller.superframes(), 20u);
    EXPECT_EQ(bss.medium().transmissions(), 20u);
    EXPECT_EQ(st.frames_received(), 0u);
}

// ---- core scheduler -----------------------------------------------------------

TEST(EdgeScheduler, WfqNormalizedServiceAccounting) {
    core::WfqScheduler wfq;
    core::BurstRequest r;
    r.client = 3;
    r.size = DataSize::from_kilobytes(10);
    r.weight = 2.0;
    EXPECT_DOUBLE_EQ(wfq.normalized_service(3), 0.0);
    wfq.on_dispatch(r, 1_ms);
    EXPECT_DOUBLE_EQ(wfq.normalized_service(3),
                     static_cast<double>(r.size.bits()) / 2.0);
}

TEST(EdgeScheduler, SinglePendingAlwaysPicked) {
    for (const char* name : {"edf", "wfq", "round-robin", "fixed-priority", "fifo"}) {
        auto s = core::make_scheduler(name);
        std::vector<core::BurstRequest> pending(1);
        pending[0].client = 9;
        pending[0].weight = 1.0;
        EXPECT_EQ(s->pick(pending, Time::zero()), 0u) << name;
    }
}

// ---- net ----------------------------------------------------------------------

TEST(EdgeNet, ProbingSegmentAccounting) {
    net::ProbingConfig cfg;
    const net::ProbingTcpAgent agent(cfg);
    channel::GilbertElliottConfig clean;
    clean.ber_good = clean.ber_bad = 0.0;
    channel::GilbertElliott ch(clean, sim::Random(9));
    const DataSize payload = cfg.tcp.mss * 10.0;  // exactly 10 segments
    const auto r = agent.bulk_transfer(payload, ch);
    EXPECT_EQ(r.segments_sent, 10);
    EXPECT_GE(r.rounds, 4);  // slow start: 1+2+4+3
}

}  // namespace
}  // namespace wlanps
