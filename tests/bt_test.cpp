/// Tests for the Bluetooth piconet: ACL transfers, ARQ, sniff/park modes.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bt/piconet.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps::bt {
namespace {

using namespace time_literals;

struct BtWorld {
    sim::Simulator sim;
    sim::Random root{21};
    Piconet piconet{sim, PiconetConfig{}, sim::Random(22)};
    std::vector<std::unique_ptr<BtSlave>> slaves;
    std::vector<SlaveId> ids;

    explicit BtWorld(int n) {
        for (int i = 0; i < n; ++i) {
            slaves.push_back(std::make_unique<BtSlave>(sim, phy::BtNicConfig{},
                                                       phy::BtNic::State::active));
            ids.push_back(piconet.join(*slaves.back()));
        }
    }
};

TEST(PiconetTest, PeakGoodputIsDh5Rate) {
    BtWorld w(1);
    // 339 B / (6 * 625 us) = 723.2 kb/s.
    EXPECT_NEAR(w.piconet.peak_goodput().kbps(), 723.2, 0.1);
}

TEST(PiconetTest, TransferDeliversAllBytes) {
    BtWorld w(1);
    bool done = false;
    w.piconet.send(w.ids[0], DataSize::from_kilobytes(10), [&](bool ok) { done = ok; });
    w.sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(w.slaves[0]->bytes_received(), DataSize::from_kilobytes(10));
}

TEST(PiconetTest, TransferTimeMatchesGoodput) {
    BtWorld w(1);
    Time finished = Time::zero();
    const DataSize size = DataSize::from_kilobytes(48);
    w.piconet.send(w.ids[0], size, [&](bool) { finished = w.sim.now(); });
    w.sim.run();
    const double expected_s =
        static_cast<double>(size.bits()) / w.piconet.peak_goodput().bps();
    EXPECT_NEAR(finished.to_seconds(), expected_s, 0.01);
}

TEST(PiconetTest, TransfersSerialize) {
    BtWorld w(2);
    std::vector<int> completion_order;
    w.piconet.send(w.ids[0], DataSize::from_kilobytes(5), [&](bool) {
        completion_order.push_back(0);
    });
    w.piconet.send(w.ids[1], DataSize::from_kilobytes(5), [&](bool) {
        completion_order.push_back(1);
    });
    EXPECT_TRUE(w.piconet.transferring());
    w.sim.run();
    EXPECT_EQ(completion_order, (std::vector<int>{0, 1}));
    EXPECT_FALSE(w.piconet.transferring());
}

TEST(PiconetTest, ArqRetransmitsOverLossyLink) {
    BtWorld w(1);
    channel::GilbertElliottConfig bad;
    bad.mean_good = 20_ms;
    bad.mean_bad = 20_ms;
    bad.ber_good = 0.0;
    bad.ber_bad = 2e-4;  // DH5 packets mostly fail in bad state
    w.piconet.set_link(w.ids[0], bad, w.root.fork(1));
    bool done = false;
    w.piconet.send(w.ids[0], DataSize::from_kilobytes(20), [&](bool ok) { done = ok; });
    w.sim.run();
    EXPECT_TRUE(done);  // baseband ARQ pushes it through
    EXPECT_EQ(w.slaves[0]->bytes_received(), DataSize::from_kilobytes(20));
    EXPECT_GT(w.piconet.retransmissions(), 0u);
}

TEST(PiconetTest, SupervisionAbortsDeadLink) {
    BtWorld w(1);
    channel::GilbertElliottConfig dead;
    dead.ber_good = 0.01;  // every DH5 fails
    dead.ber_bad = 0.01;
    w.piconet.set_link(w.ids[0], dead, w.root.fork(2));
    bool result = true;
    w.piconet.send(w.ids[0], DataSize::from_kilobytes(5), [&](bool ok) { result = ok; });
    w.sim.run();
    EXPECT_FALSE(result);  // gave up after max_packet_retries
}

TEST(PiconetTest, ParkAndUnpark) {
    BtWorld w(1);
    bool parked = false;
    w.piconet.park(w.ids[0], [&] { parked = true; });
    w.sim.run();
    EXPECT_TRUE(parked);
    EXPECT_EQ(w.piconet.mode(w.ids[0]), SlaveMode::park);
    EXPECT_EQ(w.slaves[0]->nic().state(), phy::BtNic::State::park);

    // Sending to a parked slave un-parks it first.
    bool done = false;
    w.piconet.send(w.ids[0], DataSize::from_kilobytes(1), [&](bool ok) { done = ok; });
    w.sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(w.piconet.mode(w.ids[0]), SlaveMode::active);
}

TEST(PiconetTest, SniffDelaysToAnchor) {
    BtWorld w(1);
    w.piconet.sniff(w.ids[0]);
    w.sim.run();
    EXPECT_EQ(w.piconet.mode(w.ids[0]), SlaveMode::sniff);

    // Activation waits for the next sniff anchor (<= sniff_interval away).
    Time activated = Time::zero();
    w.piconet.activate(w.ids[0], [&] { activated = w.sim.now(); });
    w.sim.run();
    EXPECT_GT(activated, Time::zero());
    EXPECT_LE(activated, w.piconet.config().sniff_interval + 5_ms);
}

TEST(PiconetTest, ParkedSlaveDrawsMilliwatts) {
    BtWorld w(1);
    w.piconet.park(w.ids[0]);
    w.sim.run_until(Time::from_seconds(10));
    EXPECT_LT(w.slaves[0]->average_power().watts(), 0.02);
}

TEST(PiconetTest, ActiveSetLimit) {
    BtWorld w(7);
    auto extra = std::make_unique<BtSlave>(w.sim, phy::BtNicConfig{});
    EXPECT_THROW((void)w.piconet.join(*extra), ContractViolation);
    // Parking one frees a seat.
    w.piconet.park(w.ids[0]);
    const SlaveId id8 = w.piconet.join(*extra);
    EXPECT_EQ(w.piconet.mode(id8), SlaveMode::active);
    // Un-parking now would exceed the limit again.
    EXPECT_THROW(w.piconet.activate(w.ids[0]), ContractViolation);
}

TEST(PiconetTest, PacketStatsTrackDeliveries) {
    BtWorld w(1);
    w.piconet.send(w.ids[0], DataSize::from_bytes(339 * 4));
    w.sim.run();
    EXPECT_EQ(w.piconet.packet_stats().total(), 4u);
    EXPECT_DOUBLE_EQ(w.piconet.packet_stats().ratio(), 1.0);
}

TEST(PiconetTest, UnknownSlaveThrows) {
    BtWorld w(1);
    EXPECT_THROW(w.piconet.park(99), ContractViolation);
    EXPECT_THROW((void)w.piconet.mode(99), ContractViolation);
}

TEST(PiconetTest, SlaveRadioDutySplitsRxTx) {
    BtWorld w(1);
    w.piconet.send(w.ids[0], DataSize::from_kilobytes(20));
    w.sim.run();
    const Time rx = w.slaves[0]->nic().residency(phy::BtNic::State::rx);
    const Time tx = w.slaves[0]->nic().residency(phy::BtNic::State::tx);
    // DH5: 5 forward slots vs 1 return slot.
    EXPECT_NEAR(rx / tx, 5.0, 0.2);
}

}  // namespace
}  // namespace wlanps::bt
