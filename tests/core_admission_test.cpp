/// Tests for admission control, bandwidth reservation, and battery-aware
/// scheduling (paper §2: the resource manager "allocates appropriate
/// bandwidth for communication" and knows clients' "battery levels").

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bt/piconet.hpp"
#include "core/burst_channel.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "power/battery.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps::core {
namespace {

using namespace time_literals;

/// Builds BT-only clients on a shared piconet against one server.
struct AdmissionFixture {
    sim::Simulator sim;
    sim::Random root{81};
    bt::Piconet piconet{sim, bt::PiconetConfig{}, sim::Random(82)};
    std::vector<std::unique_ptr<bt::BtSlave>> slaves;
    std::vector<std::unique_ptr<HotspotClient>> clients;
    std::unique_ptr<HotspotServer> server;

    explicit AdmissionFixture(ServerConfig cfg = ServerConfig{}) {
        server = std::make_unique<HotspotServer>(sim, cfg, make_scheduler("edf"));
    }

    HotspotClient& make_client(Rate stream_rate, bool with_wlan = false) {
        const auto id = static_cast<ClientId>(clients.size() + 1);
        QosContract contract;
        contract.stream_rate = stream_rate;
        auto client = std::make_unique<HotspotClient>(sim, id, contract);
        if (with_wlan) {
            // Not wired to a NIC here; admission only reads goodput, so a
            // real channel is required — use a WLAN nic + perfect link.
            wlan_nics.push_back(std::make_unique<phy::WlanNic>(sim, phy::WlanNicConfig{},
                                                               phy::WlanNic::State::idle));
            client->add_channel(
                std::make_unique<WlanBurstChannel>(sim, *wlan_nics.back(), nullptr));
        }
        slaves.push_back(std::make_unique<bt::BtSlave>(sim, phy::BtNicConfig{},
                                                       phy::BtNic::State::active));
        const auto sid = piconet.join(*slaves.back());
        client->add_channel(std::make_unique<BtBurstChannel>(piconet, sid, *slaves.back()));
        clients.push_back(std::move(client));
        return *clients.back();
    }

    std::vector<std::unique_ptr<phy::WlanNic>> wlan_nics;
};

TEST(AdmissionTest, AdmitsUntilCapacityExhausted) {
    AdmissionFixture f;
    // BT capacity: 723.2 kb/s * 0.9 = 650.9 kb/s; each client reserves
    // 128 * 1.2 = 153.6 kb/s -> 4 fit, the 5th is rejected.
    int admitted = 0;
    for (int i = 0; i < 5; ++i) {
        HotspotClient& c = f.make_client(Rate::from_kbps(128));
        admitted += f.server->try_register(c);
    }
    EXPECT_EQ(admitted, 4);
    EXPECT_NEAR(f.server->reserved(phy::Interface::bluetooth).kbps(), 4 * 153.6, 0.1);
    EXPECT_NEAR(f.server->capacity(phy::Interface::bluetooth).kbps(), 650.9, 0.5);
}

TEST(AdmissionTest, SecondInterfaceAbsorbsOverflow) {
    AdmissionFixture f;
    // Admission prefers the lowest-power interface (BT for audio) and
    // overflows to WLAN once BT's reservable capacity (4 streams) is gone.
    int admitted = 0;
    for (int i = 0; i < 6; ++i) {
        HotspotClient& c = f.make_client(Rate::from_kbps(128), /*with_wlan=*/true);
        admitted += f.server->try_register(c);
    }
    EXPECT_EQ(admitted, 6);
    EXPECT_NEAR(f.server->reserved(phy::Interface::bluetooth).kbps(), 4 * 153.6, 0.1);
    EXPECT_NEAR(f.server->reserved(phy::Interface::wlan).kbps(), 2 * 153.6, 0.1);
}

TEST(AdmissionTest, RegisterClientThrowsWhenDenied) {
    ServerConfig cfg;
    cfg.utilization_cap = 0.10;  // BT fits no 128 kb/s stream at all
    AdmissionFixture f(cfg);
    HotspotClient& c = f.make_client(Rate::from_kbps(128));
    EXPECT_THROW(f.server->register_client(c), ContractViolation);
}

TEST(AdmissionTest, DeniedClientLeavesNoState) {
    ServerConfig cfg;
    cfg.utilization_cap = 0.10;
    AdmissionFixture f(cfg);
    HotspotClient& c = f.make_client(Rate::from_kbps(128));
    EXPECT_FALSE(f.server->try_register(c));
    EXPECT_DOUBLE_EQ(f.server->reserved(phy::Interface::bluetooth).bps(), 0.0);
    EXPECT_THROW((void)f.server->report(c.id()), ContractViolation);
}

TEST(AdmissionTest, ReservationFollowsInterfaceSwitch) {
    AdmissionFixture f;
    HotspotClient& c = f.make_client(Rate::from_kbps(128), /*with_wlan=*/true);
    ASSERT_TRUE(f.server->try_register(c));
    // Initial reservation lands on the first fitting channel (WLAN is
    // channel 0 by construction here).
    const Rate wlan_before = f.server->reserved(phy::Interface::wlan);
    const Rate bt_before = f.server->reserved(phy::Interface::bluetooth);
    EXPECT_GT(wlan_before.bps() + bt_before.bps(), 0.0);

    f.server->set_stored_content(c.id(), true);
    c.start();
    f.server->start();
    f.sim.run_until(Time::from_seconds(20));
    // The selector serves audio on BT; the reservation must sit there now.
    EXPECT_EQ(f.server->report(c.id()).current_channel, 1u);
    EXPECT_NEAR(f.server->reserved(phy::Interface::bluetooth).kbps(), 153.6, 0.1);
    EXPECT_DOUBLE_EQ(f.server->reserved(phy::Interface::wlan).bps(), 0.0);
}

TEST(BatteryAwareTest, ClientReportsBatteryAndDrainsIt) {
    AdmissionFixture f;
    HotspotClient& c = f.make_client(Rate::from_kbps(128));
    power::BatteryConfig bcfg;
    bcfg.capacity = power::Energy::from_joules(100.0);
    bcfg.rate_exponent = 0.0;
    power::Battery battery(bcfg);
    c.attach_battery(battery);
    ASSERT_TRUE(f.server->try_register(c));
    f.server->set_stored_content(c.id(), true);
    c.start();
    f.server->start();
    EXPECT_DOUBLE_EQ(c.battery_level(), 1.0);
    f.sim.run_until(Time::from_seconds(300));
    // ~35 mW * 300 s ~ 10 J drained.
    EXPECT_LT(c.battery_level(), 0.95);
    EXPECT_GT(c.battery_level(), 0.80);
}

TEST(BatteryAwareTest, NoBatteryReportsFull) {
    AdmissionFixture f;
    HotspotClient& c = f.make_client(Rate::from_kbps(128));
    EXPECT_DOUBLE_EQ(c.battery_level(), 1.0);
}

TEST(BatteryAwareTest, LowBatteryClientGetsLargerBursts) {
    ServerConfig cfg;
    cfg.battery_aware = true;
    AdmissionFixture f(cfg);
    HotspotClient& c = f.make_client(Rate::from_kbps(128));
    power::BatteryConfig bcfg;
    bcfg.capacity = power::Energy::from_joules(1000.0);
    bcfg.rate_exponent = 0.0;
    power::Battery low(bcfg);
    low.drain(power::Energy::from_joules(800.0), power::Power::from_watts(1.0));  // at 20%
    c.attach_battery(low);
    ASSERT_TRUE(f.server->try_register(c));
    f.server->set_stored_content(c.id(), true);
    c.start();
    f.server->start();
    f.sim.run_until(Time::from_seconds(120));
    const auto rep_low = f.server->report(c.id());

    // Reference: same run with a full battery.
    ServerConfig cfg2;
    cfg2.battery_aware = true;
    AdmissionFixture g(cfg2);
    HotspotClient& c2 = g.make_client(Rate::from_kbps(128));
    ASSERT_TRUE(g.server->try_register(c2));
    g.server->set_stored_content(c2.id(), true);
    c2.start();
    g.server->start();
    g.sim.run_until(Time::from_seconds(120));
    const auto rep_full = g.server->report(c2.id());

    // Low battery -> ~1.8x target burst -> correspondingly fewer bursts.
    EXPECT_LT(rep_low.bursts, rep_full.bursts * 3 / 4);
    // Same data delivered either way.
    EXPECT_NEAR(static_cast<double>(rep_low.delivered.bytes()),
                static_cast<double>(rep_full.delivered.bytes()),
                static_cast<double>(DataSize::from_kilobytes(128).bytes()));
}

}  // namespace
}  // namespace wlanps::core
