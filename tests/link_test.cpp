/// Tests for the link-layer protocols: ARQ variants, FEC, hybrid, adaptive.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "channel/predictor.hpp"
#include "link/adaptive_mtu.hpp"
#include "link/arq.hpp"
#include "link/fec.hpp"
#include "sim/assert.hpp"

namespace wlanps::link {
namespace {

using namespace time_literals;

channel::GilbertElliottConfig clean_channel() {
    channel::GilbertElliottConfig cfg;
    cfg.ber_good = 0.0;
    cfg.ber_bad = 0.0;
    return cfg;
}

channel::GilbertElliottConfig noisy_channel(double bad_ber) {
    channel::GilbertElliottConfig cfg;
    cfg.mean_good = 100_ms;
    cfg.mean_bad = 100_ms;
    cfg.ber_good = bad_ber / 100.0;
    cfg.ber_bad = bad_ber;
    return cfg;
}

const DataSize kMessage = DataSize::from_kilobytes(32);

TEST(ArqTest, CleanChannelOneTransmissionPerFrame) {
    LinkConfig cfg;
    StopAndWaitArq sw(cfg);
    channel::GilbertElliott ch(clean_channel(), sim::Random(1));
    const auto r = sw.transfer(ch, Time::zero(), kMessage);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.useful, kMessage);
    EXPECT_EQ(r.transmissions, 32);  // 32 KB / 1 KB MTU
    // On-air = payload + headers + acks.
    const DataSize expected = kMessage + DataSize::from_bytes(32 * (16 + 8));
    EXPECT_EQ(r.on_air, expected);
    EXPECT_GT(r.energy.joules(), 0.0);
}

TEST(ArqTest, EnergyPerBitFiniteOnlyWhenDelivered) {
    LinkConfig cfg;
    cfg.retry_limit = 1;
    StopAndWaitArq sw(cfg);
    channel::GilbertElliottConfig dead;
    dead.ber_good = dead.ber_bad = 0.01;  // nothing survives
    channel::GilbertElliott ch(dead, sim::Random(2));
    const auto r = sw.transfer(ch, Time::zero(), kMessage);
    EXPECT_FALSE(r.delivered);
    EXPECT_TRUE(std::isinf(r.energy_per_useful_bit()));
    EXPECT_DOUBLE_EQ(r.goodput_bps(), 0.0);
}

TEST(ArqTest, RetriesRaiseCostWithBer) {
    LinkConfig cfg;
    StopAndWaitArq sw(cfg);
    channel::GilbertElliott low(noisy_channel(1e-5), sim::Random(3));
    channel::GilbertElliott high(noisy_channel(5e-4), sim::Random(3));
    const auto r_low = sw.transfer(low, Time::zero(), kMessage);
    const auto r_high = sw.transfer(high, Time::zero(), kMessage);
    ASSERT_TRUE(r_low.delivered);
    ASSERT_TRUE(r_high.delivered);
    EXPECT_GT(r_high.transmissions, r_low.transmissions);
    EXPECT_GT(r_high.energy_per_useful_bit(), r_low.energy_per_useful_bit());
}

TEST(ArqTest, GoBackNPaysWindowPenalty) {
    LinkConfig cfg;
    cfg.window = 8;
    GoBackNArq gbn(cfg);
    SelectiveRepeatArq sr(cfg);
    channel::GilbertElliott ch1(noisy_channel(3e-4), sim::Random(5));
    channel::GilbertElliott ch2(noisy_channel(3e-4), sim::Random(5));  // same realization
    const auto r_gbn = gbn.transfer(ch1, Time::zero(), kMessage);
    const auto r_sr = sr.transfer(ch2, Time::zero(), kMessage);
    ASSERT_TRUE(r_gbn.delivered);
    ASSERT_TRUE(r_sr.delivered);
    // GBN retransmits whole windows: strictly more on-air data.
    EXPECT_GT(r_gbn.on_air, r_sr.on_air);
}

TEST(ArqTest, SelectiveRepeatBeatsStopAndWaitInTime) {
    LinkConfig cfg;
    SelectiveRepeatArq sr(cfg);
    StopAndWaitArq sw(cfg);
    channel::GilbertElliott ch1(clean_channel(), sim::Random(7));
    channel::GilbertElliott ch2(clean_channel(), sim::Random(7));
    const auto r_sr = sr.transfer(ch1, Time::zero(), kMessage);
    const auto r_sw = sw.transfer(ch2, Time::zero(), kMessage);
    // SW acks every frame with a turnaround; SR acks once per window.
    EXPECT_LT(r_sr.elapsed, r_sw.elapsed);
}

TEST(FecCodeTest, BlockFailureProbabilityMonotone) {
    const FecCode code{1023, 923, 10};
    double prev = 0.0;
    for (double ber : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
        const double p = code.block_failure_probability(ber);
        EXPECT_GE(p, prev - 1e-12);  // tolerate round-off dust near zero
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
}

TEST(FecCodeTest, StrongerCodeFailsLess) {
    const FecCode strong{1023, 923, 10};
    const FecCode weak{255, 239, 2};
    const double ber = 3e-3;
    EXPECT_LT(strong.block_failure_probability(ber), weak.block_failure_probability(ber));
}

TEST(FecCodeTest, CorrectsUpToTErrorsInExpectation) {
    // With n*ber << t the failure probability is negligible.
    const FecCode code{1023, 923, 10};
    EXPECT_LT(code.block_failure_probability(1e-4), 1e-6);  // ~0.1 errors/block
    // With n*ber >> t it fails almost surely.
    EXPECT_GT(code.block_failure_probability(5e-2), 0.999);  // ~51 errors/block
}

TEST(FecCodeTest, OverheadFactor) {
    const FecCode code{1023, 923, 10};
    EXPECT_NEAR(code.overhead_factor(), 1023.0 / 923.0, 1e-12);
}

TEST(FecOnlyTest, AddsOverheadButNoRetries) {
    LinkConfig cfg;
    const FecCode code{1023, 923, 10};
    FecOnly fec(cfg, code, sim::Random(11));
    channel::GilbertElliott ch(clean_channel(), sim::Random(12));
    const auto r = fec.transfer(ch, Time::zero(), kMessage);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.transmissions, 32);
    // On-air exceeds the plain-ARQ payload by ~n/k.
    EXPECT_GT(r.on_air, kMessage * code.overhead_factor() * 0.99);
}

TEST(FecOnlyTest, SurvivesBerThatKillsPlainArqFrames) {
    LinkConfig cfg;
    cfg.retry_limit = 1;
    const double ber = 2e-4;  // ~80% frame loss for 8000-bit frames
    StopAndWaitArq sw(cfg);
    FecOnly fec(cfg, FecCode{1023, 923, 10}, sim::Random(13));
    channel::GilbertElliottConfig flat;
    flat.ber_good = flat.ber_bad = ber;
    channel::GilbertElliott ch1(flat, sim::Random(14));
    channel::GilbertElliott ch2(flat, sim::Random(14));
    const auto r_sw = sw.transfer(ch1, Time::zero(), kMessage);
    const auto r_fec = fec.transfer(ch2, Time::zero(), kMessage);
    EXPECT_FALSE(r_sw.delivered);   // single-shot ARQ dies
    EXPECT_TRUE(r_fec.delivered);   // the code absorbs ~1.6 errors/block
}

TEST(HybridArqTest, DeliversWhereBothPartsAreNeeded) {
    LinkConfig cfg;
    HybridArq hybrid(cfg, FecCode{255, 239, 2}, sim::Random(15));
    channel::GilbertElliott ch(noisy_channel(1e-3), sim::Random(16));
    const auto r = hybrid.transfer(ch, Time::zero(), kMessage);
    EXPECT_TRUE(r.delivered);
    EXPECT_GE(r.transmissions, 32);
}

TEST(AdaptiveArqTest, UsesFecOnlyWhenPredictedBad) {
    LinkConfig cfg;
    channel::LastValuePredictor predictor;
    AdaptiveArq adaptive(cfg, FecCode{1023, 923, 10}, predictor, sim::Random(17));
    channel::GilbertElliott clean(clean_channel(), sim::Random(18));
    const auto r = adaptive.transfer(clean, Time::zero(), kMessage);
    EXPECT_TRUE(r.delivered);
    // Channel always good -> predictor always says good -> no coded frames.
    EXPECT_EQ(adaptive.coded_frames(), 0u);
    EXPECT_EQ(adaptive.plain_frames(), 32u);
}

TEST(AdaptiveArqTest, TracksEnvelopeOnBurstyChannel) {
    LinkConfig cfg;
    const FecCode code{1023, 923, 10};
    // Long sojourns: prediction is easy, adaptation should pay off.
    channel::GilbertElliottConfig bursty;
    bursty.mean_good = 500_ms;
    bursty.mean_bad = 200_ms;
    bursty.ber_good = 1e-7;
    bursty.ber_bad = 5e-4;

    double e_sw = 0.0, e_fec = 0.0, e_adaptive = 0.0;
    const int reps = 10;
    sim::Random seeds(19);
    for (int i = 0; i < reps; ++i) {
        const auto seed = static_cast<std::uint64_t>(i);
        StopAndWaitArq sw(cfg);
        channel::GilbertElliott c1(bursty, seeds.fork(seed));
        e_sw += sw.transfer(c1, Time::zero(), kMessage).energy_per_useful_bit();

        FecOnly fec(cfg, code, sim::Random(20));
        channel::GilbertElliott c2(bursty, seeds.fork(seed));
        const auto rf = fec.transfer(c2, Time::zero(), kMessage);
        e_fec += rf.energy.joules() / static_cast<double>(kMessage.bits());

        channel::MarkovPredictor predictor;
        AdaptiveArq adaptive(cfg, code, predictor, sim::Random(21));
        channel::GilbertElliott c3(bursty, seeds.fork(seed));
        e_adaptive += adaptive.transfer(c3, Time::zero(), kMessage).energy_per_useful_bit();
    }
    // Adaptive must not be much worse than the better of the two pure
    // schemes (tracking the envelope within 15%).
    EXPECT_LT(e_adaptive, std::min(e_sw, e_fec) * 1.15);
}

TEST(OptimalPayloadTest, MatchesNumericArgmax) {
    const double h = 128.0;  // 16-byte header
    for (const double ber : {1e-5, 1e-4, 1e-3}) {
        const double analytic = optimal_payload_bits(ber, h);
        // Numeric argmax of the throughput efficiency L·q^(L+h)/(L+h).
        const double lnq = std::log1p(-ber);
        double best_l = 1.0, best_eta = 0.0;
        for (double l = 8.0; l < 1e6; l *= 1.02) {
            const double eta = l * std::exp((l + h) * lnq) / (l + h);
            if (eta > best_eta) {
                best_eta = eta;
                best_l = l;
            }
        }
        EXPECT_NEAR(analytic, best_l, best_l * 0.03) << "ber " << ber;
    }
}

TEST(OptimalPayloadTest, ShrinksWithBerGrowsWithHeader) {
    EXPECT_GT(optimal_payload_bits(1e-5, 128.0), optimal_payload_bits(1e-3, 128.0));
    EXPECT_GT(optimal_payload_bits(1e-4, 512.0), optimal_payload_bits(1e-4, 128.0));
    // Rule of thumb sqrt(h/p) in the small-ber regime.
    EXPECT_NEAR(optimal_payload_bits(1e-4, 128.0), std::sqrt(128.0 / 1e-4), 120.0);
}

TEST(OptimalPayloadTest, AdaptiveMtuHoversNearOptimum) {
    // On a flat high-BER channel the MTU adapter should settle within a
    // factor ~4 of the analytic optimum (it moves in powers of two).
    LinkConfig cfg;
    cfg.mtu = DataSize::from_bytes(4096);
    AdaptiveMtuArq adaptive(cfg);
    const double ber = 5e-4;
    channel::GilbertElliottConfig flat;
    flat.ber_good = flat.ber_bad = ber;
    channel::GilbertElliott ch(flat, sim::Random(41));
    (void)adaptive.transfer(ch, Time::zero(), DataSize::from_kilobytes(64));
    const double optimum_bits = optimal_payload_bits(ber, 128.0);
    const double mtu_bits = static_cast<double>(adaptive.current_mtu().bits());
    EXPECT_GT(mtu_bits, optimum_bits / 4.0);
    EXPECT_LT(mtu_bits, optimum_bits * 4.0);
}

TEST(TransferReportTest, GoodputComputation) {
    TransferReport r;
    r.delivered = true;
    r.useful = DataSize::from_bits(1000);
    r.elapsed = Time::from_ms(1);
    EXPECT_NEAR(r.goodput_bps(), 1e6, 1.0);
}

TEST(LinkProtocolTest, RejectsEmptyMessage) {
    LinkConfig cfg;
    StopAndWaitArq sw(cfg);
    channel::GilbertElliott ch(clean_channel(), sim::Random(23));
    EXPECT_THROW((void)sw.transfer(ch, Time::zero(), DataSize::zero()), ContractViolation);
}

/// Property sweep: every protocol either delivers the full message or
/// reports failure; accounting is internally consistent.
class ProtocolInvariants : public ::testing::TestWithParam<std::string> {
public:
    static std::unique_ptr<LinkProtocol> make(const std::string& name, LinkConfig cfg) {
        static channel::MarkovPredictor predictor;  // shared across cases
        if (name == "stop-and-wait") return std::make_unique<StopAndWaitArq>(cfg);
        if (name == "go-back-n") return std::make_unique<GoBackNArq>(cfg);
        if (name == "selective-repeat") return std::make_unique<SelectiveRepeatArq>(cfg);
        if (name == "fec") return std::make_unique<FecOnly>(cfg, FecCode{}, sim::Random(31));
        if (name == "hybrid") return std::make_unique<HybridArq>(cfg, FecCode{}, sim::Random(32));
        return std::make_unique<AdaptiveArq>(cfg, FecCode{}, predictor, sim::Random(33));
    }
};

TEST_P(ProtocolInvariants, AccountingConsistent) {
    LinkConfig cfg;
    auto protocol = ProtocolInvariants::make(GetParam(), cfg);
    channel::GilbertElliott ch(noisy_channel(2e-4), sim::Random(34));
    const auto r = protocol->transfer(ch, Time::zero(), kMessage);
    EXPECT_EQ(r.useful, kMessage);
    EXPECT_GE(r.transmissions, 1);
    EXPECT_GE(r.on_air.bits(), kMessage.bits());          // overhead only adds
    EXPECT_GT(r.elapsed, Time::zero());
    EXPECT_GT(r.energy.joules(), 0.0);
    if (r.delivered) {
        EXPECT_GT(r.goodput_bps(), 0.0);
        EXPECT_LT(r.goodput_bps(), cfg.rate.bps());       // cannot beat the radio
    }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolInvariants,
                         ::testing::Values("stop-and-wait", "go-back-n", "selective-repeat",
                                           "fec", "hybrid", "adaptive"));

}  // namespace
}  // namespace wlanps::link
