/// Unit tests for timeline tracing and Gantt rendering.

#include <gtest/gtest.h>

#include "sim/assert.hpp"
#include "sim/trace.hpp"

namespace wlanps::sim {
namespace {

using namespace time_literals;

TEST(TimelineTraceTest, SpansCloseOnTransition) {
    TimelineTrace t;
    t.set_state(0_ms, "a", 1.0);
    t.set_state(10_ms, "b", 2.0);
    t.finish(30_ms);
    ASSERT_EQ(t.spans().size(), 2u);
    EXPECT_EQ(t.spans()[0].label, "a");
    EXPECT_EQ(t.spans()[0].begin, 0_ms);
    EXPECT_EQ(t.spans()[0].end, 10_ms);
    EXPECT_EQ(t.spans()[1].label, "b");
    EXPECT_EQ(t.spans()[1].end, 30_ms);
}

TEST(TimelineTraceTest, ZeroLengthSpansDropped) {
    TimelineTrace t;
    t.set_state(5_ms, "a", 1.0);
    t.set_state(5_ms, "b", 2.0);  // overwrites immediately
    t.finish(10_ms);
    ASSERT_EQ(t.spans().size(), 1u);
    EXPECT_EQ(t.spans()[0].label, "b");
}

TEST(TimelineTraceTest, LevelAtSamplesCorrectSpan) {
    TimelineTrace t;
    t.set_state(0_ms, "low", 1.0);
    t.set_state(10_ms, "high", 5.0);
    t.finish(20_ms);
    EXPECT_DOUBLE_EQ(t.level_at(5_ms), 1.0);
    EXPECT_DOUBLE_EQ(t.level_at(15_ms), 5.0);
    EXPECT_DOUBLE_EQ(t.level_at(25_ms), 0.0);  // after finish
    EXPECT_EQ(t.label_at(5_ms), "low");
    EXPECT_EQ(t.label_at(15_ms), "high");
}

TEST(TimelineTraceTest, OpenSpanIsVisible) {
    TimelineTrace t;
    t.set_state(0_ms, "open", 3.0);
    EXPECT_DOUBLE_EQ(t.level_at(100_ms), 3.0);
    EXPECT_EQ(t.label_at(100_ms), "open");
    EXPECT_DOUBLE_EQ(t.max_level(), 3.0);
}

TEST(TimelineTraceTest, TimeOrderEnforced) {
    TimelineTrace t;
    t.set_state(10_ms, "a", 1.0);
    EXPECT_THROW(t.set_state(5_ms, "b", 2.0), ContractViolation);
}

TEST(TimelineTraceTest, FinishIdempotent) {
    TimelineTrace t;
    t.set_state(0_ms, "a", 1.0);
    t.finish(10_ms);
    t.finish(20_ms);  // no open span: no-op
    EXPECT_EQ(t.spans().size(), 1u);
}

TEST(TimelineTraceTest, MaxLevel) {
    TimelineTrace t;
    EXPECT_DOUBLE_EQ(t.max_level(), 0.0);
    t.set_state(0_ms, "a", 2.0);
    t.set_state(5_ms, "b", 7.0);
    t.finish(10_ms);
    EXPECT_DOUBLE_EQ(t.max_level(), 7.0);
}

TEST(GanttChartTest, RendersLanesWithGlyphs) {
    TimelineTrace t;
    t.set_state(0_ms, "on", 1.0);
    t.set_state(50_ms, "off", 0.0);
    t.finish(100_ms);

    GanttChart chart;
    chart.add_lane("nic", t);
    const std::string out = chart.render(0_ms, 100_ms, 10);

    // Lane line: name, separator, 5 full glyphs then 5 blanks.
    EXPECT_NE(out.find("nic |#####     |"), std::string::npos);
    // Axis labels present.
    EXPECT_NE(out.find("0ns"), std::string::npos);
    EXPECT_NE(out.find("100ms"), std::string::npos);
}

TEST(GanttChartTest, NormalizesPerLane) {
    TimelineTrace t;
    t.set_state(0_ms, "half", 0.35);  // 70% of its own peak 0.5 -> '='
    t.set_state(50_ms, "full", 0.5);
    t.finish(100_ms);
    GanttChart chart;
    chart.add_lane("x", t);
    const std::string out = chart.render(0_ms, 100_ms, 4);
    EXPECT_NE(out.find("x |==##|"), std::string::npos);
}

TEST(GanttChartTest, InvalidRangeThrows) {
    GanttChart chart;
    EXPECT_THROW((void)chart.render(10_ms, 10_ms, 10), ContractViolation);
    EXPECT_THROW((void)chart.render(0_ms, 10_ms, 0), ContractViolation);
}

}  // namespace
}  // namespace wlanps::sim
