/// Unit tests for the shared medium and the DCF (CSMA/CA) transmitter.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/access_point.hpp"
#include "mac/bss.hpp"
#include "mac/dcf.hpp"
#include "mac/medium.hpp"
#include "mac/station.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps::mac {
namespace {

using namespace time_literals;

// ---- Medium -----------------------------------------------------------------

TEST(MediumTest, SingleTransmissionNoCollision) {
    sim::Simulator sim;
    Medium medium(sim);
    bool collided = true;
    medium.transmit(1_ms, [&](bool c) { collided = c; });
    EXPECT_TRUE(medium.busy());
    sim.run();
    EXPECT_FALSE(collided);
    EXPECT_FALSE(medium.busy());
    EXPECT_EQ(medium.transmissions(), 1u);
    EXPECT_EQ(medium.collisions(), 0u);
}

TEST(MediumTest, OverlapCollidesBoth) {
    sim::Simulator sim;
    Medium medium(sim);
    int collisions = 0;
    medium.transmit(2_ms, [&](bool c) { collisions += c; });
    sim.schedule_at(1_ms, [&] {
        medium.transmit(2_ms, [&](bool c) { collisions += c; });
    });
    sim.run();
    EXPECT_EQ(collisions, 2);
    EXPECT_EQ(medium.collisions(), 2u);
}

TEST(MediumTest, SimultaneousStartsCollide) {
    sim::Simulator sim;
    Medium medium(sim);
    int collisions = 0;
    medium.transmit(1_ms, [&](bool c) { collisions += c; });
    medium.transmit(1_ms, [&](bool c) { collisions += c; });
    sim.run();
    EXPECT_EQ(collisions, 2);
}

TEST(MediumTest, BackToBackDoesNotCollide) {
    sim::Simulator sim;
    Medium medium(sim);
    int collisions = 0;
    medium.transmit(1_ms, [&](bool c) { collisions += c; });
    sim.schedule_at(1_ms, [&] {
        medium.transmit(1_ms, [&](bool c) { collisions += c; });
    });
    sim.run();
    EXPECT_EQ(collisions, 0);
}

TEST(MediumTest, IdleWatchersFireOnRelease) {
    sim::Simulator sim;
    Medium medium(sim);
    std::vector<Time> idle_times;
    medium.on_idle([&] { idle_times.push_back(sim.now()); });
    medium.transmit(1_ms, [](bool) {});
    sim.schedule_at(5_ms, [&] { medium.transmit(2_ms, [](bool) {}); });
    sim.run();
    ASSERT_EQ(idle_times.size(), 2u);
    EXPECT_EQ(idle_times[0], 1_ms);
    EXPECT_EQ(idle_times[1], 7_ms);
    EXPECT_EQ(medium.idle_since(), 7_ms);
}

TEST(MediumTest, AirtimeAccounting) {
    sim::Simulator sim;
    Medium medium(sim);
    medium.transmit(1_ms, [](bool) {});
    sim.run();
    sim.schedule_in(1_ms, [&] { medium.transmit(3_ms, [](bool) {}); });
    sim.run();
    EXPECT_EQ(medium.airtime_carried(), 4_ms);
}

// ---- DCF through a Bss --------------------------------------------------------

/// Minimal world: AP in CAM mode + N CAM stations, optional lossy link.
struct World {
    sim::Simulator sim;
    sim::Random root{99};
    Bss bss{sim};
    std::unique_ptr<AccessPoint> ap;
    std::vector<std::unique_ptr<WlanStation>> stations;

    explicit World(int n_stations, ApMode mode = ApMode::cam) {
        AccessPointConfig cfg;
        cfg.mode = mode;
        ap = std::make_unique<AccessPoint>(sim, bss, cfg, DcfConfig{}, root.fork(1));
        for (int i = 0; i < n_stations; ++i) {
            StationConfig st;
            st.mode = StationMode::cam;
            stations.push_back(std::make_unique<WlanStation>(
                sim, bss, static_cast<StationId>(i + 1), st, DcfConfig{}, phy::WlanNicConfig{},
                root.fork(static_cast<std::uint64_t>(10 + i))));
        }
    }
};

TEST(DcfTest, DeliversUnicastWithAck) {
    World w(1);
    bool delivered = false;
    w.ap->send(1, DataSize::from_bytes(1000), [&](bool ok) { delivered = ok; });
    w.sim.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(w.stations[0]->frames_received(), 1u);
    EXPECT_EQ(w.stations[0]->bytes_received(), DataSize::from_bytes(1000));
    // Data + ACK on the medium.
    EXPECT_EQ(w.bss.medium().transmissions(), 2u);
}

TEST(DcfTest, QueueDrainsFifo) {
    World w(1);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        w.ap->send(1, DataSize::from_bytes(100 * (i + 1)),
                   [&order, i](bool) { order.push_back(i); });
    }
    w.sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DcfTest, DozingReceiverMissesFrameAndRetriesExhaust) {
    World w(1);
    w.stations[0]->wlan_nic().doze();
    w.sim.run();  // let the doze transition finish
    bool delivered = true;
    w.ap->send(1, DataSize::from_bytes(500), [&](bool ok) { delivered = ok; });
    w.sim.run();
    EXPECT_FALSE(delivered);  // dropped after retry limit
    EXPECT_EQ(w.stations[0]->frames_received(), 0u);
    // One transmission per retry, no ACKs.
    EXPECT_EQ(w.bss.medium().transmissions(),
              static_cast<std::uint64_t>(DcfConfig{}.retry_limit));
}

TEST(DcfTest, LossyLinkCausesRetriesButDelivers) {
    World w(1);
    channel::GilbertElliottConfig bad;
    bad.mean_good = 1_ms;    // flips fast
    bad.mean_bad = 1_ms;
    bad.ber_good = 0.0;
    bad.ber_bad = 5e-4;      // ~1500-byte frames mostly fail in bad state
    w.bss.set_link(1, bad, w.root.fork(50));

    int delivered = 0;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
        w.ap->send(1, DataSize::from_bytes(1400), [&](bool ok) { delivered += ok; });
    }
    w.sim.run();
    EXPECT_GT(delivered, n / 2);  // retries recover most frames
    EXPECT_GT(w.ap->dcf().attempt_stats().mean(), 1.01);  // some retries happened
}

TEST(DcfTest, TwoContendingTransmittersBothDrainEventually) {
    // AP sends downlink while a station polls: both DCF engines contend on
    // the same medium without deadlock and deliver everything.
    World w(2);
    int done = 0;
    for (int i = 0; i < 20; ++i) {
        w.ap->send(1, DataSize::from_bytes(800), [&](bool ok) { done += ok; });
        w.ap->send(2, DataSize::from_bytes(800), [&](bool ok) { done += ok; });
    }
    w.sim.run();
    EXPECT_EQ(done, 40);
    EXPECT_EQ(w.stations[0]->frames_received(), 20u);
    EXPECT_EQ(w.stations[1]->frames_received(), 20u);
}

TEST(DcfTest, AccessDelayGrowsWithQueue) {
    World w(1);
    for (int i = 0; i < 30; ++i) {
        w.ap->send(1, DataSize::from_bytes(1400));
    }
    w.sim.run();
    // Mean access delay across 30 queued frames must exceed one frame's
    // airtime (the queue serializes).
    EXPECT_GT(w.ap->dcf().access_delay_stats().mean(), 0.001);
}

TEST(DcfTest, BroadcastHasNoAck) {
    World w(2);
    Frame f;
    f.kind = FrameKind::data;
    f.src = kApId;
    f.dst = kBroadcast;
    f.payload = DataSize::from_bytes(100);
    bool completed = false;
    w.ap->dcf().enqueue(f, [&](const DcfTransmitter::Result& r) {
        completed = true;
        EXPECT_TRUE(r.delivered);
        EXPECT_EQ(r.attempts, 1);
    });
    w.sim.run();
    EXPECT_TRUE(completed);
    EXPECT_EQ(w.bss.medium().transmissions(), 1u);  // no ACK
    // Both stations saw it.
    EXPECT_EQ(w.stations[0]->bytes_received(), DataSize::from_bytes(100));
    EXPECT_EQ(w.stations[1]->bytes_received(), DataSize::from_bytes(100));
}

TEST(BssTest, DuplicateStationIdThrows) {
    sim::Simulator sim;
    sim::Random root(1);
    Bss bss(sim);
    AccessPointConfig cfg;
    AccessPoint ap(sim, bss, cfg, DcfConfig{}, root.fork(1));
    StationConfig st;
    WlanStation a(sim, bss, 1, st, DcfConfig{}, phy::WlanNicConfig{}, root.fork(2));
    EXPECT_THROW(WlanStation(sim, bss, 1, st, DcfConfig{}, phy::WlanNicConfig{}, root.fork(3)),
                 ContractViolation);
}

TEST(BssTest, ReservedStationIdsThrow) {
    sim::Simulator sim;
    sim::Random root(1);
    Bss bss(sim);
    StationConfig st;
    EXPECT_THROW(WlanStation(sim, bss, kApId, st, DcfConfig{}, phy::WlanNicConfig{},
                             root.fork(2)),
                 ContractViolation);
}

}  // namespace
}  // namespace wlanps::mac
