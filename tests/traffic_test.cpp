/// Tests for workload generators and the playout buffer.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "traffic/playout.hpp"
#include "traffic/source.hpp"

namespace wlanps::traffic {
namespace {

using namespace time_literals;

TEST(Mp3SourceTest, CbrRateMatchesCalibration) {
    sim::Simulator sim;
    DataSize total;
    Mp3Source src(sim, [&](DataSize s) { total += s; });
    src.start();
    sim.run_until(Time::from_seconds(60));
    src.stop();
    // 128 kb/s for 60 s ~ 937 KB.
    EXPECT_NEAR(static_cast<double>(total.bits()) / 60.0, 128e3, 2e3);
    EXPECT_NEAR(src.average_rate().kbps(), 128.0, 2.0);
}

TEST(Mp3SourceTest, StopsCleanly) {
    sim::Simulator sim;
    int packets = 0;
    Mp3Source src(sim, [&](DataSize) { ++packets; });
    src.start();
    sim.run_until(Time::from_seconds(1));
    src.stop();
    const int at_stop = packets;
    sim.run_until(Time::from_seconds(2));
    EXPECT_EQ(packets, at_stop);
}

TEST(VideoSourceTest, GopPatternAndRate) {
    sim::Simulator sim;
    std::vector<DataSize> frames;
    VideoSource src(sim, [&](DataSize s) { frames.push_back(s); },
                    VideoSource::Config{}, sim::Random(3));
    src.start();
    sim.run_until(Time::from_seconds(10));
    // 25 fps for 10 s.
    EXPECT_NEAR(static_cast<double>(frames.size()), 250.0, 2.0);
    // I frames (every 12th) are on average much larger than B frames.
    double i_sum = 0.0, b_sum = 0.0;
    int i_n = 0, b_n = 0;
    for (std::size_t k = 0; k < frames.size(); ++k) {
        if (k % 12 == 0) {
            i_sum += static_cast<double>(frames[k].bytes());
            ++i_n;
        } else if (k % 3 != 0) {
            b_sum += static_cast<double>(frames[k].bytes());
            ++b_n;
        }
    }
    EXPECT_GT(i_sum / i_n, 3.0 * b_sum / b_n);
}

TEST(WebSourceTest, OnOffStructure) {
    sim::Simulator sim;
    std::vector<Time> arrivals;
    WebSource src(sim, [&](DataSize) { arrivals.push_back(sim.now()); },
                  WebSource::Config{}, sim::Random(5));
    src.start();
    sim.run_until(Time::from_seconds(120));
    ASSERT_GT(arrivals.size(), 100u);
    // There must be OFF gaps far exceeding the ON-rate packet spacing.
    Time max_gap = Time::zero();
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        max_gap = std::max(max_gap, arrivals[i] - arrivals[i - 1]);
    }
    EXPECT_GT(max_gap, Time::from_seconds(1));
}

TEST(PoissonSourceTest, MeanRate) {
    sim::Simulator sim;
    DataSize total;
    PoissonSource src(sim, [&](DataSize s) { total += s; }, DataSize::from_bytes(1000),
                      Rate::from_kbps(400), sim::Random(7));
    src.start();
    sim.run_until(Time::from_seconds(120));
    EXPECT_NEAR(static_cast<double>(total.bits()) / 120.0, 400e3, 30e3);
}

TEST(TraceSourceTest, ReplaysExactly) {
    sim::Simulator sim;
    std::vector<std::pair<Time, DataSize>> got;
    TraceSource src(sim,
                    [&](DataSize s) { got.emplace_back(sim.now(), s); },
                    {{10_ms, DataSize::from_bytes(1)}, {20_ms, DataSize::from_bytes(2)}});
    src.start();
    sim.run();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].first, 10_ms);
    EXPECT_EQ(got[0].second, DataSize::from_bytes(1));
    EXPECT_EQ(got[1].first, 20_ms);
}

TEST(SourceTest, CountsPacketsAndBytes) {
    sim::Simulator sim;
    Mp3Source src(sim, [](DataSize) {});
    src.start();
    sim.run_until(Time::from_seconds(1));
    EXPECT_GT(src.packets_generated(), 30u);
    EXPECT_EQ(src.bytes_generated().bytes(),
              static_cast<std::int64_t>(src.packets_generated()) * 418);
    EXPECT_EQ(src.name(), "mp3-cbr");
}

// ---- PlayoutBuffer ------------------------------------------------------------

PlayoutBuffer::Config small_playout() {
    PlayoutBuffer::Config c;
    c.frame_size = DataSize::from_bytes(400);
    c.frame_interval = 25_ms;
    c.preroll = 100_ms;
    c.capacity = DataSize::from_bytes(4000);
    return c;
}

TEST(PlayoutBufferTest, PlaysWhenFed) {
    sim::Simulator sim;
    PlayoutBuffer buf(sim, small_playout());
    buf.start();
    // Feed generously before and during playback.
    for (int i = 0; i < 40; ++i) {
        sim.schedule_at(Time::from_ms(i * 25), [&] { buf.on_data(DataSize::from_bytes(400)); });
    }
    sim.run_until(Time::from_seconds(1));
    EXPECT_GT(buf.frames_played(), 30u);
    EXPECT_EQ(buf.underruns(), 0u);
    EXPECT_DOUBLE_EQ(buf.qos(), 1.0);
}

TEST(PlayoutBufferTest, StarvedBufferUnderruns) {
    sim::Simulator sim;
    PlayoutBuffer buf(sim, small_playout());
    buf.start();
    buf.on_data(DataSize::from_bytes(800));  // only 2 frames
    sim.run_until(Time::from_seconds(1));
    EXPECT_EQ(buf.frames_played(), 2u);
    EXPECT_GT(buf.underruns(), 20u);
    EXPECT_LT(buf.qos(), 0.2);
}

TEST(PlayoutBufferTest, OverflowDropsAreCounted) {
    sim::Simulator sim;
    PlayoutBuffer buf(sim, small_playout());  // 4000 B capacity
    buf.on_data(DataSize::from_bytes(3900));
    buf.on_data(DataSize::from_bytes(500));   // would exceed capacity
    EXPECT_EQ(buf.overflow_drops(), 1u);
    EXPECT_EQ(buf.level(), buf.config().capacity);
    EXPECT_TRUE(buf.headroom().is_zero());
}

TEST(PlayoutBufferTest, StartThresholdDelaysPlayback) {
    sim::Simulator sim;
    auto cfg = small_playout();
    cfg.start_threshold_frames = 4;  // needs 1600 B buffered
    PlayoutBuffer buf(sim, cfg);
    buf.start();
    // First data arrives late, at 500 ms (10 frames worth).
    sim.schedule_at(500_ms, [&] { buf.on_data(DataSize::from_bytes(4000)); });
    // Stop before the 10 delivered frames are exhausted (~500 + 10*25 ms).
    sim.run_until(730_ms);
    EXPECT_TRUE(buf.playing());
    EXPECT_GE(buf.playback_started_at(), 500_ms);
    // Crucially: the late start is not punished with underruns.
    EXPECT_EQ(buf.underruns(), 0u);
    EXPECT_GE(buf.frames_played(), 9u);
}

TEST(PlayoutBufferTest, UnderrunsCountAfterPlaybackStarts) {
    sim::Simulator sim;
    auto cfg = small_playout();
    cfg.start_threshold_frames = 2;
    PlayoutBuffer buf(sim, cfg);
    buf.start();
    buf.on_data(DataSize::from_bytes(800));  // exactly the threshold
    sim.run_until(Time::from_seconds(1));
    EXPECT_EQ(buf.frames_played(), 2u);
    EXPECT_GT(buf.underruns(), 0u);  // starved after the initial frames
}

TEST(PlayoutBufferTest, StopHaltsConsumption) {
    sim::Simulator sim;
    PlayoutBuffer buf(sim, small_playout());
    buf.start();
    buf.on_data(DataSize::from_bytes(4000));
    sim.run_until(300_ms);
    buf.stop();
    const auto played = buf.frames_played();
    sim.run_until(Time::from_seconds(2));
    EXPECT_EQ(buf.frames_played(), played);
}

TEST(PlayoutBufferTest, OccupancySampled) {
    sim::Simulator sim;
    PlayoutBuffer buf(sim, small_playout());
    buf.start();
    buf.on_data(DataSize::from_bytes(4000));
    sim.run_until(Time::from_seconds(1));
    EXPECT_GT(buf.occupancy_stats().count(), 10u);
}

}  // namespace
}  // namespace wlanps::traffic
