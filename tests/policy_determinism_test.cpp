/// Determinism tests for the policy-BSS worlds on the sharded kernel:
/// under the strict barrier policy, a grid of micro_nap/pamas worlds (one
/// per shard, each with its own seed and energy ledger) must end in a
/// bit-identical state at every worker-thread count, and different seeds
/// must actually move the fingerprint (the digest is not a constant).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "obs/energy_ledger.hpp"
#include "policy/policy.hpp"
#include "policy/world.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace wlanps::policy {
namespace {

constexpr std::size_t kShards = 4;
constexpr Time kHorizon = Time::from_seconds(8);

/// Build one policy world per shard and run the grid to the horizon.
/// Returns a combined digest of every world's end-state plus the per-shard
/// ledger totals (energy attribution must be deterministic too).
std::uint64_t run_policy_grid(PolicyKind kind, std::size_t threads,
                              std::uint64_t seed_base) {
    sim::ShardedConfig config;
    config.shards = kShards;
    config.threads = threads;
    config.policy = sim::SyncPolicy::strict_barrier;
    config.lookahead = Time::from_ms(10);
    sim::ShardedSimulator shx(config);

    // Explicit per-shard ledgers: the thread-local obs::current_ledger()
    // is invisible to the kernel's worker threads.
    std::vector<obs::EnergyLedger> ledgers(kShards);
    std::vector<std::unique_ptr<PolicyBssWorld>> worlds;
    for (std::size_t s = 0; s < kShards; ++s) {
        PolicyWorldConfig wc;
        wc.clients = 2;
        wc.seed = seed_base + s;
        wc.policy = PowerPolicyConfig::of(kind);
        if (kind == PolicyKind::micro_nap) {
            // Uplink traffic exercises the DCF backoff-nap path as well.
            wc.policy.with_uplink(Time::from_ms(250), DataSize::from_bytes(200));
        }
        worlds.push_back(
            std::make_unique<PolicyBssWorld>(shx.shard(s), wc, &ledgers[s]));
    }
    for (auto& world : worlds) world->start();
    shx.run_until(kHorizon);

    std::uint64_t digest = 1469598103934665603ull;
    const auto mix = [&digest](std::uint64_t v) {
        digest ^= v;
        digest *= 1099511628211ull;
    };
    for (std::size_t s = 0; s < kShards; ++s) {
        worlds[s]->settle();
        mix(worlds[s]->fingerprint());
        std::uint64_t bits = 0;
        const double total = ledgers[s].total();
        static_assert(sizeof(bits) == sizeof(total));
        std::memcpy(&bits, &total, sizeof(bits));
        mix(bits);
    }
    return digest;
}

TEST(PolicyDeterminismTest, MicroNapGridIsBitIdenticalAcrossThreadCounts) {
    const std::uint64_t reference = run_policy_grid(PolicyKind::micro_nap, 0, 42);
    for (const std::size_t threads : {1u, 2u, 4u}) {
        EXPECT_EQ(run_policy_grid(PolicyKind::micro_nap, threads, 42), reference)
            << "threads=" << threads;
    }
}

TEST(PolicyDeterminismTest, PamasGridIsBitIdenticalAcrossThreadCounts) {
    const std::uint64_t reference = run_policy_grid(PolicyKind::pamas, 0, 42);
    for (const std::size_t threads : {1u, 2u, 4u}) {
        EXPECT_EQ(run_policy_grid(PolicyKind::pamas, threads, 42), reference)
            << "threads=" << threads;
    }
}

TEST(PolicyDeterminismTest, SeedsActuallyMoveTheFingerprint) {
    EXPECT_NE(run_policy_grid(PolicyKind::micro_nap, 0, 42),
              run_policy_grid(PolicyKind::micro_nap, 0, 1042));
    EXPECT_NE(run_policy_grid(PolicyKind::pamas, 0, 42),
              run_policy_grid(PolicyKind::pamas, 0, 1042));
}

TEST(PolicyDeterminismTest, RepeatedRunsReproduceExactly) {
    EXPECT_EQ(run_policy_grid(PolicyKind::micro_nap, 2, 7),
              run_policy_grid(PolicyKind::micro_nap, 2, 7));
}

}  // namespace
}  // namespace wlanps::policy
