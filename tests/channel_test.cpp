/// Unit and statistical tests for the channel models and predictors.

#include <gtest/gtest.h>

#include <cmath>

#include "channel/ber.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/link.hpp"
#include "channel/path_loss.hpp"
#include "channel/predictor.hpp"
#include "channel/scripted.hpp"
#include "sim/assert.hpp"

namespace wlanps::channel {
namespace {

using namespace time_literals;

// ---- BER models -----------------------------------------------------------

TEST(BerTest, MonotoneDecreasingInSnr) {
    for (const auto mod : {Modulation::dbpsk, Modulation::dqpsk, Modulation::cck55,
                           Modulation::cck11, Modulation::gfsk_bt}) {
        double prev = 1.0;
        for (double snr = -5.0; snr <= 30.0; snr += 1.0) {
            const double ber = bit_error_rate(mod, snr);
            EXPECT_LE(ber, prev) << "mod " << static_cast<int>(mod) << " snr " << snr;
            prev = ber;
        }
    }
}

TEST(BerTest, HigherOrderModulationNeedsMoreSnr) {
    // At a fixed mid SNR, faster 802.11b rates have higher BER.
    const double snr = 8.0;
    EXPECT_LT(bit_error_rate(Modulation::dbpsk, snr), bit_error_rate(Modulation::dqpsk, snr));
    EXPECT_LT(bit_error_rate(Modulation::dqpsk, snr), bit_error_rate(Modulation::cck55, snr));
    EXPECT_LT(bit_error_rate(Modulation::cck55, snr), bit_error_rate(Modulation::cck11, snr));
}

TEST(BerTest, PacketErrorRateMatchesClosedForm) {
    const double ber = 1e-4;
    const DataSize size = DataSize::from_bytes(1500);
    const double per = packet_error_rate(ber, size);
    const double expected = 1.0 - std::pow(1.0 - ber, 1500.0 * 8.0);
    EXPECT_NEAR(per, expected, 1e-9);
}

TEST(BerTest, PacketErrorRateEdges) {
    EXPECT_DOUBLE_EQ(packet_error_rate(0.0, DataSize::from_bytes(1500)), 0.0);
    EXPECT_NEAR(packet_error_rate(1.0, DataSize::from_bytes(1)), 1.0, 1e-12);
}

TEST(BerTest, ModulationForRate) {
    EXPECT_EQ(modulation_for_rate(Rate::from_mbps(1)), Modulation::dbpsk);
    EXPECT_EQ(modulation_for_rate(Rate::from_mbps(2)), Modulation::dqpsk);
    EXPECT_EQ(modulation_for_rate(Rate::from_mbps(5.5)), Modulation::cck55);
    EXPECT_EQ(modulation_for_rate(Rate::from_mbps(11)), Modulation::cck11);
}

TEST(BerTest, RequiredSnrInvertsTheCurve) {
    for (const auto mod : {Modulation::dbpsk, Modulation::cck11}) {
        const double snr = required_snr_db(mod, 1e-5);
        EXPECT_NEAR(bit_error_rate(mod, snr), 1e-5, 2e-6);
    }
}

// ---- Gilbert-Elliott -------------------------------------------------------

TEST(GilbertElliottTest, StationaryFractionMatchesConfig) {
    GilbertElliottConfig cfg;
    cfg.mean_good = 400_ms;
    cfg.mean_bad = 100_ms;
    EXPECT_NEAR(cfg.stationary_good(), 0.8, 1e-12);
    GilbertElliott ch(cfg, sim::Random(3));
    // Advance far and check the observed fraction.
    (void)ch.state_at(Time::from_seconds(2000));
    EXPECT_NEAR(ch.observed_good_fraction(), 0.8, 0.03);
}

TEST(GilbertElliottTest, AverageBer) {
    GilbertElliottConfig cfg;
    cfg.mean_good = 300_ms;
    cfg.mean_bad = 100_ms;
    cfg.ber_good = 1e-6;
    cfg.ber_bad = 1e-3;
    EXPECT_NEAR(cfg.average_ber(), 0.75 * 1e-6 + 0.25 * 1e-3, 1e-12);
}

TEST(GilbertElliottTest, BerFollowsState) {
    GilbertElliottConfig cfg;
    GilbertElliott ch(cfg, sim::Random(5));
    for (int i = 0; i < 50; ++i) {
        const Time t = Time::from_ms(i * 20);
        const auto s = ch.state_at(t);
        EXPECT_DOUBLE_EQ(ch.ber_at(t), s == ChannelState::good ? cfg.ber_good : cfg.ber_bad);
    }
}

TEST(GilbertElliottTest, OutOfOrderQueryThrows) {
    GilbertElliott ch(GilbertElliottConfig{}, sim::Random(5));
    (void)ch.state_at(1_s);
    EXPECT_THROW((void)ch.state_at(500_ms), ContractViolation);
}

TEST(GilbertElliottTest, PerfectChannelAlwaysDelivers) {
    GilbertElliottConfig cfg;
    cfg.ber_good = 0.0;
    cfg.ber_bad = 0.0;
    GilbertElliott ch(cfg, sim::Random(7));
    for (int i = 0; i < 200; ++i) {
        EXPECT_TRUE(ch.transmit_success(Time::from_ms(i * 5), DataSize::from_bytes(1500),
                                        Rate::from_mbps(11)));
    }
}

TEST(GilbertElliottTest, DeliveryRateTracksAverageBer) {
    GilbertElliottConfig cfg;
    cfg.mean_good = 100_ms;
    cfg.mean_bad = 100_ms;
    cfg.ber_good = 1e-6;
    cfg.ber_bad = 1e-4;
    GilbertElliott ch(cfg, sim::Random(11));
    const DataSize size = DataSize::from_bytes(1500);
    const Rate rate = Rate::from_mbps(2);
    int ok = 0;
    const int n = 8000;
    Time t = Time::zero();
    for (int i = 0; i < n; ++i) {
        if (ch.transmit_success(t, size, rate)) ++ok;
        t += 10_ms;
    }
    // Expected success = mix of the two states' packet success rates.
    const double ps_good = std::pow(1.0 - cfg.ber_good, 12000.0);
    const double ps_bad = std::pow(1.0 - cfg.ber_bad, 12000.0);
    const double expected = 0.5 * ps_good + 0.5 * ps_bad;
    EXPECT_NEAR(ok / static_cast<double>(n), expected, 0.04);
}

TEST(GilbertElliottTest, SuccessProbabilityReflectsCurrentState) {
    GilbertElliottConfig cfg;
    cfg.ber_good = 0.0;
    cfg.ber_bad = 1e-3;
    GilbertElliott ch(cfg, sim::Random(13));
    Time t = Time::zero();
    // Find a moment in each state and compare estimates.
    double p_good = -1.0, p_bad = -1.0;
    for (int i = 0; i < 10000 && (p_good < 0 || p_bad < 0); ++i) {
        t += 5_ms;
        const auto s = ch.state_at(t);
        const double p = ch.success_probability(t, DataSize::from_bytes(1500), Rate::from_mbps(2));
        if (s == ChannelState::good) p_good = p;
        else p_bad = p;
    }
    ASSERT_GE(p_good, 0.0);
    ASSERT_GE(p_bad, 0.0);
    EXPECT_DOUBLE_EQ(p_good, 1.0);
    EXPECT_LT(p_bad, 1e-4);  // 12000 bits at 1e-3 BER
}

// ---- Path loss --------------------------------------------------------------

TEST(PathLossTest, MeanSnrFallsWithDistance) {
    PathLoss pl(PathLossConfig{}, sim::Random(17));
    EXPECT_GT(pl.mean_snr_db(2.0), pl.mean_snr_db(10.0));
    EXPECT_GT(pl.mean_snr_db(10.0), pl.mean_snr_db(50.0));
}

TEST(PathLossTest, LogDistanceSlope) {
    PathLossConfig cfg;
    cfg.exponent = 3.0;
    PathLoss pl(cfg, sim::Random(17));
    // 10x distance => 10*n dB more loss.
    EXPECT_NEAR(pl.mean_snr_db(1.0) - pl.mean_snr_db(10.0), 30.0, 1e-9);
}

TEST(PathLossTest, ShadowingIsCorrelatedOverShortTimes) {
    PathLossConfig cfg;
    cfg.shadowing_sigma_db = 6.0;
    cfg.shadowing_coherence = Time::from_seconds(10);
    PathLoss pl(cfg, sim::Random(19));
    const double first = pl.snr_db(Time::zero(), 10.0);
    const double soon = pl.snr_db(1_ms, 10.0);
    EXPECT_NEAR(soon, first, 1.0);  // barely decorrelated after 1 ms
}

TEST(PathLossTest, ShadowingVarianceMatchesSigma) {
    PathLossConfig cfg;
    cfg.shadowing_sigma_db = 4.0;
    cfg.shadowing_coherence = 10_ms;
    PathLoss pl(cfg, sim::Random(23));
    const double mean = pl.mean_snr_db(10.0);
    double sum = 0.0, sq = 0.0;
    const int n = 5000;
    for (int i = 1; i <= n; ++i) {
        const double x = pl.snr_db(Time::from_ms(i * 100), 10.0) - mean;  // decorrelated samples
        sum += x;
        sq += x * x;
    }
    const double var = sq / n - (sum / n) * (sum / n);
    EXPECT_NEAR(std::sqrt(var), 4.0, 0.4);
}

// ---- Scripted quality -------------------------------------------------------

TEST(ScriptedQualityTest, DefaultIsPerfect) {
    ScriptedQuality q;
    EXPECT_DOUBLE_EQ(q.at(Time::zero()), 1.0);
    EXPECT_DOUBLE_EQ(q.at(100_s), 1.0);
}

TEST(ScriptedQualityTest, InterpolatesAndClamps) {
    ScriptedQuality q;
    q.add_point(10_s, 1.0);
    q.add_point(20_s, 0.2);
    EXPECT_DOUBLE_EQ(q.at(5_s), 1.0);        // before first point
    EXPECT_NEAR(q.at(15_s), 0.6, 1e-9);      // midpoint
    EXPECT_DOUBLE_EQ(q.at(30_s), 0.2);       // after last point
}

TEST(ScriptedQualityTest, EnforcesMonotoneTime) {
    ScriptedQuality q;
    q.add_point(10_s, 1.0);
    EXPECT_THROW(q.add_point(5_s, 0.5), ContractViolation);
    EXPECT_THROW(q.add_point(20_s, 1.5), ContractViolation);
}

// ---- Composite link ----------------------------------------------------------

TEST(WirelessLinkTest, ScriptedDropsDegradeDelivery) {
    GilbertElliottConfig ge;
    ge.ber_good = 0.0;
    ge.ber_bad = 0.0;
    WirelessLink link(ge, sim::Random(29));
    ScriptedQuality script;
    script.add_point(1_s, 1.0);
    script.add_point(2_s, 0.0);
    link.set_scripted_quality(script);

    // Before degradation: all delivered.
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(link.transmit(Time::from_ms(i), DataSize::from_bytes(100),
                                  Rate::from_mbps(1)));
    }
    // Fully degraded: none delivered.
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(link.transmit(Time::from_seconds(3) + Time::from_ms(i),
                                   DataSize::from_bytes(100), Rate::from_mbps(1)));
    }
    EXPECT_EQ(link.delivery_stats().total(), 200u);
}

TEST(WirelessLinkTest, QualityCombinesStationaryAndScript) {
    GilbertElliottConfig ge;
    ge.mean_good = 900_ms;
    ge.mean_bad = 100_ms;
    WirelessLink link(ge, sim::Random(31));
    EXPECT_NEAR(link.quality(Time::zero()), 0.9, 1e-9);
    ScriptedQuality script;
    script.add_point(1_s, 0.5);
    link.set_scripted_quality(script);
    EXPECT_NEAR(link.quality(2_s), 0.45, 1e-9);
}

// ---- Predictors ----------------------------------------------------------------

TEST(PredictorTest, LastValue) {
    LastValuePredictor p;
    EXPECT_TRUE(p.predict());  // optimistic default
    p.observe(false);
    EXPECT_FALSE(p.predict());
    p.observe(true);
    EXPECT_TRUE(p.predict());
}

TEST(PredictorTest, SlidingWindowMajority) {
    SlidingWindowPredictor p(3);
    p.observe(true);
    p.observe(true);
    p.observe(false);
    EXPECT_TRUE(p.predict());  // 2/3 good
    p.observe(false);
    p.observe(false);
    EXPECT_FALSE(p.predict());  // window now {false,false,false}... last 3
    EXPECT_EQ(p.name(), "window-3");
}

TEST(PredictorTest, MarkovLearnsStickyChannel) {
    MarkovPredictor p;
    // Feed a perfectly sticky pattern: 50 good, 50 bad, 50 good...
    for (int block = 0; block < 6; ++block) {
        const bool good = block % 2 == 0;
        for (int i = 0; i < 50; ++i) p.observe(good);
    }
    // Sticky channel: predict(next == last).
    EXPECT_GT(p.stay_good_probability(), 0.9);
    EXPECT_LT(p.leave_bad_probability(), 0.1);
}

TEST(PredictorTest, AccuracyScoring) {
    LastValuePredictor p;
    p.observe(true);
    p.observe_and_score(true);   // predicted true, was true
    p.observe_and_score(false);  // predicted true, was false
    EXPECT_NEAR(p.accuracy(), 0.5, 1e-12);
}

TEST(PredictorTest, LastValueIsGoodOnStickyChannel) {
    GilbertElliottConfig cfg;
    cfg.mean_good = 500_ms;
    cfg.mean_bad = 500_ms;
    GilbertElliott ch(cfg, sim::Random(37));
    LastValuePredictor p;
    Time t = Time::zero();
    for (int i = 0; i < 5000; ++i) {
        t += 10_ms;  // much shorter than sojourn -> sticky observations
        p.observe_and_score(ch.state_at(t) == ChannelState::good);
    }
    EXPECT_GT(p.accuracy(), 0.9);
}

TEST(PredictorTest, NoisyOracleFidelityOrdersAccuracy) {
    GilbertElliottConfig cfg;
    cfg.mean_good = 100_ms;
    cfg.mean_bad = 100_ms;
    double prev_accuracy = 0.0;
    for (const double fidelity : {0.0, 0.5, 1.0}) {
        GilbertElliott ch(cfg, sim::Random(41));
        NoisyOraclePredictor p(fidelity, sim::Random(43));
        Time t = Time::zero();
        for (int i = 0; i < 4000; ++i) {
            t += 60_ms;  // fast channel -> last-value is weak
            const bool truth = ch.state_at(t) == ChannelState::good;
            p.set_truth(truth);
            p.observe_and_score(truth);
        }
        EXPECT_GE(p.accuracy(), prev_accuracy - 0.02);
        prev_accuracy = p.accuracy();
    }
    EXPECT_GT(prev_accuracy, 0.99);  // full-fidelity oracle is near perfect
}

// ---- PerTable -------------------------------------------------------------

TEST(PerTableTest, BatchMatchesScalarBitForBit) {
    const PerTable& table = PerTable::lookup(Modulation::cck11, DataSize::from_bytes(1500));
    std::vector<double> snrs;
    // Cover below-range, in-range (including off-grid fractions), and
    // above-range inputs.
    for (double snr = -15.0; snr <= 45.0; snr += 0.037) snrs.push_back(snr);
    const std::vector<double> batch = table.per_batch(snrs);
    ASSERT_EQ(batch.size(), snrs.size());
    for (std::size_t i = 0; i < snrs.size(); ++i) {
        EXPECT_EQ(batch[i], table.per(snrs[i])) << "snr " << snrs[i];
    }
}

TEST(PerTableTest, TrackExactCurve) {
    const DataSize frame = DataSize::from_bytes(1500);
    const PerTable& table = PerTable::lookup(Modulation::dqpsk, frame);
    for (double snr = -8.0; snr <= 35.0; snr += 0.5) {
        const double exact = packet_error_rate(bit_error_rate(Modulation::dqpsk, snr), frame);
        EXPECT_NEAR(table.per(snr), exact, 1e-4) << "snr " << snr;
    }
}

}  // namespace
}  // namespace wlanps::channel
