/// Unit tests for the statistics accumulators.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/assert.hpp"
#include "sim/stats.hpp"

namespace wlanps::sim {
namespace {

using namespace time_literals;

TEST(AccumulatorTest, EmptyQueriesThrow) {
    Accumulator acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_THROW((void)acc.mean(), ContractViolation);
    EXPECT_THROW((void)acc.min(), ContractViolation);
    EXPECT_THROW((void)acc.max(), ContractViolation);
}

TEST(AccumulatorTest, SingleSample) {
    Accumulator acc;
    acc.add(42.0);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
    EXPECT_DOUBLE_EQ(acc.min(), 42.0);
    EXPECT_DOUBLE_EQ(acc.max(), 42.0);
    EXPECT_THROW((void)acc.variance(), ContractViolation);  // needs >= 2
}

TEST(AccumulatorTest, KnownMoments) {
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(AccumulatorTest, WelfordIsStableForLargeOffsets) {
    Accumulator acc;
    const double offset = 1e9;
    for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.add(x);
    EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(AccumulatorTest, ResetClears) {
    Accumulator acc;
    acc.add(1.0);
    acc.reset();
    EXPECT_TRUE(acc.empty());
}

TEST(TimeWeightedTest, ConstantSignal) {
    TimeWeighted tw;
    tw.set(Time::zero(), 2.0);
    EXPECT_DOUBLE_EQ(tw.average(10_s), 2.0);
    EXPECT_DOUBLE_EQ(tw.integral(10_s), 20.0);
}

TEST(TimeWeightedTest, StepSignal) {
    TimeWeighted tw;
    tw.set(Time::zero(), 1.0);
    tw.set(4_s, 3.0);
    // Integral over 10 s = 1*4 + 3*6 = 22.
    EXPECT_DOUBLE_EQ(tw.integral(10_s), 22.0);
    EXPECT_DOUBLE_EQ(tw.average(10_s), 2.2);
}

TEST(TimeWeightedTest, OutOfOrderUpdateThrows) {
    TimeWeighted tw;
    tw.set(5_s, 1.0);
    EXPECT_THROW(tw.set(4_s, 2.0), ContractViolation);
}

TEST(TimeWeightedTest, AverageBeforeStartReturnsCurrent) {
    TimeWeighted tw;
    EXPECT_DOUBLE_EQ(tw.average(Time::zero()), 0.0);
    tw.set(1_s, 5.0);
    EXPECT_DOUBLE_EQ(tw.average(1_s), 5.0);
}

TEST(TimeWeightedTest, ZeroWidthUpdateKeepsIntegral) {
    TimeWeighted tw;
    tw.set(Time::zero(), 1.0);
    tw.set(2_s, 7.0);
    tw.set(2_s, 3.0);  // immediate overwrite
    EXPECT_DOUBLE_EQ(tw.integral(4_s), 1.0 * 2 + 3.0 * 2);
}

TEST(HistogramTest, CountsAndClamping) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(-3.0);   // clamps into bin 0
    h.add(100.0);  // clamps into last bin
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bin_count(0), 2u);
    EXPECT_EQ(h.bin_count(5), 1u);
    EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(HistogramTest, PercentileOfUniformFill) {
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i) h.add(i + 0.5);
    EXPECT_NEAR(h.percentile(50.0), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(90.0), 90.0, 1.5);
    EXPECT_NEAR(h.percentile(99.0), 99.0, 1.5);
}

TEST(HistogramTest, EmptyPercentileThrows) {
    Histogram h(0.0, 1.0, 4);
    EXPECT_THROW((void)h.percentile(50.0), ContractViolation);
}

TEST(HistogramTest, BadConstructionThrows) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(RatioCounterTest, Basics) {
    RatioCounter rc;
    EXPECT_DOUBLE_EQ(rc.ratio(), 0.0);
    rc.hit();
    rc.hit();
    rc.miss();
    EXPECT_EQ(rc.hits(), 2u);
    EXPECT_EQ(rc.misses(), 1u);
    EXPECT_EQ(rc.total(), 3u);
    EXPECT_NEAR(rc.ratio(), 2.0 / 3.0, 1e-12);
}

TEST(RatioCounterTest, AddBool) {
    RatioCounter rc;
    rc.add(true);
    rc.add(false);
    rc.add(true);
    EXPECT_NEAR(rc.ratio(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace wlanps::sim
