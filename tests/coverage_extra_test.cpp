/// Additional focused tests: formatting, logging, multi-lane charts,
/// scheduled-path edge cases, and server dispatch ordering.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "bt/piconet.hpp"
#include "core/burst_channel.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "phy/bt_nic.hpp"
#include "power/energy_meter.hpp"
#include "sim/logger.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

// ---- formatting ---------------------------------------------------------------

TEST(FormatTest, PowerAndEnergyStrings) {
    EXPECT_EQ(power::Power::from_watts(1.4).str(), "1.4W");
    EXPECT_EQ(power::Power::from_milliwatts(45).str(), "45mW");
    EXPECT_EQ(power::Energy::from_joules(2.5).str(), "2.5J");
    EXPECT_EQ(power::Energy::from_millijoules(12).str(), "12mJ");
    std::ostringstream os;
    os << power::Power::from_watts(0.83) << " " << power::Energy::from_joules(1.0);
    EXPECT_EQ(os.str(), "0.83W 1J");
}

TEST(FormatTest, DataSizeAndRateStrings) {
    EXPECT_EQ(DataSize::from_bytes(500).str(), "500B");
    EXPECT_EQ(DataSize::from_kilobytes(48).str(), "48KB");
    EXPECT_EQ(DataSize::from_kilobytes(2048).str(), "2MB");
    EXPECT_EQ(DataSize::from_bits(12).str(), "12b");  // not byte-aligned
    EXPECT_EQ(Rate::from_kbps(128).str(), "128kb/s");
    EXPECT_EQ(Rate::from_mbps(11).str(), "11Mb/s");
    EXPECT_EQ(Rate::from_bps(500).str(), "500b/s");
}

// ---- logger --------------------------------------------------------------------

TEST(LoggerTest, LevelGatesOutput) {
    std::ostringstream captured;
    auto* old = std::clog.rdbuf(captured.rdbuf());
    sim::Logger::set_level(sim::LogLevel::off);
    sim::Logger::log(sim::LogLevel::info, 5_ms, "test", "hidden");
    EXPECT_TRUE(captured.str().empty());
    sim::Logger::set_level(sim::LogLevel::info);
    sim::Logger::log(sim::LogLevel::info, 5_ms, "test", "shown");
    sim::Logger::log(sim::LogLevel::debug, 5_ms, "test", "hidden2");
    sim::Logger::set_level(sim::LogLevel::off);
    std::clog.rdbuf(old);
    EXPECT_EQ(captured.str(), "[5ms] test: shown\n");
}

// ---- Gantt, multi-lane -----------------------------------------------------------

TEST(GanttTest, MultipleLanesAlignNames) {
    sim::TimelineTrace a, b;
    a.set_state(0_ms, "x", 1.0);
    a.finish(10_ms);
    b.set_state(5_ms, "y", 1.0);
    b.finish(10_ms);
    sim::GanttChart chart;
    chart.add_lane("c1", a);
    chart.add_lane("client2", b);
    const std::string out = chart.render(0_ms, 10_ms, 10);
    EXPECT_NE(out.find("c1      |##########|"), std::string::npos);
    EXPECT_NE(out.find("client2 |     #####|"), std::string::npos);
}

// ---- burst channels ----------------------------------------------------------------

TEST(BurstChannelExtraTest, PartialLossAccountingSumsToRequest) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    channel::GilbertElliottConfig shaky;
    shaky.mean_good = 5_ms;
    shaky.mean_bad = 5_ms;
    shaky.ber_good = 0.0;
    shaky.ber_bad = 5e-4;
    channel::WirelessLink link(shaky, sim::Random(21));
    core::WlanBurstChannel::Config cfg;
    cfg.retry_limit = 2;  // give up quickly -> some chunks lost
    core::WlanBurstChannel ch(sim, nic, &link, cfg);
    core::BurstChannel::Result result;
    const DataSize request = DataSize::from_kilobytes(64);
    ch.transfer(request, [&](const core::BurstChannel::Result& r) { result = r; });
    sim.run();
    EXPECT_EQ(result.delivered + result.lost, request);
    EXPECT_GT(result.lost.bytes(), 0);
    EXPECT_FALSE(result.ok);
}

TEST(BurstChannelExtraTest, BtChannelBusyGuard) {
    sim::Simulator sim;
    bt::Piconet piconet(sim, bt::PiconetConfig{}, sim::Random(22));
    bt::BtSlave slave(sim, phy::BtNicConfig{}, phy::BtNic::State::active);
    const auto sid = piconet.join(slave);
    core::BtBurstChannel ch(piconet, sid, slave);
    ch.transfer(DataSize::from_kilobytes(10), {});
    EXPECT_TRUE(ch.busy());
    EXPECT_THROW(ch.transfer(DataSize::from_kilobytes(1), {}), ContractViolation);
    sim.run();
    EXPECT_FALSE(ch.busy());
}

// ---- piconet sniff data path ---------------------------------------------------------

TEST(PiconetExtraTest, SendToSniffingSlaveWaitsForAnchor) {
    sim::Simulator sim;
    bt::Piconet piconet(sim, bt::PiconetConfig{}, sim::Random(23));
    bt::BtSlave slave(sim, phy::BtNicConfig{}, phy::BtNic::State::active);
    const auto sid = piconet.join(slave);
    piconet.sniff(sid);
    sim.run();
    ASSERT_EQ(piconet.mode(sid), bt::SlaveMode::sniff);
    Time done_at = Time::zero();
    const Time sent_at = sim.now();
    piconet.send(sid, DataSize::from_bytes(339), [&](bool ok) {
        EXPECT_TRUE(ok);
        done_at = sim.now();
    });
    sim.run();
    // The transfer waited for a sniff anchor (up to sniff_interval away).
    EXPECT_GT(done_at - sent_at, Time::from_ms(3));
    EXPECT_EQ(slave.bytes_received(), DataSize::from_bytes(339));
}

// ---- server dispatch ordering ----------------------------------------------------------

TEST(ServerDispatchTest, EdfServesTighterDeadlineFirst) {
    // Two clients with very different buffer levels: the one closer to
    // underrun must be dispatched first whenever both are pending.
    sim::Simulator sim;
    sim::Random root(24);
    bt::Piconet piconet(sim, bt::PiconetConfig{}, root.fork(1));
    core::ServerConfig cfg;
    core::HotspotServer server(sim, cfg, core::make_scheduler("edf"));

    std::vector<std::unique_ptr<bt::BtSlave>> slaves;
    std::vector<std::unique_ptr<core::HotspotClient>> clients;
    for (int i = 0; i < 2; ++i) {
        core::QosContract contract;
        contract.stream_rate = phy::calibration::kMp3Rate;
        // Client 2 prerolls later -> consistently tighter deadlines.
        contract.preroll = i == 0 ? Time::from_seconds(4) : Time::from_seconds(2);
        auto client = std::make_unique<core::HotspotClient>(
            sim, static_cast<core::ClientId>(i + 1), contract);
        slaves.push_back(std::make_unique<bt::BtSlave>(sim, phy::BtNicConfig{},
                                                       phy::BtNic::State::active));
        const auto sid = piconet.join(*slaves.back());
        client->add_channel(
            std::make_unique<core::BtBurstChannel>(piconet, sid, *slaves.back()));
        ASSERT_TRUE(server.try_register(*client));
        server.set_stored_content(client->id(), true);
        client->start();
        clients.push_back(std::move(client));
    }
    server.start();
    sim.run_until(Time::from_seconds(30));

    // Both served, zero underruns: EDF interleaved them correctly.
    EXPECT_EQ(clients[0]->playout().underruns(), 0u);
    EXPECT_EQ(clients[1]->playout().underruns(), 0u);
    // The decision log alternates between the two clients.
    int c1 = 0, c2 = 0;
    for (const auto& d : server.decisions()) {
        (d.client == 1 ? c1 : c2)++;
    }
    EXPECT_GT(c1, 3);
    EXPECT_GT(c2, 3);
}

TEST(ServerDispatchTest, ReportsAreStableAcrossQueries) {
    sim::Simulator sim;
    sim::Random root(25);
    bt::Piconet piconet(sim, bt::PiconetConfig{}, root.fork(1));
    core::HotspotServer server(sim, core::ServerConfig{}, core::make_scheduler("fifo"));
    core::QosContract contract;
    auto client = std::make_unique<core::HotspotClient>(sim, 1, contract);
    auto slave = std::make_unique<bt::BtSlave>(sim, phy::BtNicConfig{},
                                               phy::BtNic::State::active);
    const auto sid = piconet.join(*slave);
    client->add_channel(std::make_unique<core::BtBurstChannel>(piconet, sid, *slave));
    ASSERT_TRUE(server.try_register(*client));
    server.set_stored_content(1, true);
    client->start();
    server.start();
    sim.run_until(Time::from_seconds(20));
    const auto a = server.report(1);
    const auto b = server.report(1);  // const query: no side effects
    EXPECT_EQ(a.bursts, b.bursts);
    EXPECT_EQ(a.delivered, b.delivered);
    const auto all = server.reports();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].bursts, a.bursts);
}

// ---- energy meter with scenario components --------------------------------------------

TEST(MeterIntegrationTest, MeterAggregatesNicAndBaseLoads) {
    sim::Simulator sim;
    power::EnergyMeter meter(sim);
    phy::WlanNic wlan(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    phy::BtNic bt_nic(sim, phy::BtNicConfig{}, phy::BtNic::State::park);
    meter.add_source("wlan", [&wlan](Time) { return wlan.energy_consumed(); });
    meter.add_source("bt", [&bt_nic](Time) { return bt_nic.energy_consumed(); });
    meter.add_constant("platform", phy::calibration::kIpaqBase);
    sim.run_until(Time::from_seconds(10));
    // Idle WLAN 0.83 W + parked BT 12 mW + platform 1.3 W over 10 s.
    EXPECT_NEAR(meter.total_energy().joules(), (0.83 + 0.012 + 1.3) * 10.0, 1e-6);
    const auto rows = meter.breakdown();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_NEAR(rows[0].average.watts(), 0.83, 1e-9);
    EXPECT_NEAR(rows[1].average.watts(), 0.012, 1e-9);
    EXPECT_NEAR(rows[2].average.watts(), 1.30, 1e-9);
}

}  // namespace
}  // namespace wlanps
