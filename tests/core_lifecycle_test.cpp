/// Tests for dynamic client lifecycle (arrivals/departures), the decision
/// log, and the mixed-workload scenario.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bt/piconet.hpp"
#include "core/backend.hpp"
#include "core/burst_channel.hpp"
#include "core/client.hpp"
#include "core/scenario_spec.hpp"
#include "core/server.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps::core {
namespace {

using namespace time_literals;

struct LifecycleFixture {
    sim::Simulator sim;
    sim::Random root{91};
    bt::Piconet piconet{sim, bt::PiconetConfig{}, sim::Random(92)};
    std::vector<std::unique_ptr<bt::BtSlave>> slaves;
    std::vector<std::unique_ptr<HotspotClient>> clients;
    HotspotServer server{sim, ServerConfig{}, make_scheduler("edf")};

    HotspotClient& make_client() {
        const auto id = static_cast<ClientId>(clients.size() + 1);
        QosContract contract;
        contract.stream_rate = phy::calibration::kMp3Rate;
        auto client = std::make_unique<HotspotClient>(sim, id, contract);
        slaves.push_back(std::make_unique<bt::BtSlave>(sim, phy::BtNicConfig{},
                                                       phy::BtNic::State::active));
        const auto sid = piconet.join(*slaves.back());
        client->add_channel(std::make_unique<BtBurstChannel>(piconet, sid, *slaves.back()));
        clients.push_back(std::move(client));
        return *clients.back();
    }
};

TEST(LifecycleTest, MidRunArrivalIsServed) {
    LifecycleFixture f;
    HotspotClient& first = f.make_client();
    ASSERT_TRUE(f.server.try_register(first));
    f.server.set_stored_content(first.id(), true);
    first.start();
    f.server.start();
    f.sim.run_until(Time::from_seconds(30));

    // A second client walks into the Hotspot at t = 30 s.
    HotspotClient& second = f.make_client();
    ASSERT_TRUE(f.server.try_register(second));
    f.server.set_stored_content(second.id(), true);
    second.start();
    f.sim.run_until(Time::from_seconds(90));

    EXPECT_GT(f.server.report(second.id()).bursts, 10u);
    EXPECT_EQ(second.playout().underruns(), 0u);
    // The first client is unaffected.
    EXPECT_EQ(first.playout().underruns(), 0u);
}

TEST(LifecycleTest, DepartureReleasesBandwidth) {
    LifecycleFixture f;
    HotspotClient& a = f.make_client();
    HotspotClient& b = f.make_client();
    ASSERT_TRUE(f.server.try_register(a));
    ASSERT_TRUE(f.server.try_register(b));
    const Rate before = f.server.reserved(phy::Interface::bluetooth);
    f.server.unregister_client(a.id());
    EXPECT_NEAR(f.server.reserved(phy::Interface::bluetooth).bps(), before.bps() / 2.0, 1.0);
    EXPECT_EQ(f.server.client_count(), 1u);
    EXPECT_THROW((void)f.server.report(a.id()), ContractViolation);
}

TEST(LifecycleTest, DepartureMidStreamIsSafe) {
    LifecycleFixture f;
    HotspotClient& a = f.make_client();
    HotspotClient& b = f.make_client();
    ASSERT_TRUE(f.server.try_register(a));
    ASSERT_TRUE(f.server.try_register(b));
    for (auto& c : f.clients) {
        f.server.set_stored_content(c->id(), true);
        c->start();
    }
    f.server.start();
    f.sim.run_until(Time::from_seconds(20));
    f.server.unregister_client(a.id());
    // Ingest for the departed client must not resurrect it.
    auto sink = f.server.ingest_sink(b.id());
    sink(DataSize::from_bytes(100));
    f.sim.run_until(Time::from_seconds(60));
    EXPECT_EQ(f.server.client_count(), 1u);
    // The survivor streams on, unharmed.
    EXPECT_EQ(b.playout().underruns(), 0u);
    EXPECT_GT(f.server.report(b.id()).bursts, 10u);
}

TEST(LifecycleTest, FreedCapacityAdmitsNewcomer) {
    ServerConfig cfg;
    LifecycleFixture f;
    // Fill the Bluetooth capacity (4 x 153.6 kb/s fits in 650 kb/s).
    std::vector<ClientId> ids;
    for (int i = 0; i < 4; ++i) {
        HotspotClient& c = f.make_client();
        ASSERT_TRUE(f.server.try_register(c));
        ids.push_back(c.id());
    }
    HotspotClient& fifth = f.make_client();
    EXPECT_FALSE(f.server.try_register(fifth));
    f.server.unregister_client(ids[0]);
    EXPECT_TRUE(f.server.try_register(fifth));
}

TEST(DecisionLogTest, RecordsPlannedBursts) {
    LifecycleFixture f;
    HotspotClient& c = f.make_client();
    ASSERT_TRUE(f.server.try_register(c));
    f.server.set_stored_content(c.id(), true);
    c.start();
    f.server.start();
    f.sim.run_until(Time::from_seconds(30));
    ASSERT_FALSE(f.server.decisions().empty());
    for (const auto& d : f.server.decisions()) {
        EXPECT_EQ(d.client, c.id());
        EXPECT_EQ(d.interface, phy::Interface::bluetooth);
        EXPECT_GT(d.size.bytes(), 0);
        EXPECT_GE(d.deadline, d.at);
    }
    // Newest last.
    EXPECT_GT(f.server.decisions().back().at, f.server.decisions().front().at);
}

TEST(MixedWorkloadTest, VideoGoesToWlanAudioToBt) {
    StreamConfig config;
    config.clients = 0;  // ignored by the mixed runner
    config.duration = Time::from_seconds(60);
    MixedWorkload mix;
    mix.mp3_clients = 2;
    mix.video_clients = 1;
    mix.web_clients = 1;

    std::size_t video_channel = 99, mp3_channel = 99;
    HotspotConfig options;
    options.inspect = [&](sim::Simulator&, HotspotServer& server,
                          std::vector<HotspotClient*>&) {
        mp3_channel = server.report(1).current_channel;     // first MP3 client
        video_channel = server.report(3).current_channel;   // the video client
    };
    const auto result = SimBackend{}.run(ScenarioSpec::hotspot_mixed()
                                             .with_stream(config)
                                             .with_hotspot(options)
                                             .with_mix(mix));

    ASSERT_EQ(result.clients.size(), 4u);
    // Channel 0 = WLAN, channel 1 = BT (registration order in the builder).
    EXPECT_EQ(mp3_channel, 1u);    // audio rides Bluetooth
    EXPECT_EQ(video_channel, 0u);  // 600 kb/s VBR needs WLAN
    // Streaming clients hold QoS.
    EXPECT_DOUBLE_EQ(result.clients[0].qos, 1.0);
    EXPECT_DOUBLE_EQ(result.clients[1].qos, 1.0);
    EXPECT_GT(result.clients[2].qos, 0.98);  // video: rare VBR jitter allowed
    // Web client received nearly everything that was generated for it.
    EXPECT_GT(result.clients[3].qos, 0.80);
    // Video client pays more than audio clients (WLAN bursts), but far
    // less than an always-on WLAN NIC.
    EXPECT_GT(result.clients[2].wnic_average.watts(),
              result.clients[0].wnic_average.watts());
    EXPECT_LT(result.clients[2].wnic_average.watts(), 0.5);
}

TEST(MixedWorkloadTest, AllClientsFarBelowAlwaysOn) {
    StreamConfig config;
    config.duration = Time::from_seconds(60);
    const auto result =
        SimBackend{}.run(ScenarioSpec::hotspot_mixed().with_stream(config));
    for (const auto& c : result.clients) {
        EXPECT_LT(c.wnic_average.watts(), 0.45);  // vs 0.84 W always-on WLAN
    }
}

}  // namespace
}  // namespace wlanps::core
