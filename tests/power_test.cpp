/// Unit tests for power units, state machines, meters, batteries, and the
/// analytic duty-cycle model.

#include <gtest/gtest.h>

#include "power/battery.hpp"
#include "power/duty_cycle.hpp"
#include "power/energy_meter.hpp"
#include "power/state_machine.hpp"
#include "sim/units.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps::power {
namespace {

using namespace time_literals;

TEST(PowerUnitsTest, Conversions) {
    EXPECT_DOUBLE_EQ(Power::from_milliwatts(1500).watts(), 1.5);
    EXPECT_DOUBLE_EQ(Power::from_watts(0.045).milliwatts(), 45.0);
    EXPECT_DOUBLE_EQ(Energy::from_millijoules(2500).joules(), 2.5);
}

TEST(PowerUnitsTest, PowerOverTimeIsEnergy) {
    const Energy e = Power::from_watts(2.0).over(3_s);
    EXPECT_DOUBLE_EQ(e.joules(), 6.0);
    EXPECT_DOUBLE_EQ(e.average_over(3_s).watts(), 2.0);
}

TEST(PowerUnitsTest, BatteryCapacityFromMah) {
    // 1400 mAh at 3.7 V = 1.4 * 3600 * 3.7 J = 18648 J.
    EXPECT_NEAR(Energy::from_mah(1400, 3.7).joules(), 18648.0, 1.0);
}

TEST(PowerModelTest, StateRegistration) {
    PowerModel m;
    const StateId off = m.add_state("off", Power::zero());
    const StateId on = m.add_state("on", Power::from_watts(1.0));
    EXPECT_EQ(m.state_count(), 2u);
    EXPECT_EQ(m.state_name(on), "on");
    EXPECT_EQ(m.state_by_name("off"), off);
    EXPECT_THROW((void)m.state_by_name("bogus"), ContractViolation);
}

TEST(PowerModelTest, UnregisteredTransitionIsFree) {
    PowerModel m;
    const StateId a = m.add_state("a", Power::zero());
    const StateId b = m.add_state("b", Power::zero());
    const auto t = m.transition(a, b);
    EXPECT_TRUE(t.latency.is_zero());
    EXPECT_TRUE(t.energy.is_zero());
}

TEST(PowerModelTest, TransitionOverwrite) {
    PowerModel m;
    const StateId a = m.add_state("a", Power::zero());
    const StateId b = m.add_state("b", Power::zero());
    m.add_transition(a, b, 1_ms, Energy::from_joules(1.0));
    m.add_transition(a, b, 2_ms, Energy::from_joules(2.0));
    EXPECT_EQ(m.transition(a, b).latency, 2_ms);
}

namespace {
/// A 2-state device: off (0 W) <-> on (1 W), 100 ms / 0.05 J transitions.
struct TwoState {
    PowerModel model;
    StateId off, on;
    TwoState() {
        off = model.add_state("off", Power::zero());
        on = model.add_state("on", Power::from_watts(1.0));
        model.add_transition(off, on, 100_ms, Energy::from_joules(0.05));
        model.add_transition(on, off, 100_ms, Energy::from_joules(0.05));
    }
};
}  // namespace

TEST(PowerStateMachineTest, StableStateEnergy) {
    sim::Simulator sim;
    TwoState d;
    PowerStateMachine machine(sim, d.model, d.on);
    sim.run_until(10_s);
    EXPECT_NEAR(machine.energy_consumed().joules(), 10.0, 1e-9);
    EXPECT_NEAR(machine.average_power().watts(), 1.0, 1e-9);
    EXPECT_EQ(machine.residency(d.on), 10_s);
}

TEST(PowerStateMachineTest, TimedTransitionCompletesWithLatencyAndEnergy) {
    sim::Simulator sim;
    TwoState d;
    PowerStateMachine machine(sim, d.model, d.off);
    bool done = false;
    machine.request(d.on, [&] { done = true; });
    EXPECT_TRUE(machine.transitioning());
    EXPECT_EQ(machine.transition_target(), d.on);
    sim.run_until(100_ms);
    EXPECT_TRUE(done);
    EXPECT_FALSE(machine.transitioning());
    EXPECT_EQ(machine.state(), d.on);
    // Exactly the transition energy so far.
    EXPECT_NEAR(machine.energy_consumed().joules(), 0.05, 1e-9);
}

TEST(PowerStateMachineTest, RequestCurrentStateFiresImmediately) {
    sim::Simulator sim;
    TwoState d;
    PowerStateMachine machine(sim, d.model, d.on);
    bool done = false;
    machine.request(d.on, [&] { done = true; });
    EXPECT_TRUE(done);
}

TEST(PowerStateMachineTest, QueuedRequestRunsAfterInFlight) {
    sim::Simulator sim;
    TwoState d;
    PowerStateMachine machine(sim, d.model, d.off);
    machine.request(d.on);
    bool back_off = false;
    machine.request(d.off, [&] { back_off = true; });  // queued
    sim.run_until(100_ms);
    EXPECT_EQ(machine.state(), d.on);  // reached on first
    sim.run_until(200_ms);
    EXPECT_TRUE(back_off);
    EXPECT_EQ(machine.state(), d.off);
    EXPECT_EQ(machine.entries(d.on), 1u);
    EXPECT_EQ(machine.entries(d.off), 2u);  // initial + return
}

TEST(PowerStateMachineTest, LatestQueuedRequestWins) {
    sim::Simulator sim;
    TwoState d;
    PowerStateMachine machine(sim, d.model, d.off);
    machine.request(d.on);
    machine.request(d.off);
    machine.request(d.on);  // supersedes the queued off
    sim.run_until(1_s);
    EXPECT_EQ(machine.state(), d.on);
}

TEST(PowerStateMachineTest, DutyCycleAveragePower) {
    sim::Simulator sim;
    TwoState d;
    PowerStateMachine machine(sim, d.model, d.off);
    // 1 s on, 1 s off, repeated; transitions 100 ms / 0.05 J each.
    std::function<void()> cycle = [&] {
        machine.request(d.on, [&] {
            sim.schedule_in(1_s, [&] {
                machine.request(d.off, [&] { sim.schedule_in(1_s, cycle); });
            });
        });
    };
    cycle();
    sim.run_until(22_s);
    // Analytic check via DutyCycleModel: period 2.2 s = 0.1 (rise) + 1.0 (on)
    // + 0.1 (fall) + 1.0 (off), energy 0.05 + 1.0 + 0.05.
    DutyCycleModel analytic;
    analytic.add_phase(Power::from_watts(1.0), 1_s);
    analytic.add_phase(Power::zero(), 1_s);
    analytic.add_phase(Power::zero(), 200_ms);  // transition time, energy below
    analytic.add_fixed_energy(Energy::from_joules(0.10));
    EXPECT_NEAR(machine.average_power().watts(), analytic.average_power().watts(), 0.01);
}

TEST(PowerStateMachineTest, TraceMirrorsTransitions) {
    sim::Simulator sim;
    TwoState d;
    PowerStateMachine machine(sim, d.model, d.off);
    sim::TimelineTrace trace;
    machine.attach_trace(&trace);
    machine.request(d.on);
    sim.run_until(1_s);
    trace.finish(sim.now());
    // Expect: off->on transition span, then "on" span.
    ASSERT_GE(trace.spans().size(), 2u);
    EXPECT_EQ(trace.spans().back().label, "on");
    EXPECT_DOUBLE_EQ(trace.spans().back().level, 1.0);
}

TEST(EnergyMeterTest, ConstantAndMachineSources) {
    sim::Simulator sim;
    EnergyMeter meter(sim);
    meter.add_constant("base", Power::from_watts(1.3));
    TwoState d;
    PowerStateMachine machine(sim, d.model, d.on);
    meter.add_machine("nic", machine);
    sim.run_until(10_s);
    EXPECT_NEAR(meter.energy("base").joules(), 13.0, 1e-9);
    EXPECT_NEAR(meter.energy("nic").joules(), 10.0, 1e-9);
    EXPECT_NEAR(meter.total_energy().joules(), 23.0, 1e-9);
    EXPECT_NEAR(meter.average_power().watts(), 2.3, 1e-9);
    EXPECT_NEAR(meter.average_power("base").watts(), 1.3, 1e-9);
}

TEST(EnergyMeterTest, BreakdownOrderAndDuplicates) {
    sim::Simulator sim;
    EnergyMeter meter(sim);
    meter.add_constant("a", Power::from_watts(1.0));
    meter.add_constant("b", Power::from_watts(2.0));
    EXPECT_THROW(meter.add_constant("a", Power::zero()), ContractViolation);
    sim.run_until(1_s);
    const auto rows = meter.breakdown();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "a");
    EXPECT_EQ(rows[1].name, "b");
    EXPECT_THROW((void)meter.energy("zzz"), ContractViolation);
}

TEST(BatteryTest, LinearDrainAndLevel) {
    BatteryConfig cfg;
    cfg.capacity = Energy::from_joules(100.0);
    cfg.rate_exponent = 0.0;
    Battery battery(cfg);
    battery.drain(Energy::from_joules(25.0), Power::from_watts(1.0));
    EXPECT_NEAR(battery.level(), 0.75, 1e-9);
    EXPECT_FALSE(battery.empty());
}

TEST(BatteryTest, ClampsAtEmpty) {
    BatteryConfig cfg;
    cfg.capacity = Energy::from_joules(10.0);
    Battery battery(cfg);
    battery.drain(Energy::from_joules(1000.0), Power::from_watts(1.0));
    EXPECT_TRUE(battery.empty());
    EXPECT_DOUBLE_EQ(battery.level(), 0.0);
}

TEST(BatteryTest, RateCapacityEffectPenalizesHighDraw) {
    BatteryConfig cfg;
    cfg.capacity = Energy::from_joules(100.0);
    cfg.nominal_draw = Power::from_watts(1.0);
    cfg.rate_exponent = 0.2;
    Battery slow(cfg), fast(cfg);
    slow.drain(Energy::from_joules(10.0), Power::from_watts(1.0));
    fast.drain(Energy::from_joules(10.0), Power::from_watts(4.0));
    EXPECT_GT(slow.level(), fast.level());
    // Below nominal draw there is no penalty.
    Battery gentle(cfg);
    gentle.drain(Energy::from_joules(10.0), Power::from_watts(0.5));
    EXPECT_DOUBLE_EQ(gentle.level(), slow.level());
}

TEST(BatteryTest, LowLevelWatcherFiresOnce) {
    BatteryConfig cfg;
    cfg.capacity = Energy::from_joules(100.0);
    cfg.rate_exponent = 0.0;
    Battery battery(cfg);
    int fires = 0;
    battery.on_level_below(0.5, [&] { ++fires; });
    battery.drain(Energy::from_joules(40.0), Power::from_watts(1.0));
    EXPECT_EQ(fires, 0);
    battery.drain(Energy::from_joules(20.0), Power::from_watts(1.0));
    EXPECT_EQ(fires, 1);
    battery.drain(Energy::from_joules(20.0), Power::from_watts(1.0));
    EXPECT_EQ(fires, 1);  // fired once only
}

TEST(BatteryTest, LifetimeProjection) {
    BatteryConfig cfg;
    cfg.capacity = Energy::from_joules(3600.0);
    cfg.rate_exponent = 0.0;
    Battery battery(cfg);
    EXPECT_NEAR(battery.lifetime_at(Power::from_watts(1.0)).to_seconds(), 3600.0, 1.0);
}

TEST(DutyCycleModelTest, MatchesHandComputation) {
    DutyCycleModel m;
    m.add_phase(Power::from_watts(1.0), 100_ms);  // burst
    m.add_phase(Power::from_milliwatts(10), 900_ms);  // sleep
    m.add_fixed_energy(Energy::from_millijoules(5));
    EXPECT_EQ(m.period(), 1_s);
    // E = 0.1 + 0.009 + 0.005 = 0.114 J per 1 s.
    EXPECT_NEAR(m.average_power().watts(), 0.114, 1e-9);
}

TEST(DutyCycleModelTest, EmptyThrows) {
    DutyCycleModel m;
    EXPECT_THROW((void)m.average_power(), ContractViolation);
}

}  // namespace
}  // namespace wlanps::power
