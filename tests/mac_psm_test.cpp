/// Tests for 802.11 PSM: beacons, TIM, PS-Poll retrieval, doze accounting,
/// aggregation.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "mac/access_point.hpp"
#include "mac/bss.hpp"
#include "mac/station.hpp"
#include "sim/simulator.hpp"
#include "traffic/source.hpp"

namespace wlanps::mac {
namespace {

using namespace time_literals;

struct PsmWorld {
    sim::Simulator sim;
    sim::Random root{7};
    Bss bss{sim};
    std::unique_ptr<AccessPoint> ap;
    std::vector<std::unique_ptr<WlanStation>> stations;

    explicit PsmWorld(int n_stations, int listen_interval = 1, int aggregate_limit = 1) {
        AccessPointConfig cfg;
        cfg.mode = ApMode::psm;
        cfg.aggregate_limit = aggregate_limit;
        ap = std::make_unique<AccessPoint>(sim, bss, cfg, DcfConfig{}, root.fork(1));
        for (int i = 0; i < n_stations; ++i) {
            StationConfig st;
            st.mode = StationMode::psm;
            st.listen_interval = listen_interval;
            stations.push_back(std::make_unique<WlanStation>(
                sim, bss, static_cast<StationId>(i + 1), st, DcfConfig{}, phy::WlanNicConfig{},
                root.fork(static_cast<std::uint64_t>(10 + i))));
        }
    }

    void start() {
        ap->start();
        for (auto& s : stations) {
            s->start(ap->config().beacon_interval, ap->config().beacon_interval);
        }
    }
};

TEST(PsmTest, BeaconsAreSentOnSchedule) {
    PsmWorld w(1);
    w.start();
    w.sim.run_until(Time::from_seconds(1.1));
    // Beacon interval 102.4 ms -> 10 beacons within 1.1 s.
    EXPECT_EQ(w.ap->beacons_sent(), 10u);
    EXPECT_GE(w.stations[0]->beacons_heard(), 9u);  // the station catches them
}

TEST(PsmTest, IdleStationDozesBetweenBeacons) {
    PsmWorld w(1);
    w.start();
    w.sim.run_until(Time::from_seconds(10));
    // No traffic: station should spend the overwhelming majority dozing.
    const Time doze = w.stations[0]->wlan_nic().residency(phy::WlanNic::State::doze);
    EXPECT_GT(doze / Time::from_seconds(10), 0.90);
    // Power is far below idle.
    EXPECT_LT(w.stations[0]->average_power().watts(), 0.15);
}

TEST(PsmTest, BufferedFrameIsRetrievedViaPoll) {
    PsmWorld w(1);
    w.start();
    w.sim.run_until(50_ms);  // between beacons; station dozing
    bool delivered = false;
    w.ap->send(1, DataSize::from_bytes(1000), [&](bool ok) { delivered = ok; });
    EXPECT_EQ(w.ap->buffered(1), 1u);
    w.sim.run_until(Time::from_seconds(1));
    EXPECT_TRUE(delivered);
    EXPECT_EQ(w.ap->buffered(1), 0u);
    EXPECT_EQ(w.stations[0]->frames_received(), 1u);
    EXPECT_GE(w.stations[0]->polls_sent(), 1u);
}

TEST(PsmTest, MoreDataBitDrainsWholeBuffer) {
    PsmWorld w(1);
    w.start();
    w.sim.run_until(50_ms);
    int delivered = 0;
    for (int i = 0; i < 5; ++i) {
        w.ap->send(1, DataSize::from_bytes(400), [&](bool ok) { delivered += ok; });
    }
    w.sim.run_until(Time::from_seconds(1));
    EXPECT_EQ(delivered, 5);
    EXPECT_EQ(w.stations[0]->frames_received(), 5u);
    // All five retrieved in the same beacon interval via chained polls.
    EXPECT_GE(w.stations[0]->polls_sent(), 5u);
}

TEST(PsmTest, DeliveryLatencyIsBoundedByBeaconInterval) {
    PsmWorld w(1);
    w.start();
    w.sim.run_until(30_ms);
    w.ap->send(1, DataSize::from_bytes(500));
    w.sim.run_until(Time::from_seconds(1));
    ASSERT_EQ(w.stations[0]->delivery_latency().count(), 1u);
    // Queued right after a beacon: waits for the next one (~72 ms away).
    EXPECT_LT(w.stations[0]->delivery_latency().mean(), 0.15);
    EXPECT_GT(w.stations[0]->delivery_latency().mean(), 0.05);
}

TEST(PsmTest, ListenIntervalSkipsBeaconsAndRaisesLatency) {
    PsmWorld w1(1, /*listen_interval=*/1);
    PsmWorld w5(1, /*listen_interval=*/5);
    for (PsmWorld* w : {&w1, &w5}) {
        w->start();
        // Generate identical Poisson-ish traffic.
        auto src = std::make_unique<traffic::PoissonSource>(
            w->sim, [ap = w->ap.get()](DataSize s) { ap->send(1, s); },
            DataSize::from_bytes(800), Rate::from_kbps(32), w->root.fork(77));
        src->start();
        w->sim.run_until(Time::from_seconds(30));
        src->stop();
    }
    // Fewer wakeups -> fewer beacons heard, lower power, higher latency.
    EXPECT_LT(w5.stations[0]->beacons_heard(), w1.stations[0]->beacons_heard() / 3);
    EXPECT_LT(w5.stations[0]->average_power().watts(),
              w1.stations[0]->average_power().watts());
    EXPECT_GT(w5.stations[0]->delivery_latency().mean(),
              w1.stations[0]->delivery_latency().mean() * 2);
}

TEST(PsmTest, TimNamesOnlyBufferedStations) {
    PsmWorld w(2);
    w.start();
    std::vector<std::set<StationId>> tims;
    w.ap->on_beacon([&](const std::set<StationId>& tim) { tims.push_back(tim); });
    w.sim.run_until(150_ms);  // after first beacon (empty TIM)
    w.ap->send(2, DataSize::from_bytes(100));
    w.sim.run_until(250_ms);  // second beacon advertises station 2
    ASSERT_GE(tims.size(), 2u);
    EXPECT_TRUE(tims[0].empty());
    EXPECT_EQ(tims[1], std::set<StationId>{2});
}

TEST(PsmTest, AggregationReducesPollsAndEnergy) {
    PsmWorld plain(1, 1, /*aggregate_limit=*/1);
    PsmWorld agg(1, 1, /*aggregate_limit=*/8);
    for (PsmWorld* w : {&plain, &agg}) {
        w->start();
        auto src = std::make_unique<traffic::Mp3Source>(
            w->sim, [ap = w->ap.get()](DataSize s) { ap->send(1, s); });
        src->start();
        w->sim.run_until(Time::from_seconds(30));
        src->stop();
    }
    EXPECT_EQ(plain.stations[0]->bytes_received(), agg.stations[0]->bytes_received());
    EXPECT_LT(agg.stations[0]->polls_sent(), plain.stations[0]->polls_sent() / 2);
    EXPECT_LT(agg.stations[0]->average_power().watts(),
              plain.stations[0]->average_power().watts());
}

TEST(PsmTest, ThreeClientsAllServed) {
    PsmWorld w(3);
    w.start();
    std::vector<std::unique_ptr<traffic::Mp3Source>> sources;
    for (int i = 0; i < 3; ++i) {
        const auto id = static_cast<StationId>(i + 1);
        sources.push_back(std::make_unique<traffic::Mp3Source>(
            w.sim, [ap = w.ap.get(), id](DataSize s) { ap->send(id, s); }));
        sources.back()->start();
    }
    w.sim.run_until(Time::from_seconds(30));
    for (int i = 0; i < 3; ++i) {
        // ~38 frames/s for 30 s; nearly all must arrive.
        EXPECT_GT(w.stations[static_cast<std::size_t>(i)]->frames_received(), 1000u);
        EXPECT_LT(w.stations[static_cast<std::size_t>(i)]->average_power().watts(), 0.4);
    }
}

TEST(PsmTest, CamApDeliversImmediatelyToPsmStationOnlyWhenAwake) {
    // Mixed mode sanity: a PSM station attached to a CAM AP misses frames
    // sent while dozing (they are retried and eventually dropped).
    sim::Simulator sim;
    sim::Random root(3);
    Bss bss(sim);
    AccessPointConfig cfg;
    cfg.mode = ApMode::cam;
    DcfConfig dcf;
    dcf.retry_limit = 1;  // deterministic: one attempt, before any wakeup
    AccessPoint ap(sim, bss, cfg, dcf, root.fork(1));
    StationConfig st;
    st.mode = StationMode::psm;
    WlanStation station(sim, bss, 1, st, DcfConfig{}, phy::WlanNicConfig{}, root.fork(2));
    ap.start();
    station.start(cfg.beacon_interval, cfg.beacon_interval);
    sim.run_until(50_ms);  // dozing between beacons
    bool delivered = true;
    ap.send(1, DataSize::from_bytes(500), [&](bool ok) { delivered = ok; });
    sim.run_until(80_ms);
    EXPECT_FALSE(delivered);
}

}  // namespace
}  // namespace wlanps::mac
