/// Tests for the pluggable power-policy subsystem (src/policy): policy
/// selection/parsing, μNap break-even math and nav_sleep reallocation,
/// PAMAS battery-driven stretching, adapter equivalence with the native
/// scenarios, per-policy fault whitelists, and exact ledger attribution.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/backend.hpp"
#include "core/scenario_spec.hpp"
#include "fault/fault.hpp"
#include "obs/energy_ledger.hpp"
#include "phy/calibration.hpp"
#include "phy/wlan_nic.hpp"
#include "policy/micro_nap.hpp"
#include "policy/pamas_policy.hpp"
#include "policy/policy.hpp"
#include "policy/world.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps {
namespace {

namespace cal = phy::calibration;

const core::SimBackend backend;

core::ScenarioSpec policy_spec(policy::PowerPolicyConfig power, int clients = 2,
                               Time duration = Time::from_seconds(15)) {
    return core::ScenarioSpec::cam()
        .with_power_policy(std::move(power))
        .with_clients(clients)
        .with_duration(duration);
}

// --- selection & parsing -----------------------------------------------

TEST(PowerPolicySelectionTest, ParseRoundTripsEveryName) {
    const policy::PolicyKind kinds[] = {
        policy::PolicyKind::cam, policy::PolicyKind::psm, policy::PolicyKind::ecmac,
        policy::PolicyKind::micro_nap, policy::PolicyKind::pamas};
    for (const auto kind : kinds) {
        EXPECT_EQ(policy::parse_power_policy(policy::to_string(kind)), kind);
    }
    // CLI-friendly aliases.
    EXPECT_EQ(policy::parse_power_policy("micro-nap"), policy::PolicyKind::micro_nap);
    EXPECT_EQ(policy::parse_power_policy("ec-mac"), policy::PolicyKind::ecmac);
}

TEST(PowerPolicySelectionTest, ParseRejectsUnknownNameListingValidOnes) {
    try {
        (void)policy::parse_power_policy("warp-core");
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("warp-core"), std::string::npos);
        EXPECT_NE(what.find("micro_nap"), std::string::npos);
        EXPECT_NE(what.find("pamas"), std::string::npos);
    }
}

TEST(PowerPolicySelectionTest, LabelsFollowTheSelectedKind) {
    using policy::PolicyKind;
    using policy::PowerPolicyConfig;
    EXPECT_EQ(policy_spec(PowerPolicyConfig::of(PolicyKind::cam)).label(), "wlan-cam");
    EXPECT_EQ(policy_spec(PowerPolicyConfig::of(PolicyKind::psm)).label(), "wlan-psm");
    EXPECT_EQ(policy_spec(PowerPolicyConfig::of(PolicyKind::ecmac)).label(), "ec-mac");
    EXPECT_EQ(policy_spec(PowerPolicyConfig::of(PolicyKind::micro_nap)).label(),
              "micro-nap");
    EXPECT_EQ(policy_spec(PowerPolicyConfig::of(PolicyKind::pamas)).label(), "pamas");
}

TEST(PowerPolicySelectionTest, PowerPolicyRidesTheCamBaseOnly) {
    const auto spec = core::ScenarioSpec::psm().with_power_policy(
        policy::PowerPolicyConfig::of(policy::PolicyKind::micro_nap));
    EXPECT_THROW(spec.validate(), ContractViolation);
}

// --- μNap break-even math ----------------------------------------------

TEST(MicroNapTest, BreakEvenGapMatchesNapCostTable) {
    sim::Simulator sim;
    phy::WlanNicConfig config;
    phy::WlanNic nic(sim, config);
    policy::MicroNapPolicy policy;
    policy.attach(sim, nic);

    // g* = max(round_trip + 2·guard,
    //          (E_trans − P_nap·t_trans) / (P_idle − P_nap))
    const phy::NapCostTable nap = config.nap;
    const double energy_term =
        (nap.round_trip_energy().joules() -
         config.doze.watts() * nap.round_trip().to_seconds()) /
        (config.idle.watts() - config.doze.watts());
    const Time fit_floor =
        nap.round_trip() + Time::from_us(20) + Time::from_us(20);
    const Time expected = std::max(fit_floor, Time::from_seconds(energy_term));
    EXPECT_EQ(policy.break_even_gap(), expected);

    // The default table must leave an MP3 exchange's NAV span (~780 µs)
    // worth napping through, or the whole policy is a no-op.
    EXPECT_LT(policy.break_even_gap(), Time::from_us(780));
}

TEST(MicroNapTest, AttachRejectsVulnerableWakeMargin) {
    sim::Simulator sim;
    phy::WlanNicConfig config;
    config.nap.wake_latency = Time::from_us(4);  // + 10µs guard < one 20µs slot
    phy::WlanNic nic(sim, config);
    policy::MicroNapConfig mc;
    mc.guard = Time::from_us(10);
    policy::MicroNapPolicy policy(mc);
    EXPECT_THROW(policy.attach(sim, nic), ContractViolation);
}

// --- μNap end-to-end: idle_listen -> nav_sleep reallocation -------------

TEST(MicroNapTest, ReallocatesIdleListenIntoNavSleep) {
    const Time duration = Time::from_seconds(15);

    obs::EnergyLedger cam_ledger;
    core::ScenarioResult cam;
    {
        obs::ScopedEnergyLedger scope(cam_ledger);
        cam = backend.run(
            policy_spec(policy::PowerPolicyConfig::of(policy::PolicyKind::cam), 2,
                        duration),
            42);
    }

    obs::EnergyLedger nap_ledger;
    core::ScenarioResult nap;
    {
        obs::ScopedEnergyLedger scope(nap_ledger);
        nap = backend.run(
            policy_spec(policy::PowerPolicyConfig::of(policy::PolicyKind::micro_nap), 2,
                        duration),
            42);
    }

    // Sleep energy appears, idle listening shrinks, and the total drops —
    // all without costing playout QoS.
    EXPECT_GT(nap_ledger.cause_total(obs::EnergyCause::nav_sleep), 0.0);
    EXPECT_LT(nap_ledger.cause_total(obs::EnergyCause::idle_listen),
              cam_ledger.cause_total(obs::EnergyCause::idle_listen));
    EXPECT_LT(nap.mean_wnic().watts(), cam.mean_wnic().watts());
    EXPECT_GE(nap.min_qos(), 0.99);
    EXPECT_GT(nap.clients.size(), 0u);
    for (const auto& client : nap.clients) {
        EXPECT_GT(client.received.bytes(), 0);
    }
}

TEST(PolicyLedgerTest, ReconcilesAgainstAggregateNicEnergy) {
    const policy::PolicyKind kinds[] = {policy::PolicyKind::micro_nap,
                                        policy::PolicyKind::pamas};
    for (const auto kind : kinds) {
        obs::EnergyLedger ledger;
        double aggregate_j = 0.0;
        {
            obs::ScopedEnergyLedger scope(ledger);
            const auto result = backend.run(
                policy_spec(policy::PowerPolicyConfig::of(kind), 2,
                            Time::from_seconds(10)),
                42);
            for (const auto& client : result.clients) {
                aggregate_j += client.wnic_energy.joules();
            }
        }
        EXPECT_LT(std::fabs(ledger.total() - aggregate_j), 1e-9)
            << "policy " << policy::to_string(kind);
    }
}

// --- μNap world diagnostics (naps fire, uplink exercises backoff) -------

TEST(MicroNapTest, WorldCountsNapsAndServesUplink) {
    sim::Simulator sim;
    policy::PolicyWorldConfig wc;
    wc.clients = 2;
    wc.seed = 7;
    wc.policy = policy::PowerPolicyConfig::of(policy::PolicyKind::micro_nap)
                    .with_uplink(Time::from_ms(200), DataSize::from_bytes(200));
    policy::PolicyBssWorld world(sim, wc, nullptr);
    world.start();
    sim.run_until(Time::from_seconds(10));
    world.settle();

    for (int i = 0; i < wc.clients; ++i) {
        auto& policy = dynamic_cast<policy::MicroNapPolicy&>(world.policy(i));
        EXPECT_GT(policy.naps(), 0u) << "station " << i;
        EXPECT_GT(policy.napped(), Time::zero()) << "station " << i;
        EXPECT_FALSE(policy.napping()) << "station " << i;
        EXPECT_GT(world.station(i).frames_received(), 0u) << "station " << i;
        EXPECT_GT(world.station(i).bytes_sent().bytes(), 0) << "station " << i;
        EXPECT_EQ(world.station(i).battery(), nullptr);  // listen-mode: no pack
    }
}

// --- PAMAS: battery-driven stretch --------------------------------------

TEST(PamasTest, StretchFollowsThresholdTable) {
    policy::PamasPolicy policy{policy::PamasPolicyConfig{}};
    const Time base = policy.config().base_period;

    EXPECT_DOUBLE_EQ(policy.current_stretch(), 1.0);  // full battery
    EXPECT_EQ(policy.sleep_quantum(), base);

    policy.on_battery_level(0.6);
    EXPECT_DOUBLE_EQ(policy.current_stretch(), 2.0);
    policy.on_battery_level(0.3);
    EXPECT_DOUBLE_EQ(policy.current_stretch(), 4.0);
    policy.on_battery_level(0.1);
    EXPECT_DOUBLE_EQ(policy.current_stretch(), 8.0);
    EXPECT_EQ(policy.sleep_quantum(),
              Time::from_seconds(base.to_seconds() * 8.0));
}

TEST(PamasTest, ConfigValidateRejectsMalformedTables) {
    policy::PamasPolicyConfig ascending;
    ascending.thresholds = {{0.25, 4.0}, {0.75, 1.0}, {0.0, 8.0}};
    EXPECT_THROW(ascending.validate(), ContractViolation);

    policy::PamasPolicyConfig shrink;
    shrink.thresholds = {{0.75, 4.0}, {0.50, 2.0}, {0.0, 8.0}};  // stretch drops
    EXPECT_THROW(shrink.validate(), ContractViolation);

    policy::PamasPolicyConfig uncovered;
    uncovered.thresholds = {{0.75, 1.0}, {0.50, 2.0}};  // no level-0 row
    EXPECT_THROW(uncovered.validate(), ContractViolation);

    policy::PamasPolicyConfig sub_unity;
    sub_unity.thresholds = {{0.5, 0.5}, {0.0, 8.0}};
    EXPECT_THROW(sub_unity.validate(), ContractViolation);
}

TEST(PamasTest, WorldDrainsBatteryWhileDutyCycling) {
    sim::Simulator sim;
    policy::PolicyWorldConfig wc;
    wc.clients = 1;
    wc.seed = 11;
    wc.policy = policy::PowerPolicyConfig::of(policy::PolicyKind::pamas);
    policy::PolicyBssWorld world(sim, wc, nullptr);
    world.start();
    sim.run_until(Time::from_seconds(20));
    world.settle();

    auto& station = world.station(0);
    ASSERT_NE(station.battery(), nullptr);
    EXPECT_LT(station.battery()->level(), 1.0);
    EXPECT_GT(station.cycles(), 0u);
    EXPECT_GT(station.frames_received(), 0u);
    // Duty cycling must beat always-on listening on average power.
    EXPECT_LT(station.average_power().watts(), cal::kWlanIdle.watts());
}

// --- adapters match the native scenarios --------------------------------

TEST(PolicyAdapterTest, PsmAdapterIsBitIdenticalToNativePsm) {
    const Time duration = Time::from_seconds(10);
    const auto native = backend.run(
        core::ScenarioSpec::psm().with_clients(2).with_duration(duration), 42);
    const auto adapted = backend.run(
        policy_spec(policy::PowerPolicyConfig::of(policy::PolicyKind::psm), 2,
                    duration),
        42);

    EXPECT_EQ(adapted.label, native.label);
    ASSERT_EQ(adapted.clients.size(), native.clients.size());
    for (std::size_t i = 0; i < native.clients.size(); ++i) {
        EXPECT_DOUBLE_EQ(adapted.clients[i].wnic_energy.joules(),
                         native.clients[i].wnic_energy.joules());
        EXPECT_DOUBLE_EQ(adapted.clients[i].qos, native.clients[i].qos);
    }
}

TEST(PolicyAdapterTest, CamAdapterIsBitIdenticalToPlainCam) {
    const Time duration = Time::from_seconds(10);
    const auto native = backend.run(
        core::ScenarioSpec::cam().with_clients(2).with_duration(duration), 42);
    const auto adapted = backend.run(
        policy_spec(policy::PowerPolicyConfig::of(policy::PolicyKind::cam), 2,
                    duration),
        42);

    EXPECT_EQ(adapted.label, native.label);
    ASSERT_EQ(adapted.clients.size(), native.clients.size());
    for (std::size_t i = 0; i < native.clients.size(); ++i) {
        EXPECT_DOUBLE_EQ(adapted.clients[i].wnic_energy.joules(),
                         native.clients[i].wnic_energy.joules());
    }
}

// --- validate(): μNap transition-cost guard (the PR's small fix) --------

TEST(PolicyValidateTest, RejectsNapTableThatCannotAmortizeInsideABeacon) {
    auto spec =
        policy_spec(policy::PowerPolicyConfig::of(policy::PolicyKind::micro_nap));
    core::StreamConfig stream = spec.stream();
    stream.wlan_nic.nap.sleep_latency = Time::from_ms(60);
    stream.wlan_nic.nap.wake_latency = Time::from_ms(50);  // 110ms > 102.4ms beacon
    spec.with_stream(stream);
    try {
        spec.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("beacon interval"), std::string::npos);
        EXPECT_NE(what.find("nap cost table"), std::string::npos);
    }
}

TEST(PolicyValidateTest, RejectsFreeNapTransitions) {
    auto spec =
        policy_spec(policy::PowerPolicyConfig::of(policy::PolicyKind::micro_nap));
    core::StreamConfig stream = spec.stream();
    stream.wlan_nic.nap.sleep_latency = Time::zero();
    spec.with_stream(stream);
    EXPECT_THROW(spec.validate(), ContractViolation);
}

// --- per-policy fault whitelists ----------------------------------------

TEST(PolicyFaultTest, WhitelistsFollowEachPolicysDependencies) {
    using policy::PolicyKind;
    using policy::PowerPolicyConfig;

    // μNap has no PS-Poll dependence: poll_drop is meaningless there.
    fault::FaultPlan polls;
    polls.poll_drop(Time::from_seconds(1), Time::from_seconds(2), 0.5);
    EXPECT_THROW(policy_spec(PowerPolicyConfig::of(PolicyKind::micro_nap))
                     .with_fault_plan(polls)
                     .validate(),
                 ContractViolation);

    // wake_stuck can stretch a backoff-nap resume past the DCF fire: only
    // injectable once backoff naps are off.
    fault::FaultPlan stuck;
    stuck.wake_stuck(Time::from_seconds(1), Time::from_ms(1));
    EXPECT_THROW(policy_spec(PowerPolicyConfig::of(PolicyKind::micro_nap))
                     .with_fault_plan(stuck)
                     .validate(),
                 ContractViolation);
    policy::MicroNapConfig nav_only;
    nav_only.nap_on_backoff = false;
    EXPECT_NO_THROW(
        policy_spec(PowerPolicyConfig::of(PolicyKind::micro_nap).with_micro_nap(nav_only))
            .with_fault_plan(stuck)
            .validate());

    // PAMAS duty-cycles on its own clock; wake_stuck merely delays a cycle.
    EXPECT_NO_THROW(policy_spec(PowerPolicyConfig::of(PolicyKind::pamas))
                        .with_fault_plan(stuck)
                        .validate());

    // The EC-MAC adapter world has no injector wiring at all.
    fault::FaultPlan corrupt;
    corrupt.corruption(Time::from_seconds(1), Time::from_seconds(2), 0.25);
    EXPECT_THROW(policy_spec(PowerPolicyConfig::of(PolicyKind::ecmac))
                     .with_fault_plan(corrupt)
                     .validate(),
                 ContractViolation);
}

TEST(PolicyFaultTest, FaultedMicroNapRunInjectsAndKeepsStreaming) {
    fault::FaultPlan plan;
    plan.corruption(Time::from_seconds(3), Time::from_seconds(4), 0.4);
    const auto result = backend.run(
        policy_spec(policy::PowerPolicyConfig::of(policy::PolicyKind::micro_nap), 2,
                    Time::from_seconds(12))
            .with_fault_plan(plan),
        42);
    EXPECT_GT(result.faults_injected, 0u);
    for (const auto& client : result.clients) {
        EXPECT_GT(client.received.bytes(), 0);
    }
}

}  // namespace
}  // namespace wlanps
