/// \file obs_test.cpp
/// Observability subsystem: histogram bucket geometry and merging, registry
/// key rules, snapshot reduction, JSON/Chrome-trace export goldens, the
/// synchronized logger, and runner-merge determinism across thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "obs/hooks.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "phy/wlan_nic.hpp"
#include "sim/logger.hpp"
#include "sim/simulator.hpp"

#if defined(WLANPS_OBS_ENABLED)
#include "obs/kernel_profile.hpp"
#endif

using namespace wlanps;
using namespace wlanps::time_literals;

// ---- histogram bucket geometry ---------------------------------------------------

TEST(ObsHistogramTest, BucketBoundariesArePowersOfTwoSubdivided) {
    // 1.0 = frexp frac 0.5, exp 1 -> first sub-bucket of the exp=1 octave.
    const std::size_t idx = obs::Histogram::bucket_index(1.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucket_lower(idx), 1.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucket_upper(idx), 1.125);  // 1 + 2/16

    // The octave [1, 2) splits into 8 equal sub-buckets.
    for (int sub = 0; sub < obs::Histogram::kSubBuckets; ++sub) {
        const double lo = 1.0 + 0.125 * sub;
        EXPECT_EQ(obs::Histogram::bucket_index(lo), idx + static_cast<std::size_t>(sub));
    }

    // Bucket edges tile the positive axis with no gaps or overlaps.
    for (std::size_t i = idx - 64; i < idx + 64; ++i) {
        EXPECT_DOUBLE_EQ(obs::Histogram::bucket_upper(i), obs::Histogram::bucket_lower(i + 1));
    }
}

TEST(ObsHistogramTest, RecordLandsOnTheCorrectSideOfABoundary) {
    obs::Histogram h;
    const std::size_t idx = obs::Histogram::bucket_index(2.0);
    h.record(2.0);                            // inclusive lower edge
    h.record(std::nextafter(2.0, 0.0));       // just below -> previous bucket
    EXPECT_EQ(h.bucket_count(idx), 1u);
    EXPECT_EQ(h.bucket_count(idx - 1), 1u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(ObsHistogramTest, NonPositiveSamplesGoToUnderflow) {
    obs::Histogram h;
    h.record(0.0);
    h.record(-3.5);
    h.record(1.0);
    EXPECT_EQ(h.underflow_count(), 2u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), -3.5);
    EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(ObsHistogramTest, PercentilesTrackUniformData) {
    obs::Histogram h;
    for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
    // Log buckets are ~9% wide, so percentile error is bounded by that.
    EXPECT_NEAR(h.percentile(50.0), 500.0, 0.10 * 500.0);
    EXPECT_NEAR(h.percentile(90.0), 900.0, 0.10 * 900.0);
    EXPECT_NEAR(h.percentile(99.0), 990.0, 0.10 * 990.0);
}

TEST(ObsHistogramTest, MergeIsAssociative) {
    // Integer-valued samples: bucket counts and double sums are both exact,
    // so associativity must hold to the bit.
    obs::Histogram a, b, c;
    for (int i = 1; i <= 50; ++i) a.record(static_cast<double>(i));
    for (int i = 30; i <= 90; ++i) b.record(static_cast<double>(i * 3));
    for (int i = 5; i <= 20; ++i) c.record(static_cast<double>(i * 7));

    obs::Histogram left_first = a;   // (a + b) + c
    left_first.merge_from(b);
    left_first.merge_from(c);

    obs::Histogram right_first = b;  // a + (b + c)
    right_first.merge_from(c);
    obs::Histogram result = a;
    result.merge_from(right_first);

    EXPECT_EQ(left_first.count(), result.count());
    EXPECT_DOUBLE_EQ(left_first.sum(), result.sum());
    EXPECT_DOUBLE_EQ(left_first.min(), result.min());
    EXPECT_DOUBLE_EQ(left_first.max(), result.max());
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
        ASSERT_EQ(left_first.bucket_count(i), result.bucket_count(i)) << "bucket " << i;
    }
    EXPECT_DOUBLE_EQ(left_first.percentile(50.0), result.percentile(50.0));
    EXPECT_DOUBLE_EQ(left_first.percentile(99.0), result.percentile(99.0));
}

// ---- registry --------------------------------------------------------------------

TEST(ObsRegistryTest, SameKeyReturnsSameInstrument) {
    obs::MetricsRegistry reg;
    obs::Counter& c1 = reg.counter("x");
    obs::Counter& c2 = reg.counter("x");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(reg.instrument_count(), 1u);
}

TEST(ObsRegistryTest, KeyCollisionAcrossKindsThrows) {
    obs::MetricsRegistry reg;
    reg.counter("key");
    EXPECT_THROW(reg.gauge("key"), ContractViolation);
    EXPECT_THROW(reg.histogram("key"), ContractViolation);
    reg.histogram("h");
    EXPECT_THROW(reg.counter("h"), ContractViolation);
}

TEST(ObsRegistryTest, SnapshotMergeCombinesAndAppends) {
    obs::MetricsRegistry r1;
    r1.counter("shared").add(3);
    r1.histogram("lat").record(10.0);

    obs::MetricsRegistry r2;
    r2.counter("shared").add(4);
    r2.gauge("only2").set(7.5);

    obs::MetricsSnapshot merged = r1.snapshot();
    merged.merge_from(r2.snapshot());
    ASSERT_NE(merged.counter("shared"), nullptr);
    EXPECT_EQ(merged.counter("shared")->value(), 7u);
    ASSERT_NE(merged.histogram("lat"), nullptr);
    EXPECT_EQ(merged.histogram("lat")->count(), 1u);
    ASSERT_NE(merged.gauge("only2"), nullptr);
    EXPECT_DOUBLE_EQ(merged.gauge("only2")->last(), 7.5);
    EXPECT_EQ(merged.size(), 3u);
}

TEST(ObsRegistryTest, GaugeTracksLastAndExtrema) {
    obs::Gauge g;
    g.set(5.0);
    g.set(1.0);
    g.set(3.0);
    EXPECT_DOUBLE_EQ(g.last(), 3.0);
    EXPECT_DOUBLE_EQ(g.min(), 1.0);
    EXPECT_DOUBLE_EQ(g.max(), 5.0);
    EXPECT_DOUBLE_EQ(g.mean(), 3.0);
}

// ---- json export -----------------------------------------------------------------

TEST(ObsJsonTest, SnapshotSerializesAllSections) {
    obs::MetricsRegistry reg;
    reg.counter("a.count").add(2);
    reg.gauge("b.gauge").set(1.5);
    reg.histogram("c.hist").record(4.0);
    const std::string json = obs::to_json(reg.snapshot());
    EXPECT_NE(json.find("\"counters\":{\"a.count\":2}"), std::string::npos) << json;
    EXPECT_NE(json.find("\"b.gauge\":{\"last\":1.5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"c.hist\":{\"count\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

TEST(ObsJsonTest, IdenticalSnapshotsSerializeIdentically) {
    auto build = [] {
        obs::MetricsRegistry reg;
        for (int i = 0; i < 64; ++i) {
            reg.histogram("h").record(static_cast<double>(i) + 0.25);
        }
        reg.counter("c").add(9);
        return obs::to_json(reg.snapshot());
    };
    EXPECT_EQ(build(), build());
}

// ---- chrome trace export ---------------------------------------------------------

TEST(ObsTraceTest, GoldenChromeTraceDocument) {
    sim::TimelineTrace trace;
    trace.set_state(Time::zero(), "idle", 1.0);
    trace.set_state(Time::from_us(10), "tx", 2.5);
    trace.finish(Time::from_us(25));

    obs::ChromeTraceWriter writer;
    writer.add_lane("C1 wlan-nic", trace);

    const std::string expected =
        "{\"traceEvents\":["
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"C1 wlan-nic\"}},\n"
        "{\"name\":\"idle\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.000,"
        "\"dur\":10.000,\"args\":{\"level_mw\":1}},\n"
        "{\"name\":\"tx\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10.000,"
        "\"dur\":15.000,\"args\":{\"level_mw\":2.5}}"
        "],\"displayTimeUnit\":\"ms\"}";
    EXPECT_EQ(writer.str(), expected);
}

TEST(ObsTraceTest, CountersAndMultipleLanes) {
    sim::TimelineTrace t1, t2;
    t1.set_state(Time::zero(), "doze", 0.01);
    t1.finish(Time::from_ms(1));
    t2.set_state(Time::zero(), "active", 0.5);
    t2.finish(Time::from_ms(1));

    obs::ChromeTraceWriter writer;
    const int tid1 = writer.add_lane("wlan", t1);
    const int tid2 = writer.add_lane("bt", t2);
    EXPECT_NE(tid1, tid2);
    writer.add_counter("queue_depth", Time::from_us(3), 4.0);
    const std::string doc = writer.str();
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(doc.find("\"queue_depth\""), std::string::npos);
    // Same lane name reuses the tid instead of minting a new one.
    EXPECT_EQ(writer.add_lane("wlan", t1), tid1);
}

// ---- logger ----------------------------------------------------------------------

TEST(ObsLoggerTest, ConcurrentWritersNeverTearLines) {
    std::vector<std::string> captured;
    obs::set_log_sink([&](std::string_view line) { captured.emplace_back(line); });
    sim::Logger::set_level(sim::LogLevel::debug);

    constexpr int kThreads = 8;
    constexpr int kLines = 200;
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([t] {
            for (int j = 0; j < kLines; ++j) {
                sim::Logger::log(sim::LogLevel::info, 5_ms, "t" + std::to_string(t),
                                 "message " + std::to_string(j));
            }
        });
    }
    for (auto& t : pool) t.join();
    sim::Logger::set_level(sim::LogLevel::off);
    obs::set_log_sink({});

    ASSERT_EQ(captured.size(), static_cast<std::size_t>(kThreads * kLines));
    // Every captured line must be exactly one well-formed whole line: the
    // sink receives complete lines, so nothing can interleave mid-line.
    for (const std::string& line : captured) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '[');
        EXPECT_EQ(line.back(), '\n');
        EXPECT_EQ(line.find("[5ms] t"), 0u) << line;
        EXPECT_NE(line.find(": message "), std::string::npos) << line;
        // Exactly one newline: a torn write would embed another.
        EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    }
}

TEST(ObsLoggerTest, LazyMacroSkipsMessageConstructionWhenLevelOff) {
    sim::Logger::set_level(sim::LogLevel::info);
    int evaluations = 0;
    WLANPS_LOG(sim::LogLevel::debug, 1_ms, "tag",
               "value=" << [&] {
                   ++evaluations;
                   return 42;
               }());
    EXPECT_EQ(evaluations, 0);  // debug disabled: expression never ran

    std::vector<std::string> captured;
    obs::set_log_sink([&](std::string_view line) { captured.emplace_back(line); });
    WLANPS_LOG(sim::LogLevel::info, 1_ms, "tag",
               "value=" << [&] {
                   ++evaluations;
                   return 42;
               }());
    obs::set_log_sink({});
    sim::Logger::set_level(sim::LogLevel::off);
    EXPECT_EQ(evaluations, 1);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "[1ms] tag: value=42\n");
}

// ---- hooks -----------------------------------------------------------------------

TEST(ObsHooksTest, ScopedRegistryInstallsAndRestores) {
    EXPECT_EQ(obs::current(), nullptr);
    obs::MetricsRegistry outer;
    {
        obs::ScopedRegistry s1(outer);
        EXPECT_EQ(obs::current(), &outer);
        obs::MetricsRegistry inner;
        {
            obs::ScopedRegistry s2(inner);
            EXPECT_EQ(obs::current(), &inner);
        }
        EXPECT_EQ(obs::current(), &outer);
    }
    EXPECT_EQ(obs::current(), nullptr);
}

TEST(ObsHooksTest, MacrosAreSafeWithoutARegistry) {
    ASSERT_EQ(obs::current(), nullptr);
    WLANPS_OBS_COUNT("no.registry", 1);
    WLANPS_OBS_GAUGE_SET("no.registry.gauge", 2.0);
    WLANPS_OBS_RECORD("no.registry.hist", 3.0);  // must not crash
}

#if defined(WLANPS_OBS_ENABLED)
TEST(ObsHooksTest, MacrosRecordIntoTheCurrentRegistry) {
    obs::MetricsRegistry reg;
    obs::ScopedRegistry scope(reg);
    WLANPS_OBS_COUNT("m.count", 2);
    WLANPS_OBS_COUNT("m.count", 3);
    WLANPS_OBS_GAUGE_SET("m.gauge", 1.25);
    WLANPS_OBS_RECORD("m.hist", 8.0);
    EXPECT_EQ(reg.counter("m.count").value(), 5u);
    EXPECT_DOUBLE_EQ(reg.gauge("m.gauge").last(), 1.25);
    EXPECT_EQ(reg.histogram("m.hist").count(), 1u);
}

TEST(ObsKernelProfileTest, CountsDispatchesByTagAndReapsAndPublishes) {
    obs::MetricsRegistry reg;
    obs::KernelProfile profile(reg);
    sim::Simulator sim;
    sim.attach_profile(&profile);

    int fired = 0;
    for (int i = 0; i < 10; ++i) sim.post_in(Time::from_us(i), [&fired] { ++fired; });
    auto h1 = sim.schedule_in(Time::from_us(20), [&fired] { ++fired; });
    auto h2 = sim.schedule_in(Time::from_us(21), [&fired] { ++fired; });
    h2.cancel();
    sim::PeriodicEvent tick(sim, Time::from_us(5), [&fired] { ++fired; });
    tick.start();
    sim.run_until(Time::from_us(50));
    tick.cancel();
    sim.run();

    EXPECT_EQ(reg.counter("sim.kernel.dispatched.fast").value(), 10u);
    EXPECT_EQ(reg.counter("sim.kernel.dispatched.handle").value(), 1u);
    EXPECT_GE(reg.counter("sim.kernel.dispatched.periodic").value(), 9u);
    EXPECT_EQ(reg.counter("sim.kernel.cancelled_reaped").value(), 2u);  // handle + periodic
    const std::uint64_t dispatched = reg.counter("sim.kernel.dispatched.fast").value() +
                                     reg.counter("sim.kernel.dispatched.handle").value() +
                                     reg.counter("sim.kernel.dispatched.periodic").value();
    EXPECT_EQ(dispatched, sim.events_dispatched());
    EXPECT_EQ(reg.histogram("sim.kernel.dispatch_ns.fast").count(), 10u);

    profile.publish_queue_state(sim.queue_size(), sim.pending_events(),
                                sim.events_dispatched());
    EXPECT_DOUBLE_EQ(reg.gauge("sim.queue.entries_incl_tombstones").last(),
                     static_cast<double>(sim.queue_size()));
    EXPECT_DOUBLE_EQ(reg.gauge("sim.queue.pending_live").last(),
                     static_cast<double>(sim.pending_events()));
    EXPECT_EQ(reg.counter("sim.kernel.events_dispatched").value(), sim.events_dispatched());
}
#endif  // WLANPS_OBS_ENABLED

// ---- phy integration -------------------------------------------------------------

TEST(ObsPhyTest, WlanNicPublishesResidencyAndEnergy) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{});
    sim.run_until(10_ms);
    obs::MetricsRegistry reg;
    nic.publish_metrics(reg, "phy.wlan");
    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_NE(snap.histogram("phy.wlan.residency_s.idle"), nullptr);
    EXPECT_NEAR(snap.histogram("phy.wlan.residency_s.idle")->max(), 0.010, 1e-9);
    ASSERT_NE(snap.histogram("phy.wlan.energy_j"), nullptr);
    EXPECT_GT(snap.histogram("phy.wlan.energy_j")->max(), 0.0);
    ASSERT_NE(snap.counter("phy.wlan.entries.doze"), nullptr);
}

// ---- runner integration ----------------------------------------------------------

TEST(ObsRunnerTest, MergedMetricsBitIdenticalAcrossThreadCounts) {
    auto spec =
        exp::ExperimentSpec{}
            .with_run([](const exp::ParamPoint&, std::uint64_t seed) {
                obs::MetricsRegistry* reg = obs::current();
                EXPECT_NE(reg, nullptr);
                for (int i = 0; i < 100; ++i) {
                    reg->histogram("run.samples")
                        .record(static_cast<double>((seed * 31 + static_cast<std::uint64_t>(i)) %
                                                    97) +
                                0.5);
                }
                reg->counter("run.count").add(seed);
                reg->gauge("run.gauge").set(static_cast<double>(seed));
                return exp::Metrics{{"m", static_cast<double>(seed)}};
            })
            .with_points({"a", "b"})
            .with_seed_range(1, 6);

    const auto r1 = exp::ExperimentRunner(1).run(spec);
    const auto r4 = exp::ExperimentRunner(4).run(spec);

    for (std::size_t p = 0; p < 2; ++p) {
        const std::string j1 = obs::to_json(r1.aggregate.observed(p));
        const std::string j4 = obs::to_json(r4.aggregate.observed(p));
        EXPECT_EQ(j1, j4) << "point " << p;
    }
    const obs::Histogram* h = r1.aggregate.observed(0).histogram("run.samples");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 600u);  // 100 samples x 6 seeds
    EXPECT_GT(h->percentile(99.0), h->percentile(50.0));
    ASSERT_NE(r1.aggregate.observed(0).counter("run.count"), nullptr);
    EXPECT_EQ(r1.aggregate.observed(0).counter("run.count")->value(), 1u + 2 + 3 + 4 + 5 + 6);
}

TEST(ObsRunnerTest, PerRunSnapshotsLandInRunRecords) {
    auto spec = exp::ExperimentSpec{}
                    .with_run([](const exp::ParamPoint&, std::uint64_t seed) {
                        obs::current()->counter("c").add(seed);
                        return exp::Metrics{{"m", 0.0}};
                    })
                    .with_points({"p"})
                    .with_seed_range(10, 2);
    const auto result = exp::ExperimentRunner(2).run(spec);
    ASSERT_EQ(result.runs.size(), 2u);
    for (const auto& run : result.runs) {
        ASSERT_NE(run.obs.counter("c"), nullptr);
        EXPECT_EQ(run.obs.counter("c")->value(), run.seed);
    }
}
