/// Tests for mobility-driven link quality.

#include <gtest/gtest.h>

#include <memory>

#include "channel/link.hpp"
#include "channel/mobility.hpp"
#include "sim/assert.hpp"

namespace wlanps::channel {
namespace {

using namespace time_literals;

MobileLinkQuality::Config no_shadowing(PathLossConfig base, Modulation mod) {
    MobileLinkQuality::Config cfg;
    cfg.path_loss = base;
    cfg.path_loss.shadowing_sigma_db = 0.0;  // deterministic for tests
    cfg.modulation = mod;
    return cfg;
}

TEST(TrajectoryTest, LinearWalkMovesAndClamps) {
    const auto walk = linear_walk(10.0, 1.0);
    EXPECT_DOUBLE_EQ(walk(Time::zero()), 10.0);
    EXPECT_DOUBLE_EQ(walk(5_s), 15.0);
    const auto approach = linear_walk(2.0, -1.0);
    EXPECT_DOUBLE_EQ(approach(10_s), 0.5);  // clamped at 0.5 m
}

TEST(TrajectoryTest, DepartureDelaysMotion) {
    const auto walk = linear_walk(10.0, 1.0, 5_s);
    EXPECT_DOUBLE_EQ(walk(3_s), 10.0);
    EXPECT_DOUBLE_EQ(walk(8_s), 13.0);
}

TEST(MobileLinkQualityTest, QualityFallsWithDistance) {
    MobileLinkQuality q(no_shadowing(wlan_path_loss(), Modulation::cck11),
                        linear_walk(5.0, 0.5), sim::Random(1));
    const double near = q.at(Time::zero());      // 5 m
    const double mid = q.at(Time::from_seconds(60));   // 35 m
    const double far = q.at(Time::from_seconds(150));  // 80 m
    EXPECT_DOUBLE_EQ(near, 1.0);
    EXPECT_LT(far, mid);
    EXPECT_DOUBLE_EQ(far, 0.0);
}

TEST(MobileLinkQualityTest, BluetoothRangeIsShorterThanWlan) {
    // At the same distance, the 4 dBm BT link runs out of margin before
    // the 15 dBm WLAN link.
    MobileLinkQuality bt(no_shadowing(bt_path_loss(), Modulation::gfsk_bt),
                         linear_walk(30.0, 0.0), sim::Random(2));
    MobileLinkQuality wlan(no_shadowing(wlan_path_loss(), Modulation::cck11),
                           linear_walk(30.0, 0.0), sim::Random(3));
    EXPECT_LT(bt.at(Time::zero()), wlan.at(Time::zero()));

    // Find each radio's quality-0 range along a slow walk outward.
    auto range_of = [](MobileLinkQuality& q) {
        for (int m = 1; m < 200; ++m) {
            // Stateless here (sigma 0): rebuild time monotonic queries.
            if (q.at(Time::from_seconds(m)) <= 0.0) return m;
        }
        return 200;
    };
    MobileLinkQuality bt_walk(no_shadowing(bt_path_loss(), Modulation::gfsk_bt),
                              linear_walk(1.0, 1.0), sim::Random(4));
    MobileLinkQuality wlan_walk(no_shadowing(wlan_path_loss(), Modulation::cck11),
                                linear_walk(1.0, 1.0), sim::Random(5));
    EXPECT_LT(range_of(bt_walk), range_of(wlan_walk));
}

TEST(MobileLinkQualityTest, DrivesWirelessLinkDelivery) {
    GilbertElliottConfig ge;
    ge.ber_good = ge.ber_bad = 0.0;  // isolate the quality effect
    WirelessLink link(ge, sim::Random(6));
    auto quality = std::make_shared<MobileLinkQuality>(
        no_shadowing(bt_path_loss(), Modulation::gfsk_bt), linear_walk(2.0, 1.0),
        sim::Random(7));
    link.set_quality_function([quality](Time t) { return quality->at(t); });

    // Near the AP: everything delivered.
    int near_ok = 0;
    for (int i = 0; i < 50; ++i) {
        near_ok += link.transmit(Time::from_ms(i * 10), DataSize::from_bytes(339),
                                 Rate::from_kbps(723));
    }
    EXPECT_EQ(near_ok, 50);
    // 100 m out: the link is dead.
    int far_ok = 0;
    for (int i = 0; i < 50; ++i) {
        far_ok += link.transmit(Time::from_seconds(100) + Time::from_ms(i * 10),
                                DataSize::from_bytes(339), Rate::from_kbps(723));
    }
    EXPECT_EQ(far_ok, 0);
    EXPECT_DOUBLE_EQ(link.quality(Time::from_seconds(200)), 0.0);
}

TEST(MobileLinkQualityTest, HeadroomScalesTheRamp) {
    auto cfg_narrow = no_shadowing(wlan_path_loss(), Modulation::cck11);
    cfg_narrow.headroom_db = 5.0;
    auto cfg_wide = no_shadowing(wlan_path_loss(), Modulation::cck11);
    cfg_wide.headroom_db = 20.0;
    // Pick a distance inside both ramps.
    MobileLinkQuality narrow(cfg_narrow, linear_walk(45.0, 0.0), sim::Random(8));
    MobileLinkQuality wide(cfg_wide, linear_walk(45.0, 0.0), sim::Random(9));
    const double qn = narrow.at(Time::zero());
    const double qw = wide.at(Time::zero());
    if (qn > 0.0 && qn < 1.0) {
        EXPECT_LT(qw, qn);  // same margin is a smaller fraction of 20 dB
    }
}

TEST(MobileLinkQualityTest, InvalidConfigThrows) {
    EXPECT_THROW(linear_walk(0.0, 1.0), ContractViolation);
    auto cfg = no_shadowing(wlan_path_loss(), Modulation::cck11);
    cfg.headroom_db = 0.0;
    EXPECT_THROW(MobileLinkQuality(cfg, linear_walk(1.0, 0.0), sim::Random(10)),
                 ContractViolation);
}

}  // namespace
}  // namespace wlanps::channel
