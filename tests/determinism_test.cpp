/// Determinism tests: every scenario runner must be bit-reproducible for
/// a fixed seed (the benches' tables regenerate exactly), and sensitive
/// to the seed (we are not accidentally ignoring the RNG).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "core/scenario_spec.hpp"
#include "core/scenarios.hpp"
#include "exp/runner.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace wlanps::core::scenarios {
namespace {

const SimBackend backend;

StreamConfig quick(std::uint64_t seed) {
    StreamConfig config;
    config.clients = 2;
    config.duration = Time::from_seconds(45);
    config.seed = seed;
    return config;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
    ASSERT_EQ(a.clients.size(), b.clients.size()) << a.label;
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.clients[i].wnic_average.watts(), b.clients[i].wnic_average.watts())
            << a.label << " client " << i;
        EXPECT_EQ(a.clients[i].received, b.clients[i].received) << a.label << " client " << i;
        EXPECT_EQ(a.clients[i].underruns, b.clients[i].underruns) << a.label;
    }
}

TEST(DeterminismTest, WlanCam) {
    const auto spec = ScenarioSpec::cam().with_stream(quick(9));
    expect_identical(backend.run(spec), backend.run(spec));
}

TEST(DeterminismTest, WlanPsm) {
    const auto spec = ScenarioSpec::psm().with_stream(quick(9));
    expect_identical(backend.run(spec), backend.run(spec));
}

TEST(DeterminismTest, EcMac) {
    const auto spec = ScenarioSpec::ecmac().with_stream(quick(9));
    expect_identical(backend.run(spec), backend.run(spec));
}

TEST(DeterminismTest, BtActive) {
    const auto spec = ScenarioSpec::bt().with_stream(quick(9));
    expect_identical(backend.run(spec), backend.run(spec));
}

TEST(DeterminismTest, Hotspot) {
    const auto spec = ScenarioSpec::hotspot().with_stream(quick(9));
    expect_identical(backend.run(spec), backend.run(spec));
}

TEST(DeterminismTest, HotspotMixed) {
    const auto spec =
        ScenarioSpec::hotspot_mixed().with_stream(quick(9)).with_mix(MixedWorkload{});
    expect_identical(backend.run(spec), backend.run(spec));
}

// Minimal reference kernel: the std::priority_queue dispatch loop the
// calendar queue replaced, with the same (time, seq) FIFO contract.
class ReferenceHeapKernel {
public:
    [[nodiscard]] Time now() const { return now_; }

    void post_at(Time when, std::function<void()> cb) {
        heap_.push(Entry{when, next_seq_++, std::move(cb)});
    }

    void run() {
        while (!heap_.empty()) {
            // Entry's callback is move-only in spirit; copy out then pop.
            Entry top = heap_.top();
            heap_.pop();
            now_ = top.when;
            top.cb();
        }
    }

private:
    struct Entry {
        Time when;
        std::uint64_t seq;
        std::function<void()> cb;
        bool operator>(const Entry& rhs) const {
            if (when != rhs.when) return when > rhs.when;
            return seq > rhs.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Time now_;
    std::uint64_t next_seq_ = 0;
};

TEST(DeterminismTest, CalendarQueueMetricsMatchReferenceHeap) {
    // Run the same stochastic workload through the calendar-queue kernel
    // and through the reference binary heap.  The accumulated metric folds
    // in dispatch time and a per-dispatch RNG draw, so it is bit-identical
    // iff both kernels dispatch the same events in the same order and the
    // RNG streams are consumed identically.
    auto workload = [](auto& kernel) {
        sim::Random rng(77);
        double metric = 0.0;
        std::function<void(Time, int)> spawn = [&](Time when, int depth) {
            kernel.post_at(when, [&, depth] {
                metric = metric * 1.0000001 + kernel.now().to_seconds() * rng.uniform();
                if (depth < 4 && rng.chance(0.4)) {
                    spawn(kernel.now() + Time::from_ns(rng.uniform_int(0, 5'000'000)),
                          depth + 1);
                }
            });
        };
        for (int i = 0; i < 1500; ++i) {
            spawn(Time::from_ns(rng.uniform_int(0, 6'000'000)), 0);
        }
        kernel.run();
        return metric;
    };

    sim::Simulator calendar;
    ReferenceHeapKernel reference;
    const double calendar_metric = workload(calendar);
    const double reference_metric = workload(reference);
    // Exact equality on purpose: "same metrics to the last bit".
    EXPECT_EQ(calendar_metric, reference_metric);
}

// ---- Fault plans and the experiment runner ---------------------------------------

TEST(DeterminismTest, FaultPlanRunsAreReproducible) {
    // A crash + schedule-drop plan with the full recovery stack exercises
    // every extra RNG stream (injector 900, schedule-drop 902, rejoin 910+)
    // — two runs must still agree to the last bit, counters included.
    StreamConfig config = quick(11);
    config.clients = 3;
    config.duration = Time::from_seconds(90);
    config.fault_plan.client_crash(Time::from_seconds(20), Time::from_seconds(10), 1)
        .schedule_drop(Time::from_seconds(5), Time::from_seconds(60), 0.4);
    HotspotConfig options;
    options.resilience = ResilienceConfig{}
                             .with_liveness_timeout(Time::from_seconds(4))
                             .with_burst_repair(true);
    options.rejoin_enabled = true;

    const auto spec = ScenarioSpec::hotspot().with_stream(config).with_hotspot(options);
    const auto a = backend.run(spec);
    const auto b = backend.run(spec);
    expect_identical(a, b);
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_EQ(a.recovery.liveness_reclaims, b.recovery.liveness_reclaims);
    EXPECT_EQ(a.recovery.burst_repairs, b.recovery.burst_repairs);
    EXPECT_EQ(a.recovery.schedule_drops, b.recovery.schedule_drops);
    EXPECT_EQ(a.recovery.rejoin_attempts, b.recovery.rejoin_attempts);
    EXPECT_EQ(a.recovery.recover_times_s, b.recovery.recover_times_s);
    EXPECT_GT(a.faults_injected, 0u);
}

TEST(DeterminismTest, FaultGridIdenticalAtAnyThreadCount) {
    // ISSUE acceptance: a fixed plan + seed grid run at different worker
    // thread counts produces identical metrics (the runner reduces in
    // (point, seed) order after the pool drains).
    std::vector<fault::FaultPlan> plans(3);
    plans[1].blackout(Time::from_seconds(10), Time::from_seconds(5), 1);
    plans[2].client_crash(Time::from_seconds(12), Time::from_seconds(8), 1);

    StreamConfig config = quick(0);
    HotspotConfig options;
    options.resilience = ResilienceConfig{}
                             .with_liveness_timeout(Time::from_seconds(4))
                             .with_burst_repair(true);
    options.rejoin_enabled = true;

    const auto spec = exp::ExperimentSpec{}
                          .with_run(fault_grid_run(config, options, plans))
                          .with_points({"clean", "blackout", "crash"})
                          .with_seeds({42, 43});
    const auto serial = exp::ExperimentRunner(1).run(spec);
    const auto pooled = exp::ExperimentRunner(4).run(spec);

    ASSERT_EQ(serial.runs.size(), pooled.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        EXPECT_EQ(serial.runs[i].point, pooled.runs[i].point);
        EXPECT_EQ(serial.runs[i].seed, pooled.runs[i].seed);
        ASSERT_EQ(serial.runs[i].metrics.size(), pooled.runs[i].metrics.size());
        for (std::size_t m = 0; m < serial.runs[i].metrics.size(); ++m) {
            EXPECT_EQ(serial.runs[i].metrics[m].first, pooled.runs[i].metrics[m].first);
            // Exact comparison on purpose: bit-identical at any thread count.
            EXPECT_EQ(serial.runs[i].metrics[m].second, pooled.runs[i].metrics[m].second)
                << serial.runs[i].metrics[m].first << " run " << i;
        }
    }
    // The faulty cells really did inject something.
    EXPECT_GT(serial.aggregate.metric(1, "faults_injected").mean(), 0.0);
    EXPECT_GT(serial.aggregate.metric(2, "faults_injected").mean(), 0.0);
}

TEST(DeterminismTest, SeedActuallyMatters) {
    // The stochastic parts (backoffs, channel realizations) must differ
    // across seeds in at least one scenario metric.
    const auto a = backend.run(ScenarioSpec::psm().with_stream(quick(1)));
    const auto b = backend.run(ScenarioSpec::psm().with_stream(quick(2)));
    EXPECT_NE(a.clients[0].wnic_average.watts(), b.clients[0].wnic_average.watts());
}

}  // namespace
}  // namespace wlanps::core::scenarios
