/// Determinism tests: every scenario runner must be bit-reproducible for
/// a fixed seed (the benches' tables regenerate exactly), and sensitive
/// to the seed (we are not accidentally ignoring the RNG).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "core/scenarios.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace wlanps::core::scenarios {
namespace {

StreamConfig quick(std::uint64_t seed) {
    StreamConfig config;
    config.clients = 2;
    config.duration = Time::from_seconds(45);
    config.seed = seed;
    return config;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
    ASSERT_EQ(a.clients.size(), b.clients.size()) << a.label;
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.clients[i].wnic_average.watts(), b.clients[i].wnic_average.watts())
            << a.label << " client " << i;
        EXPECT_EQ(a.clients[i].received, b.clients[i].received) << a.label << " client " << i;
        EXPECT_EQ(a.clients[i].underruns, b.clients[i].underruns) << a.label;
    }
}

TEST(DeterminismTest, WlanCam) {
    expect_identical(run_wlan_cam(quick(9)), run_wlan_cam(quick(9)));
}

TEST(DeterminismTest, WlanPsm) {
    expect_identical(run_wlan_psm(quick(9)), run_wlan_psm(quick(9)));
}

TEST(DeterminismTest, EcMac) {
    expect_identical(run_ecmac(quick(9)), run_ecmac(quick(9)));
}

TEST(DeterminismTest, BtActive) {
    expect_identical(run_bt_active(quick(9)), run_bt_active(quick(9)));
}

TEST(DeterminismTest, Hotspot) {
    expect_identical(run_hotspot(quick(9), HotspotOptions{}),
                     run_hotspot(quick(9), HotspotOptions{}));
}

TEST(DeterminismTest, HotspotMixed) {
    expect_identical(run_hotspot_mixed(quick(9), HotspotOptions{}, MixedWorkload{}),
                     run_hotspot_mixed(quick(9), HotspotOptions{}, MixedWorkload{}));
}

// Minimal reference kernel: the std::priority_queue dispatch loop the
// calendar queue replaced, with the same (time, seq) FIFO contract.
class ReferenceHeapKernel {
public:
    [[nodiscard]] Time now() const { return now_; }

    void post_at(Time when, std::function<void()> cb) {
        heap_.push(Entry{when, next_seq_++, std::move(cb)});
    }

    void run() {
        while (!heap_.empty()) {
            // Entry's callback is move-only in spirit; copy out then pop.
            Entry top = heap_.top();
            heap_.pop();
            now_ = top.when;
            top.cb();
        }
    }

private:
    struct Entry {
        Time when;
        std::uint64_t seq;
        std::function<void()> cb;
        bool operator>(const Entry& rhs) const {
            if (when != rhs.when) return when > rhs.when;
            return seq > rhs.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Time now_;
    std::uint64_t next_seq_ = 0;
};

TEST(DeterminismTest, CalendarQueueMetricsMatchReferenceHeap) {
    // Run the same stochastic workload through the calendar-queue kernel
    // and through the reference binary heap.  The accumulated metric folds
    // in dispatch time and a per-dispatch RNG draw, so it is bit-identical
    // iff both kernels dispatch the same events in the same order and the
    // RNG streams are consumed identically.
    auto workload = [](auto& kernel) {
        sim::Random rng(77);
        double metric = 0.0;
        std::function<void(Time, int)> spawn = [&](Time when, int depth) {
            kernel.post_at(when, [&, depth] {
                metric = metric * 1.0000001 + kernel.now().to_seconds() * rng.uniform();
                if (depth < 4 && rng.chance(0.4)) {
                    spawn(kernel.now() + Time::from_ns(rng.uniform_int(0, 5'000'000)),
                          depth + 1);
                }
            });
        };
        for (int i = 0; i < 1500; ++i) {
            spawn(Time::from_ns(rng.uniform_int(0, 6'000'000)), 0);
        }
        kernel.run();
        return metric;
    };

    sim::Simulator calendar;
    ReferenceHeapKernel reference;
    const double calendar_metric = workload(calendar);
    const double reference_metric = workload(reference);
    // Exact equality on purpose: "same metrics to the last bit".
    EXPECT_EQ(calendar_metric, reference_metric);
}

TEST(DeterminismTest, SeedActuallyMatters) {
    // The stochastic parts (backoffs, channel realizations) must differ
    // across seeds in at least one scenario metric.
    const auto a = run_wlan_psm(quick(1));
    const auto b = run_wlan_psm(quick(2));
    EXPECT_NE(a.clients[0].wnic_average.watts(), b.clients[0].wnic_average.watts());
}

}  // namespace
}  // namespace wlanps::core::scenarios
