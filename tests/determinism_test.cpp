/// Determinism tests: every scenario runner must be bit-reproducible for
/// a fixed seed (the benches' tables regenerate exactly), and sensitive
/// to the seed (we are not accidentally ignoring the RNG).

#include <gtest/gtest.h>

#include "core/scenarios.hpp"

namespace wlanps::core::scenarios {
namespace {

StreamConfig quick(std::uint64_t seed) {
    StreamConfig config;
    config.clients = 2;
    config.duration = Time::from_seconds(45);
    config.seed = seed;
    return config;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
    ASSERT_EQ(a.clients.size(), b.clients.size()) << a.label;
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.clients[i].wnic_average.watts(), b.clients[i].wnic_average.watts())
            << a.label << " client " << i;
        EXPECT_EQ(a.clients[i].received, b.clients[i].received) << a.label << " client " << i;
        EXPECT_EQ(a.clients[i].underruns, b.clients[i].underruns) << a.label;
    }
}

TEST(DeterminismTest, WlanCam) {
    expect_identical(run_wlan_cam(quick(9)), run_wlan_cam(quick(9)));
}

TEST(DeterminismTest, WlanPsm) {
    expect_identical(run_wlan_psm(quick(9)), run_wlan_psm(quick(9)));
}

TEST(DeterminismTest, EcMac) {
    expect_identical(run_ecmac(quick(9)), run_ecmac(quick(9)));
}

TEST(DeterminismTest, BtActive) {
    expect_identical(run_bt_active(quick(9)), run_bt_active(quick(9)));
}

TEST(DeterminismTest, Hotspot) {
    expect_identical(run_hotspot(quick(9), HotspotOptions{}),
                     run_hotspot(quick(9), HotspotOptions{}));
}

TEST(DeterminismTest, HotspotMixed) {
    expect_identical(run_hotspot_mixed(quick(9), HotspotOptions{}, MixedWorkload{}),
                     run_hotspot_mixed(quick(9), HotspotOptions{}, MixedWorkload{}));
}

TEST(DeterminismTest, SeedActuallyMatters) {
    // The stochastic parts (backoffs, channel realizations) must differ
    // across seeds in at least one scenario metric.
    const auto a = run_wlan_psm(quick(1));
    const auto b = run_wlan_psm(quick(2));
    EXPECT_NE(a.clients[0].wnic_average.watts(), b.clients[0].wnic_average.watts());
}

}  // namespace
}  // namespace wlanps::core::scenarios
