/// Tests for the PAMAS-style battery-aware sleeping station.

#include <gtest/gtest.h>

#include <memory>

#include "mac/access_point.hpp"
#include "mac/pamas.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"
#include "traffic/source.hpp"

namespace wlanps::mac {
namespace {

using namespace time_literals;

TEST(PamasStretchTest, FullBatteryNoStretch) {
    PamasConfig cfg;
    EXPECT_DOUBLE_EQ(pamas_stretch(cfg, 1.0), 1.0);
}

TEST(PamasStretchTest, SaturatesAtFloor) {
    PamasConfig cfg;
    cfg.max_stretch = 8.0;
    cfg.floor_level = 0.10;
    EXPECT_DOUBLE_EQ(pamas_stretch(cfg, 0.10), 8.0);
    EXPECT_DOUBLE_EQ(pamas_stretch(cfg, 0.05), 8.0);  // below floor: clamped
}

TEST(PamasStretchTest, MonotoneInBatteryLevel) {
    PamasConfig cfg;
    double prev = pamas_stretch(cfg, 1.0);
    for (double level = 0.9; level >= 0.1; level -= 0.1) {
        const double s = pamas_stretch(cfg, level);
        EXPECT_GT(s, prev);
        prev = s;
    }
}

struct PamasWorld {
    sim::Simulator sim;
    sim::Random root{5};
    Bss bss{sim};
    std::unique_ptr<AccessPoint> ap;
    power::Battery battery;
    std::unique_ptr<PamasStation> station;

    explicit PamasWorld(power::Energy capacity = power::Energy::from_joules(200.0))
        : battery([capacity] {
              power::BatteryConfig b;
              b.capacity = capacity;
              b.rate_exponent = 0.0;
              return b;
          }()) {
        AccessPointConfig cfg;
        cfg.mode = ApMode::psm;
        ap = std::make_unique<AccessPoint>(sim, bss, cfg, DcfConfig{}, root.fork(1));
        station = std::make_unique<PamasStation>(sim, bss, 1, *ap, battery, PamasConfig{},
                                                 phy::WlanNicConfig{});
    }
};

TEST(PamasStationTest, RequiresBufferingAp) {
    sim::Simulator sim;
    sim::Random root(5);
    Bss bss(sim);
    AccessPointConfig cfg;
    cfg.mode = ApMode::cam;
    AccessPoint ap(sim, bss, cfg, DcfConfig{}, root.fork(1));
    power::Battery battery(power::BatteryConfig{});
    EXPECT_THROW(PamasStation(sim, bss, 1, ap, battery, PamasConfig{}, phy::WlanNicConfig{}),
                 ContractViolation);
}

TEST(PamasStationTest, ReceivesBufferedTraffic) {
    PamasWorld w;
    w.ap->start();
    w.station->start();
    DataSize sent;
    traffic::PoissonSource src(w.sim, [&](DataSize s) {
        sent += s;
        w.ap->send(1, s);
    }, DataSize::from_bytes(1000), Rate::from_kbps(64), w.root.fork(2));
    src.start();
    w.sim.run_until(Time::from_seconds(30));
    src.stop();
    w.sim.run_until(Time::from_seconds(32));
    EXPECT_GT(sent.bytes(), 0);
    // Nearly all bytes must arrive (buffered, then flushed on wake; the
    // flush aggregates several MSDUs per MPDU, so compare bytes).
    EXPECT_GE(w.station->bytes_received().bytes(), sent.bytes() * 9 / 10);
}

TEST(PamasStationTest, SleepsWhenIdle) {
    PamasWorld w;
    w.ap->start();
    w.station->start();
    w.sim.run_until(Time::from_seconds(20));
    // No traffic at all: the radio stays in doze, power ~ doze level.
    EXPECT_LT(w.station->average_power().watts(), 0.06);
}

TEST(PamasStationTest, PeriodStretchesAsBatteryDrains) {
    PamasWorld w(power::Energy::from_joules(50.0));  // small battery
    w.ap->start();
    w.station->start();
    traffic::PoissonSource src(w.sim, [&](DataSize s) { w.ap->send(1, s); },
                               DataSize::from_bytes(1400), Rate::from_kbps(128),
                               w.root.fork(3));
    src.start();
    const Time initial_period = w.station->current_period();
    w.sim.run_until(Time::from_seconds(120));
    EXPECT_LT(w.battery.level(), 0.9);
    EXPECT_GT(w.station->current_period(), initial_period);
}

TEST(PamasStationTest, DeadBatteryStopsTheRadio) {
    PamasWorld w(power::Energy::from_joules(3.0));  // dies almost immediately
    w.ap->start();
    w.station->start();
    traffic::PoissonSource src(w.sim, [&](DataSize s) { w.ap->send(1, s); },
                               DataSize::from_bytes(1400), Rate::from_kbps(256),
                               w.root.fork(3));
    src.start();
    w.sim.run_until(Time::from_seconds(300));
    EXPECT_TRUE(w.battery.empty());
    // Frames stop flowing once dead: buffer grows unboundedly at the AP.
    EXPECT_GT(w.ap->buffered(1), 100u);
}

TEST(PamasStationTest, LatencyReflectsSleepCycle) {
    PamasWorld w;
    w.ap->start();
    w.station->start();
    traffic::PoissonSource src(w.sim, [&](DataSize s) { w.ap->send(1, s); },
                               DataSize::from_bytes(1000), Rate::from_kbps(32),
                               w.root.fork(4));
    src.start();
    w.sim.run_until(Time::from_seconds(60));
    ASSERT_GT(w.station->delivery_latency().count(), 10u);
    // Mean latency is of the order of half the base cycle period (250 ms).
    EXPECT_GT(w.station->delivery_latency().mean(), 0.05);
    EXPECT_LT(w.station->delivery_latency().mean(), 1.0);
}

}  // namespace
}  // namespace wlanps::mac
