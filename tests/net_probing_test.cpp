/// Tests for TCP-Probing and the chip power model.

#include <gtest/gtest.h>

#include "net/probing.hpp"
#include "power/chip_power.hpp"
#include "sim/assert.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

channel::GilbertElliottConfig bursty_channel() {
    channel::GilbertElliottConfig cfg;
    cfg.mean_good = Time::from_seconds(2);
    cfg.mean_bad = Time::from_ms(400);
    cfg.ber_good = 0.0;
    cfg.ber_bad = 5e-4;  // MSS-sized segments nearly always die in bad
    return cfg;
}

TEST(ProbingTcpTest, CleanChannelNoProbes) {
    net::ProbingConfig cfg;
    const net::ProbingTcpAgent agent(cfg);
    channel::GilbertElliottConfig clean;
    clean.ber_good = clean.ber_bad = 0.0;
    channel::GilbertElliott ch(clean, sim::Random(1));
    const auto r = agent.bulk_transfer(DataSize::from_kilobytes(1024), ch);
    EXPECT_EQ(r.probe_cycles, 0);
    EXPECT_EQ(r.probes_sent, 0);
    EXPECT_GT(r.throughput_bps(DataSize::from_kilobytes(1024)), 1e6);
}

TEST(ProbingTcpTest, ProbesDuringBadBursts) {
    net::ProbingConfig cfg;
    const net::ProbingTcpAgent agent(cfg);
    channel::GilbertElliott ch(bursty_channel(), sim::Random(2));
    const auto r = agent.bulk_transfer(DataSize::from_kilobytes(4096), ch);
    EXPECT_GT(r.probe_cycles, 0);
    EXPECT_GT(r.probes_sent, r.probe_cycles);  // several probes per cycle
}

TEST(ProbingTcpTest, BeatsRenoOnBurstyChannel) {
    net::ProbingConfig cfg;
    const net::ProbingTcpAgent agent(cfg);
    const DataSize payload = DataSize::from_kilobytes(4096);

    channel::GilbertElliott ch1(bursty_channel(), sim::Random(3));
    const auto probing = agent.bulk_transfer(payload, ch1);

    channel::GilbertElliott ch2(bursty_channel(), sim::Random(3));
    const auto reno = agent.reno_transfer(payload, ch2);

    EXPECT_GT(probing.throughput_bps(payload), reno.throughput_bps(payload) * 1.5);
}

TEST(ProbingTcpTest, SaturatesLinkOnCleanChannel) {
    // Probing adds nothing on a clean channel: after slow start the
    // transfer runs at the wireless link rate (its pipe in this model).
    net::ProbingConfig cfg;
    const net::ProbingTcpAgent agent(cfg);
    const DataSize payload = DataSize::from_kilobytes(4096);
    channel::GilbertElliottConfig clean;
    clean.ber_good = clean.ber_bad = 0.0;

    channel::GilbertElliott ch(clean, sim::Random(4));
    const auto probing = agent.bulk_transfer(payload, ch);
    EXPECT_EQ(probing.probe_cycles, 0);
    EXPECT_GT(probing.throughput_bps(payload), cfg.link_rate.bps() * 0.8);
    EXPECT_LE(probing.throughput_bps(payload), cfg.link_rate.bps() * 1.01);
}

TEST(ChipPowerTest, DynamicScalesWithActivityAndCapacitance) {
    power::ChipPowerModel chip(power::ChipPowerModel::Config{});
    EXPECT_NEAR(chip.dynamic(0.5).watts(), chip.dynamic(1.0).watts() * 0.5, 1e-12);
    const auto smaller = chip.with_capacitance_scaled(0.7);
    EXPECT_NEAR(smaller.dynamic(1.0).watts(), chip.dynamic(1.0).watts() * 0.7, 1e-12);
}

TEST(ChipPowerTest, GatingSuppressesLeakage) {
    power::ChipPowerModel chip(power::ChipPowerModel::Config{});
    EXPECT_LT(chip.leakage(true).watts(), chip.leakage(false).watts() * 0.05);
    // A gated chip draws only residual leakage.
    EXPECT_EQ(chip.total(1.0, true), chip.leakage(true));
}

TEST(ChipPowerTest, TotalAddsUp) {
    power::ChipPowerModel::Config cfg;
    cfg.c_eff_nf = 1.0;
    cfg.voltage = 2.0;
    cfg.frequency_mhz = 10.0;
    cfg.leak_current_ma = 5.0;
    power::ChipPowerModel chip(cfg);
    // Dynamic: 1e-9 * 4 * 1e7 = 0.04 W.  Leakage: 2 * 0.005 = 0.01 W.
    EXPECT_NEAR(chip.dynamic().watts(), 0.04, 1e-9);
    EXPECT_NEAR(chip.leakage().watts(), 0.01, 1e-9);
    EXPECT_NEAR(chip.total(1.0).watts(), 0.05, 1e-9);
}

TEST(ChipPowerTest, InvalidConfigThrows) {
    power::ChipPowerModel::Config cfg;
    cfg.voltage = 0.0;
    EXPECT_THROW(power::ChipPowerModel{cfg}, ContractViolation);
}

}  // namespace
}  // namespace wlanps
