/// Unit tests for the discrete-event kernel.

#include <gtest/gtest.h>

#include <vector>

#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps::sim {
namespace {

using namespace time_literals;

TEST(SimulatorTest, StartsAtZero) {
    Simulator sim;
    EXPECT_EQ(sim.now(), Time::zero());
    EXPECT_EQ(sim.events_dispatched(), 0u);
}

TEST(SimulatorTest, DispatchesInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(3_ms, [&] { order.push_back(3); });
    sim.schedule_at(1_ms, [&] { order.push_back(1); });
    sim.schedule_at(2_ms, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 3_ms);
}

TEST(SimulatorTest, SimultaneousEventsAreFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(1_ms, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
    Simulator sim;
    Time fired = Time::zero();
    sim.schedule_at(5_ms, [&] {
        sim.schedule_in(2_ms, [&] { fired = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(fired, 7_ms);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
    Simulator sim;
    sim.schedule_at(5_ms, [&] {
        EXPECT_THROW(sim.schedule_at(1_ms, [] {}), ContractViolation);
    });
    sim.run();
}

TEST(SimulatorTest, NegativeDelayThrows) {
    Simulator sim;
    EXPECT_THROW(sim.schedule_in(Time::from_ns(-1), [] {}), ContractViolation);
}

TEST(SimulatorTest, NullCallbackThrows) {
    Simulator sim;
    EXPECT_THROW(sim.schedule_at(1_ms, nullptr), ContractViolation);
}

TEST(SimulatorTest, CancelPreventsDispatch) {
    Simulator sim;
    bool fired = false;
    EventHandle h = sim.schedule_at(1_ms, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
    Simulator sim;
    EventHandle h = sim.schedule_at(1_ms, [] {});
    sim.run();
    EXPECT_FALSE(h.pending());
    h.cancel();  // must not crash
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndAdvancesClock) {
    Simulator sim;
    int count = 0;
    sim.schedule_at(1_ms, [&] { ++count; });
    sim.schedule_at(10_ms, [&] { ++count; });
    sim.run_until(5_ms);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), 5_ms);
    sim.run_until(20_ms);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.now(), 20_ms);
}

TEST(SimulatorTest, RunUntilExecutesEventExactlyAtHorizon) {
    Simulator sim;
    bool fired = false;
    sim.schedule_at(5_ms, [&] { fired = true; });
    sim.run_until(5_ms);
    EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopBreaksRunLoop) {
    Simulator sim;
    int count = 0;
    sim.schedule_at(1_ms, [&] {
        ++count;
        sim.stop();
    });
    sim.schedule_at(2_ms, [&] { ++count; });
    sim.run();
    EXPECT_EQ(count, 1);
    sim.run();  // resumes
    EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
    Simulator sim;
    int count = 0;
    sim.schedule_at(1_ms, [&] { ++count; });
    sim.schedule_at(2_ms, [&] { ++count; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, SelfReschedulingCallbackWorks) {
    Simulator sim;
    int ticks = 0;
    std::function<void()> tick = [&] {
        if (++ticks < 5) sim.schedule_in(1_ms, tick);
    };
    sim.schedule_in(1_ms, tick);
    sim.run();
    EXPECT_EQ(ticks, 5);
    EXPECT_EQ(sim.now(), 5_ms);
}

TEST(SimulatorTest, DispatchCountExcludesCancelled) {
    Simulator sim;
    auto h = sim.schedule_at(1_ms, [] {});
    sim.schedule_at(2_ms, [] {});
    h.cancel();
    sim.run();
    EXPECT_EQ(sim.events_dispatched(), 1u);
}

TEST(SimulatorTest, PostInterleavesWithScheduleInFifoOrder) {
    // Fast-path (post_*) and handle-path (schedule_*) events at the same
    // timestamp dispatch in insertion order regardless of which path each
    // one took.
    Simulator sim;
    std::vector<int> order;
    sim.post_at(1_ms, [&] { order.push_back(0); });
    sim.schedule_at(1_ms, [&] { order.push_back(1); });
    sim.post_at(1_ms, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(sim.events_dispatched(), 3u);
}

TEST(SimulatorTest, PostRejectsPastAndNull) {
    Simulator sim;
    sim.post_at(5_ms, [] {});
    sim.run();
    EXPECT_THROW(sim.post_at(1_ms, [] {}), ContractViolation);
    EXPECT_THROW(sim.post_in(Time::from_ns(-1), [] {}), ContractViolation);
    EXPECT_THROW(sim.post_at(10_ms, nullptr), ContractViolation);
}

TEST(SimulatorTest, SelfPostingCallbackRecyclesNodes) {
    // Exercises slab-node recycling through many more events than one
    // slab holds, from a callback that re-posts itself.
    Simulator sim;
    int ticks = 0;
    std::function<void()> tick = [&] {
        if (++ticks < 10000) sim.post_in(1_us, tick);
    };
    sim.post_in(1_us, tick);
    sim.run();
    EXPECT_EQ(ticks, 10000);
    EXPECT_EQ(sim.events_dispatched(), 10000u);
}

TEST(PeriodicEventTest, FiresAtPeriod) {
    Simulator sim;
    int ticks = 0;
    PeriodicEvent periodic(sim, 10_ms, [&] { ++ticks; });
    periodic.start();
    sim.run_until(35_ms);
    EXPECT_EQ(ticks, 3);  // at 10, 20, 30
}

TEST(PeriodicEventTest, StartAtControlsPhase) {
    Simulator sim;
    std::vector<Time> fire_times;
    PeriodicEvent periodic(sim, 10_ms, [&] { fire_times.push_back(sim.now()); });
    periodic.start_at(5_ms);
    sim.run_until(26_ms);
    ASSERT_EQ(fire_times.size(), 3u);
    EXPECT_EQ(fire_times[0], 5_ms);
    EXPECT_EQ(fire_times[1], 15_ms);
    EXPECT_EQ(fire_times[2], 25_ms);
}

TEST(PeriodicEventTest, CancelStopsTicks) {
    Simulator sim;
    int ticks = 0;
    PeriodicEvent periodic(sim, 10_ms, [&] { ++ticks; });
    periodic.start();
    sim.schedule_at(25_ms, [&] { periodic.cancel(); });
    sim.run_until(100_ms);
    EXPECT_EQ(ticks, 2);
}

TEST(PeriodicEventTest, TickMayCancelItself) {
    Simulator sim;
    int ticks = 0;
    PeriodicEvent periodic(sim, 10_ms, [&] {
        if (++ticks == 2) periodic.cancel();
    });
    periodic.start();
    sim.run_until(100_ms);
    EXPECT_EQ(ticks, 2);
}

TEST(PeriodicEventTest, DestructorCancels) {
    Simulator sim;
    int ticks = 0;
    {
        PeriodicEvent periodic(sim, 10_ms, [&] { ++ticks; });
        periodic.start();
        sim.run_until(15_ms);
    }
    sim.run_until(100_ms);
    EXPECT_EQ(ticks, 1);
}

TEST(PeriodicEventTest, ZeroPeriodThrows) {
    Simulator sim;
    EXPECT_THROW(PeriodicEvent(sim, Time::zero(), [] {}), ContractViolation);
}

}  // namespace
}  // namespace wlanps::sim
