/// Causal-tracing subsystem tests: the flight-recorder ring buffer
/// (wraparound, monotone counts, JSON dump), Perfetto flow events in the
/// Chrome-trace exporter, the per-client energy-attribution ledger and its
/// reconciliation against aggregate Wnic energy across the scenario grid
/// (including fault-injected runs), the sim-time sampler, and the
/// post-mortem dumper.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/scenario_spec.hpp"
#include "fault/fault.hpp"
#include "obs/energy_ledger.hpp"
#include "obs/flight.hpp"
#include "obs/hooks.hpp"
#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "sim/sampler.hpp"
#include "sim/simulator.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

const core::SimBackend backend;

obs::FlightEvent make_event(std::int64_t t_ns, obs::Hop hop, std::uint64_t flow,
                            std::uint32_t client, std::uint8_t itf, double value) {
    obs::FlightEvent e;
    e.t_ns = t_ns;
    e.hop = hop;
    e.flow = flow;
    e.client = client;
    e.itf = itf;
    e.value = value;
    return e;
}

// ---- flight recorder ring buffer -------------------------------------------------

TEST(FlightRecorderTest, FillsWithoutDropsBelowCapacity) {
    obs::FlightRecorder rec(8);
    EXPECT_EQ(rec.capacity(), 8u);
    EXPECT_EQ(rec.size(), 0u);
    for (int i = 0; i < 5; ++i) {
        rec.record(make_event(i, obs::Hop::rx, 1, 1, obs::kFlightItfWlan, i));
    }
    EXPECT_EQ(rec.size(), 5u);
    EXPECT_EQ(rec.total(), 5u);
    EXPECT_EQ(rec.dropped(), 0u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(rec.at(i).t_ns, static_cast<std::int64_t>(i));
    }
}

TEST(FlightRecorderTest, WrapAroundOverwritesOldestAndKeepsCountMonotone) {
    obs::FlightRecorder rec(4);
    for (int i = 0; i < 6; ++i) {
        rec.record(make_event(i, obs::Hop::tx, 0, 0, obs::kFlightItfNone, i));
    }
    // Capacity reached: the two oldest were overwritten, the total is
    // monotone, and surviving events read oldest-first.
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.total(), 6u);
    EXPECT_EQ(rec.dropped(), 2u);
    EXPECT_EQ(rec.at(0).t_ns, 2);
    EXPECT_EQ(rec.at(3).t_ns, 5);

    // A full extra lap: still capacity-bounded, total still counting.
    for (int i = 6; i < 10; ++i) {
        rec.record(make_event(i, obs::Hop::tx, 0, 0, obs::kFlightItfNone, i));
    }
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.total(), 10u);
    EXPECT_EQ(rec.dropped(), 6u);
    EXPECT_EQ(rec.at(0).t_ns, 6);
    EXPECT_EQ(rec.at(3).t_ns, 9);
}

TEST(FlightRecorderTest, ClearResetsCounts) {
    obs::FlightRecorder rec(2);
    rec.record(make_event(1, obs::Hop::rx, 1, 1, obs::kFlightItfWlan, 0));
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.total(), 0u);
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorderTest, DumpJsonGolden) {
    obs::FlightRecorder rec(4);
    rec.record(make_event(1500, obs::Hop::scheduled, 7, 0, obs::kFlightItfWlan, 4096));
    rec.record(make_event(2500, obs::Hop::rx, 7, 2, obs::kFlightItfWlan, 250.5));
    const std::string expected =
        "{\"capacity\":4,\"total\":2,\"dropped\":0,\"events\":["
        "{\"t_ns\":1500,\"hop\":\"scheduled\",\"flow\":7,\"client\":0,\"itf\":0,"
        "\"value\":4096},"
        "{\"t_ns\":2500,\"hop\":\"rx\",\"flow\":7,\"client\":2,\"itf\":0,"
        "\"value\":250.5}]}";
    EXPECT_EQ(rec.dump_json(), expected);
}

TEST(FlightRecorderTest, DumpJsonLastNTakesTheTail) {
    obs::FlightRecorder rec(4);
    for (int i = 0; i < 3; ++i) {
        rec.record(make_event(i, obs::Hop::polled, 0, 1, obs::kFlightItfWlan, i));
    }
    const std::string tail = rec.dump_json(1);
    EXPECT_NE(tail.find("\"t_ns\":2"), std::string::npos);
    EXPECT_EQ(tail.find("\"t_ns\":0,"), std::string::npos);
}

TEST(FlightRecorderTest, ScopeInstallsAndRestores) {
    EXPECT_EQ(obs::current_flight(), nullptr);
    obs::FlightRecorder outer(4);
    {
        obs::ScopedFlightRecorder s1(outer);
        EXPECT_EQ(obs::current_flight(), &outer);
        obs::FlightRecorder inner(4);
        {
            obs::ScopedFlightRecorder s2(inner);
            EXPECT_EQ(obs::current_flight(), &inner);
        }
        EXPECT_EQ(obs::current_flight(), &outer);
    }
    EXPECT_EQ(obs::current_flight(), nullptr);
}

// ---- Perfetto flow events --------------------------------------------------------

TEST(ObsFlowTest, FlowEventGolden) {
    obs::ChromeTraceWriter writer;
    const int tid = writer.lane("C1 flow");
    writer.add_flow(42, tid, "burst", Time::from_us(10), obs::ChromeTraceWriter::FlowPhase::start);
    writer.add_flow(42, tid, "burst", Time::from_us(20), obs::ChromeTraceWriter::FlowPhase::step);
    writer.add_flow(42, tid, "burst", Time::from_us(30), obs::ChromeTraceWriter::FlowPhase::finish);
    const std::string expected =
        "{\"traceEvents\":["
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"C1 flow\"}},\n"
        "{\"name\":\"burst\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":42,\"pid\":1,"
        "\"tid\":1,\"ts\":10.000},\n"
        "{\"name\":\"burst\",\"cat\":\"flow\",\"ph\":\"t\",\"id\":42,\"pid\":1,"
        "\"tid\":1,\"ts\":20.000},\n"
        "{\"name\":\"burst\",\"cat\":\"flow\",\"ph\":\"f\",\"id\":42,\"pid\":1,"
        "\"tid\":1,\"ts\":30.000,\"bp\":\"e\"}"
        "],\"displayTimeUnit\":\"ms\"}";
    EXPECT_EQ(writer.str(), expected);
}

TEST(ObsFlowTest, ExportFlightGolden) {
    obs::FlightRecorder rec(8);
    rec.record(make_event(1000, obs::Hop::scheduled, 7, 0, obs::kFlightItfWlan, 4096));
    rec.record(make_event(2000, obs::Hop::doze_wakeup, 7, 1, obs::kFlightItfWlan, 250000));
    rec.record(make_event(300000, obs::Hop::rx, 7, 1, obs::kFlightItfWlan, 1000));

    obs::ChromeTraceWriter writer;
    obs::export_flight(writer, rec);
    const std::string expected =
        "{\"traceEvents\":["
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"server flow\"}},\n"
        "{\"name\":\"scheduled\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1.000,"
        "\"dur\":0.000,\"args\":{\"level_mw\":4096}},\n"
        "{\"name\":\"burst\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":7,\"pid\":1,"
        "\"tid\":1,\"ts\":1.000},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
        "\"args\":{\"name\":\"C1 flow\"}},\n"
        "{\"name\":\"doze_wakeup\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":2.000,"
        "\"dur\":250.000,\"args\":{\"level_mw\":250000}},\n"
        "{\"name\":\"burst\",\"cat\":\"flow\",\"ph\":\"t\",\"id\":7,\"pid\":1,"
        "\"tid\":2,\"ts\":2.000},\n"
        "{\"name\":\"rx\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":300.000,"
        "\"dur\":1.000,\"args\":{\"level_mw\":1000}},\n"
        "{\"name\":\"burst\",\"cat\":\"flow\",\"ph\":\"f\",\"id\":7,\"pid\":1,"
        "\"tid\":2,\"ts\":300.000,\"bp\":\"e\"}"
        "],\"displayTimeUnit\":\"ms\"}";
    EXPECT_EQ(writer.str(), expected);
}

TEST(ObsFlowTest, ExportFlightSkipsUnstampedFlows) {
    obs::FlightRecorder rec(4);
    rec.record(make_event(1000, obs::Hop::fault, 0, 0, obs::kFlightItfNone, 2));
    obs::ChromeTraceWriter writer;
    obs::export_flight(writer, rec);
    const std::string doc = writer.str();
    // The hop slice is there, but no flow arrow was minted for flow 0.
    EXPECT_NE(doc.find("\"name\":\"fault\""), std::string::npos);
    EXPECT_EQ(doc.find("\"cat\":\"flow\""), std::string::npos);
}

// ---- energy ledger ---------------------------------------------------------------

TEST(EnergyLedgerTest, ChargesAccumulatePerClientAndCause) {
    obs::EnergyLedger led;
    led.charge(1, obs::EnergyCause::idle_listen, 2.0);
    led.charge(1, obs::EnergyCause::burst_rx, 0.5);
    led.charge(2, obs::EnergyCause::idle_listen, 1.0);
    led.charge(2, obs::EnergyCause::idle_listen, 0.25);
    EXPECT_DOUBLE_EQ(led.charged(1, obs::EnergyCause::idle_listen), 2.0);
    EXPECT_DOUBLE_EQ(led.charged(2, obs::EnergyCause::idle_listen), 1.25);
    EXPECT_DOUBLE_EQ(led.client_total(1), 2.5);
    EXPECT_DOUBLE_EQ(led.cause_total(obs::EnergyCause::idle_listen), 3.25);
    EXPECT_DOUBLE_EQ(led.total(), 3.75);
    EXPECT_EQ(led.clients(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(EnergyLedgerTest, ZeroChargeStillCreatesTheRow) {
    obs::EnergyLedger led;
    led.charge(3, obs::EnergyCause::mode_switch, 0.0);
    EXPECT_EQ(led.clients(), (std::vector<std::uint32_t>{3}));
    EXPECT_DOUBLE_EQ(led.client_total(3), 0.0);
}

TEST(EnergyLedgerTest, ToJsonGolden) {
    obs::EnergyLedger led;
    led.charge(1, obs::EnergyCause::idle_listen, 1.5);
    led.charge(1, obs::EnergyCause::tx, 0.25);
    const std::string expected =
        "{\"total_j\":1.75,"
        "\"causes\":{\"idle_listen\":1.5,\"beacon_wake\":0,\"burst_rx\":0,"
        "\"retransmission\":0,\"mode_switch\":0,\"tx\":0.25,\"nav_sleep\":0},"
        "\"clients\":{\"1\":{\"total_j\":1.75,\"idle_listen\":1.5,\"beacon_wake\":0,"
        "\"burst_rx\":0,\"retransmission\":0,\"mode_switch\":0,\"tx\":0.25,"
        "\"nav_sleep\":0}}}";
    EXPECT_EQ(led.to_json(), expected);
}

TEST(EnergyLedgerTest, SnapshotJsonCarriesTheLedgerSection) {
    obs::MetricsRegistry reg;
    reg.counter("x").add(1);
    obs::EnergyLedger led;
    led.charge(1, obs::EnergyCause::burst_rx, 0.125);
    const std::string with = obs::to_json(reg.snapshot(), &led);
    EXPECT_NE(with.find("\"energy_ledger\":{\"total_j\":0.125"), std::string::npos);
    // Null ledger degrades to the plain document.
    EXPECT_EQ(obs::to_json(reg.snapshot(), nullptr), obs::to_json(reg.snapshot()));
}

TEST(EnergyLedgerTest, ScopeInstallsAndRestores) {
    EXPECT_EQ(obs::current_ledger(), nullptr);
    obs::EnergyLedger led;
    {
        obs::ScopedEnergyLedger scope(led);
        EXPECT_EQ(obs::current_ledger(), &led);
    }
    EXPECT_EQ(obs::current_ledger(), nullptr);
}

// ---- ledger reconciliation across the scenario grid ------------------------------

double result_energy_j(const core::ScenarioResult& result) {
    double sum = 0.0;
    for (const auto& c : result.clients) sum += c.wnic_energy.joules();
    return sum;
}

double causes_sum_j(const obs::EnergyLedger& led) {
    double sum = 0.0;
    for (std::size_t c = 0; c < obs::kEnergyCauseCount; ++c) {
        sum += led.cause_total(static_cast<obs::EnergyCause>(c));
    }
    return sum;
}

void expect_reconciles(const obs::EnergyLedger& led, const core::ScenarioResult& result) {
    ASSERT_FALSE(result.clients.empty());
    EXPECT_NEAR(led.total(), result_energy_j(result), 1e-9);
    EXPECT_NEAR(causes_sum_j(led), led.total(), 1e-9);
    EXPECT_EQ(led.clients().size(), result.clients.size());
}

TEST(LedgerReconcileTest, WlanCam) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 45_s;
    obs::EnergyLedger led;
    obs::ScopedEnergyLedger scope(led);
    expect_reconciles(led, backend.run(core::ScenarioSpec::cam().with_stream(config)));
}

TEST(LedgerReconcileTest, WlanPsmUnderFaults) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 60_s;
    config.fault_plan.beacon_loss(20_s, 3_s).poll_drop(30_s, 10_s, 0.5);
    obs::EnergyLedger led;
    obs::ScopedEnergyLedger scope(led);
    const auto result = backend.run(core::ScenarioSpec::psm().with_stream(config));
    EXPECT_EQ(result.faults_injected, 2u);
    expect_reconciles(led, result);
    // PSM spends real energy on beacon wakes; the ledger must see it.
    EXPECT_GT(led.cause_total(obs::EnergyCause::beacon_wake), 0.0);
}

TEST(LedgerReconcileTest, EcMac) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 45_s;
    obs::EnergyLedger led;
    obs::ScopedEnergyLedger scope(led);
    expect_reconciles(led, backend.run(core::ScenarioSpec::ecmac().with_stream(config)));
}

TEST(LedgerReconcileTest, BtActive) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 45_s;
    obs::EnergyLedger led;
    obs::ScopedEnergyLedger scope(led);
    expect_reconciles(led, backend.run(core::ScenarioSpec::bt().with_stream(config)));
}

TEST(LedgerReconcileTest, Hotspot) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 60_s;
    obs::EnergyLedger led;
    obs::ScopedEnergyLedger scope(led);
    const auto result = backend.run(core::ScenarioSpec::hotspot().with_stream(config));
    expect_reconciles(led, result);
    // Hotspot bursts are the whole point: burst_rx energy must dominate
    // mode switches, and both must be present.
    EXPECT_GT(led.cause_total(obs::EnergyCause::burst_rx), 0.0);
    EXPECT_GT(led.cause_total(obs::EnergyCause::mode_switch), 0.0);
}

TEST(LedgerReconcileTest, HotspotMixed) {
    core::StreamConfig config;
    config.clients = 3;
    config.duration = 45_s;
    core::MixedWorkload mix;
    mix.mp3_clients = 1;
    mix.video_clients = 1;
    mix.web_clients = 1;
    obs::EnergyLedger led;
    obs::ScopedEnergyLedger scope(led);
    expect_reconciles(led, backend.run(core::ScenarioSpec::hotspot_mixed()
                                           .with_stream(config)
                                           .with_mix(mix)));
}

TEST(LedgerReconcileTest, HotspotUnderCrashAndScheduleDrops) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 90_s;
    config.fault_plan.client_crash(30_s, 15_s, 1).schedule_drop(50_s, 10_s, 0.5);
    core::HotspotConfig options;
    options.resilience =
        core::ResilienceConfig{}.with_liveness_timeout(8_s).with_burst_repair(true);
    options.rejoin_enabled = true;
    obs::EnergyLedger led;
    obs::ScopedEnergyLedger scope(led);
    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));
    EXPECT_GT(result.faults_injected, 0u);
    expect_reconciles(led, result);
}

// ---- determinism: attribution must not perturb the run ---------------------------

TEST(CausalDeterminismTest, HotspotBitIdenticalWithAndWithoutScopes) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 60_s;
    const auto spec = core::ScenarioSpec::hotspot().with_stream(config);

    const auto bare = backend.run(spec);

    obs::EnergyLedger led;
    obs::FlightRecorder rec(512);
    obs::ScopedEnergyLedger ledger_scope(led);
    obs::ScopedFlightRecorder flight_scope(rec);
    const auto traced = backend.run(spec);

    ASSERT_EQ(bare.clients.size(), traced.clients.size());
    for (std::size_t i = 0; i < bare.clients.size(); ++i) {
        EXPECT_EQ(bare.clients[i].wnic_energy.joules(), traced.clients[i].wnic_energy.joules());
        EXPECT_EQ(bare.clients[i].wnic_average.watts(), traced.clients[i].wnic_average.watts());
        EXPECT_EQ(bare.clients[i].received, traced.clients[i].received);
        EXPECT_EQ(bare.clients[i].underruns, traced.clients[i].underruns);
        EXPECT_EQ(bare.clients[i].qos, traced.clients[i].qos);
    }
}

// ---- sim-time sampler ------------------------------------------------------------

TEST(SimSamplerTest, SamplesProbesAtTheConfiguredInterval) {
    sim::Simulator sim;
    int calls = 0;
    sim::SimSampler sampler(sim, 1_s);
    sampler.add_track("calls", [&calls] { return static_cast<double>(++calls); });
    sampler.add_track("sim time s", [&sim] { return sim.now().to_seconds(); });
    sampler.start();
    sim.run_until(5_s);
    sampler.stop();

    ASSERT_EQ(sampler.series().size(), 2u);
    const auto& series = sampler.series()[0];
    EXPECT_EQ(series.name, "calls");
    // One sample at start() plus one per elapsed second (t=5 fires before
    // run_until stops).
    ASSERT_EQ(series.samples.size(), 6u);
    EXPECT_EQ(series.samples.front().first, Time::zero());
    EXPECT_EQ(series.samples.back().first, 5_s);
    EXPECT_DOUBLE_EQ(series.samples.back().second, 6.0);
    EXPECT_DOUBLE_EQ(sampler.series()[1].samples[3].second, 3.0);
}

TEST(SimSamplerTest, StopHaltsSampling) {
    sim::Simulator sim;
    sim::SimSampler sampler(sim, 1_s);
    sampler.add_track("x", [] { return 1.0; });
    sampler.start();
    sim.run_until(2_s);
    sampler.stop();
    const std::size_t n = sampler.series()[0].samples.size();
    sim.run_until(10_s);
    EXPECT_EQ(sampler.series()[0].samples.size(), n);
}

// ---- post-mortem dumps -----------------------------------------------------------

TEST(PostMortemTest, DumpsOnlyAboveThresholdAndUpToMaxDumps) {
    obs::FlightRecorder rec(8);
    rec.record(make_event(1, obs::Hop::fault, 0, 1, obs::kFlightItfNone, 4));
    obs::PostMortemConfig cfg;
    cfg.threshold_s = 0.5;
    cfg.path_prefix = "obs_causal_pm_unit";
    cfg.max_dumps = 2;
    obs::PostMortem pm(rec, cfg);

    pm.on_recovery(0.1, 1);  // fast recovery: below threshold, no dump
    EXPECT_EQ(pm.dumps(), 0u);
    pm.on_recovery(1.5, 1);
    pm.on_recovery(2.5, 2);
    pm.on_recovery(3.5, 3);  // beyond max_dumps: ignored
    EXPECT_EQ(pm.dumps(), 2u);
    ASSERT_EQ(pm.files().size(), 2u);
    EXPECT_EQ(pm.files()[0], "obs_causal_pm_unit.c1.0.flight.json");
    EXPECT_EQ(pm.files()[1], "obs_causal_pm_unit.c2.1.flight.json");
    for (const std::string& path : pm.files()) {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr) << path;
        char first = 0;
        ASSERT_EQ(std::fread(&first, 1, 1, f), 1u);
        EXPECT_EQ(first, '{');
        std::fclose(f);
        std::remove(path.c_str());
    }
}

TEST(PostMortemTest, SlowRejoinRecoveryTriggersDump) {
    // A crashed client rejoining after ~17 s is far beyond a 1 s
    // threshold: the resilience layer must hand the recovery time to the
    // scoped post-mortem, which dumps the flight recorder's tail.
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 90_s;
    config.fault_plan.client_crash(30_s, 15_s, 1);
    core::HotspotConfig options;
    options.resilience =
        core::ResilienceConfig{}.with_liveness_timeout(8_s).with_burst_repair(true);
    options.rejoin_enabled = true;

    obs::FlightRecorder rec(256);
    obs::PostMortemConfig cfg;
    cfg.threshold_s = 1.0;
    cfg.path_prefix = "obs_causal_pm_scenario";
    obs::PostMortem pm(rec, cfg);
    obs::ScopedFlightRecorder flight_scope(rec);
    obs::ScopedPostMortem pm_scope(pm);

    const auto result = backend.run(
        core::ScenarioSpec::hotspot().with_stream(config).with_hotspot(options));
    EXPECT_GT(result.recovery.rejoins, 0u);
    EXPECT_GE(pm.dumps(), 1u);
    for (const std::string& path : pm.files()) std::remove(path.c_str());
}

// ---- flight hops from a real run (obs builds only) -------------------------------

TEST(FlightScenarioTest, HotspotRunRecordsCausalHopsWhenCompiledIn) {
    core::StreamConfig config;
    config.clients = 2;
    config.duration = 45_s;
    obs::FlightRecorder rec(4096);
    obs::ScopedFlightRecorder scope(rec);
    (void)backend.run(core::ScenarioSpec::hotspot().with_stream(config));
#if defined(WLANPS_OBS_ENABLED)
    // The causal chain must cover the scheduler and the radio: bursts are
    // enqueued, scheduled, woken for, and received, all flow-stamped.
    ASSERT_GT(rec.total(), 0u);
    bool saw_enqueued = false, saw_scheduled = false, saw_rx = false, saw_wake = false;
    bool saw_flow = false;
    for (const obs::FlightEvent& e : rec.events()) {
        saw_enqueued |= e.hop == obs::Hop::enqueued;
        saw_scheduled |= e.hop == obs::Hop::scheduled;
        saw_rx |= e.hop == obs::Hop::rx;
        saw_wake |= e.hop == obs::Hop::doze_wakeup;
        saw_flow |= e.flow != 0;
    }
    EXPECT_TRUE(saw_enqueued);
    EXPECT_TRUE(saw_scheduled);
    EXPECT_TRUE(saw_rx);
    EXPECT_TRUE(saw_wake);
    EXPECT_TRUE(saw_flow);
#else
    // Hop recording compiles out entirely in default builds.
    EXPECT_EQ(rec.total(), 0u);
#endif
}

}  // namespace
}  // namespace wlanps
