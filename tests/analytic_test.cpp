/// Analytic-backend tests: closed-form building blocks against
/// hand-computed fixtures, model monotonicities, the Backend contract
/// (seed-invariance, unsupported-spec rejection, result shape), spec
/// validation, and the sim <-> analytic cross-validation bands that
/// license using the closed form to screen experiment grids.

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/backend.hpp"
#include "analytic/model.hpp"
#include "core/backend.hpp"
#include "core/scenario_spec.hpp"
#include "phy/calibration.hpp"
#include "policy/policy.hpp"
#include "sim/assert.hpp"

namespace wlanps::analytic {
namespace {

namespace cal = phy::calibration;

const AnalyticBackend analytic;
const core::SimBackend sim;

double rel_err(double model, double truth) { return (model - truth) / truth; }

core::StreamConfig stream(int clients, double seconds) {
    core::StreamConfig config;
    config.clients = clients;
    config.duration = Time::from_seconds(seconds);
    return config;
}

// ---- link-layer building blocks ---------------------------------------------------

TEST(AnalyticLinkTest, BadStateFractionMatchesStationaryDistribution) {
    GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    EXPECT_NEAR(bad_state_fraction(link), 40.0 / 840.0, 1e-12);
    EXPECT_NEAR(bad_state_fraction(link), 1.0 - link.stationary_good(), 1e-12);
}

TEST(AnalyticLinkTest, FrameErrorProbZeroOnPerfectLink) {
    GilbertElliottConfig perfect{Time::from_ms(800), Time::from_ms(40), 0.0, 0.0};
    EXPECT_DOUBLE_EQ(frame_error_prob(perfect, DataSize::from_bytes(1500)), 0.0);
}

TEST(AnalyticLinkTest, FrameErrorProbHandComputed) {
    // Single-state channel (ber identical in both states): the mixture
    // collapses to 1 - (1-ber)^bits.
    GilbertElliottConfig flat{Time::from_ms(800), Time::from_ms(40), 1e-5, 1e-5};
    const DataSize frame = DataSize::from_bytes(100);
    const double expected = 1.0 - std::pow(1.0 - 1e-5, 800.0);
    EXPECT_NEAR(frame_error_prob(flat, frame), expected, 1e-12);
}

TEST(AnalyticLinkTest, FrameErrorProbGrowsWithFrameSize) {
    GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    EXPECT_LT(frame_error_prob(link, DataSize::from_bytes(100)),
              frame_error_prob(link, DataSize::from_bytes(1500)));
}

TEST(AnalyticLinkTest, ExpectedAttemptsHandComputed) {
    EXPECT_DOUBLE_EQ(expected_attempts(0.0, 7), 1.0);
    // (1 - 0.5^3) / (1 - 0.5) = 1.75
    EXPECT_NEAR(expected_attempts(0.5, 3), 1.75, 1e-12);
    // Attempts grow with the error probability.
    EXPECT_GT(expected_attempts(0.2, 7), expected_attempts(0.1, 7));
}

TEST(AnalyticLinkTest, DcfAccessTimeIsDifsPlusMeanBackoff) {
    const Time expected =
        cal::kWlanDifs + cal::kWlanSlot * (static_cast<double>(cal::kWlanCwMin) / 2.0);
    EXPECT_NEAR(dcf_access_time().to_seconds(), expected.to_seconds(), 1e-12);
}

TEST(AnalyticLinkTest, FrameAirtimeHandComputed) {
    // 418 B MP3 frame + 34 B MAC header at 11 Mb/s, plus the PLCP overhead.
    const DataSize payload = cal::kMp3FrameSize;
    const Time expected =
        cal::kWlanPlcpOverhead + cal::kWlanRate11.transmit_time(payload + cal::kWlanMacHeader);
    EXPECT_NEAR(wlan_frame_airtime(payload, cal::kWlanRate11).to_seconds(),
                expected.to_seconds(), 1e-12);
}

TEST(AnalyticLinkTest, AckAirtimeHandComputed) {
    const Time expected = cal::kWlanPlcpOverhead + cal::kWlanRate2.transmit_time(cal::kWlanAckFrame);
    EXPECT_NEAR(wlan_ack_airtime().to_seconds(), expected.to_seconds(), 1e-12);
}

// ---- model shapes ------------------------------------------------------------------

TEST(AnalyticModelTest, CamSitsJustAboveIdleFloor) {
    const phy::WlanNicConfig nic;
    const GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    const auto p = cam_station_power(nic, link);
    // Mostly idle listening, with small rx/tx excursions for the stream.
    EXPECT_GT(p.watts(), nic.idle.watts());
    EXPECT_LT(p.watts(), nic.idle.watts() * 1.05);
}

TEST(AnalyticModelTest, PsmPowerFallsWithListenInterval) {
    const phy::WlanNicConfig nic;
    const GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    PsmModelParams every;
    every.listen_interval = 1;
    PsmModelParams third;
    third.listen_interval = 3;
    EXPECT_LE(psm_station_power(third, nic, link).watts(),
              psm_station_power(every, nic, link).watts() * 1.001);
}

TEST(AnalyticModelTest, PsmPowerGrowsWithContendingStations) {
    const phy::WlanNicConfig nic;
    const GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    PsmModelParams one;
    one.stations = 1;
    PsmModelParams eight;
    eight.stations = 8;
    EXPECT_GT(psm_station_power(eight, nic, link).watts(),
              psm_station_power(one, nic, link).watts());
}

TEST(AnalyticModelTest, PsmAggregationSavesEnergy) {
    const phy::WlanNicConfig nic;
    const GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    PsmModelParams plain;
    PsmModelParams agg;
    agg.aggregate_limit = 8;
    EXPECT_LT(psm_station_power(agg, nic, link).watts(),
              psm_station_power(plain, nic, link).watts());
}

TEST(AnalyticModelTest, PsmSaturationClampsToAlwaysAwake) {
    const phy::WlanNicConfig nic;
    const GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    PsmModelParams jammed;
    jammed.stations = 500;  // cycles cannot fit 500 stations' retrievals
    const auto p = psm_station_power(jammed, nic, link);
    // The clamp caps at the awake mixture: never above rx, never below idle.
    EXPECT_GE(p.watts(), nic.idle.watts() * 0.99);
    EXPECT_LE(p.watts(), nic.rx.watts());
}

TEST(AnalyticModelTest, PsmSaturationThroughputFallsWithStations) {
    const phy::WlanNicConfig nic;
    const Rate t1 = psm_saturation_throughput(1, nic);
    const Rate t4 = psm_saturation_throughput(4, nic);
    const Rate t16 = psm_saturation_throughput(16, nic);
    EXPECT_GT(t1.bps(), t4.bps());
    EXPECT_GT(t4.bps(), t16.bps());
    // Goodput can never exceed the PHY rate.
    EXPECT_LT(t1.bps(), nic.phy_rate.bps());
}

TEST(AnalyticModelTest, BtActiveBetweenParkAndActiveFloor) {
    const phy::BtNicConfig nic;
    const GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    const auto p = bt_active_power(nic, link);
    // An always-active slave pays at least the active floor, plus rx/tx
    // excursions — but stays below the all-rx ceiling.
    EXPECT_GT(p.watts(), nic.active.watts());
    EXPECT_LT(p.watts(), nic.rx.watts());
}

TEST(AnalyticModelTest, HotspotPrefersBluetoothWhenAvailable) {
    const phy::WlanNicConfig wlan;
    const phy::BtNicConfig bt;
    const GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    HotspotModelParams both;
    HotspotModelParams wlan_only;
    wlan_only.bt_available = false;
    const auto p_bt = hotspot_client_power(both, wlan, bt, link, link);
    const auto p_wlan = hotspot_client_power(wlan_only, wlan, bt, link, link);
    EXPECT_LT(p_bt.watts(), p_wlan.watts());
    // Either way the scheduled client is far below an always-on WLAN NIC.
    EXPECT_LT(p_wlan.watts(), wlan.idle.watts() / 2.0);
}

TEST(AnalyticModelTest, HotspotBiggerBurstsCostLessOverhead) {
    const phy::WlanNicConfig wlan;
    const phy::BtNicConfig bt;
    const GilbertElliottConfig link{Time::from_ms(800), Time::from_ms(40), 1e-7, 1e-4};
    HotspotModelParams small;
    small.target_burst = DataSize::from_kilobytes(16);
    HotspotModelParams big;
    big.target_burst = DataSize::from_kilobytes(96);
    // Fewer wake transitions per byte: bigger bursts can't cost more.
    EXPECT_LE(hotspot_client_power(big, wlan, bt, link, link).watts(),
              hotspot_client_power(small, wlan, bt, link, link).watts() * 1.001);
}

// ---- the Backend contract ----------------------------------------------------------

TEST(AnalyticBackendTest, MakeBackendResolvesBothEngines) {
    EXPECT_EQ(make_backend("sim")->name(), "sim");
    EXPECT_EQ(make_backend("analytic")->name(), "analytic");
}

TEST(AnalyticBackendTest, MakeBackendRejectsUnknownName) {
    EXPECT_THROW((void)make_backend("bogus"), ContractViolation);
}

TEST(AnalyticBackendTest, SeedInvariantForEveryPolicy) {
    for (auto spec :
         {core::ScenarioSpec::cam(), core::ScenarioSpec::psm(), core::ScenarioSpec::bt(),
          core::ScenarioSpec::hotspot()}) {
        spec.with_stream(stream(2, 60));
        const auto a = analytic.run(spec, 1);
        const auto b = analytic.run(spec, 999);
        ASSERT_EQ(a.clients.size(), b.clients.size()) << a.label;
        for (std::size_t i = 0; i < a.clients.size(); ++i) {
            EXPECT_EQ(a.clients[i].wnic_average.watts(), b.clients[i].wnic_average.watts())
                << a.label;
        }
    }
}

TEST(AnalyticBackendTest, AllClientsIdenticalByConstruction) {
    const auto result = analytic.run(core::ScenarioSpec::psm().with_stream(stream(4, 60)));
    ASSERT_EQ(result.clients.size(), 4u);
    for (const auto& c : result.clients) {
        EXPECT_EQ(c.wnic_average.watts(), result.clients[0].wnic_average.watts());
    }
}

TEST(AnalyticBackendTest, ResultShapeMatchesSpec) {
    const auto config = stream(3, 120);
    const auto result = analytic.run(core::ScenarioSpec::hotspot().with_stream(config));
    EXPECT_EQ(result.label, "hotspot-edf");
    ASSERT_EQ(result.clients.size(), 3u);
    const auto& c = result.clients.front();
    EXPECT_DOUBLE_EQ(c.qos, 1.0);
    EXPECT_EQ(c.underruns, 0u);
    // Energy integrates the mean power over the run.
    EXPECT_NEAR(c.wnic_energy.joules(),
                c.wnic_average.over(config.duration).joules(), 1e-9);
    // Device power adds the platform base.
    EXPECT_NEAR(c.device_average.watts(),
                c.wnic_average.watts() + cal::kIpaqBase.watts(), 1e-9);
    // The steady-state model delivers the full stream.
    EXPECT_EQ(c.received, cal::kMp3Rate.data_in(config.duration));
}

TEST(AnalyticBackendTest, RejectsEcmacWithActionableReason) {
    const auto spec = core::ScenarioSpec::ecmac().with_stream(stream(2, 60));
    EXPECT_FALSE(analytic.unsupported_reason(spec).empty());
    EXPECT_THROW((void)analytic.run(spec), ContractViolation);
}

TEST(AnalyticBackendTest, RejectsMixedWorkloads) {
    const auto spec = core::ScenarioSpec::hotspot_mixed().with_stream(stream(2, 60));
    EXPECT_NE(analytic.unsupported_reason(spec).find("sim backend"), std::string::npos);
    EXPECT_THROW((void)analytic.run(spec), ContractViolation);
}

TEST(AnalyticBackendTest, RejectsFaultPlans) {
    auto config = stream(2, 60);
    config.fault_plan.beacon_loss(Time::from_seconds(10), Time::from_seconds(5));
    const auto spec = core::ScenarioSpec::psm().with_stream(config);
    EXPECT_FALSE(analytic.unsupported_reason(spec).empty());
    EXPECT_THROW((void)analytic.run(spec), ContractViolation);
}

TEST(AnalyticBackendTest, RejectsSimOnlyHotspotCallbacks) {
    core::HotspotConfig options;
    options.inspect = [](sim::Simulator&, core::HotspotServer&,
                         std::vector<core::HotspotClient*>&) {};
    const auto spec =
        core::ScenarioSpec::hotspot().with_stream(stream(2, 60)).with_hotspot(options);
    EXPECT_FALSE(analytic.unsupported_reason(spec).empty());
    EXPECT_THROW((void)analytic.run(spec), ContractViolation);
}

TEST(AnalyticBackendTest, SupportedSpecsReportNoReason) {
    for (auto spec :
         {core::ScenarioSpec::cam(), core::ScenarioSpec::psm(), core::ScenarioSpec::bt(),
          core::ScenarioSpec::hotspot()}) {
        spec.with_stream(stream(2, 60));
        EXPECT_EQ(analytic.unsupported_reason(spec), "") << spec.label();
    }
}

TEST(AnalyticBackendTest, RejectsEventDrivenPowerPoliciesByName) {
    // The refusal must name the offending policy and point at the sim
    // backend, so a user sweeping --policy knows exactly what to change.
    const struct {
        policy::PolicyKind kind;
        const char* name;
    } refused[] = {{policy::PolicyKind::micro_nap, "micro_nap"},
                   {policy::PolicyKind::pamas, "pamas"},
                   {policy::PolicyKind::ecmac, "EC-MAC"}};
    for (const auto& [kind, name] : refused) {
        const auto spec = core::ScenarioSpec::cam()
                              .with_stream(stream(2, 60))
                              .with_power_policy(policy::PowerPolicyConfig::of(kind));
        const std::string reason = analytic.unsupported_reason(spec);
        EXPECT_NE(reason.find(name), std::string::npos) << reason;
        EXPECT_NE(reason.find("sim backend"), std::string::npos) << reason;
        EXPECT_THROW((void)analytic.run(spec), ContractViolation);
    }
}

TEST(AnalyticBackendTest, AdapterPowerPoliciesMapOntoClosedForms) {
    for (const auto kind : {policy::PolicyKind::cam, policy::PolicyKind::psm}) {
        const auto spec = core::ScenarioSpec::cam()
                              .with_stream(stream(2, 60))
                              .with_power_policy(policy::PowerPolicyConfig::of(kind));
        EXPECT_EQ(analytic.unsupported_reason(spec), "") << spec.label();
        const auto result = analytic.run(spec);
        ASSERT_EQ(result.clients.size(), 2u);
        EXPECT_GT(result.clients.front().wnic_average.watts(), 0.0);
    }
    // The psm adapter's closed form must agree with the native psm spec.
    const auto native = analytic.run(core::ScenarioSpec::psm().with_stream(stream(2, 60)));
    const auto adapted = analytic.run(
        core::ScenarioSpec::cam().with_stream(stream(2, 60)).with_power_policy(
            policy::PowerPolicyConfig::of(policy::PolicyKind::psm)));
    EXPECT_DOUBLE_EQ(adapted.clients.front().wnic_average.watts(),
                     native.clients.front().wnic_average.watts());
}

// ---- ScenarioSpec validation -------------------------------------------------------

TEST(ScenarioSpecValidation, RejectsZeroDuration) {
    EXPECT_THROW((void)analytic.run(core::ScenarioSpec::cam().with_stream(stream(1, 0))),
                 ContractViolation);
}

TEST(ScenarioSpecValidation, RejectsSubConfigOnWrongPolicy) {
    core::PsmConfig psm_options;
    EXPECT_THROW((void)core::ScenarioSpec::cam()
                     .with_stream(stream(1, 60))
                     .with_psm(psm_options)
                     .validate(),
                 ContractViolation);
}

TEST(ScenarioSpecValidation, RejectsBadPsmParameters) {
    core::PsmConfig bad;
    bad.listen_interval = 0;
    EXPECT_THROW((void)core::ScenarioSpec::psm()
                     .with_stream(stream(1, 60))
                     .with_psm(bad)
                     .validate(),
                 ContractViolation);
}

TEST(ScenarioSpecValidation, RejectsHotspotWithNoInterfaces) {
    core::HotspotConfig neither;
    neither.wlan_available = false;
    neither.bt_available = false;
    const auto spec =
        core::ScenarioSpec::hotspot().with_stream(stream(1, 60)).with_hotspot(neither);
    EXPECT_THROW((void)analytic.run(spec), ContractViolation);
    EXPECT_THROW((void)sim.run(spec), ContractViolation);
}

// ---- sim <-> analytic cross-validation ---------------------------------------------
//
// The license to screen grids analytically: on the Figure 2 workload the
// closed form must track the simulator within narrow bands.  Errors are
// per-client means, so the band is widest for small-N PSM (one station's
// realization scatters most) and tightens as N grows.

TEST(CrossValidationTest, CamAgreesAlmostExactly) {
    const auto config = stream(2, 120);
    const auto spec = core::ScenarioSpec::cam().with_stream(config);
    const double s = sim.run(spec).mean_wnic().watts();
    const double a = analytic.run(spec).mean_wnic().watts();
    EXPECT_LT(std::fabs(rel_err(a, s)), 0.005) << "sim " << s << " analytic " << a;
}

TEST(CrossValidationTest, BtActiveAgreesAlmostExactly) {
    const auto spec = core::ScenarioSpec::bt().with_stream(stream(2, 120));
    const double s = sim.run(spec).mean_wnic().watts();
    const double a = analytic.run(spec).mean_wnic().watts();
    EXPECT_LT(std::fabs(rel_err(a, s)), 0.01) << "sim " << s << " analytic " << a;
}

TEST(CrossValidationTest, HotspotAgreesWithinTwoPercent) {
    const auto spec = core::ScenarioSpec::hotspot().with_stream(stream(3, 120));
    const double s = sim.run(spec).mean_wnic().watts();
    const double a = analytic.run(spec).mean_wnic().watts();
    EXPECT_LT(std::fabs(rel_err(a, s)), 0.02) << "sim " << s << " analytic " << a;
}

class PsmAgreementSweep : public ::testing::TestWithParam<int> {};

TEST_P(PsmAgreementSweep, PsmAgreesAcrossStationCounts) {
    const int n = GetParam();
    // Two seeds knock down the single-realization scatter the closed form
    // cannot (and should not) reproduce.
    auto config = stream(n, 120);
    const auto spec = core::ScenarioSpec::psm().with_stream(config);
    const double s1 = sim.run(spec, 42).mean_wnic().watts();
    const double s2 = sim.run(spec, 43).mean_wnic().watts();
    const double s = 0.5 * (s1 + s2);
    const double a = analytic.run(spec).mean_wnic().watts();
    EXPECT_LT(std::fabs(rel_err(a, s)), 0.06)
        << "N=" << n << " sim " << s << " analytic " << a;
}

INSTANTIATE_TEST_SUITE_P(StationCounts, PsmAgreementSweep, ::testing::Values(1, 2, 4, 8));

TEST(CrossValidationTest, SavingPercentMatchesOnTheHeadlineClaim) {
    // The quantity the benches publish: CAM -> Hotspot WNIC saving.
    const auto config = stream(3, 120);
    auto saving = [&](const core::Backend& backend) {
        const double cam =
            backend.run(core::ScenarioSpec::cam().with_stream(config)).mean_wnic().watts();
        const double hs =
            backend.run(core::ScenarioSpec::hotspot().with_stream(config)).mean_wnic().watts();
        return 100.0 * (1.0 - hs / cam);
    };
    EXPECT_NEAR(saving(analytic), saving(sim), 1.0);  // within one point
}

}  // namespace
}  // namespace wlanps::analytic
