/// Unit tests for the WLAN and Bluetooth NIC device models.

#include <gtest/gtest.h>

#include "phy/bt_nic.hpp"
#include "phy/calibration.hpp"
#include "phy/wlan_nic.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps::phy {
namespace {

using namespace time_literals;

TEST(WlanNicTest, InitialStateAndPower) {
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::idle);
    EXPECT_EQ(nic.state(), WlanNic::State::idle);
    EXPECT_TRUE(nic.awake());
    sim.run_until(1_s);
    EXPECT_NEAR(nic.average_power().watts(), calibration::kWlanIdle.watts(), 1e-9);
}

TEST(WlanNicTest, DozePowerAndWakeLatency) {
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::idle);
    nic.doze();
    sim.run_until(1_s);
    EXPECT_EQ(nic.state(), WlanNic::State::doze);
    EXPECT_FALSE(nic.awake());

    Time woke_at = Time::zero();
    nic.wake([&] { woke_at = sim.now(); });
    sim.run_until(2_s);
    EXPECT_EQ(woke_at - 1_s, calibration::kWlanDozeWakeLatency);
    EXPECT_TRUE(nic.awake());
}

TEST(WlanNicTest, DeepSleepIsOffWithResumeCost) {
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::idle);
    nic.deep_sleep();
    sim.run_until(1_s);
    EXPECT_EQ(nic.state(), WlanNic::State::off);
    const power::Energy at_off = nic.energy_consumed();
    Time woke_at = Time::zero();
    nic.wake([&] { woke_at = sim.now(); });
    sim.run_until(2_s);
    EXPECT_EQ(woke_at - 1_s, calibration::kWlanResumeLatency);  // 300 ms resume
    // Resume energy = resume draw over resume latency.
    const power::Energy resume = nic.energy_consumed() - at_off -
                                 calibration::kWlanIdle.over(2_s - woke_at);
    EXPECT_NEAR(resume.joules(),
                calibration::kWlanResumeDraw.over(calibration::kWlanResumeLatency).joules(),
                1e-6);
}

TEST(WlanNicTest, OccupyAccountsTxRxEnergy) {
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::idle);
    nic.occupy(WlanNic::State::tx, 100_ms);
    sim.run_until(100_ms);
    EXPECT_EQ(nic.state(), WlanNic::State::idle);  // released
    EXPECT_EQ(nic.residency(WlanNic::State::tx), 100_ms);
    EXPECT_NEAR(nic.energy_consumed().joules(), calibration::kWlanTx.over(100_ms).joules(),
                1e-9);
}

TEST(WlanNicTest, OccupyReleaseYieldsToResourceManager) {
    // If a resource manager requests off at the exact end of an occupancy,
    // the release must not yank the NIC back to idle.
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::idle);
    nic.occupy(WlanNic::State::rx, 100_ms);
    // Same-timestamp, earlier-seq event (scheduled first) requesting off.
    sim.schedule_at(100_ms, [&] { nic.deep_sleep(); });
    sim.run_until(2_s);
    EXPECT_EQ(nic.state(), WlanNic::State::off);
}

TEST(WlanNicTest, OccupyRequiresAwake) {
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::off);
    EXPECT_THROW(nic.occupy(WlanNic::State::rx, 1_ms), ContractViolation);
}

TEST(WlanNicTest, OccupyRejectsNonRadioStates) {
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::idle);
    EXPECT_THROW(nic.occupy(WlanNic::State::doze, 1_ms), ContractViolation);
}

TEST(WlanNicTest, FrameAirtimeIncludesPlcp) {
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::idle);
    const Time air = nic.frame_airtime(DataSize::from_bytes(1500), calibration::kWlanRate11);
    const Time expected = calibration::kWlanPlcpOverhead +
                          calibration::kWlanRate11.transmit_time(DataSize::from_bytes(1500));
    EXPECT_EQ(air, expected);
    // ~1.28 ms for a 1500 B frame at 11 Mb/s with the 192 us preamble.
    EXPECT_NEAR(air.to_us(), 192.0 + 1090.9, 2.0);
}

TEST(WlanNicTest, SustainedRateAppliesEfficiency) {
    sim::Simulator sim;
    WlanNicConfig cfg;
    cfg.goodput_efficiency = 0.5;
    WlanNic nic(sim, cfg, WlanNic::State::idle);
    EXPECT_NEAR(nic.sustained_rate().mbps(), 5.5, 1e-9);
}

TEST(WlanNicTest, WnicInterfaceViewsAreConsistent) {
    sim::Simulator sim;
    WlanNic nic(sim, WlanNicConfig{}, WlanNic::State::idle);
    Wnic& wnic = nic;
    EXPECT_EQ(wnic.interface(), Interface::wlan);
    EXPECT_EQ(wnic.wake_latency(), calibration::kWlanResumeLatency);
    EXPECT_EQ(wnic.active_power(), calibration::kWlanRx);
    EXPECT_TRUE(wnic.sleep_power().is_zero());  // deep sleep = off
    EXPECT_EQ(std::string(to_string(wnic.interface())), "WLAN");
}

TEST(BtNicTest, ParkPowerAndUnparkLatency) {
    sim::Simulator sim;
    BtNic nic(sim, BtNicConfig{}, BtNic::State::active);
    nic.deep_sleep();
    sim.run_until(1_s);
    EXPECT_EQ(nic.state(), BtNic::State::park);
    EXPECT_FALSE(nic.awake());

    Time woke_at = Time::zero();
    nic.wake([&] { woke_at = sim.now(); });
    sim.run_until(2_s);
    EXPECT_EQ(woke_at - 1_s, calibration::kBtUnparkLatency);
    EXPECT_TRUE(nic.awake());
}

TEST(BtNicTest, ParkDrawsMilliwatts) {
    sim::Simulator sim;
    BtNic nic(sim, BtNicConfig{}, BtNic::State::park);
    sim.run_until(10_s);
    EXPECT_NEAR(nic.average_power().watts(), calibration::kBtPark.watts(), 1e-9);
}

TEST(BtNicTest, ConnectFromOffTakesSeconds) {
    sim::Simulator sim;
    BtNic nic(sim, BtNicConfig{}, BtNic::State::off);
    Time woke_at = Time::zero();
    nic.wake([&] { woke_at = sim.now(); });
    sim.run_until(10_s);
    EXPECT_EQ(woke_at, calibration::kBtConnectLatency);
}

TEST(BtNicTest, SniffStateAndReturn) {
    sim::Simulator sim;
    BtNic nic(sim, BtNicConfig{}, BtNic::State::active);
    nic.request_state(BtNic::State::sniff);
    sim.run_until(1_s);
    EXPECT_EQ(nic.state(), BtNic::State::sniff);
    nic.request_state(BtNic::State::active);
    sim.run_until(2_s);
    EXPECT_EQ(nic.state(), BtNic::State::active);
    EXPECT_EQ(nic.entries(BtNic::State::sniff), 1u);
}

TEST(BtNicTest, OccupyReleaseYieldsToPark) {
    sim::Simulator sim;
    BtNic nic(sim, BtNicConfig{}, BtNic::State::active);
    nic.occupy(BtNic::State::rx, 10_ms);
    sim.schedule_at(10_ms, [&] { nic.deep_sleep(); });
    sim.run_until(1_s);
    EXPECT_EQ(nic.state(), BtNic::State::park);
}

TEST(BtNicTest, WnicInterfaceViews) {
    sim::Simulator sim;
    BtNic nic(sim, BtNicConfig{}, BtNic::State::active);
    Wnic& wnic = nic;
    EXPECT_EQ(wnic.interface(), Interface::bluetooth);
    EXPECT_EQ(wnic.sleep_power(), calibration::kBtPark);
    EXPECT_NEAR(wnic.sustained_rate().kbps(), 723.2 * 0.8, 0.1);
}

TEST(CalibrationTest, PaperFactsHold) {
    // TX and RX draw similar power; idle listening is nearly as expensive
    // as RX (the paper's §1 premise).
    EXPECT_NEAR(calibration::kWlanTx / calibration::kWlanRx, 1.47, 0.05);
    EXPECT_GT(calibration::kWlanIdle / calibration::kWlanRx, 0.8);
    // Doze is an order of magnitude below idle; BT park below BT active.
    EXPECT_LT(calibration::kWlanDoze.watts() * 10, calibration::kWlanIdle.watts());
    EXPECT_LT(calibration::kBtPark.watts() * 5, calibration::kBtActive.watts());
    // DH5 peak rate sanity: 339 B / 6 slots.
    EXPECT_NEAR(static_cast<double>(calibration::kBtDh5Payload.bits()) /
                    (6.0 * calibration::kBtSlot.to_seconds()),
                calibration::kBtAclPeak.bps(), 1000.0);
    // MP3: frame size/interval consistent with 128 kb/s.
    EXPECT_NEAR(static_cast<double>(calibration::kMp3FrameSize.bits()) /
                    calibration::kMp3FrameInterval.to_seconds(),
                calibration::kMp3Rate.bps(), 1000.0);
}

}  // namespace
}  // namespace wlanps::phy
