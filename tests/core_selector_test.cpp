/// Tests for burst channels and the interface selector.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bt/piconet.hpp"
#include "core/burst_channel.hpp"
#include "core/selector.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace wlanps::core {
namespace {

using namespace time_literals;
using phy::calibration::kMp3Rate;

struct ChannelFixture {
    sim::Simulator sim;
    sim::Random root{61};
    phy::WlanNic wlan_nic{sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle};
    std::unique_ptr<channel::WirelessLink> wlan_link;
    std::unique_ptr<WlanBurstChannel> wlan;

    bt::Piconet piconet{sim, bt::PiconetConfig{}, sim::Random(62)};
    bt::BtSlave slave{sim, phy::BtNicConfig{}, phy::BtNic::State::active};
    bt::SlaveId sid;
    std::unique_ptr<BtBurstChannel> bt;

    ChannelFixture() {
        wlan_link = std::make_unique<channel::WirelessLink>(channel::GilbertElliottConfig{},
                                                            root.fork(1));
        wlan = std::make_unique<WlanBurstChannel>(sim, wlan_nic, wlan_link.get());
        sid = piconet.join(slave);
        bt = std::make_unique<BtBurstChannel>(piconet, sid, slave);
    }
};

TEST(BurstChannelTest, WlanTransferDeliversProgressively) {
    ChannelFixture f;
    DataSize seen;
    f.wlan->set_delivery_sink([&](DataSize s) { seen += s; });
    BurstChannel::Result result;
    f.wlan->transfer(DataSize::from_kilobytes(16), [&](const BurstChannel::Result& r) {
        result = r;
    });
    EXPECT_TRUE(f.wlan->busy());
    f.sim.run();
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.delivered, DataSize::from_kilobytes(16));
    EXPECT_EQ(seen, DataSize::from_kilobytes(16));
    EXPECT_FALSE(f.wlan->busy());
    // Elapsed consistent with the channel's advertised goodput.
    const double expected_s =
        static_cast<double>(DataSize::from_kilobytes(16).bits()) / f.wlan->goodput().bps();
    EXPECT_NEAR(result.elapsed.to_seconds(), expected_s, expected_s * 0.1);
}

TEST(BurstChannelTest, WlanGoodputAccountsOverheads) {
    ChannelFixture f;
    // Must be well below the 11 Mb/s PHY rate but above half of it.
    EXPECT_LT(f.wlan->goodput().mbps(), 11.0);
    EXPECT_GT(f.wlan->goodput().mbps(), 5.5);
}

TEST(BurstChannelTest, WlanRequiresAwakeNic) {
    ChannelFixture f;
    f.wlan_nic.deep_sleep();
    f.sim.run();
    EXPECT_THROW(f.wlan->transfer(DataSize::from_bytes(100), {}), ContractViolation);
}

TEST(BurstChannelTest, WlanRetriesExhaustIntoLoss) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    channel::GilbertElliottConfig dead;
    dead.ber_good = dead.ber_bad = 0.01;  // everything fails
    channel::WirelessLink link(dead, sim::Random(63));
    WlanBurstChannel ch(sim, nic, &link);
    BurstChannel::Result result;
    ch.transfer(DataSize::from_bytes(1500), [&](const BurstChannel::Result& r) { result = r; });
    sim.run();
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.lost, DataSize::from_bytes(1500));
}

TEST(BurstChannelTest, BtTransferFeedsSink) {
    ChannelFixture f;
    DataSize seen;
    f.bt->set_delivery_sink([&](DataSize s) { seen += s; });
    BurstChannel::Result result;
    f.bt->transfer(DataSize::from_kilobytes(8), [&](const BurstChannel::Result& r) {
        result = r;
    });
    f.sim.run();
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(seen, DataSize::from_kilobytes(8));
    EXPECT_NEAR(f.bt->goodput().kbps(), 723.2, 0.1);
}

TEST(BurstChannelTest, InterfacesReportThemselves) {
    ChannelFixture f;
    EXPECT_EQ(f.wlan->interface(), phy::Interface::wlan);
    EXPECT_EQ(f.bt->interface(), phy::Interface::bluetooth);
    EXPECT_EQ(&f.wlan->wnic(), static_cast<phy::Wnic*>(&f.wlan_nic));
}

TEST(SelectorTest, PredictedPowerPrefersBtAtAudioRates) {
    ChannelFixture f;
    const DataSize burst = DataSize::from_kilobytes(48);
    const auto p_wlan = InterfaceSelector::predicted_power(*f.wlan, kMp3Rate, burst);
    const auto p_bt = InterfaceSelector::predicted_power(*f.bt, kMp3Rate, burst);
    EXPECT_LT(p_bt, p_wlan);
}

TEST(SelectorTest, PredictedPowerPrefersWlanForHugeBursts) {
    ChannelFixture f;
    const DataSize burst = DataSize::from_kilobytes(384);
    const auto p_wlan = InterfaceSelector::predicted_power(*f.wlan, kMp3Rate, burst);
    const auto p_bt = InterfaceSelector::predicted_power(*f.bt, kMp3Rate, burst);
    EXPECT_LT(p_wlan, p_bt);  // long off periods amortize the 300 ms resume
}

TEST(SelectorTest, InfeasibleRateFallsBackToUpperBound) {
    ChannelFixture f;
    // 2 Mb/s stream exceeds BT goodput: predicted power = active power.
    const auto p = InterfaceSelector::predicted_power(*f.bt, Rate::from_mbps(2),
                                                      DataSize::from_kilobytes(48));
    EXPECT_EQ(p, f.bt->wnic().active_power());
}

TEST(SelectorTest, FeasibilityChecksQualityAndRate) {
    ChannelFixture f;
    InterfaceSelector selector(SelectorConfig{});
    EXPECT_TRUE(selector.feasible(*f.bt, kMp3Rate, Time::zero()));
    EXPECT_FALSE(selector.feasible(*f.bt, Rate::from_mbps(1), Time::zero()));  // rate margin
    // Degrade the BT link below the quality threshold.
    channel::ScriptedQuality script;
    script.add_point(1_ms, 0.1);
    f.piconet.set_link(f.sid, channel::GilbertElliottConfig{}, f.root.fork(9));
    f.piconet.set_link_script(f.sid, script);
    EXPECT_FALSE(selector.feasible(*f.bt, kMp3Rate, 1_s));
}

TEST(SelectorTest, SelectsBtThenSwitchesOnDegradation) {
    ChannelFixture f;
    f.piconet.set_link(f.sid, channel::GilbertElliottConfig{}, f.root.fork(9));
    InterfaceSelector selector(SelectorConfig{});
    std::vector<BurstChannel*> channels = {f.wlan.get(), f.bt.get()};
    const DataSize burst = DataSize::from_kilobytes(48);

    const std::size_t first = selector.select(channels, kMp3Rate, burst, Time::zero(),
                                              channels.size());
    EXPECT_EQ(first, 1u);  // BT

    // Degrade BT: selection must move to WLAN.
    channel::ScriptedQuality script;
    script.add_point(1_s, 1.0);
    script.add_point(2_s, 0.1);
    f.piconet.set_link_script(f.sid, script);
    const std::size_t after = selector.select(channels, kMp3Rate, burst, 3_s, first);
    EXPECT_EQ(after, 0u);  // WLAN
}

TEST(SelectorTest, HysteresisPreventsFlapping) {
    ChannelFixture f;
    SelectorConfig cfg;
    cfg.switch_gain = 100.0;  // absurdly sticky
    InterfaceSelector selector(cfg);
    std::vector<BurstChannel*> channels = {f.wlan.get(), f.bt.get()};
    // Currently on WLAN; BT is cheaper but not 100x cheaper -> stay.
    const std::size_t pick = selector.select(channels, kMp3Rate,
                                             DataSize::from_kilobytes(48), Time::zero(), 0);
    EXPECT_EQ(pick, 0u);
}

TEST(SelectorTest, NothingFeasiblePicksBestQuality) {
    ChannelFixture f;
    InterfaceSelector selector(SelectorConfig{});
    std::vector<BurstChannel*> channels = {f.bt.get()};
    // 2 Mb/s stream is infeasible on BT, but BT is all there is.
    const std::size_t pick = selector.select(channels, Rate::from_mbps(2),
                                             DataSize::from_kilobytes(48), Time::zero(),
                                             channels.size());
    EXPECT_EQ(pick, 0u);
}

}  // namespace
}  // namespace wlanps::core
