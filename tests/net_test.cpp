/// Tests for the transport models: TCP Reno rounds, UDP, split/snoop.

#include <gtest/gtest.h>

#include "net/proxy.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "sim/assert.hpp"

namespace wlanps::net {
namespace {

const DataSize kPayload = DataSize::from_kilobytes(2048);

TEST(TcpTest, LosslessTransferApproachesBottleneck) {
    TcpConfig cfg;
    const TcpAgent tcp(cfg);
    const auto r = tcp.bulk_transfer(kPayload, [] { return true; });
    EXPECT_EQ(r.timeouts, 0);
    EXPECT_EQ(r.fast_retransmits, 0);
    EXPECT_EQ(r.segments_sent, r.segments_delivered);
    // Must reach a decent share of the 5 Mb/s bottleneck.
    EXPECT_GT(r.throughput_bps(kPayload), 2e6);
    EXPECT_LE(r.throughput_bps(kPayload), cfg.bottleneck.bps() * 1.01);
}

TEST(TcpTest, SlowStartDoublesWindow) {
    TcpConfig cfg;
    const TcpAgent tcp(cfg);
    // Small transfer: lives entirely in slow start; rounds ~ log2(segments).
    const DataSize small = cfg.mss * 63.0;  // 63 segments
    const auto r = tcp.bulk_transfer(small, [] { return true; });
    EXPECT_LE(r.rounds, 7);  // 1+2+4+8+16+32 covers 63
}

TEST(TcpTest, ThroughputMonotoneInLoss) {
    const TcpAgent tcp(TcpConfig{});
    double prev = 1e12;
    for (const double loss : {0.001, 0.01, 0.05, 0.2}) {
        const auto r = tcp.bulk_transfer(kPayload, bernoulli_loss(loss, 42));
        const double tput = r.throughput_bps(kPayload);
        EXPECT_LT(tput, prev);
        prev = tput;
    }
}

TEST(TcpTest, RandomLossTriggersCongestionReaction) {
    const TcpAgent tcp(TcpConfig{});
    const auto r = tcp.bulk_transfer(kPayload, bernoulli_loss(0.01, 43));
    EXPECT_GT(r.fast_retransmits + r.timeouts, 0);
    EXPECT_GT(r.retransmission_ratio(), 0.0);
}

TEST(TcpTest, BurstLossCausesTimeouts) {
    // 30% loss: multiple losses per window -> RTOs dominate.
    const TcpAgent tcp(TcpConfig{});
    const auto r = tcp.bulk_transfer(DataSize::from_kilobytes(256), bernoulli_loss(0.3, 44));
    EXPECT_GT(r.timeouts, 0);
}

TEST(TcpTest, InvalidConfigThrows) {
    TcpConfig cfg;
    cfg.rto = Time::from_ms(10);  // < rtt
    EXPECT_THROW(TcpAgent{cfg}, ContractViolation);
}

TEST(UdpTest, DeliveryRatioMatchesLossRate) {
    UdpConfig cfg;
    cfg.send_rate = Rate::from_mbps(1);
    const UdpAgent udp(cfg);
    const auto r = udp.stream(Time::from_seconds(120), bernoulli_loss(0.1, 45));
    EXPECT_GT(r.sent, 1000);
    EXPECT_NEAR(r.delivery_ratio(), 0.9, 0.02);
    EXPECT_NEAR(r.goodput_bps(cfg.datagram), 0.9e6, 0.05e6);
}

TEST(UdpTest, SendRateHonored) {
    UdpConfig cfg;
    cfg.send_rate = Rate::from_kbps(128);
    cfg.datagram = DataSize::from_bytes(1472);
    const UdpAgent udp(cfg);
    const auto r = udp.stream(Time::from_seconds(60), [] { return true; });
    const double sent_bps = static_cast<double>(r.sent * cfg.datagram.bits()) / 60.0;
    EXPECT_NEAR(sent_bps, 128e3, 2e3);
}

TEST(SplitConnectionTest, LosslessMatchesWirelessStage) {
    SplitConnectionConfig cfg;
    const SplitConnectionProxy proxy(cfg);
    const auto r = proxy.transfer(kPayload, [] { return true; });
    EXPECT_TRUE(r.delivered);
    // Pipeline bound: min(wired TCP, wireless rate) = 2 Mb/s wireless.
    EXPECT_NEAR(r.throughput_bps(kPayload), 2e6, 0.3e6);
}

TEST(SplitConnectionTest, DegradesGracefullyVsEndToEnd) {
    const double loss = 0.05;
    const TcpAgent tcp(TcpConfig{});
    const auto raw = tcp.bulk_transfer(kPayload, bernoulli_loss(loss, 46));
    const SplitConnectionProxy proxy(SplitConnectionConfig{});
    const auto split = proxy.transfer(kPayload, bernoulli_loss(loss, 47));
    EXPECT_TRUE(split.delivered);
    EXPECT_GT(split.throughput_bps(kPayload), raw.throughput_bps(kPayload) * 2.0);
    EXPECT_GT(split.wireless_transmissions, 0);
}

TEST(SnoopTest, FilterHidesLossFromTcp) {
    const double loss = 0.1;
    SnoopFilter snoop(bernoulli_loss(loss, 48), /*local_retries=*/3,
                      /*local_retry_delay=*/Time::from_ms(20));
    auto filtered = snoop.filtered();
    int delivered = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) delivered += filtered();
    // Residual loss ~ p^4 = 1e-4.
    EXPECT_GT(delivered, n - 30);
    EXPECT_GT(snoop.local_retransmissions(), 0);
    EXPECT_GT(snoop.local_delay(), Time::zero());
}

TEST(SnoopTest, RecoversTcpThroughput) {
    const double loss = 0.05;
    const TcpAgent tcp(TcpConfig{});
    const auto raw = tcp.bulk_transfer(kPayload, bernoulli_loss(loss, 49));
    SnoopFilter snoop(bernoulli_loss(loss, 50), 3, Time::from_ms(20));
    auto filtered = snoop.filtered();
    auto snooped = tcp.bulk_transfer(kPayload, filtered);
    snooped.elapsed += snoop.local_delay();
    EXPECT_GT(snooped.throughput_bps(kPayload), raw.throughput_bps(kPayload) * 3.0);
}

TEST(BernoulliLossTest, ExtremesAndReproducibility) {
    auto never = bernoulli_loss(0.0, 51);
    auto always = bernoulli_loss(1.0, 52);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(never());
        EXPECT_FALSE(always());
    }
    auto a = bernoulli_loss(0.5, 53);
    auto b = bernoulli_loss(0.5, 53);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

/// Property sweep: split connection throughput is monotone in loss and
/// always at least the end-to-end TCP throughput under the same loss.
class SplitVsRaw : public ::testing::TestWithParam<double> {};

TEST_P(SplitVsRaw, SplitNeverWorse) {
    const double loss = GetParam();
    const TcpAgent tcp(TcpConfig{});
    const auto raw = tcp.bulk_transfer(kPayload, bernoulli_loss(loss, 54));
    const SplitConnectionProxy proxy(SplitConnectionConfig{});
    const auto split = proxy.transfer(kPayload, bernoulli_loss(loss, 55));
    if (loss > 0.002) {
        EXPECT_GE(split.throughput_bps(kPayload), raw.throughput_bps(kPayload) * 0.95);
    }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, SplitVsRaw,
                         ::testing::Values(0.005, 0.01, 0.02, 0.05, 0.1));

}  // namespace
}  // namespace wlanps::net
