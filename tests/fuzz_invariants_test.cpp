/// Randomized invariant tests: drive each stateful component with random
/// operation sequences (parameterized over seeds) and check conservation
/// and sanity properties that must hold for ANY sequence.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bt/piconet.hpp"
#include "core/burst_channel.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "mac/access_point.hpp"
#include "mac/station.hpp"
#include "power/state_machine.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "traffic/playout.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, PowerStateMachineInvariants) {
    sim::Simulator sim;
    sim::Random rng(GetParam());
    power::PowerModel model;
    std::vector<power::StateId> states;
    for (int i = 0; i < 4; ++i) {
        states.push_back(model.add_state("s" + std::to_string(i),
                                         power::Power::from_watts(rng.uniform(0.0, 2.0))));
    }
    for (int i = 0; i < 6; ++i) {
        const auto a = states[static_cast<std::size_t>(rng.uniform_int(0, 3))];
        const auto b = states[static_cast<std::size_t>(rng.uniform_int(0, 3))];
        if (a == b) continue;
        model.add_transition(a, b, Time::from_ms(rng.uniform_int(0, 50)),
                             power::Energy::from_millijoules(rng.uniform(0.0, 100.0)));
    }
    power::PowerStateMachine machine(sim, model, states[0]);

    int completions = 0;
    int requests = 0;
    for (int op = 0; op < 100; ++op) {
        sim.run_until(sim.now() + Time::from_ms(rng.uniform_int(1, 200)));
        ++requests;
        machine.request(states[static_cast<std::size_t>(rng.uniform_int(0, 3))],
                        [&] { ++completions; });
    }
    sim.run_until(sim.now() + Time::from_seconds(2));

    // Energy is finite, non-negative; average power within state bounds.
    EXPECT_GE(machine.energy_consumed().joules(), 0.0);
    EXPECT_FALSE(machine.transitioning());
    // Residencies never exceed elapsed time.
    Time residency_total = Time::zero();
    for (const auto s : states) residency_total += machine.residency(s);
    EXPECT_LE(residency_total.ns(), sim.now().ns());
    // Superseded queued requests may drop their predecessors' callbacks,
    // but a quiescent machine has fired at least the final one.
    EXPECT_GT(completions, 0);
    EXPECT_LE(completions, requests);
}

TEST_P(Fuzz, DcfConservation) {
    sim::Simulator sim;
    sim::Random rng(GetParam() + 1000);
    mac::Bss bss(sim);
    mac::AccessPointConfig ap_cfg;
    ap_cfg.mode = mac::ApMode::cam;
    mac::AccessPoint ap(sim, bss, ap_cfg, mac::DcfConfig{}, rng.fork(1));
    std::vector<std::unique_ptr<mac::WlanStation>> stations;
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n; ++i) {
        mac::StationConfig st;
        st.mode = mac::StationMode::cam;
        stations.push_back(std::make_unique<mac::WlanStation>(
            sim, bss, static_cast<mac::StationId>(i + 1), st, mac::DcfConfig{},
            phy::WlanNicConfig{}, rng.fork(static_cast<std::uint64_t>(10 + i))));
        if (rng.chance(0.5)) {
            channel::GilbertElliottConfig ge;
            ge.ber_bad = rng.uniform(0.0, 3e-4);
            bss.set_link(static_cast<mac::StationId>(i + 1), ge,
                         rng.fork(static_cast<std::uint64_t>(20 + i)));
        }
    }

    int sent = 0, delivered = 0, dropped = 0;
    DataSize delivered_bytes;
    for (int op = 0; op < 60; ++op) {
        sim.run_until(sim.now() + Time::from_ms(rng.uniform_int(0, 20)));
        const auto dst = static_cast<mac::StationId>(rng.uniform_int(1, n));
        const auto size = DataSize::from_bytes(rng.uniform_int(50, 2000));
        ++sent;
        ap.send(dst, size, [&, size](bool ok) {
            if (ok) {
                ++delivered;
                delivered_bytes += size;
            } else {
                ++dropped;
            }
        });
    }
    sim.run_until(sim.now() + Time::from_seconds(5));

    // Conservation: every send completed exactly once.
    EXPECT_EQ(delivered + dropped, sent);
    // Station byte counters agree with delivered bytes.
    DataSize station_bytes;
    for (auto& st : stations) station_bytes += st->bytes_received();
    EXPECT_EQ(station_bytes, delivered_bytes);
}

TEST_P(Fuzz, PiconetConservation) {
    sim::Simulator sim;
    sim::Random rng(GetParam() + 2000);
    bt::Piconet piconet(sim, bt::PiconetConfig{}, rng.fork(1));
    std::vector<std::unique_ptr<bt::BtSlave>> slaves;
    std::vector<bt::SlaveId> ids;
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < n; ++i) {
        slaves.push_back(std::make_unique<bt::BtSlave>(sim, phy::BtNicConfig{},
                                                       phy::BtNic::State::active));
        ids.push_back(piconet.join(*slaves.back()));
    }

    DataSize requested;
    int completions = 0, sends = 0;
    for (int op = 0; op < 40; ++op) {
        sim.run_until(sim.now() + Time::from_ms(rng.uniform_int(0, 50)));
        const auto id = ids[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
        const double action = rng.uniform();
        if (action < 0.6) {
            const auto size = DataSize::from_bytes(rng.uniform_int(100, 20000));
            requested += size;
            ++sends;
            piconet.send(id, size, [&](bool) { ++completions; });
        } else if (!piconet.transferring()) {
            if (action < 0.8) {
                piconet.park(id);
            } else {
                piconet.activate(id);
            }
        }
    }
    sim.run_until(sim.now() + Time::from_seconds(60));

    EXPECT_EQ(completions, sends);
    DataSize received;
    for (auto& s : slaves) received += s->bytes_received();
    // Perfect links: everything requested must arrive.
    EXPECT_EQ(received, requested);
    EXPECT_FALSE(piconet.transferring());
}

TEST_P(Fuzz, PlayoutBufferAccounting) {
    sim::Simulator sim;
    sim::Random rng(GetParam() + 3000);
    traffic::PlayoutBuffer::Config cfg;
    cfg.frame_size = DataSize::from_bytes(400);
    cfg.frame_interval = 25_ms;
    cfg.preroll = Time::from_ms(rng.uniform_int(0, 500));
    cfg.capacity = DataSize::from_bytes(8000);
    cfg.start_threshold_frames = static_cast<int>(rng.uniform_int(0, 4));
    traffic::PlayoutBuffer buf(sim, cfg);
    buf.start();

    DataSize fed;
    for (int op = 0; op < 100; ++op) {
        sim.run_until(sim.now() + Time::from_ms(rng.uniform_int(1, 100)));
        const auto chunk = DataSize::from_bytes(rng.uniform_int(1, 2000));
        fed += chunk;
        buf.on_data(chunk);
        EXPECT_LE(buf.level(), cfg.capacity);
    }
    sim.run_until(sim.now() + Time::from_seconds(2));

    // Conservation: fed = played + still buffered + overflow-dropped.
    const auto played = DataSize::from_bytes(
        static_cast<std::int64_t>(buf.frames_played()) * cfg.frame_size.bytes());
    EXPECT_LE(played.bytes() + buf.level().bytes(), fed.bytes());
    if (buf.overflow_drops() == 0) {
        EXPECT_EQ(played + buf.level(), fed);
    }
}

TEST_P(Fuzz, HotspotServerConsistency) {
    sim::Simulator sim;
    sim::Random rng(GetParam() + 4000);
    bt::Piconet piconet(sim, bt::PiconetConfig{}, rng.fork(1));
    core::HotspotServer server(sim, core::ServerConfig{}, core::make_scheduler("edf"));

    std::vector<std::unique_ptr<bt::BtSlave>> slaves;
    std::vector<std::unique_ptr<core::HotspotClient>> clients;
    const int n = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < n; ++i) {
        core::QosContract contract;
        contract.stream_rate = phy::calibration::kMp3Rate;
        auto client = std::make_unique<core::HotspotClient>(
            sim, static_cast<core::ClientId>(i + 1), contract);
        slaves.push_back(std::make_unique<bt::BtSlave>(sim, phy::BtNicConfig{},
                                                       phy::BtNic::State::active));
        const auto sid = piconet.join(*slaves.back());
        client->add_channel(
            std::make_unique<core::BtBurstChannel>(piconet, sid, *slaves.back()));
        ASSERT_TRUE(server.try_register(*client));
        server.set_stored_content(client->id(), true);
        client->start();
        clients.push_back(std::move(client));
    }
    server.start();
    sim.run_until(Time::from_seconds(rng.uniform_int(30, 90)));

    for (auto& c : clients) {
        const auto rep = server.report(c->id());
        // Perfect links: server accounting equals client ground truth up
        // to one in-flight burst (the client counts chunks progressively,
        // the server on completion).
        EXPECT_LE(rep.delivered.bytes(), c->bytes_received().bytes());
        EXPECT_LE(c->bytes_received().bytes() - rep.delivered.bytes(),
                  core::ServerConfig{}.target_burst.bytes());
        EXPECT_EQ(rep.bursts, c->bursts_executed());
        // The modeled buffer never exceeds the contracted client buffer.
        EXPECT_LE(server.modeled_client_buffer(c->id()).bytes(),
                  c->contract().client_buffer.bytes());
        EXPECT_EQ(c->playout().underruns(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace wlanps
