/// Tests for the adaptation mechanisms: ARF rate control, adaptive MTU,
/// and the closed-loop OS device manager.

#include <gtest/gtest.h>

#include <memory>

#include "channel/ber.hpp"
#include "channel/path_loss.hpp"
#include "channel/rate_control.hpp"
#include "link/adaptive_mtu.hpp"
#include "link/arq.hpp"
#include "os/device_manager.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"
#include "traffic/source.hpp"

namespace wlanps {
namespace {

using namespace time_literals;

// ---- ARF ---------------------------------------------------------------------

TEST(ArfTest, StartsAtLowestRate) {
    auto arf = channel::ArfRateController::dot11b();
    EXPECT_DOUBLE_EQ(arf.current().mbps(), 1.0);
}

TEST(ArfTest, ClimbsAfterSuccessRun) {
    auto arf = channel::ArfRateController::dot11b();
    for (int i = 0; i < 10; ++i) arf.on_result(true);
    EXPECT_DOUBLE_EQ(arf.current().mbps(), 2.0);
    EXPECT_TRUE(arf.probing());
    EXPECT_EQ(arf.rate_increases(), 1u);
}

TEST(ArfTest, FailedProbeFallsBackImmediately) {
    auto arf = channel::ArfRateController::dot11b();
    for (int i = 0; i < 10; ++i) arf.on_result(true);
    ASSERT_TRUE(arf.probing());
    arf.on_result(false);  // one failure is enough while probing
    EXPECT_DOUBLE_EQ(arf.current().mbps(), 1.0);
    EXPECT_EQ(arf.rate_decreases(), 1u);
}

TEST(ArfTest, NeedsTwoFailuresWhenSettled) {
    auto arf = channel::ArfRateController::dot11b();
    for (int i = 0; i < 10; ++i) arf.on_result(true);
    arf.on_result(true);  // clears probation
    arf.on_result(false);
    EXPECT_DOUBLE_EQ(arf.current().mbps(), 2.0);  // one failure: still there
    arf.on_result(false);
    EXPECT_DOUBLE_EQ(arf.current().mbps(), 1.0);  // two: step down
}

TEST(ArfTest, SaturatesAtLadderEnds) {
    auto arf = channel::ArfRateController::dot11b();
    for (int i = 0; i < 100; ++i) arf.on_result(true);
    EXPECT_DOUBLE_EQ(arf.current().mbps(), 11.0);
    for (int i = 0; i < 100; ++i) arf.on_result(false);
    EXPECT_DOUBLE_EQ(arf.current().mbps(), 1.0);
}

TEST(ArfTest, ConvergesToSnrAppropriateRate) {
    // At an SNR where 5.5 Mb/s is reliable but 11 Mb/s is not, ARF should
    // spend most of its time at 5.5.
    auto arf = channel::ArfRateController::dot11b();
    sim::Random rng(3);
    const double snr = channel::required_snr_db(channel::Modulation::cck55, 1e-6) + 0.5;
    std::size_t at_55 = 0;
    const int frames = 5000;
    for (int i = 0; i < frames; ++i) {
        const double ber =
            channel::bit_error_rate(channel::modulation_for_rate(arf.current()), snr);
        const double per = channel::packet_error_rate(ber, DataSize::from_bytes(1500));
        arf.on_result(!rng.chance(per));
        if (arf.rate_index() == 2) ++at_55;
    }
    EXPECT_GT(static_cast<double>(at_55) / frames, 0.6);
}

TEST(ArfTest, BadLadderThrows) {
    EXPECT_THROW(channel::ArfRateController({}), ContractViolation);
    EXPECT_THROW(channel::ArfRateController({Rate::from_mbps(2), Rate::from_mbps(1)}),
                 ContractViolation);
}

// ---- Adaptive MTU ---------------------------------------------------------------

TEST(AdaptiveMtuTest, KeepsLargeFramesOnCleanChannel) {
    link::LinkConfig cfg;
    link::AdaptiveMtuArq adaptive(cfg);
    channel::GilbertElliottConfig clean;
    clean.ber_good = clean.ber_bad = 0.0;
    channel::GilbertElliott ch(clean, sim::Random(5));
    const auto r = adaptive.transfer(ch, Time::zero(), DataSize::from_kilobytes(32));
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(adaptive.current_mtu(), cfg.mtu);
    EXPECT_EQ(r.transmissions, 32);  // never shrank
}

TEST(AdaptiveMtuTest, ShrinksUnderErrors) {
    link::LinkConfig cfg;
    link::AdaptiveMtuArq adaptive(cfg);
    channel::GilbertElliottConfig noisy;
    noisy.ber_good = noisy.ber_bad = 3e-4;  // 1 KB frames ~92% loss
    channel::GilbertElliott ch(noisy, sim::Random(7));
    const auto r = adaptive.transfer(ch, Time::zero(), DataSize::from_kilobytes(8));
    EXPECT_TRUE(r.delivered);
    EXPECT_LT(adaptive.current_mtu(), cfg.mtu);
}

TEST(AdaptiveMtuTest, BeatsFixedLargeMtuAtHighBer) {
    link::LinkConfig cfg;
    channel::GilbertElliottConfig noisy;
    noisy.ber_good = noisy.ber_bad = 3e-4;

    link::AdaptiveMtuArq adaptive(cfg);
    channel::GilbertElliott c1(noisy, sim::Random(9));
    const auto r_adaptive = adaptive.transfer(c1, Time::zero(), DataSize::from_kilobytes(8));

    link::SelectiveRepeatArq fixed(cfg);
    channel::GilbertElliott c2(noisy, sim::Random(9));
    const auto r_fixed = fixed.transfer(c2, Time::zero(), DataSize::from_kilobytes(8));

    ASSERT_TRUE(r_adaptive.delivered);
    if (r_fixed.delivered) {
        EXPECT_LT(r_adaptive.energy_per_useful_bit(), r_fixed.energy_per_useful_bit());
    }
}

TEST(AdaptiveMtuTest, RespectsMinimumMtu) {
    link::LinkConfig cfg;
    link::AdaptiveMtuConfig mtu_cfg;
    mtu_cfg.min_mtu = DataSize::from_bytes(256);
    link::AdaptiveMtuArq adaptive(cfg, mtu_cfg);
    channel::GilbertElliottConfig awful;
    awful.ber_good = awful.ber_bad = 2e-3;
    channel::GilbertElliott ch(awful, sim::Random(11));
    (void)adaptive.transfer(ch, Time::zero(), DataSize::from_kilobytes(4));
    EXPECT_GE(adaptive.current_mtu(), mtu_cfg.min_mtu);
}

// ---- DeviceManager -----------------------------------------------------------------

TEST(DeviceManagerTest, ServesRequestsAndSleeps) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    os::DeviceParams params;
    auto manager = std::make_unique<os::DeviceManager>(
        sim, nic, std::make_unique<os::TimeoutPolicy>(100_ms));
    int done = 0;
    manager->request(10_ms, [&] { ++done; });
    sim.run_until(Time::from_seconds(1));
    EXPECT_EQ(done, 1);
    EXPECT_EQ(manager->requests_served(), 1u);
    // After the 100 ms timeout the NIC went off.
    EXPECT_EQ(nic.state(), phy::WlanNic::State::off);
    // The request arrived before the initial idle timer fired, so only the
    // post-request idle period ends in a sleep.
    EXPECT_EQ(manager->sleeps(), 1u);
}

TEST(DeviceManagerTest, WakeDelayChargedToLateRequests) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    auto manager = std::make_unique<os::DeviceManager>(
        sim, nic, std::make_unique<os::TimeoutPolicy>(50_ms));
    sim.run_until(Time::from_seconds(1));  // asleep by now
    ASSERT_EQ(nic.state(), phy::WlanNic::State::off);
    Time done_at = Time::zero();
    manager->request(10_ms, [&] { done_at = sim.now(); });
    sim.run_until(Time::from_seconds(2));
    // 300 ms resume + 10 ms service.
    EXPECT_NEAR((done_at - Time::from_seconds(1)).to_ms(), 310.0, 1.0);
    EXPECT_NEAR(manager->wake_delays().mean(), 0.300, 0.005);
}

TEST(DeviceManagerTest, AlwaysOnNeverSleeps) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    auto manager = std::make_unique<os::DeviceManager>(
        sim, nic, std::make_unique<os::AlwaysOnPolicy>());
    sim.run_until(Time::from_seconds(10));
    EXPECT_EQ(nic.state(), phy::WlanNic::State::idle);
    EXPECT_EQ(manager->sleeps(), 0u);
}

TEST(DeviceManagerTest, QueuedRequestsServeBackToBack) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    auto manager = std::make_unique<os::DeviceManager>(
        sim, nic, std::make_unique<os::TimeoutPolicy>(100_ms));
    int done = 0;
    for (int i = 0; i < 5; ++i) manager->request(10_ms, [&] { ++done; });
    sim.run_until(60_ms);
    EXPECT_EQ(done, 5);  // 5 * 10 ms, no sleep in between
    EXPECT_EQ(nic.state(), phy::WlanNic::State::idle);
}

TEST(DeviceManagerTest, AdaptivePolicySavesEnergyOnBurstyTraffic) {
    // Bursty arrivals (long exponential gaps): a predictive policy should
    // use far less energy than always-on at a bounded delay cost.
    auto run = [](std::unique_ptr<os::ShutdownPolicy> policy) {
        sim::Simulator sim;
        phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
        os::DeviceManager manager(sim, nic, std::move(policy));
        sim::Random rng(13);
        // Bursts of 3 requests every ~5 s.
        std::function<void()> burst = [&] {
            for (int i = 0; i < 3; ++i) manager.request(20_ms);
            sim.schedule_in(rng.exponential_time(Time::from_seconds(5)), burst);
        };
        sim.schedule_in(Time::from_seconds(1), burst);
        sim.run_until(Time::from_seconds(120));
        return nic.energy_consumed().joules();
    };
    os::DeviceParams params;
    const double e_always = run(std::make_unique<os::AlwaysOnPolicy>());
    const double e_adaptive = run(std::make_unique<os::AdaptivePolicy>(params));
    EXPECT_LT(e_adaptive, e_always * 0.25);
}

TEST(DeviceManagerTest, RejectsNonPositiveService) {
    sim::Simulator sim;
    phy::WlanNic nic(sim, phy::WlanNicConfig{}, phy::WlanNic::State::idle);
    os::DeviceManager manager(sim, nic, std::make_unique<os::AlwaysOnPolicy>());
    EXPECT_THROW(manager.request(Time::zero()), ContractViolation);
}

}  // namespace
}  // namespace wlanps
