#pragma once
/// \file policy.hpp
/// Power-policy selection: the config every scenario carries to pick and
/// parameterize a power-saving policy (core::ScenarioSpec::with_power_policy).
///
/// Five kinds are selectable: the two new policies (micro_nap, pamas) and
/// three adapters wrapping the pre-existing behaviors (cam, psm, ecmac) so
/// a single `--policy=<name>` axis sweeps everything the repo can do.

#include <memory>
#include <string>
#include <string_view>

#include "phy/calibration.hpp"
#include "policy/micro_nap.hpp"
#include "policy/pamas_policy.hpp"
#include "policy/power_policy.hpp"

namespace wlanps::policy {

/// Selectable power-saving policy.
enum class PolicyKind : std::uint8_t { cam, psm, ecmac, micro_nap, pamas };

[[nodiscard]] const char* to_string(PolicyKind kind);

/// Parse a policy name; throws ContractViolation listing the valid names.
[[nodiscard]] PolicyKind parse_power_policy(std::string_view name);

/// All valid names, comma-separated (CLI help text).
[[nodiscard]] const char* power_policy_names();

/// Full configuration of one station's power policy.
struct PowerPolicyConfig {
    PolicyKind kind = PolicyKind::micro_nap;

    MicroNapConfig micro_nap;
    PamasPolicyConfig pamas;

    /// AP beacon interval of the policy world (also the psm adapter's).
    Time beacon_interval = phy::calibration::kWlanBeaconInterval;

    // --- adapter knobs (kind == psm / ecmac) ---------------------------
    int psm_listen_interval = 1;
    int psm_aggregate_limit = 1;
    Time ecmac_superframe = Time::from_ms(100);

    // --- optional uplink workload --------------------------------------
    /// When positive, each station also sends a small uplink frame every
    /// period — this exercises the DCF backoff path (and μNap's backoff
    /// naps) on otherwise downlink-only streaming scenarios.
    Time uplink_period = Time::zero();
    DataSize uplink_size = DataSize::from_bytes(200);

    [[nodiscard]] static PowerPolicyConfig of(PolicyKind kind) {
        PowerPolicyConfig c;
        c.kind = kind;
        return c;
    }

    PowerPolicyConfig& with_uplink(Time period, DataSize size) {
        uplink_period = period;
        uplink_size = size;
        return *this;
    }
    PowerPolicyConfig& with_micro_nap(MicroNapConfig c) {
        micro_nap = c;
        return *this;
    }
    PowerPolicyConfig& with_pamas(PamasPolicyConfig c) {
        pamas = std::move(c);
        return *this;
    }
    PowerPolicyConfig& with_psm(int listen_interval, int aggregate_limit) {
        psm_listen_interval = listen_interval;
        psm_aggregate_limit = aggregate_limit;
        return *this;
    }

    void validate() const;
};

/// Instantiate the policy object for \p config.  Only the event-driven
/// kinds (micro_nap, pamas) have policy objects; the adapter kinds run
/// through the pre-existing scenario builders and return nullptr here.
[[nodiscard]] std::unique_ptr<PowerPolicy> make_power_policy(const PowerPolicyConfig& config);

}  // namespace wlanps::policy
