#pragma once
/// \file station.hpp
/// Policy-driven 802.11 client station.
///
/// The station handles MAC mechanics only — frame delivery, uplink DCF,
/// battery accounting — and delegates every sleep decision to an attached
/// PowerPolicy.  Two operating shapes fall out of the policy's
/// sleep_quantum():
///  - zero (μNap): the radio stays associated and idle-listening; the
///    policy naps it inside NAV/backoff gaps via the MAC hooks.
///  - positive (PAMAS): the station duty-cycles against a buffering
///    (PSM-mode) AP — sleep a quantum, wake if traffic is buffered, drain
///    it, sleep again — re-querying the quantum every cycle so the policy
///    can stretch it as the battery drains.

#include <cstdint>
#include <functional>
#include <optional>

#include "mac/access_point.hpp"
#include "mac/bss.hpp"
#include "mac/dcf.hpp"
#include "mac/frame.hpp"
#include "phy/wlan_nic.hpp"
#include "policy/policy.hpp"
#include "power/battery.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace wlanps::policy {

/// A client station whose radio idle time is owned by a PowerPolicy.
class PolicyStation final : public mac::MacEntity {
public:
    using ReceiveCallback = std::function<void(DataSize payload, Time mac_latency)>;

    PolicyStation(sim::Simulator& sim, mac::Bss& bss, mac::AccessPoint& ap,
                  mac::StationId id, PowerPolicy& policy, PowerPolicyConfig config,
                  mac::DcfConfig dcf, phy::WlanNicConfig nic_config, sim::Random rng);

    /// Attach the policy to the radio, register the MAC hooks and begin
    /// operating (duty cycling / uplink, as configured).
    void start();

    void set_receive_callback(ReceiveCallback cb) { on_receive_ = std::move(cb); }

    /// Send \p payload upstream to the AP, waking a napping radio first.
    void send_up(DataSize payload, std::function<void(bool delivered)> done = {});

    [[nodiscard]] mac::StationId id() const { return id_; }
    [[nodiscard]] PowerPolicy& policy() { return policy_; }
    [[nodiscard]] const PowerPolicyConfig& config() const { return config_; }

    // Accounting.
    [[nodiscard]] power::Energy energy_consumed() const { return nic_.energy_consumed(); }
    [[nodiscard]] power::Power average_power() const { return nic_.average_power(); }
    [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }
    [[nodiscard]] DataSize bytes_received() const { return bytes_received_; }
    [[nodiscard]] DataSize bytes_sent() const { return bytes_sent_; }
    [[nodiscard]] std::uint64_t beacons_heard() const { return beacons_heard_; }
    [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
    [[nodiscard]] const sim::Accumulator& delivery_latency() const { return latency_; }
    [[nodiscard]] phy::WlanNic& wlan_nic() { return nic_; }
    [[nodiscard]] mac::DcfTransmitter& dcf() { return dcf_; }
    /// Battery, when the policy duty-cycles (nullopt for listen-mode).
    [[nodiscard]] const power::Battery* battery() const {
        return battery_ ? &*battery_ : nullptr;
    }

    // --- MacEntity -----------------------------------------------------
    [[nodiscard]] phy::WlanNic& nic() override { return nic_; }
    [[nodiscard]] bool listening() const override { return nic_.awake(); }
    void on_frame(const mac::Frame& frame) override;

private:
    [[nodiscard]] bool may_sleep() const {
        return dcf_.idle() && uplink_in_flight_ == 0;
    }
    void cycle();
    void reschedule_cycle();
    void drain_battery();
    void schedule_uplink();

    sim::Simulator& sim_;
    mac::Bss& bss_;
    mac::AccessPoint& ap_;
    mac::StationId id_;
    PowerPolicy& policy_;
    PowerPolicyConfig config_;
    bool duty_cycle_;
    phy::WlanNic nic_;
    mac::DcfTransmitter dcf_;
    sim::Random rng_;
    std::optional<power::Battery> battery_;
    power::Energy drained_;
    ReceiveCallback on_receive_;

    std::uint64_t frames_received_ = 0;
    DataSize bytes_received_;
    DataSize bytes_sent_;
    std::uint64_t beacons_heard_ = 0;
    std::uint64_t cycles_ = 0;
    bool retrieving_ = false;
    int uplink_in_flight_ = 0;
    sim::Accumulator latency_;
};

}  // namespace wlanps::policy
