#include "policy/micro_nap.hpp"

#include <algorithm>

#include "obs/energy_ledger.hpp"
#include "sim/assert.hpp"

namespace wlanps::policy {

void MicroNapPolicy::attach(sim::Simulator& sim, phy::WlanNic& nic, MaySleep may_sleep) {
    PowerPolicy::attach(sim, nic, std::move(may_sleep));
    const auto& c = nic.config();
    const phy::NapCostTable nap = nic.nap_costs();
    WLANPS_REQUIRE_MSG(nap.sleep_latency > Time::zero() && nap.wake_latency > Time::zero(),
                       "μNap transition latencies must be positive");
    WLANPS_REQUIRE_MSG(c.idle > c.doze,
                       "μNap needs the nap state to draw less than idle listening");
    // The resume starts wake_latency+guard before the medium is needed, so
    // as long as that margin covers one slot the DCF's carrier-sense
    // vulnerability window (fire within a slot of a busy start) can never
    // catch the radio still napping.
    WLANPS_REQUIRE_MSG(nap.wake_latency + config_.guard >= phy::calibration::kWlanSlot,
                       "μNap wake_latency + guard must cover one DCF slot");
    // Energy break-even: napping a gap g costs E_trans + P_nap·(g − t_trans)
    // against P_idle·g for staying awake; solve for the g where they meet.
    const double p_idle = c.idle.watts();
    const double p_nap = c.doze.watts();
    const double e_trans = nap.round_trip_energy().joules();
    const double t_trans = nap.round_trip().to_seconds();
    const double g_star = (e_trans - p_nap * t_trans) / (p_idle - p_nap);
    const Time fit_floor = nap.round_trip() + config_.guard + config_.guard;
    break_even_ = std::max(fit_floor, Time::from_seconds(g_star));
}

void MicroNapPolicy::on_nav_set(Time until) {
    if (config_.nap_on_nav) try_nap(until, /*voluntary=*/true);
}

void MicroNapPolicy::on_backoff_start(Time fire_at) {
    // Bounded by our own DCF fire event: the radio only needs to be back
    // by fire_at, and the DCF itself guarantees nothing else runs on it.
    if (config_.nap_on_backoff) try_nap(fire_at, /*voluntary=*/false);
}

void MicroNapPolicy::try_nap(Time resume_by, bool voluntary) {
    const Time now = sim_->now();
    const phy::NapCostTable nap = nic_->nap_costs();
    const Time wake_begin = resume_by - config_.guard - nap.wake_latency;
    if (napping_) {
        // Overlapping reservation: push the resume out, never pull it in.
        if (wake_begin > wake_begin_) {
            wake_event_.cancel();
            wake_begin_ = wake_begin;
            wake_event_ = sim_->schedule_at(wake_begin, [this] { resume(); });
        }
        return;
    }
    if (nic_->transitioning() || nic_->state() != phy::WlanNic::State::idle) return;
    if (voluntary && may_sleep_ && !may_sleep_()) return;
    if (resume_by - now < break_even_) return;

    napping_ = true;
    ++naps_;
    nap_started_ = now;
    // Cause boundaries: the idle span so far stays on the previous cause;
    // the sleep transition accrues under mode_switch; residency in nap is
    // charged to nav_sleep once the transition completes.
    nic_->set_energy_cause(obs::EnergyCause::mode_switch);
    nic_->request_state(phy::WlanNic::State::nap, [this] {
        if (napping_) nic_->set_energy_cause(obs::EnergyCause::nav_sleep);
    });
    wake_begin_ = wake_begin;
    wake_event_ = sim_->schedule_at(wake_begin, [this] { resume(); });
}

void MicroNapPolicy::resume() {
    if (!napping_) return;
    napping_ = false;
    napped_total_ += sim_->now() - nap_started_;
    // Close the nav_sleep span, accrue the wake transition as mode_switch,
    // then fall back to idle_listen once the radio is hot again.
    nic_->set_energy_cause(obs::EnergyCause::mode_switch);
    nic_->wake([this] { nic_->set_energy_cause(obs::EnergyCause::idle_listen); });
}

void MicroNapPolicy::on_tx_start(Time done_at) {
    (void)done_at;
    nic_->set_energy_cause(obs::EnergyCause::tx);
}

void MicroNapPolicy::on_tx_end() {
    nic_->set_energy_cause(obs::EnergyCause::idle_listen);
}

void MicroNapPolicy::on_rx_start(Time done_at) {
    // A frame addressed to a napping radio is missed (the sender retries);
    // charging its airtime to burst_rx would misattribute the nap span.
    if (napping_) return;
    nic_->set_energy_cause(obs::EnergyCause::burst_rx);
    // Broadcast receptions (beacons) have no on_rx_end — revert at the
    // end of the airtime so a lost/collided frame can't leave the
    // burst_rx span dangling over subsequent idle time.
    rx_revert_.cancel();
    rx_revert_ = sim_->schedule_at(done_at, [this] {
        if (!napping_) nic_->set_energy_cause(obs::EnergyCause::idle_listen);
    });
}

void MicroNapPolicy::on_rx_end() {
    rx_revert_.cancel();
    if (napping_) return;
    nic_->set_energy_cause(obs::EnergyCause::idle_listen);
}

void MicroNapPolicy::on_host_wake() {
    if (!napping_) return;
    // The host needs the radio now: abandon the scheduled resume and let
    // the caller's wake() drive the transition.
    wake_event_.cancel();
    napping_ = false;
    napped_total_ += sim_->now() - nap_started_;
    nic_->set_energy_cause(obs::EnergyCause::mode_switch);
}

}  // namespace wlanps::policy
