#pragma once
/// \file world.hpp
/// Reusable policy-BSS world: one AP + N policy-driven stations streaming
/// MP3, buildable into an external Simulator.
///
/// The core scenario layer builds one of these per micro_nap/pamas run;
/// the determinism tests build one per shard of a ShardedSimulator (the
/// world only needs a Simulator&, so it drops into either).  Energy
/// attribution takes an explicit ledger pointer — the thread-local
/// obs::current_ledger() is invisible to sharded worker threads.

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/link.hpp"
#include "mac/access_point.hpp"
#include "mac/bss.hpp"
#include "obs/energy_ledger.hpp"
#include "policy/policy.hpp"
#include "policy/station.hpp"
#include "sim/simulator.hpp"
#include "traffic/playout.hpp"
#include "traffic/source.hpp"

namespace wlanps::policy {

/// Everything a policy-BSS world needs to build.
struct PolicyWorldConfig {
    int clients = 3;
    std::uint64_t seed = 42;
    /// Must be an event-driven kind (micro_nap or pamas).
    PowerPolicyConfig policy;
    phy::WlanNicConfig nic;
    channel::GilbertElliottConfig link;
    traffic::PlayoutBuffer::Config playout;
};

/// One AP + N PolicyStations + per-station playout buffers and sources.
class PolicyBssWorld {
public:
    PolicyBssWorld(sim::Simulator& sim, PolicyWorldConfig config,
                   obs::EnergyLedger* ledger);

    /// Start the AP, stations, playout buffers and sources.
    void start();
    /// Flush energy-ledger tails (end of run, before reading the ledger).
    void settle();

    [[nodiscard]] int clients() const { return config_.clients; }
    [[nodiscard]] mac::Bss& bss() { return bss_; }
    [[nodiscard]] mac::AccessPoint& ap() { return ap_; }
    [[nodiscard]] PolicyStation& station(int i) { return *stations_[static_cast<std::size_t>(i)]; }
    [[nodiscard]] PowerPolicy& policy(int i) { return *policies_[static_cast<std::size_t>(i)]; }
    [[nodiscard]] traffic::PlayoutBuffer& playout(int i) {
        return *playouts_[static_cast<std::size_t>(i)];
    }

    /// FNV-1a digest of per-station end-state (energy bit patterns, byte
    /// and frame counters) — the determinism tests compare these across
    /// worker-thread counts.
    [[nodiscard]] std::uint64_t fingerprint() const;

private:
    sim::Simulator& sim_;
    PolicyWorldConfig config_;
    mac::Bss bss_;
    mac::AccessPoint ap_;
    std::vector<std::unique_ptr<PowerPolicy>> policies_;
    std::vector<std::unique_ptr<PolicyStation>> stations_;
    std::vector<std::unique_ptr<traffic::PlayoutBuffer>> playouts_;
    std::vector<std::unique_ptr<traffic::Mp3Source>> sources_;
};

}  // namespace wlanps::policy
