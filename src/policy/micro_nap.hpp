#pragma once
/// \file micro_nap.hpp
/// μNap micro-sleep policy (Azcorra et al., arXiv:1706.08312).
///
/// A CAM station burns idle power listening to frame exchanges it is not
/// part of.  μNap drops the radio into the nap state for the NAV-reserved
/// span of third-party exchanges and for the station's own backoff waits,
/// whenever the announced gap beats the wake/sleep transition break-even
/// computed from the NIC's NapCostTable:
///
///   g* = max( t_sleep + t_wake + 2·guard,
///             (E_sleep + E_wake − P_nap·(t_sleep+t_wake)) / (P_idle − P_nap) )
///
/// The first term guarantees the transitions physically fit in the gap
/// with a guard margin on both ends; the second is the energy break-even
/// (below it the transitions cost more than napping saves).  With the
/// default IPAQ CF-card table (50 µs + 250 µs, 249 µJ total) g* ≈ 305 µs,
/// comfortably under an MP3-frame exchange's ~780 µs NAV span.

#include <cstdint>

#include "policy/power_policy.hpp"

namespace wlanps::policy {

/// μNap knobs.
struct MicroNapConfig {
    bool nap_on_nav = true;      ///< sleep through third-party NAV spans
    bool nap_on_backoff = true;  ///< sleep through own DIFS+backoff waits
    /// Safety margin subtracted from each end of the gap: the nap must be
    /// fully exited this long before the medium is needed again.
    Time guard = Time::from_us(20);
};

/// Sleeps the radio inside NAV/backoff idle slots longer than break-even.
class MicroNapPolicy final : public PowerPolicy {
public:
    explicit MicroNapPolicy(MicroNapConfig config = {}) : config_(config) {}

    [[nodiscard]] std::string_view name() const override { return "micro_nap"; }

    void attach(sim::Simulator& sim, phy::WlanNic& nic, MaySleep may_sleep = {}) override;

    void on_nav_set(Time until) override;
    void on_backoff_start(Time fire_at) override;
    void on_host_wake() override;

    // Energy attribution for the station's own exchanges: bracket TX/RX
    // airtime so it lands on tx/burst_rx instead of idle_listen.
    void on_tx_start(Time done_at) override;
    void on_tx_end() override;
    void on_rx_start(Time done_at) override;
    void on_rx_end() override;

    /// Minimum gap worth napping through (computed at attach()).
    [[nodiscard]] Time break_even_gap() const { return break_even_; }

    // --- diagnostics ---------------------------------------------------
    [[nodiscard]] std::uint64_t naps() const { return naps_; }
    [[nodiscard]] Time napped() const { return napped_total_; }
    [[nodiscard]] bool napping() const { return napping_; }

private:
    /// Nap until shortly before \p resume_by if the gap beats break-even,
    /// or extend the current nap.  \p voluntary naps ask the host's
    /// may_sleep() first (NAV naps — the host may have uplink pending);
    /// backoff naps are bounded by the DCF's own fire event and skip it.
    void try_nap(Time resume_by, bool voluntary);
    void resume();

    MicroNapConfig config_;
    Time break_even_;
    bool napping_ = false;
    Time wake_begin_;             ///< when the scheduled resume starts waking
    Time nap_started_;
    sim::EventHandle wake_event_;
    sim::EventHandle rx_revert_;
    std::uint64_t naps_ = 0;
    Time napped_total_;
};

}  // namespace wlanps::policy
