#include "policy/pamas_policy.hpp"

#include <string>

#include "sim/assert.hpp"

namespace wlanps::policy {

void PamasPolicyConfig::validate() const {
    WLANPS_REQUIRE_MSG(base_period > Time::zero(),
                       "PAMAS base_period must be positive");
    WLANPS_REQUIRE_MSG(!thresholds.empty(),
                       "PAMAS threshold table must not be empty");
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        const auto& t = thresholds[i];
        WLANPS_REQUIRE_MSG(t.level >= 0.0 && t.level <= 1.0,
                           "PAMAS threshold level must be in [0,1] (got " +
                               std::to_string(t.level) + ")");
        WLANPS_REQUIRE_MSG(t.stretch >= 1.0,
                           "PAMAS stretch must be >= 1 (got " +
                               std::to_string(t.stretch) + ")");
        if (i > 0) {
            WLANPS_REQUIRE_MSG(t.level < thresholds[i - 1].level,
                               "PAMAS threshold levels must be strictly descending");
            WLANPS_REQUIRE_MSG(t.stretch >= thresholds[i - 1].stretch,
                               "PAMAS stretches must be non-decreasing as the "
                               "battery drains");
        }
    }
    WLANPS_REQUIRE_MSG(thresholds.back().level == 0.0,
                       "PAMAS threshold table must end with a level-0 row so "
                       "every battery level maps to a stretch");
}

PamasPolicy::PamasPolicy(PamasPolicyConfig config) : config_(std::move(config)) {
    config_.validate();
}

double PamasPolicy::stretch_for(double level) const {
    for (const auto& t : config_.thresholds) {
        if (level >= t.level) return t.stretch;
    }
    return config_.thresholds.back().stretch;
}

}  // namespace wlanps::policy
