#pragma once
/// \file power_policy.hpp
/// Pluggable power-saving policy interface (ROADMAP item 4).
///
/// A PowerPolicy observes the MAC's medium-state transitions through
/// explicit hooks — NAV set/clear, backoff start, TX/RX boundaries, beacon
/// ticks, battery-level updates — and decides when the station's radio
/// sleeps.  The MAC never sleeps on its own in a policy-driven world: the
/// policy owns the radio's idle time, the MAC owns its busy time.
///
/// The interface deliberately sits below mac/ in the layering: it depends
/// only on sim/ and phy/, so mac::Bss and mac::DcfTransmitter can drive
/// the hooks through a forward-declared pointer without a dependency
/// cycle.  Concrete policies (micro_nap.hpp, pamas_policy.hpp) and the
/// policy-driven station live in the wlanps_policy library above mac/.

#include <functional>
#include <string_view>

#include "phy/wlan_nic.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wlanps::policy {

/// Per-station power-saving policy driven by MAC callbacks.
///
/// Hook contract (DESIGN.md §14):
///  - Hooks are notifications, never questions: the MAC reports what is
///    happening on the medium and carries on.  A policy acts only through
///    the attached NIC (request_state/wake) and its own scheduled events.
///  - `on_nav_set(until)` fires when a third-party frame exchange reserves
///    the medium up to `until` (data airtime + SIFS + ACK).  The station
///    is neither the source nor the destination of that exchange.
///  - `on_backoff_start(fire_at)` fires when the station's own DCF
///    schedules a transmit attempt at `fire_at`; the radio must be awake
///    again by then (DcfTransmitter::fire asserts it).
///  - `on_tx_start/on_rx_start(done_at)` bracket the station's own
///    airtime; `on_tx_end/on_rx_end` fire when the exchange resolves.
///  - `on_beacon_tick(next)` fires at each AP beacon with the time of the
///    next one; `on_battery_level(level)` reports the battery fraction in
///    [0,1] after each drain.
///  - `on_host_wake()` fires when the host stack independently needs the
///    radio awake (e.g. an uplink enqueue while napping); the policy must
///    cancel any sleep bookkeeping so the host's wake() lands cleanly.
class PowerPolicy {
public:
    /// Host predicate: true when the MAC has no pending work that needs
    /// the radio (DCF idle, no uplink in flight).  Policies consult it
    /// before voluntary sleeps that are not bounded by their own hooks.
    using MaySleep = std::function<bool()>;

    virtual ~PowerPolicy() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Bind the policy to its station's simulator and radio.  Called once
    /// by the policy-driven station before the simulation starts.
    virtual void attach(sim::Simulator& sim, phy::WlanNic& nic, MaySleep may_sleep = {}) {
        sim_ = &sim;
        nic_ = &nic;
        may_sleep_ = std::move(may_sleep);
    }

    // --- medium-state hooks (all optional) -----------------------------
    virtual void on_nav_set(Time until) { (void)until; }
    virtual void on_nav_clear() {}
    virtual void on_backoff_start(Time fire_at) { (void)fire_at; }
    virtual void on_tx_start(Time done_at) { (void)done_at; }
    virtual void on_tx_end() {}
    virtual void on_rx_start(Time done_at) { (void)done_at; }
    virtual void on_rx_end() {}
    virtual void on_beacon_tick(Time next) { (void)next; }
    virtual void on_battery_level(double level) { (void)level; }
    virtual void on_host_wake() {}

    /// Duty-cycle period the station should sleep between activity
    /// checks, or zero for policies that stay associated and listening
    /// (CAM-like, μNap).  Re-queried every cycle so the policy can adapt
    /// it (PAMAS stretches it as the battery drains).
    [[nodiscard]] virtual Time sleep_quantum() const { return Time::zero(); }

protected:
    sim::Simulator* sim_ = nullptr;
    phy::WlanNic* nic_ = nullptr;
    MaySleep may_sleep_;
};

}  // namespace wlanps::policy
