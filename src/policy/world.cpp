#include "policy/world.hpp"

#include <cstring>

#include "sim/assert.hpp"
#include "sim/random.hpp"

namespace wlanps::policy {

namespace {

sim::Random ap_rng(std::uint64_t seed) { return sim::Random(seed).fork(100); }

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
}

std::uint64_t bits_of(double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

}  // namespace

PolicyBssWorld::PolicyBssWorld(sim::Simulator& sim, PolicyWorldConfig config,
                               obs::EnergyLedger* ledger)
    : sim_(sim),
      config_(std::move(config)),
      bss_(sim),
      ap_(sim, bss_,
          [&] {
              mac::AccessPointConfig c;
              c.beacon_interval = config_.policy.beacon_interval;
              // Duty-cycling stations need the AP to buffer for them.
              c.mode = config_.policy.kind == PolicyKind::pamas ? mac::ApMode::psm
                                                                : mac::ApMode::cam;
              return c;
          }(),
          mac::DcfConfig{}, ap_rng(config_.seed)) {
    WLANPS_REQUIRE(config_.clients >= 1);
    WLANPS_REQUIRE_MSG(config_.policy.kind == PolicyKind::micro_nap ||
                           config_.policy.kind == PolicyKind::pamas,
                       "PolicyBssWorld runs the event-driven policies; adapter kinds "
                       "(cam/psm/ecmac) use their pre-existing scenario builders");
    config_.policy.validate();

    sim::Random root(config_.seed);
    for (int i = 0; i < config_.clients; ++i) {
        const auto id = static_cast<mac::StationId>(i + 1);
        auto policy = make_power_policy(config_.policy);
        auto st = std::make_unique<PolicyStation>(sim_, bss_, ap_, id, *policy,
                                                  config_.policy, mac::DcfConfig{},
                                                  config_.nic, root.fork(200 + i));
        if (ledger != nullptr) {
            st->wlan_nic().attach_ledger(ledger, static_cast<std::uint32_t>(id));
        }
        bss_.set_link(id, config_.link, root.fork(300 + i));
        auto playout = std::make_unique<traffic::PlayoutBuffer>(sim_, config_.playout);
        st->set_receive_callback(
            [p = playout.get()](DataSize size, Time) { p->on_data(size); });
        auto src = std::make_unique<traffic::Mp3Source>(
            sim_, [this, id](DataSize size) { ap_.send(id, size); });
        policies_.push_back(std::move(policy));
        stations_.push_back(std::move(st));
        playouts_.push_back(std::move(playout));
        sources_.push_back(std::move(src));
    }
}

void PolicyBssWorld::start() {
    ap_.start();
    for (auto& st : stations_) st->start();
    for (auto& p : playouts_) p->start();
    for (auto& s : sources_) s->start();
}

void PolicyBssWorld::settle() {
    for (auto& st : stations_) st->wlan_nic().settle_ledger();
}

std::uint64_t PolicyBssWorld::fingerprint() const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    for (const auto& st : stations_) {
        fnv_mix(h, bits_of(st->energy_consumed().joules()));
        fnv_mix(h, static_cast<std::uint64_t>(st->bytes_received().bytes()));
        fnv_mix(h, st->frames_received());
        fnv_mix(h, st->beacons_heard());
        fnv_mix(h, st->cycles());
        fnv_mix(h, static_cast<std::uint64_t>(st->bytes_sent().bytes()));
        if (const power::Battery* b = st->battery()) {
            fnv_mix(h, bits_of(b->level()));
        }
    }
    return h;
}

}  // namespace wlanps::policy
