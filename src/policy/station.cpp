#include "policy/station.hpp"

#include <utility>

#include "obs/energy_ledger.hpp"
#include "sim/assert.hpp"

namespace wlanps::policy {

using mac::Frame;
using mac::FrameKind;

PolicyStation::PolicyStation(sim::Simulator& sim, mac::Bss& bss, mac::AccessPoint& ap,
                             mac::StationId id, PowerPolicy& policy,
                             PowerPolicyConfig config, mac::DcfConfig dcf,
                             phy::WlanNicConfig nic_config, sim::Random rng)
    : sim_(sim),
      bss_(bss),
      ap_(ap),
      id_(id),
      policy_(policy),
      config_(std::move(config)),
      duty_cycle_(policy.sleep_quantum() > Time::zero()),
      nic_(sim, nic_config,
           duty_cycle_ ? phy::WlanNic::State::doze : phy::WlanNic::State::idle),
      dcf_(sim, bss.medium(), nic_, bss, rng.fork(1), dcf),
      rng_(rng.fork(2)) {
    WLANPS_REQUIRE_MSG(id != mac::kApId && id != mac::kBroadcast, "reserved station id");
    if (duty_cycle_) {
        WLANPS_REQUIRE_MSG(ap.mode() == mac::ApMode::psm,
                           "duty-cycling policies need a buffering (PSM-mode) AP");
        battery_.emplace(config_.pamas.battery);
    }
    bss_.attach(id, *this);
}

void PolicyStation::start() {
    policy_.attach(sim_, nic_, [this] { return may_sleep(); });
    bss_.register_policy(id_, &policy_);
    dcf_.set_power_policy(&policy_);
    bss_.medium().on_idle([this] { policy_.on_nav_clear(); });
    ap_.on_beacon([this](const std::set<mac::StationId>&) {
        policy_.on_beacon_tick(sim_.now() + ap_.config().beacon_interval);
    });
    if (duty_cycle_) {
        policy_.on_battery_level(battery_->level());
        reschedule_cycle();
    }
    if (!config_.uplink_period.is_zero()) schedule_uplink();
}

void PolicyStation::reschedule_cycle() {
    const Time quantum = policy_.sleep_quantum();
    WLANPS_REQUIRE_MSG(quantum > Time::zero(), "duty-cycle quantum must stay positive");
    sim_.post_in(quantum, [this] { cycle(); });
}

void PolicyStation::cycle() {
    drain_battery();
    if (battery_->empty()) {
        nic_.deep_sleep();  // dead node: radio off, no more cycles
        return;
    }
    ++cycles_;
    // Probe (free, signaling channel): anything buffered for us?
    if (ap_.buffered(id_) == 0) {
        reschedule_cycle();
        return;
    }
    // Close the doze span (idle_listen, matching the PSM convention) and
    // charge the wake transition + buffer drain to beacon_wake until the
    // first data frame flips it to burst_rx.
    nic_.set_energy_cause(obs::EnergyCause::beacon_wake);
    retrieving_ = true;
    nic_.wake([this] {
        ap_.flush_to(id_, [this] {
            retrieving_ = false;
            nic_.doze();
            nic_.set_energy_cause(obs::EnergyCause::idle_listen);
            drain_battery();
            reschedule_cycle();
        });
    });
}

void PolicyStation::drain_battery() {
    const power::Energy total = nic_.energy_consumed();
    const power::Energy delta = total - drained_;
    drained_ = total;
    if (delta > power::Energy::zero()) {
        battery_->drain(delta, nic_.average_power());
    }
    policy_.on_battery_level(battery_->level());
}

void PolicyStation::on_frame(const Frame& frame) {
    switch (frame.kind) {
        case FrameKind::beacon:
            ++beacons_heard_;
            return;
        case FrameKind::data:
            if (frame.payload.is_zero()) return;
            ++frames_received_;
            bytes_received_ += frame.payload;
            latency_.add((sim_.now() - frame.enqueued_at).to_seconds());
            if (duty_cycle_) nic_.set_energy_cause(obs::EnergyCause::burst_rx);
            if (on_receive_) on_receive_(frame.payload, sim_.now() - frame.enqueued_at);
            return;
        case FrameKind::ack:
        case FrameKind::ps_poll:
        case FrameKind::schedule:
            return;
    }
}

void PolicyStation::send_up(DataSize payload, std::function<void(bool)> done) {
    ++uplink_in_flight_;
    auto transmit = [this, payload, done = std::move(done)]() mutable {
        Frame f;
        f.kind = FrameKind::data;
        f.src = id_;
        f.dst = mac::kApId;
        f.payload = payload;
        dcf_.enqueue(std::move(f), [this, payload, done = std::move(done)](
                                       const mac::DcfTransmitter::Result& r) {
            --uplink_in_flight_;
            if (r.delivered) bytes_sent_ += payload;
            if (done) done(r.delivered);
            // A duty-cycling station dozes again once its uplink drains
            // (unless a buffer flush is mid-flight and needs the radio).
            if (duty_cycle_ && !retrieving_ && may_sleep()) {
                nic_.doze();
                nic_.set_energy_cause(obs::EnergyCause::idle_listen);
            }
        });
    };
    if (!nic_.awake()) {
        // The host preempts any policy nap; the policy drops its resume
        // bookkeeping and this wake() drives the radio back up.
        policy_.on_host_wake();
        nic_.wake(std::move(transmit));
    } else {
        transmit();
    }
}

void PolicyStation::schedule_uplink() {
    // Per-station random phase within the period decorrelates the fleet's
    // uplink attempts (all-at-once uplinks would collide every period).
    const Time jitter = config_.uplink_period * rng_.uniform(0.0, 1.0);
    sim_.post_in(config_.uplink_period + jitter, [this] {
        send_up(config_.uplink_size);
        schedule_uplink();
    });
}

}  // namespace wlanps::policy
