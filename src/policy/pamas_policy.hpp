#pragma once
/// \file pamas_policy.hpp
/// PAMAS-style battery-driven sleep policy.
///
/// The station duty-cycles against a PSM-buffering AP: sleep a quantum,
/// wake, drain the AP's buffer if anything is queued, sleep again.  The
/// PAMAS twist is that sleep aggressiveness follows the battery: a
/// threshold table maps remaining battery fraction to a stretch factor on
/// the base sleep period, trading latency for lifetime as charge runs out
/// (paper §2's battery-aware resource management, PAMAS lineage).

#include <vector>

#include "policy/power_policy.hpp"
#include "power/battery.hpp"

namespace wlanps::policy {

/// One row of the battery-threshold table: at or above \p level the sleep
/// period is base_period × \p stretch.
struct PamasThreshold {
    double level;    ///< battery fraction in [0,1]
    double stretch;  ///< multiplier on the base sleep period, >= 1
};

/// PAMAS knobs.
struct PamasPolicyConfig {
    /// Sleep period at full battery.
    Time base_period = Time::from_ms(250);
    /// Threshold table, strictly descending by level, stretches
    /// non-decreasing; the last row should cover level 0.
    std::vector<PamasThreshold> thresholds{
        {0.75, 1.0}, {0.50, 2.0}, {0.25, 4.0}, {0.00, 8.0}};
    /// Station battery.  Default is deliberately small (vs the IPAQ's
    /// 18.6 kJ pack) so threshold crossings are observable inside a
    /// minutes-long simulated run.
    power::BatteryConfig battery{power::Energy::from_joules(30.0),
                                 power::Power::from_watts(1.0), 0.15};

    void validate() const;
};

/// Battery-driven duty cycling: sleep_quantum() stretches as charge drops.
class PamasPolicy final : public PowerPolicy {
public:
    explicit PamasPolicy(PamasPolicyConfig config);

    [[nodiscard]] std::string_view name() const override { return "pamas"; }

    void on_battery_level(double level) override { level_ = level; }

    [[nodiscard]] Time sleep_quantum() const override {
        return Time::from_seconds(config_.base_period.to_seconds() * stretch_for(level_));
    }

    /// Stretch factor the current battery level selects.
    [[nodiscard]] double current_stretch() const { return stretch_for(level_); }
    [[nodiscard]] double stretch_for(double level) const;
    [[nodiscard]] const PamasPolicyConfig& config() const { return config_; }

private:
    PamasPolicyConfig config_;
    double level_ = 1.0;
};

}  // namespace wlanps::policy
