#include "policy/policy.hpp"

#include <string>

#include "sim/assert.hpp"

namespace wlanps::policy {

const char* to_string(PolicyKind kind) {
    switch (kind) {
        case PolicyKind::cam: return "cam";
        case PolicyKind::psm: return "psm";
        case PolicyKind::ecmac: return "ecmac";
        case PolicyKind::micro_nap: return "micro_nap";
        case PolicyKind::pamas: return "pamas";
    }
    return "?";
}

const char* power_policy_names() { return "cam, psm, ecmac, micro_nap, pamas"; }

PolicyKind parse_power_policy(std::string_view name) {
    if (name == "cam") return PolicyKind::cam;
    if (name == "psm") return PolicyKind::psm;
    if (name == "ecmac" || name == "ec-mac") return PolicyKind::ecmac;
    if (name == "micro_nap" || name == "micro-nap" || name == "munap") {
        return PolicyKind::micro_nap;
    }
    if (name == "pamas") return PolicyKind::pamas;
    WLANPS_REQUIRE_MSG(false, "unknown power policy '" + std::string(name) +
                                  "' — valid policies: " + power_policy_names());
    return PolicyKind::cam;  // unreachable
}

void PowerPolicyConfig::validate() const {
    WLANPS_REQUIRE_MSG(beacon_interval > Time::zero(),
                       "power-policy beacon_interval must be positive");
    WLANPS_REQUIRE_MSG(uplink_period >= Time::zero(),
                       "uplink_period must be >= 0 (zero disables uplink)");
    if (!uplink_period.is_zero()) {
        WLANPS_REQUIRE_MSG(uplink_size > DataSize::from_bytes(0),
                           "uplink_size must be positive when uplink is enabled");
    }
    switch (kind) {
        case PolicyKind::psm:
            WLANPS_REQUIRE_MSG(psm_listen_interval >= 1,
                               "psm_listen_interval must be >= 1");
            WLANPS_REQUIRE_MSG(psm_aggregate_limit >= 1,
                               "psm_aggregate_limit must be >= 1");
            break;
        case PolicyKind::ecmac:
            WLANPS_REQUIRE_MSG(ecmac_superframe > Time::zero(),
                               "ecmac_superframe must be positive");
            break;
        case PolicyKind::micro_nap:
            WLANPS_REQUIRE_MSG(micro_nap.guard >= Time::zero(),
                               "μNap guard must be >= 0");
            break;
        case PolicyKind::pamas:
            pamas.validate();
            break;
        case PolicyKind::cam:
            break;
    }
}

std::unique_ptr<PowerPolicy> make_power_policy(const PowerPolicyConfig& config) {
    switch (config.kind) {
        case PolicyKind::micro_nap:
            return std::make_unique<MicroNapPolicy>(config.micro_nap);
        case PolicyKind::pamas:
            return std::make_unique<PamasPolicy>(config.pamas);
        case PolicyKind::cam:
        case PolicyKind::psm:
        case PolicyKind::ecmac:
            return nullptr;  // adapter kinds run the pre-existing builders
    }
    return nullptr;
}

}  // namespace wlanps::policy
