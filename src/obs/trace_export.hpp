#pragma once
/// \file trace_export.hpp
/// Chrome trace_event JSON exporter: turns sim::TimelineTrace lanes (NIC
/// power states, scheduler activity, ...) and counter series into a file
/// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
///
/// Mapping: one process (pid 1), one Chrome "thread" per lane; each
/// TimelineTrace span becomes a complete ("X") event with its power level
/// attached as an argument; counter samples become "C" events.  Timestamps
/// are simulated microseconds, so the Perfetto timeline reads directly in
/// sim time.  Output is deterministic (fixed ordering and formatting) to
/// support golden-file tests.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace wlanps::obs {

class ChromeTraceWriter {
public:
    /// Add one lane: every span of \p trace becomes an "X" event named by
    /// the span label, with args {"level_mw": span.level}.  Returns the
    /// lane's tid for add_span/add_counter follow-ups.
    int add_lane(const std::string& name, const sim::TimelineTrace& trace);

    /// Lookup-or-create an empty lane by name (emits the thread_name
    /// metadata on first use) and return its tid.
    int lane(const std::string& name) { return lane_tid(name); }

    /// Add a single complete event to lane \p tid.
    void add_span(int tid, const std::string& name, Time begin, Time end, double level_mw);

    /// Add one counter sample ("C" event) on its own named track.
    void add_counter(const std::string& name, Time at, double value);

    /// Perfetto flow link phase: start, step, or finish of one arrow chain.
    enum class FlowPhase { start, step, finish };

    /// Add a flow event binding to the slice at (tid, at).  Events sharing
    /// \p flow_id draw one arrow chain across lanes in Perfetto.
    void add_flow(std::uint64_t flow_id, int tid, const std::string& name, Time at,
                  FlowPhase phase);

    /// Serialized {"traceEvents":[...]} document.
    [[nodiscard]] std::string str() const;

    /// Write str() to \p path; throws ContractViolation on I/O failure.
    void write_file(const std::string& path) const;

private:
    struct Lane {
        std::string name;
        int tid;
    };
    struct Event {
        std::string json;  // pre-rendered object
    };
    int lane_tid(const std::string& name);

    std::vector<Lane> lanes_;
    std::vector<Event> events_;
};

/// Render a flight recorder into \p writer: one lane per recorded client
/// ("C<n> flow"; client 0 gets "server flow"), one slice per hop (duration
/// = the event value for airtime/latency hops), and Perfetto flow arrows
/// chaining the hops of each non-zero flow id across lanes in record
/// order.  Deterministic for golden tests.
void export_flight(ChromeTraceWriter& writer, const FlightRecorder& recorder);

}  // namespace wlanps::obs
