#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "sim/assert.hpp"

namespace wlanps::obs {

namespace {

/// Microsecond timestamps with sub-µs (ns) precision, Chrome's native unit.
std::string format_us(Time t) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t.ns()) / 1000.0);
    return buf;
}

std::string format_level(double level) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", level);
    return buf;
}

}  // namespace

int ChromeTraceWriter::lane_tid(const std::string& name) {
    for (const Lane& lane : lanes_) {
        if (lane.name == name) return lane.tid;
    }
    const int tid = static_cast<int>(lanes_.size()) + 1;
    lanes_.push_back(Lane{name, tid});
    // Metadata event naming the Chrome "thread" so Perfetto shows the lane
    // under a human-readable label instead of a bare tid.
    std::ostringstream meta;
    meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
    events_.push_back(Event{meta.str()});
    return tid;
}

int ChromeTraceWriter::add_lane(const std::string& name, const sim::TimelineTrace& trace) {
    const int tid = lane_tid(name);
    for (const auto& span : trace.spans()) {
        add_span(tid, span.label, span.begin, span.end, span.level);
    }
    return tid;
}

void ChromeTraceWriter::add_span(int tid, const std::string& name, Time begin, Time end,
                                 double level_mw) {
    WLANPS_REQUIRE_MSG(end.ns() >= begin.ns(), "trace span ends before it begins");
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":" << format_us(begin) << ",\"dur\":" << format_us(end - begin)
       << ",\"args\":{\"level_mw\":" << format_level(level_mw) << "}}";
    events_.push_back(Event{ev.str()});
}

void ChromeTraceWriter::add_counter(const std::string& name, Time at, double value) {
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"C\",\"pid\":1,\"ts\":"
       << format_us(at) << ",\"args\":{\"value\":" << format_level(value) << "}}";
    events_.push_back(Event{ev.str()});
}

void ChromeTraceWriter::add_flow(std::uint64_t flow_id, int tid, const std::string& name,
                                 Time at, FlowPhase phase) {
    const char ph = phase == FlowPhase::start ? 's' : phase == FlowPhase::step ? 't' : 'f';
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(name) << "\",\"cat\":\"flow\",\"ph\":\"" << ph
       << "\",\"id\":" << flow_id << ",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":" << format_us(at);
    // Finish events bind to the enclosing slice, matching the start/step
    // binding point, so the arrow lands on the hop slice itself.
    if (phase == FlowPhase::finish) ev << ",\"bp\":\"e\"";
    ev << "}";
    events_.push_back(Event{ev.str()});
}

std::string ChromeTraceWriter::str() const {
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        if (i != 0) out << ",\n";
        out << events_[i].json;
    }
    out << "],\"displayTimeUnit\":\"ms\"}";
    return out.str();
}

void export_flight(ChromeTraceWriter& writer, const FlightRecorder& recorder) {
    const std::size_t count = recorder.size();
    // Pass 1: occurrence counts per flow id decide start/step/finish.
    std::vector<std::pair<std::uint64_t, std::size_t>> remaining;  // (flow, hops left)
    auto left = [&](std::uint64_t flow) -> std::size_t& {
        for (auto& entry : remaining) {
            if (entry.first == flow) return entry.second;
        }
        remaining.emplace_back(flow, 0);
        return remaining.back().second;
    };
    for (std::size_t i = 0; i < count; ++i) {
        const FlightEvent& e = recorder.at(i);
        if (e.flow != 0) ++left(e.flow);
    }
    std::vector<std::uint64_t> seen;
    auto first_occurrence = [&](std::uint64_t flow) {
        for (std::uint64_t f : seen) {
            if (f == flow) return false;
        }
        seen.push_back(flow);
        return true;
    };
    // Pass 2: a slice per hop, flow arrows chaining non-zero flows.
    for (std::size_t i = 0; i < count; ++i) {
        const FlightEvent& e = recorder.at(i);
        const std::string lane =
            e.client == 0 ? "server flow" : "C" + std::to_string(e.client) + " flow";
        const int tid = writer.lane(lane);
        const Time begin = Time::from_ns(e.t_ns);
        // Airtime/latency hops carry their duration in value (ns); the
        // bookkeeping hops (enqueued, scheduled, polled, retx, fault) are
        // instants.
        const bool timed =
            e.hop == Hop::tx || e.hop == Hop::rx || e.hop == Hop::doze_wakeup;
        const Time end = timed ? begin + Time::from_ns(static_cast<std::int64_t>(e.value))
                               : begin;
        writer.add_span(tid, to_string(e.hop), begin, end, e.value);
        if (e.flow == 0) continue;
        std::size_t& hops_left = left(e.flow);
        ChromeTraceWriter::FlowPhase phase = ChromeTraceWriter::FlowPhase::step;
        if (first_occurrence(e.flow)) {
            phase = ChromeTraceWriter::FlowPhase::start;
        } else if (hops_left == 1) {
            phase = ChromeTraceWriter::FlowPhase::finish;
        }
        --hops_left;
        writer.add_flow(e.flow, tid, "burst", begin, phase);
    }
}

void ChromeTraceWriter::write_file(const std::string& path) const {
    std::ofstream file(path);
    WLANPS_REQUIRE_MSG(file.good(), "cannot open chrome trace output file");
    file << str() << '\n';
    WLANPS_REQUIRE_MSG(file.good(), "failed writing chrome trace output file");
}

}  // namespace wlanps::obs
