#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "sim/assert.hpp"

namespace wlanps::obs {

namespace {

/// Microsecond timestamps with sub-µs (ns) precision, Chrome's native unit.
std::string format_us(Time t) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t.ns()) / 1000.0);
    return buf;
}

std::string format_level(double level) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", level);
    return buf;
}

}  // namespace

int ChromeTraceWriter::lane_tid(const std::string& name) {
    for (const Lane& lane : lanes_) {
        if (lane.name == name) return lane.tid;
    }
    const int tid = static_cast<int>(lanes_.size()) + 1;
    lanes_.push_back(Lane{name, tid});
    // Metadata event naming the Chrome "thread" so Perfetto shows the lane
    // under a human-readable label instead of a bare tid.
    std::ostringstream meta;
    meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
    events_.push_back(Event{meta.str()});
    return tid;
}

int ChromeTraceWriter::add_lane(const std::string& name, const sim::TimelineTrace& trace) {
    const int tid = lane_tid(name);
    for (const auto& span : trace.spans()) {
        add_span(tid, span.label, span.begin, span.end, span.level);
    }
    return tid;
}

void ChromeTraceWriter::add_span(int tid, const std::string& name, Time begin, Time end,
                                 double level_mw) {
    WLANPS_REQUIRE_MSG(end.ns() >= begin.ns(), "trace span ends before it begins");
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":" << format_us(begin) << ",\"dur\":" << format_us(end - begin)
       << ",\"args\":{\"level_mw\":" << format_level(level_mw) << "}}";
    events_.push_back(Event{ev.str()});
}

void ChromeTraceWriter::add_counter(const std::string& name, Time at, double value) {
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"C\",\"pid\":1,\"ts\":"
       << format_us(at) << ",\"args\":{\"value\":" << format_level(value) << "}}";
    events_.push_back(Event{ev.str()});
}

std::string ChromeTraceWriter::str() const {
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        if (i != 0) out << ",\n";
        out << events_[i].json;
    }
    out << "],\"displayTimeUnit\":\"ms\"}";
    return out.str();
}

void ChromeTraceWriter::write_file(const std::string& path) const {
    std::ofstream file(path);
    WLANPS_REQUIRE_MSG(file.good(), "cannot open chrome trace output file");
    file << str() << '\n';
    WLANPS_REQUIRE_MSG(file.good(), "failed writing chrome trace output file");
}

}  // namespace wlanps::obs
