#pragma once
/// \file shard_telemetry.hpp
/// Per-quantum, per-shard attribution for the barrier-quantum kernel.
///
/// The sharded kernel's existing ShardStats answer "what happened over the
/// whole run"; adaptive quantum sizing (ROADMAP item 1) needs the next
/// derivative — where each quantum's time went, shard by shard: dispatch
/// vs mailbox flush vs barrier wait, events per quantum, and how skewed
/// the load was across shards while it ran.  A ShardTelemetry instance is
/// attached to a ShardedSimulator (sim/sharded.hpp) and fed by the
/// coordinator after every quantum barrier; the recording call sites in
/// the kernel compile to nothing unless the build sets WLANPS_OBS_ENABLED
/// (cmake -DWLANPS_OBS=ON), mirroring KernelProfile.
///
/// Determinism contract: everything derived from event counts (events per
/// quantum, busy quanta, the skew histogram, imbalance_index()) is
/// bit-identical across worker-thread counts under the strict barrier,
/// because the kernel dispatches identical events per shard per quantum at
/// every thread count.  Wall-clock lanes (dispatch_ns, flush_ns,
/// barrier_wait_ns, imbalance_index_ns()) are inherently run-dependent and
/// are published separately (publish_timing) so determinism gates can
/// compare the rest.
///
/// Cost contract: event counts are recorded every quantum (they reuse
/// counters the kernel keeps anyway), but the dispatch/flush wall clocks
/// need two steady_clock reads per shard per quantum — enough to blow the
/// 5% obs-overhead budget on short quanta.  The kernel therefore times
/// only every timing_stride()-th quantum and this class scales the
/// sampled sums back up by the stride, so dispatch_ns / flush_ns /
/// imbalance_index_ns() stay whole-run *estimates* (exact at stride 1).
/// The sampling cadence is deterministic, not load-dependent.
///
/// Everything here is std-only; the kernel links wlanps_obs already.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace wlanps::obs {

/// Accumulated per-quantum attribution for the shards of one kernel.
/// Single-writer: the kernel's coordinating thread calls record_shard()
/// for every shard and then commit_quantum(), strictly between barriers.
class ShardTelemetry {
public:
    /// Whole-run accumulation for one shard.
    struct Lane {
        std::uint64_t events = 0;        ///< events dispatched across all quanta
        std::uint64_t busy_quanta = 0;   ///< quanta in which the shard dispatched work
        std::uint64_t max_events_quantum = 0;
        std::uint64_t cross_flushed = 0;  ///< mailbox events delivered to it
        std::uint64_t dispatch_ns = 0;    ///< run_until wall clock, stride-scaled estimate
        std::uint64_t flush_ns = 0;       ///< inbox-flush wall clock, stride-scaled estimate
        Histogram events_per_quantum;     ///< busy quanta only (idle quanta skew nothing)
    };

    /// \p timing_stride: the kernel takes wall-clock samples on every
    /// timing_stride-th quantum (1 = time everything; see the file
    /// comment's cost contract).
    explicit ShardTelemetry(std::size_t shards, std::uint64_t timing_stride = 16);

    [[nodiscard]] std::size_t shard_count() const { return lanes_.size(); }
    [[nodiscard]] const Lane& lane(std::size_t i) const;
    [[nodiscard]] std::uint64_t timing_stride() const { return timing_stride_; }

    // --- kernel-facing recording (coordinator thread, between barriers) ---
    /// Stage shard \p i's numbers for the quantum being committed.  The
    /// _ns arguments are raw samples (zero on untimed quanta); they are
    /// scaled by timing_stride() as they accumulate.
    void record_shard(std::size_t i, std::uint64_t events, std::uint64_t dispatch_ns,
                      std::uint64_t flush_ns, std::uint64_t cross_flushed);
    /// Fold the staged shards into the run accumulation and reset staging.
    void commit_quantum();
    /// One worker's idle time at a quantum barrier (threads > 0 only).
    void record_barrier_wait(std::uint64_t ns);

    // --- derived measures --------------------------------------------------
    [[nodiscard]] std::uint64_t quanta() const { return quanta_; }
    /// Load-imbalance index over event counts: sum over busy quanta of the
    /// max-shard event count, divided by the same sum of the cross-shard
    /// mean.  1.0 = perfectly balanced; K on K shards = one shard does all
    /// the work.  Deterministic.  0.0 when no quantum dispatched anything.
    [[nodiscard]] double imbalance_index() const;
    /// Same index over wall-clock dispatch time.  Not deterministic.
    [[nodiscard]] double imbalance_index_ns() const;
    /// Distribution of per-quantum max/mean event ratios (busy quanta).
    [[nodiscard]] const Histogram& skew() const { return skew_; }
    [[nodiscard]] const Histogram& barrier_wait_ns() const { return barrier_wait_ns_; }
    [[nodiscard]] std::uint64_t total_barrier_wait_ns() const { return barrier_wait_total_ns_; }
    [[nodiscard]] std::uint64_t total_dispatch_ns() const;
    [[nodiscard]] std::uint64_t total_flush_ns() const;

    /// Fold the deterministic lanes into \p registry in (shard, metric)
    /// order: per shard sim.shard.<i>.{events,busy_quanta,cross_flushed,
    /// max_events_quantum,events_per_quantum}, then the aggregates
    /// sim.shard.imbalance.{index,skew}.
    void publish(MetricsRegistry& registry) const;
    /// Fold the wall-clock lanes: per shard sim.shard.<i>.{dispatch_ns,
    /// flush_ns}, then sim.shard.imbalance.index_ns and
    /// sim.shard.telemetry.barrier_wait_ns.  Keep these out of snapshots
    /// that determinism gates compare.
    void publish_timing(MetricsRegistry& registry) const;

private:
    struct Staged {
        std::uint64_t events = 0;
        std::uint64_t dispatch_ns = 0;
    };

    std::vector<Lane> lanes_;
    std::vector<Staged> staged_;  // reset by commit_quantum
    std::uint64_t timing_stride_ = 16;
    std::uint64_t quanta_ = 0;
    // Imbalance accumulators (events deterministic, ns wall-clock).
    std::uint64_t sum_max_events_ = 0;
    std::uint64_t sum_events_ = 0;
    std::uint64_t sum_max_dispatch_ns_ = 0;
    std::uint64_t sum_dispatch_ns_ = 0;
    Histogram skew_;
    Histogram barrier_wait_ns_;
    std::uint64_t barrier_wait_total_ns_ = 0;
};

}  // namespace wlanps::obs
