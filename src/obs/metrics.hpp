#pragma once
/// \file metrics.hpp
/// Observability instruments: Counter, Gauge, log-bucketed Histogram, and
/// the MetricsRegistry that names them.
///
/// Components register instruments against a registry by stable string key
/// ("core.burst_bytes", "sim.kernel.dispatch_ns.fast", ...).  Instruments
/// are value types with O(1) record paths and exact, order-independent
/// count merging, so one registry per experiment run can be snapshotted
/// and reduced deterministically across (point, seed) grids — see
/// exp::ExperimentRunner.  This header depends on nothing but the standard
/// library (the simulation kernel links against it).

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

namespace wlanps::obs {

/// Monotonic event count.
class Counter {
public:
    void add(std::uint64_t delta = 1) { value_ += delta; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

    /// Merge: counts are exactly associative and commutative.
    void merge_from(const Counter& other) { value_ += other.value_; }

private:
    std::uint64_t value_ = 0;
};

/// Last-value instrument with running min/max/mean over the set() calls.
class Gauge {
public:
    void set(double value) {
        last_ = value;
        if (count_ == 0 || value < min_) min_ = value;
        if (count_ == 0 || value > max_) max_ = value;
        sum_ += value;
        ++count_;
    }

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double last() const { return last_; }
    [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
    [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
    [[nodiscard]] double mean() const {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /// Merge in reduction order: `last` is the other side's last (the
    /// merged value reads as "the most recently merged run's value"), the
    /// extrema and mean cover both sides.
    void merge_from(const Gauge& other) {
        if (other.count_ == 0) return;
        if (count_ == 0 || other.min_ < min_) min_ = other.min_;
        if (count_ == 0 || other.max_ > max_) max_ = other.max_;
        sum_ += other.sum_;
        count_ += other.count_;
        last_ = other.last_;
    }

private:
    std::uint64_t count_ = 0;
    double last_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Fixed-size log-bucketed histogram: 8 sub-buckets per power of two over
/// 2^-64 .. 2^64, so any positive double lands in a bucket whose width is
/// ~9% of its value.  record() is O(1) (one frexp + one increment); two
/// histograms with the same (always identical) layout merge by adding
/// bucket counts, which is exact and associative.  Values <= 0 are kept in
/// a dedicated underflow bucket and reported through min().
class Histogram {
public:
    static constexpr int kSubBits = 3;
    static constexpr int kSubBuckets = 1 << kSubBits;  // per power of two
    static constexpr int kMinExp = -64;                // frexp exponent floor
    static constexpr int kMaxExp = 64;                 // frexp exponent ceiling
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;

    /// Record one sample.  NaN samples are dropped.
    void record(double x);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double mean() const {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }
    [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
    [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

    /// Approximate p-th percentile (p in [0, 100]): linear interpolation
    /// within the covering bucket, clamped to the observed [min, max].
    [[nodiscard]] double percentile(double p) const;

    /// Merge: bucket counts add exactly; the double `sum` adds in call
    /// order (bit-identical whenever merges happen in a fixed order, as
    /// the experiment runner's serial reduction does).
    void merge_from(const Histogram& other);

    // --- bucket geometry (exposed for boundary tests) ---------------------
    /// Bucket index of a sample x > 0.
    [[nodiscard]] static std::size_t bucket_index(double x);
    /// Inclusive lower / exclusive upper value edge of bucket \p i.
    [[nodiscard]] static double bucket_lower(std::size_t i);
    [[nodiscard]] static double bucket_upper(std::size_t i);
    /// Samples recorded into bucket \p i (underflow excluded).
    [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
    /// Samples <= 0 (kept out of the log buckets).
    [[nodiscard]] std::uint64_t underflow_count() const { return underflow_; }

private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t underflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Instrument kinds, used by snapshots and exporters.
enum class InstrumentKind { counter, gauge, histogram };

[[nodiscard]] const char* to_string(InstrumentKind kind);

/// A value-type copy of a registry's instruments, in registration order.
/// Snapshots are what experiment runs hand back for merging: merge_from()
/// combines same-key instruments (kind-checked) and appends unseen keys,
/// so reducing run snapshots in a fixed order is bit-reproducible.
class MetricsSnapshot {
public:
    using Value = std::variant<Counter, Gauge, Histogram>;
    struct Entry {
        std::string key;
        Value value;
        [[nodiscard]] InstrumentKind kind() const {
            return static_cast<InstrumentKind>(value.index());
        }
    };

    void add(std::string key, Value value);

    /// Merge same-key instruments; a kind mismatch for a key throws
    /// ContractViolation.  Keys only in \p other are appended in order.
    void merge_from(const MetricsSnapshot& other);

    [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    /// Typed lookup by key; nullptr when absent or of another kind.
    [[nodiscard]] const Counter* counter(std::string_view key) const;
    [[nodiscard]] const Gauge* gauge(std::string_view key) const;
    [[nodiscard]] const Histogram* histogram(std::string_view key) const;

private:
    [[nodiscard]] const Entry* find(std::string_view key) const;
    std::vector<Entry> entries_;
};

/// Named instrument store.  Requesting a key registers it on first use and
/// returns the same instrument thereafter; requesting an existing key as a
/// different kind throws ContractViolation (stable keys are the contract
/// that makes cross-run merging meaningful).  Not thread-safe: each
/// experiment run owns its registry (see obs::ScopedRegistry).
class MetricsRegistry {
public:
    Counter& counter(std::string_view key);
    Gauge& gauge(std::string_view key);
    Histogram& histogram(std::string_view key);

    [[nodiscard]] std::size_t instrument_count() const { return order_.size(); }

    /// Value-type copy of every instrument, in registration order.
    [[nodiscard]] MetricsSnapshot snapshot() const;

private:
    struct Slot {
        std::string key;
        InstrumentKind kind;
        std::size_t index;  // into the deque of its kind
    };
    Slot& resolve(std::string_view key, InstrumentKind kind);

    std::vector<Slot> order_;
    std::unordered_map<std::string, std::size_t> by_key_;  // -> order_ index
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
};

}  // namespace wlanps::obs
