#include "obs/flight.hpp"

#include <cinttypes>
#include <cstdio>

#include "sim/assert.hpp"

namespace wlanps::obs {

namespace {

thread_local FlightRecorder* t_flight = nullptr;
thread_local PostMortem* t_postmortem = nullptr;

/// Shortest round-trippable representation, matching json.cpp.
void append_number(std::string& out, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    out += buf;
}

}  // namespace

const char* to_string(Hop hop) {
    switch (hop) {
        case Hop::enqueued: return "enqueued";
        case Hop::scheduled: return "scheduled";
        case Hop::polled: return "polled";
        case Hop::tx: return "tx";
        case Hop::retx: return "retx";
        case Hop::rx: return "rx";
        case Hop::doze_wakeup: return "doze_wakeup";
        case Hop::fault: return "fault";
    }
    return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
    WLANPS_REQUIRE_MSG(capacity > 0, "flight recorder capacity must be positive");
    ring_.resize(capacity);
}

void FlightRecorder::record(const FlightEvent& event) noexcept {
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = event;
    ++total_;
}

std::size_t FlightRecorder::size() const {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
}

const FlightEvent& FlightRecorder::at(std::size_t i) const {
    WLANPS_REQUIRE_MSG(i < size(), "flight recorder index out of range");
    // Oldest surviving event sits at total_ % capacity once wrapped.
    const std::size_t first =
        total_ <= ring_.size() ? 0 : static_cast<std::size_t>(total_ % ring_.size());
    return ring_[(first + i) % ring_.size()];
}

std::vector<FlightEvent> FlightRecorder::events() const {
    std::vector<FlightEvent> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) out.push_back(at(i));
    return out;
}

void FlightRecorder::clear() { total_ = 0; }

std::string FlightRecorder::dump_json(std::size_t last_n) const {
    const std::size_t count = size();
    const std::size_t n = (last_n == 0 || last_n > count) ? count : last_n;
    const std::size_t first = count - n;

    std::string out;
    out.reserve(128 + n * 96);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"capacity\":%zu,\"total\":%" PRIu64 ",\"dropped\":%" PRIu64
                  ",\"events\":[",
                  capacity(), total(), dropped());
    out += buf;
    for (std::size_t i = first; i < count; ++i) {
        const FlightEvent& e = at(i);
        if (i != first) out += ',';
        std::snprintf(buf, sizeof(buf),
                      "{\"t_ns\":%" PRId64 ",\"hop\":\"%s\",\"flow\":%" PRIu64
                      ",\"client\":%" PRIu32 ",\"itf\":%u,\"value\":",
                      e.t_ns, to_string(e.hop), e.flow, e.client,
                      static_cast<unsigned>(e.itf));
        out += buf;
        append_number(out, e.value);
        out += '}';
    }
    out += "]}";
    return out;
}

FlightRecorder* current_flight() noexcept { return t_flight; }

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder& recorder)
    : previous_(t_flight) {
    t_flight = &recorder;
}

ScopedFlightRecorder::~ScopedFlightRecorder() { t_flight = previous_; }

PostMortem::PostMortem(const FlightRecorder& recorder, PostMortemConfig config)
    : recorder_(recorder), config_(std::move(config)) {}

void PostMortem::on_recovery(double time_to_recover_s, std::uint32_t client) {
    if (time_to_recover_s <= config_.threshold_s) return;
    if (dumps_ >= config_.max_dumps) return;
    std::string path = config_.path_prefix + ".c" + std::to_string(client) + "." +
                       std::to_string(dumps_) + ".flight.json";
    const std::string body = recorder_.dump_json(config_.last_n);
    if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
        std::fwrite(body.data(), 1, body.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        ++dumps_;
        files_.push_back(std::move(path));
    }
}

PostMortem* current_postmortem() noexcept { return t_postmortem; }

ScopedPostMortem::ScopedPostMortem(PostMortem& pm) : previous_(t_postmortem) {
    t_postmortem = &pm;
}

ScopedPostMortem::~ScopedPostMortem() { t_postmortem = previous_; }

}  // namespace wlanps::obs
