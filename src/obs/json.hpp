#pragma once
/// \file json.hpp
/// Flat metrics.json snapshot writer.  Deterministic output: entries in
/// registration/merge order, doubles formatted with %.12g, so two
/// bit-identical snapshots serialize to byte-identical JSON (the
/// determinism tests compare these strings).

#include <string>

#include "obs/energy_ledger.hpp"
#include "obs/metrics.hpp"

namespace wlanps::obs {

/// Serialize one snapshot:
/// {
///   "counters":   { "key": 123, ... },
///   "gauges":     { "key": {"last":..,"min":..,"max":..,"mean":..,"count":..} },
///   "histograms": { "key": {"count":..,"sum":..,"min":..,"max":..,"mean":..,
///                            "p50":..,"p90":..,"p99":..} }
/// }
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// As above, plus an "energy_ledger" section (EnergyLedger::to_json) when
/// \p ledger is non-null.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot, const EnergyLedger* ledger);

/// Write to_json(snapshot) to \p path (trailing newline added); throws
/// ContractViolation when the file cannot be written.
void write_json_file(const MetricsSnapshot& snapshot, const std::string& path);

/// As above with the ledger section appended when \p ledger is non-null.
void write_json_file(const MetricsSnapshot& snapshot, const EnergyLedger* ledger,
                     const std::string& path);

/// Minimal JSON string escaping (quotes, backslash, control chars) shared
/// by the metrics and trace writers.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Shortest-round-trip-ish deterministic double formatting ("%.12g").
[[nodiscard]] std::string json_number(double value);

}  // namespace wlanps::obs
