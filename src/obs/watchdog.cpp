#include "obs/watchdog.hpp"

#include <fstream>
#include <utility>

#include "obs/json.hpp"
#include "sim/assert.hpp"

namespace wlanps::obs {

namespace {

thread_local Watchdog* t_watchdog = nullptr;

}  // namespace

std::string to_json(const WatchdogReport& report) {
    std::string out = "{\"check\":\"" + json_escape(report.check) + "\"";
    out += ",\"t_ns\":" + std::to_string(report.t_ns);
    out += ",\"sweep\":" + std::to_string(report.sweep);
    out += ",\"message\":\"" + json_escape(report.message) + "\"";
    out += ",\"flight_dump\":\"" + json_escape(report.flight_dump) + "\"}";
    return out;
}

void Watchdog::add_check(std::string name, Check check) {
    WLANPS_REQUIRE_MSG(static_cast<bool>(check), "null watchdog check");
    WLANPS_REQUIRE_MSG(!name.empty(), "watchdog check needs a name");
    checks_.push_back(Entry{std::move(name), std::move(check), false});
}

void Watchdog::set_flight(const FlightRecorder* recorder, std::string path_prefix,
                          std::size_t last_n, std::size_t max_dumps) {
    flight_ = recorder;
    flight_prefix_ = std::move(path_prefix);
    flight_last_n_ = last_n;
    flight_max_dumps_ = max_dumps;
}

std::size_t Watchdog::sweep(std::int64_t t_ns) {
    ++sweeps_;
    std::size_t caught = 0;
    for (Entry& entry : checks_) {
        if (entry.tripped) continue;
        std::optional<std::string> violation = entry.check();
        if (!violation.has_value()) continue;
        entry.tripped = true;
        ++caught;
        WatchdogReport report;
        report.check = entry.name;
        report.message = std::move(*violation);
        report.t_ns = t_ns;
        report.sweep = sweeps_;
        if (flight_ != nullptr && flight_dumps_ < flight_max_dumps_) {
            report.flight_dump = flight_prefix_ + "." + entry.name + "." +
                                 std::to_string(flight_dumps_) + ".flight.json";
            std::ofstream out(report.flight_dump, std::ios::trunc);
            if (out) {
                out << flight_->dump_json(flight_last_n_) << "\n";
                ++flight_dumps_;
            } else {
                report.flight_dump.clear();  // diagnosis must not kill the run
            }
        }
        reports_.push_back(std::move(report));
    }
    return caught;
}

std::string Watchdog::to_json() const {
    std::string out = "{\"checks\":" + std::to_string(checks_.size());
    out += ",\"sweeps\":" + std::to_string(sweeps_);
    out += ",\"violations\":" + std::to_string(reports_.size());
    out += ",\"reports\":[";
    for (std::size_t i = 0; i < reports_.size(); ++i) {
        if (i > 0) out += ",";
        out += obs::to_json(reports_[i]);
    }
    out += "]}";
    return out;
}

Watchdog* current_watchdog() noexcept { return t_watchdog; }

ScopedWatchdog::ScopedWatchdog(Watchdog& watchdog) : previous_(t_watchdog) {
    t_watchdog = &watchdog;
}

ScopedWatchdog::~ScopedWatchdog() { t_watchdog = previous_; }

}  // namespace wlanps::obs
