#include "obs/metrics_stream.hpp"

#include <cstring>

#include "sim/assert.hpp"

namespace wlanps::obs {

namespace {

// The format is explicitly little-endian; serialize byte by byte so the
// writer is byte-order independent (the repo only targets LE hosts today,
// but a format should not inherit that assumption).
void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
    buf.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& buf, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(buf, bits);
}

void put_f32(std::vector<std::uint8_t>& buf, float v) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u32(buf, bits);
}

struct Cursor {
    const std::vector<std::uint8_t>& data;
    std::size_t pos = 0;

    [[nodiscard]] bool done() const { return pos >= data.size(); }

    std::uint8_t u8() {
        WLANPS_REQUIRE_MSG(pos + 1 <= data.size(), "metrics stream truncated");
        return data[pos++];
    }
    std::uint16_t u16() {
        std::uint16_t v = u8();
        v |= static_cast<std::uint16_t>(u8()) << 8;
        return v;
    }
    std::uint32_t u32() {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }
    std::uint64_t u64() {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }
    double f64() {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    float f32() {
        const std::uint32_t bits = u32();
        float v = 0.0f;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    std::string str(std::size_t n) {
        WLANPS_REQUIRE_MSG(pos + n <= data.size(), "metrics stream truncated");
        std::string s(reinterpret_cast<const char*>(data.data()) + pos, n);
        pos += n;
        return s;
    }
};

}  // namespace

MetricsStreamWriter::MetricsStreamWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
    WLANPS_REQUIRE_MSG(out_.is_open(),
                       "cannot open metrics stream file '" + path + "' for writing");
    out_.write(kMetricsStreamMagic, sizeof(kMetricsStreamMagic));
    std::vector<std::uint8_t> ver;
    put_u32(ver, kMetricsStreamVersion);
    out_.write(reinterpret_cast<const char*>(ver.data()),
               static_cast<std::streamsize>(ver.size()));
}

void MetricsStreamWriter::frame(std::uint8_t type, const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> head;
    head.push_back(type);
    put_u32(head, static_cast<std::uint32_t>(payload.size()));
    out_.write(reinterpret_cast<const char*>(head.data()),
               static_cast<std::streamsize>(head.size()));
    out_.write(reinterpret_cast<const char*>(payload.data()),
               static_cast<std::streamsize>(payload.size()));
}

std::uint32_t MetricsStreamWriter::define_series(const std::string& name) {
    const std::uint32_t id = next_series_++;
    std::vector<std::uint8_t> p;
    put_u32(p, id);
    put_u16(p, static_cast<std::uint16_t>(name.size()));
    p.insert(p.end(), name.begin(), name.end());
    frame(0, p);
    return id;
}

void MetricsStreamWriter::sample(std::uint32_t series_id, std::int64_t t_ns, double value) {
    std::vector<std::uint8_t> p;
    put_u32(p, series_id);
    put_u64(p, static_cast<std::uint64_t>(t_ns));
    put_f64(p, value);
    frame(1, p);
}

void MetricsStreamWriter::summary(const std::string& key, double value) {
    std::vector<std::uint8_t> p;
    put_u16(p, static_cast<std::uint16_t>(key.size()));
    p.insert(p.end(), key.begin(), key.end());
    put_f64(p, value);
    frame(2, p);
}

void MetricsStreamWriter::client(std::uint32_t client_id, float energy_j, float qos,
                                 std::uint32_t bursts_completed, std::uint32_t bursts_shed) {
    std::vector<std::uint8_t> p;
    put_u32(p, client_id);
    put_f32(p, energy_j);
    put_f32(p, qos);
    put_u32(p, bursts_completed);
    put_u32(p, bursts_shed);
    frame(3, p);
}

void MetricsStreamWriter::flush() { out_.flush(); }

MetricsStreamContents read_metrics_stream(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    WLANPS_REQUIRE_MSG(in.is_open(), "cannot open metrics stream file '" + path + "'");
    std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
    WLANPS_REQUIRE_MSG(data.size() >= 8, "metrics stream too short for a header");
    WLANPS_REQUIRE_MSG(std::memcmp(data.data(), kMetricsStreamMagic, 4) == 0,
                       "bad metrics stream magic (want WPSM)");

    Cursor c{data, 4};
    const std::uint32_t version = c.u32();
    WLANPS_REQUIRE_MSG(version == kMetricsStreamVersion,
                       "unsupported metrics stream version " + std::to_string(version));

    MetricsStreamContents out;
    while (!c.done()) {
        const std::uint8_t type = c.u8();
        const std::uint32_t len = c.u32();
        const std::size_t end = c.pos + len;
        WLANPS_REQUIRE_MSG(end <= data.size(), "metrics stream frame overruns file");
        switch (type) {
            case 0: {
                const std::uint32_t id = c.u32();
                const std::uint16_t n = c.u16();
                WLANPS_REQUIRE_MSG(id == out.series_names.size(),
                                   "series ids must be defined densely in order");
                out.series_names.push_back(c.str(n));
                break;
            }
            case 1: {
                MetricsStreamContents::Sample s;
                s.series = c.u32();
                s.t_ns = static_cast<std::int64_t>(c.u64());
                s.value = c.f64();
                out.samples.push_back(s);
                break;
            }
            case 2: {
                const std::uint16_t n = c.u16();
                std::string key = c.str(n);
                const double value = c.f64();
                out.summaries.emplace_back(std::move(key), value);
                break;
            }
            case 3: {
                MetricsStreamContents::Client r;
                r.id = c.u32();
                r.energy_j = c.f32();
                r.qos = c.f32();
                r.bursts_completed = c.u32();
                r.bursts_shed = c.u32();
                out.clients.push_back(r);
                break;
            }
            default:
                // Unknown frame types are skippable by design (forward
                // compatibility): length-prefixed framing exists for this.
                break;
        }
        WLANPS_REQUIRE_MSG(c.pos <= end, "metrics stream frame underruns its length");
        c.pos = end;
    }
    return out;
}

}  // namespace wlanps::obs
