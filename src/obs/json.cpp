#include "obs/json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/assert.hpp"

namespace wlanps::obs {

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string json_number(double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

namespace {

void append_gauge(std::ostringstream& out, const Gauge& g) {
    out << "{\"last\":" << json_number(g.last()) << ",\"min\":" << json_number(g.min())
        << ",\"max\":" << json_number(g.max()) << ",\"mean\":" << json_number(g.mean())
        << ",\"count\":" << g.count() << "}";
}

void append_histogram(std::ostringstream& out, const Histogram& h) {
    out << "{\"count\":" << h.count() << ",\"sum\":" << json_number(h.sum())
        << ",\"min\":" << json_number(h.min()) << ",\"max\":" << json_number(h.max())
        << ",\"mean\":" << json_number(h.mean())
        << ",\"p50\":" << json_number(h.percentile(50.0))
        << ",\"p90\":" << json_number(h.percentile(90.0))
        << ",\"p99\":" << json_number(h.percentile(99.0)) << "}";
}

void append_section(std::ostringstream& out, const MetricsSnapshot& snapshot,
                    const char* name, InstrumentKind kind) {
    out << "\"" << name << "\":{";
    bool first = true;
    for (const auto& entry : snapshot.entries()) {
        if (entry.kind() != kind) continue;
        if (!first) out << ",";
        first = false;
        out << "\"" << json_escape(entry.key) << "\":";
        switch (kind) {
            case InstrumentKind::counter:
                out << std::get<Counter>(entry.value).value();
                break;
            case InstrumentKind::gauge:
                append_gauge(out, std::get<Gauge>(entry.value));
                break;
            case InstrumentKind::histogram:
                append_histogram(out, std::get<Histogram>(entry.value));
                break;
        }
    }
    out << "}";
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) { return to_json(snapshot, nullptr); }

std::string to_json(const MetricsSnapshot& snapshot, const EnergyLedger* ledger) {
    std::ostringstream out;
    out << "{";
    append_section(out, snapshot, "counters", InstrumentKind::counter);
    out << ",";
    append_section(out, snapshot, "gauges", InstrumentKind::gauge);
    out << ",";
    append_section(out, snapshot, "histograms", InstrumentKind::histogram);
    if (ledger != nullptr) {
        out << ",\"energy_ledger\":" << ledger->to_json();
    }
    out << "}";
    return out.str();
}

void write_json_file(const MetricsSnapshot& snapshot, const std::string& path) {
    write_json_file(snapshot, nullptr, path);
}

void write_json_file(const MetricsSnapshot& snapshot, const EnergyLedger* ledger,
                     const std::string& path) {
    std::ofstream file(path);
    WLANPS_REQUIRE_MSG(file.good(), "cannot open metrics json output file");
    file << to_json(snapshot, ledger) << '\n';
    WLANPS_REQUIRE_MSG(file.good(), "failed writing metrics json output file");
}

}  // namespace wlanps::obs
