#pragma once
/// \file watchdog.hpp
/// Runtime invariant watchdogs: cheap periodic checks that turn a
/// would-be WLANPS_REQUIRE crash at teardown into a structured, timed
/// report while the run keeps going.
///
/// A Watchdog holds a registry of named checks — pure predicates over
/// simulation state that return a violation message or nothing.  A sweep
/// driver (a SimSampler track for single-kernel runs, the federation's
/// chunk-boundary loop for sharded ones) calls sweep(sim_now_ns) from the
/// owning thread; every violation becomes a WatchdogReport carrying the
/// check name, the sim time of the catching sweep, and — when a
/// FlightRecorder is wired in — the path of a post-mortem flight dump
/// written at the moment of detection.  A tripped check latches: the
/// invariant is already broken, so repeated sweeps do not repeat the
/// report.
///
/// Gating follows EnergyLedger, not the WLANPS_OBS macros: the classes
/// are always compiled, and cost nothing unless a scope installs one
/// (current_watchdog() is a thread-local pointer check at the sweep
/// driver only — never on the event hot path).
///
/// Everything here is std-only so it can live in the wlanps_obs core.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight.hpp"

namespace wlanps::obs {

/// One caught invariant violation.
struct WatchdogReport {
    std::string check;        ///< registered check name
    std::string message;      ///< what the check saw
    std::int64_t t_ns = 0;    ///< sim time of the catching sweep
    std::uint64_t sweep = 0;  ///< 1-based index of the catching sweep
    std::string flight_dump;  ///< post-mortem dump path, empty when none
};

/// Deterministic JSON for one report:
///   {"check":"...","t_ns":...,"sweep":...,"message":"...","flight_dump":"..."}
[[nodiscard]] std::string to_json(const WatchdogReport& report);

/// Named invariant checks + the reports their sweeps produced.
/// Single-threaded: register and sweep from the owning thread only
/// (between run_until() calls — checks may scan cross-shard state).
class Watchdog {
public:
    /// A check inspects simulation state and returns std::nullopt when the
    /// invariant holds, or a human-readable violation message.  Checks
    /// must be pure observers: mutating simulation state from a sweep
    /// would make the watchdog itself a determinism hazard.
    using Check = std::function<std::optional<std::string>()>;

    void add_check(std::string name, Check check);
    [[nodiscard]] std::size_t check_count() const { return checks_.size(); }

    /// Wire a flight recorder: each violation dumps the recorder's last
    /// \p last_n events to "<prefix>.<check>.<k>.flight.json" (at most
    /// \p max_dumps files per watchdog), recorded in the report.
    void set_flight(const FlightRecorder* recorder, std::string path_prefix,
                    std::size_t last_n = 256, std::size_t max_dumps = 8);

    /// Run every registered (non-tripped) check once at sim time \p t_ns.
    /// Returns the number of new violations this sweep.
    std::size_t sweep(std::int64_t t_ns);

    [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }
    [[nodiscard]] std::uint64_t violations() const { return reports_.size(); }
    [[nodiscard]] bool healthy() const { return reports_.empty(); }
    [[nodiscard]] const std::vector<WatchdogReport>& reports() const { return reports_; }

    /// Deterministic JSON of the whole watchdog state:
    ///   {"checks":N,"sweeps":S,"violations":V,"reports":[...]}
    [[nodiscard]] std::string to_json() const;

private:
    struct Entry {
        std::string name;
        Check check;
        bool tripped = false;
    };

    std::vector<Entry> checks_;
    std::vector<WatchdogReport> reports_;
    std::uint64_t sweeps_ = 0;
    const FlightRecorder* flight_ = nullptr;
    std::string flight_prefix_;
    std::size_t flight_last_n_ = 256;
    std::size_t flight_max_dumps_ = 8;
    std::size_t flight_dumps_ = 0;
};

/// The watchdog sweep drivers consult, or nullptr when no scope is
/// active.  Thread-local, like obs::current() and current_ledger().
[[nodiscard]] Watchdog* current_watchdog() noexcept;

/// RAII scope installing \p watchdog as the thread's watchdog; restores
/// the previous one (scopes nest) on destruction.
class ScopedWatchdog {
public:
    explicit ScopedWatchdog(Watchdog& watchdog);
    ~ScopedWatchdog();
    ScopedWatchdog(const ScopedWatchdog&) = delete;
    ScopedWatchdog& operator=(const ScopedWatchdog&) = delete;

private:
    Watchdog* previous_;
};

}  // namespace wlanps::obs
