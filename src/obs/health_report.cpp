#include "obs/health_report.hpp"

#include <fstream>

#include "obs/json.hpp"
#include "obs/metrics_stream.hpp"
#include "sim/assert.hpp"

namespace wlanps::obs {

namespace {

void append_u64(std::string& out, const char* key, std::uint64_t value) {
    out += "\"";
    out += key;
    out += "\":" + std::to_string(value);
}

void append_i64(std::string& out, const char* key, std::int64_t value) {
    out += "\"";
    out += key;
    out += "\":" + std::to_string(value);
}

void append_num(std::string& out, const char* key, double value) {
    out += "\"";
    out += key;
    out += "\":" + json_number(value);
}

}  // namespace

double HealthReport::barrier_overhead() const {
    const double denom =
        static_cast<double>(barrier_wait_ns) + static_cast<double>(dispatch_ns);
    if (denom <= 0.0) return 0.0;
    return static_cast<double>(barrier_wait_ns) / denom;
}

void HealthReport::set_watchdog(const Watchdog& watchdog) {
    has_watchdog = true;
    watchdog_checks = watchdog.check_count();
    watchdog_sweeps = watchdog.sweeps();
    watchdog_reports = watchdog.reports();
}

std::string HealthReport::to_json(bool include_timing) const {
    std::string out = "{\"scope\":\"" + json_escape(scope) + "\"";
    out += ",\"policy\":\"" + json_escape(policy) + "\",";
    append_u64(out, "shards", shards);
    out += ",";
    append_u64(out, "quanta", quanta);
    out += ",";
    append_u64(out, "idle_jumps", idle_jumps);
    out += ",";
    append_u64(out, "events", events);
    out += ",";
    append_num(out, "imbalance_index", imbalance_index);
    out += ",\"skew\":{";
    append_u64(out, "count", skew_count);
    out += ",";
    append_num(out, "mean", skew_mean);
    out += ",";
    append_num(out, "max", skew_max);
    out += "},\"per_shard\":[";
    for (std::size_t i = 0; i < per_shard.size(); ++i) {
        const ShardHealth& sh = per_shard[i];
        if (i > 0) out += ",";
        out += "{";
        append_u64(out, "shard", sh.shard);
        out += ",";
        append_u64(out, "events", sh.events);
        out += ",";
        append_u64(out, "cross_sent", sh.cross_sent);
        out += ",";
        append_u64(out, "cross_received", sh.cross_received);
        out += ",";
        append_u64(out, "cross_late", sh.cross_late);
        out += ",";
        append_u64(out, "mailbox_peak", sh.mailbox_peak);
        out += ",";
        append_i64(out, "max_skew_ns", sh.max_skew_ns);
        out += ",";
        append_u64(out, "busy_quanta", sh.busy_quanta);
        out += ",";
        append_u64(out, "max_events_quantum", sh.max_events_quantum);
        if (include_timing) {
            out += ",";
            append_u64(out, "dispatch_ns", sh.dispatch_ns);
            out += ",";
            append_u64(out, "flush_ns", sh.flush_ns);
        }
        out += "}";
    }
    out += "]";
    if (!per_cell.empty()) {
        out += ",\"per_cell\":[";
        for (std::size_t i = 0; i < per_cell.size(); ++i) {
            const CellHealth& c = per_cell[i];
            if (i > 0) out += ",";
            out += "{";
            append_u64(out, "cell", c.cell);
            out += ",";
            append_u64(out, "shard", c.shard);
            out += ",";
            append_u64(out, "arrivals", c.arrivals);
            out += ",";
            append_u64(out, "departures", c.departures);
            out += ",";
            append_u64(out, "rejected", c.rejected);
            out += ",";
            append_u64(out, "deferred", c.deferred);
            out += ",";
            append_u64(out, "degraded", c.degraded);
            out += ",";
            append_u64(out, "faults_injected", c.faults_injected);
            out += ",";
            append_u64(out, "faults_missed", c.faults_missed);
            out += ",";
            append_u64(out, "peak_association", c.peak_association);
            out += "}";
        }
        out += "]";
    }
    if (has_population) {
        out += ",\"population\":{";
        append_u64(out, "population", population);
        out += ",";
        append_u64(out, "bursts_admitted", bursts_admitted);
        out += ",";
        append_u64(out, "bursts_completed", bursts_completed);
        out += ",";
        append_u64(out, "bursts_shed", bursts_shed);
        out += ",\"conserved\":";
        out += conserved ? "true" : "false";
        out += ",";
        append_u64(out, "fingerprint_hi", fingerprint >> 32);
        out += ",";
        append_u64(out, "fingerprint_lo", fingerprint & 0xffffffffULL);
        out += "}";
    }
    if (has_watchdog) {
        out += ",\"watchdog\":{";
        append_u64(out, "checks", watchdog_checks);
        out += ",";
        append_u64(out, "sweeps", watchdog_sweeps);
        out += ",";
        append_u64(out, "violations", watchdog_reports.size());
        out += ",\"reports\":[";
        for (std::size_t i = 0; i < watchdog_reports.size(); ++i) {
            if (i > 0) out += ",";
            out += obs::to_json(watchdog_reports[i]);
        }
        out += "]}";
    }
    if (include_timing) {
        // Workers is reported here, not in the deterministic body: the
        // same simulation at a different thread count must produce
        // byte-identical default JSON.
        out += ",\"timing\":{";
        append_u64(out, "workers", workers);
        out += ",";
        append_u64(out, "barrier_wait_ns", barrier_wait_ns);
        out += ",";
        append_u64(out, "dispatch_ns", dispatch_ns);
        out += ",";
        append_u64(out, "flush_ns", flush_ns);
        out += ",";
        append_num(out, "imbalance_index_ns", imbalance_index_ns);
        out += ",";
        append_num(out, "barrier_overhead", barrier_overhead());
        out += "}";
    }
    out += "}";
    return out;
}

void HealthReport::write_file(const std::string& path, bool include_timing) const {
    std::ofstream out(path, std::ios::trunc);
    WLANPS_REQUIRE_MSG(static_cast<bool>(out),
                       "cannot open health report file: " + path);
    out << to_json(include_timing) << "\n";
}

void HealthReport::export_stream(MetricsStreamWriter& writer) const {
    writer.summary("health.quanta", static_cast<double>(quanta));
    writer.summary("health.idle_jumps", static_cast<double>(idle_jumps));
    writer.summary("health.events", static_cast<double>(events));
    writer.summary("health.imbalance_index", imbalance_index);
    writer.summary("health.watchdog_violations",
                   static_cast<double>(watchdog_reports.size()));
    for (const ShardHealth& sh : per_shard) {
        const std::string prefix = "health.shard" + std::to_string(sh.shard);
        writer.summary(prefix + ".events", static_cast<double>(sh.events));
        writer.summary(prefix + ".mailbox_peak", static_cast<double>(sh.mailbox_peak));
    }
}

}  // namespace wlanps::obs
