#pragma once
/// \file energy_ledger.hpp
/// Per-client, per-cause energy attribution.
///
/// Every joule of Wnic residency is charged to a (client, cause) pair as
/// the radio moves through its day: idle listening, beacon wakes, burst
/// reception, retransmissions, mode switches, and transmission.  The
/// charging scheme is exact by construction — the Wnic base samples its
/// own energy integral at each cause boundary and charges the delta to
/// the *outgoing* cause, so the ledger telescopes to the aggregate
/// energy_consumed() total (tests assert agreement within 1e-9 J).
///
/// Std-only (no sim dependency): the ledger lives in the wlanps_obs core
/// and is driven by the phy layer through plain pointer checks, so
/// attribution works in every build, not just WLANPS_OBS=ON.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wlanps::obs {

/// Why a span of radio energy was spent.  The taxonomy follows the
/// paper's decomposition of WNIC on-time: most energy goes to listening,
/// the rest to the transfer machinery around it.
enum class EnergyCause : std::uint8_t {
    idle_listen,     ///< powered and listening with nothing to receive
    beacon_wake,     ///< PSM wake to catch a TIM beacon
    burst_rx,        ///< receiving scheduled burst payload
    retransmission,  ///< re-receiving after a corrupted chunk
    mode_switch,     ///< doze/off <-> awake transition overhead
    tx,              ///< transmitting (ACKs, PS-Polls, uplink)
    nav_sleep,       ///< μNap micro-sleep inside a NAV/backoff idle slot
};

inline constexpr std::size_t kEnergyCauseCount = 7;

[[nodiscard]] const char* to_string(EnergyCause cause);

/// The attribution ledger: joules per (client, cause).
class EnergyLedger {
public:
    using CauseArray = std::array<double, kEnergyCauseCount>;

    /// Add \p joules to (client, cause).  Charging zero is a no-op that
    /// still creates the client row (keeps rows deterministic).
    void charge(std::uint32_t client, EnergyCause cause, double joules);

    [[nodiscard]] double charged(std::uint32_t client, EnergyCause cause) const;
    [[nodiscard]] double client_total(std::uint32_t client) const;
    [[nodiscard]] double cause_total(EnergyCause cause) const;
    /// Sum over every (client, cause) — reconciles against aggregate
    /// Wnic::energy_consumed() totals.
    [[nodiscard]] double total() const;

    /// Client ids with a row, ascending.
    [[nodiscard]] std::vector<std::uint32_t> clients() const;

    void clear() { accounts_.clear(); }

    /// Deterministic JSON object:
    ///   {"total_j":T,"causes":{"idle_listen":..,...},
    ///    "clients":{"1":{"total_j":..,"idle_listen":..,...},...}}
    /// All six causes are always emitted; clients ascend by id.
    [[nodiscard]] std::string to_json() const;

private:
    std::map<std::uint32_t, CauseArray> accounts_;
};

/// The ledger the phy layer charges into, or nullptr when attribution is
/// off.  Thread-local, like obs::current().
[[nodiscard]] EnergyLedger* current_ledger() noexcept;

/// RAII scope installing \p ledger as the thread's energy ledger;
/// restores the previous one (scopes nest) on destruction.
class ScopedEnergyLedger {
public:
    explicit ScopedEnergyLedger(EnergyLedger& ledger);
    ~ScopedEnergyLedger();
    ScopedEnergyLedger(const ScopedEnergyLedger&) = delete;
    ScopedEnergyLedger& operator=(const ScopedEnergyLedger&) = delete;

private:
    EnergyLedger* previous_;
};

}  // namespace wlanps::obs
