#pragma once
/// \file kernel_profile.hpp
/// Event-kernel profiling sink.  A KernelProfile attached to a Simulator
/// (Simulator::attach_profile, WLANPS_OBS builds only) receives one call
/// per dispatched event with the callback tag and wall-clock dispatch
/// latency, plus calendar-queue maintenance signals, and folds them into a
/// MetricsRegistry under stable "sim.kernel.*" keys.
///
/// Overhead contract: with observability compiled in but NO profile
/// attached, the kernel pays one predicted-not-taken branch per dispatch —
/// that is the <5% budget scripts/check_perf.sh gates.  The steady_clock
/// reads happen only on this attached path.

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace wlanps::obs {

/// Which Simulator dispatch path fired the event.
enum class DispatchTag : std::uint8_t { fast = 0, handle = 1, periodic = 2 };

class KernelProfile {
public:
    /// Record into \p registry (must outlive this profile).
    explicit KernelProfile(MetricsRegistry& registry)
        : registry_(&registry),
          dispatched_{&registry.counter("sim.kernel.dispatched.fast"),
                      &registry.counter("sim.kernel.dispatched.handle"),
                      &registry.counter("sim.kernel.dispatched.periodic")},
          dispatch_ns_{&registry.histogram("sim.kernel.dispatch_ns.fast"),
                       &registry.histogram("sim.kernel.dispatch_ns.handle"),
                       &registry.histogram("sim.kernel.dispatch_ns.periodic")},
          cancelled_reaped_(&registry.counter("sim.kernel.cancelled_reaped")),
          bucket_occupancy_(&registry.histogram("sim.kernel.bucket_occupancy")) {}

    /// Monotonic wall-clock nanoseconds, for latency deltas.
    [[nodiscard]] static std::uint64_t clock_ns() {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /// One event dispatched on path \p tag, callback took \p latency_ns.
    void on_dispatch(DispatchTag tag, std::uint64_t latency_ns) {
        const auto i = static_cast<std::size_t>(tag);
        dispatched_[i]->add(1);
        dispatch_ns_[i]->record(static_cast<double>(latency_ns));
    }

    /// A cancelled (tombstoned) entry was reaped without dispatching.
    void on_cancelled_reaped() { cancelled_reaped_->add(1); }

    /// A calendar-queue bucket of \p entries events was lazily sorted.
    void on_bucket_sorted(std::size_t entries) {
        bucket_occupancy_->record(static_cast<double>(entries));
    }

    /// Publish end-of-run queue state under unambiguous names: the raw
    /// queue size *includes* cancelled tombstones awaiting reap, the live
    /// count does not — dashboards must not conflate the two (callers pass
    /// Simulator::queue_size(), ::pending_events(), ::events_dispatched()).
    void publish_queue_state(std::size_t queue_size_incl_tombstones,
                             std::size_t pending_live,
                             std::uint64_t events_dispatched) {
        registry_->gauge("sim.queue.entries_incl_tombstones")
            .set(static_cast<double>(queue_size_incl_tombstones));
        registry_->gauge("sim.queue.pending_live")
            .set(static_cast<double>(pending_live));
        registry_->counter("sim.kernel.events_dispatched").add(events_dispatched);
    }

    [[nodiscard]] MetricsRegistry& registry() { return *registry_; }

private:
    MetricsRegistry* registry_;
    Counter* dispatched_[3];
    Histogram* dispatch_ns_[3];
    Counter* cancelled_reaped_;
    Histogram* bucket_occupancy_;
};

}  // namespace wlanps::obs
