#include "obs/hooks.hpp"

#include <iostream>
#include <mutex>
#include <utility>

namespace wlanps::obs {

namespace {

thread_local MetricsRegistry* t_current = nullptr;

std::mutex& log_mutex() {
    static std::mutex m;
    return m;
}

LogSink& sink_ref() {
    static LogSink sink;
    return sink;
}

}  // namespace

MetricsRegistry* current() noexcept { return t_current; }

ScopedRegistry::ScopedRegistry(MetricsRegistry& registry) : previous_(t_current) {
    t_current = &registry;
}

ScopedRegistry::~ScopedRegistry() { t_current = previous_; }

void log_write(std::string_view line) {
    std::lock_guard<std::mutex> lock(log_mutex());
    if (sink_ref()) {
        sink_ref()(line);
        return;
    }
    std::clog.write(line.data(), static_cast<std::streamsize>(line.size()));
}

void set_log_sink(LogSink sink) {
    std::lock_guard<std::mutex> lock(log_mutex());
    sink_ref() = std::move(sink);
}

}  // namespace wlanps::obs
