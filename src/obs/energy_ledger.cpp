#include "obs/energy_ledger.hpp"

#include <cstdio>

namespace wlanps::obs {

namespace {

thread_local EnergyLedger* t_ledger = nullptr;

void append_number(std::string& out, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    out += buf;
}

}  // namespace

const char* to_string(EnergyCause cause) {
    switch (cause) {
        case EnergyCause::idle_listen: return "idle_listen";
        case EnergyCause::beacon_wake: return "beacon_wake";
        case EnergyCause::burst_rx: return "burst_rx";
        case EnergyCause::retransmission: return "retransmission";
        case EnergyCause::mode_switch: return "mode_switch";
        case EnergyCause::tx: return "tx";
        case EnergyCause::nav_sleep: return "nav_sleep";
    }
    return "?";
}

void EnergyLedger::charge(std::uint32_t client, EnergyCause cause, double joules) {
    CauseArray& row = accounts_[client];  // value-initialised to zeros on insert
    row[static_cast<std::size_t>(cause)] += joules;
}

double EnergyLedger::charged(std::uint32_t client, EnergyCause cause) const {
    auto it = accounts_.find(client);
    if (it == accounts_.end()) return 0.0;
    return it->second[static_cast<std::size_t>(cause)];
}

double EnergyLedger::client_total(std::uint32_t client) const {
    auto it = accounts_.find(client);
    if (it == accounts_.end()) return 0.0;
    double sum = 0.0;
    for (double j : it->second) sum += j;
    return sum;
}

double EnergyLedger::cause_total(EnergyCause cause) const {
    double sum = 0.0;
    for (const auto& [client, row] : accounts_) {
        (void)client;
        sum += row[static_cast<std::size_t>(cause)];
    }
    return sum;
}

double EnergyLedger::total() const {
    double sum = 0.0;
    for (const auto& [client, row] : accounts_) {
        (void)client;
        for (double j : row) sum += j;
    }
    return sum;
}

std::vector<std::uint32_t> EnergyLedger::clients() const {
    std::vector<std::uint32_t> out;
    out.reserve(accounts_.size());
    for (const auto& [client, row] : accounts_) {
        (void)row;
        out.push_back(client);
    }
    return out;
}

std::string EnergyLedger::to_json() const {
    std::string out = "{\"total_j\":";
    append_number(out, total());
    out += ",\"causes\":{";
    for (std::size_t c = 0; c < kEnergyCauseCount; ++c) {
        if (c != 0) out += ',';
        out += '"';
        out += to_string(static_cast<EnergyCause>(c));
        out += "\":";
        append_number(out, cause_total(static_cast<EnergyCause>(c)));
    }
    out += "},\"clients\":{";
    bool first = true;
    for (const auto& [client, row] : accounts_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += std::to_string(client);
        out += "\":{\"total_j\":";
        double sum = 0.0;
        for (double j : row) sum += j;
        append_number(out, sum);
        for (std::size_t c = 0; c < kEnergyCauseCount; ++c) {
            out += ",\"";
            out += to_string(static_cast<EnergyCause>(c));
            out += "\":";
            append_number(out, row[c]);
        }
        out += '}';
    }
    out += "}}";
    return out;
}

EnergyLedger* current_ledger() noexcept { return t_ledger; }

ScopedEnergyLedger::ScopedEnergyLedger(EnergyLedger& ledger) : previous_(t_ledger) {
    t_ledger = &ledger;
}

ScopedEnergyLedger::~ScopedEnergyLedger() { t_ledger = previous_; }

}  // namespace wlanps::obs
