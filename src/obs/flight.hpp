#pragma once
/// \file flight.hpp
/// Causal tracing: flow-stamped trace contexts, the per-hop flight-recorder
/// ring buffer, and the fault post-mortem dumper.
///
/// The core scheduler stamps every downstream burst with a flow id
/// (TraceContext) that propagates through net -> mac -> phy -> channel.
/// Each layer records its hop (enqueued, scheduled, polled, tx, retx, rx,
/// dozing-wakeup) into the thread-local FlightRecorder: a fixed-capacity,
/// overwrite-oldest ring with zero allocation on the hot path.  The
/// recording macro at the bottom compiles out entirely unless the build
/// sets WLANPS_OBS_ENABLED (cmake -DWLANPS_OBS=ON); the classes themselves
/// are always available so tests and exporters work in any build.
///
/// Everything here is std-only (no sim dependency): timestamps travel as
/// raw nanoseconds so the recorder can live in the wlanps_obs core.

#include <cstdint>
#include <string>
#include <vector>

namespace wlanps::obs {

/// Causal identity of one scheduled transfer, stamped at the core
/// scheduler and carried down the stack.  flow 0 means "unstamped".
struct TraceContext {
    std::uint64_t flow = 0;
    std::uint32_t client = 0;
};

/// Where in the stack a flight event was recorded.
enum class Hop : std::uint8_t {
    enqueued,     ///< core: burst planned into the interface queue
    scheduled,    ///< core: burst dispatched to the client
    polled,       ///< mac: PS-Poll sent to retrieve buffered traffic
    tx,           ///< phy/channel: radio transmitting (value = airtime ns)
    retx,         ///< channel/net: retransmission (value = retry count)
    rx,           ///< phy/channel: radio receiving (value = airtime ns)
    doze_wakeup,  ///< phy: wake from doze/off (value = latency ns)
    fault,        ///< fault: injector fired (value = fault kind index)
};

[[nodiscard]] const char* to_string(Hop hop);

/// Interface tag for a flight event (obs is std-only, so it cannot see
/// phy::Interface; callers map to these).
inline constexpr std::uint8_t kFlightItfWlan = 0;
inline constexpr std::uint8_t kFlightItfBt = 1;
inline constexpr std::uint8_t kFlightItfNone = 2;

/// One recorded hop.  POD: the ring stores these by value, no allocation.
struct FlightEvent {
    std::int64_t t_ns = 0;
    std::uint64_t flow = 0;
    double value = 0.0;
    std::uint32_t client = 0;
    Hop hop = Hop::enqueued;
    std::uint8_t itf = kFlightItfNone;
};

/// Bounded flight recorder: fixed capacity, overwrite-oldest, count
/// monotone.  record() is noexcept and allocation-free (the ring is
/// preallocated at construction).
class FlightRecorder {
public:
    explicit FlightRecorder(std::size_t capacity = 1024);

    void record(const FlightEvent& event) noexcept;

    [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
    /// Events currently held: min(total(), capacity()).
    [[nodiscard]] std::size_t size() const;
    /// Events ever recorded (monotone; never decreases on overwrite).
    [[nodiscard]] std::uint64_t total() const { return total_; }
    /// Events lost to overwrite-oldest.
    [[nodiscard]] std::uint64_t dropped() const { return total_ - size(); }

    /// i-th surviving event, oldest first (0 <= i < size()).
    [[nodiscard]] const FlightEvent& at(std::size_t i) const;
    /// All surviving events, oldest first.
    [[nodiscard]] std::vector<FlightEvent> events() const;

    void clear();

    /// Deterministic JSON dump of the last \p last_n surviving events
    /// (0 = all), oldest first:
    ///   {"capacity":N,"total":M,"dropped":D,"events":[{...},...]}
    [[nodiscard]] std::string dump_json(std::size_t last_n = 0) const;

private:
    std::vector<FlightEvent> ring_;
    std::uint64_t total_ = 0;
};

/// The recorder WLANPS_OBS_FLIGHT records into, or nullptr when no scope
/// is active.  Thread-local, like obs::current().
[[nodiscard]] FlightRecorder* current_flight() noexcept;

/// RAII scope installing \p recorder as the thread's flight recorder;
/// restores the previous one (scopes nest) on destruction.
class ScopedFlightRecorder {
public:
    explicit ScopedFlightRecorder(FlightRecorder& recorder);
    ~ScopedFlightRecorder();
    ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
    ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

private:
    FlightRecorder* previous_;
};

/// Post-mortem dump policy: when a fault's time-to-recover exceeds the
/// threshold, the last-N ring events are dumped as deterministic JSON
/// named "<path_prefix>.c<client>.<n>.flight.json".
struct PostMortemConfig {
    double threshold_s = 1.0;
    std::string path_prefix = "postmortem";
    std::size_t last_n = 256;  ///< events per dump (0 = whole ring)
    std::size_t max_dumps = 8;
};

/// Watches recovery reports and dumps the flight recorder for offline
/// diagnosis of slow recoveries.
class PostMortem {
public:
    PostMortem(const FlightRecorder& recorder, PostMortemConfig config);

    /// Called by the resilience layer when a client recovers; dumps when
    /// \p time_to_recover_s exceeds the threshold (up to max_dumps).
    void on_recovery(double time_to_recover_s, std::uint32_t client);

    [[nodiscard]] std::uint64_t dumps() const { return dumps_; }
    [[nodiscard]] const std::vector<std::string>& files() const { return files_; }

private:
    const FlightRecorder& recorder_;
    PostMortemConfig config_;
    std::uint64_t dumps_ = 0;
    std::vector<std::string> files_;
};

/// The post-mortem hook the resilience layer notifies, or nullptr.
[[nodiscard]] PostMortem* current_postmortem() noexcept;

/// RAII scope installing \p pm as the thread's post-mortem hook.
class ScopedPostMortem {
public:
    explicit ScopedPostMortem(PostMortem& pm);
    ~ScopedPostMortem();
    ScopedPostMortem(const ScopedPostMortem&) = delete;
    ScopedPostMortem& operator=(const ScopedPostMortem&) = delete;

private:
    PostMortem* previous_;
};

}  // namespace wlanps::obs

// ---------------------------------------------------------------------------
// Hot-path recording macro: vanishes entirely (arguments unevaluated) when
// observability is compiled out, mirroring WLANPS_OBS_COUNT.
// ---------------------------------------------------------------------------
#if defined(WLANPS_OBS_ENABLED)

/// Record one hop into the current flight recorder, if any.  `hop` is a
/// bare Hop enumerator name (rx, retx, scheduled, ...).
#define WLANPS_OBS_FLIGHT(t_ns, hop, flow, client, itf, value)                  \
    do {                                                                        \
        if (::wlanps::obs::FlightRecorder* wlanps_obs_fr_ =                     \
                ::wlanps::obs::current_flight()) {                              \
            wlanps_obs_fr_->record(::wlanps::obs::FlightEvent{                  \
                static_cast<std::int64_t>(t_ns),                                \
                static_cast<std::uint64_t>(flow),                               \
                static_cast<double>(value),                                     \
                static_cast<std::uint32_t>(client),                             \
                ::wlanps::obs::Hop::hop,                                        \
                static_cast<std::uint8_t>(itf)});                               \
        }                                                                       \
    } while (0)

#else

#define WLANPS_OBS_FLIGHT(t_ns, hop, flow, client, itf, value) ((void)0)

#endif  // WLANPS_OBS_ENABLED
