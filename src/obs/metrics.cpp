#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace wlanps::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::bucket_index(double x) {
    int exp = 0;
    const double frac = std::frexp(x, &exp);  // frac in [0.5, 1), x = frac * 2^exp
    if (exp < kMinExp) return 0;
    if (exp >= kMaxExp) return kBuckets - 1;
    // Linear sub-division of [0.5, 1): sub in [0, kSubBuckets).
    auto sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    return static_cast<std::size_t>(exp - kMinExp) * kSubBuckets +
           static_cast<std::size_t>(sub);
}

double Histogram::bucket_lower(std::size_t i) {
    WLANPS_REQUIRE(i < kBuckets);
    const int exp = kMinExp + static_cast<int>(i / kSubBuckets);
    const auto sub = static_cast<double>(i % kSubBuckets);
    return std::ldexp(0.5 + sub * (0.5 / kSubBuckets), exp);
}

double Histogram::bucket_upper(std::size_t i) {
    WLANPS_REQUIRE(i < kBuckets);
    const int exp = kMinExp + static_cast<int>(i / kSubBuckets);
    const auto sub = static_cast<double>(i % kSubBuckets) + 1.0;
    return std::ldexp(0.5 + sub * (0.5 / kSubBuckets), exp);
}

void Histogram::record(double x) {
    if (std::isnan(x)) return;
    if (x <= 0.0) {
        ++underflow_;
    } else {
        ++counts_[bucket_index(x)];
    }
    ++count_;
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
}

double Histogram::percentile(double p) const {
    WLANPS_REQUIRE_MSG(p >= 0.0 && p <= 100.0, "percentile p outside [0, 100]");
    if (count_ == 0) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(count_);
    double cumulative = static_cast<double>(underflow_);
    if (cumulative >= rank && underflow_ > 0) return min_;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (counts_[i] == 0) continue;
        const auto in_bucket = static_cast<double>(counts_[i]);
        if (cumulative + in_bucket >= rank) {
            const double fraction = std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
            const double lo = bucket_lower(i);
            const double hi = bucket_upper(i);
            return std::clamp(lo + (hi - lo) * fraction, min_, max_);
        }
        cumulative += in_bucket;
    }
    return max_;
}

void Histogram::merge_from(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
        if (other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
    }
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

const char* to_string(InstrumentKind kind) {
    switch (kind) {
        case InstrumentKind::counter: return "counter";
        case InstrumentKind::gauge: return "gauge";
        case InstrumentKind::histogram: return "histogram";
    }
    return "?";
}

void MetricsSnapshot::add(std::string key, Value value) {
    entries_.push_back(Entry{std::move(key), std::move(value)});
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
    for (const Entry& theirs : other.entries_) {
        auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) { return e.key == theirs.key; });
        if (it == entries_.end()) {
            entries_.push_back(theirs);
            continue;
        }
        WLANPS_REQUIRE_MSG(it->kind() == theirs.kind(),
                           "metrics snapshot merge: key registered as two kinds");
        std::visit(
            [&](auto& mine) {
                using T = std::decay_t<decltype(mine)>;
                mine.merge_from(std::get<T>(theirs.value));
            },
            it->value);
    }
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(std::string_view key) const {
    for (const Entry& e : entries_) {
        if (e.key == key) return &e;
    }
    return nullptr;
}

const Counter* MetricsSnapshot::counter(std::string_view key) const {
    const Entry* e = find(key);
    return e != nullptr ? std::get_if<Counter>(&e->value) : nullptr;
}

const Gauge* MetricsSnapshot::gauge(std::string_view key) const {
    const Entry* e = find(key);
    return e != nullptr ? std::get_if<Gauge>(&e->value) : nullptr;
}

const Histogram* MetricsSnapshot::histogram(std::string_view key) const {
    const Entry* e = find(key);
    return e != nullptr ? std::get_if<Histogram>(&e->value) : nullptr;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Slot& MetricsRegistry::resolve(std::string_view key, InstrumentKind kind) {
    auto it = by_key_.find(std::string(key));
    if (it != by_key_.end()) {
        Slot& slot = order_[it->second];
        WLANPS_REQUIRE_MSG(slot.kind == kind,
                           "metrics key already registered as a different kind");
        return slot;
    }
    std::size_t index = 0;
    switch (kind) {
        case InstrumentKind::counter:
            index = counters_.size();
            counters_.emplace_back();
            break;
        case InstrumentKind::gauge:
            index = gauges_.size();
            gauges_.emplace_back();
            break;
        case InstrumentKind::histogram:
            index = histograms_.size();
            histograms_.emplace_back();
            break;
    }
    order_.push_back(Slot{std::string(key), kind, index});
    by_key_.emplace(std::string(key), order_.size() - 1);
    return order_.back();
}

Counter& MetricsRegistry::counter(std::string_view key) {
    return counters_[resolve(key, InstrumentKind::counter).index];
}

Gauge& MetricsRegistry::gauge(std::string_view key) {
    return gauges_[resolve(key, InstrumentKind::gauge).index];
}

Histogram& MetricsRegistry::histogram(std::string_view key) {
    return histograms_[resolve(key, InstrumentKind::histogram).index];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot out;
    for (const Slot& slot : order_) {
        switch (slot.kind) {
            case InstrumentKind::counter:
                out.add(slot.key, counters_[slot.index]);
                break;
            case InstrumentKind::gauge:
                out.add(slot.key, gauges_[slot.index]);
                break;
            case InstrumentKind::histogram:
                out.add(slot.key, histograms_[slot.index]);
                break;
        }
    }
    return out;
}

}  // namespace wlanps::obs
