#pragma once
/// \file hooks.hpp
/// Low-overhead instrumentation hooks: the thread-local "current registry"
/// that deep components record into without constructor plumbing, and the
/// WLANPS_OBS_* macro layer that compiles to nothing unless the build sets
/// WLANPS_OBS_ENABLED (cmake -DWLANPS_OBS=ON).
///
/// Also home of the synchronized log sink (obs::log_write) that Logger and
/// any other line-oriented output funnel through — one write per line under
/// one mutex, so concurrent ExperimentRunner workers cannot tear lines.

#include <functional>
#include <string_view>

#include "obs/metrics.hpp"

namespace wlanps::obs {

/// The registry instrumentation macros record into, or nullptr when no
/// scope is active.  Thread-local: each ExperimentRunner worker scopes its
/// own registry, so runs never share instruments.
[[nodiscard]] MetricsRegistry* current() noexcept;

/// RAII scope installing \p registry as the thread's current registry;
/// restores the previous one (scopes nest) on destruction.
class ScopedRegistry {
public:
    explicit ScopedRegistry(MetricsRegistry& registry);
    ~ScopedRegistry();
    ScopedRegistry(const ScopedRegistry&) = delete;
    ScopedRegistry& operator=(const ScopedRegistry&) = delete;

private:
    MetricsRegistry* previous_;
};

/// Emit one complete line (terminator included by the caller) with a single
/// synchronized write.  Goes to the installed sink, or std::clog when none.
void log_write(std::string_view line);

/// Replace the log sink (empty function restores std::clog).  The sink is
/// invoked under the log mutex — keep it cheap and non-reentrant.
using LogSink = std::function<void(std::string_view)>;
void set_log_sink(LogSink sink);

}  // namespace wlanps::obs

// ---------------------------------------------------------------------------
// Macro layer: statements that vanish entirely (arguments unevaluated) when
// observability is compiled out.
// ---------------------------------------------------------------------------
#if defined(WLANPS_OBS_ENABLED)

/// Bump counter `key` by `delta` in the current registry, if any.
#define WLANPS_OBS_COUNT(key, delta)                                            \
    do {                                                                        \
        if (::wlanps::obs::MetricsRegistry* wlanps_obs_reg_ =                   \
                ::wlanps::obs::current()) {                                     \
            wlanps_obs_reg_->counter(key).add(                                  \
                static_cast<std::uint64_t>(delta));                             \
        }                                                                       \
    } while (0)

/// Set gauge `key` to `value` in the current registry, if any.
#define WLANPS_OBS_GAUGE_SET(key, value)                                        \
    do {                                                                        \
        if (::wlanps::obs::MetricsRegistry* wlanps_obs_reg_ =                   \
                ::wlanps::obs::current()) {                                     \
            wlanps_obs_reg_->gauge(key).set(static_cast<double>(value));        \
        }                                                                       \
    } while (0)

/// Record `value` into histogram `key` in the current registry, if any.
#define WLANPS_OBS_RECORD(key, value)                                           \
    do {                                                                        \
        if (::wlanps::obs::MetricsRegistry* wlanps_obs_reg_ =                   \
                ::wlanps::obs::current()) {                                     \
            wlanps_obs_reg_->histogram(key).record(static_cast<double>(value)); \
        }                                                                       \
    } while (0)

#else

#define WLANPS_OBS_COUNT(key, delta) ((void)0)
#define WLANPS_OBS_GAUGE_SET(key, value) ((void)0)
#define WLANPS_OBS_RECORD(key, value) ((void)0)

#endif  // WLANPS_OBS_ENABLED
