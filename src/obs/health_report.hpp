#pragma once
/// \file health_report.hpp
/// Kernel health rollup: per-shard → per-cell → run-level summary of the
/// barrier-quantum execution, the federation population, and the watchdog.
///
/// A HealthReport is the flat answer to "how did the parallel run behave"
/// — shard load and imbalance, mailbox pressure, idle jumps, invariant
/// violations — exported three ways: deterministic JSON
/// (hotspot_cli --obs-health FILE), WPSM summary frames riding the
/// federation metrics stream (decoded by scripts/bench_diff.py as
/// summary.health.*), and in-memory for the bench harness to lift into
/// BENCH_*.json counters.
///
/// Determinism: to_json(false) — the default export — contains only
/// fields that are bit-identical across worker-thread counts on
/// strict-barrier runs (event counts, mailbox peaks, watchdog state).
/// to_json(true) appends the wall-clock "timing" section (barrier wait,
/// dispatch/flush attribution, time-based imbalance); CI determinism
/// gates must not compare that section.
///
/// The struct is std-only; the builders live with the data they read
/// (ShardedSimulator::fill_health, Federation::run).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/watchdog.hpp"

namespace wlanps::obs {

class MetricsStreamWriter;

/// One shard's rollup.  Event counts are deterministic; the _ns fields
/// are wall clock and stay zero unless telemetry ran in an
/// WLANPS_OBS_ENABLED build.
struct ShardHealth {
    std::uint32_t shard = 0;
    std::uint64_t events = 0;
    std::uint64_t cross_sent = 0;
    std::uint64_t cross_received = 0;
    std::uint64_t cross_late = 0;
    std::uint64_t mailbox_peak = 0;
    std::int64_t max_skew_ns = 0;
    std::uint64_t busy_quanta = 0;
    std::uint64_t max_events_quantum = 0;
    std::uint64_t dispatch_ns = 0;  ///< timing section only
    std::uint64_t flush_ns = 0;     ///< timing section only
};

/// One federation cell's rollup (cells map onto shards ap % shards).
struct CellHealth {
    std::uint32_t cell = 0;
    std::uint32_t shard = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deferred = 0;
    std::uint64_t degraded = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t faults_missed = 0;
    std::uint64_t peak_association = 0;
};

/// The full rollup for one run.
struct HealthReport {
    std::string scope;   ///< "sharded-hotspot" | "federation" | run label
    std::string policy;  ///< kernel sync policy ("strict-barrier" | "lax-window")
    std::uint64_t shards = 0;
    /// Resolved worker threads (0 = inline).  Reported in the timing
    /// section only: the deterministic JSON body must be byte-identical
    /// across thread counts.
    std::uint64_t workers = 0;
    std::uint64_t quanta = 0;
    std::uint64_t idle_jumps = 0;
    std::uint64_t events = 0;  ///< total dispatched across shards
    /// Load-imbalance index (max/mean events per quantum when telemetry
    /// ran; whole-run max/mean shard events otherwise).  1.0 = balanced.
    double imbalance_index = 0.0;
    /// Skew-histogram summary over busy quanta (telemetry builds only).
    std::uint64_t skew_count = 0;
    double skew_mean = 0.0;
    double skew_max = 0.0;

    std::vector<ShardHealth> per_shard;
    std::vector<CellHealth> per_cell;  ///< federation runs only

    // Federation population section (has_population gates it).
    bool has_population = false;
    std::uint64_t population = 0;
    std::uint64_t bursts_admitted = 0;
    std::uint64_t bursts_completed = 0;
    std::uint64_t bursts_shed = 0;
    bool conserved = true;
    std::uint64_t fingerprint = 0;

    // Watchdog section (has_watchdog gates it).
    bool has_watchdog = false;
    std::uint64_t watchdog_checks = 0;
    std::uint64_t watchdog_sweeps = 0;
    std::vector<WatchdogReport> watchdog_reports;

    // Timing section — wall clock, excluded from to_json(false).
    std::uint64_t barrier_wait_ns = 0;   ///< summed over workers and quanta
    std::uint64_t dispatch_ns = 0;       ///< summed over shards
    std::uint64_t flush_ns = 0;          ///< summed over shards
    double imbalance_index_ns = 0.0;
    /// barrier_wait / (barrier_wait + dispatch); 0 when neither measured.
    [[nodiscard]] double barrier_overhead() const;

    /// Copy a watchdog's state into the watchdog section.
    void set_watchdog(const Watchdog& watchdog);

    /// Deterministic flat JSON; \p include_timing appends the wall-clock
    /// section (see the file comment for the determinism contract).
    [[nodiscard]] std::string to_json(bool include_timing = false) const;

    /// Write to_json(include_timing) + newline to \p path; throws
    /// ContractViolation when the file cannot be opened.
    void write_file(const std::string& path, bool include_timing = false) const;

    /// Append the deterministic scalars as WPSM summary frames
    /// (health.quanta, health.idle_jumps, health.events,
    /// health.imbalance_index, health.watchdog_violations, and per shard
    /// health.shard<i>.events / .mailbox_peak).
    void export_stream(MetricsStreamWriter& writer) const;
};

}  // namespace wlanps::obs
