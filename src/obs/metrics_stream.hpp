#pragma once
/// \file metrics_stream.hpp
/// Streaming binary metrics export for population-scale runs.
///
/// The per-client JSON ledger and Chrome traces are the right tool for
/// three IPAQ clients; at 10⁴–10⁶ federation clients they are gigabytes
/// of text nobody can load.  This is their population-scale replacement:
/// a tiny framed little-endian binary format ("WPSM") that a run appends
/// to incrementally — time-series samples at a coarse cadence while the
/// simulation advances, then a summary block and stride-sampled
/// per-client records at teardown.  scripts/bench_diff.py decodes it back
/// into flat numeric keys so the informational CI bench-diff keeps
/// working on federation runs.
///
/// Layout: magic "WPSM", u32 version, then frames of
///   u8 type, u32 payload_len, payload
/// with types
///   0 series-def: u32 series_id, u16 name_len, name
///   1 sample:     u32 series_id, i64 t_ns, f64 value
///   2 summary:    u16 key_len, key, f64 value
///   3 client:     u32 client_id, f32 energy_j, f32 qos,
///                 u32 bursts_completed, u32 bursts_shed
/// All integers little-endian; the writer is single-threaded (call it
/// from the owning thread only, between run_until() chunks).

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace wlanps::obs {

inline constexpr char kMetricsStreamMagic[4] = {'W', 'P', 'S', 'M'};
inline constexpr std::uint32_t kMetricsStreamVersion = 1;

/// Appends WPSM frames to a file.  Not thread-safe.
class MetricsStreamWriter {
public:
    /// Opens (truncates) \p path and writes the header.  Throws
    /// ContractViolation if the file cannot be opened.
    explicit MetricsStreamWriter(const std::string& path);

    /// Register a named time series; returns its id for sample().
    [[nodiscard]] std::uint32_t define_series(const std::string& name);

    /// One time-series point.
    void sample(std::uint32_t series_id, std::int64_t t_ns, double value);

    /// One end-of-run summary scalar.
    void summary(const std::string& key, double value);

    /// One stride-sampled per-client record.
    void client(std::uint32_t client_id, float energy_j, float qos,
                std::uint32_t bursts_completed, std::uint32_t bursts_shed);

    /// Flush buffered frames to disk (also done on destruction).
    void flush();

private:
    void frame(std::uint8_t type, const std::vector<std::uint8_t>& payload);

    std::ofstream out_;
    std::uint32_t next_series_ = 0;
};

/// In-memory decode of a WPSM file (tests and small offline tooling; the
/// CI path decodes in python, see scripts/bench_diff.py).
struct MetricsStreamContents {
    struct Sample {
        std::uint32_t series = 0;
        std::int64_t t_ns = 0;
        double value = 0.0;
    };
    struct Client {
        std::uint32_t id = 0;
        float energy_j = 0.0f;
        float qos = 0.0f;
        std::uint32_t bursts_completed = 0;
        std::uint32_t bursts_shed = 0;
    };

    std::vector<std::string> series_names;  // index = series id
    std::vector<Sample> samples;
    std::vector<std::pair<std::string, double>> summaries;
    std::vector<Client> clients;
};

/// Parse \p path; throws ContractViolation on a malformed file.
[[nodiscard]] MetricsStreamContents read_metrics_stream(const std::string& path);

}  // namespace wlanps::obs
