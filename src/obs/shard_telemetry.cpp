#include "obs/shard_telemetry.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace wlanps::obs {

ShardTelemetry::ShardTelemetry(std::size_t shards, std::uint64_t timing_stride)
    : timing_stride_(timing_stride) {
    WLANPS_REQUIRE_MSG(shards >= 1, "ShardTelemetry needs at least one shard");
    WLANPS_REQUIRE_MSG(timing_stride >= 1,
                       "ShardTelemetry timing stride must be >= 1");
    lanes_.resize(shards);
    staged_.resize(shards);
}

const ShardTelemetry::Lane& ShardTelemetry::lane(std::size_t i) const {
    WLANPS_REQUIRE_MSG(i < lanes_.size(), "shard index out of range");
    return lanes_[i];
}

void ShardTelemetry::record_shard(std::size_t i, std::uint64_t events,
                                  std::uint64_t dispatch_ns, std::uint64_t flush_ns,
                                  std::uint64_t cross_flushed) {
    WLANPS_REQUIRE_MSG(i < lanes_.size(), "shard index out of range");
    Lane& lane = lanes_[i];
    lane.events += events;
    // Raw samples arrive only on timed quanta; scaling by the stride keeps
    // the accumulated lanes whole-run time estimates (see file comment).
    lane.dispatch_ns += dispatch_ns * timing_stride_;
    lane.flush_ns += flush_ns * timing_stride_;
    lane.cross_flushed += cross_flushed;
    if (events > 0) {
        ++lane.busy_quanta;
        lane.max_events_quantum = std::max(lane.max_events_quantum, events);
        lane.events_per_quantum.record(static_cast<double>(events));
    }
    staged_[i].events = events;
    staged_[i].dispatch_ns = dispatch_ns;
}

void ShardTelemetry::commit_quantum() {
    std::uint64_t total_events = 0;
    std::uint64_t max_events = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    for (Staged& s : staged_) {
        total_events += s.events;
        max_events = std::max(max_events, s.events);
        total_ns += s.dispatch_ns;
        max_ns = std::max(max_ns, s.dispatch_ns);
        s = Staged{};
    }
    ++quanta_;
    if (total_events > 0) {
        sum_max_events_ += max_events;
        sum_events_ += total_events;
        // max / mean for this quantum; >= 1 by construction, and the
        // histogram of these ratios is the skew distribution.
        skew_.record(static_cast<double>(max_events) *
                     static_cast<double>(lanes_.size()) /
                     static_cast<double>(total_events));
    }
    if (total_ns > 0) {
        sum_max_dispatch_ns_ += max_ns;
        sum_dispatch_ns_ += total_ns;
    }
}

void ShardTelemetry::record_barrier_wait(std::uint64_t ns) {
    barrier_wait_ns_.record(static_cast<double>(ns));
    barrier_wait_total_ns_ += ns;
}

double ShardTelemetry::imbalance_index() const {
    if (sum_events_ == 0) return 0.0;
    const double mean_sum =
        static_cast<double>(sum_events_) / static_cast<double>(lanes_.size());
    return static_cast<double>(sum_max_events_) / mean_sum;
}

double ShardTelemetry::imbalance_index_ns() const {
    if (sum_dispatch_ns_ == 0) return 0.0;
    const double mean_sum =
        static_cast<double>(sum_dispatch_ns_) / static_cast<double>(lanes_.size());
    return static_cast<double>(sum_max_dispatch_ns_) / mean_sum;
}

std::uint64_t ShardTelemetry::total_dispatch_ns() const {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) total += lane.dispatch_ns;
    return total;
}

std::uint64_t ShardTelemetry::total_flush_ns() const {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) total += lane.flush_ns;
    return total;
}

void ShardTelemetry::publish(MetricsRegistry& registry) const {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        const Lane& lane = lanes_[i];
        const std::string prefix = "sim.shard." + std::to_string(i) + ".";
        registry.counter(prefix + "events").add(lane.events);
        registry.counter(prefix + "busy_quanta").add(lane.busy_quanta);
        registry.counter(prefix + "cross_flushed").add(lane.cross_flushed);
        registry.gauge(prefix + "max_events_quantum")
            .set(static_cast<double>(lane.max_events_quantum));
        registry.histogram(prefix + "events_per_quantum")
            .merge_from(lane.events_per_quantum);
    }
    registry.gauge("sim.shard.imbalance.index").set(imbalance_index());
    registry.histogram("sim.shard.imbalance.skew").merge_from(skew_);
}

void ShardTelemetry::publish_timing(MetricsRegistry& registry) const {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        const Lane& lane = lanes_[i];
        const std::string prefix = "sim.shard." + std::to_string(i) + ".";
        registry.counter(prefix + "dispatch_ns").add(lane.dispatch_ns);
        registry.counter(prefix + "flush_ns").add(lane.flush_ns);
    }
    registry.gauge("sim.shard.imbalance.index_ns").set(imbalance_index_ns());
    registry.histogram("sim.shard.telemetry.barrier_wait_ns").merge_from(barrier_wait_ns_);
}

}  // namespace wlanps::obs
