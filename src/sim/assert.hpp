#pragma once
/// \file assert.hpp
/// Contract-checking macros used across the library.
///
/// WLANPS_REQUIRE checks a precondition and throws wlanps::ContractViolation
/// on failure.  Contract checks stay enabled in release builds: simulation
/// correctness depends on them and their cost is negligible next to event
/// dispatch.

#include <stdexcept>
#include <string>

namespace wlanps {

/// Thrown when a precondition or invariant of a public API is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* expr, const char* file, int line,
                                          const std::string& msg) {
    std::string text = std::string(file) + ":" + std::to_string(line) +
                       ": contract violated: (" + expr + ")";
    if (!msg.empty()) text += " — " + msg;
    throw ContractViolation(text);
}
}  // namespace detail

}  // namespace wlanps

#define WLANPS_REQUIRE(expr)                                                         \
    do {                                                                             \
        if (!(expr)) ::wlanps::detail::contract_failure(#expr, __FILE__, __LINE__, {}); \
    } while (false)

#define WLANPS_REQUIRE_MSG(expr, msg)                                                   \
    do {                                                                                \
        if (!(expr)) ::wlanps::detail::contract_failure(#expr, __FILE__, __LINE__, msg); \
    } while (false)
