#pragma once
/// \file logger.hpp
/// Minimal leveled logger with simulated-time prefixes.
///
/// Logging is off by default (benches and tests want clean stdout); enable
/// per-run with Logger::set_level.
///
/// Concurrency: each line is composed in a local buffer and emitted with a
/// single synchronized write through obs::log_write, so lines from
/// concurrent ExperimentRunner workers interleave whole — never torn
/// mid-line.  Tests (and embedders) can capture output by installing a
/// sink with obs::set_log_sink.
///
/// Hot paths should use WLANPS_LOG(level, now, tag, expr) below: the
/// stream expression is not evaluated — no string is built — unless the
/// level is enabled.

#include <sstream>
#include <string>

#include "obs/hooks.hpp"
#include "sim/time.hpp"

namespace wlanps::sim {

enum class LogLevel { off = 0, error, info, debug };

/// Process-global log front-end; output goes through the obs log sink.
class Logger {
public:
    static void set_level(LogLevel level) { level_ref() = level; }
    [[nodiscard]] static LogLevel level() { return level_ref(); }

    /// True when a message at \p level would be emitted — the guard
    /// WLANPS_LOG uses to skip message construction entirely.
    [[nodiscard]] static bool enabled(LogLevel level) {
        return level != LogLevel::off &&
               static_cast<int>(level) <= static_cast<int>(level_ref());
    }

    /// Emit a line at \p level, prefixed with sim time and component tag.
    /// The full line is built locally and handed to the synchronized sink
    /// in one write.
    static void log(LogLevel level, Time now, const std::string& tag,
                    const std::string& message) {
        if (!enabled(level)) return;
        std::ostringstream line;
        line << "[" << now.str() << "] " << tag << ": " << message << '\n';
        obs::log_write(line.str());
    }

private:
    static LogLevel& level_ref() {
        static LogLevel level = LogLevel::off;
        return level;
    }
};

}  // namespace wlanps::sim

/// Lazy leveled logging: `expr` is a stream expression (a << b << ...)
/// evaluated only when the level is enabled, so disabled-level call sites
/// on hot paths cost one branch and build no strings.
///
///   WLANPS_LOG(sim::LogLevel::debug, sim.now(), "server",
///              "burst " << bytes << " B to client " << id);
#define WLANPS_LOG(level, now, tag, expr)                              \
    do {                                                               \
        if (::wlanps::sim::Logger::enabled(level)) {                   \
            std::ostringstream wlanps_log_oss_;                        \
            wlanps_log_oss_ << expr;                                   \
            ::wlanps::sim::Logger::log(level, now, tag,                \
                                       wlanps_log_oss_.str());         \
        }                                                              \
    } while (0)
