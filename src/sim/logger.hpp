#pragma once
/// \file logger.hpp
/// Minimal leveled logger with simulated-time prefixes.
///
/// Logging is off by default (benches and tests want clean stdout); enable
/// per-run with Logger::set_level.

#include <iostream>
#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace wlanps::sim {

enum class LogLevel { off = 0, error, info, debug };

/// Process-global log sink.
class Logger {
public:
    static void set_level(LogLevel level) { level_ref() = level; }
    [[nodiscard]] static LogLevel level() { return level_ref(); }

    /// Emit a line at \p level, prefixed with sim time and component tag.
    static void log(LogLevel level, Time now, const std::string& tag, const std::string& message) {
        if (static_cast<int>(level) > static_cast<int>(level_ref())) return;
        std::clog << "[" << now.str() << "] " << tag << ": " << message << '\n';
    }

private:
    static LogLevel& level_ref() {
        static LogLevel level = LogLevel::off;
        return level;
    }
};

}  // namespace wlanps::sim
