#include "sim/sampler.hpp"

#include "sim/assert.hpp"

namespace wlanps::sim {

SimSampler::SimSampler(Simulator& sim, Time interval)
    : sim_(sim), ticker_(sim, interval, [this] { sample(); }) {
    WLANPS_REQUIRE_MSG(interval.ns() > 0, "sampler interval must be positive");
}

void SimSampler::add_track(std::string name, std::function<double()> probe) {
    WLANPS_REQUIRE_MSG(!ticker_.running(), "cannot add tracks while sampling");
    WLANPS_REQUIRE_MSG(static_cast<bool>(probe), "null sampler probe");
    series_.push_back(Series{std::move(name), {}});
    probes_.push_back(std::move(probe));
}

void SimSampler::start() {
    sample();
    ticker_.start();
}

void SimSampler::stop() { ticker_.cancel(); }

void SimSampler::sample() {
    const Time now = sim_.now();
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        series_[i].samples.emplace_back(now, probes_[i]());
    }
}

}  // namespace wlanps::sim
