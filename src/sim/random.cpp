#include "sim/random.hpp"

#include <numeric>

namespace wlanps::sim {

std::size_t Random::weighted_index(const std::vector<double>& weights) {
    WLANPS_REQUIRE(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        WLANPS_REQUIRE_MSG(w >= 0.0, "negative weight");
        total += w;
    }
    WLANPS_REQUIRE_MSG(total > 0.0, "all weights zero");
    double x = uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (x < acc) return i;
    }
    return weights.size() - 1;  // numerical edge: x == total
}

}  // namespace wlanps::sim
