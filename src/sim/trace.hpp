#pragma once
/// \file trace.hpp
/// Timeline tracing and ASCII Gantt rendering.
///
/// A TimelineTrace records a piecewise-constant signal (e.g. a NIC's power
/// state) as labeled spans; GanttChart renders several traces into the kind
/// of schedule picture the paper's Figure 1 shows (per-client transfer
/// windows on top, power levels underneath).

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace wlanps::sim {

/// One lane of a timeline: consecutive labeled spans with a numeric level.
class TimelineTrace {
public:
    struct Span {
        Time begin;
        Time end;
        std::string label;
        double level = 0.0;
    };

    /// Enter a new state at \p when.  Closes the previous span.  Calls must
    /// be non-decreasing in time; zero-length spans are dropped.
    void set_state(Time when, std::string label, double level);

    /// Close the open span at \p when.  Idempotent.
    void finish(Time when);

    [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
    [[nodiscard]] bool empty() const { return spans_.empty() && !open_; }

    /// Level at time \p t (0 if before the first span / after finish).
    [[nodiscard]] double level_at(Time t) const;
    /// Label at time \p t (empty if none).
    [[nodiscard]] std::string label_at(Time t) const;

    /// Max level seen (for normalizing chart glyphs).  0 if empty.
    [[nodiscard]] double max_level() const;

private:
    std::vector<Span> spans_;
    bool open_ = false;
    Time open_begin_ = Time::zero();
    std::string open_label_;
    double open_level_ = 0.0;
};

/// Renders one or more TimelineTraces as a fixed-width ASCII Gantt chart.
/// Glyph encodes the normalized level: ' ' (zero) . - = # (full).
class GanttChart {
public:
    /// Add a lane.  The trace must outlive the chart.
    void add_lane(std::string name, const TimelineTrace& trace);

    /// Render all lanes over [begin, end] using \p columns characters.
    [[nodiscard]] std::string render(Time begin, Time end, int columns = 100) const;

private:
    struct Lane {
        std::string name;
        const TimelineTrace* trace;
    };
    std::vector<Lane> lanes_;
};

}  // namespace wlanps::sim
