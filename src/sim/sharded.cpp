#include "sim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/health_report.hpp"
#include "sim/assert.hpp"

namespace wlanps::sim {

namespace {

[[nodiscard]] std::uint64_t steady_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

const char* to_string(SyncPolicy policy) {
    return policy == SyncPolicy::strict_barrier ? "strict-barrier" : "lax-window";
}

void ShardedConfig::validate() const {
    WLANPS_REQUIRE_MSG(shards >= 1, "need at least one shard");
    WLANPS_REQUIRE_MSG(lookahead > Time::zero(), "cross-shard lookahead must be positive");
    WLANPS_REQUIRE_MSG(mailbox_capacity >= 1, "mailbox capacity must be positive");
    if (policy == SyncPolicy::lax_window && !skew_window.is_zero()) {
        WLANPS_REQUIRE_MSG(skew_window >= lookahead,
                           "lax skew window narrower than the lookahead would synchronize "
                           "more often than strict mode — use strict_barrier instead");
    }
    if (policy == SyncPolicy::strict_barrier) {
        WLANPS_REQUIRE_MSG(skew_window.is_zero(),
                           "skew_window is a lax_window knob; strict_barrier derives its "
                           "quantum from the lookahead");
    }
}

ShardedSimulator::ShardedSimulator(ShardedConfig config) : config_(config) {
    config_.validate();
    shards_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
        auto sh = std::make_unique<Shard>();
        sh->inbox.reserve(config_.mailbox_capacity);
        shards_.push_back(std::move(sh));
    }
    // More workers than shards would never all have work.
    worker_count_ = std::min(config_.threads, config_.shards);
}

ShardedSimulator::~ShardedSimulator() {
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(pool_mutex_);
            shutdown_ = true;
        }
        start_cv_.notify_all();
        for (std::thread& t : workers_) t.join();
    }
}

Simulator& ShardedSimulator::shard(std::size_t i) {
    WLANPS_REQUIRE_MSG(i < shards_.size(), "shard index out of range");
    return shards_[i]->sim;
}

void ShardedSimulator::post_cross(std::size_t from, std::size_t to, Time when,
                                  InlineCallback callback) {
    WLANPS_REQUIRE_MSG(from < shards_.size() && to < shards_.size(), "shard index out of range");
    WLANPS_REQUIRE_MSG(static_cast<bool>(callback), "null callback");
    Shard& src = *shards_[from];
    if (from == to) {
        // Same shard: an ordinary local event, no lookahead constraint.
        src.sim.post_at(when, std::move(callback));
        return;
    }
    WLANPS_REQUIRE_MSG(when >= src.sim.now() + config_.lookahead,
                       "cross-shard event inside the lookahead horizon — the conservative "
                       "synchronizer cannot deliver it in time (raise the event delay or "
                       "lower ShardedConfig::lookahead)");
    Shard& dst = *shards_[to];
    {
        std::lock_guard<std::mutex> lock(dst.inbox_mutex);
        WLANPS_REQUIRE_MSG(dst.inbox.size() < config_.mailbox_capacity,
                           "cross-shard mailbox overflow — raise ShardedConfig::mailbox_capacity");
        dst.inbox.push_back(CrossEvent{when, static_cast<std::uint32_t>(from),
                                       src.send_seq++, std::move(callback)});
        if (when < dst.inbox_min) dst.inbox_min = when;
        if (dst.inbox.size() > dst.stats.mailbox_peak) dst.stats.mailbox_peak = dst.inbox.size();
    }
    // Sender-side stats are only ever written by the shard's owning thread.
    ++src.stats.cross_sent;
}

void ShardedSimulator::flush_inbox(Shard& sh) {
    std::vector<CrossEvent> batch;
    {
        std::lock_guard<std::mutex> lock(sh.inbox_mutex);
        if (sh.inbox.empty()) return;
        batch.swap(sh.inbox);
        sh.inbox.reserve(config_.mailbox_capacity);
        sh.inbox_min = Time::max();
    }
    // Deterministic merge: arrival order into the local queue — and hence
    // the (time, seq) FIFO tie-break among simultaneous events — depends
    // only on (when, src, seq), never on which thread sent first.
    std::sort(batch.begin(), batch.end(), &cross_less);
    const Time local_now = sh.sim.now();
    for (CrossEvent& ev : batch) {
        Time when = ev.when;
        if (when < local_now) {
            // Only reachable in lax mode (quantum wider than the
            // lookahead): the sender's quantum outran this timestamp.
            // Bump to the quantum boundary — deterministic, and bounded
            // by window - lookahead.
            WLANPS_REQUIRE_MSG(config_.policy == SyncPolicy::lax_window,
                               "strict-barrier invariant broken: late cross-shard event");
            const std::int64_t late = (local_now - when).ns();
            ++sh.stats.cross_late;
            sh.stats.max_skew_ns = std::max(sh.stats.max_skew_ns, late);
            sh.skew_ns.record(static_cast<double>(late));
            when = local_now;
        }
        sh.sim.post_at(when, std::move(ev.callback));
        ++sh.stats.cross_received;
    }
}

Time ShardedSimulator::next_work_time() {
    Time earliest = Time::max();
    for (auto& sh : shards_) {
        earliest = std::min(earliest, sh->sim.next_event_time());
        std::lock_guard<std::mutex> lock(sh->inbox_mutex);
        earliest = std::min(earliest, sh->inbox_min);
    }
    return earliest;
}

void ShardedSimulator::run_one_shard(Shard& sh, Time quantum_end) {
#if defined(WLANPS_OBS_ENABLED)
    if (telemetry_ != nullptr) {
        const std::uint64_t events_before = sh.sim.events_dispatched();
        if (time_this_quantum_) {
            const std::uint64_t t0 = steady_ns();
            sh.sim.run_until(quantum_end);
            sh.q_dispatch_ns = steady_ns() - t0;
        } else {
            // Untimed quantum (timing stride): event counts stay exact,
            // the clock stays cold.
            sh.sim.run_until(quantum_end);
            sh.q_dispatch_ns = 0;
        }
        sh.q_events = sh.sim.events_dispatched() - events_before;
        return;
    }
#endif
    sh.sim.run_until(quantum_end);
}

void ShardedSimulator::run_shard_span(std::size_t worker, Time quantum_end) {
    for (std::size_t i = worker; i < shards_.size(); i += worker_count_) {
        run_one_shard(*shards_[i], quantum_end);
    }
}

void ShardedSimulator::record_quantum_telemetry() {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard& sh = *shards_[i];
        telemetry_->record_shard(i, sh.q_events, sh.q_dispatch_ns, sh.q_flush_ns,
                                 sh.stats.cross_received - sh.q_cross_base);
    }
    telemetry_->commit_quantum();
}

void ShardedSimulator::run_quantum(Time quantum_end) {
    // Phase 1 — flush every mailbox on the coordinating thread, BEFORE any
    // shard advances.  If flushing were folded into each shard's run (e.g.
    // flush-then-run per shard in index order), a message posted by an
    // already-run shard could reach a not-yet-run shard one quantum early,
    // making delivery timing depend on shard visit order — which differs
    // between inline and parallel execution.  A separate flush phase sees
    // exactly the messages of completed quanta, in every mode.
#if defined(WLANPS_OBS_ENABLED)
    if (telemetry_ != nullptr) {
        // Timing stride: two steady_clock reads per shard per quantum are
        // the dominant telemetry cost, so only every stride-th quantum is
        // timed (ShardTelemetry scales the samples back up).  Workers read
        // time_this_quantum_ after the generation handoff under
        // pool_mutex_, so the write here happens-before their use.
        time_this_quantum_ = quantum_seq_ % telemetry_->timing_stride() == 0;
        ++quantum_seq_;
        for (auto& sh : shards_) {
            sh->q_cross_base = sh->stats.cross_received;
            if (time_this_quantum_) {
                const std::uint64_t t0 = steady_ns();
                flush_inbox(*sh);
                sh->q_flush_ns = steady_ns() - t0;
            } else {
                flush_inbox(*sh);
                sh->q_flush_ns = 0;
            }
        }
    } else {
        for (auto& sh : shards_) flush_inbox(*sh);
    }
#else
    for (auto& sh : shards_) flush_inbox(*sh);
#endif
    if (worker_count_ == 0) {
        // Inline reference execution: shards in index order on this thread.
        for (auto& sh : shards_) run_one_shard(*sh, quantum_end);
#if defined(WLANPS_OBS_ENABLED)
        if (telemetry_ != nullptr) record_quantum_telemetry();
#endif
        return;
    }
    {
        std::lock_guard<std::mutex> lock(pool_mutex_);
        quantum_target_ = quantum_end;
        remaining_.store(worker_count_, std::memory_order_relaxed);
        ++generation_;
    }
    start_cv_.notify_all();
    std::unique_lock<std::mutex> lock(pool_mutex_);
    done_cv_.wait(lock, [this] { return remaining_.load(std::memory_order_acquire) == 0; });
    lock.unlock();
    const std::uint64_t all_done = steady_ns();
    for (std::size_t w = 0; w < worker_count_; ++w) {
        const std::uint64_t finished = worker_finish_ns_[w];
        const std::uint64_t waited = all_done - std::min(finished, all_done);
        barrier_wait_ns_.record(static_cast<double>(waited));
#if defined(WLANPS_OBS_ENABLED)
        if (telemetry_ != nullptr) telemetry_->record_barrier_wait(waited);
#endif
    }
#if defined(WLANPS_OBS_ENABLED)
    // The workers' q_* staging writes happen-before this read via the
    // acq_rel countdown the done_cv_ wait acquired.
    if (telemetry_ != nullptr) record_quantum_telemetry();
#endif
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock2(error_mutex_);
        error = std::exchange(first_error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
}

void ShardedSimulator::start_workers() {
    worker_finish_ns_.assign(worker_count_, 0);
    workers_.reserve(worker_count_);
    for (std::size_t w = 0; w < worker_count_; ++w) {
        workers_.emplace_back([this, w] { worker_loop(w); });
    }
}

void ShardedSimulator::worker_loop(std::size_t worker) {
    std::uint64_t seen_generation = 0;
    for (;;) {
        Time quantum_end;
        {
            std::unique_lock<std::mutex> lock(pool_mutex_);
            start_cv_.wait(lock,
                           [&] { return shutdown_ || generation_ != seen_generation; });
            if (shutdown_) return;
            seen_generation = generation_;
            quantum_end = quantum_target_;
        }
        try {
            run_shard_span(worker, quantum_end);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        worker_finish_ns_[worker] = steady_ns();
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(pool_mutex_);
            done_cv_.notify_one();
        }
    }
}

void ShardedSimulator::run_until(Time horizon) {
    WLANPS_REQUIRE_MSG(horizon >= now_, "horizon in the past");
    if (worker_count_ > 0 && workers_.empty()) start_workers();
    const Time quantum = config_.quantum();
    while (now_ < horizon) {
        // Idle jump: when every shard's next event (and every mailbox
        // entry) lies beyond the next boundary, start the quantum at the
        // earliest pending work instead of crawling empty windows.  All
        // shards agree on this minimum, so the jump is deterministic.
        Time start = now_;
        const Time frontier = next_work_time();
        if (frontier > start) {
            start = std::min(frontier, horizon);
            ++idle_jumps_;
        }
        Time quantum_end = start + quantum;
        if (quantum_end > horizon || quantum_end < start) quantum_end = horizon;
        run_quantum(quantum_end);
        now_ = quantum_end;
        ++quanta_;
    }
}

ShardStats ShardedSimulator::stats(std::size_t i) const {
    WLANPS_REQUIRE_MSG(i < shards_.size(), "shard index out of range");
    ShardStats s = shards_[i]->stats;
    s.events_dispatched = shards_[i]->sim.events_dispatched();
    return s;
}

std::uint64_t ShardedSimulator::total_dispatched() const {
    std::uint64_t total = 0;
    for (auto& sh : shards_) total += sh->sim.events_dispatched();
    return total;
}

void ShardedSimulator::publish_metrics(obs::MetricsRegistry& registry,
                                       bool include_timing) const {
    obs::Histogram& dispatched = registry.histogram("sim.shard.dispatched");
    obs::Gauge& depth_peak = registry.gauge("sim.shard.mailbox_depth_peak");
    obs::Gauge& depth_now = registry.gauge("sim.shard.mailbox_depth");
    std::uint64_t cross = 0;
    std::uint64_t late = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard& sh = *shards_[i];
        dispatched.record(static_cast<double>(sh.sim.events_dispatched()));
        depth_peak.set(static_cast<double>(sh.stats.mailbox_peak));
        depth_now.set(static_cast<double>(sh.inbox.size()));
        cross += sh.stats.cross_sent;
        late += sh.stats.cross_late;
        registry.histogram("sim.shard.skew_ns").merge_from(sh.skew_ns);
    }
    registry.counter("sim.shard.cross_events").add(cross);
    registry.counter("sim.shard.cross_late").add(late);
    registry.counter("sim.shard.quanta").add(quanta_);
    registry.counter("sim.shard.idle_jumps").add(idle_jumps_);
    if (include_timing) {
        registry.histogram("sim.shard.barrier_wait_ns").merge_from(barrier_wait_ns_);
    }
    if (telemetry_ != nullptr) {
        telemetry_->publish(registry);
        if (include_timing) telemetry_->publish_timing(registry);
    }
}

void ShardedSimulator::fill_health(obs::HealthReport& report) const {
    report.policy = to_string(config_.policy);
    report.shards = shards_.size();
    report.workers = worker_count_;
    report.quanta = quanta_;
    report.idle_jumps = idle_jumps_;
    report.events = 0;
    report.per_shard.clear();
    report.per_shard.reserve(shards_.size());
    std::uint64_t max_shard_events = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard& sh = *shards_[i];
        obs::ShardHealth h;
        h.shard = static_cast<std::uint32_t>(i);
        h.events = sh.sim.events_dispatched();
        h.cross_sent = sh.stats.cross_sent;
        h.cross_received = sh.stats.cross_received;
        h.cross_late = sh.stats.cross_late;
        h.mailbox_peak = sh.stats.mailbox_peak;
        h.max_skew_ns = sh.stats.max_skew_ns;
        report.events += h.events;
        max_shard_events = std::max(max_shard_events, h.events);
        report.per_shard.push_back(h);
    }

    const obs::ShardTelemetry* tel = telemetry_;
    if (tel != nullptr && tel->quanta() > 0) {
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            const obs::ShardTelemetry::Lane& lane = tel->lane(i);
            report.per_shard[i].busy_quanta = lane.busy_quanta;
            report.per_shard[i].max_events_quantum = lane.max_events_quantum;
            report.per_shard[i].dispatch_ns = lane.dispatch_ns;
            report.per_shard[i].flush_ns = lane.flush_ns;
        }
        report.imbalance_index = tel->imbalance_index();
        report.skew_count = tel->skew().count();
        report.skew_mean = tel->skew().mean();
        report.skew_max = tel->skew().max();
        report.barrier_wait_ns = tel->total_barrier_wait_ns();
        report.dispatch_ns = tel->total_dispatch_ns();
        report.flush_ns = tel->total_flush_ns();
        report.imbalance_index_ns = tel->imbalance_index_ns();
    } else {
        // No per-quantum attribution (plain build, or telemetry never
        // attached): the whole-run max/mean across shards still flags a
        // statically imbalanced decomposition.
        report.imbalance_index =
            report.events == 0
                ? 0.0
                : static_cast<double>(max_shard_events) /
                      (static_cast<double>(report.events) /
                       static_cast<double>(shards_.size()));
        report.barrier_wait_ns = static_cast<std::uint64_t>(barrier_wait_ns_.sum());
    }
}

}  // namespace wlanps::sim
