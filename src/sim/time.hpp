#pragma once
/// \file time.hpp
/// Simulated time as a strong type.
///
/// Time is a signed 64-bit count of nanoseconds, used both for absolute
/// simulation timestamps and for durations (the style of SystemC's sc_time).
/// 64-bit nanoseconds give ±292 years of range, ample for any WLAN study.

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace wlanps {

/// A point in simulated time, or a duration, with nanosecond resolution.
class Time {
public:
    constexpr Time() = default;

    /// Named constructors.  Fractional inputs are rounded to the nearest ns.
    [[nodiscard]] static constexpr Time from_ns(std::int64_t ns) { return Time(ns); }
    [[nodiscard]] static constexpr Time from_us(double us) { return Time(round_ns(us * 1e3)); }
    [[nodiscard]] static constexpr Time from_ms(double ms) { return Time(round_ns(ms * 1e6)); }
    [[nodiscard]] static constexpr Time from_seconds(double s) { return Time(round_ns(s * 1e9)); }
    [[nodiscard]] static constexpr Time zero() { return Time(0); }
    [[nodiscard]] static constexpr Time max() { return Time(INT64_MAX); }

    [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
    [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
    [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

    [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
    [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

    constexpr auto operator<=>(const Time&) const = default;

    constexpr Time& operator+=(Time rhs) { ns_ += rhs.ns_; return *this; }
    constexpr Time& operator-=(Time rhs) { ns_ -= rhs.ns_; return *this; }

    friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
    friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
    friend constexpr Time operator*(Time a, double k) { return Time(round_ns(static_cast<double>(a.ns_) * k)); }
    friend constexpr Time operator*(double k, Time a) { return a * k; }
    friend constexpr Time operator/(Time a, double k) { return Time(round_ns(static_cast<double>(a.ns_) / k)); }
    /// Ratio of two durations.
    friend constexpr double operator/(Time a, Time b) {
        return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
    }

    /// "12.345ms"-style rendering, unit chosen by magnitude.
    [[nodiscard]] std::string str() const;

private:
    constexpr explicit Time(std::int64_t ns) : ns_(ns) {}

    static constexpr std::int64_t round_ns(double v) {
        return static_cast<std::int64_t>(v < 0 ? v - 0.5 : v + 0.5);
    }

    std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

namespace time_literals {
constexpr Time operator""_ns(unsigned long long v) { return Time::from_ns(static_cast<std::int64_t>(v)); }
constexpr Time operator""_us(unsigned long long v) { return Time::from_us(static_cast<double>(v)); }
constexpr Time operator""_ms(unsigned long long v) { return Time::from_ms(static_cast<double>(v)); }
constexpr Time operator""_s(unsigned long long v) { return Time::from_seconds(static_cast<double>(v)); }
constexpr Time operator""_us(long double v) { return Time::from_us(static_cast<double>(v)); }
constexpr Time operator""_ms(long double v) { return Time::from_ms(static_cast<double>(v)); }
constexpr Time operator""_s(long double v) { return Time::from_seconds(static_cast<double>(v)); }
}  // namespace time_literals

}  // namespace wlanps
