#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// A Simulator owns a time-ordered event queue.  Components schedule
/// callbacks at absolute times or after delays; run() dispatches them in
/// (time, insertion-order) order, so simultaneous events execute FIFO and
/// every run with the same seed is bit-reproducible.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace wlanps::sim {

/// Handle to a scheduled event; used to cancel it before it fires.
class EventHandle {
public:
    EventHandle() = default;

    /// True if the event has neither fired nor been cancelled.
    [[nodiscard]] bool pending() const;
    /// Cancel the event.  No-op if it already fired or was cancelled.
    void cancel();

private:
    friend class Simulator;
    struct State {
        std::function<void()> callback;
        bool cancelled = false;
    };
    explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
};

/// The simulation kernel.  Not copyable; components hold references to it.
///
/// Event nodes come from an internal slab allocator (fixed-size chunks,
/// free-list recycling), so steady-state scheduling does one queue push
/// and no per-event heap allocation beyond what the callback's own
/// closure needs.  Two scheduling families exist:
///   * post_at / post_in    — fire-and-forget, no handle, fastest path;
///   * schedule_at / schedule_in — return an EventHandle for cancellation
///     (allocates a small shared cancellation state, as before).
class Simulator {
public:
    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Current simulated time.
    [[nodiscard]] Time now() const { return now_; }

    /// Schedule \p callback at absolute time \p when (must be >= now()).
    EventHandle schedule_at(Time when, std::function<void()> callback);

    /// Schedule \p callback \p delay after now() (delay must be >= 0).
    EventHandle schedule_in(Time delay, std::function<void()> callback);

    /// Fire-and-forget variant of schedule_at: no EventHandle, no shared
    /// cancellation state.  Use when the event is never cancelled.
    void post_at(Time when, std::function<void()> callback);

    /// Fire-and-forget variant of schedule_in.
    void post_in(Time delay, std::function<void()> callback);

    /// Run until the queue is empty or stop() is called.
    void run();

    /// Run until simulated time reaches \p horizon (events at exactly
    /// \p horizon still execute), the queue empties, or stop() is called.
    /// Afterwards now() == horizon unless stopped earlier.
    void run_until(Time horizon);

    /// Execute the single next event.  Returns false if the queue is empty.
    bool step();

    /// Ask the running loop to return after the current event.
    void stop() { stop_requested_ = true; }

    /// Number of events dispatched so far (cancelled events excluded).
    [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

    /// Number of events currently queued (including cancelled tombstones).
    [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

private:
    /// Slab-allocated event node.  Fast-path events store their callback
    /// inline; handle-path events store it in the shared State instead so
    /// the handle can cancel it.
    struct Node {
        std::function<void()> callback;
        std::shared_ptr<EventHandle::State> state;
        Node* next_free = nullptr;
    };

    struct Entry {
        Time when;
        std::uint64_t seq;  // tie-break: FIFO among simultaneous events
        Node* node;
        bool operator>(const Entry& rhs) const {
            if (when != rhs.when) return when > rhs.when;
            return seq > rhs.seq;
        }
    };

    [[nodiscard]] Node* acquire_node();
    void release_node(Node* node);
    void push_entry(Time when, Node* node);
    bool dispatch_next(Time horizon);

    static constexpr std::size_t kSlabSize = 256;  // nodes per slab
    std::vector<std::unique_ptr<Node[]>> slabs_;
    Node* free_list_ = nullptr;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    Time now_ = Time::zero();
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
    bool stop_requested_ = false;
};

/// Scoped periodic activity: reschedules itself every `period` until
/// cancelled or its owner is destroyed.  Used for beacons, polls, meters.
class PeriodicEvent {
public:
    PeriodicEvent(Simulator& sim, Time period, std::function<void()> tick);
    ~PeriodicEvent();
    PeriodicEvent(const PeriodicEvent&) = delete;
    PeriodicEvent& operator=(const PeriodicEvent&) = delete;

    void start();
    void start_at(Time first_tick);
    void cancel();
    [[nodiscard]] bool running() const { return handle_.pending(); }
    [[nodiscard]] Time period() const { return period_; }

private:
    void fire();

    Simulator& sim_;
    Time period_;
    std::function<void()> tick_;
    EventHandle handle_;
};

}  // namespace wlanps::sim
