#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// A Simulator owns a time-ordered event queue.  Components schedule
/// callbacks at absolute times or after delays; run() dispatches them in
/// (time, insertion-order) order, so simultaneous events execute FIFO and
/// every run with the same seed is bit-reproducible.

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/assert.hpp"
#include "sim/callback.hpp"
#include "sim/time.hpp"

#if defined(WLANPS_OBS_ENABLED)
#include "obs/kernel_profile.hpp"
#else
namespace wlanps::obs {
class KernelProfile;  // attach_profile() compiles in every build
}
#endif

namespace wlanps::sim {

class Simulator;
class PeriodicEvent;

/// Handle to a scheduled event; used to cancel it before it fires.
class EventHandle {
public:
    EventHandle() = default;

    /// True if the event has neither fired nor been cancelled.
    [[nodiscard]] bool pending() const;
    /// Cancel the event.  No-op if it already fired or was cancelled.
    void cancel();

private:
    friend class Simulator;
    struct State {
        InlineCallback callback;
        Simulator* owner = nullptr;  // for tombstone accounting on cancel
        bool cancelled = false;
    };
    explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
};

/// The simulation kernel.  Not copyable; components hold references to it.
///
/// Storage: event nodes come from an internal slab allocator (fixed-size
/// chunks, free-list recycling) and callbacks live in-place in the node
/// (InlineCallback, 64-byte buffer), so steady-state scheduling performs
/// no heap allocation at all.  Two scheduling families exist:
///   * post_at / post_in    — fire-and-forget, no handle, fastest path;
///   * schedule_at / schedule_in — return an EventHandle for cancellation
///     (allocates a small shared cancellation state, as before).
///
/// Ordering: the queue is a two-level calendar queue — a 256-bucket wheel
/// covering the near future (4096 ns per bucket, ~1 ms of horizon) plus a
/// binary-heap overflow ladder for everything beyond it.  Wheel buckets
/// are sorted lazily when the dispatch cursor reaches them; ties at equal
/// times break on a global insertion sequence number, so dispatch order is
/// exactly the (time, seq) FIFO order the old binary heap produced — same
/// events, same order, same metrics to the last bit.
class Simulator {
public:
    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Current simulated time.
    [[nodiscard]] Time now() const { return now_; }

    /// Schedule \p callback at absolute time \p when (must be >= now()).
    EventHandle schedule_at(Time when, InlineCallback callback);

    /// Schedule \p callback \p delay after now() (delay must be >= 0).
    EventHandle schedule_in(Time delay, InlineCallback callback);

    /// Fire-and-forget variant of schedule_at: no EventHandle, no shared
    /// cancellation state.  Use when the event is never cancelled.
    void post_at(Time when, InlineCallback callback);

    /// Fire-and-forget variant of schedule_in.
    void post_in(Time delay, InlineCallback callback);

    /// Run until the queue is empty or stop() is called.
    void run();

    /// Run until simulated time reaches \p horizon (events at exactly
    /// \p horizon still execute), the queue empties, or stop() is called.
    /// Afterwards now() == horizon unless stopped earlier.
    void run_until(Time horizon);

    /// Execute the single next event.  Returns false if the queue is empty.
    bool step();

    /// Ask the running loop to return after the current event.
    void stop() { stop_requested_ = true; }

    /// Number of events dispatched so far (cancelled events excluded).
    [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

    /// Number of entries currently queued, *including* cancelled tombstones
    /// that have not been reaped yet.  Use pending_events() to ask "how
    /// many events will still fire".
    [[nodiscard]] std::size_t queue_size() const { return size_; }

    /// Number of queued events that are still live (cancelled tombstones
    /// excluded) — the count that reaches zero exactly when run() would
    /// dispatch nothing more.
    [[nodiscard]] std::size_t pending_events() const {
        return size_ - static_cast<std::size_t>(cancelled_pending_);
    }

    /// Earliest queued timestamp, or Time::max() when the queue is empty.
    /// Cancelled tombstones count, so this is a conservative lower bound
    /// on when the next live event fires — exactly what a conservative
    /// parallel synchronizer (sim/sharded.hpp) needs for idle-quantum
    /// jumps.  Non-const: peeking may sort a bucket or migrate overflow
    /// entries, which is dispatch-order neutral.
    [[nodiscard]] Time next_event_time() {
        if (size_ == 0) return Time::max();
        return find_min()->when;
    }

    /// Attach a kernel profiling sink (obs/kernel_profile.hpp), or nullptr
    /// to detach.  Only WLANPS_OBS builds record into it — the attached
    /// path times every dispatched callback and tracks calendar-queue
    /// maintenance; the unattached path costs one branch per dispatch.
    void attach_profile(obs::KernelProfile* profile) { profile_ = profile; }
    [[nodiscard]] obs::KernelProfile* profile() const { return profile_; }

private:
    friend class EventHandle;
    friend class PeriodicEvent;

    /// Slab-allocated event node.  Fast-path events store their callback
    /// in-place; handle-path events store it in the shared State instead
    /// (so the handle can cancel it); periodic events carry a back-pointer
    /// to their PeriodicEvent and are re-armed without re-allocation.
    struct Node {
        InlineCallback callback;
        std::shared_ptr<EventHandle::State> state;
        PeriodicEvent* periodic = nullptr;
        Node* next_free = nullptr;
    };

    struct Entry {
        Time when;
        std::uint64_t seq;  // tie-break: FIFO among simultaneous events
        Node* node;
        bool operator>(const Entry& rhs) const {
            if (when != rhs.when) return when > rhs.when;
            return seq > rhs.seq;
        }
    };

    /// One wheel bucket: unsorted until the cursor reaches it, then kept
    /// ascending by (when, seq) and drained through `head`, so in-order
    /// insertions (the common case) append without shifting anything.
    struct Bucket {
        std::vector<Entry> entries;
        std::size_t head = 0;  // index of the next entry to dispatch
        bool sorted = false;

        [[nodiscard]] std::size_t live() const { return entries.size() - head; }
    };

    static constexpr std::size_t kSlabSize = 256;  // nodes per slab
    static constexpr std::size_t kNumBuckets = 256;
    static constexpr std::size_t kBucketMask = kNumBuckets - 1;
    static constexpr std::size_t kBitmapWords = kNumBuckets / 64;
    static constexpr std::int64_t kBucketWidthNs = 4096;  // ~4 us per bucket

    [[nodiscard]] static std::uint64_t bucket_id(Time t) {
        return static_cast<std::uint64_t>(t.ns()) / static_cast<std::uint64_t>(kBucketWidthNs);
    }

    /// Ascending (when, seq) — the dispatch order.
    [[nodiscard]] static bool entry_less(const Entry& a, const Entry& b) { return b > a; }

    [[nodiscard]] Node* acquire_node();
    void grow_slab();
    void release_node(Node* node);
    void emplace_post(Time when, InlineCallback&& callback);
    void push_entry(Time when, Node* node);
    void wheel_insert(std::uint64_t id, const Entry& entry);
    void rebuild_window(std::uint64_t id, const Entry& entry);
    void spill_wheel_to_overflow();
    void migrate_overflow();
    void advance_cursor();
    [[nodiscard]] std::size_t next_occupied_delta() const;
    [[nodiscard]] Entry* find_min();
    void pop_min();
    bool dispatch_next(Time horizon);

    // Periodic fast path (used by PeriodicEvent).
    Node* arm_periodic(Time when, PeriodicEvent* owner);
    void rearm_periodic(Node* node, Time when);
    void cancel_periodic(Node* node);
    void note_handle_cancelled() { ++cancelled_pending_; }

    std::vector<std::unique_ptr<Node[]>> slabs_;
    Node* free_list_ = nullptr;

    std::array<Bucket, kNumBuckets> buckets_;
    std::array<std::uint64_t, kBitmapWords> occupied_{};  // nonempty-bucket bitmap
    std::uint64_t cur_bucket_id_ = 0;  // absolute id of the drain cursor's bucket
    std::size_t wheel_count_ = 0;      // entries resident in the wheel
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> overflow_;

    std::size_t size_ = 0;  // total queued entries (wheel + overflow)
    std::uint64_t cancelled_pending_ = 0;
    Time now_ = Time::zero();
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
    bool stop_requested_ = false;
    obs::KernelProfile* profile_ = nullptr;  // recorded into in WLANPS_OBS builds
};

/// Scoped periodic activity: reschedules itself every `period` until
/// cancelled or its owner is destroyed.  Used for beacons, polls, meters.
///
/// Periodic ticks ride a dedicated kernel path: the slab node is armed
/// once and re-armed in place on every fire, so a beacon or energy meter
/// costs one queue push per tick — no handle, no allocation, no callback
/// relocation.
class PeriodicEvent {
public:
    PeriodicEvent(Simulator& sim, Time period, InlineCallback tick);
    ~PeriodicEvent();
    PeriodicEvent(const PeriodicEvent&) = delete;
    PeriodicEvent& operator=(const PeriodicEvent&) = delete;

    void start();
    void start_at(Time first_tick);
    void cancel();
    [[nodiscard]] bool running() const { return node_ != nullptr; }
    [[nodiscard]] Time period() const { return period_; }

private:
    friend class Simulator;
    void fire(Simulator::Node* node);

    Simulator& sim_;
    Time period_;
    InlineCallback tick_;
    Simulator::Node* node_ = nullptr;  // armed queue node, owned by sim_
};

// ---------------------------------------------------------------------------
// Inline hot path.  Everything executed once per event (node pool, push,
// find/pop, dispatch, run loop) lives here so the compiler can flatten the
// whole schedule→dispatch cycle; the cold paths (slab growth, window
// rebuilds, overflow migration, bitmap scans) stay in simulator.cpp.
// ---------------------------------------------------------------------------

inline Simulator::Node* Simulator::acquire_node() {
    if (free_list_ == nullptr) grow_slab();
    Node* node = free_list_;
    free_list_ = node->next_free;
    node->next_free = nullptr;
    return node;
}

inline void Simulator::release_node(Node* node) {
    node->callback.reset();
    node->state.reset();
    node->periodic = nullptr;
    node->next_free = free_list_;
    free_list_ = node;
}

inline void Simulator::wheel_insert(std::uint64_t id, const Entry& entry) {
    const std::size_t idx = static_cast<std::size_t>(id) & kBucketMask;
    Bucket& b = buckets_[idx];
    if (b.entries.empty()) {
        occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        b.sorted = true;
        b.entries.push_back(entry);
    } else if (b.sorted) {
        // Keep ascending (when, seq) order.  New events carry the highest
        // seq so far, so unless an earlier-than-tail time arrives this is
        // a plain append.
        if (entry_less(b.entries.back(), entry)) {
            b.entries.push_back(entry);
        } else {
            auto it = std::upper_bound(b.entries.begin() + static_cast<std::ptrdiff_t>(b.head),
                                       b.entries.end(), entry, &entry_less);
            b.entries.insert(it, entry);
        }
    } else {
        b.entries.push_back(entry);
    }
    ++wheel_count_;
}

inline void Simulator::push_entry(Time when, Node* node) {
    const Entry entry{when, next_seq_++, node};
    if (size_ == 0) cur_bucket_id_ = bucket_id(now_);  // wheel is empty: re-anchor
    ++size_;
    const std::uint64_t id = bucket_id(when);
    if (id - cur_bucket_id_ < kNumBuckets) {  // unsigned: also false when id < cursor
        wheel_insert(id, entry);
    } else if (id >= cur_bucket_id_) {
        overflow_.push(entry);
    } else {
        // The cursor ran ahead (the previous minimum was far in the
        // future); rebuild the window around the new earliest event.
        rebuild_window(id, entry);
    }
}

inline void Simulator::emplace_post(Time when, InlineCallback&& callback) {
    WLANPS_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
    WLANPS_REQUIRE_MSG(static_cast<bool>(callback), "null callback");
    Node* node = acquire_node();
    node->callback = std::move(callback);
    push_entry(when, node);
}

inline void Simulator::post_at(Time when, InlineCallback callback) {
    emplace_post(when, std::move(callback));
}

inline void Simulator::post_in(Time delay, InlineCallback callback) {
    WLANPS_REQUIRE_MSG(!delay.is_negative(), "negative delay");
    emplace_post(now_ + delay, std::move(callback));
}

inline Simulator::Entry* Simulator::find_min() {
    for (;;) {
        if (wheel_count_ == 0) {
            // Everything queued sits in the overflow ladder: jump the
            // window to its minimum and migrate what now fits.
            cur_bucket_id_ = bucket_id(overflow_.top().when);
            migrate_overflow();
            continue;
        }
        Bucket& b = buckets_[static_cast<std::size_t>(cur_bucket_id_) & kBucketMask];
        if (b.head < b.entries.size()) {
            if (!b.sorted) {
                std::sort(b.entries.begin(), b.entries.end(), &entry_less);
                b.sorted = true;
#if defined(WLANPS_OBS_ENABLED)
                if (profile_ != nullptr) profile_->on_bucket_sorted(b.entries.size());
#endif
            }
            return &b.entries[b.head];
        }
        advance_cursor();
    }
}

inline void Simulator::pop_min() {
    const std::size_t idx = static_cast<std::size_t>(cur_bucket_id_) & kBucketMask;
    Bucket& b = buckets_[idx];
    ++b.head;
    --wheel_count_;
    --size_;
    if (b.head == b.entries.size()) {
        b.entries.clear();
        b.head = 0;
        b.sorted = false;
        occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }
}

inline bool Simulator::dispatch_next(Time horizon) {
    while (size_ > 0) {
        Entry* min = find_min();
        if (min->when > horizon) return false;
        Node* node = min->node;
        const Time when = min->when;
        pop_min();
        if (node->periodic != nullptr) {
            // Periodic path: the node is re-armed in place by fire(); no
            // release, no re-acquire, no callback relocation.
            PeriodicEvent* periodic = node->periodic;
            now_ = when;
            ++dispatched_;
#if defined(WLANPS_OBS_ENABLED)
            if (profile_ != nullptr) {
                const std::uint64_t t0 = obs::KernelProfile::clock_ns();
                periodic->fire(node);
                profile_->on_dispatch(obs::DispatchTag::periodic,
                                      obs::KernelProfile::clock_ns() - t0);
                return true;
            }
#endif
            periodic->fire(node);
            return true;
        }
        if (node->state != nullptr) {
            // Handle path: honour cancellation, and move the callback out
            // of the shared state so the handle reads as no-longer-pending
            // while it runs, and self-rescheduling callbacks work.
            auto state = std::move(node->state);
            release_node(node);
            if (state->cancelled) {
                --cancelled_pending_;
#if defined(WLANPS_OBS_ENABLED)
                if (profile_ != nullptr) profile_->on_cancelled_reaped();
#endif
                continue;
            }
            now_ = when;
            InlineCallback cb = std::move(state->callback);
            ++dispatched_;
#if defined(WLANPS_OBS_ENABLED)
            if (profile_ != nullptr) {
                const std::uint64_t t0 = obs::KernelProfile::clock_ns();
                cb();
                profile_->on_dispatch(obs::DispatchTag::handle,
                                      obs::KernelProfile::clock_ns() - t0);
                return true;
            }
#endif
            cb();
            return true;
        }
        if (!node->callback) {
            // Tombstone of a cancelled periodic event: reap and move on.
            release_node(node);
            --cancelled_pending_;
#if defined(WLANPS_OBS_ENABLED)
            if (profile_ != nullptr) profile_->on_cancelled_reaped();
#endif
            continue;
        }
        // Fast path: invoke in place — the node is off the free list while
        // the callback runs, so self-posting callbacks are safe, and the
        // callable is never relocated.
        now_ = when;
        ++dispatched_;
#if defined(WLANPS_OBS_ENABLED)
        if (profile_ != nullptr) {
            const std::uint64_t t0 = obs::KernelProfile::clock_ns();
            node->callback();
            profile_->on_dispatch(obs::DispatchTag::fast,
                                  obs::KernelProfile::clock_ns() - t0);
            release_node(node);
            return true;
        }
#endif
        node->callback();
        release_node(node);
        return true;
    }
    return false;
}

inline void Simulator::rearm_periodic(Node* node, Time when) { push_entry(when, node); }

inline void Simulator::run() {
    stop_requested_ = false;
    while (!stop_requested_ && dispatch_next(Time::max())) {
    }
}

inline void Simulator::run_until(Time horizon) {
    WLANPS_REQUIRE_MSG(horizon >= now_, "horizon in the past");
    stop_requested_ = false;
    while (!stop_requested_ && dispatch_next(horizon)) {
    }
    if (!stop_requested_ && now_ < horizon) now_ = horizon;
}

inline bool Simulator::step() { return dispatch_next(Time::max()); }

}  // namespace wlanps::sim
