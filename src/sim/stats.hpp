#pragma once
/// \file stats.hpp
/// Statistics accumulators used by meters, benches, and tests.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace wlanps::sim {

/// Streaming mean/variance/min/max (Welford's algorithm — numerically
/// stable, O(1) memory).
class Accumulator {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] bool empty() const { return n_ == 0; }
    [[nodiscard]] double sum() const { return sum_; }
    /// Mean of the samples.  Requires at least one sample.
    [[nodiscard]] double mean() const;
    /// Unbiased sample variance.  Requires at least two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

    void reset() { *this = Accumulator{}; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal — the right way to
/// compute "average power" from a power-state timeline.
class TimeWeighted {
public:
    /// Record that the signal has value \p value starting at \p when.
    /// Calls must be non-decreasing in time.
    void set(Time when, double value);

    /// Integral of the signal over [start, when] divided by elapsed time.
    [[nodiscard]] double average(Time when) const;

    /// Integral of the signal over [start, when] (e.g. energy in joules
    /// when the signal is power in watts).
    [[nodiscard]] double integral(Time when) const;

    [[nodiscard]] double current() const { return value_; }
    [[nodiscard]] bool started() const { return started_; }

private:
    bool started_ = false;
    Time start_ = Time::zero();
    Time last_ = Time::zero();
    double value_ = 0.0;
    double area_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.  Supports percentile queries.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    [[nodiscard]] std::size_t count() const { return total_; }
    [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] std::size_t bins() const { return counts_.size(); }
    /// Approximate p-th percentile (p in [0, 100]), linear within a bin.
    [[nodiscard]] double percentile(double p) const;

private:
    double lo_, hi_, width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/// Success/failure counter with ratio helpers (deadline misses, frame
/// errors, cache-style hit rates).
class RatioCounter {
public:
    void hit() { ++hits_; }
    void miss() { ++misses_; }
    void add(bool success) { success ? hit() : miss(); }

    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }
    [[nodiscard]] std::uint64_t total() const { return hits_ + misses_; }
    /// Fraction of successes; 0 when no samples.
    [[nodiscard]] double ratio() const {
        return total() == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total());
    }

private:
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace wlanps::sim
