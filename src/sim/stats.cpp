#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace wlanps::sim {

void Accumulator::add(double x) {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double Accumulator::mean() const {
    WLANPS_REQUIRE_MSG(n_ > 0, "mean of empty accumulator");
    return mean_;
}

double Accumulator::variance() const {
    WLANPS_REQUIRE_MSG(n_ > 1, "variance needs >= 2 samples");
    return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
    WLANPS_REQUIRE_MSG(n_ > 0, "min of empty accumulator");
    return min_;
}

double Accumulator::max() const {
    WLANPS_REQUIRE_MSG(n_ > 0, "max of empty accumulator");
    return max_;
}

void TimeWeighted::set(Time when, double value) {
    if (!started_) {
        started_ = true;
        start_ = last_ = when;
        value_ = value;
        return;
    }
    WLANPS_REQUIRE_MSG(when >= last_, "TimeWeighted updates must be time-ordered");
    area_ += value_ * (when - last_).to_seconds();
    last_ = when;
    value_ = value;
}

double TimeWeighted::integral(Time when) const {
    if (!started_) return 0.0;
    WLANPS_REQUIRE(when >= last_);
    return area_ + value_ * (when - last_).to_seconds();
}

double TimeWeighted::average(Time when) const {
    if (!started_ || when <= start_) return value_;
    return integral(when) / (when - start_).to_seconds();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    WLANPS_REQUIRE(hi > lo);
    WLANPS_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::percentile(double p) const {
    WLANPS_REQUIRE(p >= 0.0 && p <= 100.0);
    WLANPS_REQUIRE_MSG(total_ > 0, "percentile of empty histogram");
    const double target = p / 100.0 * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target) {
            const double frac = counts_[i] == 0
                                    ? 0.0
                                    : (target - cum) / static_cast<double>(counts_[i]);
            return lo_ + (static_cast<double>(i) + frac) * width_;
        }
        cum = next;
    }
    return hi_;
}

}  // namespace wlanps::sim
