#include "sim/simulator.hpp"

#include <utility>

#include "sim/assert.hpp"

namespace wlanps::sim {

bool EventHandle::pending() const { return state_ && !state_->cancelled && state_->callback; }

void EventHandle::cancel() {
    if (state_) state_->cancelled = true;
}

Simulator::Node* Simulator::acquire_node() {
    if (free_list_ == nullptr) {
        slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
        Node* slab = slabs_.back().get();
        // Chain the fresh slab onto the free list, preserving index order
        // (cosmetic: keeps node reuse patterns predictable in a debugger).
        for (std::size_t i = kSlabSize; i-- > 0;) {
            slab[i].next_free = free_list_;
            free_list_ = &slab[i];
        }
    }
    Node* node = free_list_;
    free_list_ = node->next_free;
    node->next_free = nullptr;
    return node;
}

void Simulator::release_node(Node* node) {
    node->callback = nullptr;
    node->state.reset();
    node->next_free = free_list_;
    free_list_ = node;
}

void Simulator::push_entry(Time when, Node* node) {
    queue_.push(Entry{when, next_seq_++, node});
}

EventHandle Simulator::schedule_at(Time when, std::function<void()> callback) {
    WLANPS_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
    WLANPS_REQUIRE(callback != nullptr);
    auto state = std::make_shared<EventHandle::State>();
    state->callback = std::move(callback);
    Node* node = acquire_node();
    node->state = state;
    push_entry(when, node);
    return EventHandle(std::move(state));
}

EventHandle Simulator::schedule_in(Time delay, std::function<void()> callback) {
    WLANPS_REQUIRE_MSG(!delay.is_negative(), "negative delay");
    return schedule_at(now_ + delay, std::move(callback));
}

void Simulator::post_at(Time when, std::function<void()> callback) {
    WLANPS_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
    WLANPS_REQUIRE(callback != nullptr);
    Node* node = acquire_node();
    node->callback = std::move(callback);
    push_entry(when, node);
}

void Simulator::post_in(Time delay, std::function<void()> callback) {
    WLANPS_REQUIRE_MSG(!delay.is_negative(), "negative delay");
    post_at(now_ + delay, std::move(callback));
}

bool Simulator::dispatch_next(Time horizon) {
    while (!queue_.empty()) {
        Entry top = queue_.top();
        if (top.when > horizon) return false;
        queue_.pop();
        Node* node = top.node;
        if (node->state != nullptr) {
            // Handle path: honour cancellation, and move the callback out
            // of the shared state so the handle reads as no-longer-pending
            // while it runs, and self-rescheduling callbacks work.
            auto state = std::move(node->state);
            release_node(node);
            if (state->cancelled) continue;
            now_ = top.when;
            auto cb = std::move(state->callback);
            state->callback = nullptr;
            ++dispatched_;
            cb();
            return true;
        }
        // Fast path: the callback lives in the node itself; recycle the
        // node before invoking so self-posting callbacks reuse it.
        now_ = top.when;
        auto cb = std::move(node->callback);
        release_node(node);
        ++dispatched_;
        cb();
        return true;
    }
    return false;
}

void Simulator::run() {
    stop_requested_ = false;
    while (!stop_requested_ && dispatch_next(Time::max())) {
    }
}

void Simulator::run_until(Time horizon) {
    WLANPS_REQUIRE_MSG(horizon >= now_, "horizon in the past");
    stop_requested_ = false;
    while (!stop_requested_ && dispatch_next(horizon)) {
    }
    if (!stop_requested_ && now_ < horizon) now_ = horizon;
}

bool Simulator::step() {
    return dispatch_next(Time::max());
}

PeriodicEvent::PeriodicEvent(Simulator& sim, Time period, std::function<void()> tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
    WLANPS_REQUIRE_MSG(period_ > Time::zero(), "period must be positive");
    WLANPS_REQUIRE(tick_ != nullptr);
}

PeriodicEvent::~PeriodicEvent() { cancel(); }

void PeriodicEvent::start() { start_at(sim_.now() + period_); }

void PeriodicEvent::start_at(Time first_tick) {
    cancel();
    handle_ = sim_.schedule_at(first_tick, [this] { fire(); });
}

void PeriodicEvent::cancel() { handle_.cancel(); }

void PeriodicEvent::fire() {
    // Reschedule before invoking the tick, so a tick that cancels the
    // periodic activity wins over the automatic rescheduling.
    handle_ = sim_.schedule_in(period_, [this] { fire(); });
    tick_();
}

}  // namespace wlanps::sim
