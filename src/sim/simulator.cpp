#include "sim/simulator.hpp"

#include <bit>
#include <utility>

#include "sim/assert.hpp"

namespace wlanps::sim {

bool EventHandle::pending() const {
    return state_ && !state_->cancelled && static_cast<bool>(state_->callback);
}

void EventHandle::cancel() {
    if (!state_ || state_->cancelled) return;
    state_->cancelled = true;
    // Only count a tombstone if the event is still queued (the callback is
    // moved out of the state right before it runs).
    if (state_->callback && state_->owner != nullptr) state_->owner->note_handle_cancelled();
}

void Simulator::grow_slab() {
    slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
    Node* slab = slabs_.back().get();
    // Chain the fresh slab onto the free list, preserving index order
    // (cosmetic: keeps node reuse patterns predictable in a debugger).
    for (std::size_t i = kSlabSize; i-- > 0;) {
        slab[i].next_free = free_list_;
        free_list_ = &slab[i];
    }
}

void Simulator::spill_wheel_to_overflow() {
    for (Bucket& b : buckets_) {
        for (std::size_t i = b.head; i < b.entries.size(); ++i) overflow_.push(b.entries[i]);
        b.entries.clear();
        b.head = 0;
        b.sorted = false;
    }
    occupied_.fill(0);
    wheel_count_ = 0;
}

void Simulator::migrate_overflow() {
    const std::uint64_t end = cur_bucket_id_ + kNumBuckets;
    while (!overflow_.empty()) {
        const Entry& top = overflow_.top();
        const std::uint64_t id = bucket_id(top.when);
        if (id >= end) break;
        wheel_insert(id, top);
        overflow_.pop();
    }
}

void Simulator::rebuild_window(std::uint64_t id, const Entry& entry) {
    spill_wheel_to_overflow();
    cur_bucket_id_ = id;
    wheel_insert(id, entry);
    migrate_overflow();
}

void Simulator::advance_cursor() {
    cur_bucket_id_ += next_occupied_delta();
    migrate_overflow();
}

std::size_t Simulator::next_occupied_delta() const {
    // Distance (in buckets, >= 1) from the cursor to the next nonempty
    // bucket, scanning the occupancy bitmap circularly word by word.
    const std::size_t base = static_cast<std::size_t>(cur_bucket_id_) & kBucketMask;
    const std::size_t first = (base + 1) & kBucketMask;
    std::uint64_t mask = ~std::uint64_t{0} << (first & 63);
    std::size_t word = first >> 6;
    for (std::size_t i = 0; i <= kBitmapWords; ++i) {
        const std::uint64_t bits = occupied_[word] & mask;
        if (bits != 0) {
            const std::size_t found =
                (word << 6) | static_cast<std::size_t>(std::countr_zero(bits));
            const std::size_t delta = (found - base) & kBucketMask;
            if (delta != 0) return delta;
        }
        mask = ~std::uint64_t{0};
        word = (word + 1) & (kBitmapWords - 1);
    }
    return kNumBuckets;  // unreachable while wheel_count_ > 0
}

EventHandle Simulator::schedule_at(Time when, InlineCallback callback) {
    WLANPS_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
    WLANPS_REQUIRE_MSG(static_cast<bool>(callback), "null callback");
    auto state = std::make_shared<EventHandle::State>();
    state->callback = std::move(callback);
    state->owner = this;
    Node* node = acquire_node();
    node->state = state;
    push_entry(when, node);
    return EventHandle(std::move(state));
}

EventHandle Simulator::schedule_in(Time delay, InlineCallback callback) {
    WLANPS_REQUIRE_MSG(!delay.is_negative(), "negative delay");
    return schedule_at(now_ + delay, std::move(callback));
}

Simulator::Node* Simulator::arm_periodic(Time when, PeriodicEvent* owner) {
    WLANPS_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
    Node* node = acquire_node();
    node->periodic = owner;
    push_entry(when, node);
    return node;
}

void Simulator::cancel_periodic(Node* node) {
    node->periodic = nullptr;
    ++cancelled_pending_;
}

PeriodicEvent::PeriodicEvent(Simulator& sim, Time period, InlineCallback tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
    WLANPS_REQUIRE_MSG(period_ > Time::zero(), "period must be positive");
    WLANPS_REQUIRE(static_cast<bool>(tick_));
}

PeriodicEvent::~PeriodicEvent() { cancel(); }

void PeriodicEvent::start() { start_at(sim_.now() + period_); }

void PeriodicEvent::start_at(Time first_tick) {
    cancel();
    node_ = sim_.arm_periodic(first_tick, this);
}

void PeriodicEvent::cancel() {
    if (node_ != nullptr) {
        sim_.cancel_periodic(node_);
        node_ = nullptr;
    }
}

void PeriodicEvent::fire(Simulator::Node* node) {
    // Re-arm before invoking the tick, so a tick that cancels the periodic
    // activity wins over the automatic rescheduling.
    sim_.rearm_periodic(node, sim_.now() + period_);
    tick_();
}

}  // namespace wlanps::sim
