#pragma once
/// \file units.hpp
/// Strong types for data size, data rate, power, and energy.
///
/// Interfaces across the library exchange DataSize/Rate/Power/Energy
/// instead of raw numbers, so "bits vs. bytes", "kb/s vs. kB/s", and
/// "watts vs. joules" mistakes become type errors (C++ Core Guidelines
/// P.1/I.4).  The power/energy types live in namespace wlanps::power to
/// keep existing call sites (power::Power, power::Energy) unchanged.

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace wlanps {

/// An amount of data, stored in bits (WLAN MAC/PHY math is bit-oriented).
class DataSize {
public:
    constexpr DataSize() = default;

    [[nodiscard]] static constexpr DataSize from_bits(std::int64_t bits) { return DataSize(bits); }
    [[nodiscard]] static constexpr DataSize from_bytes(std::int64_t bytes) { return DataSize(bytes * 8); }
    [[nodiscard]] static constexpr DataSize from_kilobytes(double kb) {
        return DataSize(static_cast<std::int64_t>(kb * 8 * 1024 + 0.5));
    }
    [[nodiscard]] static constexpr DataSize zero() { return DataSize(0); }

    [[nodiscard]] constexpr std::int64_t bits() const { return bits_; }
    [[nodiscard]] constexpr std::int64_t bytes() const { return bits_ / 8; }
    [[nodiscard]] constexpr double kilobytes() const { return static_cast<double>(bits_) / (8.0 * 1024.0); }
    [[nodiscard]] constexpr bool is_zero() const { return bits_ == 0; }

    constexpr auto operator<=>(const DataSize&) const = default;

    constexpr DataSize& operator+=(DataSize rhs) { bits_ += rhs.bits_; return *this; }
    constexpr DataSize& operator-=(DataSize rhs) { bits_ -= rhs.bits_; return *this; }

    friend constexpr DataSize operator+(DataSize a, DataSize b) { return DataSize(a.bits_ + b.bits_); }
    friend constexpr DataSize operator-(DataSize a, DataSize b) { return DataSize(a.bits_ - b.bits_); }
    friend constexpr DataSize operator*(DataSize a, double k) {
        return DataSize(static_cast<std::int64_t>(static_cast<double>(a.bits_) * k + 0.5));
    }
    friend constexpr double operator/(DataSize a, DataSize b) {
        return static_cast<double>(a.bits_) / static_cast<double>(b.bits_);
    }

    [[nodiscard]] std::string str() const;

private:
    constexpr explicit DataSize(std::int64_t bits) : bits_(bits) {}
    std::int64_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, DataSize s);

/// A data rate in bits per second.
class Rate {
public:
    constexpr Rate() = default;

    [[nodiscard]] static constexpr Rate from_bps(double bps) { return Rate(bps); }
    [[nodiscard]] static constexpr Rate from_kbps(double kbps) { return Rate(kbps * 1e3); }
    [[nodiscard]] static constexpr Rate from_mbps(double mbps) { return Rate(mbps * 1e6); }
    [[nodiscard]] static constexpr Rate zero() { return Rate(0.0); }

    [[nodiscard]] constexpr double bps() const { return bps_; }
    [[nodiscard]] constexpr double kbps() const { return bps_ / 1e3; }
    [[nodiscard]] constexpr double mbps() const { return bps_ / 1e6; }
    [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0.0; }

    constexpr auto operator<=>(const Rate&) const = default;

    /// Time to move \p size at this rate.  Rate must be positive.
    [[nodiscard]] Time transmit_time(DataSize size) const {
        WLANPS_REQUIRE_MSG(bps_ > 0.0, "transmit_time on zero rate");
        return Time::from_seconds(static_cast<double>(size.bits()) / bps_);
    }

    /// Data moved in \p duration at this rate.
    [[nodiscard]] DataSize data_in(Time duration) const {
        return DataSize::from_bits(static_cast<std::int64_t>(bps_ * duration.to_seconds() + 0.5));
    }

    constexpr Rate& operator+=(Rate rhs) { bps_ += rhs.bps_; return *this; }
    friend constexpr Rate operator*(Rate r, double k) { return Rate(r.bps_ * k); }
    friend constexpr Rate operator+(Rate a, Rate b) { return Rate(a.bps_ + b.bps_); }
    friend constexpr double operator/(Rate a, Rate b) { return a.bps_ / b.bps_; }

    [[nodiscard]] std::string str() const;

private:
    constexpr explicit Rate(double bps) : bps_(bps) {}
    double bps_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, Rate r);

namespace power {

class Energy;

/// Electrical power in watts.
class Power {
public:
    constexpr Power() = default;

    [[nodiscard]] static constexpr Power from_watts(double w) { return Power(w); }
    [[nodiscard]] static constexpr Power from_milliwatts(double mw) { return Power(mw / 1e3); }
    [[nodiscard]] static constexpr Power zero() { return Power(0.0); }

    [[nodiscard]] constexpr double watts() const { return watts_; }
    [[nodiscard]] constexpr double milliwatts() const { return watts_ * 1e3; }
    [[nodiscard]] constexpr bool is_zero() const { return watts_ == 0.0; }

    constexpr auto operator<=>(const Power&) const = default;

    constexpr Power& operator+=(Power rhs) { watts_ += rhs.watts_; return *this; }
    friend constexpr Power operator+(Power a, Power b) { return Power(a.watts_ + b.watts_); }
    friend constexpr Power operator-(Power a, Power b) { return Power(a.watts_ - b.watts_); }
    friend constexpr Power operator*(Power p, double k) { return Power(p.watts_ * k); }
    friend constexpr Power operator*(double k, Power p) { return p * k; }
    friend constexpr double operator/(Power a, Power b) { return a.watts_ / b.watts_; }

    /// Energy consumed drawing this power for \p duration.
    [[nodiscard]] constexpr Energy over(Time duration) const;

    [[nodiscard]] std::string str() const;

private:
    constexpr explicit Power(double w) : watts_(w) {}
    double watts_ = 0.0;
};

/// Energy in joules.
class Energy {
public:
    constexpr Energy() = default;

    [[nodiscard]] static constexpr Energy from_joules(double j) { return Energy(j); }
    [[nodiscard]] static constexpr Energy from_millijoules(double mj) { return Energy(mj / 1e3); }
    /// Battery-style capacity: milliamp-hours at a nominal voltage.
    [[nodiscard]] static constexpr Energy from_mah(double mah, double volts) {
        return Energy(mah * 3.6 * volts);
    }
    [[nodiscard]] static constexpr Energy zero() { return Energy(0.0); }

    [[nodiscard]] constexpr double joules() const { return joules_; }
    [[nodiscard]] constexpr double millijoules() const { return joules_ * 1e3; }
    [[nodiscard]] constexpr bool is_zero() const { return joules_ == 0.0; }

    constexpr auto operator<=>(const Energy&) const = default;

    constexpr Energy& operator+=(Energy rhs) { joules_ += rhs.joules_; return *this; }
    constexpr Energy& operator-=(Energy rhs) { joules_ -= rhs.joules_; return *this; }
    friend constexpr Energy operator+(Energy a, Energy b) { return Energy(a.joules_ + b.joules_); }
    friend constexpr Energy operator-(Energy a, Energy b) { return Energy(a.joules_ - b.joules_); }
    friend constexpr Energy operator*(Energy e, double k) { return Energy(e.joules_ * k); }
    friend constexpr double operator/(Energy a, Energy b) { return a.joules_ / b.joules_; }

    /// Average power when spread over \p duration (> 0).
    [[nodiscard]] Power average_over(Time duration) const {
        return Power::from_watts(joules_ / duration.to_seconds());
    }

    [[nodiscard]] std::string str() const;

private:
    constexpr explicit Energy(double j) : joules_(j) {}
    double joules_ = 0.0;
};

constexpr Energy Power::over(Time duration) const {
    return Energy::from_joules(watts_ * duration.to_seconds());
}

std::ostream& operator<<(std::ostream& os, Power p);
std::ostream& operator<<(std::ostream& os, Energy e);

}  // namespace power

}  // namespace wlanps
