#pragma once
/// \file callback.hpp
/// Non-allocating event callback.
///
/// InlineCallback is the kernel's replacement for std::function<void()>:
/// the callable lives in a fixed 64-byte in-place buffer, so scheduling an
/// event never heap-allocates no matter what the capture list looks like.
/// Oversized captures fail at the call site with a static_assert instead
/// of silently degrading to a heap allocation; box large state in a
/// shared_ptr/unique_ptr (16 bytes inline) if you genuinely need more.
///
/// Move-only: moving transfers the callable between buffers via a per-type
/// manager function, so the event queue can shuffle callbacks without
/// knowing their concrete types.

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace wlanps::sim {

class InlineCallback {
public:
    /// In-place storage for the callable (captures included).
    static constexpr std::size_t kStorageBytes = 64;

    InlineCallback() = default;
    InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

    /// Wrap any void() callable.  Implicit, so lambdas flow into
    /// post_at(when, [..]{..}) exactly as they did with std::function.
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineCallback> &&
                                          std::is_invocable_r_v<void, std::decay_t<F>&>>>
    InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kStorageBytes,
                      "callback capture exceeds InlineCallback's 64-byte inline storage; "
                      "capture fewer values or box large state in a shared_ptr/unique_ptr");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "callback requires stricter alignment than InlineCallback provides");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callback must be nothrow-move-constructible (the queue relocates it)");
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
        invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
        // Trivially copyable callables (the vast majority of captures:
        // pointers, references, PODs) need no manager: moves are a plain
        // buffer copy and destruction is a no-op.
        if constexpr (std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>) {
            manager_ = nullptr;
        } else {
            manager_ = &manage<Fn>;
        }
    }

    InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
    InlineCallback& operator=(InlineCallback&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }
    InlineCallback& operator=(std::nullptr_t) {
        reset();
        return *this;
    }
    InlineCallback(const InlineCallback&) = delete;
    InlineCallback& operator=(const InlineCallback&) = delete;
    ~InlineCallback() { reset(); }

    /// True if a callable is stored.
    explicit operator bool() const { return invoke_ != nullptr; }

    /// Invoke the stored callable.  Precondition: bool(*this).
    void operator()() { invoke_(storage_); }

    /// Destroy the stored callable (if any) and become null.
    void reset() {
        if (manager_ != nullptr) manager_(Op::destroy, storage_, nullptr);
        invoke_ = nullptr;
        manager_ = nullptr;
    }

private:
    enum class Op { destroy, relocate };
    using Invoke = void (*)(void*);
    using Manager = void (*)(Op, void* self, void* dst);

    template <typename Fn>
    static void manage(Op op, void* self, void* dst) {
        auto* fn = static_cast<Fn*>(self);
        if (op == Op::relocate) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
    }

    void move_from(InlineCallback& other) noexcept {
        if (other.manager_ != nullptr) {
            other.manager_(Op::relocate, other.storage_, storage_);
        } else if (other.invoke_ != nullptr) {
            std::memcpy(storage_, other.storage_, kStorageBytes);
        }
        invoke_ = other.invoke_;
        manager_ = other.manager_;
        other.invoke_ = nullptr;
        other.manager_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage_[kStorageBytes];
    Invoke invoke_ = nullptr;
    Manager manager_ = nullptr;
};

}  // namespace wlanps::sim
