#pragma once
/// \file sampler.hpp
/// Sim-time gauge sampler: polls a set of read-only probes at a fixed
/// simulated interval and accumulates (time, value) series suitable for
/// Chrome-trace counter tracks (queue depth, per-client battery, energy
/// rate, live clients, ...).
///
/// Probes must be pure observers of simulation state — they run inside
/// the event loop, so a probe that mutates the world or draws randomness
/// would perturb the run.  The sampler itself only appends to its own
/// series; scheduling rides a PeriodicEvent, so relative ordering of the
/// workload's own events is preserved and results stay deterministic.

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wlanps::sim {

class SimSampler {
public:
    struct Series {
        std::string name;
        std::vector<std::pair<Time, double>> samples;
    };

    SimSampler(Simulator& sim, Time interval);

    /// Register a probe before start(); sampled in registration order.
    void add_track(std::string name, std::function<double()> probe);

    /// Take an immediate sample, then one every interval.
    void start();
    void stop();

    [[nodiscard]] const std::vector<Series>& series() const { return series_; }
    [[nodiscard]] Time interval() const { return ticker_.period(); }

private:
    void sample();

    Simulator& sim_;
    std::vector<std::function<double()>> probes_;
    std::vector<Series> series_;
    PeriodicEvent ticker_;
};

}  // namespace wlanps::sim
