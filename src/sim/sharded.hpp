#pragma once
/// \file sharded.hpp
/// Conservative parallel discrete-event execution.
///
/// A ShardedSimulator partitions a simulated world across N shards, each
/// owning a private Simulator (its own calendar queue, slab pool, and —
/// by convention — RNG streams), and advances them in lockstep quanta.
/// Cross-shard events travel through fixed-capacity mailboxes that are
/// flushed at quantum boundaries in deterministic (time, source shard,
/// sender sequence) order, so the execution is bit-reproducible at every
/// worker-thread count, including the inline threads=0 reference.
///
/// Two synchronization policies (DESIGN.md §12):
///   * strict_barrier — quantum = the declared cross-shard lookahead.  A
///     message sent at local time t carries a timestamp >= t + lookahead,
///     which is >= the end of the sending quantum, so flushing inboxes at
///     the next quantum start never delivers into a shard's past: the
///     parallel run dispatches exactly the events, in exactly the order,
///     of the sequential (threads=0) execution of the same sharded world.
///   * lax_window — quantum = a clock-skew window wider than the
///     lookahead.  Fewer barriers (window/lookahead x), but a message may
///     arrive after its timestamp; it is then bumped to the receiving
///     shard's current time (a quantum boundary, hence still
///     deterministic), introducing a bounded timestamp error
///     <= window - lookahead that is measured and published.
///
/// The kernel is workload-agnostic: core/sharded_hotspot.cpp builds the
/// multi-cell hotspot scenario on top of it.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/shard_telemetry.hpp"
#include "sim/callback.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wlanps::obs {
struct HealthReport;
}  // namespace wlanps::obs

namespace wlanps::sim {

/// How shard clocks are kept consistent.
enum class SyncPolicy {
    strict_barrier,  ///< quantum = lookahead; bit-identical to sequential
    lax_window,      ///< quantum = skew window; bounded timestamp error
};

[[nodiscard]] const char* to_string(SyncPolicy policy);

/// Sharded-execution parameters.
struct ShardedConfig {
    std::size_t shards = 1;
    /// Worker threads.  0 = run every quantum inline on the calling
    /// thread, shards in index order — the sequential reference execution
    /// the strict policy is bit-identical to.
    std::size_t threads = 0;
    SyncPolicy policy = SyncPolicy::strict_barrier;
    /// Minimum delay of any cross-shard event, measured from the sender's
    /// local clock at post time.  Also the strict-mode quantum.
    Time lookahead = Time::from_ms(10);
    /// Lax-mode quantum (ignored under strict_barrier).  Zero = lookahead,
    /// which makes lax execution coincide with strict.
    Time skew_window = Time::zero();
    /// Per-shard mailbox capacity; exceeding it is a contract violation
    /// (deterministic, not a silent drop).
    std::size_t mailbox_capacity = 4096;

    ShardedConfig& with_shards(std::size_t v) { shards = v; return *this; }
    ShardedConfig& with_threads(std::size_t v) { threads = v; return *this; }
    ShardedConfig& with_policy(SyncPolicy v) { policy = v; return *this; }
    ShardedConfig& with_lookahead(Time v) { lookahead = v; return *this; }
    ShardedConfig& with_skew_window(Time v) { skew_window = v; return *this; }
    ShardedConfig& with_mailbox_capacity(std::size_t v) { mailbox_capacity = v; return *this; }

    /// The quantum the sync loop actually uses.
    [[nodiscard]] Time quantum() const {
        if (policy == SyncPolicy::lax_window && !skew_window.is_zero()) return skew_window;
        return lookahead;
    }

    void validate() const;
};

/// Per-shard accounting, stable across thread counts.
struct ShardStats {
    std::uint64_t events_dispatched = 0;
    std::uint64_t cross_sent = 0;      ///< cross-shard events this shard posted
    std::uint64_t cross_received = 0;  ///< cross-shard events flushed into it
    std::uint64_t cross_late = 0;      ///< lax: arrivals bumped to the quantum start
    std::size_t mailbox_peak = 0;      ///< high-water inbox depth
    std::int64_t max_skew_ns = 0;      ///< lax: worst timestamp bump
};

/// N private Simulators in barrier-quantum lockstep.  Not copyable.
///
/// Threading contract: between run_until() calls (and during construction
/// and teardown) every shard may be touched from the owning thread only.
/// During a run, shard i's Simulator is driven exclusively by one worker
/// (a fixed shard->worker map), and the only cross-thread channel is
/// post_cross(), which is safe to call from any shard's event callbacks.
class ShardedSimulator {
public:
    explicit ShardedSimulator(ShardedConfig config);
    ~ShardedSimulator();
    ShardedSimulator(const ShardedSimulator&) = delete;
    ShardedSimulator& operator=(const ShardedSimulator&) = delete;

    [[nodiscard]] const ShardedConfig& config() const { return config_; }
    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

    /// Shard i's private kernel.  Build shard-local components against
    /// this exactly as against a standalone Simulator.
    [[nodiscard]] Simulator& shard(std::size_t i);

    /// Global synchronized time: the last completed quantum boundary
    /// (every shard's local now() equals this between quanta).
    [[nodiscard]] Time now() const { return now_; }

    /// Route \p callback to shard \p to, firing at \p when on its clock.
    /// \p when must be >= shard \p from's now() + lookahead when the
    /// shards differ (the conservative-sync contract); same-shard posts
    /// are a plain local post_at.  Callable from shard \p from's event
    /// callbacks while a run is in progress, or from the owning thread
    /// between runs.
    void post_cross(std::size_t from, std::size_t to, Time when, InlineCallback callback);

    /// Advance every shard to \p horizon in lockstep quanta.  Afterwards
    /// each shard's now() == horizon.  Callbacks' exceptions propagate
    /// (first one wins under parallel execution).
    void run_until(Time horizon);

    // --- accounting -------------------------------------------------------
    [[nodiscard]] ShardStats stats(std::size_t i) const;
    [[nodiscard]] std::uint64_t quanta() const { return quanta_; }
    /// Quanta whose start was fast-forwarded over an empty window.
    [[nodiscard]] std::uint64_t idle_jumps() const { return idle_jumps_; }
    [[nodiscard]] std::uint64_t total_dispatched() const;
    /// Per-worker idle time at each quantum barrier (threads > 0 only).
    [[nodiscard]] const obs::Histogram& barrier_wait_ns() const { return barrier_wait_ns_; }

    /// Attach per-quantum attribution (obs/shard_telemetry.hpp).  The
    /// telemetry object must outlive every run_until(); recording sites
    /// compile to nothing unless the build sets WLANPS_OBS_ENABLED, so an
    /// attached telemetry stays empty in plain builds.  Pass nullptr to
    /// detach.  Call from the owning thread between runs.
    void attach_telemetry(obs::ShardTelemetry* telemetry) { telemetry_ = telemetry; }
    [[nodiscard]] obs::ShardTelemetry* telemetry() const { return telemetry_; }

    /// Fold sharded-execution metrics into \p registry:
    ///   sim.shard.dispatched (histogram across shards),
    ///   sim.shard.mailbox_depth_peak / .mailbox_depth (gauges),
    ///   sim.shard.cross_events / .cross_late / .quanta /
    ///   .idle_jumps (counters), sim.shard.skew_ns and — only with
    ///   \p include_timing — sim.shard.barrier_wait_ns (histograms).
    /// Call from the owning thread after run_until().
    void publish_metrics(obs::MetricsRegistry& registry, bool include_timing = true) const;

    /// Fill the kernel section of \p report: shard/worker/quantum counts,
    /// per-shard rollups (ShardStats always; telemetry lanes and the
    /// wall-clock timing section when telemetry ran), and the imbalance
    /// index — per-quantum when telemetry ran, whole-run otherwise.
    /// Call from the owning thread after run_until().
    void fill_health(obs::HealthReport& report) const;

private:
    struct CrossEvent {
        Time when;
        std::uint32_t src = 0;   // sending shard
        std::uint64_t seq = 0;   // per-sender monotonic
        InlineCallback callback;
    };

    /// Deterministic merge order for simultaneous cross-shard arrivals.
    [[nodiscard]] static bool cross_less(const CrossEvent& a, const CrossEvent& b) {
        if (a.when != b.when) return a.when < b.when;
        if (a.src != b.src) return a.src < b.src;
        return a.seq < b.seq;
    }

    struct Shard {
        Simulator sim;
        ShardStats stats;
        obs::Histogram skew_ns;  // lax: distribution of timestamp bumps
        std::uint64_t send_seq = 0;  // written only by the owning thread

        std::mutex inbox_mutex;
        std::vector<CrossEvent> inbox;       // guarded by inbox_mutex
        Time inbox_min = Time::max();        // guarded by inbox_mutex

        // Per-quantum telemetry staging, written by the shard's driver
        // during the quantum (the barrier's acq_rel handoff publishes it
        // to the coordinator) and read back after the barrier.  Only
        // touched when telemetry is attached in an obs build.
        std::uint64_t q_events = 0;
        std::uint64_t q_dispatch_ns = 0;
        std::uint64_t q_flush_ns = 0;
        std::uint64_t q_cross_base = 0;  // cross_received before this flush
    };

    void flush_inbox(Shard& sh);
    void run_one_shard(Shard& sh, Time quantum_end);
    void run_shard_span(std::size_t worker, Time quantum_end);
    void run_quantum(Time quantum_end);
    void record_quantum_telemetry();
    [[nodiscard]] Time next_work_time();
    void start_workers();
    void worker_loop(std::size_t worker);

    ShardedConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;
    Time now_ = Time::zero();
    std::uint64_t quanta_ = 0;
    std::uint64_t idle_jumps_ = 0;
    obs::Histogram barrier_wait_ns_;  // recorded by the owning thread
    obs::ShardTelemetry* telemetry_ = nullptr;  // optional, owned by the caller
    // Telemetry timing stride (obs builds): set by the coordinator at the
    // top of each quantum, read by shard drivers under the barrier's
    // happens-before.
    std::uint64_t quantum_seq_ = 0;
    bool time_this_quantum_ = false;

    // Worker pool (threads > 0), started lazily on the first run_until.
    std::size_t worker_count_ = 0;
    std::vector<std::thread> workers_;
    std::vector<std::uint64_t> worker_finish_ns_;
    std::mutex pool_mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;   // guarded by pool_mutex_
    Time quantum_target_;            // guarded by pool_mutex_
    bool shutdown_ = false;          // guarded by pool_mutex_
    std::atomic<std::size_t> remaining_{0};
    std::mutex error_mutex_;
    std::exception_ptr first_error_;  // guarded by error_mutex_
};

}  // namespace wlanps::sim
