#include "sim/units.hpp"

#include <cmath>
#include <cstdio>

#include "sim/time.hpp"

namespace wlanps {

namespace {
std::string format(double value, const char* unit) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.4g%s", value, unit);
    return buf;
}
}  // namespace

std::string Time::str() const {
    const double abs_ns = std::abs(static_cast<double>(ns_));
    if (abs_ns < 1e3) return format(static_cast<double>(ns_), "ns");
    if (abs_ns < 1e6) return format(to_us(), "us");
    if (abs_ns < 1e9) return format(to_ms(), "ms");
    return format(to_seconds(), "s");
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.str(); }

std::string DataSize::str() const {
    if (bits_ % 8 != 0) return format(static_cast<double>(bits_), "b");
    const auto b = static_cast<double>(bytes());
    if (b < 1024.0) return format(b, "B");
    if (b < 1024.0 * 1024.0) return format(b / 1024.0, "KB");
    return format(b / (1024.0 * 1024.0), "MB");
}

std::ostream& operator<<(std::ostream& os, DataSize s) { return os << s.str(); }

std::string Rate::str() const {
    if (bps_ < 1e3) return format(bps_, "b/s");
    if (bps_ < 1e6) return format(kbps(), "kb/s");
    return format(mbps(), "Mb/s");
}

std::ostream& operator<<(std::ostream& os, Rate r) { return os << r.str(); }

namespace power {

std::string Power::str() const {
    if (watts_ != 0.0 && watts_ < 0.1) return format(milliwatts(), "mW");
    return format(watts_, "W");
}

std::string Energy::str() const {
    if (joules_ != 0.0 && joules_ < 0.1) return format(millijoules(), "mJ");
    return format(joules_, "J");
}

std::ostream& operator<<(std::ostream& os, Power p) { return os << p.str(); }
std::ostream& operator<<(std::ostream& os, Energy e) { return os << e.str(); }

}  // namespace power

}  // namespace wlanps
