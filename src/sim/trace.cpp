#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sim/assert.hpp"

namespace wlanps::sim {

void TimelineTrace::set_state(Time when, std::string label, double level) {
    finish(when);
    open_ = true;
    open_begin_ = when;
    open_label_ = std::move(label);
    open_level_ = level;
}

void TimelineTrace::finish(Time when) {
    if (!open_) return;
    WLANPS_REQUIRE_MSG(when >= open_begin_, "trace updates must be time-ordered");
    if (when > open_begin_) {
        spans_.push_back(Span{open_begin_, when, open_label_, open_level_});
    }
    open_ = false;
}

double TimelineTrace::level_at(Time t) const {
    for (const Span& s : spans_) {
        if (t >= s.begin && t < s.end) return s.level;
    }
    if (open_ && t >= open_begin_) return open_level_;
    return 0.0;
}

std::string TimelineTrace::label_at(Time t) const {
    for (const Span& s : spans_) {
        if (t >= s.begin && t < s.end) return s.label;
    }
    if (open_ && t >= open_begin_) return open_label_;
    return {};
}

double TimelineTrace::max_level() const {
    double m = 0.0;
    for (const Span& s : spans_) m = std::max(m, s.level);
    if (open_) m = std::max(m, open_level_);
    return m;
}

void GanttChart::add_lane(std::string name, const TimelineTrace& trace) {
    lanes_.push_back(Lane{std::move(name), &trace});
}

namespace {
char glyph_for(double normalized) {
    if (normalized <= 0.0) return ' ';
    if (normalized < 0.10) return '.';
    if (normalized < 0.40) return '-';
    if (normalized < 0.80) return '=';
    return '#';
}
}  // namespace

std::string GanttChart::render(Time begin, Time end, int columns) const {
    WLANPS_REQUIRE(end > begin);
    WLANPS_REQUIRE(columns > 0);

    std::size_t name_width = 0;
    for (const Lane& lane : lanes_) name_width = std::max(name_width, lane.name.size());

    std::ostringstream out;
    const Time step = (end - begin) / static_cast<double>(columns);
    for (const Lane& lane : lanes_) {
        out << lane.name << std::string(name_width - lane.name.size(), ' ') << " |";
        const double peak = lane.trace->max_level();
        for (int c = 0; c < columns; ++c) {
            // Sample mid-column so narrow spans are not missed at edges.
            const Time t = begin + step * (static_cast<double>(c) + 0.5);
            const double level = lane.trace->level_at(t);
            out << glyph_for(peak > 0.0 ? level / peak : 0.0);
        }
        out << "|\n";
    }
    // Time axis.
    out << std::string(name_width, ' ') << " +" << std::string(static_cast<std::size_t>(columns), '-')
        << "+\n";
    out << std::string(name_width, ' ') << "  " << begin.str()
        << std::string(static_cast<std::size_t>(std::max(
               0, columns - static_cast<int>(begin.str().size() + end.str().size()))),
                       ' ')
        << end.str() << "\n";
    return out.str();
}

}  // namespace wlanps::sim
