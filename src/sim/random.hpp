#pragma once
/// \file random.hpp
/// Reproducible random-number source.
///
/// Every stochastic component takes a Random& (or derives a child stream),
/// so a simulation seeded once is fully deterministic and independent
/// components can use decorrelated streams.

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace wlanps::sim {

/// Seeded pseudo-random stream with the distributions the library needs.
class Random {
public:
    explicit Random(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /// Derive a decorrelated child stream (stable for a given parent seed
    /// and stream id) — e.g. one per client, one per channel.
    [[nodiscard]] Random fork(std::uint64_t stream_id) const {
        // SplitMix64 over (seed, id) gives well-scrambled child seeds.
        std::uint64_t z = seed_ ^ (stream_id + 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return Random(z ^ (z >> 31));
    }

    /// Uniform real in [0, 1).
    [[nodiscard]] double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

    /// Uniform real in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) {
        WLANPS_REQUIRE(lo <= hi);
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        WLANPS_REQUIRE(lo <= hi);
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Bernoulli trial with success probability \p p in [0, 1].
    [[nodiscard]] bool chance(double p) {
        WLANPS_REQUIRE(p >= 0.0 && p <= 1.0);
        return uniform() < p;
    }

    /// Exponential with mean \p mean (> 0).
    [[nodiscard]] double exponential(double mean) {
        WLANPS_REQUIRE(mean > 0.0);
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /// Exponential inter-arrival as a Time.
    [[nodiscard]] Time exponential_time(Time mean) {
        return Time::from_seconds(exponential(mean.to_seconds()));
    }

    /// Normal(mu, sigma).
    [[nodiscard]] double normal(double mu, double sigma) {
        WLANPS_REQUIRE(sigma >= 0.0);
        if (sigma == 0.0) return mu;
        return std::normal_distribution<double>(mu, sigma)(engine_);
    }

    /// Pareto with shape \p alpha (> 0) and minimum \p xm (> 0);
    /// heavy-tailed ON/OFF web traffic uses this.
    [[nodiscard]] double pareto(double alpha, double xm) {
        WLANPS_REQUIRE(alpha > 0.0 && xm > 0.0);
        double u;
        do { u = uniform(); } while (u == 0.0);
        return xm / std::pow(u, 1.0 / alpha);
    }

    /// Geometric number of Bernoulli(p) failures before the first success.
    [[nodiscard]] std::int64_t geometric(double p) {
        WLANPS_REQUIRE(p > 0.0 && p <= 1.0);
        return std::geometric_distribution<std::int64_t>(p)(engine_);
    }

    /// Pick an index in [0, weights.size()) with probability ∝ weights[i].
    [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

}  // namespace wlanps::sim
