#include "fed/federation.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "fed/ap_cell.hpp"
#include "obs/energy_ledger.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics_stream.hpp"
#include "phy/calibration.hpp"
#include "sim/assert.hpp"

namespace wlanps::fed {

namespace {

// Root fork ids for federation cells (piconets use 1000+, faults 900+).
constexpr std::uint64_t kCellStream = 2000;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ULL;
    }
    return h;
}

}  // namespace

/// Open metrics stream plus the series ids it registered.
class StreamState {
public:
    explicit StreamState(const std::string& path) : writer(path) {
        associated = writer.define_series("fed.associated");
        arrivals = writer.define_series("fed.arrivals");
        departures = writer.define_series("fed.departures");
        queue_depth = writer.define_series("fed.queue_depth");
    }

    obs::MetricsStreamWriter writer;
    std::uint32_t associated = 0;
    std::uint32_t arrivals = 0;
    std::uint32_t departures = 0;
    std::uint32_t queue_depth = 0;
};

Federation::Federation(const core::ScenarioSpec& spec)
    : Federation(spec, spec.stream().seed) {}

Federation::Federation(const core::ScenarioSpec& spec, std::uint64_t seed)
    : config_(spec.federation_config()), stream_(spec.stream()), label_(spec.label()) {
    WLANPS_REQUIRE_MSG(spec.policy() == core::Policy::federation,
                       "Federation requires a Policy::federation spec");
    stream_.seed = seed;
    sim::ShardedConfig kcfg;
    kcfg.shards = static_cast<std::size_t>(config_.shards);
    kcfg.threads = static_cast<std::size_t>(config_.threads);
    kcfg.policy = config_.lax ? sim::SyncPolicy::lax_window : sim::SyncPolicy::strict_barrier;
    kcfg.lookahead = config_.lookahead;
    kcfg.skew_window = config_.skew_window;
    build_cells();  // sizes the population the mailboxes must absorb
    // Worst case every client roams inside one quantum.
    kcfg.mailbox_capacity = std::max<std::size_t>(4096, population_);
    kernel_ = std::make_unique<sim::ShardedSimulator>(kcfg);
#if defined(WLANPS_OBS_ENABLED)
    // Per-quantum attribution whenever someone is listening (a scoped
    // registry or an explicit health file); unattached kernels skip the
    // timing reads entirely.
    if (obs::current() != nullptr || !config_.health_path.empty()) {
        telemetry_ = std::make_unique<obs::ShardTelemetry>(kcfg.shards);
        kernel_->attach_telemetry(telemetry_.get());
    }
#endif
    if (!config_.stream_path.empty()) {
        stream_state_ = std::make_unique<StreamState>(config_.stream_path);
    }
    plan_faults();
    for (auto& cell : cells_) cell->start();
}

Federation::~Federation() = default;

void Federation::build_cells() {
    sim::Random root(stream_.seed);
    const auto aps = static_cast<std::uint32_t>(config_.aps);
    cells_.reserve(aps);
    for (std::uint32_t ap = 0; ap < aps; ++ap) {
        cells_.push_back(std::make_unique<ApCell>(
            *this, static_cast<std::uint16_t>(ap), root.fork(kCellStream + ap)));
    }

    // Plan every cell's arrival schedule up front: arrival ids are dense
    // per-cell ranges fixed at build time, so id assignment never depends
    // on run-time thread interleaving.
    const double dur_s = stream_.duration.to_seconds();
    const double flash_s = std::min(config_.flash_duration.to_seconds(), dur_s);
    const double expected_per_cell =
        config_.base_arrival_hz * dur_s + config_.flash_arrival_hz * flash_s;
    const auto cap_per_cell = static_cast<std::size_t>(4.0 * expected_per_cell) + 64;

    const auto n0 = static_cast<std::uint32_t>(stream_.clients);
    std::uint32_t next_id = n0;
    for (auto& cell : cells_) {
        const std::size_t planned = cell->plan_arrivals(next_id, cap_per_cell);
        next_id += static_cast<std::uint32_t>(planned);
        arrivals_truncated_ += cell->truncated_arrivals();
    }
    population_ = next_id;
    slab_ = std::make_unique<ClientSlab>(std::max<std::size_t>(population_, 1));
    WLANPS_REQUIRE_MSG(config_.sample_stride >= 1, "sample_stride must be >= 1");
    const auto stride = static_cast<std::size_t>(config_.sample_stride);
    sampled_causes_.assign(population_ == 0 ? 0 : (population_ - 1) / stride + 1,
                           {0.0, 0.0, 0.0});

    // Initial population: round-robin home cells; delayed_registration
    // faults are consumed here as late-join times (fault-plan client ids
    // are 1-based).
    const auto& plan = stream_.fault_plan;
    for (std::uint32_t id = 0; id < n0; ++id) {
        const auto home = static_cast<std::uint16_t>(id % aps);
        slab_->home_ap[id] = home;
        slab_->current_ap[id].store(home, std::memory_order_relaxed);
        cells_[home]->add_initial(id, plan.registration_at(id + 1));
    }
    // Planned arrivals: home is the cell that drew them.
    for (std::uint32_t ap = 0; ap < aps; ++ap) {
        const ApCell& cell = *cells_[ap];
        for (std::size_t k = 0; k < cell.planned_at_.size(); ++k) {
            const std::uint32_t id = cell.first_id_ + static_cast<std::uint32_t>(k);
            slab_->home_ap[id] = static_cast<std::uint16_t>(ap);
            slab_->current_ap[id].store(static_cast<std::uint16_t>(ap),
                                        std::memory_order_relaxed);
        }
    }
}

void Federation::plan_faults() {
    for (const fault::FaultSpec& spec : stream_.fault_plan.specs()) {
        if (spec.kind == fault::FaultKind::delayed_registration) continue;  // at build
        const std::uint32_t row = spec.client == 0 ? 0 : spec.client - 1;
        if (spec.client != 0 && row >= population_) continue;  // no such client
        for (int k = 0; k < std::max(spec.repeat, 1); ++k) {
            const Time at = Time::from_ns(spec.at.ns() + spec.period.ns() * k);
            if (at >= stream_.duration) break;
            const Time until =
                spec.duration.is_zero() ? Time::max() : at + spec.duration;
            switch (spec.kind) {
                case fault::FaultKind::nic_lockup:
                    if (spec.client == 0) {
                        // Population-wide: replicate per cell, applied owner-side.
                        for (auto& cptr : cells_) {
                            ApCell* cell = cptr.get();
                            kernel_->shard(cell->shard_).post_at(
                                at, [cell, until, p = spec.probability] {
                                    if (!cell->fault_roll(p)) return;
                                    cell->lockup_all(until);
                                    cell->count_fault(true);
                                });
                        }
                    } else {
                        // Deterministic targeting: the fault is pinned to the
                        // client's home cell; if the target roamed away it is
                        // counted as missed, never chased across shards.
                        ApCell* cell = cells_[slab_->home_ap[row]].get();
                        kernel_->shard(cell->shard_).post_at(
                            at, [cell, row, until, p = spec.probability] {
                                if (!cell->fault_roll(p)) return;
                                cell->count_fault(cell->lockup_one(row, until));
                            });
                    }
                    break;
                case fault::FaultKind::client_crash: {
                    ApCell* cell = cells_[slab_->home_ap[row]].get();
                    kernel_->shard(cell->shard_).post_at(
                        at, [cell, row, down = spec.duration, p = spec.probability] {
                            if (!cell->fault_roll(p)) return;
                            cell->count_fault(cell->crash_one(row, down));
                        });
                    break;
                }
                case fault::FaultKind::silent_leave: {
                    ApCell* cell = cells_[slab_->home_ap[row]].get();
                    kernel_->shard(cell->shard_).post_at(
                        at, [cell, row, p = spec.probability] {
                            if (!cell->fault_roll(p)) return;
                            cell->count_fault(cell->leave_one(row));
                        });
                    break;
                }
                default:
                    // Excluded by ScenarioSpec::validate for federation runs.
                    break;
            }
        }
    }
}

void Federation::post_handoff(std::uint32_t from_ap, std::uint32_t to_ap,
                              std::uint32_t id) {
    const std::size_t from = shard_of_ap(from_ap);
    const std::size_t to = shard_of_ap(to_ap);
    // Same lookahead whether or not the cells share a shard, so the event
    // schedule is independent of the cell->shard layout.
    const Time when = kernel_->shard(from).now() + config_.lookahead;
    ApCell* dest = cells_[to_ap].get();
    if (from == to) {
        kernel_->shard(from).post_at(when, [dest, id] { dest->handoff_arrive(id); });
    } else {
        kernel_->post_cross(from, to, when, [dest, id] { dest->handoff_arrive(id); });
    }
}

double* Federation::sampled_causes(std::uint32_t id) {
    const auto stride = static_cast<std::uint32_t>(config_.sample_stride);
    if (id % stride != 0) return nullptr;
    return sampled_causes_[id / stride].data();
}

void Federation::write_stream_samples(Time at) {
    if (!stream_state_) return;
    std::uint64_t assoc = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0;
    std::uint64_t queued = 0;
    for (const auto& cell : cells_) {
        assoc += static_cast<std::uint64_t>(std::max(cell->associated(), 0));
        arrivals += cell->arrivals();
        departures += cell->departures();
        queued += cell->queue_.size();
    }
    auto& st = *stream_state_;
    const auto t_ns = static_cast<std::uint64_t>(at.ns());
    st.writer.sample(st.associated, t_ns, static_cast<double>(assoc));
    st.writer.sample(st.arrivals, t_ns, static_cast<double>(arrivals));
    st.writer.sample(st.departures, t_ns, static_cast<double>(departures));
    st.writer.sample(st.queue_depth, t_ns, static_cast<double>(queued));
}

PopulationSummary Federation::summarize(Time horizon) {
    PopulationSummary p;
    p.population = population_;
    p.arrivals_truncated = arrivals_truncated_;
    for (const auto& cell : cells_) {
        p.arrivals += cell->arrivals();
        p.departures += cell->departures();
        p.rejected += cell->rejected();
        p.deferred += cell->deferred();
        p.degraded += cell->degraded();
        p.faults_injected += cell->faults_injected();
        p.faults_missed += cell->faults_missed();
        p.peak_association = std::max(p.peak_association, cell->peak_association());
    }

    // Workers are parked: the owning thread may touch every row.  Clients
    // whose handoff was still in flight at the horizon idle-scan to the end.
    const double idle_w = stream_.wlan_nic.idle.watts();
    for (std::size_t i = 0; i < population_; ++i) {
        if (slab_->state_of(i) == ClientState::roaming) {
            const std::int64_t dt_ns = horizon.ns() - slab_->last_accrue_ns[i];
            if (dt_ns > 0) {
                const double joules = idle_w * (static_cast<double>(dt_ns) * 1e-9);
                slab_->energy_j[i] += joules;
                slab_->last_accrue_ns[i] = horizon.ns();
                if (double* causes = sampled_causes(static_cast<std::uint32_t>(i))) {
                    causes[0] += joules;
                }
            }
        }
    }

    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
    for (std::size_t i = 0; i < population_; ++i) {
        p.bursts_admitted += slab_->bursts_admitted[i];
        p.bursts_completed += slab_->bursts_completed[i];
        p.bursts_shed += slab_->bursts_shed[i];
        p.delivered_bits += slab_->delivered_bits[i];
        p.energy_j += slab_->energy_j[i];
        p.roams += slab_->roams[i];
        p.handoff_failures += slab_->handoff_failures[i];

        h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(slab_->energy_j[i]));
        h = fnv1a_u64(h, slab_->delivered_bits[i]);
        h = fnv1a_u64(h, (static_cast<std::uint64_t>(slab_->bursts_admitted[i]) << 32) |
                             slab_->bursts_completed[i]);
        h = fnv1a_u64(h, (static_cast<std::uint64_t>(slab_->bursts_shed[i]) << 32) |
                             (static_cast<std::uint64_t>(slab_->roams[i]) << 16) |
                             slab_->handoff_failures[i]);
        h = fnv1a_u64(h,
                      (static_cast<std::uint64_t>(slab_->state_of(i)) << 32) |
                          (static_cast<std::uint64_t>(
                               slab_->current_ap[i].load(std::memory_order_relaxed))
                           << 16) |
                          slab_->epoch_of(i));
    }
    h = fnv1a_u64(h, p.arrivals);
    h = fnv1a_u64(h, p.departures);
    h = fnv1a_u64(h, p.rejected);
    h = fnv1a_u64(h, p.deferred);
    h = fnv1a_u64(h, p.degraded);
    h = fnv1a_u64(h, p.faults_injected);
    h = fnv1a_u64(h, p.faults_missed);
    h = fnv1a_u64(h, p.peak_association);
    p.fingerprint = h;
    return p;
}

void Federation::register_watchdog_checks(obs::Watchdog& watchdog) {
    // Burst conservation, continuously: mid-run some admitted bursts are
    // still in flight, so the sweep invariant is completed + shed <=
    // admitted (the final sweep demands equality).  Plain columns are
    // safe to scan: sweeps run between chunks with the workers parked.
    watchdog.add_check("fed.conservation", [this]() -> std::optional<std::string> {
        std::uint64_t admitted = 0;
        std::uint64_t resolved = 0;
        for (std::size_t i = 0; i < population_; ++i) {
            admitted += slab_->bursts_admitted[i];
            resolved += static_cast<std::uint64_t>(slab_->bursts_completed[i]) +
                        slab_->bursts_shed[i];
        }
        if (resolved <= admitted) return std::nullopt;
        return "bursts completed+shed " + std::to_string(resolved) +
               " exceeds admitted " + std::to_string(admitted);
    });
    // Slab epoch monotonicity: epochs only ever bump forward; a rewind
    // means torn ownership transfer.  Relaxed loads — epochs are atomic
    // precisely so non-owners may read them.
    watchdog.add_check(
        "fed.slab_epoch",
        [this, prev = std::vector<std::uint16_t>(population_, 0)]() mutable
        -> std::optional<std::string> {
            for (std::size_t i = 0; i < population_; ++i) {
                const std::uint16_t now_epoch = slab_->epoch_of(i);
                if (now_epoch < prev[i]) {
                    return "client " + std::to_string(i) + " epoch rewound " +
                           std::to_string(prev[i]) + " -> " + std::to_string(now_epoch);
                }
                prev[i] = now_epoch;
            }
            return std::nullopt;
        });
    // Slab state validity: the state byte must be a ClientState.
    watchdog.add_check("fed.slab_state", [this]() -> std::optional<std::string> {
        for (std::size_t i = 0; i < population_; ++i) {
            const auto raw = static_cast<std::uint8_t>(slab_->state_of(i));
            if (raw > static_cast<std::uint8_t>(ClientState::departed)) {
                return "client " + std::to_string(i) + " state byte " +
                       std::to_string(raw) + " out of range";
            }
        }
        return std::nullopt;
    });
}

void Federation::register_final_checks(obs::Watchdog& watchdog,
                                       const PopulationSummary& pop, Time horizon) {
    // Exact conservation at teardown — the invariant WLANPS_REQUIRE used
    // to crash on; with a watchdog attached it reports instead.
    watchdog.add_check("fed.conservation_final",
                       [pop]() -> std::optional<std::string> {
                           if (pop.conserved()) return std::nullopt;
                           return "admitted " + std::to_string(pop.bursts_admitted) +
                                  " != completed " + std::to_string(pop.bursts_completed) +
                                  " + shed " + std::to_string(pop.bursts_shed);
                       });
    // Energy-ledger telescoping: for every stride-sampled client, the
    // cause-resolved cells must telescope back to the slab's accrued
    // energy within 1e-9 J (the ledger reconciliation contract).
    watchdog.add_check("fed.ledger_drift", [this]() -> std::optional<std::string> {
        const auto stride = static_cast<std::uint32_t>(config_.sample_stride);
        for (std::uint32_t id = 0; id < population_; id += stride) {
            const auto& causes = sampled_causes_[id / stride];
            const double telescoped = causes[0] + causes[1] + causes[2];
            const double drift = std::abs(telescoped - slab_->energy_j[id]);
            if (drift >= 1e-9) {
                return "client " + std::to_string(id) + " cause sum drifts " +
                       std::to_string(drift) + " J from accrued energy";
            }
        }
        return std::nullopt;
    });
    // Fingerprint stability: re-reducing the parked population must
    // reproduce the fingerprint bit for bit (summarize is idempotent once
    // the roaming accrual caught up).  A mismatch means state mutated
    // after the barrier — exactly the class of bug strict mode forbids.
    watchdog.add_check("fed.fingerprint",
                       [this, pop, horizon]() -> std::optional<std::string> {
                           const std::uint64_t again = summarize(horizon).fingerprint;
                           if (again == pop.fingerprint) return std::nullopt;
                           return "population fingerprint unstable across reductions";
                       });
}

obs::HealthReport Federation::build_health(const PopulationSummary& pop,
                                           const obs::Watchdog* watchdog) const {
    obs::HealthReport health;
    health.scope = "federation";
    kernel_->fill_health(health);
    health.per_cell.reserve(cells_.size());
    for (std::uint32_t ap = 0; ap < cells_.size(); ++ap) {
        const ApCell& cell = *cells_[ap];
        obs::CellHealth c;
        c.cell = ap;
        c.shard = static_cast<std::uint32_t>(shard_of_ap(ap));
        c.arrivals = cell.arrivals();
        c.departures = cell.departures();
        c.rejected = cell.rejected();
        c.deferred = cell.deferred();
        c.degraded = cell.degraded();
        c.faults_injected = cell.faults_injected();
        c.faults_missed = cell.faults_missed();
        c.peak_association = cell.peak_association();
        health.per_cell.push_back(c);
    }
    health.has_population = true;
    health.population = pop.population;
    health.bursts_admitted = pop.bursts_admitted;
    health.bursts_completed = pop.bursts_completed;
    health.bursts_shed = pop.bursts_shed;
    health.conserved = pop.conserved();
    health.fingerprint = pop.fingerprint;
    if (watchdog != nullptr) health.set_watchdog(*watchdog);
    return health;
}

FederationResult Federation::run() {
    const Time end = stream_.duration;
    obs::Watchdog* wd = obs::current_watchdog();
    if (wd != nullptr) register_watchdog_checks(*wd);
    if (stream_state_ || wd != nullptr) {
        // Chunked horizons: run_until clamps each quantum, so strict-mode
        // results are bit-identical to one uninterrupted run.  The chunk
        // boundaries double as watchdog sweeps: workers are parked, so
        // the checks may scan every shard's state.
        const std::int64_t chunk = std::max<std::int64_t>(end.ns() / 64, 1);
        Time t = Time::zero();
        while (t < end) {
            t = Time::from_ns(std::min(end.ns(), t.ns() + chunk));
            kernel_->run_until(t);
            write_stream_samples(t);
            if (wd != nullptr) wd->sweep(t.ns());
        }
    } else {
        kernel_->run_until(end);
    }
    for (auto& cell : cells_) cell->teardown(end);
    const PopulationSummary pop = summarize(end);
    if (wd != nullptr) {
        // One teardown sweep over the periodic checks plus the
        // teardown-only ones; a violated invariant becomes a structured
        // report (and flight dump) instead of a crash, so the health
        // report below still reaches the operator.
        register_final_checks(*wd, pop, end);
        wd->sweep(end.ns());
    } else {
        WLANPS_REQUIRE_MSG(pop.conserved(),
                           "federation burst conservation violated: admitted != "
                           "completed + shed");
    }

    core::ScenarioResult res;
    res.label = label_;
    res.faults_injected = pop.faults_injected;

    obs::EnergyLedger* ledger = obs::current_ledger();
    const auto stride = static_cast<std::uint32_t>(config_.sample_stride);
    const double dur_s = end.to_seconds();
    for (std::uint32_t id = 0; id < population_; id += stride) {
        core::ClientMetrics m;
        const double joules = slab_->energy_j[id];
        m.wnic_energy = power::Energy::from_joules(joules);
        m.wnic_average = power::Power::from_watts(dur_s > 0.0 ? joules / dur_s : 0.0);
        m.device_average = power::Power::from_watts(
            m.wnic_average.watts() + phy::calibration::kIpaqBase.watts());
        const std::uint32_t admitted = slab_->bursts_admitted[id];
        m.qos = admitted > 0
                    ? static_cast<double>(slab_->bursts_completed[id]) / admitted
                    : 1.0;
        m.underruns = slab_->bursts_shed[id];
        m.received = DataSize::from_bits(
            static_cast<std::int64_t>(slab_->delivered_bits[id]));
        res.clients.push_back(m);
        if (ledger) {
            const auto& causes = sampled_causes_[id / stride];
            ledger->charge(id, obs::EnergyCause::idle_listen, causes[0]);
            ledger->charge(id, obs::EnergyCause::mode_switch, causes[1]);
            ledger->charge(id, obs::EnergyCause::burst_rx, causes[2]);
        }
    }

    obs::HealthReport health = build_health(pop, wd);

    if (stream_state_) {
        auto& w = stream_state_->writer;
        w.summary("population", static_cast<double>(pop.population));
        w.summary("arrivals", static_cast<double>(pop.arrivals));
        w.summary("departures", static_cast<double>(pop.departures));
        w.summary("rejected", static_cast<double>(pop.rejected));
        w.summary("deferred", static_cast<double>(pop.deferred));
        w.summary("degraded", static_cast<double>(pop.degraded));
        w.summary("roams", static_cast<double>(pop.roams));
        w.summary("handoff_failures", static_cast<double>(pop.handoff_failures));
        w.summary("bursts_admitted", static_cast<double>(pop.bursts_admitted));
        w.summary("bursts_completed", static_cast<double>(pop.bursts_completed));
        w.summary("bursts_shed", static_cast<double>(pop.bursts_shed));
        w.summary("delivered_bits", static_cast<double>(pop.delivered_bits));
        w.summary("energy_j", pop.energy_j);
        w.summary("faults_injected", static_cast<double>(pop.faults_injected));
        w.summary("faults_missed", static_cast<double>(pop.faults_missed));
        w.summary("peak_association", static_cast<double>(pop.peak_association));
        // The fingerprint is 64-bit; f64 summaries keep 32-bit halves exact.
        w.summary("fingerprint_hi", static_cast<double>(pop.fingerprint >> 32));
        w.summary("fingerprint_lo",
                  static_cast<double>(pop.fingerprint & 0xffffffffULL));
        for (std::uint32_t id = 0; id < population_; id += stride) {
            const std::uint32_t admitted = slab_->bursts_admitted[id];
            const double qos =
                admitted > 0
                    ? static_cast<double>(slab_->bursts_completed[id]) / admitted
                    : 1.0;
            w.client(id, static_cast<float>(slab_->energy_j[id]),
                     static_cast<float>(qos), slab_->bursts_completed[id],
                     slab_->bursts_shed[id]);
        }
        health.export_stream(w);
        w.flush();
    }

    if (!config_.health_path.empty()) health.write_file(config_.health_path);
    // Timing (wall-clock) series stay out of the registry so the snapshot
    // is bit-identical across worker-thread counts; health.to_json(true)
    // carries them for callers that want the wall-clock attribution.
    if (obs::MetricsRegistry* reg = obs::current()) {
        kernel_->publish_metrics(*reg, /*include_timing=*/false);
    }

    return {std::move(res), pop, std::move(health)};
}

FederationResult run_federation(const core::ScenarioSpec& spec) {
    return run_federation(spec, spec.stream().seed);
}

FederationResult run_federation(const core::ScenarioSpec& spec, std::uint64_t seed) {
    spec.validate();
    Federation fed(spec, seed);
    return fed.run();
}

}  // namespace wlanps::fed
