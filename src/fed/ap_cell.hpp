#pragma once
/// \file ap_cell.hpp
/// One AP cell of a hotspot federation.
///
/// A cell is the shard-local owner of its associated clients' slab rows:
/// it admits arrivals and roamers under the configured admission policy,
/// schedules their periodic bursts through a serial service queue (one
/// radio), models backhaul contention (effective goodput =
/// min(radio, backhaul / associated)), accrues closed-form WNIC energy,
/// and initiates roams.  Every event it posts is shard-local; the only
/// cross-shard traffic is the handoff message a roam sends through
/// Federation::post_handoff.
///
/// Determinism: all RNG draws come from the cell's private forked stream,
/// in shard-local event order; stale fire-and-forget events (burst/roam
/// timers of a client that left) drop themselves via the slab's epoch
/// column.

#include <cstdint>
#include <deque>
#include <vector>

#include "fed/arrivals.hpp"
#include "fed/client_slab.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wlanps::fed {

class Federation;

class ApCell {
public:
    ApCell(Federation& fed, std::uint16_t ap, sim::Random rng);

    /// Plan this cell's arrival schedule (deterministic, at build time).
    /// Ids are assigned densely starting at \p first_id; returns the
    /// number of planned arrivals (bounded by \p max_arrivals; the
    /// overflow is reported via truncated_arrivals()).
    std::size_t plan_arrivals(std::uint32_t first_id, std::size_t max_arrivals);
    [[nodiscard]] std::uint64_t truncated_arrivals() const { return truncated_; }

    /// Record one initial-population client (round-robin assigned by the
    /// Federation; \p join_at is zero or a late-join fault time).
    void add_initial(std::uint32_t id, Time join_at);

    /// Post the cell's kick-off events (initial admissions, first planned
    /// arrival).  Owning thread, before run_until.
    void start();

    // --- fault surface (shard-local events post these) --------------------
    /// nic-lockup every currently associated client until \p until.
    void lockup_all(Time until);
    /// Per-client fault application; returns false (and counts a miss)
    /// when the target's row is not owned by this cell anymore.
    bool lockup_one(std::uint32_t id, Time until);
    bool crash_one(std::uint32_t id, Time revive_after);
    bool leave_one(std::uint32_t id);
    void count_fault(bool applied);
    /// Probability gate for a planned fault occurrence; draws from the
    /// cell's dedicated fault stream so fault plans never perturb the
    /// workload's RNG sequence.
    [[nodiscard]] bool fault_roll(double probability);

    /// Handoff delivery (invoked on this cell's shard by post_handoff).
    void handoff_arrive(std::uint32_t id);

    /// Owning-thread teardown: resolve queued bursts as shed, accrue
    /// energy to \p horizon for every row this cell still owns.
    void teardown(Time horizon);

    // --- cell counters (read at teardown) ----------------------------------
    [[nodiscard]] std::uint64_t arrivals() const { return arrivals_; }
    [[nodiscard]] std::uint64_t departures() const { return departures_; }
    [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
    [[nodiscard]] std::uint64_t deferred() const { return deferred_; }
    [[nodiscard]] std::uint64_t degraded() const { return degraded_; }
    [[nodiscard]] std::uint64_t faults_injected() const { return faults_injected_; }
    [[nodiscard]] std::uint64_t faults_missed() const { return faults_missed_; }
    [[nodiscard]] std::uint64_t peak_association() const { return peak_assoc_; }
    [[nodiscard]] int associated() const { return assoc_count_; }

private:
    struct QueueEntry {
        std::uint32_t id = 0;
        std::uint16_t epoch = 0;
        std::uint64_t bits = 0;
    };

    [[nodiscard]] sim::Simulator& sim();
    [[nodiscard]] ClientSlab& slab();

    /// Does this cell currently own row \p id (for fault targeting)?
    [[nodiscard]] bool owns(std::uint32_t id) const;

    // Arrival events.
    void join_due(std::uint32_t id);
    void arrival_due();
    void open_session(std::uint32_t id);

    // Admission of a client standing at this cell (fresh arrival, retry,
    // or roamer; \p via_handoff switches the failure accounting).
    void admit(std::uint32_t id, bool via_handoff);
    void start_session_events(std::uint32_t id);
    void schedule_burst(std::uint32_t id, Time at);
    void schedule_roam(std::uint32_t id);
    void burst_due(std::uint32_t id, std::uint16_t epoch);
    void roam_due(std::uint32_t id, std::uint16_t epoch);
    void retry_due(std::uint32_t id, std::uint16_t epoch);
    void revive_due(std::uint32_t id, std::uint16_t epoch);
    void pump_service();
    void service_done(std::uint32_t id, std::uint16_t epoch, std::uint64_t bits,
                      double service_s);
    /// Post-burst / timer-driven exits: departure or roam, honoring the
    /// deferral flags.  Returns true when the client left the cell.
    bool maybe_exit(std::uint32_t id);
    void depart(std::uint32_t id);
    void begin_roam(std::uint32_t id);

    // Energy accrual (closed form, per row).
    void accrue(std::uint32_t id, Time now);
    [[nodiscard]] double resident_draw_w(std::uint32_t id) const;
    void charge_burst(std::uint32_t id, double service_s);

    [[nodiscard]] Time now();
    [[nodiscard]] std::uint64_t burst_bits(std::uint32_t id) const;
    [[nodiscard]] double effective_goodput_bps() const;

    Federation& fed_;
    std::uint16_t ap_;
    std::size_t shard_;
    sim::Random rng_;
    sim::Random fault_rng_;
    ArrivalProcess arrivals_process_;
    Time period_;  ///< burst cadence: time to stream one target burst

    // Planned (build-time) arrival schedule: ids first_id_..first_id_+n-1
    // arrive at planned_at_[k].
    std::uint32_t first_id_ = 0;
    std::vector<Time> planned_at_;
    std::size_t next_planned_ = 0;
    std::uint64_t truncated_ = 0;

    // Initial population (build-time).
    std::vector<std::pair<std::uint32_t, Time>> initial_;

    // Service queue: one radio, FIFO.
    std::deque<QueueEntry> queue_;
    bool serving_ = false;
    QueueEntry in_service_;  ///< shed at teardown if still unresolved

    int assoc_count_ = 0;
    std::uint64_t peak_assoc_ = 0;
    std::uint64_t arrivals_ = 0;
    std::uint64_t departures_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t deferred_ = 0;
    std::uint64_t degraded_ = 0;
    std::uint64_t faults_injected_ = 0;
    std::uint64_t faults_missed_ = 0;

    friend class Federation;
};

}  // namespace wlanps::fed
