#pragma once
/// \file client_slab.hpp
/// Struct-of-arrays storage for federation client populations.
///
/// A federation run holds 10⁴–10⁶ clients; one heap-allocated
/// HotspotClient with real NIC/link objects per client (~kilobytes each,
/// pointer-chasing everywhere) cannot scale there.  The slab keeps every
/// client as a fixed set of parallel columns, budgeted in bytes
/// (kBytesPerClient, static_assert'd ≤ 96) and indexed by a dense client
/// id, so a million clients fit in well under 100 MB and a column sweep
/// is a linear scan.
///
/// Ownership and threading (DESIGN.md §13): every row is owned by exactly
/// one AP cell — hence one shard — at a time, and only the owning shard's
/// worker reads or writes its plain columns.  Ownership moves between
/// shards exclusively through the sharded kernel's cross-shard mailbox,
/// whose mutex + quantum barrier establish the happens-before for the
/// plain columns.  Three columns are atomics because non-owners consult
/// them:
///   * state    — release-stored on admission so a concurrent reader that
///                observes `associated` also observes the matching
///                current_ap (population-wide fault sweeps filter on the
///                pair),
///   * current_ap — which cell owns the row,
///   * epoch    — bumped on every ownership/lifecycle change; stale
///                fire-and-forget events compare it and drop themselves.
/// The epoch race is benign by construction: an event's captured epoch
/// can only equal the row's current epoch while the capturing cell still
/// owns the row, so a torn-free relaxed load always classifies correctly.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/assert.hpp"

namespace wlanps::fed {

/// Lifecycle of one slab client.
enum class ClientState : std::uint8_t {
    pending = 0,  ///< planned (initial population / future arrival), not yet admitted
    associated,   ///< admitted at current_ap, streaming
    deferred,     ///< admission deferred; waiting at current_ap to retry
    roaming,      ///< disassociated, handoff message in flight
    crashed,      ///< device down (fault); may revive
    departed,     ///< session over (or rejected) — terminal
};

/// Bit flags (owner-shard access only).
namespace client_flags {
inline constexpr std::uint8_t kBurstQueued = 1u << 0;   ///< a burst sits in the cell queue
inline constexpr std::uint8_t kRoamPending = 1u << 1;   ///< roam deferred until burst resolves
inline constexpr std::uint8_t kDepartPending = 1u << 2; ///< departure deferred until burst resolves
inline constexpr std::uint8_t kDegraded = 1u << 3;      ///< admitted under the degrade policy
}  // namespace client_flags

/// Parallel columns, one entry per client.  Fixed capacity: the
/// federation pre-plans its arrival schedule, so the population ceiling
/// is known at build time and rows never reallocate (atomics cannot move,
/// and row pointers are captured by in-flight events).
class ClientSlab {
public:
    explicit ClientSlab(std::size_t capacity)
        : energy_j(std::make_unique<double[]>(capacity)),
          arrival_at_ns(std::make_unique<std::int64_t[]>(capacity)),
          departure_at_ns(std::make_unique<std::int64_t[]>(capacity)),
          last_accrue_ns(std::make_unique<std::int64_t[]>(capacity)),
          lockup_until_ns(std::make_unique<std::int64_t[]>(capacity)),
          delivered_bits(std::make_unique<std::uint64_t[]>(capacity)),
          bursts_admitted(std::make_unique<std::uint32_t[]>(capacity)),
          bursts_completed(std::make_unique<std::uint32_t[]>(capacity)),
          bursts_shed(std::make_unique<std::uint32_t[]>(capacity)),
          roams(std::make_unique<std::uint16_t[]>(capacity)),
          handoff_failures(std::make_unique<std::uint16_t[]>(capacity)),
          home_ap(std::make_unique<std::uint16_t[]>(capacity)),
          flags(std::make_unique<std::uint8_t[]>(capacity)),
          state(std::make_unique<std::atomic<std::uint8_t>[]>(capacity)),
          current_ap(std::make_unique<std::atomic<std::uint16_t>[]>(capacity)),
          epoch(std::make_unique<std::atomic<std::uint16_t>[]>(capacity)),
          capacity_(capacity) {
        WLANPS_REQUIRE_MSG(capacity >= 1, "ClientSlab capacity must be >= 1");
        for (std::size_t i = 0; i < capacity; ++i) {
            energy_j[i] = 0.0;
            arrival_at_ns[i] = 0;
            departure_at_ns[i] = 0;
            last_accrue_ns[i] = 0;
            lockup_until_ns[i] = 0;
            delivered_bits[i] = 0;
            bursts_admitted[i] = 0;
            bursts_completed[i] = 0;
            bursts_shed[i] = 0;
            roams[i] = 0;
            handoff_failures[i] = 0;
            home_ap[i] = 0;
            flags[i] = 0;
            state[i].store(static_cast<std::uint8_t>(ClientState::pending),
                           std::memory_order_relaxed);
            current_ap[i].store(0, std::memory_order_relaxed);
            epoch[i].store(0, std::memory_order_relaxed);
        }
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Resident bytes of per-client state — the budget the acceptance
    /// criterion pins.  Keep this in sync with the columns above.
    static constexpr std::size_t kBytesPerClient =
        sizeof(double) +             // energy_j
        sizeof(std::int64_t) * 4 +   // arrival/departure/last_accrue/lockup
        sizeof(std::uint64_t) +      // delivered_bits
        sizeof(std::uint32_t) * 3 +  // bursts admitted/completed/shed
        sizeof(std::uint16_t) * 3 +  // roams, handoff_failures, home_ap
        sizeof(std::uint8_t) +       // flags
        sizeof(std::atomic<std::uint8_t>) +    // state
        sizeof(std::atomic<std::uint16_t>) * 2;  // current_ap, epoch
    static_assert(kBytesPerClient <= 96,
                  "federation per-client resident slab state exceeds its "
                  "96-byte budget — trim a column or widen the contract");

    // --- owner-shard helpers ---------------------------------------------
    [[nodiscard]] ClientState state_of(std::size_t i) const {
        return static_cast<ClientState>(state[i].load(std::memory_order_relaxed));
    }
    void set_state(std::size_t i, ClientState s) {
        // Release so a reader that acquires `state` also sees current_ap.
        state[i].store(static_cast<std::uint8_t>(s), std::memory_order_release);
    }
    void bump_epoch(std::size_t i) { epoch[i].fetch_add(1, std::memory_order_relaxed); }
    [[nodiscard]] std::uint16_t epoch_of(std::size_t i) const {
        return epoch[i].load(std::memory_order_relaxed);
    }

    // --- columns ----------------------------------------------------------
    // Plain columns: owner shard only (handoff transfers via the mailbox).
    std::unique_ptr<double[]> energy_j;  ///< accrued WNIC energy
    std::unique_ptr<std::int64_t[]> arrival_at_ns;
    std::unique_ptr<std::int64_t[]> departure_at_ns;  ///< planned session end
    std::unique_ptr<std::int64_t[]> last_accrue_ns;
    std::unique_ptr<std::int64_t[]> lockup_until_ns;  ///< nic-lockup fault window
    std::unique_ptr<std::uint64_t[]> delivered_bits;
    std::unique_ptr<std::uint32_t[]> bursts_admitted;
    std::unique_ptr<std::uint32_t[]> bursts_completed;
    std::unique_ptr<std::uint32_t[]> bursts_shed;
    std::unique_ptr<std::uint16_t[]> roams;
    std::unique_ptr<std::uint16_t[]> handoff_failures;
    std::unique_ptr<std::uint16_t[]> home_ap;
    std::unique_ptr<std::uint8_t[]> flags;
    // Atomic columns: consulted by non-owners (see file comment).
    std::unique_ptr<std::atomic<std::uint8_t>[]> state;
    std::unique_ptr<std::atomic<std::uint16_t>[]> current_ap;
    std::unique_ptr<std::atomic<std::uint16_t>[]> epoch;

private:
    std::size_t capacity_;
};

}  // namespace wlanps::fed
