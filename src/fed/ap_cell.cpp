#include "fed/ap_cell.hpp"

#include <algorithm>

#include "core/scenario_spec.hpp"
#include "fed/federation.hpp"
#include "sim/assert.hpp"

namespace wlanps::fed {

namespace {
// Child-stream ids of the cell's root fork: keep the arrival plan, the
// workload draws, and the fault rolls on decorrelated streams so a fault
// plan (or a different arrival rate) never perturbs the other sequences.
constexpr std::uint64_t kArrivalStream = 1;
constexpr std::uint64_t kWorkloadStream = 2;
constexpr std::uint64_t kFaultStream = 3;
}  // namespace

ApCell::ApCell(Federation& fed, std::uint16_t ap, sim::Random rng)
    : fed_(fed),
      ap_(ap),
      shard_(fed.shard_of_ap(ap)),
      rng_(rng.fork(kWorkloadStream)),
      fault_rng_(rng.fork(kFaultStream)),
      arrivals_process_(fed.config().base_arrival_hz, fed.config().flash_arrival_hz,
                        fed.config().flash_start,
                        fed.config().flash_start + fed.config().flash_duration,
                        rng.fork(kArrivalStream)),
      period_(fed.config().stream_rate.transmit_time(fed.config().target_burst)) {
    WLANPS_REQUIRE_MSG(!period_.is_zero(), "federation burst period must be positive");
}

sim::Simulator& ApCell::sim() { return fed_.kernel().shard(shard_); }
ClientSlab& ApCell::slab() { return fed_.slab(); }
Time ApCell::now() { return sim().now(); }

std::size_t ApCell::plan_arrivals(std::uint32_t first_id, std::size_t max_arrivals) {
    first_id_ = first_id;
    const Time end = fed_.stream().duration;
    Time t = Time::zero();
    for (;;) {
        t = arrivals_process_.next_after(t);
        if (t >= end) break;
        if (planned_at_.size() >= max_arrivals) {
            ++truncated_;
            continue;
        }
        planned_at_.push_back(t);
    }
    return planned_at_.size();
}

void ApCell::add_initial(std::uint32_t id, Time join_at) {
    initial_.emplace_back(id, join_at);
}

void ApCell::start() {
    auto& s = sim();
    for (const auto& [id, join_at] : initial_) {
        s.post_at(join_at, [this, cid = id] { join_due(cid); });
    }
    if (!planned_at_.empty()) {
        s.post_at(planned_at_[0], [this] { arrival_due(); });
    }
}

void ApCell::join_due(std::uint32_t id) {
    // A pre-arrival silent_leave cancels the join.
    if (slab().state_of(id) != ClientState::pending) return;
    open_session(id);
    ++arrivals_;
    admit(id, /*via_handoff=*/false);
}

void ApCell::arrival_due() {
    const auto k = next_planned_++;
    if (next_planned_ < planned_at_.size()) {
        sim().post_at(planned_at_[next_planned_], [this] { arrival_due(); });
    }
    const std::uint32_t id = first_id_ + static_cast<std::uint32_t>(k);
    if (slab().state_of(id) != ClientState::pending) return;
    open_session(id);
    ++arrivals_;
    admit(id, /*via_handoff=*/false);
}

void ApCell::open_session(std::uint32_t id) {
    auto& sl = slab();
    const Time t = now();
    sl.arrival_at_ns[id] = t.ns();
    sl.last_accrue_ns[id] = t.ns();
    sl.departure_at_ns[id] =
        (t + rng_.exponential_time(fed_.config().mean_session)).ns();
}

void ApCell::admit(std::uint32_t id, bool via_handoff) {
    auto& sl = slab();
    const auto& cfg = fed_.config();
    const Time t = now();
    if (t.ns() >= sl.departure_at_ns[id]) {
        // Session expired while deferred / in flight.
        sl.current_ap[id].store(ap_, std::memory_order_relaxed);
        depart(id);
        return;
    }
    if (assoc_count_ >= cfg.capacity_per_ap) {
        switch (cfg.admission) {
            case core::AdmissionPolicy::reject:
                sl.current_ap[id].store(ap_, std::memory_order_relaxed);
                if (via_handoff) {
                    ++sl.handoff_failures[id];
                } else {
                    ++rejected_;
                }
                depart(id);
                return;
            case core::AdmissionPolicy::defer: {
                sl.current_ap[id].store(ap_, std::memory_order_relaxed);
                if (sl.state_of(id) != ClientState::deferred) {
                    ++deferred_;
                    sl.set_state(id, ClientState::deferred);
                }
                const std::uint16_t ep = sl.epoch_of(id);
                sim().post_at(t + cfg.defer_retry,
                              [this, id, ep] { retry_due(id, ep); });
                return;
            }
            case core::AdmissionPolicy::degrade:
                // Admit over capacity, at a reduced burst size.
                sl.flags[id] |= client_flags::kDegraded;
                ++degraded_;
                break;
        }
    }
    accrue(id, t);  // close out any deferred/roaming idle stretch
    sl.current_ap[id].store(ap_, std::memory_order_relaxed);
    sl.set_state(id, ClientState::associated);  // release: publishes current_ap
    ++assoc_count_;
    peak_assoc_ = std::max(peak_assoc_, static_cast<std::uint64_t>(assoc_count_));
    if (via_handoff) ++sl.roams[id];
    start_session_events(id);
}

void ApCell::start_session_events(std::uint32_t id) {
    // Random phase keeps the cell's bursts from synchronizing.
    const Time first = now() + Time::from_seconds(rng_.uniform(0.0, period_.to_seconds()));
    schedule_burst(id, first);
    if (fed_.config().roaming && fed_.ap_count() >= 2) schedule_roam(id);
}

void ApCell::schedule_burst(std::uint32_t id, Time at) {
    const std::uint16_t ep = slab().epoch_of(id);
    sim().post_at(at, [this, id, ep] { burst_due(id, ep); });
}

void ApCell::schedule_roam(std::uint32_t id) {
    const std::uint16_t ep = slab().epoch_of(id);
    const Time at = now() + rng_.exponential_time(fed_.config().mean_dwell);
    sim().post_at(at, [this, id, ep] { roam_due(id, ep); });
}

void ApCell::burst_due(std::uint32_t id, std::uint16_t epoch) {
    auto& sl = slab();
    if (sl.epoch_of(id) != epoch || sl.state_of(id) != ClientState::associated) return;
    if (now().ns() >= sl.departure_at_ns[id]) {
        depart(id);
        return;
    }
    ++sl.bursts_admitted[id];
    sl.flags[id] |= client_flags::kBurstQueued;
    queue_.push_back({id, epoch, burst_bits(id)});
    pump_service();
}

void ApCell::roam_due(std::uint32_t id, std::uint16_t epoch) {
    auto& sl = slab();
    if (sl.epoch_of(id) != epoch || sl.state_of(id) != ClientState::associated) return;
    if (sl.flags[id] & client_flags::kBurstQueued) {
        // Finish (or shed) the in-flight burst first.
        sl.flags[id] |= client_flags::kRoamPending;
        return;
    }
    if (now().ns() >= sl.departure_at_ns[id]) {
        depart(id);
        return;
    }
    begin_roam(id);
}

void ApCell::retry_due(std::uint32_t id, std::uint16_t epoch) {
    auto& sl = slab();
    if (sl.epoch_of(id) != epoch || sl.state_of(id) != ClientState::deferred) return;
    admit(id, /*via_handoff=*/false);
}

void ApCell::revive_due(std::uint32_t id, std::uint16_t epoch) {
    auto& sl = slab();
    if (sl.epoch_of(id) != epoch || sl.state_of(id) != ClientState::crashed) return;
    if (now().ns() >= sl.departure_at_ns[id]) {
        depart(id);
        return;
    }
    ++arrivals_;  // a revival re-registers like a fresh arrival
    admit(id, /*via_handoff=*/false);
}

void ApCell::pump_service() {
    if (serving_) return;
    auto& sl = slab();
    while (!queue_.empty()) {
        const QueueEntry e = queue_.front();
        queue_.pop_front();
        if (sl.epoch_of(e.id) != e.epoch) {
            // Crashed/left while queued: admitted, never served.
            ++sl.bursts_shed[e.id];
            continue;
        }
        const Time t = now();
        if (t.ns() < sl.lockup_until_ns[e.id]) {
            // Radio wedged: this burst fails; retry next period.
            ++sl.bursts_shed[e.id];
            sl.flags[e.id] &= ~client_flags::kBurstQueued;
            if (!maybe_exit(e.id)) schedule_burst(e.id, t + period_);
            continue;
        }
        const double service_s =
            static_cast<double>(e.bits) / effective_goodput_bps();
        serving_ = true;
        in_service_ = e;
        sim().post_at(t + Time::from_seconds(service_s),
                      [this, id = e.id, ep = e.epoch, bits = e.bits, service_s] {
                          service_done(id, ep, bits, service_s);
                      });
        return;
    }
}

void ApCell::service_done(std::uint32_t id, std::uint16_t epoch, std::uint64_t bits,
                          double service_s) {
    serving_ = false;
    auto& sl = slab();
    if (sl.epoch_of(id) == epoch) {
        sl.delivered_bits[id] += bits;
        ++sl.bursts_completed[id];
        sl.flags[id] &= ~client_flags::kBurstQueued;
        accrue(id, now());
        charge_burst(id, service_s);
        if (!maybe_exit(id)) schedule_burst(id, now() + period_);
    } else {
        // Crashed mid-transfer: the delivery failed.
        ++sl.bursts_shed[id];
    }
    pump_service();
}

bool ApCell::maybe_exit(std::uint32_t id) {
    auto& sl = slab();
    if ((sl.flags[id] & client_flags::kDepartPending) ||
        now().ns() >= sl.departure_at_ns[id]) {
        sl.flags[id] &= ~(client_flags::kDepartPending | client_flags::kRoamPending);
        depart(id);
        return true;
    }
    if (sl.flags[id] & client_flags::kRoamPending) {
        sl.flags[id] &= ~client_flags::kRoamPending;
        begin_roam(id);
        return true;
    }
    return false;
}

void ApCell::depart(std::uint32_t id) {
    auto& sl = slab();
    accrue(id, now());
    sl.bump_epoch(id);
    if (sl.state_of(id) == ClientState::associated) --assoc_count_;
    sl.set_state(id, ClientState::departed);
    ++departures_;
}

void ApCell::begin_roam(std::uint32_t id) {
    auto& sl = slab();
    accrue(id, now());
    sl.bump_epoch(id);
    --assoc_count_;
    sl.set_state(id, ClientState::roaming);
    const std::uint32_t aps = fed_.ap_count();
    auto pick = static_cast<std::uint32_t>(rng_.uniform_int(0, aps - 2));
    if (pick >= ap_) ++pick;  // uniform over the *other* cells
    fed_.post_handoff(ap_, pick, id);
}

void ApCell::handoff_arrive(std::uint32_t id) {
    // Row ownership arrived with the mailbox message.
    admit(id, /*via_handoff=*/true);
}

// --- faults ---------------------------------------------------------------

bool ApCell::fault_roll(double probability) {
    if (probability >= 1.0) return true;
    return fault_rng_.chance(probability);
}

void ApCell::count_fault(bool applied) {
    if (applied) {
        ++faults_injected_;
    } else {
        ++faults_missed_;
    }
}

bool ApCell::owns(std::uint32_t id) const {
    const ClientSlab& sl = fed_.slab();
    if (sl.current_ap[id].load(std::memory_order_relaxed) != ap_) return false;
    switch (sl.state_of(id)) {
        case ClientState::pending:
        case ClientState::associated:
        case ClientState::deferred:
        case ClientState::crashed:
            return true;
        default:
            return false;
    }
}

void ApCell::lockup_all(Time until) {
    auto& sl = slab();
    const std::size_t n = sl.capacity();
    for (std::size_t i = 0; i < n; ++i) {
        // Acquire so a row admitted on another shard is seen with its
        // matching current_ap (see client_slab.hpp).
        const auto st = static_cast<ClientState>(
            sl.state[i].load(std::memory_order_acquire));
        if (st != ClientState::associated) continue;
        if (sl.current_ap[i].load(std::memory_order_relaxed) != ap_) continue;
        sl.lockup_until_ns[i] = std::max(sl.lockup_until_ns[i], until.ns());
    }
}

bool ApCell::lockup_one(std::uint32_t id, Time until) {
    if (!owns(id)) return false;
    auto& sl = slab();
    sl.lockup_until_ns[id] = std::max(sl.lockup_until_ns[id], until.ns());
    return true;
}

bool ApCell::crash_one(std::uint32_t id, Time revive_after) {
    if (!owns(id)) return false;
    auto& sl = slab();
    const ClientState st = sl.state_of(id);
    if (st != ClientState::associated && st != ClientState::deferred) return false;
    const Time t = now();
    accrue(id, t);
    sl.bump_epoch(id);  // queued / in-flight bursts shed as stale
    if (st == ClientState::associated) --assoc_count_;
    sl.flags[id] &= ~(client_flags::kBurstQueued | client_flags::kRoamPending |
                      client_flags::kDepartPending);
    sl.set_state(id, ClientState::crashed);
    if (!revive_after.is_zero()) {
        const std::uint16_t ep = sl.epoch_of(id);
        sim().post_at(t + revive_after, [this, id, ep] { revive_due(id, ep); });
    }
    return true;
}

bool ApCell::leave_one(std::uint32_t id) {
    if (!owns(id)) return false;
    auto& sl = slab();
    const ClientState st = sl.state_of(id);
    if (st != ClientState::pending && st != ClientState::associated &&
        st != ClientState::deferred) {
        return false;
    }
    sl.flags[id] &= ~(client_flags::kBurstQueued | client_flags::kRoamPending |
                      client_flags::kDepartPending);
    depart(id);
    return true;
}

// --- teardown / energy ----------------------------------------------------

void ApCell::teardown(Time horizon) {
    auto& sl = slab();
    if (serving_) {
        // Admitted, in service at the horizon, never resolved.
        ++sl.bursts_shed[in_service_.id];
        serving_ = false;
    }
    for (const QueueEntry& e : queue_) ++sl.bursts_shed[e.id];
    queue_.clear();
    const std::size_t n = sl.capacity();
    for (std::size_t i = 0; i < n; ++i) {
        if (sl.current_ap[i].load(std::memory_order_relaxed) != ap_) continue;
        const ClientState st = sl.state_of(i);
        if (st == ClientState::associated || st == ClientState::deferred) {
            accrue(static_cast<std::uint32_t>(i), horizon);
        }
    }
}

double ApCell::resident_draw_w(std::uint32_t id) const {
    const ClientSlab& sl = fed_.slab();
    const auto& nic = fed_.stream().wlan_nic;
    switch (sl.state_of(id)) {
        case ClientState::associated:
            return nic.doze.watts();  // PSM doze between scheduled bursts
        case ClientState::deferred:
        case ClientState::roaming:
            return nic.idle.watts();  // awake, scanning / waiting to associate
        default:
            return 0.0;  // pending / crashed / departed draw nothing
    }
}

void ApCell::accrue(std::uint32_t id, Time now_t) {
    auto& sl = slab();
    const std::int64_t dt_ns = now_t.ns() - sl.last_accrue_ns[id];
    if (dt_ns <= 0) return;
    const double joules = resident_draw_w(id) * (static_cast<double>(dt_ns) * 1e-9);
    sl.energy_j[id] += joules;
    sl.last_accrue_ns[id] = now_t.ns();
    if (double* causes = fed_.sampled_causes(id)) causes[0] += joules;
}

void ApCell::charge_burst(std::uint32_t id, double service_s) {
    auto& sl = slab();
    const auto& nic = fed_.stream().wlan_nic;
    const double wake_j = nic.resume_draw.watts() * nic.resume_latency.to_seconds();
    // accrue() already charged the doze baseline across the service
    // window, so the burst adds only the rx increment.
    const double rx_j = (nic.rx.watts() - nic.doze.watts()) * service_s;
    sl.energy_j[id] += wake_j + rx_j;
    if (double* causes = fed_.sampled_causes(id)) {
        causes[1] += wake_j;
        causes[2] += rx_j;
    }
}

std::uint64_t ApCell::burst_bits(std::uint32_t id) const {
    const ClientSlab& sl = fed_.slab();
    const auto& cfg = fed_.config();
    auto bits = static_cast<std::uint64_t>(cfg.target_burst.bits());
    if (sl.flags[id] & client_flags::kDegraded) {
        bits = static_cast<std::uint64_t>(static_cast<double>(bits) * cfg.degrade_factor);
        if (bits == 0) bits = 1;
    }
    return bits;
}

double ApCell::effective_goodput_bps() const {
    const auto& cfg = fed_.config();
    const double radio = static_cast<double>(cfg.radio_goodput.bps());
    const double backhaul = static_cast<double>(cfg.backhaul_rate.bps()) /
                            static_cast<double>(std::max(assoc_count_, 1));
    return std::max(std::min(radio, backhaul), 1.0);
}

}  // namespace wlanps::fed
