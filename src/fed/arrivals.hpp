#pragma once
/// \file arrivals.hpp
/// Deterministic seeded arrival processes for federation cells.
///
/// Each AP cell draws its client arrivals from a two-state MMPP ramp: a
/// calm base Poisson rate everywhere, plus an elevated rate inside one
/// flash-crowd window [flash_start, flash_start + flash_duration) — the
/// "everyone walks out of the conference hall at once" regime admission
/// control exists for.  Sampling uses thinning against the peak rate, so
/// the process is an exact nonhomogeneous Poisson draw and fully
/// deterministic given the cell's forked RNG stream.

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace wlanps::fed {

class ArrivalProcess {
public:
    ArrivalProcess(double base_hz, double flash_hz, Time flash_start, Time flash_end,
                   sim::Random rng)
        : base_hz_(base_hz),
          flash_hz_(flash_hz),
          flash_start_(flash_start),
          flash_end_(flash_end),
          rng_(rng) {}

    /// Instantaneous arrival rate at \p t, clients/second.
    [[nodiscard]] double rate_at(Time t) const {
        const bool in_flash = t >= flash_start_ && t < flash_end_;
        return base_hz_ + (in_flash ? flash_hz_ : 0.0);
    }

    /// Next arrival strictly after \p t; Time::max() when the process is
    /// silent (both rates zero).
    [[nodiscard]] Time next_after(Time t) {
        const double peak = base_hz_ + flash_hz_;
        if (peak <= 0.0) return Time::max();
        Time candidate = t;
        for (;;) {
            candidate = candidate + Time::from_seconds(rng_.exponential(1.0 / peak));
            // Flash-only process past its window: silent forever.
            if (base_hz_ <= 0.0 && candidate >= flash_end_) return Time::max();
            const double r = rate_at(candidate);
            if (r >= peak || rng_.uniform() * peak < r) return candidate;
        }
    }

private:
    double base_hz_;
    double flash_hz_;
    Time flash_start_;
    Time flash_end_;
    sim::Random rng_;
};

}  // namespace wlanps::fed
