#pragma once
/// \file federation.hpp
/// City-scale hotspot federation (DESIGN.md §13).
///
/// A Federation composes N AP cells on the sharded barrier-quantum kernel
/// (sim/sharded.hpp): cell a lives on shard a % shards, owns the slab
/// rows of its associated clients, and advances them with shard-local
/// events — burst service, roam timers, arrivals, faults.  Clients roam
/// between cells via disassociate → cross-shard mailbox handoff →
/// re-admission, so every cross-cell interaction rides the kernel's
/// deterministic (time, shard, seq) merge and the whole run is
/// bit-identical at every worker-thread count under the strict barrier.
///
/// The population lives in a struct-of-arrays ClientSlab (≤ 96 B/client,
/// static_assert'd); per-client results are exported stride-sampled, the
/// population as a whole is reduced into a PopulationSummary with a
/// FNV-1a fingerprint over the canonical per-row serialization — the
/// value the determinism CI gate compares across thread counts.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario_spec.hpp"
#include "fed/client_slab.hpp"
#include "obs/health_report.hpp"
#include "obs/watchdog.hpp"
#include "sim/random.hpp"
#include "sim/sharded.hpp"

namespace wlanps::fed {

class ApCell;

/// Whole-population reduction of one federation run.
struct PopulationSummary {
    std::uint64_t population = 0;  ///< slab rows ever used (initial + arrivals)
    std::uint64_t arrivals = 0;    ///< admission attempts that reached a cell
    std::uint64_t arrivals_truncated = 0;  ///< planned arrivals past the slab ceiling
    std::uint64_t departures = 0;
    std::uint64_t rejected = 0;   ///< admissions turned away (reject policy)
    std::uint64_t deferred = 0;   ///< admissions parked for retry (defer policy)
    std::uint64_t degraded = 0;   ///< admissions under the degrade policy
    std::uint64_t roams = 0;      ///< completed handoffs
    std::uint64_t handoff_failures = 0;
    std::uint64_t bursts_admitted = 0;
    std::uint64_t bursts_completed = 0;
    std::uint64_t bursts_shed = 0;
    std::uint64_t delivered_bits = 0;
    double energy_j = 0.0;  ///< total WNIC energy across the population
    std::uint64_t faults_injected = 0;
    std::uint64_t faults_missed = 0;  ///< per-client faults whose target had roamed away
    std::uint64_t peak_association = 0;  ///< max concurrent associations on any one cell
    /// FNV-1a over every row's canonical fixed-width serialization plus
    /// the counters above — identical iff two runs produced identical
    /// population results.
    std::uint64_t fingerprint = 0;

    /// Burst conservation: every admitted burst either completed or was
    /// shed, exactly.
    [[nodiscard]] bool conserved() const {
        return bursts_admitted == bursts_completed + bursts_shed;
    }
};

/// One federation run's outputs: the backend-shaped ScenarioResult
/// (stride-sampled clients), the population reduction, and the kernel
/// health rollup (shard/cell attribution, watchdog state).
struct FederationResult {
    core::ScenarioResult scenario;
    PopulationSummary population;
    obs::HealthReport health;
};

/// Owns the kernel, the slab, and the cells for one run.  Single-use:
/// construct, run(), read the result.
class Federation {
public:
    /// \p spec must be a validated Policy::federation spec; \p seed
    /// overrides the stream seed (the backend's per-run seed).
    Federation(const core::ScenarioSpec& spec, std::uint64_t seed);
    explicit Federation(const core::ScenarioSpec& spec);
    ~Federation();
    Federation(const Federation&) = delete;
    Federation& operator=(const Federation&) = delete;

    [[nodiscard]] FederationResult run();

    // --- cell-facing internals (ApCell drives these) ----------------------
    [[nodiscard]] const core::FederationConfig& config() const { return config_; }
    [[nodiscard]] const core::StreamConfig& stream() const { return stream_; }
    [[nodiscard]] ClientSlab& slab() { return *slab_; }
    [[nodiscard]] sim::ShardedSimulator& kernel() { return *kernel_; }
    [[nodiscard]] std::size_t shard_of_ap(std::uint32_t ap) const {
        return ap % static_cast<std::size_t>(config_.shards);
    }
    [[nodiscard]] ApCell& cell(std::uint32_t ap) { return *cells_[ap]; }
    [[nodiscard]] std::uint32_t ap_count() const {
        return static_cast<std::uint32_t>(cells_.size());
    }

    /// Route client \p id from cell \p from_ap to cell \p to_ap through the
    /// cross-shard mailbox (or a local post when both live on one shard —
    /// same lookahead either way, so the schedule is layout-independent).
    void post_handoff(std::uint32_t from_ap, std::uint32_t to_ap, std::uint32_t id);

    /// Cause-resolved energy cells for stride-sampled client \p id —
    /// array of 3 doubles (idle_listen, mode_switch, burst_rx), written
    /// only by the row's owning shard.  nullptr when \p id is unsampled.
    [[nodiscard]] double* sampled_causes(std::uint32_t id);

private:
    void build_cells();
    void plan_faults();
    [[nodiscard]] PopulationSummary summarize(Time horizon);
    void write_stream_samples(Time at);
    /// Register the continuously-swept invariants (burst conservation,
    /// slab epoch monotonicity, slab state validity) with \p watchdog.
    /// Checks read cross-shard state, so sweeps must come from the owning
    /// thread between run_until() chunks (workers parked).
    void register_watchdog_checks(obs::Watchdog& watchdog);
    /// Register the teardown-time invariants (exact conservation,
    /// energy-ledger telescoping drift, fingerprint stability) against
    /// the finished run's \p pop; swept once after summarize().
    void register_final_checks(obs::Watchdog& watchdog, const PopulationSummary& pop,
                               Time horizon);
    [[nodiscard]] obs::HealthReport build_health(const PopulationSummary& pop,
                                                 const obs::Watchdog* watchdog) const;

    core::FederationConfig config_;
    core::StreamConfig stream_;
    std::string label_;
    std::unique_ptr<sim::ShardedSimulator> kernel_;
    std::unique_ptr<ClientSlab> slab_;
    std::vector<std::unique_ptr<ApCell>> cells_;
    std::size_t population_ = 0;  // rows actually planned (<= slab capacity)
    std::uint64_t arrivals_truncated_ = 0;
    std::vector<std::array<double, 3>> sampled_causes_;
    // Streaming export (optional).
    std::unique_ptr<class StreamState> stream_state_;
    // Per-quantum kernel attribution, attached when an obs registry is
    // scoped or a health path is requested (WLANPS_OBS builds only).
    std::unique_ptr<obs::ShardTelemetry> telemetry_;
};

/// Run one federation scenario end to end.  The entry point
/// core::SimBackend dispatches Policy::federation to.
[[nodiscard]] FederationResult run_federation(const core::ScenarioSpec& spec);
[[nodiscard]] FederationResult run_federation(const core::ScenarioSpec& spec,
                                              std::uint64_t seed);

}  // namespace wlanps::fed
