#pragma once
/// \file experiment.hpp
/// Declarative description of a multi-run experiment.
///
/// The paper's tables and ablations are all sweeps: a grid of scenario
/// configurations, each simulated under one or more seeds, reduced into
/// per-point statistics.  An ExperimentSpec captures exactly that — a
/// scenario factory, a parameter grid, and a seed list — so the
/// ExperimentRunner (runner.hpp) can execute the runs on a worker pool
/// while keeping the reduction deterministic.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace wlanps::exp {

/// One cell of the parameter grid.  The factory uses `index` to look up
/// whatever configuration object it swept; `label` names the cell in
/// reports ("park 12 mW", "listen interval 5", ...).
struct ParamPoint {
    std::size_t index = 0;
    std::string label;
};

/// Named scalar samples produced by one simulation run, in report order.
/// Every run of the same spec must produce the same metric names in the
/// same order (the aggregator enforces this).
using Metrics = std::vector<std::pair<std::string, double>>;

/// Scenario factory: build a fresh world for (point, seed), run it to
/// completion, and return its metrics.  Must be self-contained — each
/// invocation owns its Simulator and Random, shares nothing mutable —
/// because the runner may invoke it from several threads at once.
using RunFn = std::function<Metrics(const ParamPoint&, std::uint64_t seed)>;

/// Scenario factory + parameter grid + seed list.
///
/// Fluent construction:
/// \code
///   auto spec = exp::ExperimentSpec{}
///                   .with_run(run_one)
///                   .with_point("baseline").with_point("2x burst")
///                   .with_seed_range(42, 5);
/// \endcode
class ExperimentSpec {
public:
    /// Set the scenario factory.
    ExperimentSpec& with_run(RunFn run) {
        run_ = std::move(run);
        return *this;
    }

    /// Append one grid cell; its index is its position in append order.
    ExperimentSpec& with_point(std::string label) {
        points_.push_back(ParamPoint{points_.size(), std::move(label)});
        return *this;
    }

    /// Append several grid cells at once.
    ExperimentSpec& with_points(const std::vector<std::string>& labels) {
        for (const auto& label : labels) with_point(label);
        return *this;
    }

    /// Replace the seed list.
    ExperimentSpec& with_seeds(std::vector<std::uint64_t> seeds) {
        seeds_ = std::move(seeds);
        return *this;
    }

    /// Replace the seed list with {first, first+1, ..., first+count-1}.
    ExperimentSpec& with_seed_range(std::uint64_t first, std::size_t count) {
        seeds_.clear();
        for (std::size_t i = 0; i < count; ++i) seeds_.push_back(first + i);
        return *this;
    }

    /// Name the evaluation engine this spec's RunFn is bound to ("sim",
    /// "analytic").  Metadata for reports and BENCH json: the factory is
    /// what actually routes work to a core::Backend (e.g. via
    /// scenarios::spec_grid_run), so keep the two in sync.
    ExperimentSpec& with_backend(std::string backend) {
        backend_ = std::move(backend);
        return *this;
    }

    /// Worker threads *inside* each simulation (the sharded kernel's
    /// ShardingConfig::threads), as opposed to the runner's across-run
    /// pool.  Declarative: the factory must actually pass the value into
    /// its scenarios; the runner uses it to shrink its own pool so
    /// runner_threads x sim_threads stays within the host budget
    /// (EXPERIMENTS.md, "Threads across runs vs. threads within a run").
    /// 0 or 1 = runs are single-threaded (the default).
    ExperimentSpec& with_sim_threads(unsigned v) {
        sim_threads_ = v;
        return *this;
    }

    [[nodiscard]] const RunFn& run() const { return run_; }
    [[nodiscard]] unsigned sim_threads() const { return sim_threads_; }
    [[nodiscard]] const std::string& backend() const { return backend_; }
    [[nodiscard]] const std::vector<ParamPoint>& points() const { return points_; }
    [[nodiscard]] const std::vector<std::uint64_t>& seeds() const { return seeds_; }
    /// Total number of simulation runs the spec describes.
    [[nodiscard]] std::size_t total_runs() const { return points_.size() * seeds_.size(); }

    /// Reject nonsense (no factory, empty grid, empty or duplicated seed
    /// list) with a wlanps::ContractViolation naming the problem.
    void validate() const;

private:
    RunFn run_;
    std::vector<ParamPoint> points_;
    std::vector<std::uint64_t> seeds_;
    std::string backend_ = "sim";
    unsigned sim_threads_ = 0;
};

}  // namespace wlanps::exp
