#pragma once
/// \file runner.hpp
/// Parallel experiment execution with a deterministic reduction.
///
/// The runner executes every (point, seed) run of an ExperimentSpec on a
/// pool of worker threads.  Each run owns a fresh Simulator (the factory
/// builds it), so runs share nothing and the per-run results are the same
/// doubles regardless of which thread computed them.  The reduction into
/// per-point Accumulators happens *after* the pool drains, serially, in
/// (point, seed) order — so a 16-thread run is bit-identical to a
/// 1-thread run of the same spec.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace wlanps::exp {

/// The metrics one run produced, tagged with its grid cell and seed.
struct RunRecord {
    std::size_t point = 0;
    std::uint64_t seed = 0;
    Metrics metrics;
    /// Everything the run recorded through the obs registry (the runner
    /// scopes one registry per run; empty when the run recorded nothing).
    obs::MetricsSnapshot obs;
};

/// Per-point, per-metric statistics over the seed list, reduced in seed
/// order.  Metric names keep the order the factory emitted them in.
class Aggregate {
public:
    /// Statistics for \p metric at grid cell \p point; throws
    /// ContractViolation if the metric was never recorded there.
    [[nodiscard]] const sim::Accumulator& metric(std::size_t point, std::string_view name) const;

    /// Like metric(), but nullptr instead of throwing.
    [[nodiscard]] const sim::Accumulator* find(std::size_t point, std::string_view name) const;

    /// Metric names recorded at \p point, in emission order.
    [[nodiscard]] std::vector<std::string> metric_names(std::size_t point) const;

    [[nodiscard]] std::size_t point_count() const { return points_.size(); }

    /// The merged obs instruments at \p point: every run's snapshot folded
    /// together in (point, seed) order, so histograms carry cross-seed
    /// percentiles and the result is bit-identical at any thread count.
    [[nodiscard]] const obs::MetricsSnapshot& observed(std::size_t point) const;

private:
    friend class ExperimentRunner;
    using PointStats = std::vector<std::pair<std::string, sim::Accumulator>>;
    std::vector<PointStats> points_;
    std::vector<obs::MetricsSnapshot> observed_;
};

/// Everything a run() call produced.
struct ExperimentResult {
    /// One record per run, point-major, seeds in spec order within a point.
    std::vector<RunRecord> runs;
    Aggregate aggregate;
};

/// Executes ExperimentSpecs.  Stateless between runs; reusable.
class ExperimentRunner {
public:
    /// \p threads worker threads; 0 means default_threads().
    explicit ExperimentRunner(unsigned threads = 0);

    /// Validate \p spec, execute every run, and reduce.  If any run threw,
    /// the remaining runs still finish, the pool is joined, and the first
    /// failure in (point, seed) order is rethrown — the pool never
    /// deadlocks on a throwing worker.
    [[nodiscard]] ExperimentResult run(const ExperimentSpec& spec) const;

    [[nodiscard]] unsigned threads() const { return threads_; }

    /// WLANPS_EXP_THREADS if set (>=1), else std::thread::hardware_concurrency.
    [[nodiscard]] static unsigned default_threads();

private:
    unsigned threads_;
};

}  // namespace wlanps::exp
