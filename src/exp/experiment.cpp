#include "exp/experiment.hpp"

#include <unordered_set>

#include "sim/assert.hpp"

namespace wlanps::exp {

void ExperimentSpec::validate() const {
    WLANPS_REQUIRE_MSG(run_ != nullptr, "ExperimentSpec has no scenario factory (with_run)");
    WLANPS_REQUIRE_MSG(!points_.empty(), "ExperimentSpec has an empty parameter grid (with_point)");
    WLANPS_REQUIRE_MSG(!seeds_.empty(), "ExperimentSpec has an empty seed list (with_seeds)");
    std::unordered_set<std::uint64_t> unique(seeds_.begin(), seeds_.end());
    WLANPS_REQUIRE_MSG(unique.size() == seeds_.size(),
                       "ExperimentSpec seed list contains duplicates — each seed is one "
                       "independent run, listing one twice double-counts it");
    WLANPS_REQUIRE_MSG(!backend_.empty(),
                       "ExperimentSpec backend name is empty (with_backend)");
}

}  // namespace wlanps::exp
