#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "obs/hooks.hpp"
#include "sim/assert.hpp"

namespace wlanps::exp {

const sim::Accumulator& Aggregate::metric(std::size_t point, std::string_view name) const {
    const sim::Accumulator* acc = find(point, name);
    WLANPS_REQUIRE_MSG(acc != nullptr,
                       "no metric named '" + std::string(name) + "' at grid point " +
                           std::to_string(point));
    return *acc;
}

const sim::Accumulator* Aggregate::find(std::size_t point, std::string_view name) const {
    if (point >= points_.size()) return nullptr;
    for (const auto& [metric_name, acc] : points_[point]) {
        if (metric_name == name) return &acc;
    }
    return nullptr;
}

std::vector<std::string> Aggregate::metric_names(std::size_t point) const {
    WLANPS_REQUIRE_MSG(point < points_.size(), "grid point out of range");
    std::vector<std::string> names;
    names.reserve(points_[point].size());
    for (const auto& [name, acc] : points_[point]) names.push_back(name);
    return names;
}

const obs::MetricsSnapshot& Aggregate::observed(std::size_t point) const {
    WLANPS_REQUIRE_MSG(point < observed_.size(), "grid point out of range");
    return observed_[point];
}

ExperimentRunner::ExperimentRunner(unsigned threads)
    : threads_(threads == 0 ? default_threads() : threads) {}

unsigned ExperimentRunner::default_threads() {
    if (const char* env = std::getenv("WLANPS_EXP_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1) return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ExperimentResult ExperimentRunner::run(const ExperimentSpec& spec) const {
    spec.validate();

    const auto& points = spec.points();
    const auto& seeds = spec.seeds();
    const std::size_t total = spec.total_runs();

    // Slot per run, point-major; workers write only their own slot, so the
    // result layout is fixed before any thread starts.
    std::vector<RunRecord> records(total);
    std::vector<std::exception_ptr> errors(total);

    auto execute = [&](std::size_t task) {
        const std::size_t point_index = task / seeds.size();
        const std::uint64_t seed = seeds[task % seeds.size()];
        RunRecord& rec = records[task];
        rec.point = point_index;
        rec.seed = seed;
        try {
            // One registry per run, installed thread-locally so anything
            // the run touches (kernel, MACs, NICs, TCP) records into it
            // without plumbing; snapshotted for the serial reduction.
            obs::MetricsRegistry registry;
            obs::ScopedRegistry scope(registry);
            rec.metrics = spec.run()(points[point_index], seed);
            rec.obs = registry.snapshot();
        } catch (...) {
            errors[task] = std::current_exception();
        }
    };

    // Runs that are internally parallel (spec.sim_threads() sharded-kernel
    // workers each) get a proportionally smaller across-run pool, keeping
    // the total thread footprint near threads_ instead of multiplying the
    // two axes together.
    const unsigned per_run = std::max(1u, spec.sim_threads());
    const unsigned budget = std::max(1u, threads_ / per_run);
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(budget, total));
    if (workers <= 1) {
        for (std::size_t task = 0; task < total; ++task) execute(task);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                // execute() never throws (it traps into errors[]), so a
                // worker always drains to the end and join() cannot hang.
                for (std::size_t task = next.fetch_add(1); task < total;
                     task = next.fetch_add(1)) {
                    execute(task);
                }
            });
        }
        for (auto& t : pool) t.join();
    }

    // Surface the first failure in deterministic (point, seed) order.
    for (const auto& error : errors) {
        if (error) std::rethrow_exception(error);
    }

    // Deterministic reduction: serial, point-major, seeds in spec order —
    // identical arithmetic whatever the thread count was.
    ExperimentResult result;
    result.aggregate.points_.resize(points.size());
    result.aggregate.observed_.resize(points.size());
    for (const RunRecord& rec : records) {
        result.aggregate.observed_[rec.point].merge_from(rec.obs);
        auto& stats = result.aggregate.points_[rec.point];
        for (const auto& [name, value] : rec.metrics) {
            sim::Accumulator* acc = nullptr;
            for (auto& [existing, a] : stats) {
                if (existing == name) {
                    acc = &a;
                    break;
                }
            }
            if (acc == nullptr) {
                stats.emplace_back(name, sim::Accumulator{});
                acc = &stats.back().second;
            }
            acc->add(value);
        }
    }
    // Every seed of a point must have produced every metric of that point:
    // a factory that emits different metric names per seed is a bug.
    for (std::size_t p = 0; p < result.aggregate.points_.size(); ++p) {
        for (const auto& [name, acc] : result.aggregate.points_[p]) {
            WLANPS_REQUIRE_MSG(acc.count() == seeds.size(),
                               "metric '" + name + "' missing from some runs of point " +
                                   std::to_string(p));
        }
    }
    result.runs = std::move(records);
    return result;
}

}  // namespace wlanps::exp
