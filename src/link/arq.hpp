#pragma once
/// \file arq.hpp
/// ARQ retransmission schemes: stop-and-wait, go-back-N, selective repeat.

#include "link/protocol.hpp"

namespace wlanps::link {

/// Stop-and-wait: one frame, ack, retransmit on error.
class StopAndWaitArq final : public LinkProtocol {
public:
    explicit StopAndWaitArq(LinkConfig config) : LinkProtocol(config) {}
    [[nodiscard]] TransferReport transfer(channel::GilbertElliott& channel, Time start,
                                          DataSize message) override;
    [[nodiscard]] std::string name() const override { return "stop-and-wait"; }
};

/// Go-back-N: pipelined; an error flushes the in-flight window, so each
/// lost frame costs up to `window` frame airtimes of wasted transmission.
class GoBackNArq final : public LinkProtocol {
public:
    explicit GoBackNArq(LinkConfig config) : LinkProtocol(config) {}
    [[nodiscard]] TransferReport transfer(channel::GilbertElliott& channel, Time start,
                                          DataSize message) override;
    [[nodiscard]] std::string name() const override { return "go-back-n"; }
};

/// Selective repeat: pipelined; only erroneous frames are retransmitted.
class SelectiveRepeatArq final : public LinkProtocol {
public:
    explicit SelectiveRepeatArq(LinkConfig config) : LinkProtocol(config) {}
    [[nodiscard]] TransferReport transfer(channel::GilbertElliott& channel, Time start,
                                          DataSize message) override;
    [[nodiscard]] std::string name() const override { return "selective-repeat"; }
};

}  // namespace wlanps::link
