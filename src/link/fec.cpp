#include "link/fec.hpp"

#include "sim/assert.hpp"

namespace wlanps::link {

namespace {
std::int64_t frame_count(const LinkConfig& c, DataSize message) {
    return (message.bits() + c.mtu.bits() - 1) / c.mtu.bits();
}

DataSize frame_payload(const LinkConfig& c, DataSize message, std::int64_t index,
                       std::int64_t frames) {
    if (index + 1 < frames) return c.mtu;
    return DataSize::from_bits(message.bits() - c.mtu.bits() * (frames - 1));
}

/// Coded on-air size of a frame (payload + header, expanded by n/k).
DataSize coded_size(const LinkConfig& c, const FecCode& code, DataSize payload) {
    const double factor = code.overhead_factor();
    const auto bits = static_cast<std::int64_t>(
        static_cast<double>((payload + c.header).bits()) * factor + 0.5);
    return DataSize::from_bits(bits);
}
}  // namespace

FecOnly::FecOnly(LinkConfig config, FecCode code, sim::Random rng)
    : LinkProtocol(config), code_(code), rng_(rng) {}

std::string FecOnly::name() const {
    return "fec(" + std::to_string(code_.n) + "," + std::to_string(code_.k) + ")";
}

TransferReport FecOnly::transfer(channel::GilbertElliott& channel, Time start,
                                 DataSize message) {
    WLANPS_REQUIRE(message > DataSize::zero());
    TransferReport report;
    report.useful = message;
    const std::int64_t frames = frame_count(config_, message);
    std::int64_t lost = 0;

    for (std::int64_t i = 0; i < frames; ++i) {
        const DataSize payload = frame_payload(config_, message, i, frames);
        const DataSize on_air = coded_size(config_, code_, payload);
        // Residual frame survival under the code at the channel's current
        // BER; the chain still advances over the (coded) airtime.
        const double ber = channel.ber_at(start + report.elapsed);
        const bool survives = code_.frame_survives(rng_, on_air.bits(), ber);
        (void)channel.transmit_success(start + report.elapsed, on_air, config_.rate);
        charge_frame(report, on_air);
        if (!survives) ++lost;
    }
    last_loss_rate_ = frames == 0 ? 0.0 : static_cast<double>(lost) / static_cast<double>(frames);
    report.delivered = lost == 0;
    return report;
}

HybridArq::HybridArq(LinkConfig config, FecCode code, sim::Random rng)
    : LinkProtocol(config), code_(code), rng_(rng) {}

std::string HybridArq::name() const {
    return "hybrid-arq(" + std::to_string(code_.n) + "," + std::to_string(code_.k) + ")";
}

TransferReport HybridArq::transfer(channel::GilbertElliott& channel, Time start,
                                   DataSize message) {
    WLANPS_REQUIRE(message > DataSize::zero());
    TransferReport report;
    report.useful = message;
    const std::int64_t frames = frame_count(config_, message);

    for (std::int64_t i = 0; i < frames; ++i) {
        const DataSize payload = frame_payload(config_, message, i, frames);
        const DataSize on_air = coded_size(config_, code_, payload);
        int attempts = 0;
        bool ok = false;
        while (attempts < config_.retry_limit) {
            ++attempts;
            const double ber = channel.ber_at(start + report.elapsed);
            ok = code_.frame_survives(rng_, on_air.bits(), ber);
            (void)channel.transmit_success(start + report.elapsed, on_air, config_.rate);
            charge_frame(report, on_air);
            charge_ack(report);
            if (ok) break;
        }
        if (!ok) return report;
    }
    report.delivered = true;
    return report;
}

AdaptiveArq::AdaptiveArq(LinkConfig config, FecCode code, channel::Predictor& predictor,
                         sim::Random rng)
    : LinkProtocol(config), code_(code), predictor_(predictor), rng_(rng) {}

std::string AdaptiveArq::name() const { return "adaptive-arq[" + predictor_.name() + "]"; }

TransferReport AdaptiveArq::transfer(channel::GilbertElliott& channel, Time start,
                                     DataSize message) {
    WLANPS_REQUIRE(message > DataSize::zero());
    TransferReport report;
    report.useful = message;
    const std::int64_t frames = frame_count(config_, message);

    for (std::int64_t i = 0; i < frames; ++i) {
        const DataSize payload = frame_payload(config_, message, i, frames);
        int attempts = 0;
        bool ok = false;
        while (attempts < config_.retry_limit) {
            ++attempts;
            const Time t = start + report.elapsed;
            // Clairvoyant predictors are told the truth before predicting
            // (this is how the accuracy-vs-savings sweep is driven).
            if (auto* oracle = dynamic_cast<channel::NoisyOraclePredictor*>(&predictor_)) {
                oracle->set_truth(channel.ber_at(t) < 1e-5);
            }
            const bool predicted_good = predictor_.predict();
            bool actual_good;
            if (predicted_good) {
                // Plain ARQ frame.
                ++plain_frames_;
                const DataSize on_air = payload + config_.header;
                ok = channel.transmit_success(t, on_air, config_.rate);
                charge_frame(report, on_air);
                actual_good = ok;
            } else {
                // FEC-coded frame.
                ++coded_frames_;
                const DataSize on_air = coded_size(config_, code_, payload);
                const double ber = channel.ber_at(t);
                ok = code_.frame_survives(rng_, on_air.bits(), ber);
                (void)channel.transmit_success(t, on_air, config_.rate);
                charge_frame(report, on_air);
                // The channel was "good" for prediction purposes if even a
                // plain frame would likely have survived.
                actual_good = ber < 1e-5;
            }
            predictor_.observe_and_score(actual_good);
            charge_ack(report);
            if (ok) break;
        }
        if (!ok) return report;
    }
    report.delivered = true;
    return report;
}

}  // namespace wlanps::link
