#include "link/adaptive_mtu.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace wlanps::link {

AdaptiveMtuArq::AdaptiveMtuArq(LinkConfig config, AdaptiveMtuConfig mtu_config)
    : LinkProtocol(config), mtu_config_(mtu_config), mtu_(config.mtu) {
    WLANPS_REQUIRE(mtu_config_.min_mtu > DataSize::zero());
    WLANPS_REQUIRE(mtu_config_.min_mtu <= config.mtu);
    WLANPS_REQUIRE(mtu_config_.grow_threshold >= 1);
}

TransferReport AdaptiveMtuArq::transfer(channel::GilbertElliott& channel, Time start,
                                        DataSize message) {
    WLANPS_REQUIRE(message > DataSize::zero());
    TransferReport report;
    report.useful = message;

    DataSize remaining = message;
    int frame_attempts = 0;
    while (!remaining.is_zero()) {
        const DataSize payload = std::min(remaining, mtu_);
        const DataSize on_air = payload + config_.header;
        const bool ok = channel.transmit_success(start + report.elapsed, on_air, config_.rate);
        charge_frame(report, on_air);

        if (ok) {
            remaining -= payload;
            frame_attempts = 0;
            ++success_streak_;
            if (success_streak_ >= mtu_config_.grow_threshold && mtu_ < config_.mtu) {
                mtu_ = std::min(mtu_ * 2.0, config_.mtu);
                success_streak_ = 0;
            }
            continue;
        }

        // Failure: shrink the frame and retry (selective-repeat nack cost).
        success_streak_ = 0;
        mtu_ = std::max(mtu_ * 0.5, mtu_config_.min_mtu);
        report.elapsed += config_.turnaround;
        report.energy += (config_.rx_power * 2.0).over(config_.turnaround);
        if (++frame_attempts >= config_.retry_limit) return report;
    }

    // Cumulative acks, one per window of frames (as SelectiveRepeatArq).
    const std::int64_t frames = std::max<std::int64_t>(1, report.transmissions);
    const std::int64_t acks = (frames + config_.window - 1) / config_.window;
    for (std::int64_t a = 0; a < acks; ++a) charge_ack(report);
    report.delivered = true;
    return report;
}

}  // namespace wlanps::link
