#pragma once
/// \file fec.hpp
/// FEC, hybrid, and channel-adaptive link protocols.

#include <memory>

#include "channel/predictor.hpp"
#include "link/arq.hpp"
#include "link/protocol.hpp"
#include "sim/random.hpp"

namespace wlanps::link {

/// Pure FEC: every frame carries code overhead, no retransmission.  Frames
/// whose residual errors exceed the code's correction power are lost
/// (delivered=false if any frame is lost — suitable where the upper layer
/// can conceal rare losses, e.g. audio).
class FecOnly final : public LinkProtocol {
public:
    FecOnly(LinkConfig config, FecCode code, sim::Random rng);
    [[nodiscard]] TransferReport transfer(channel::GilbertElliott& channel, Time start,
                                          DataSize message) override;
    [[nodiscard]] std::string name() const override;
    /// Fraction of frames lost in the last transfer.
    [[nodiscard]] double last_loss_rate() const { return last_loss_rate_; }

private:
    FecCode code_;
    sim::Random rng_;
    double last_loss_rate_ = 0.0;
};

/// Hybrid ARQ type-I: FEC-coded frames, retransmitted when the code fails.
class HybridArq final : public LinkProtocol {
public:
    HybridArq(LinkConfig config, FecCode code, sim::Random rng);
    [[nodiscard]] TransferReport transfer(channel::GilbertElliott& channel, Time start,
                                          DataSize message) override;
    [[nodiscard]] std::string name() const override;

private:
    FecCode code_;
    sim::Random rng_;
};

/// Channel-adaptive ARQ (paper §1): a predictor classifies the upcoming
/// channel state from past frame outcomes; predicted-bad frames are sent
/// FEC-coded, predicted-good frames plain — tracking the better scheme on
/// a bursty channel.  The predictor is observed/scored on every frame, so
/// its accuracy is available after the transfer.
class AdaptiveArq final : public LinkProtocol {
public:
    /// \p predictor is owned by the caller and shared across transfers so
    /// it can keep learning.
    AdaptiveArq(LinkConfig config, FecCode code, channel::Predictor& predictor, sim::Random rng);
    [[nodiscard]] TransferReport transfer(channel::GilbertElliott& channel, Time start,
                                          DataSize message) override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::uint64_t coded_frames() const { return coded_frames_; }
    [[nodiscard]] std::uint64_t plain_frames() const { return plain_frames_; }

private:
    FecCode code_;
    channel::Predictor& predictor_;
    sim::Random rng_;
    std::uint64_t coded_frames_ = 0;
    std::uint64_t plain_frames_ = 0;
};

}  // namespace wlanps::link
