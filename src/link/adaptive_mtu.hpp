#pragma once
/// \file adaptive_mtu.hpp
/// Packet-size-adaptive ARQ.
///
/// On a noisy channel long frames almost always contain an error while
/// short frames survive; on a clean channel long frames amortize header
/// and turnaround overhead.  This protocol adapts the frame size to the
/// observed outcome stream: halve after a failure, climb back after a run
/// of successes — the packet-size counterpart of ARF rate adaptation.

#include "link/protocol.hpp"

namespace wlanps::link {

/// MTU adaptation parameters.
struct AdaptiveMtuConfig {
    DataSize min_mtu = DataSize::from_bytes(128);
    /// Consecutive successes before doubling the frame size.
    int grow_threshold = 4;
};

/// Selective-repeat ARQ with a dynamically adapted frame size.
class AdaptiveMtuArq final : public LinkProtocol {
public:
    AdaptiveMtuArq(LinkConfig config, AdaptiveMtuConfig mtu_config = AdaptiveMtuConfig{});

    [[nodiscard]] TransferReport transfer(channel::GilbertElliott& channel, Time start,
                                          DataSize message) override;
    [[nodiscard]] std::string name() const override { return "adaptive-mtu"; }

    /// Frame size the adapter ended the last transfer with.
    [[nodiscard]] DataSize current_mtu() const { return mtu_; }

private:
    AdaptiveMtuConfig mtu_config_;
    DataSize mtu_;
    int success_streak_ = 0;
};

}  // namespace wlanps::link
