#include "link/protocol.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace wlanps::link {

void LinkProtocol::charge_frame(TransferReport& report, DataSize on_air_size) const {
    const Time air = config_.rate.transmit_time(on_air_size);
    report.elapsed += air;
    report.on_air += on_air_size;
    report.energy += config_.tx_power.over(air) + config_.rx_power.over(air);
    ++report.transmissions;
}

void LinkProtocol::charge_ack(TransferReport& report) const {
    const Time air = config_.rate.transmit_time(config_.ack);
    report.elapsed += config_.turnaround + air;
    report.on_air += config_.ack;
    // Ack direction: receiver transmits, sender receives.
    report.energy += config_.tx_power.over(air) + config_.rx_power.over(air);
    // Both radios listen through the turnaround.
    report.energy += (config_.rx_power * 2.0).over(config_.turnaround);
}

double optimal_payload_bits(double ber, double header_bits) {
    WLANPS_REQUIRE(ber > 0.0 && ber < 1.0);
    WLANPS_REQUIRE(header_bits > 0.0);
    const double lnq = std::log1p(-ber);  // < 0
    const double h = header_bits;
    // Positive root of L²·lnq + h·L·lnq + h = 0.
    const double disc = h * h * lnq * lnq - 4.0 * h * lnq;
    return (-h * lnq - std::sqrt(disc)) / (2.0 * lnq);
}

double FecCode::block_failure_probability(double ber) const {
    WLANPS_REQUIRE(ber >= 0.0 && ber <= 1.0);
    const double lambda = static_cast<double>(n) * ber;
    if (lambda < 30.0) {
        // Poisson tail: P(X > t) = 1 - sum_{i<=t} e^-l l^i / i!
        double term = std::exp(-lambda);
        double cdf = term;
        for (int i = 1; i <= t; ++i) {
            term *= lambda / static_cast<double>(i);
            cdf += term;
        }
        return std::clamp(1.0 - cdf, 0.0, 1.0);
    }
    // Normal approximation with continuity correction.
    const double sigma = std::sqrt(lambda * (1.0 - ber));
    const double z = (static_cast<double>(t) + 0.5 - lambda) / sigma;
    return std::clamp(0.5 * std::erfc(z / std::sqrt(2.0)), 0.0, 1.0);
}

bool FecCode::frame_survives(sim::Random& rng, std::int64_t payload_bits, double ber) const {
    WLANPS_REQUIRE(payload_bits > 0);
    const auto blocks = static_cast<int>((payload_bits + k - 1) / k);
    const double p_block = block_failure_probability(ber);
    if (p_block <= 0.0) return true;
    // Frame fails if any block fails.
    const double p_frame_ok = std::pow(1.0 - p_block, blocks);
    return rng.chance(p_frame_ok);
}

}  // namespace wlanps::link
