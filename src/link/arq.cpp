#include "link/arq.hpp"

#include "sim/assert.hpp"

namespace wlanps::link {

namespace {
/// Split \p message into MTU-sized payload chunks (last one may be short).
std::int64_t frame_count(const LinkConfig& c, DataSize message) {
    return (message.bits() + c.mtu.bits() - 1) / c.mtu.bits();
}

DataSize frame_payload(const LinkConfig& c, DataSize message, std::int64_t index,
                       std::int64_t frames) {
    if (index + 1 < frames) return c.mtu;
    const std::int64_t rem = message.bits() - c.mtu.bits() * (frames - 1);
    return DataSize::from_bits(rem);
}
}  // namespace

TransferReport StopAndWaitArq::transfer(channel::GilbertElliott& channel, Time start,
                                        DataSize message) {
    WLANPS_REQUIRE(message > DataSize::zero());
    TransferReport report;
    report.useful = message;
    const std::int64_t frames = frame_count(config_, message);

    for (std::int64_t i = 0; i < frames; ++i) {
        const DataSize payload = frame_payload(config_, message, i, frames);
        const DataSize on_air = payload + config_.header;
        int attempts = 0;
        bool ok = false;
        while (attempts < config_.retry_limit) {
            ++attempts;
            ok = channel.transmit_success(start + report.elapsed, on_air, config_.rate);
            charge_frame(report, on_air);
            charge_ack(report);  // ack (or timeout of the same duration)
            if (ok) break;
        }
        if (!ok) return report;  // delivered stays false
    }
    report.delivered = true;
    return report;
}

TransferReport GoBackNArq::transfer(channel::GilbertElliott& channel, Time start,
                                    DataSize message) {
    WLANPS_REQUIRE(message > DataSize::zero());
    TransferReport report;
    report.useful = message;
    const std::int64_t frames = frame_count(config_, message);

    std::int64_t i = 0;
    int attempts_here = 0;
    while (i < frames) {
        const DataSize payload = frame_payload(config_, message, i, frames);
        const DataSize on_air = payload + config_.header;
        const bool ok = channel.transmit_success(start + report.elapsed, on_air, config_.rate);
        charge_frame(report, on_air);
        if (ok) {
            ++i;
            attempts_here = 0;
            continue;
        }
        // Error detected one window later: the (up to window-1) successor
        // frames already in flight are wasted and will be resent.
        ++attempts_here;
        if (attempts_here >= config_.retry_limit) return report;
        const std::int64_t wasted = std::min<std::int64_t>(config_.window - 1, frames - i - 1);
        for (std::int64_t w = 0; w < wasted; ++w) {
            const DataSize wp = frame_payload(config_, message, i + 1 + w, frames);
            charge_frame(report, wp + config_.header);
        }
        // Cumulative-ack turnaround before resuming from frame i.
        charge_ack(report);
    }
    // One cumulative ack closes the transfer.
    charge_ack(report);
    report.delivered = true;
    return report;
}

TransferReport SelectiveRepeatArq::transfer(channel::GilbertElliott& channel, Time start,
                                            DataSize message) {
    WLANPS_REQUIRE(message > DataSize::zero());
    TransferReport report;
    report.useful = message;
    const std::int64_t frames = frame_count(config_, message);

    for (std::int64_t i = 0; i < frames; ++i) {
        const DataSize payload = frame_payload(config_, message, i, frames);
        const DataSize on_air = payload + config_.header;
        int attempts = 0;
        bool ok = false;
        while (attempts < config_.retry_limit) {
            ++attempts;
            ok = channel.transmit_success(start + report.elapsed, on_air, config_.rate);
            charge_frame(report, on_air);
            if (ok) break;
            // Selective nack rides the reverse stream: only the turnaround
            // cost is paid before the retransmission.
            report.elapsed += config_.turnaround;
            report.energy += (config_.rx_power * 2.0).over(config_.turnaround);
        }
        if (!ok) return report;
    }
    // Per-window cumulative acks: approximate as one ack per window.
    const std::int64_t acks = (frames + config_.window - 1) / config_.window;
    for (std::int64_t a = 0; a < acks; ++a) charge_ack(report);
    report.delivered = true;
    return report;
}

}  // namespace wlanps::link
