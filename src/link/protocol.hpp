#pragma once
/// \file protocol.hpp
/// Logical-link-layer protocol framework (paper §1, link layer).
///
/// The paper's link-layer claim: energy can be traded between ARQ
/// retransmissions and FEC overhead, with channel-adaptive schemes (driven
/// by channel-state prediction) tracking the better of the two.  These
/// classes transfer a message over a Gilbert–Elliott channel and report
/// elapsed time, radio energy, and on-air overhead so the AB2 bench can
/// draw the trade-off curves.
///
/// Protocols run synchronously against their own time cursor — the
/// channel chain advances as the transfer progresses, no Simulator needed.

#include <limits>
#include <memory>
#include <string>

#include "channel/gilbert_elliott.hpp"
#include "sim/units.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace wlanps::link {

/// Radio and framing parameters shared by all link protocols.
struct LinkConfig {
    Rate rate = Rate::from_mbps(1.0);
    DataSize mtu = DataSize::from_bytes(1024);     ///< payload per frame
    DataSize header = DataSize::from_bytes(16);    ///< per-frame overhead
    DataSize ack = DataSize::from_bytes(8);
    Time turnaround = Time::from_us(200);          ///< rx/tx switch + processing
    power::Power tx_power = power::Power::from_watts(1.2);
    power::Power rx_power = power::Power::from_watts(0.9);
    int retry_limit = 16;                          ///< per-frame
    /// Go-Back-N window (frames in flight when an error is detected).
    int window = 8;
};

/// Outcome of one message transfer.
struct TransferReport {
    bool delivered = false;
    Time elapsed = Time::zero();
    power::Energy energy;          ///< sender tx + receiver rx + ack both ways
    DataSize on_air;               ///< total bits put on the channel
    DataSize useful;               ///< message payload bits
    int transmissions = 0;         ///< data-frame transmissions (incl. retries)

    /// Joules per delivered payload bit (infinite if undelivered).
    [[nodiscard]] double energy_per_useful_bit() const {
        if (!delivered || useful.is_zero()) return std::numeric_limits<double>::infinity();
        return energy.joules() / static_cast<double>(useful.bits());
    }
    /// Payload bits per second over the transfer.
    [[nodiscard]] double goodput_bps() const {
        if (!delivered || elapsed.is_zero()) return 0.0;
        return static_cast<double>(useful.bits()) / elapsed.to_seconds();
    }
};

/// Base class: common accounting helpers.
class LinkProtocol {
public:
    explicit LinkProtocol(LinkConfig config) : config_(config) {}
    virtual ~LinkProtocol() = default;

    /// Transfer \p message over \p channel starting at \p start.
    [[nodiscard]] virtual TransferReport transfer(channel::GilbertElliott& channel, Time start,
                                                  DataSize message) = 0;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] const LinkConfig& config() const { return config_; }

protected:
    /// Charge one data-frame transmission (both radios) to \p report.
    void charge_frame(TransferReport& report, DataSize on_air_size) const;
    /// Charge one ack exchange (turnaround + ack airtime).
    void charge_ack(TransferReport& report) const;

    LinkConfig config_;
};

/// Closed-form throughput-optimal ARQ payload size for a memoryless
/// channel with bit error rate \p ber and per-frame header of
/// \p header_bits: maximizing L·q^(L+h)/(L+h) with q = 1-ber gives
///   L* = (-h·ln q - sqrt(h²·ln²q - 4·h·ln q)) / (2·ln q).
/// The size-adaptation protocols should hover near this value; tests
/// cross-check the simulation against it.
[[nodiscard]] double optimal_payload_bits(double ber, double header_bits);

/// A forward-error-correction block code (n, k, t): k data bits become n
/// coded bits; up to t bit errors per block are corrected.
struct FecCode {
    int n = 1023;
    int k = 923;
    int t = 10;  // BCH(1023, 923) corrects 10 errors

    [[nodiscard]] double overhead_factor() const {
        return static_cast<double>(n) / static_cast<double>(k);
    }
    /// Probability a block of n bits at \p ber exceeds t errors
    /// (analytic, normal/Poisson approximated for large n).
    [[nodiscard]] double block_failure_probability(double ber) const;
    /// Sample whether a frame of \p payload_bits survives coding at \p ber.
    [[nodiscard]] bool frame_survives(sim::Random& rng, std::int64_t payload_bits,
                                      double ber) const;
};

}  // namespace wlanps::link
