#include "power/energy_meter.hpp"

#include <utility>

#include "sim/assert.hpp"

namespace wlanps::power {

void EnergyMeter::add_constant(std::string name, Power draw) {
    const Time from = sim_.now();
    add_source(std::move(name), [draw, from](Time t) {
        return t <= from ? Energy::zero() : draw.over(t - from);
    });
}

void EnergyMeter::add_machine(std::string name, const PowerStateMachine& machine) {
    add_source(std::move(name), [&machine](Time) { return machine.energy_consumed(); });
}

void EnergyMeter::add_source(std::string name, std::function<Energy(Time)> source) {
    WLANPS_REQUIRE(!name.empty());
    WLANPS_REQUIRE(source != nullptr);
    for (const Source& s : sources_) {
        WLANPS_REQUIRE_MSG(s.name != name, "duplicate meter source: " + name);
    }
    sources_.push_back(Source{std::move(name), std::move(source)});
}

const EnergyMeter::Source& EnergyMeter::find(const std::string& name) const {
    for (const Source& s : sources_) {
        if (s.name == name) return s;
    }
    WLANPS_REQUIRE_MSG(false, "unknown meter source: " + name);
    return sources_.front();  // unreachable
}

Energy EnergyMeter::energy(const std::string& name) const {
    return find(name).cumulative(sim_.now());
}

Energy EnergyMeter::total_energy() const {
    Energy total = Energy::zero();
    for (const Source& s : sources_) total += s.cumulative(sim_.now());
    return total;
}

Power EnergyMeter::average_power() const {
    const Time e = elapsed();
    if (e.is_zero()) return Power::zero();
    return total_energy().average_over(e);
}

Power EnergyMeter::average_power(const std::string& name) const {
    const Time e = elapsed();
    if (e.is_zero()) return Power::zero();
    return energy(name).average_over(e);
}

std::vector<EnergyMeter::Row> EnergyMeter::breakdown() const {
    std::vector<Row> rows;
    rows.reserve(sources_.size());
    const Time e = elapsed();
    for (const Source& s : sources_) {
        const Energy en = s.cumulative(sim_.now());
        rows.push_back(Row{s.name, en,
                           e.is_zero() ? Power::zero() : en.average_over(e)});
    }
    return rows;
}

}  // namespace wlanps::power
