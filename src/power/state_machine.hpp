#pragma once
/// \file state_machine.hpp
/// Generic device power-state machine with transition costs.
///
/// A PowerModel describes a device's stable states (name + power draw) and
/// the legal transitions between them (latency + energy, e.g. a WLAN NIC's
/// 300 ms off→on resume).  A PowerStateMachine instantiates the model in a
/// simulation: it tracks the current state, executes timed transitions,
/// integrates consumed energy, and records per-state residency — exactly
/// the bookkeeping needed to reproduce the paper's average-power figures.

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/units.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace wlanps::power {

/// Index of a state within its PowerModel.
using StateId = std::size_t;

/// Immutable description of a device's power behaviour.
class PowerModel {
public:
    /// Register a stable state.  Returns its id.
    StateId add_state(std::string name, Power draw);

    /// Register a legal transition.  Unregistered transitions are
    /// instantaneous and free (useful for abstract models); registered ones
    /// take \p latency and consume \p energy (spread evenly over latency).
    void add_transition(StateId from, StateId to, Time latency, Energy energy);

    [[nodiscard]] std::size_t state_count() const { return states_.size(); }
    [[nodiscard]] const std::string& state_name(StateId id) const;
    [[nodiscard]] Power state_power(StateId id) const;
    /// Id of the state named \p name; throws if absent.
    [[nodiscard]] StateId state_by_name(const std::string& name) const;

    struct Transition {
        Time latency;
        Energy energy;
    };
    /// Cost of from→to (zero-cost default if unregistered).
    [[nodiscard]] Transition transition(StateId from, StateId to) const;

private:
    struct State {
        std::string name;
        Power draw;
    };
    std::vector<State> states_;
    // Sparse transition table.
    struct Edge {
        StateId from, to;
        Transition cost;
    };
    std::vector<Edge> edges_;
};

/// A live device following a PowerModel inside a simulation.
class PowerStateMachine {
public:
    /// Starts in \p initial at the simulator's current time.
    PowerStateMachine(sim::Simulator& sim, PowerModel model, StateId initial);

    PowerStateMachine(const PowerStateMachine&) = delete;
    PowerStateMachine& operator=(const PowerStateMachine&) = delete;

    /// Request a transition to \p target.  If a transition is already in
    /// flight the request is queued and executed right after it completes
    /// (only the latest queued request is kept).  \p on_complete fires when
    /// the device is stable in \p target.  Requesting the current state
    /// while stable fires \p on_complete immediately.
    void request(StateId target, std::function<void()> on_complete = {});

    /// Stable state (the last one fully entered).
    [[nodiscard]] StateId state() const { return state_; }
    [[nodiscard]] const std::string& state_name() const { return model_.state_name(state_); }
    [[nodiscard]] bool transitioning() const { return in_transit_; }
    /// The state being entered, if a transition is in flight.
    [[nodiscard]] std::optional<StateId> transition_target() const;

    /// Instantaneous power draw (state power, or transition power while in
    /// flight).
    [[nodiscard]] Power current_draw() const;

    /// Total energy consumed since construction, up to now().
    [[nodiscard]] Energy energy_consumed() const;

    /// Average power since construction.
    [[nodiscard]] Power average_power() const;

    /// Total time spent stable in \p id (transition time not attributed).
    [[nodiscard]] Time residency(StateId id) const;

    /// Number of completed transitions into \p id.
    [[nodiscard]] std::size_t entries(StateId id) const;

    [[nodiscard]] const PowerModel& model() const { return model_; }
    [[nodiscard]] sim::Simulator& simulator() const { return sim_; }

    /// Mirror state changes into \p trace (level = power draw in watts).
    /// Pass nullptr to detach.  The trace must outlive the machine's use.
    void attach_trace(sim::TimelineTrace* trace);

private:
    void begin_transition(StateId target);
    void complete_transition(StateId target);
    void set_draw(Power draw, const std::string& label);
    void impulse_correction(Energy energy) { impulse_energy_ += energy; }

    sim::Simulator& sim_;
    PowerModel model_;
    StateId state_;
    bool in_transit_ = false;
    StateId transit_target_ = 0;
    sim::EventHandle transit_event_;
    std::function<void()> on_complete_;
    std::optional<StateId> queued_target_;
    std::function<void()> queued_on_complete_;

    Time created_at_;
    Energy impulse_energy_;  // energy of zero-latency transitions
    sim::TimeWeighted power_signal_;
    std::vector<Time> residency_;
    std::vector<Time> residency_since_;
    std::vector<std::size_t> entries_;
    sim::TimelineTrace* trace_ = nullptr;
};

}  // namespace wlanps::power
