#pragma once
/// \file units.hpp
/// Strong types for power (watts) and energy (joules).

#include <compare>
#include <ostream>
#include <string>

#include "sim/time.hpp"

namespace wlanps::power {

class Energy;

/// Electrical power in watts.
class Power {
public:
    constexpr Power() = default;

    [[nodiscard]] static constexpr Power from_watts(double w) { return Power(w); }
    [[nodiscard]] static constexpr Power from_milliwatts(double mw) { return Power(mw / 1e3); }
    [[nodiscard]] static constexpr Power zero() { return Power(0.0); }

    [[nodiscard]] constexpr double watts() const { return watts_; }
    [[nodiscard]] constexpr double milliwatts() const { return watts_ * 1e3; }
    [[nodiscard]] constexpr bool is_zero() const { return watts_ == 0.0; }

    constexpr auto operator<=>(const Power&) const = default;

    constexpr Power& operator+=(Power rhs) { watts_ += rhs.watts_; return *this; }
    friend constexpr Power operator+(Power a, Power b) { return Power(a.watts_ + b.watts_); }
    friend constexpr Power operator-(Power a, Power b) { return Power(a.watts_ - b.watts_); }
    friend constexpr Power operator*(Power p, double k) { return Power(p.watts_ * k); }
    friend constexpr Power operator*(double k, Power p) { return p * k; }
    friend constexpr double operator/(Power a, Power b) { return a.watts_ / b.watts_; }

    /// Energy consumed drawing this power for \p duration.
    [[nodiscard]] constexpr Energy over(Time duration) const;

    [[nodiscard]] std::string str() const;

private:
    constexpr explicit Power(double w) : watts_(w) {}
    double watts_ = 0.0;
};

/// Energy in joules.
class Energy {
public:
    constexpr Energy() = default;

    [[nodiscard]] static constexpr Energy from_joules(double j) { return Energy(j); }
    [[nodiscard]] static constexpr Energy from_millijoules(double mj) { return Energy(mj / 1e3); }
    /// Battery-style capacity: milliamp-hours at a nominal voltage.
    [[nodiscard]] static constexpr Energy from_mah(double mah, double volts) {
        return Energy(mah * 3.6 * volts);
    }
    [[nodiscard]] static constexpr Energy zero() { return Energy(0.0); }

    [[nodiscard]] constexpr double joules() const { return joules_; }
    [[nodiscard]] constexpr double millijoules() const { return joules_ * 1e3; }
    [[nodiscard]] constexpr bool is_zero() const { return joules_ == 0.0; }

    constexpr auto operator<=>(const Energy&) const = default;

    constexpr Energy& operator+=(Energy rhs) { joules_ += rhs.joules_; return *this; }
    constexpr Energy& operator-=(Energy rhs) { joules_ -= rhs.joules_; return *this; }
    friend constexpr Energy operator+(Energy a, Energy b) { return Energy(a.joules_ + b.joules_); }
    friend constexpr Energy operator-(Energy a, Energy b) { return Energy(a.joules_ - b.joules_); }
    friend constexpr Energy operator*(Energy e, double k) { return Energy(e.joules_ * k); }
    friend constexpr double operator/(Energy a, Energy b) { return a.joules_ / b.joules_; }

    /// Average power when spread over \p duration (> 0).
    [[nodiscard]] Power average_over(Time duration) const {
        return Power::from_watts(joules_ / duration.to_seconds());
    }

    [[nodiscard]] std::string str() const;

private:
    constexpr explicit Energy(double j) : joules_(j) {}
    double joules_ = 0.0;
};

constexpr Energy Power::over(Time duration) const {
    return Energy::from_joules(watts_ * duration.to_seconds());
}

std::ostream& operator<<(std::ostream& os, Power p);
std::ostream& operator<<(std::ostream& os, Energy e);

}  // namespace wlanps::power
