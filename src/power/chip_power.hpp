#pragma once
/// \file chip_power.hpp
/// Physical-layer chip power: dynamic switching plus gated leakage.
///
/// The paper's physical-layer bullet: "minimizing the interconnect
/// parasitic capacitance to reduce the dynamic power consumption and
/// selectively turning off power supply to lessen leakage power."  This
/// analytic model splits a radio/baseband chip's draw into
///   P_dynamic = C_eff · V² · f        (activity-scaled)
///   P_leakage = V · I_leak            (suppressed by power gating)
/// and quantifies both knobs: capacitance reduction and supply gating.

#include "sim/units.hpp"
#include "sim/assert.hpp"

namespace wlanps::power {

/// Analytic CMOS chip power model.
class ChipPowerModel {
public:
    struct Config {
        double c_eff_nf = 2.0;       ///< effective switched capacitance, nF
        double voltage = 1.8;        ///< supply, V
        double frequency_mhz = 44.0; ///< baseband clock (11 Mb/s x 4 spreading)
        double leak_current_ma = 8.0;
        /// Residual leakage fraction while power-gated (header switch).
        double gated_leak_fraction = 0.03;
    };

    explicit ChipPowerModel(Config config) : config_(config) {
        WLANPS_REQUIRE(config.c_eff_nf > 0.0);
        WLANPS_REQUIRE(config.voltage > 0.0);
        WLANPS_REQUIRE(config.frequency_mhz > 0.0);
        WLANPS_REQUIRE(config.leak_current_ma >= 0.0);
        WLANPS_REQUIRE(config.gated_leak_fraction >= 0.0 &&
                       config.gated_leak_fraction <= 1.0);
    }

    /// Dynamic power at activity factor \p alpha in [0, 1].
    [[nodiscard]] Power dynamic(double alpha = 1.0) const {
        WLANPS_REQUIRE(alpha >= 0.0 && alpha <= 1.0);
        return Power::from_watts(alpha * config_.c_eff_nf * 1e-9 * config_.voltage *
                                 config_.voltage * config_.frequency_mhz * 1e6);
    }

    /// Leakage power, optionally with the supply gated off.
    [[nodiscard]] Power leakage(bool gated = false) const {
        const double scale = gated ? config_.gated_leak_fraction : 1.0;
        return Power::from_watts(scale * config_.voltage * config_.leak_current_ma * 1e-3);
    }

    /// Total power at activity \p alpha; a gated chip clocks nothing.
    [[nodiscard]] Power total(double alpha, bool gated = false) const {
        if (gated) return leakage(true);
        return dynamic(alpha) + leakage(false);
    }

    /// The same chip with its interconnect capacitance scaled by \p factor
    /// (the paper's "minimize parasitic capacitance" knob).
    [[nodiscard]] ChipPowerModel with_capacitance_scaled(double factor) const {
        WLANPS_REQUIRE(factor > 0.0);
        Config c = config_;
        c.c_eff_nf *= factor;
        return ChipPowerModel(c);
    }

    [[nodiscard]] const Config& config() const { return config_; }

private:
    Config config_;
};

}  // namespace wlanps::power
