#include "power/battery.hpp"

#include <cmath>

namespace wlanps::power {

Energy Battery::drain(Energy energy, Power draw) {
    WLANPS_REQUIRE(energy >= Energy::zero());
    double factor = 1.0;
    if (config_.rate_exponent > 0.0 && draw > config_.nominal_draw) {
        factor = std::pow(draw / config_.nominal_draw, config_.rate_exponent);
    }
    Energy effective = energy * factor;
    if (effective > remaining_) effective = remaining_;
    remaining_ -= effective;
    notify_watchers();
    return effective;
}

void Battery::on_level_below(double threshold, std::function<void()> callback) {
    WLANPS_REQUIRE(threshold > 0.0 && threshold <= 1.0);
    WLANPS_REQUIRE(callback != nullptr);
    watchers_.push_back(Watcher{threshold, std::move(callback)});
}

Time Battery::lifetime_at(Power draw) const {
    WLANPS_REQUIRE(draw > Power::zero());
    double factor = 1.0;
    if (config_.rate_exponent > 0.0 && draw > config_.nominal_draw) {
        factor = std::pow(draw / config_.nominal_draw, config_.rate_exponent);
    }
    return Time::from_seconds(remaining_.joules() / (draw.watts() * factor));
}

void Battery::notify_watchers() {
    const double lvl = level();
    for (Watcher& w : watchers_) {
        if (!w.fired && lvl < w.threshold) {
            w.fired = true;
            w.callback();
        }
    }
}

}  // namespace wlanps::power
