#include "power/state_machine.hpp"

#include <utility>

#include "sim/assert.hpp"

namespace wlanps::power {

StateId PowerModel::add_state(std::string name, Power draw) {
    WLANPS_REQUIRE_MSG(!name.empty(), "state needs a name");
    states_.push_back(State{std::move(name), draw});
    return states_.size() - 1;
}

void PowerModel::add_transition(StateId from, StateId to, Time latency, Energy energy) {
    WLANPS_REQUIRE(from < states_.size() && to < states_.size());
    WLANPS_REQUIRE_MSG(!latency.is_negative(), "negative transition latency");
    WLANPS_REQUIRE_MSG(energy >= Energy::zero(), "negative transition energy");
    for (Edge& e : edges_) {
        if (e.from == from && e.to == to) {
            e.cost = Transition{latency, energy};
            return;
        }
    }
    edges_.push_back(Edge{from, to, Transition{latency, energy}});
}

const std::string& PowerModel::state_name(StateId id) const {
    WLANPS_REQUIRE(id < states_.size());
    return states_[id].name;
}

Power PowerModel::state_power(StateId id) const {
    WLANPS_REQUIRE(id < states_.size());
    return states_[id].draw;
}

StateId PowerModel::state_by_name(const std::string& name) const {
    for (StateId i = 0; i < states_.size(); ++i) {
        if (states_[i].name == name) return i;
    }
    WLANPS_REQUIRE_MSG(false, "unknown power state: " + name);
    return 0;  // unreachable
}

PowerModel::Transition PowerModel::transition(StateId from, StateId to) const {
    WLANPS_REQUIRE(from < states_.size() && to < states_.size());
    for (const Edge& e : edges_) {
        if (e.from == from && e.to == to) return e.cost;
    }
    return Transition{Time::zero(), Energy::zero()};
}

PowerStateMachine::PowerStateMachine(sim::Simulator& sim, PowerModel model, StateId initial)
    : sim_(sim),
      model_(std::move(model)),
      state_(initial),
      created_at_(sim.now()),
      residency_(model_.state_count(), Time::zero()),
      residency_since_(model_.state_count(), sim.now()),
      entries_(model_.state_count(), 0) {
    WLANPS_REQUIRE(initial < model_.state_count());
    set_draw(model_.state_power(state_), model_.state_name(state_));
    residency_since_[state_] = sim_.now();
    ++entries_[state_];
}

std::optional<StateId> PowerStateMachine::transition_target() const {
    if (!in_transit_) return std::nullopt;
    return transit_target_;
}

Power PowerStateMachine::current_draw() const {
    return Power::from_watts(power_signal_.current());
}

Energy PowerStateMachine::energy_consumed() const {
    return Energy::from_joules(power_signal_.integral(sim_.now())) + impulse_energy_;
}

Power PowerStateMachine::average_power() const {
    const Time elapsed = sim_.now() - created_at_;
    if (elapsed.is_zero()) return current_draw();
    return energy_consumed().average_over(elapsed);
}

Time PowerStateMachine::residency(StateId id) const {
    WLANPS_REQUIRE(id < residency_.size());
    Time total = residency_[id];
    if (!in_transit_ && id == state_) total += sim_.now() - residency_since_[id];
    return total;
}

std::size_t PowerStateMachine::entries(StateId id) const {
    WLANPS_REQUIRE(id < entries_.size());
    return entries_[id];
}

void PowerStateMachine::attach_trace(sim::TimelineTrace* trace) {
    trace_ = trace;
    if (trace_) {
        trace_->set_state(sim_.now(),
                          in_transit_ ? "->" + model_.state_name(transit_target_)
                                      : model_.state_name(state_),
                          power_signal_.current());
    }
}

void PowerStateMachine::request(StateId target, std::function<void()> on_complete) {
    WLANPS_REQUIRE(target < model_.state_count());
    if (in_transit_) {
        queued_target_ = target;
        queued_on_complete_ = std::move(on_complete);
        return;
    }
    if (target == state_) {
        if (on_complete) on_complete();
        return;
    }
    on_complete_ = std::move(on_complete);
    begin_transition(target);
}

void PowerStateMachine::begin_transition(StateId target) {
    const auto cost = model_.transition(state_, target);

    // Close out residency in the old stable state.
    residency_[state_] += sim_.now() - residency_since_[state_];

    if (cost.latency.is_zero()) {
        // Instantaneous: energy (if any) is charged as an impulse by adding
        // a zero-width spike — TimeWeighted cannot represent impulses, so
        // account it separately via the signal's area using a direct add.
        // We fold impulse energy into the signal by briefly widening would
        // distort timing, so keep an explicit correction instead.
        impulse_correction(cost.energy);
        complete_transition(target);
        return;
    }

    in_transit_ = true;
    transit_target_ = target;
    const Power transit_draw =
        Power::from_watts(cost.energy.joules() / cost.latency.to_seconds());
    set_draw(transit_draw, model_.state_name(state_) + "->" + model_.state_name(target));
    transit_event_ = sim_.schedule_in(cost.latency, [this, target] { complete_transition(target); });
}

void PowerStateMachine::complete_transition(StateId target) {
    in_transit_ = false;
    state_ = target;
    residency_since_[state_] = sim_.now();
    ++entries_[state_];
    set_draw(model_.state_power(state_), model_.state_name(state_));

    auto done = std::move(on_complete_);
    on_complete_ = nullptr;
    if (done) done();

    if (queued_target_) {
        const StateId next = *queued_target_;
        queued_target_.reset();
        on_complete_ = std::move(queued_on_complete_);
        queued_on_complete_ = nullptr;
        if (next == state_) {
            auto cb = std::move(on_complete_);
            on_complete_ = nullptr;
            if (cb) cb();
        } else {
            // Leaving immediately: re-open and close residency bookkeeping
            // happens inside begin_transition.
            begin_transition(next);
        }
    }
}

void PowerStateMachine::set_draw(Power draw, const std::string& label) {
    power_signal_.set(sim_.now(), draw.watts());
    if (trace_) trace_->set_state(sim_.now(), label, draw.watts());
}

}  // namespace wlanps::power
