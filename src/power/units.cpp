#include "power/units.hpp"

#include <cstdio>

namespace wlanps::power {

namespace {
std::string format(double value, const char* unit) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.4g%s", value, unit);
    return buf;
}
}  // namespace

std::string Power::str() const {
    if (watts_ != 0.0 && watts_ < 0.1) return format(milliwatts(), "mW");
    return format(watts_, "W");
}

std::string Energy::str() const {
    if (joules_ != 0.0 && joules_ < 0.1) return format(millijoules(), "mJ");
    return format(joules_, "J");
}

std::ostream& operator<<(std::ostream& os, Power p) { return os << p.str(); }
std::ostream& operator<<(std::ostream& os, Energy e) { return os << e.str(); }

}  // namespace wlanps::power
