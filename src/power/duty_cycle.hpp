#pragma once
/// \file duty_cycle.hpp
/// Closed-form duty-cycle power estimator.
///
/// Cross-checks the event-driven simulation: given per-state powers and the
/// fraction of time spent in each state (plus transition rates), compute
/// the expected average power analytically.  Tests compare simulated
/// average power against this model.

#include <vector>

#include "sim/units.hpp"
#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace wlanps::power {

/// Analytic average-power model for a periodic duty cycle.
class DutyCycleModel {
public:
    /// Add a phase: the device draws \p draw for \p duration each period.
    void add_phase(Power draw, Time duration) {
        WLANPS_REQUIRE(duration >= Time::zero());
        phases_.push_back({draw, duration});
    }

    /// Add a per-period fixed energy cost (e.g. one wake transition).
    void add_fixed_energy(Energy e) {
        WLANPS_REQUIRE(e >= Energy::zero());
        fixed_ += e;
    }

    /// Period length (sum of phase durations).
    [[nodiscard]] Time period() const {
        Time total = Time::zero();
        for (const auto& p : phases_) total += p.duration;
        return total;
    }

    /// Energy per period.
    [[nodiscard]] Energy energy_per_period() const {
        Energy total = fixed_;
        for (const auto& p : phases_) total += p.draw.over(p.duration);
        return total;
    }

    /// Long-run average power.
    [[nodiscard]] Power average_power() const {
        const Time t = period();
        WLANPS_REQUIRE_MSG(t > Time::zero(), "empty duty cycle");
        return energy_per_period().average_over(t);
    }

private:
    struct Phase {
        Power draw;
        Time duration;
    };
    std::vector<Phase> phases_;
    Energy fixed_;
};

}  // namespace wlanps::power
