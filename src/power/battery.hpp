#pragma once
/// \file battery.hpp
/// Battery model with rate-dependent effective capacity.
///
/// PAMAS-style MAC policies (paper §1) make sleep decisions from battery
/// level, so the battery exposes a level query and a low-level callback.
/// The rate-capacity effect is modeled Peukert-style: drawing above the
/// nominal rate wastes a fraction of the charge.

#include <functional>
#include <vector>

#include "sim/units.hpp"
#include "sim/assert.hpp"

namespace wlanps::power {

/// Parameters of a battery.
struct BatteryConfig {
    Energy capacity = Energy::from_mah(1400, 3.7);  // IPAQ 3970 pack
    /// Power draw at which the full capacity is available.
    Power nominal_draw = Power::from_watts(1.0);
    /// Peukert-like exponent; 0 disables the rate-capacity effect.
    /// Effective charge drained = E * (P/nominal)^k for P > nominal.
    double rate_exponent = 0.15;
};

/// A drainable battery.  Drains are applied explicitly (pull model): the
/// owner periodically charges consumed energy at the prevailing power.
class Battery {
public:
    explicit Battery(BatteryConfig config) : config_(config), remaining_(config.capacity) {
        WLANPS_REQUIRE(config.capacity > Energy::zero());
        WLANPS_REQUIRE(config.nominal_draw > Power::zero());
        WLANPS_REQUIRE(config.rate_exponent >= 0.0);
    }

    /// Drain \p energy that was consumed at average power \p draw.
    /// Returns the effective charge removed (>= energy when draw exceeds
    /// nominal).  Clamps at empty.
    Energy drain(Energy energy, Power draw);

    /// Remaining charge as a fraction of capacity in [0, 1].
    [[nodiscard]] double level() const {
        return remaining_.joules() / config_.capacity.joules();
    }

    [[nodiscard]] Energy remaining() const { return remaining_; }
    [[nodiscard]] bool empty() const { return remaining_.is_zero(); }
    [[nodiscard]] const BatteryConfig& config() const { return config_; }

    /// Register \p callback to fire once when level() first drops below
    /// \p threshold.  Multiple watchers allowed.
    void on_level_below(double threshold, std::function<void()> callback);

    /// Predicted lifetime at constant \p draw from the current level.
    [[nodiscard]] Time lifetime_at(Power draw) const;

private:
    void notify_watchers();

    BatteryConfig config_;
    Energy remaining_;
    struct Watcher {
        double threshold;
        std::function<void()> callback;
        bool fired = false;
    };
    std::vector<Watcher> watchers_;
};

}  // namespace wlanps::power
