#pragma once
/// \file energy_meter.hpp
/// Aggregates energy from several sources into device-level totals.
///
/// A meter registers named energy sources — power-state machines, constant
/// base loads (CPU + memory during playback), or arbitrary callables — and
/// reports per-source and total energy/average power.  This is how the
/// Figure 2 bench separates "WNIC power" from "whole-IPAQ power".

#include <functional>
#include <string>
#include <vector>

#include "power/state_machine.hpp"
#include "sim/units.hpp"
#include "sim/simulator.hpp"

namespace wlanps::power {

/// Named multi-source energy aggregator.
class EnergyMeter {
public:
    explicit EnergyMeter(sim::Simulator& sim) : sim_(sim), start_(sim.now()) {}

    /// Register a constant load drawing \p draw from now on.
    void add_constant(std::string name, Power draw);

    /// Register a power-state machine (must outlive the meter's queries).
    void add_machine(std::string name, const PowerStateMachine& machine);

    /// Register an arbitrary source reporting cumulative energy at time t.
    void add_source(std::string name, std::function<Energy(Time)> source);

    /// Cumulative energy of source \p name up to now.
    [[nodiscard]] Energy energy(const std::string& name) const;

    /// Sum over all sources up to now.
    [[nodiscard]] Energy total_energy() const;

    /// Total energy divided by elapsed time since meter creation.
    [[nodiscard]] Power average_power() const;

    /// Average power of a single source.
    [[nodiscard]] Power average_power(const std::string& name) const;

    [[nodiscard]] Time elapsed() const { return sim_.now() - start_; }

    struct Row {
        std::string name;
        Energy energy;
        Power average;
    };
    /// Per-source breakdown, in registration order.
    [[nodiscard]] std::vector<Row> breakdown() const;

private:
    struct Source {
        std::string name;
        std::function<Energy(Time)> cumulative;
    };
    [[nodiscard]] const Source& find(const std::string& name) const;

    sim::Simulator& sim_;
    Time start_;
    std::vector<Source> sources_;
};

}  // namespace wlanps::power
