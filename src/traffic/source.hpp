#pragma once
/// \file source.hpp
/// Workload generators.
///
/// Sources push (size, timestamp) packets into a sink at simulated times;
/// the sink is whatever transports them (AP queue, Hotspot server, bench
/// harness).  Generators cover the paper's workloads: high-quality MP3
/// audio (the Figure 2 stream), VBR video, bursty web browsing, Poisson
/// background traffic, and scripted traces.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "phy/calibration.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace wlanps::traffic {

/// Packet sink: called at generation time.
using Sink = std::function<void(DataSize size)>;

/// Base class for generators.
class Source {
public:
    Source(sim::Simulator& sim, Sink sink);
    virtual ~Source() = default;
    Source(const Source&) = delete;
    Source& operator=(const Source&) = delete;

    /// Begin generating (first packet scheduled from now).
    virtual void start() = 0;
    /// Stop generating.
    virtual void stop() { running_ = false; }

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] std::uint64_t packets_generated() const { return packets_; }
    [[nodiscard]] DataSize bytes_generated() const { return bytes_; }
    /// Average generated rate since construction.
    [[nodiscard]] Rate average_rate() const;

protected:
    void emit(DataSize size);
    [[nodiscard]] bool running() const { return running_; }

    sim::Simulator& sim_;

private:
    Sink sink_;
    bool running_ = false;
    Time created_at_;
    std::uint64_t packets_ = 0;
    DataSize bytes_;

protected:
    void set_running(bool r) { running_ = r; }
};

/// Constant-bit-rate MP3 stream: one frame every frame interval.
/// Defaults: 128 kb/s high-quality stereo (the paper's workload).
class Mp3Source final : public Source {
public:
    struct Config {
        DataSize frame_size = phy::calibration::kMp3FrameSize;
        Time frame_interval = phy::calibration::kMp3FrameInterval;
    };
    Mp3Source(sim::Simulator& sim, Sink sink) : Mp3Source(sim, std::move(sink), Config{}) {}
    Mp3Source(sim::Simulator& sim, Sink sink, Config config);
    void start() override;
    [[nodiscard]] std::string name() const override { return "mp3-cbr"; }
    [[nodiscard]] const Config& config() const { return config_; }

private:
    void tick();
    Config config_;
};

/// VBR video: GOP-patterned frame sizes (I frames large, P medium, B
/// small) with lognormal-ish size jitter.
class VideoSource final : public Source {
public:
    struct Config {
        double fps = 25.0;
        DataSize i_frame = DataSize::from_bytes(12000);
        DataSize p_frame = DataSize::from_bytes(4000);
        DataSize b_frame = DataSize::from_bytes(1500);
        int gop = 12;           ///< frames per GOP (IBBPBBPBBPBB)
        double jitter = 0.25;   ///< multiplicative size noise (std-dev)
    };
    VideoSource(sim::Simulator& sim, Sink sink, Config config, sim::Random rng);
    void start() override;
    [[nodiscard]] std::string name() const override { return "video-vbr"; }

private:
    void tick();
    Config config_;
    sim::Random rng_;
    int frame_index_ = 0;
};

/// Web browsing: Pareto ON/OFF.  ON periods stream packets at a page rate;
/// OFF periods are heavy-tailed think times.
class WebSource final : public Source {
public:
    struct Config {
        DataSize packet = DataSize::from_bytes(1460);
        Rate on_rate = Rate::from_kbps(400);
        double on_alpha = 1.5;
        Time on_min = Time::from_ms(500);
        double off_alpha = 1.2;
        Time off_min = Time::from_seconds(2);
    };
    WebSource(sim::Simulator& sim, Sink sink, Config config, sim::Random rng);
    void start() override;
    [[nodiscard]] std::string name() const override { return "web-onoff"; }

private:
    void begin_on();
    void on_tick();
    Config config_;
    sim::Random rng_;
    Time on_until_;
};

/// Poisson arrivals of fixed-size packets.
class PoissonSource final : public Source {
public:
    PoissonSource(sim::Simulator& sim, Sink sink, DataSize packet, Rate mean_rate,
                  sim::Random rng);
    void start() override;
    [[nodiscard]] std::string name() const override { return "poisson"; }

private:
    void tick();
    DataSize packet_;
    Time mean_interarrival_;
    sim::Random rng_;
};

/// Replays an explicit (time, size) script.
class TraceSource final : public Source {
public:
    struct Entry {
        Time at;
        DataSize size;
    };
    TraceSource(sim::Simulator& sim, Sink sink, std::vector<Entry> entries);
    void start() override;
    [[nodiscard]] std::string name() const override { return "trace"; }

private:
    std::vector<Entry> entries_;
};

}  // namespace wlanps::traffic
