#include "traffic/source.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/assert.hpp"

namespace wlanps::traffic {

Source::Source(sim::Simulator& sim, Sink sink)
    : sim_(sim), sink_(std::move(sink)), created_at_(sim.now()) {
    WLANPS_REQUIRE(sink_ != nullptr);
}

void Source::emit(DataSize size) {
    ++packets_;
    bytes_ += size;
    sink_(size);
}

Rate Source::average_rate() const {
    const Time elapsed = sim_.now() - created_at_;
    if (elapsed.is_zero()) return Rate::zero();
    return Rate::from_bps(static_cast<double>(bytes_.bits()) / elapsed.to_seconds());
}

Mp3Source::Mp3Source(sim::Simulator& sim, Sink sink, Config config)
    : Source(sim, std::move(sink)), config_(config) {
    WLANPS_REQUIRE(config_.frame_interval > Time::zero());
    WLANPS_REQUIRE(config_.frame_size > DataSize::zero());
}

void Mp3Source::start() {
    set_running(true);
    sim_.post_in(config_.frame_interval, [this] { tick(); });
}

void Mp3Source::tick() {
    if (!running()) return;
    emit(config_.frame_size);
    sim_.post_in(config_.frame_interval, [this] { tick(); });
}

VideoSource::VideoSource(sim::Simulator& sim, Sink sink, Config config, sim::Random rng)
    : Source(sim, std::move(sink)), config_(config), rng_(rng) {
    WLANPS_REQUIRE(config_.fps > 0.0);
    WLANPS_REQUIRE(config_.gop >= 1);
    WLANPS_REQUIRE(config_.jitter >= 0.0);
}

void VideoSource::start() {
    set_running(true);
    sim_.post_in(Time::from_seconds(1.0 / config_.fps), [this] { tick(); });
}

void VideoSource::tick() {
    if (!running()) return;
    const int pos = frame_index_ % config_.gop;
    DataSize base;
    if (pos == 0) {
        base = config_.i_frame;
    } else if (pos % 3 == 0) {
        base = config_.p_frame;
    } else {
        base = config_.b_frame;
    }
    const double factor = std::max(0.2, rng_.normal(1.0, config_.jitter));
    emit(base * factor);
    ++frame_index_;
    sim_.post_in(Time::from_seconds(1.0 / config_.fps), [this] { tick(); });
}

WebSource::WebSource(sim::Simulator& sim, Sink sink, Config config, sim::Random rng)
    : Source(sim, std::move(sink)), config_(config), rng_(rng) {
    WLANPS_REQUIRE(config_.on_rate > Rate::zero());
    WLANPS_REQUIRE(config_.on_alpha > 0.0 && config_.off_alpha > 0.0);
}

void WebSource::start() {
    set_running(true);
    begin_on();
}

void WebSource::begin_on() {
    if (!running()) return;
    const double on_s = rng_.pareto(config_.on_alpha, config_.on_min.to_seconds());
    on_until_ = sim_.now() + Time::from_seconds(on_s);
    on_tick();
}

void WebSource::on_tick() {
    if (!running()) return;
    if (sim_.now() >= on_until_) {
        const double off_s = rng_.pareto(config_.off_alpha, config_.off_min.to_seconds());
        sim_.post_in(Time::from_seconds(off_s), [this] { begin_on(); });
        return;
    }
    emit(config_.packet);
    sim_.post_in(config_.on_rate.transmit_time(config_.packet), [this] { on_tick(); });
}

PoissonSource::PoissonSource(sim::Simulator& sim, Sink sink, DataSize packet, Rate mean_rate,
                             sim::Random rng)
    : Source(sim, std::move(sink)), packet_(packet), rng_(rng) {
    WLANPS_REQUIRE(packet > DataSize::zero());
    WLANPS_REQUIRE(mean_rate > Rate::zero());
    mean_interarrival_ = mean_rate.transmit_time(packet);
}

void PoissonSource::start() {
    set_running(true);
    sim_.post_in(rng_.exponential_time(mean_interarrival_), [this] { tick(); });
}

void PoissonSource::tick() {
    if (!running()) return;
    emit(packet_);
    sim_.post_in(rng_.exponential_time(mean_interarrival_), [this] { tick(); });
}

TraceSource::TraceSource(sim::Simulator& sim, Sink sink, std::vector<Entry> entries)
    : Source(sim, std::move(sink)), entries_(std::move(entries)) {}

void TraceSource::start() {
    set_running(true);
    for (const Entry& e : entries_) {
        WLANPS_REQUIRE_MSG(e.at >= sim_.now(), "trace entry in the past");
        sim_.post_at(e.at, [this, size = e.size] {
            if (running()) emit(size);
        });
    }
}

}  // namespace wlanps::traffic
