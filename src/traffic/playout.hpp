#pragma once
/// \file playout.hpp
/// Client-side playout buffer — the QoS metric of the streaming scenarios.
///
/// The decoder consumes one frame every frame interval; a consume with
/// insufficient buffered data is an underrun (audible glitch).  "QoS is
/// maintained" in the paper's Figure 2 experiment means zero underruns
/// after preroll, which is exactly what the benches assert.

#include <cstdint>

#include "phy/calibration.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace wlanps::traffic {

/// A fixed-rate playout buffer.
class PlayoutBuffer {
public:
    struct Config {
        DataSize frame_size = phy::calibration::kMp3FrameSize;
        Time frame_interval = phy::calibration::kMp3FrameInterval;
        /// Decoder starts this long after start() (buffer fill time).
        Time preroll = Time::from_seconds(2);
        /// Cap on buffered data (client memory); arrivals beyond it are
        /// counted as overflow and dropped.
        DataSize capacity = DataSize::from_kilobytes(2048);
        /// If > 0, playback additionally waits (without counting misses)
        /// until this many frames are buffered — real players extend their
        /// initial buffering rather than glitch when the first delivery is
        /// late.  Once playback has started, shortfalls are underruns.
        int start_threshold_frames = 0;
    };

    PlayoutBuffer(sim::Simulator& sim, Config config);
    PlayoutBuffer(const PlayoutBuffer&) = delete;
    PlayoutBuffer& operator=(const PlayoutBuffer&) = delete;

    /// Begin consuming after the preroll.
    void start();
    /// Stop consuming.
    void stop() { running_ = false; }

    /// Stream data arrived.
    void on_data(DataSize size);

    [[nodiscard]] DataSize level() const { return level_; }
    [[nodiscard]] DataSize headroom() const { return config_.capacity - level_; }
    [[nodiscard]] std::uint64_t frames_played() const { return played_.hits(); }
    [[nodiscard]] std::uint64_t underruns() const { return played_.misses(); }
    /// Fraction of frame deadlines met.
    [[nodiscard]] double qos() const { return played_.ratio(); }
    [[nodiscard]] std::uint64_t overflow_drops() const { return overflow_drops_; }
    [[nodiscard]] const sim::Accumulator& occupancy_stats() const { return occupancy_; }
    [[nodiscard]] const Config& config() const { return config_; }
    /// When the decoder actually began consuming (start threshold met).
    [[nodiscard]] Time playback_started_at() const { return playback_started_at_; }
    [[nodiscard]] bool playing() const { return playing_; }

private:
    void consume();

    sim::Simulator& sim_;
    Config config_;
    DataSize level_;
    bool running_ = false;
    bool playing_ = false;
    Time playback_started_at_ = Time::zero();
    sim::RatioCounter played_;
    std::uint64_t overflow_drops_ = 0;
    sim::Accumulator occupancy_;  // sampled at each consume, in frames
};

}  // namespace wlanps::traffic
