#include "traffic/playout.hpp"

namespace wlanps::traffic {

PlayoutBuffer::PlayoutBuffer(sim::Simulator& sim, Config config) : sim_(sim), config_(config) {
    WLANPS_REQUIRE(config_.frame_size > DataSize::zero());
    WLANPS_REQUIRE(config_.frame_interval > Time::zero());
    WLANPS_REQUIRE(config_.capacity >= config_.frame_size);
}

void PlayoutBuffer::start() {
    running_ = true;
    sim_.post_in(config_.preroll, [this] { consume(); });
}

void PlayoutBuffer::on_data(DataSize size) {
    if (level_ + size > config_.capacity) {
        ++overflow_drops_;
        level_ = config_.capacity;
        return;
    }
    level_ += size;
}

void PlayoutBuffer::consume() {
    if (!running_) return;
    if (!playing_) {
        // Initial buffering: extend rather than glitch (no miss counted).
        const DataSize threshold = config_.frame_size *
                                   static_cast<double>(config_.start_threshold_frames);
        if (level_ < threshold) {
            sim_.post_in(config_.frame_interval, [this] { consume(); });
            return;
        }
        playing_ = true;
        playback_started_at_ = sim_.now();
    }
    occupancy_.add(level_ / config_.frame_size);
    if (level_ >= config_.frame_size) {
        level_ -= config_.frame_size;
        played_.hit();
    } else {
        played_.miss();  // underrun: glitch, frame skipped
    }
    sim_.post_in(config_.frame_interval, [this] { consume(); });
}

}  // namespace wlanps::traffic
