#include "core/server.hpp"

#include <algorithm>
#include <utility>

#include "obs/flight.hpp"
#include "obs/hooks.hpp"
#include "sim/assert.hpp"
#include "sim/logger.hpp"

namespace wlanps::core {

void ServerConfig::validate() const {
    WLANPS_REQUIRE_MSG(min_burst > DataSize::zero(),
                       "min_burst must be positive (got " + min_burst.str() + ")");
    WLANPS_REQUIRE_MSG(min_burst <= target_burst,
                       "min_burst (" + min_burst.str() + ") exceeds target_burst (" +
                           target_burst.str() + ")");
    WLANPS_REQUIRE_MSG(plan_interval > Time::zero(),
                       "plan_interval must be positive (got " + plan_interval.str() + ")");
    WLANPS_REQUIRE_MSG(target_burst_period > Time::zero(),
                       "target_burst_period must be positive (got " +
                           target_burst_period.str() + ")");
    WLANPS_REQUIRE_MSG(!underrun_lead.is_negative(),
                       "underrun_lead must not be negative (got " + underrun_lead.str() + ")");
    WLANPS_REQUIRE_MSG(utilization_cap > 0.0,
                       "utilization_cap must be positive (got " +
                           std::to_string(utilization_cap) + ")");
    WLANPS_REQUIRE_MSG(reservation_margin >= 1.0,
                       "reservation_margin below 1.0 under-reserves every stream (got " +
                           std::to_string(reservation_margin) + ")");
    resilience.validate();
}

HotspotServer::HotspotServer(sim::Simulator& sim, ServerConfig config,
                             std::unique_ptr<Scheduler> scheduler)
    : sim_(sim),
      config_(config),
      scheduler_(std::move(scheduler)),
      selector_(config.selector) {
    WLANPS_REQUIRE(scheduler_ != nullptr);
    config_.validate();
}

bool HotspotServer::try_register(HotspotClient& client) {
    WLANPS_REQUIRE_MSG(clients_.find(client.id()) == clients_.end(), "duplicate client id");
    WLANPS_REQUIRE_MSG(client.channel_count() > 0, "client has no channels");

    // Refresh per-interface capacities from this client's channels (all
    // clients of one Hotspot share each interface's airtime).
    auto channels = client.channels();
    for (BurstChannel* ch : channels) {
        capacity_[ch->interface()] = ch->goodput() * config_.utilization_cap;
    }

    // Find an interface with room for the contract's reservation,
    // preferring the lowest predicted client power (same ranking the
    // burst-time selector uses).
    const Rate need = client.contract().stream_rate * config_.reservation_margin;
    std::vector<BurstChannel*> ordered(channels.begin(), channels.end());
    std::sort(ordered.begin(), ordered.end(), [&](BurstChannel* a, BurstChannel* b) {
        return InterfaceSelector::predicted_power(*a, client.contract().stream_rate,
                                                  config_.target_burst) <
               InterfaceSelector::predicted_power(*b, client.contract().stream_rate,
                                                  config_.target_burst);
    });
    BurstChannel* admitted_on = nullptr;
    for (BurstChannel* ch : ordered) {
        const phy::Interface itf = ch->interface();
        if ((reserved_[itf] + need).bps() <= capacity_[itf].bps()) {
            admitted_on = ch;
            break;
        }
    }
    if (admitted_on == nullptr) return false;  // admission denied

    ClientRecord rec;
    rec.client = &client;
    rec.playback_start = sim_.now() + client.contract().preroll;
    rec.last_progress = sim_.now();
    rec.reserved_on = admitted_on->interface();
    rec.reservation = need;
    reserved_[rec.reserved_on] += need;
    clients_[client.id()] = std::move(rec);
    return true;
}

void HotspotServer::register_client(HotspotClient& client) {
    WLANPS_REQUIRE_MSG(try_register(client),
                       "admission denied: no interface has bandwidth for this contract");
}

void HotspotServer::unregister_client(ClientId id) {
    auto it = clients_.find(id);
    WLANPS_REQUIRE_MSG(it != clients_.end(), "unknown client");
    // Release the bandwidth reservation.
    auto& rec = it->second;
    reserved_[rec.reserved_on] = Rate::from_bps(
        std::max(0.0, reserved_[rec.reserved_on].bps() - rec.reservation.bps()));
    // Drop pending (not yet dispatched) bursts for this client.
    for (auto& [itf, queue] : pending_) {
        std::erase_if(queue, [id](const auto& entry) { return entry.first.client == id; });
    }
    clients_.erase(it);
}

Rate HotspotServer::reserved(phy::Interface itf) const {
    const auto it = reserved_.find(itf);
    return it == reserved_.end() ? Rate::zero() : it->second;
}

Rate HotspotServer::capacity(phy::Interface itf) const {
    const auto it = capacity_.find(itf);
    return it == capacity_.end() ? Rate::zero() : it->second;
}

void HotspotServer::move_reservation(ClientRecord& rec, phy::Interface to) {
    if (rec.reserved_on == to) return;
    reserved_[rec.reserved_on] = Rate::from_bps(
        std::max(0.0, (reserved_[rec.reserved_on].bps() - rec.reservation.bps())));
    reserved_[to] += rec.reservation;
    rec.reserved_on = to;
}

DataSize HotspotServer::effective_target(const ClientRecord& rec) const {
    // Rate-proportional sizing: a 600 kb/s video client gets ~4x the burst
    // of a 128 kb/s audio client, so both sleep ~target_burst_period.
    const DataSize by_rate =
        rec.client->contract().stream_rate.data_in(config_.target_burst_period);
    DataSize target = std::max(config_.target_burst, by_rate);
    if (config_.battery_aware) {
        // Low battery -> larger bursts -> fewer wakeups (paper §2: the
        // server knows its clients' battery levels).
        const double level = rec.client->battery_level();
        target = target * (2.0 - level);
    }
    return target;
}

traffic::Sink HotspotServer::ingest_sink(ClientId id) {
    WLANPS_REQUIRE_MSG(clients_.find(id) != clients_.end(), "unknown client");
    return [this, id](DataSize size) {
        // Traffic for a departed client is dropped (do not resurrect it).
        auto it = clients_.find(id);
        if (it != clients_.end()) it->second.server_buffer += size;
    };
}

void HotspotServer::set_stored_content(ClientId id, bool stored) {
    auto it = clients_.find(id);
    WLANPS_REQUIRE_MSG(it != clients_.end(), "unknown client");
    it->second.stored_content = stored;
}

void HotspotServer::start() {
    plan_timer_ = std::make_unique<sim::PeriodicEvent>(sim_, config_.plan_interval,
                                                       [this] { plan(); });
    plan_timer_->start();
}

DataSize HotspotServer::modeled_buffer(const ClientRecord& rec, Time at) const {
    if (at <= rec.playback_start) return rec.modeled_delivered;
    const DataSize consumed =
        rec.client->contract().stream_rate.data_in(at - rec.playback_start);
    if (consumed >= rec.modeled_delivered) return DataSize::zero();
    return rec.modeled_delivered - consumed;
}

Time HotspotServer::projected_underrun(const ClientRecord& rec) const {
    const Time t0 = std::max(sim_.now(), rec.playback_start);
    const DataSize level = modeled_buffer(rec, t0);
    return t0 + rec.client->contract().stream_rate.transmit_time(level);
}

void HotspotServer::plan() {
    if (config_.resilience.liveness_timeout > Time::zero()) sweep_liveness();
    for (auto& [id, rec] : clients_) plan_client(id, rec);
}

void HotspotServer::sweep_liveness() {
    // Collect first: unregister_client mutates clients_.
    std::vector<ClientId> stale;
    for (const auto& [id, rec] : clients_) {
        if (sim_.now() - rec.last_progress > config_.resilience.liveness_timeout) {
            stale.push_back(id);
        }
    }
    for (ClientId id : stale) {
        ++recovery_.liveness_reclaims;
        WLANPS_OBS_COUNT("core.recovery.liveness_reclaims", 1);
        WLANPS_LOG(sim::LogLevel::info, sim_.now(), "hotspot",
                   "client " << id << " made no progress for "
                             << config_.resilience.liveness_timeout.str()
                             << ": reclaiming its reservation");
        unregister_client(id);
        if (on_client_lost_) on_client_lost_(id);
    }
}

void HotspotServer::plan_client(ClientId id, ClientRecord& rec) {
    if (rec.burst_outstanding) return;
    const DataSize target = effective_target(rec);
    const DataSize available = rec.stored_content ? target : rec.server_buffer;
    // The early returns below are *healthy* idleness (nothing to send, or
    // the client's buffer is comfortably full) — refresh the liveness
    // clock so only clients the server is actively failing to serve age.
    if (available < config_.min_burst) {
        rec.last_progress = sim_.now();
        return;
    }

    const Time underrun = projected_underrun(rec);
    const bool buffer_full = !rec.stored_content && rec.server_buffer >= target;
    // Critical lead: this burst's own transfer plus worst-case
    // serialization behind every other client on the serving interface,
    // plus the planning tick and the contract margin.  Bursting earlier
    // than this produces dust bursts; later risks the deadline.
    const Rate goodput = rec.has_channel
                             ? rec.client->channel(rec.current_channel).goodput()
                             : rec.client->channel(0).goodput();
    const Time queue_allowance =
        goodput.transmit_time(target) * static_cast<double>(clients_.size());
    const Time critical = rec.client->contract().deadline_margin + config_.underrun_lead +
                          config_.plan_interval + queue_allowance;
    const bool deadline_near = underrun - sim_.now() <= critical;
    // Prefill: a client that has received nothing yet is served eagerly so
    // its preroll completes even when several first bursts serialize.
    const bool prefill = rec.stored_content && rec.modeled_delivered.is_zero();
    if (!buffer_full && !deadline_near && !prefill) {
        rec.last_progress = sim_.now();
        return;
    }

    const QosContract& contract = rec.client->contract();
    // Headroom in the client's buffer (server-side model).
    const DataSize level = modeled_buffer(rec, sim_.now());
    const DataSize headroom =
        contract.client_buffer > level ? contract.client_buffer - level : DataSize::zero();
    DataSize size = std::min({available, target, headroom});
    if (size < config_.min_burst) {  // client buffer nearly full: wait
        rec.last_progress = sim_.now();
        return;
    }

    // Select the interface for this burst.
    auto channels = rec.client->channels();
    const std::size_t chosen = selector_.select(
        channels, contract.stream_rate, size, sim_.now(),
        rec.has_channel ? rec.current_channel : channels.size());
    if (rec.has_channel && chosen != rec.current_channel) {
        ++rec.interface_switches;
        WLANPS_OBS_COUNT("core.interface_switches", 1);
        WLANPS_LOG(sim::LogLevel::info, sim_.now(), "hotspot",
                   "client " << id << " switches to "
                             << phy::to_string(channels[chosen]->interface()));
    }
    rec.current_channel = chosen;
    rec.has_channel = true;
    // Keep the bandwidth reservation on the serving interface.
    move_reservation(rec, channels[chosen]->interface());

    BurstRequest request;
    request.client = id;
    request.size = size;
    request.deadline = underrun - contract.deadline_margin;
    request.weight = contract.weight;
    request.priority = contract.priority;
    request.created_at = sim_.now();
    request.flow = ++next_flow_;

    if (!rec.stored_content) rec.server_buffer -= size;  // reserve
    rec.burst_outstanding = true;
    WLANPS_OBS_COUNT("core.bursts_planned", 1);
    WLANPS_OBS_RECORD("core.burst_bytes", size.bytes());
    const phy::Interface itf = channels[chosen]->interface();
    decisions_.push_back(BurstDecision{sim_.now(), id, size, itf, request.deadline});
    if (decisions_.size() > kDecisionLogCapacity) decisions_.pop_front();
    WLANPS_LOG(sim::LogLevel::debug, sim_.now(), "hotspot",
               "burst " << size.str() << " for client " << id << " on "
                        << phy::to_string(itf) << ", deadline " << request.deadline.str());
    WLANPS_OBS_FLIGHT(sim_.now().ns(), enqueued, request.flow, id, phy::flight_itf(itf),
                      size.bytes());
    pending_[itf].emplace_back(request, chosen);
    dispatch(itf);
}

void HotspotServer::dispatch(phy::Interface itf) {
    if (interface_busy_[itf]) return;
    auto& queue = pending_[itf];
    if (queue.empty()) return;
    WLANPS_OBS_RECORD("core.sched_queue_depth", queue.size());

    std::vector<BurstRequest> requests;
    requests.reserve(queue.size());
    for (const auto& [req, idx] : queue) requests.push_back(req);
    const std::size_t pick = scheduler_->pick(requests, sim_.now());
    WLANPS_REQUIRE(pick < queue.size());

    const BurstRequest request = queue[pick].first;
    const std::size_t channel_index = queue[pick].second;
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));

    const ClientRecord& rec = clients_.at(request.client);
    const Time service_estimate =
        rec.client->channel(channel_index).goodput().transmit_time(request.size);
    scheduler_->on_dispatch(request, service_estimate);

    interface_busy_[itf] = true;
    execute(itf, request, channel_index);
}

void HotspotServer::execute(phy::Interface itf, BurstRequest request, std::size_t channel_index) {
    ClientRecord& rec = clients_.at(request.client);
    BurstChannel& channel = rec.client->channel(channel_index);
    // Wake the client just in time: the schedule notification is free
    // (control plane), the wake latency is not.
    const Time start = sim_.now() + channel.wnic().wake_latency() + Time::from_ms(1);

    // Ownership of the interface for the lifetime of this burst.  The
    // watchdog and the completion race benignly: whoever still matches
    // (client, epoch) releases; the loser recognizes the stale epoch and
    // backs off.
    const std::uint64_t epoch = ++next_epoch_;
    rec.epoch = epoch;
    inflight_[itf] = Inflight{request.client, epoch};
    WLANPS_OBS_FLIGHT(sim_.now().ns(), scheduled, request.flow, request.client,
                      phy::flight_itf(itf), request.size.bytes());

    if (config_.resilience.burst_repair) {
        const Time estimate = channel.goodput().transmit_time(request.size);
        const Time deadline = start + estimate * config_.resilience.repair_slack_factor +
                              config_.resilience.repair_margin;
        arm_repair(itf, request.client, epoch, rec.client, channel_index, request.size, deadline);
    }

    // Injected schedule-message loss: the burst was planned and the
    // interface claimed, but the wake command never reaches the client.
    // Without burst repair this wedges the interface — which is the point.
    if (sim_.now() < schedule_drop_until_ && schedule_drop_rng_ &&
        schedule_drop_rng_->chance(schedule_drop_p_)) {
        ++recovery_.schedule_drops;
        WLANPS_OBS_COUNT("fault.injected.schedule_drop_msgs", 1);
        WLANPS_LOG(sim::LogLevel::info, sim_.now(), "hotspot",
                   "schedule message for client " << request.client << " lost ("
                                                  << request.size.str() << " burst)");
        return;
    }

    rec.client->execute_burst(
        channel_index, request.size, start,
        [this, itf, request, epoch](const BurstChannel::Result& result) {
            const auto inf = inflight_.find(itf);
            const bool owns = inf != inflight_.end() && inf->second.client == request.client &&
                              inf->second.epoch == epoch;
            if (owns) {
                inflight_.erase(inf);
                interface_busy_[itf] = false;
            }
            auto it = clients_.find(request.client);
            if (it == clients_.end() || it->second.epoch != epoch) {
                // The client left mid-burst, or the watchdog already
                // repaired this burst: the completion is stale.  Free the
                // interface if this burst still held it, account nothing.
                if (owns) dispatch(itf);
                return;
            }
            ClientRecord& r = it->second;
            r.burst_outstanding = false;
            r.modeled_delivered += result.delivered;
            if (!result.delivered.is_zero()) r.last_progress = sim_.now();
            ++r.bursts;
            ++total_bursts_;
            WLANPS_OBS_COUNT("core.bursts_completed", 1);
            if (sim_.now() > request.deadline) {
                ++r.deadline_misses;
                WLANPS_OBS_COUNT("core.deadline_misses", 1);
            }
            // Undelivered bytes go back to the server buffer for a retry.
            if (!result.lost.is_zero() && !r.stored_content) r.server_buffer += result.lost;
            if (owns) dispatch(itf);
            plan_client(request.client, r);
        },
        obs::TraceContext{request.flow, static_cast<std::uint32_t>(request.client)});
}

void HotspotServer::inject_schedule_drop(double p, Time until, sim::Random rng) {
    WLANPS_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "drop probability out of [0, 1]");
    schedule_drop_p_ = p;
    schedule_drop_until_ = std::max(schedule_drop_until_, until);
    schedule_drop_rng_ = rng;
}

void HotspotServer::arm_repair(phy::Interface itf, ClientId id, std::uint64_t epoch,
                               HotspotClient* device, std::size_t channel_index, DataSize size,
                               Time at) {
    sim_.post_at(at, [this, itf, id, epoch, device, channel_index, size] {
        repair_check(itf, id, epoch, device, channel_index, size);
    });
}

void HotspotServer::repair_check(phy::Interface itf, ClientId id, std::uint64_t epoch,
                                 HotspotClient* device, std::size_t channel_index,
                                 DataSize size) {
    const auto inf = inflight_.find(itf);
    if (inf == inflight_.end() || inf->second.client != id || inf->second.epoch != epoch) {
        return;  // the burst completed (or was already repaired)
    }
    // Merely late (slow link, retry tail, wake still in flight): the burst
    // is provably alive, so keep waiting rather than double-booking the
    // interface.  `device` outlives the server per registration contract,
    // so this is safe even after a liveness reclaim.
    if (device->channel(channel_index).busy() || device->burst_pending()) {
        arm_repair(itf, id, epoch, device, channel_index, size,
                   sim_.now() + config_.resilience.repair_margin);
        return;
    }
    // The burst never started: schedule message lost, or the device died
    // before waking.  Reclaim the interface and replan.
    inflight_.erase(inf);
    interface_busy_[itf] = false;
    ++recovery_.burst_repairs;
    WLANPS_OBS_COUNT("core.recovery.burst_repairs", 1);
    WLANPS_LOG(sim::LogLevel::info, sim_.now(), "hotspot",
               "burst for client " << id << " on " << phy::to_string(itf)
                                   << " never started: repairing the schedule");
    auto it = clients_.find(id);
    if (it != clients_.end() && it->second.epoch == epoch) {
        ClientRecord& r = it->second;
        r.burst_outstanding = false;
        r.epoch = ++next_epoch_;  // a zombie completion must not account
        // The planner debited these bytes when it planned the burst; the
        // client never saw them, so they go back for a retry.
        if (!r.stored_content) r.server_buffer += size;
    }
    dispatch(itf);
}

ClientReport HotspotServer::report(ClientId id) const {
    const auto it = clients_.find(id);
    WLANPS_REQUIRE_MSG(it != clients_.end(), "unknown client");
    const ClientRecord& rec = it->second;
    ClientReport rep;
    rep.id = id;
    rep.delivered = rec.modeled_delivered;
    rep.bursts = rec.bursts;
    rep.deadline_misses = rec.deadline_misses;
    rep.interface_switches = rec.interface_switches;
    rep.current_channel = rec.current_channel;
    return rep;
}

std::vector<ClientReport> HotspotServer::reports() const {
    std::vector<ClientReport> out;
    out.reserve(clients_.size());
    for (const auto& [id, rec] : clients_) out.push_back(report(id));
    return out;
}

std::uint64_t HotspotServer::total_deadline_misses() const {
    std::uint64_t total = 0;
    for (const auto& [id, rec] : clients_) total += rec.deadline_misses;
    return total;
}

DataSize HotspotServer::modeled_client_buffer(ClientId id) const {
    const auto it = clients_.find(id);
    WLANPS_REQUIRE_MSG(it != clients_.end(), "unknown client");
    return modeled_buffer(it->second, sim_.now());
}

DataSize HotspotServer::server_buffer(ClientId id) const {
    const auto it = clients_.find(id);
    WLANPS_REQUIRE_MSG(it != clients_.end(), "unknown client");
    return it->second.server_buffer;
}

}  // namespace wlanps::core
