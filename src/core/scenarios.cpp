// This translation unit defines the legacy shims, so it opts out of their
// deprecation warnings.
#define WLANPS_ALLOW_LEGACY_SCENARIOS

#include "core/scenarios.hpp"

#include <map>
#include <memory>
#include <utility>

#include "bt/piconet.hpp"
#include "core/burst_channel.hpp"
#include "core/scenario_obs.hpp"
#include "core/sharded_hotspot.hpp"
#include "fault/injector.hpp"
#include "fed/federation.hpp"
#include "mac/access_point.hpp"
#include "mac/ecmac.hpp"
#include "mac/station.hpp"
#include "obs/energy_ledger.hpp"
#include "obs/hooks.hpp"
#include "policy/world.hpp"
#include "sim/assert.hpp"
#include "traffic/playout.hpp"
#include "traffic/source.hpp"

namespace wlanps::core {

namespace {

traffic::PlayoutBuffer::Config mp3_playout() {
    traffic::PlayoutBuffer::Config c;
    c.frame_size = phy::calibration::kMp3FrameSize;
    c.frame_interval = phy::calibration::kMp3FrameInterval;
    c.preroll = Time::from_seconds(2);
    c.capacity = DataSize::from_kilobytes(2048);
    c.start_threshold_frames = 38;  // ~1 s of audio buffered before playing
    return c;
}

// make_client_metrics / record_client_obs / record_kernel_obs moved to
// core/scenario_obs.hpp (shared with the sharded hotspot engine).
ClientMetrics make_metrics(power::Power wnic_avg, power::Energy wnic_energy,
                           const traffic::PlayoutBuffer& playout, DataSize received) {
    return make_client_metrics(wnic_avg, wnic_energy, playout, received);
}

ScenarioResult sim_wlan_cam(const StreamConfig& config) {
    WLANPS_REQUIRE(config.clients >= 1);
    sim::Simulator sim;
    sim::Random root(config.seed);
    mac::Bss bss(sim);
    mac::AccessPointConfig ap_cfg;
    ap_cfg.mode = mac::ApMode::cam;
    mac::AccessPoint ap(sim, bss, ap_cfg, mac::DcfConfig{}, root.fork(100));

    std::vector<std::unique_ptr<mac::WlanStation>> stations;
    std::vector<std::unique_ptr<traffic::PlayoutBuffer>> playouts;
    std::vector<std::unique_ptr<traffic::Mp3Source>> sources;

    for (int i = 0; i < config.clients; ++i) {
        const auto id = static_cast<mac::StationId>(i + 1);
        mac::StationConfig st_cfg;
        st_cfg.mode = mac::StationMode::cam;
        auto st = std::make_unique<mac::WlanStation>(sim, bss, id, st_cfg, mac::DcfConfig{},
                                                     config.wlan_nic, root.fork(200 + i));
        if (obs::EnergyLedger* led = obs::current_ledger()) {
            st->wlan_nic().attach_ledger(led, static_cast<std::uint32_t>(id));
        }
        bss.set_link(id, config.wlan_link, root.fork(300 + i));
        auto playout = std::make_unique<traffic::PlayoutBuffer>(sim, mp3_playout());
        st->set_receive_callback(
            [p = playout.get()](DataSize size, Time) { p->on_data(size); });
        auto src = std::make_unique<traffic::Mp3Source>(
            sim, [&ap, id](DataSize size) { ap.send(id, size); });
        stations.push_back(std::move(st));
        playouts.push_back(std::move(playout));
        sources.push_back(std::move(src));
    }

    // Fault injection: CAM has no beacon/poll dependence, so only the phy
    // kinds (radio wedge, stuck wake) and link windows route anywhere.
    std::unique_ptr<fault::FaultInjector> injector;
    if (!config.fault_plan.empty()) {
        injector = std::make_unique<fault::FaultInjector>(sim, config.fault_plan,
                                                          root.fork(900));
        injector->phy().nic_lockup = [&stations](std::uint32_t target, Time until) {
            for (std::size_t i = 0; i < stations.size(); ++i) {
                if (target == 0 || target == i + 1) stations[i]->wlan_nic().inject_lockup(until);
            }
        };
        injector->phy().wake_stuck = [&stations](std::uint32_t target, Time extra) {
            for (std::size_t i = 0; i < stations.size(); ++i) {
                if (target == 0 || target == i + 1) {
                    stations[i]->wlan_nic().inject_wake_stuck(extra);
                }
            }
        };
        injector->net().fault_window = [&bss, &sim, &config](std::uint32_t client,
                                                             fault::FaultSpec::Itf itf,
                                                             double p, Time until) {
            if (itf == fault::FaultSpec::Itf::bt) return;  // no BT in this scenario
            auto apply = [&](mac::StationId id) {
                if (auto* link = bss.link(id)) link->add_fault_window(sim.now(), until, p);
            };
            if (client == 0) {
                for (int i = 0; i < config.clients; ++i) {
                    apply(static_cast<mac::StationId>(i + 1));
                }
            } else {
                apply(static_cast<mac::StationId>(client));
            }
        };
    }

    ap.start();
    for (auto& st : stations) st->start(ap.config().beacon_interval, ap.config().beacon_interval);
    for (auto& p : playouts) p->start();
    for (auto& s : sources) s->start();
    if (injector) injector->arm();
    sim.run_until(config.duration);
    for (auto& st : stations) st->wlan_nic().settle_ledger();

    ScenarioResult result;
    result.label = "wlan-cam";
    if (injector) result.faults_injected = injector->injected_total();
    for (int i = 0; i < config.clients; ++i) {
        result.clients.push_back(make_metrics(stations[static_cast<std::size_t>(i)]->average_power(),
                                              stations[static_cast<std::size_t>(i)]->energy_consumed(),
                                              *playouts[static_cast<std::size_t>(i)],
                                              stations[static_cast<std::size_t>(i)]->bytes_received()));
    }
    if (obs::MetricsRegistry* reg = obs::current()) {
        for (auto& st : stations) st->wlan_nic().publish_metrics(*reg, "phy.wlan");
    }
    record_client_obs(result);
    record_kernel_obs(sim);
    return result;
}

ScenarioResult sim_wlan_psm(const StreamConfig& config, const PsmConfig& options) {
    WLANPS_REQUIRE(config.clients >= 1);
    WLANPS_REQUIRE(options.listen_interval >= 1);
    WLANPS_REQUIRE(options.aggregate_limit >= 1);
    sim::Simulator sim;
    sim::Random root(config.seed);
    mac::Bss bss(sim);
    mac::AccessPointConfig ap_cfg;
    ap_cfg.mode = mac::ApMode::psm;
    ap_cfg.beacon_interval = options.beacon_interval;
    ap_cfg.aggregate_limit = options.aggregate_limit;
    mac::AccessPoint ap(sim, bss, ap_cfg, mac::DcfConfig{}, root.fork(100));

    std::vector<std::unique_ptr<mac::WlanStation>> stations;
    std::vector<std::unique_ptr<traffic::PlayoutBuffer>> playouts;
    std::vector<std::unique_ptr<traffic::Mp3Source>> sources;

    for (int i = 0; i < config.clients; ++i) {
        const auto id = static_cast<mac::StationId>(i + 1);
        mac::StationConfig st_cfg;
        st_cfg.mode = mac::StationMode::psm;
        st_cfg.listen_interval = options.listen_interval;
        auto st = std::make_unique<mac::WlanStation>(sim, bss, id, st_cfg, mac::DcfConfig{},
                                                     config.wlan_nic, root.fork(200 + i));
        if (obs::EnergyLedger* led = obs::current_ledger()) {
            st->wlan_nic().attach_ledger(led, static_cast<std::uint32_t>(id));
        }
        bss.set_link(id, config.wlan_link, root.fork(300 + i));
        auto playout = std::make_unique<traffic::PlayoutBuffer>(sim, mp3_playout());
        st->set_receive_callback(
            [p = playout.get()](DataSize size, Time) { p->on_data(size); });
        auto src = std::make_unique<traffic::Mp3Source>(
            sim, [&ap, id](DataSize size) { ap.send(id, size); });
        stations.push_back(std::move(st));
        playouts.push_back(std::move(playout));
        sources.push_back(std::move(src));
    }

    // Fault injection: MAC faults exercise the stations' existing beacon-
    // and poll-timeout recovery; link faults ride the per-station links.
    std::unique_ptr<fault::FaultInjector> injector;
    if (!config.fault_plan.empty()) {
        injector = std::make_unique<fault::FaultInjector>(sim, config.fault_plan,
                                                          root.fork(900));
        injector->mac().beacon_loss = [&ap](Time until) { ap.suppress_beacons(until); };
        injector->mac().poll_drop = [&ap, &root](double p, Time until) {
            ap.inject_poll_drop(p, until, root.fork(901));
        };
        injector->net().fault_window = [&bss, &sim, &config](std::uint32_t client,
                                                             fault::FaultSpec::Itf itf,
                                                             double p, Time until) {
            if (itf == fault::FaultSpec::Itf::bt) return;  // no BT in this scenario
            auto apply = [&](mac::StationId id) {
                if (auto* link = bss.link(id)) link->add_fault_window(sim.now(), until, p);
            };
            if (client == 0) {
                for (int i = 0; i < config.clients; ++i) {
                    apply(static_cast<mac::StationId>(i + 1));
                }
            } else {
                apply(static_cast<mac::StationId>(client));
            }
        };
    }

    ap.start();
    for (auto& st : stations) st->start(ap.config().beacon_interval, ap.config().beacon_interval);
    for (auto& p : playouts) p->start();
    for (auto& s : sources) s->start();
    if (injector) injector->arm();
    sim.run_until(config.duration);
    for (auto& st : stations) st->wlan_nic().settle_ledger();

    ScenarioResult result;
    result.label = "wlan-psm";
    if (injector) result.faults_injected = injector->injected_total();
    for (std::size_t i = 0; i < stations.size(); ++i) {
        result.clients.push_back(make_metrics(stations[i]->average_power(),
                                              stations[i]->energy_consumed(), *playouts[i],
                                              stations[i]->bytes_received()));
    }
    if (obs::MetricsRegistry* reg = obs::current()) {
        for (auto& st : stations) st->wlan_nic().publish_metrics(*reg, "phy.wlan");
    }
    record_client_obs(result);
    record_kernel_obs(sim);
    return result;
}

ScenarioResult sim_ecmac(const StreamConfig& config, Time superframe) {
    WLANPS_REQUIRE(config.clients >= 1);
    sim::Simulator sim;
    sim::Random root(config.seed);
    mac::Bss bss(sim);
    mac::EcMacConfig ec_cfg;
    ec_cfg.superframe = superframe;
    mac::EcMacController controller(sim, bss, ec_cfg, root.fork(100));

    std::vector<std::unique_ptr<mac::EcMacStation>> stations;
    std::vector<std::unique_ptr<traffic::PlayoutBuffer>> playouts;
    std::vector<std::unique_ptr<traffic::Mp3Source>> sources;

    for (int i = 0; i < config.clients; ++i) {
        const auto id = static_cast<mac::StationId>(i + 1);
        auto st = std::make_unique<mac::EcMacStation>(sim, bss, id, ec_cfg, config.wlan_nic);
        if (obs::EnergyLedger* led = obs::current_ledger()) {
            st->wlan_nic().attach_ledger(led, static_cast<std::uint32_t>(id));
        }
        bss.set_link(id, config.wlan_link, root.fork(300 + i));
        auto playout = std::make_unique<traffic::PlayoutBuffer>(sim, mp3_playout());
        st->set_receive_callback(
            [p = playout.get()](DataSize size, Time) { p->on_data(size); });
        auto src = std::make_unique<traffic::Mp3Source>(
            sim, [&controller, id](DataSize size) { controller.send(id, size); });
        stations.push_back(std::move(st));
        playouts.push_back(std::move(playout));
        sources.push_back(std::move(src));
    }

    controller.start();
    for (auto& st : stations) st->start(controller.superframe_anchor());
    for (auto& p : playouts) p->start();
    for (auto& s : sources) s->start();
    sim.run_until(config.duration);
    for (auto& st : stations) st->wlan_nic().settle_ledger();

    ScenarioResult result;
    result.label = "ec-mac";
    for (std::size_t i = 0; i < stations.size(); ++i) {
        result.clients.push_back(make_metrics(stations[i]->average_power(),
                                              stations[i]->energy_consumed(), *playouts[i],
                                              stations[i]->bytes_received()));
    }
    if (obs::MetricsRegistry* reg = obs::current()) {
        for (auto& st : stations) st->wlan_nic().publish_metrics(*reg, "phy.wlan");
    }
    record_client_obs(result);
    record_kernel_obs(sim);
    return result;
}

ScenarioResult sim_bt_active(const StreamConfig& config) {
    WLANPS_REQUIRE(config.clients >= 1);
    sim::Simulator sim;
    sim::Random root(config.seed);
    bt::Piconet piconet(sim, bt::PiconetConfig{}, root.fork(100));

    std::vector<std::unique_ptr<bt::BtSlave>> slaves;
    std::vector<bt::SlaveId> ids;
    std::vector<std::unique_ptr<traffic::PlayoutBuffer>> playouts;
    std::vector<std::unique_ptr<traffic::Mp3Source>> sources;

    for (int i = 0; i < config.clients; ++i) {
        auto slave = std::make_unique<bt::BtSlave>(sim, config.bt_nic,
                                                   phy::BtNic::State::active);
        const bt::SlaveId id = piconet.join(*slave);
        if (obs::EnergyLedger* led = obs::current_ledger()) {
            slave->nic().attach_ledger(led, static_cast<std::uint32_t>(i + 1));
        }
        piconet.set_link(id, config.bt_link, root.fork(300 + i));
        auto playout = std::make_unique<traffic::PlayoutBuffer>(sim, mp3_playout());
        slave->set_receive_callback([p = playout.get()](DataSize size) { p->on_data(size); });
        auto src = std::make_unique<traffic::Mp3Source>(
            sim, [&piconet, id](DataSize size) { piconet.send(id, size); });
        slaves.push_back(std::move(slave));
        ids.push_back(id);
        playouts.push_back(std::move(playout));
        sources.push_back(std::move(src));
    }

    for (auto& p : playouts) p->start();
    for (auto& s : sources) s->start();
    sim.run_until(config.duration);
    for (auto& s : slaves) s->nic().settle_ledger();

    ScenarioResult result;
    result.label = "bt-active";
    for (std::size_t i = 0; i < slaves.size(); ++i) {
        result.clients.push_back(make_metrics(slaves[i]->average_power(),
                                              slaves[i]->energy_consumed(), *playouts[i],
                                              slaves[i]->bytes_received()));
    }
    if (obs::MetricsRegistry* reg = obs::current()) {
        for (auto& s : slaves) s->nic().publish_metrics(*reg, "phy.bt");
    }
    record_client_obs(result);
    record_kernel_obs(sim);
    return result;
}

ScenarioResult sim_hotspot(const StreamConfig& config, const HotspotConfig& options) {
    WLANPS_REQUIRE(config.clients >= 1);
    WLANPS_REQUIRE_MSG(options.wlan_available || options.bt_available,
                       "at least one interface must be available");
    const fault::FaultPlan& plan = config.fault_plan;
    plan.validate();
    sim::Simulator sim;
    sim::Random root(config.seed);

    // Shared Bluetooth piconet for all clients (one Hotspot radio).
    bt::Piconet piconet(sim, bt::PiconetConfig{}, root.fork(100));

    std::vector<std::unique_ptr<HotspotClient>> clients;
    std::vector<std::unique_ptr<phy::WlanNic>> wlan_nics;
    std::vector<std::unique_ptr<channel::WirelessLink>> wlan_links;
    std::vector<std::unique_ptr<bt::BtSlave>> slaves;
    std::vector<std::unique_ptr<MediaProxy>> proxies;
    std::vector<std::unique_ptr<traffic::Source>> sources;
    std::vector<std::unique_ptr<RejoinAgent>> agents;  // index = client id - 1
    std::vector<Time> join_at;                         // zero = at scenario start
    // Fault-hook routing tables (client id -> the injectable surface).
    std::map<ClientId, phy::WlanNic*> nic_of;
    std::map<ClientId, channel::WirelessLink*> wlink_of;
    std::map<ClientId, bt::SlaveId> sid_of;

    HotspotServer server(sim,
                         ServerConfig{}
                             .with_target_burst(options.target_burst)
                             .with_utilization_cap(options.utilization_cap)
                             .with_target_burst_period(options.target_burst_period)
                             .with_resilience(options.resilience),
                         make_scheduler(options.scheduler));
    const bool stored = !options.media_proxy;

    for (int i = 0; i < config.clients; ++i) {
        const auto id = static_cast<ClientId>(i + 1);
        QosContract contract;
        if (options.media_proxy) {
            // Live A/V through the proxy (thinned under adversity).
            contract.stream_rate = options.proxy_config.av_rate;
            contract.client_buffer = DataSize::from_kilobytes(4096);
            contract.preroll = Time::from_seconds(6);
        } else {
            contract.stream_rate = phy::calibration::kMp3Rate;
        }
        if (options.contract_tweak) options.contract_tweak(id, contract);
        auto client = std::make_unique<HotspotClient>(sim, id, contract);

        if (options.wlan_available) {
            auto nic = std::make_unique<phy::WlanNic>(sim, config.wlan_nic,
                                                      phy::WlanNic::State::idle);
            auto link = std::make_unique<channel::WirelessLink>(config.wlan_link,
                                                                root.fork(300 + i));
            client->add_channel(
                std::make_unique<WlanBurstChannel>(sim, *nic, link.get()));
            nic_of[id] = nic.get();
            wlink_of[id] = link.get();
            wlan_nics.push_back(std::move(nic));
            wlan_links.push_back(std::move(link));
        }
        if (options.bt_available) {
            auto slave = std::make_unique<bt::BtSlave>(sim, config.bt_nic,
                                                       phy::BtNic::State::active);
            const bt::SlaveId sid = piconet.join(*slave);
            piconet.set_link(sid, config.bt_link, root.fork(400 + i));
            if (!options.bt_quality_script.empty()) {
                piconet.set_link_script(sid, options.bt_quality_script);
            }
            client->add_channel(std::make_unique<BtBurstChannel>(piconet, sid, *slave));
            sid_of[id] = sid;
            slaves.push_back(std::move(slave));
        }

        join_at.push_back(plan.registration_at(id));
        if (join_at.back().is_zero()) {
            server.register_client(*client);
            // The Hotspot proxy streams stored/prefetched media: bursts are
            // sized by the client buffer, not real-time arrival (paper §2).
            if (stored) server.set_stored_content(id, true);
        }
        if (options.media_proxy) {
            // The downstream sink tolerates the client being unregistered
            // (crashed/reclaimed): live content it misses is simply lost.
            auto proxy = std::make_unique<MediaProxy>(
                sim, *client,
                [&server, id](DataSize s) {
                    if (server.has_client(id)) server.ingest_sink(id)(s);
                },
                options.proxy_config);
            // 600 kb/s-class A/V feed: ~3 KB chunks at the A/V rate.
            sources.push_back(std::make_unique<traffic::PoissonSource>(
                sim, proxy->ingest_sink(), DataSize::from_bytes(3000),
                options.proxy_config.av_rate, root.fork(500 + i)));
            proxies.push_back(std::move(proxy));
        }
        clients.push_back(std::move(client));
    }

    // Lives through the whole run: on_start callbacks may schedule probes
    // that reference it mid-simulation.
    std::vector<HotspotClient*> raw;
    raw.reserve(clients.size());
    for (auto& c : clients) raw.push_back(c.get());

    if (obs::EnergyLedger* led = obs::current_ledger()) {
        for (auto& c : clients) {
            for (BurstChannel* ch : c->channels()) {
                ch->wnic().attach_ledger(led, static_cast<std::uint32_t>(c->id()));
            }
        }
    }

    if (options.rejoin_enabled) {
        for (std::size_t i = 0; i < clients.size(); ++i) {
            agents.push_back(std::make_unique<RejoinAgent>(
                sim, server, *clients[i], options.rejoin,
                root.fork(910 + static_cast<std::uint64_t>(i))));
            agents.back()->set_on_rejoined([&server, stored](ClientId cid) {
                if (stored) server.set_stored_content(cid, true);
            });
        }
        server.set_on_client_lost([&agents](ClientId cid) {
            if (cid >= 1 && cid <= agents.size()) agents[cid - 1]->on_lost();
        });
    }

    // Late joiners: the device shows up mid-run and asks for admission.
    for (std::size_t i = 0; i < clients.size(); ++i) {
        if (join_at[i].is_zero()) continue;
        sim.post_at(join_at[i], [&server, &agents, stored, c = clients[i].get()] {
            if (server.try_register(*c)) {
                if (stored) server.set_stored_content(c->id(), true);
                c->playout().start();
            } else if (c->id() >= 1 && c->id() <= agents.size()) {
                agents[c->id() - 1]->on_lost();  // keep trying with backoff
            }
        });
    }

    // The injector is built only when the plan is non-empty: a faults-off
    // run schedules nothing extra and consumes no extra randomness.
    std::unique_ptr<fault::FaultInjector> injector;
    if (!plan.empty()) {
        injector = std::make_unique<fault::FaultInjector>(sim, plan, root.fork(900));
        if (options.wlan_available) {
            injector->phy().nic_lockup = [&nic_of](std::uint32_t target, Time until) {
                for (auto& [id, nic] : nic_of) {
                    if (target == 0 || id == target) nic->inject_lockup(until);
                }
            };
            injector->phy().wake_stuck = [&nic_of](std::uint32_t target, Time extra) {
                for (auto& [id, nic] : nic_of) {
                    if (target == 0 || id == target) nic->inject_wake_stuck(extra);
                }
            };
        }
        injector->net().fault_window = [&sim, &wlink_of, &sid_of, &piconet](
                                           std::uint32_t target, fault::FaultSpec::Itf itf,
                                           double p, Time until) {
            if (itf != fault::FaultSpec::Itf::bt) {
                for (auto& [id, link] : wlink_of) {
                    if (target == 0 || id == target) {
                        link->add_fault_window(sim.now(), until, p);
                    }
                }
            }
            if (itf != fault::FaultSpec::Itf::wlan) {
                for (auto& [id, sid] : sid_of) {
                    if (target != 0 && id != target) continue;
                    if (auto* link = piconet.link(sid)) {
                        link->add_fault_window(sim.now(), until, p);
                    }
                }
            }
        };
        injector->core().crash = [&clients, &agents](std::uint32_t target) {
            for (auto& c : clients) {
                if (target != 0 && c->id() != target) continue;
                c->crash();
                if (c->id() >= 1 && c->id() <= agents.size()) agents[c->id() - 1]->on_crashed();
            }
        };
        injector->core().revive = [&clients, &agents](std::uint32_t target) {
            for (auto& c : clients) {
                if (target != 0 && c->id() != target) continue;
                c->revive();
                if (c->id() >= 1 && c->id() <= agents.size()) agents[c->id() - 1]->on_revived();
            }
        };
        injector->core().schedule_drop = [&server, &root](double p, Time until) {
            server.inject_schedule_drop(p, until, root.fork(902));
        };
        injector->attach_trace(options.fault_trace);
    }

    if (options.on_start) options.on_start(sim, server, raw);
    for (std::size_t i = 0; i < clients.size(); ++i) {
        clients[i]->start(/*start_playout=*/join_at[i].is_zero());
    }
    for (auto& p : proxies) p->start();
    for (auto& s : sources) s->start();
    server.start();
    if (injector) injector->arm();
    sim.run_until(config.duration);
    for (auto& c : clients) {
        for (BurstChannel* ch : c->channels()) ch->wnic().settle_ledger();
    }

    if (options.inspect) options.inspect(sim, server, raw);

    ScenarioResult result;
    result.label = "hotspot-" + options.scheduler;
    for (auto& c : clients) {
        result.clients.push_back(make_metrics(c->wnic_average_power(), c->wnic_energy(),
                                              c->playout(), c->bytes_received()));
    }
    result.recovery = server.recovery_report();
    for (auto& a : agents) {
        result.recovery.rejoin_attempts += a->attempts();
        result.recovery.rejoins += a->rejoins();
        for (double t : a->recover_times_s()) result.recovery.recover_times_s.push_back(t);
    }
    for (auto& p : proxies) result.degradation.push_back(p->report());
    if (injector) result.faults_injected = injector->injected_total();
    if (obs::MetricsRegistry* reg = obs::current()) {
        for (auto& nic : wlan_nics) nic->publish_metrics(*reg, "phy.wlan");
        for (auto& s : slaves) s->nic().publish_metrics(*reg, "phy.bt");
    }
    record_client_obs(result);
    record_kernel_obs(sim);
    return result;
}

ScenarioResult sim_hotspot_mixed(const StreamConfig& config, const HotspotConfig& options,
                                 MixedWorkload mix) {
    WLANPS_REQUIRE(mix.mp3_clients >= 0 && mix.video_clients >= 0 && mix.web_clients >= 0);
    const int total = mix.mp3_clients + mix.video_clients + mix.web_clients;
    WLANPS_REQUIRE(total >= 1);
    WLANPS_REQUIRE_MSG(mix.mp3_clients + mix.video_clients + mix.web_clients <= 7,
                       "one piconet supports at most 7 active slaves");

    sim::Simulator sim;
    sim::Random root(config.seed);
    bt::Piconet piconet(sim, bt::PiconetConfig{}, root.fork(100));

    std::vector<std::unique_ptr<HotspotClient>> clients;
    std::vector<std::unique_ptr<phy::WlanNic>> wlan_nics;
    std::vector<std::unique_ptr<channel::WirelessLink>> wlan_links;
    std::vector<std::unique_ptr<bt::BtSlave>> slaves;
    std::vector<std::unique_ptr<traffic::Source>> sources;
    enum class Kind { mp3, video, web };
    std::vector<Kind> kinds;

    HotspotServer server(sim,
                         ServerConfig{}
                             .with_target_burst(options.target_burst)
                             .with_utilization_cap(options.utilization_cap)
                             .with_target_burst_period(options.target_burst_period),
                         make_scheduler(options.scheduler));

    // Mean rate of the default VBR video pattern (GOP of 12 at 25 fps).
    const traffic::VideoSource::Config video_cfg;
    const double video_bytes_per_gop =
        static_cast<double>(video_cfg.i_frame.bytes()) +
        3.0 * static_cast<double>(video_cfg.p_frame.bytes()) +
        8.0 * static_cast<double>(video_cfg.b_frame.bytes());
    const Rate video_rate =
        Rate::from_bps(video_bytes_per_gop * 8.0 * video_cfg.fps / video_cfg.gop);

    auto build_client = [&](ClientId id, Kind kind) {
        QosContract contract;
        switch (kind) {
            case Kind::mp3:
                contract.stream_rate = phy::calibration::kMp3Rate;
                break;
            case Kind::video:
                contract.stream_rate = video_rate;
                contract.client_buffer = DataSize::from_kilobytes(4096);
                // Live VBR consumes as fast as it arrives, so the client
                // can never buffer more than its preroll: a deep preroll
                // buys the long inter-burst sleeps.
                contract.preroll = Time::from_seconds(6);
                break;
            case Kind::web:
                // Bursty, latency-tolerant; reserve a light trickle.
                contract.stream_rate = Rate::from_kbps(64);
                break;
        }
        auto client = std::make_unique<HotspotClient>(sim, id, contract);
        auto nic = std::make_unique<phy::WlanNic>(sim, config.wlan_nic,
                                                  phy::WlanNic::State::idle);
        auto link = std::make_unique<channel::WirelessLink>(config.wlan_link,
                                                            root.fork(300 + id));
        client->add_channel(std::make_unique<WlanBurstChannel>(sim, *nic, link.get()));
        wlan_nics.push_back(std::move(nic));
        wlan_links.push_back(std::move(link));

        auto slave = std::make_unique<bt::BtSlave>(sim, config.bt_nic,
                                                   phy::BtNic::State::active);
        const bt::SlaveId sid = piconet.join(*slave);
        piconet.set_link(sid, config.bt_link, root.fork(400 + id));
        client->add_channel(std::make_unique<BtBurstChannel>(piconet, sid, *slave));
        slaves.push_back(std::move(slave));

        server.register_client(*client);
        switch (kind) {
            case Kind::mp3:
                server.set_stored_content(id, true);
                break;
            case Kind::video:
                sources.push_back(std::make_unique<traffic::VideoSource>(
                    sim, server.ingest_sink(id), video_cfg, root.fork(500 + id)));
                break;
            case Kind::web:
                sources.push_back(std::make_unique<traffic::WebSource>(
                    sim, server.ingest_sink(id), traffic::WebSource::Config{},
                    root.fork(500 + id)));
                break;
        }
        kinds.push_back(kind);
        clients.push_back(std::move(client));
    };

    ClientId next_id = 1;
    for (int i = 0; i < mix.mp3_clients; ++i) build_client(next_id++, Kind::mp3);
    for (int i = 0; i < mix.video_clients; ++i) build_client(next_id++, Kind::video);
    for (int i = 0; i < mix.web_clients; ++i) build_client(next_id++, Kind::web);

    std::vector<HotspotClient*> raw;
    raw.reserve(clients.size());
    for (auto& c : clients) raw.push_back(c.get());

    if (obs::EnergyLedger* led = obs::current_ledger()) {
        for (auto& c : clients) {
            for (BurstChannel* ch : c->channels()) {
                ch->wnic().attach_ledger(led, static_cast<std::uint32_t>(c->id()));
            }
        }
    }

    if (options.on_start) options.on_start(sim, server, raw);
    for (std::size_t i = 0; i < clients.size(); ++i) {
        clients[i]->start(/*start_playout=*/kinds[i] != Kind::web);
    }
    for (auto& s : sources) s->start();
    server.start();
    sim.run_until(config.duration);
    for (auto& c : clients) {
        for (BurstChannel* ch : c->channels()) ch->wnic().settle_ledger();
    }

    if (options.inspect) options.inspect(sim, server, raw);

    ScenarioResult result;
    result.label = "hotspot-mixed-" + options.scheduler;
    std::size_t source_index = 0;
    for (std::size_t i = 0; i < clients.size(); ++i) {
        ClientMetrics m = make_metrics(clients[i]->wnic_average_power(),
                                       clients[i]->wnic_energy(), clients[i]->playout(),
                                       clients[i]->bytes_received());
        if (kinds[i] != Kind::mp3) {
            // Live-ingest clients: relate delivery to generation.
            const traffic::Source& src = *sources[source_index++];
            if (kinds[i] == Kind::web) {
                const auto generated = src.bytes_generated();
                m.qos = generated.is_zero()
                            ? 1.0
                            : std::min(1.0, static_cast<double>(m.received.bytes()) /
                                                static_cast<double>(generated.bytes()));
                m.underruns = 0;
            }
        }
        result.clients.push_back(m);
    }
    if (obs::MetricsRegistry* reg = obs::current()) {
        for (auto& nic : wlan_nics) nic->publish_metrics(*reg, "phy.wlan");
        for (auto& s : slaves) s->nic().publish_metrics(*reg, "phy.bt");
    }
    record_client_obs(result);
    record_kernel_obs(sim);
    return result;
}

/// Event-driven power policies (micro_nap, pamas): one PolicyBssWorld on a
/// single-queue Simulator, with the same fault-injector surface as the psm
/// scenario plus the phy hooks (μNap interacts with radio wedges directly).
ScenarioResult sim_policy_bss(const StreamConfig& config,
                              const policy::PowerPolicyConfig& power) {
    WLANPS_REQUIRE(config.clients >= 1);
    sim::Simulator sim;
    sim::Random root(config.seed);  // world forks 100/200+i/300+i; injector 900

    policy::PolicyWorldConfig wc;
    wc.clients = config.clients;
    wc.seed = config.seed;
    wc.policy = power;
    wc.nic = config.wlan_nic;
    wc.link = config.wlan_link;
    wc.playout = mp3_playout();
    policy::PolicyBssWorld world(sim, wc, obs::current_ledger());

    std::unique_ptr<fault::FaultInjector> injector;
    if (!config.fault_plan.empty()) {
        injector = std::make_unique<fault::FaultInjector>(sim, config.fault_plan,
                                                          root.fork(900));
        injector->mac().beacon_loss = [&world](Time until) {
            world.ap().suppress_beacons(until);
        };
        injector->phy().nic_lockup = [&world, &config](std::uint32_t target, Time until) {
            for (int i = 0; i < config.clients; ++i) {
                if (target == 0 || target == static_cast<std::uint32_t>(i + 1)) {
                    world.station(i).wlan_nic().inject_lockup(until);
                }
            }
        };
        injector->phy().wake_stuck = [&world, &config](std::uint32_t target, Time extra) {
            for (int i = 0; i < config.clients; ++i) {
                if (target == 0 || target == static_cast<std::uint32_t>(i + 1)) {
                    world.station(i).wlan_nic().inject_wake_stuck(extra);
                }
            }
        };
        injector->net().fault_window = [&world, &sim, &config](std::uint32_t client,
                                                               fault::FaultSpec::Itf itf,
                                                               double p, Time until) {
            if (itf == fault::FaultSpec::Itf::bt) return;  // no BT in this scenario
            auto apply = [&](mac::StationId id) {
                if (auto* link = world.bss().link(id)) {
                    link->add_fault_window(sim.now(), until, p);
                }
            };
            if (client == 0) {
                for (int i = 0; i < config.clients; ++i) {
                    apply(static_cast<mac::StationId>(i + 1));
                }
            } else {
                apply(static_cast<mac::StationId>(client));
            }
        };
    }

    world.start();
    if (injector) injector->arm();
    sim.run_until(config.duration);
    world.settle();

    ScenarioResult result;
    result.label = power.kind == policy::PolicyKind::micro_nap ? "micro-nap" : "pamas";
    if (injector) result.faults_injected = injector->injected_total();
    for (int i = 0; i < config.clients; ++i) {
        policy::PolicyStation& st = world.station(i);
        result.clients.push_back(make_metrics(st.average_power(), st.energy_consumed(),
                                              world.playout(i), st.bytes_received()));
    }
    if (obs::MetricsRegistry* reg = obs::current()) {
        for (int i = 0; i < config.clients; ++i) {
            world.station(i).wlan_nic().publish_metrics(*reg, "phy.wlan");
        }
    }
    record_client_obs(result);
    record_kernel_obs(sim);
    return result;
}

}  // namespace

ScenarioResult SimBackend::do_run(const ScenarioSpec& spec, std::uint64_t seed) const {
    StreamConfig config = spec.stream();
    config.seed = seed;
    if (spec.policy() == Policy::cam && spec.has_power_policy()) {
        // Pluggable power policies: the adapter kinds reroute to the
        // matching pre-existing scenario so one spec axis sweeps them all;
        // the event-driven kinds build a PolicyBssWorld.
        const policy::PowerPolicyConfig& power = spec.power_policy_config();
        switch (power.kind) {
            case policy::PolicyKind::cam:
                return sim_wlan_cam(config);
            case policy::PolicyKind::psm: {
                PsmConfig psm;
                psm.listen_interval = power.psm_listen_interval;
                psm.aggregate_limit = power.psm_aggregate_limit;
                psm.beacon_interval = power.beacon_interval;
                return sim_wlan_psm(config, psm);
            }
            case policy::PolicyKind::ecmac:
                return sim_ecmac(config, power.ecmac_superframe);
            case policy::PolicyKind::micro_nap:
            case policy::PolicyKind::pamas:
                return sim_policy_bss(config, power);
        }
        WLANPS_REQUIRE_MSG(false, "bad power-policy kind");
    }
    switch (spec.policy()) {
        case Policy::cam: return sim_wlan_cam(config);
        case Policy::psm: return sim_wlan_psm(config, spec.psm_config());
        case Policy::ecmac: return sim_ecmac(config, spec.ecmac_config().superframe);
        case Policy::bt: return sim_bt_active(config);
        case Policy::hotspot:
            if (spec.hotspot_config().sharding.enabled()) {
                return sim_sharded_hotspot(config, spec.hotspot_config());
            }
            return sim_hotspot(config, spec.hotspot_config());
        case Policy::hotspot_mixed:
            return sim_hotspot_mixed(config, spec.hotspot_config(), spec.mix());
        case Policy::federation:
            return fed::run_federation(spec, seed).scenario;
    }
    WLANPS_REQUIRE_MSG(false, "bad policy");
    return {};
}

}  // namespace wlanps::core

namespace wlanps::core::scenarios {

ScenarioResult run_wlan_cam(const StreamConfig& config) {
    return SimBackend{}.run(ScenarioSpec::cam().with_stream(config), config.seed);
}

ScenarioResult run_wlan_psm(const StreamConfig& config, PsmOptions options) {
    return SimBackend{}.run(ScenarioSpec::psm().with_stream(config).with_psm(options),
                            config.seed);
}

ScenarioResult run_ecmac(const StreamConfig& config, Time superframe) {
    return SimBackend{}.run(ScenarioSpec::ecmac().with_stream(config).with_superframe(superframe),
                            config.seed);
}

ScenarioResult run_bt_active(const StreamConfig& config) {
    return SimBackend{}.run(ScenarioSpec::bt().with_stream(config), config.seed);
}

ScenarioResult run_hotspot(const StreamConfig& config, HotspotOptions options) {
    return SimBackend{}.run(
        ScenarioSpec::hotspot().with_stream(config).with_hotspot(std::move(options)),
        config.seed);
}

ScenarioResult run_hotspot_mixed(const StreamConfig& config, HotspotOptions options,
                                 MixedWorkload mix) {
    return SimBackend{}.run(ScenarioSpec::hotspot_mixed()
                                .with_stream(config)
                                .with_hotspot(std::move(options))
                                .with_mix(mix),
                            config.seed);
}

ScenarioFactory spec_factory(ScenarioSpec spec, std::shared_ptr<const Backend> backend) {
    if (!backend) backend = std::make_shared<SimBackend>();
    return [spec = std::move(spec), backend = std::move(backend)](std::uint64_t seed) {
        return backend->run(spec, seed);
    };
}

ScenarioFactory wlan_cam_factory(StreamConfig config) {
    return spec_factory(ScenarioSpec::cam().with_stream(std::move(config)));
}

ScenarioFactory wlan_psm_factory(StreamConfig config, core::PsmConfig options) {
    return spec_factory(ScenarioSpec::psm().with_stream(std::move(config)).with_psm(options));
}

ScenarioFactory ecmac_factory(StreamConfig config, Time superframe) {
    return spec_factory(
        ScenarioSpec::ecmac().with_stream(std::move(config)).with_superframe(superframe));
}

ScenarioFactory bt_active_factory(StreamConfig config) {
    return spec_factory(ScenarioSpec::bt().with_stream(std::move(config)));
}

ScenarioFactory hotspot_factory(StreamConfig config, core::HotspotConfig options) {
    return spec_factory(
        ScenarioSpec::hotspot().with_stream(std::move(config)).with_hotspot(std::move(options)));
}

ScenarioFactory hotspot_mixed_factory(StreamConfig config, core::HotspotConfig options,
                                      MixedWorkload mix) {
    return spec_factory(ScenarioSpec::hotspot_mixed()
                            .with_stream(std::move(config))
                            .with_hotspot(std::move(options))
                            .with_mix(mix));
}

exp::Metrics to_metrics(const ScenarioResult& result) {
    exp::Metrics metrics;
    metrics.reserve(3 + 2 * result.clients.size());
    metrics.emplace_back("wnic_w", result.mean_wnic().watts());
    metrics.emplace_back("device_w", result.mean_device().watts());
    metrics.emplace_back("qos_min", result.min_qos());
    for (std::size_t i = 0; i < result.clients.size(); ++i) {
        const std::string prefix = "c" + std::to_string(i + 1) + ".";
        metrics.emplace_back(prefix + "wnic_w", result.clients[i].wnic_average.watts());
        metrics.emplace_back(prefix + "qos", result.clients[i].qos);
    }
    return metrics;
}

exp::Metrics to_recovery_metrics(const ScenarioResult& result) {
    exp::Metrics metrics = to_metrics(result);
    const RecoveryReport& r = result.recovery;
    metrics.emplace_back("faults_injected", static_cast<double>(result.faults_injected));
    metrics.emplace_back("liveness_reclaims", static_cast<double>(r.liveness_reclaims));
    metrics.emplace_back("burst_repairs", static_cast<double>(r.burst_repairs));
    metrics.emplace_back("schedule_drops", static_cast<double>(r.schedule_drops));
    metrics.emplace_back("rejoin_attempts", static_cast<double>(r.rejoin_attempts));
    metrics.emplace_back("rejoins", static_cast<double>(r.rejoins));
    double recover_sum = 0.0;
    for (double t : r.recover_times_s) recover_sum += t;
    metrics.emplace_back("mean_recover_s", r.recover_times_s.empty()
                                               ? 0.0
                                               : recover_sum / static_cast<double>(
                                                                   r.recover_times_s.size()));
    std::uint64_t video_drops = 0;
    std::uint64_t pauses = 0;
    double audio_only_s = 0.0;
    double paused_s = 0.0;
    for (const auto& d : result.degradation) {
        video_drops += d.video_drops;
        pauses += d.pauses;
        audio_only_s += d.time_audio_only_s;
        paused_s += d.time_paused_s;
    }
    metrics.emplace_back("video_drops", static_cast<double>(video_drops));
    metrics.emplace_back("pauses", static_cast<double>(pauses));
    metrics.emplace_back("time_audio_only_s", audio_only_s);
    metrics.emplace_back("time_paused_s", paused_s);
    return metrics;
}

exp::RunFn spec_grid_run(std::shared_ptr<const Backend> backend,
                         std::vector<ScenarioSpec> specs) {
    WLANPS_REQUIRE_MSG(backend != nullptr, "spec_grid_run needs a backend");
    WLANPS_REQUIRE_MSG(!specs.empty(), "spec_grid_run needs at least one spec");
    for (const ScenarioSpec& spec : specs) spec.validate();
    return [backend = std::move(backend), specs = std::move(specs)](
               const exp::ParamPoint& point, std::uint64_t seed) {
        WLANPS_REQUIRE_MSG(point.index < specs.size(),
                           "grid point " + std::to_string(point.index) + " has no spec (" +
                               std::to_string(specs.size()) + " provided)");
        return to_metrics(backend->run(specs[point.index], seed));
    };
}

exp::RunFn fault_grid_run(StreamConfig config, core::HotspotConfig options,
                          std::vector<fault::FaultPlan> plans) {
    WLANPS_REQUIRE_MSG(!plans.empty(), "fault grid needs at least one plan");
    auto spec = ScenarioSpec::hotspot().with_stream(std::move(config)).with_hotspot(
        std::move(options));
    return [spec = std::move(spec), plans = std::move(plans)](const exp::ParamPoint& point,
                                                              std::uint64_t seed) mutable {
        WLANPS_REQUIRE_MSG(point.index < plans.size(),
                           "grid point " + std::to_string(point.index) + " has no fault plan (" +
                               std::to_string(plans.size()) + " provided)");
        spec.with_fault_plan(plans[point.index]);
        return to_recovery_metrics(SimBackend{}.run(spec, seed));
    };
}

}  // namespace wlanps::core::scenarios
