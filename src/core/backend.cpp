#include "core/backend.hpp"

#include "sim/assert.hpp"

namespace wlanps::core {

ScenarioResult Backend::run(const ScenarioSpec& spec, std::uint64_t seed) const {
    spec.validate();
    const std::string reason = unsupported_reason(spec);
    WLANPS_REQUIRE_MSG(reason.empty(),
                       "backend '" + name() + "' cannot run this scenario: " + reason);
    return do_run(spec, seed);
}

}  // namespace wlanps::core
