#pragma once
/// \file scenario_obs.hpp
/// End-of-run result/observability folds shared by the scenario engines
/// (core/scenarios.cpp and core/sharded_hotspot.cpp): per-client metric
/// assembly and the per-client / kernel registry folds, under the stable
/// keys dashboards and the experiment runner merge on.

#include "core/scenario_spec.hpp"
#include "obs/hooks.hpp"
#include "phy/calibration.hpp"
#include "sim/simulator.hpp"
#include "traffic/playout.hpp"

namespace wlanps::core {

/// Whole-device power: WNICs plus the IPAQ base platform.
[[nodiscard]] inline power::Power scenario_device_power(power::Power wnic) {
    return wnic + phy::calibration::kIpaqBase;
}

[[nodiscard]] inline ClientMetrics make_client_metrics(power::Power wnic_avg,
                                                       power::Energy wnic_energy,
                                                       const traffic::PlayoutBuffer& playout,
                                                       DataSize received) {
    ClientMetrics m;
    m.wnic_average = wnic_avg;
    m.wnic_energy = wnic_energy;
    m.device_average = scenario_device_power(wnic_avg);
    m.qos = playout.qos();
    m.underruns = playout.underruns();
    m.received = received;
    return m;
}

/// Fold the run's per-client results into the active obs registry (if
/// any): power/QoS/energy histograms accumulate percentiles across
/// clients and — via the runner's snapshot merge — across seeds.
inline void record_client_obs(const ScenarioResult& result) {
    obs::MetricsRegistry* reg = obs::current();
    if (reg == nullptr) return;
    for (const ClientMetrics& c : result.clients) {
        reg->histogram("scenario.client.wnic_mw").record(c.wnic_average.milliwatts());
        reg->histogram("scenario.client.device_mw").record(c.device_average.milliwatts());
        reg->histogram("scenario.client.energy_j").record(c.wnic_energy.joules());
        reg->histogram("scenario.client.qos").record(c.qos);
        reg->counter("scenario.client.underruns").add(c.underruns);
        reg->counter("scenario.client.received_bytes")
            .add(static_cast<std::uint64_t>(c.received.bytes()));
    }
}

/// End-of-run kernel accounting, under names that keep the tombstone
/// distinction explicit: queue_size() includes cancelled-but-unreaped
/// entries, pending_events() does not.
inline void record_kernel_obs(const sim::Simulator& sim) {
    obs::MetricsRegistry* reg = obs::current();
    if (reg == nullptr) return;
    reg->counter("sim.kernel.events_dispatched").add(sim.events_dispatched());
    reg->gauge("sim.queue.entries_incl_tombstones")
        .set(static_cast<double>(sim.queue_size()));
    reg->gauge("sim.queue.pending_live").set(static_cast<double>(sim.pending_events()));
}

}  // namespace wlanps::core
