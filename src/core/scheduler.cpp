#include "core/scheduler.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace wlanps::core {

namespace {
/// FIFO tie-break helper: prefer the earlier-created request.
bool earlier(const BurstRequest& a, const BurstRequest& b) {
    return a.created_at < b.created_at;
}
}  // namespace

std::size_t EdfScheduler::pick(const std::vector<BurstRequest>& pending, Time /*now*/) {
    WLANPS_REQUIRE(!pending.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
        if (pending[i].deadline < pending[best].deadline ||
            (pending[i].deadline == pending[best].deadline &&
             earlier(pending[i], pending[best]))) {
            best = i;
        }
    }
    return best;
}

double WfqScheduler::normalized_service(ClientId client) const {
    const auto it = served_.find(client);
    return it == served_.end() ? 0.0 : it->second;
}

std::size_t WfqScheduler::pick(const std::vector<BurstRequest>& pending, Time /*now*/) {
    WLANPS_REQUIRE(!pending.empty());
    std::size_t best = 0;
    double best_served = normalized_service(pending[0].client);
    WLANPS_REQUIRE(pending[0].weight > 0.0);
    for (std::size_t i = 1; i < pending.size(); ++i) {
        WLANPS_REQUIRE(pending[i].weight > 0.0);
        const double served = normalized_service(pending[i].client);
        if (served < best_served ||
            (served == best_served && earlier(pending[i], pending[best]))) {
            best = i;
            best_served = served;
        }
    }
    return best;
}

void WfqScheduler::on_dispatch(const BurstRequest& request, Time /*service_time*/) {
    WLANPS_REQUIRE(request.weight > 0.0);
    served_[request.client] += static_cast<double>(request.size.bits()) / request.weight;
}

std::size_t RoundRobinScheduler::pick(const std::vector<BurstRequest>& pending, Time /*now*/) {
    WLANPS_REQUIRE(!pending.empty());
    // Smallest client id strictly greater than the last served; wrap.
    std::size_t best = pending.size();
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].client > last_served_) {
            if (best == pending.size() || pending[i].client < pending[best].client) best = i;
        }
    }
    if (best != pending.size()) return best;
    // Wrap to the smallest id.
    best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
        if (pending[i].client < pending[best].client) best = i;
    }
    return best;
}

void RoundRobinScheduler::on_dispatch(const BurstRequest& request, Time /*service_time*/) {
    last_served_ = request.client;
}

std::size_t FixedPriorityScheduler::pick(const std::vector<BurstRequest>& pending, Time /*now*/) {
    WLANPS_REQUIRE(!pending.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
        if (pending[i].priority < pending[best].priority ||
            (pending[i].priority == pending[best].priority &&
             earlier(pending[i], pending[best]))) {
            best = i;
        }
    }
    return best;
}

std::size_t FifoScheduler::pick(const std::vector<BurstRequest>& pending, Time /*now*/) {
    WLANPS_REQUIRE(!pending.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
        if (earlier(pending[i], pending[best])) best = i;
    }
    return best;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
    if (name == "edf") return std::make_unique<EdfScheduler>();
    if (name == "wfq") return std::make_unique<WfqScheduler>();
    if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
    if (name == "fixed-priority") return std::make_unique<FixedPriorityScheduler>();
    if (name == "fifo") return std::make_unique<FifoScheduler>();
    WLANPS_REQUIRE_MSG(false, "unknown scheduler: " + name);
    return nullptr;  // unreachable
}

}  // namespace wlanps::core
